package repro

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles the daemons once per test binary run.
func buildBinaries(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		out[name] = bin
	}
	return out
}

// startDaemon launches a binary and kills it at test end.
func startDaemon(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		if t.Failed() {
			t.Logf("%s output:\n%s", filepath.Base(bin), buf.String())
		}
	})
	return cmd
}

// waitPort polls until a TCP port accepts connections.
func waitPort(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			_ = c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("port %s never came up", addr)
}

// freePorts reserves n distinct free TCP ports.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	var ls []net.Listener
	var ports []int
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls = append(ls, l)
		ports = append(ports, l.Addr().(*net.TCPAddr).Port)
	}
	for _, l := range ls {
		_ = l.Close()
	}
	return ports
}

// TestBinariesProxyAndBench runs the real nxproxy daemons plus nxbench as
// separate OS processes: the paper's deployment, scaled to loopback.
func TestBinariesProxyAndBench(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	bins := buildBinaries(t, "nxproxy-inner", "nxproxy-outer", "nxbench")
	ports := freePorts(t, 3)
	nxport, outerPort, benchPort := ports[0], ports[1], ports[2]

	startDaemon(t, bins["nxproxy-inner"], "-port", fmt.Sprint(nxport))
	waitPort(t, fmt.Sprintf("127.0.0.1:%d", nxport))
	startDaemon(t, bins["nxproxy-outer"], "-port", fmt.Sprint(outerPort),
		"-inner", fmt.Sprintf("localhost:%d", nxport))
	waitPort(t, fmt.Sprintf("127.0.0.1:%d", outerPort))
	startDaemon(t, bins["nxbench"], "-serve", "-port", fmt.Sprint(benchPort))
	waitPort(t, fmt.Sprintf("127.0.0.1:%d", benchPort))

	run := func(args ...string) string {
		cmd := exec.Command(bins["nxbench"], args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("nxbench %v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	direct := run("-target", fmt.Sprintf("localhost:%d", benchPort), "-rounds", "4")
	if !strings.Contains(direct, "direct") || !strings.Contains(direct, "latency") {
		t.Fatalf("direct output:\n%s", direct)
	}
	viaProxy := run("-target", fmt.Sprintf("localhost:%d", benchPort), "-rounds", "4",
		"-outer", fmt.Sprintf("localhost:%d", outerPort),
		"-inner", fmt.Sprintf("localhost:%d", nxport))
	if !strings.Contains(viaProxy, "indirect (via Nexus Proxy)") {
		t.Fatalf("proxy output:\n%s", viaProxy)
	}
	if !strings.Contains(viaProxy, "bandwidth") {
		t.Fatalf("proxy output missing bandwidth:\n%s", viaProxy)
	}
}

// TestBinariesGatekeeperRMF runs allocator + qserver + gatekeeper + nxrun as
// OS processes and submits a job through the whole chain.
func TestBinariesGatekeeperRMF(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	bins := buildBinaries(t, "rmf-allocator", "rmf-qserver", "nxgatekeeper", "nxrun")
	ports := freePorts(t, 3)
	allocPort, qPort, gkPort := ports[0], ports[1], ports[2]
	const secret = "00112233445566778899aabbccddeeff"

	startDaemon(t, bins["rmf-allocator"], "-port", fmt.Sprint(allocPort))
	waitPort(t, fmt.Sprintf("127.0.0.1:%d", allocPort))
	startDaemon(t, bins["rmf-qserver"], "-port", fmt.Sprint(qPort),
		"-name", "node0", "-cluster", "demo", "-cpus", "2",
		"-allocator", fmt.Sprintf("localhost:%d", allocPort))
	waitPort(t, fmt.Sprintf("127.0.0.1:%d", qPort))
	startDaemon(t, bins["nxgatekeeper"], "-port", fmt.Sprint(gkPort),
		"-secret", secret, "-allocator", fmt.Sprintf("localhost:%d", allocPort))
	waitPort(t, fmt.Sprintf("127.0.0.1:%d", gkPort))

	cmd := exec.Command(bins["nxrun"],
		"-gatekeeper", fmt.Sprintf("localhost:%d", gkPort),
		"-secret", secret,
		`&(executable=hostname)(count=2)(jobmanager=rmf)`)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("nxrun: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "job completed") {
		t.Fatalf("nxrun output:\n%s", out)
	}

	// A wrong secret must be rejected.
	bad := exec.Command(bins["nxrun"],
		"-gatekeeper", fmt.Sprintf("localhost:%d", gkPort),
		"-secret", "deadbeef",
		`&(executable=hostname)`)
	if out, err := bad.CombinedOutput(); err == nil {
		t.Fatalf("nxrun with wrong secret succeeded:\n%s", out)
	}
}

// TestExamplesRun executes every example program end to end; each must exit
// zero. This is the "does the README actually work" check.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs example binaries")
	}
	examples := []struct {
		name string
		args []string
	}{
		{"quickstart", nil},
		{"wideareampi", nil},
		{"jobsubmit", nil},
		{"knapsackrun", nil},
		{"nqueens", []string{"-n", "9"}},
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			cmd := exec.Command("go", append([]string{"run", "./examples/" + ex.name}, ex.args...)...)
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s: %v\n%s", ex.name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", ex.name)
			}
		})
	}
}
