// Command benchdiff compares two benchmark JSON files produced by
// cmd/benchjson (e.g. a committed BENCH_kernel.json baseline against a fresh
// run) and prints per-benchmark ns/op and allocs/op deltas:
//
//	make bench-json BENCH_OUT=BENCH_new.json
//	go run ./cmd/benchdiff BENCH_kernel.json BENCH_new.json
//
// The exit status makes it a regression gate: 0 when every shared benchmark
// stays within the threshold, 1 on regression, 2 on usage or parse errors.
// -threshold sets the allowed relative ns/op growth (default 0.10 = +10%);
// any allocs/op increase is always a regression, because the 0-alloc hot
// paths are an explicit contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Record mirrors cmd/benchjson's output shape.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Row is one benchmark's comparison.
type Row struct {
	Name      string
	OldNs     float64
	NewNs     float64
	NsDelta   float64 // relative: (new-old)/old
	OldAllocs int64
	NewAllocs int64
	// Regressed marks rows past the threshold (or any alloc growth).
	Regressed bool
	// OnlyOld/OnlyNew mark benchmarks present in just one file.
	OnlyOld bool
	OnlyNew bool
}

// Diff compares old and new records: shared benchmarks get a delta row,
// one-sided benchmarks are flagged, and rows sort by name. threshold is the
// allowed relative ns/op growth before a row counts as regressed.
func Diff(oldRecs, newRecs []Record, threshold float64) []Row {
	old := make(map[string]Record, len(oldRecs))
	for _, r := range oldRecs {
		old[r.Name] = r
	}
	cur := make(map[string]Record, len(newRecs))
	for _, r := range newRecs {
		cur[r.Name] = r
	}
	var rows []Row
	for name, o := range old {
		n, ok := cur[name]
		if !ok {
			rows = append(rows, Row{Name: name, OldNs: o.NsPerOp, OldAllocs: o.AllocsPerOp, OnlyOld: true})
			continue
		}
		row := Row{
			Name: name,
			OldNs: o.NsPerOp, NewNs: n.NsPerOp,
			OldAllocs: o.AllocsPerOp, NewAllocs: n.AllocsPerOp,
		}
		if o.NsPerOp > 0 {
			row.NsDelta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		row.Regressed = row.NsDelta > threshold || n.AllocsPerOp > o.AllocsPerOp
		rows = append(rows, row)
	}
	for name, n := range cur {
		if _, ok := old[name]; !ok {
			rows = append(rows, Row{Name: name, NewNs: n.NsPerOp, NewAllocs: n.AllocsPerOp, OnlyNew: true})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// Format renders the comparison table and reports whether any row regressed.
func Format(rows []Row, threshold float64) (string, bool) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %12s %12s %8s %10s %10s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	regressed := false
	for _, r := range rows {
		switch {
		case r.OnlyOld:
			fmt.Fprintf(&b, "%-40s %12.1f %12s %8s %10d %10s  (removed)\n",
				r.Name, r.OldNs, "-", "-", r.OldAllocs, "-")
		case r.OnlyNew:
			fmt.Fprintf(&b, "%-40s %12s %12.1f %8s %10s %10d  (new)\n",
				r.Name, "-", r.NewNs, "-", "-", r.NewAllocs)
		default:
			mark := ""
			if r.Regressed {
				mark = "  REGRESSION"
				regressed = true
			} else if r.NsDelta < -threshold {
				mark = "  improved"
			}
			fmt.Fprintf(&b, "%-40s %12.1f %12.1f %+7.1f%% %10d %10d%s\n",
				r.Name, r.OldNs, r.NewNs, r.NsDelta*100, r.OldAllocs, r.NewAllocs, mark)
		}
	}
	return b.String(), regressed
}

func load(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "allowed relative ns/op growth before a benchmark counts as regressed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold 0.10] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 || *threshold < 0 || math.IsNaN(*threshold) {
		flag.Usage()
		os.Exit(2)
	}
	oldRecs, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRecs, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	out, regressed := Format(Diff(oldRecs, newRecs, *threshold), *threshold)
	fmt.Print(out)
	if regressed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression past %.0f%% threshold\n", *threshold*100)
		os.Exit(1)
	}
}
