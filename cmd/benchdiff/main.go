// Command benchdiff compares two benchmark JSON files produced by
// cmd/benchjson (e.g. a committed BENCH_kernel.json baseline against a fresh
// run) and prints per-benchmark ns/op and allocs/op deltas:
//
//	make bench-json BENCH_OUT=BENCH_new.json
//	go run ./cmd/benchdiff BENCH_kernel.json BENCH_new.json
//
// The exit status makes it a regression gate: 0 when every shared benchmark
// stays within the threshold, 1 on regression, 2 on usage or parse errors.
// -threshold sets the allowed relative ns/op growth (default 0.10 = +10%).
// On a 0-alloc baseline any allocs/op increase is a regression (the 0-alloc
// hot paths are an explicit contract); nonzero alloc baselines get the same
// relative threshold, so scheduling jitter in the parallel-execution
// benchmarks does not flake the gate.
//
// Benchmark groups carrying a ".../sequential" leaf (the parallel-DES
// speedup sweep) are wall-clock measurements of concurrent execution — their
// ns/op depends on host core count and scheduler timing, and their
// correctness contract is enforced separately by the golden virtual-time
// tests. Such rows are reported and summarized as speedups but never gate.
//
// -chaos-old/-chaos-new additionally (or instead) compare chaos-suite JSON
// summaries (cmd/experiments -run chaos-suite -chaos-json …): the new suite
// must pass every invariant, must not have fewer scenarios or invariants
// than the committed baseline, and must not have dropped a baseline scenario
// by name — so chaos coverage regressions fail the same gate as performance
// regressions:
//
//	go run ./cmd/experiments -run chaos-suite -chaos-json CHAOS_new.json
//	go run ./cmd/benchdiff -chaos-old CHAOS_suite.json -chaos-new CHAOS_new.json
//
// -scenarios-old/-scenarios-new apply the identical gate to scenario-suite
// JSON written by `simulator run -json` over scenarios/*.yaml, so shrinking
// the declarative scenario library (or its invariant counts) fails the build
// the same way shrinking the chaos suite does:
//
//	go run ./cmd/simulator run -json SCENARIOS_new.json scenarios/*.yaml
//	go run ./cmd/benchdiff -scenarios-old SCENARIOS_suite.json -scenarios-new SCENARIOS_new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Record mirrors cmd/benchjson's output shape.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Row is one benchmark's comparison.
type Row struct {
	Name      string
	OldNs     float64
	NewNs     float64
	NsDelta   float64 // relative: (new-old)/old
	OldAllocs int64
	NewAllocs int64
	// Regressed marks rows past the threshold (or any alloc growth).
	Regressed bool
	// OnlyOld/OnlyNew mark benchmarks present in just one file.
	OnlyOld bool
	OnlyNew bool
}

// Diff compares old and new records: shared benchmarks get a delta row,
// one-sided benchmarks are flagged, and rows sort by name. threshold is the
// allowed relative ns/op growth before a row counts as regressed.
func Diff(oldRecs, newRecs []Record, threshold float64) []Row {
	old := make(map[string]Record, len(oldRecs))
	for _, r := range oldRecs {
		old[r.Name] = r
	}
	cur := make(map[string]Record, len(newRecs))
	for _, r := range newRecs {
		cur[r.Name] = r
	}
	var rows []Row
	for name, o := range old {
		n, ok := cur[name]
		if !ok {
			rows = append(rows, Row{Name: name, OldNs: o.NsPerOp, OldAllocs: o.AllocsPerOp, OnlyOld: true})
			continue
		}
		row := Row{
			Name:  name,
			OldNs: o.NsPerOp, NewNs: n.NsPerOp,
			OldAllocs: o.AllocsPerOp, NewAllocs: n.AllocsPerOp,
		}
		if o.NsPerOp > 0 {
			row.NsDelta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		allocGrowth := n.AllocsPerOp > o.AllocsPerOp &&
			(o.AllocsPerOp == 0 ||
				float64(n.AllocsPerOp-o.AllocsPerOp)/float64(o.AllocsPerOp) > threshold)
		row.Regressed = row.NsDelta > threshold || allocGrowth
		rows = append(rows, row)
	}
	for name, n := range cur {
		if _, ok := old[name]; !ok {
			rows = append(rows, Row{Name: name, NewNs: n.NsPerOp, NewAllocs: n.AllocsPerOp, OnlyNew: true})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// Format renders the comparison table and reports whether any row regressed.
func Format(rows []Row, threshold float64) (string, bool) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %12s %12s %8s %10s %10s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	regressed := false
	for _, r := range rows {
		switch {
		case r.OnlyOld:
			fmt.Fprintf(&b, "%-40s %12.1f %12s %8s %10d %10s  (removed)\n",
				r.Name, r.OldNs, "-", "-", r.OldAllocs, "-")
		case r.OnlyNew:
			fmt.Fprintf(&b, "%-40s %12s %12.1f %8s %10s %10d  (new)\n",
				r.Name, "-", r.NewNs, "-", "-", r.NewAllocs)
		default:
			mark := ""
			if r.Regressed {
				mark = "  REGRESSION"
				regressed = true
			} else if r.NsDelta < -threshold {
				mark = "  improved"
			}
			fmt.Fprintf(&b, "%-40s %12.1f %12.1f %+7.1f%% %10d %10d%s\n",
				r.Name, r.OldNs, r.NewNs, r.NsDelta*100, r.OldAllocs, r.NewAllocs, mark)
		}
	}
	return b.String(), regressed
}

// speedupGroups returns the set of sub-benchmark prefixes that have a
// "sequential" leaf — the parallel speedup sweeps.
func speedupGroups(recs []Record) map[string]bool {
	groups := make(map[string]bool)
	for _, r := range recs {
		if strings.HasSuffix(r.Name, "/sequential") {
			groups[strings.TrimSuffix(r.Name, "/sequential")] = true
		}
	}
	return groups
}

// ExemptSpeedupGroups clears the regression flag on rows belonging to a
// parallel speedup sweep: their ns/op is a host-dependent wall-clock
// measurement, not a gated microbenchmark contract.
func ExemptSpeedupGroups(rows []Row, recs []Record) []Row {
	groups := speedupGroups(recs)
	for i, r := range rows {
		if j := strings.LastIndex(r.Name, "/"); j > 0 && groups[r.Name[:j]] {
			rows[i].Regressed = false
		}
	}
	return rows
}

// SpeedupSection renders wall-clock speedups for sub-benchmark groups that
// carry a ".../sequential" leaf (e.g. BenchmarkParallelTable4): every other
// leaf in the group is reported as sequential ns/op divided by its ns/op, so
// a parallel-execution sweep reads directly as speedup multiples. Groups
// without a sequential leaf produce no rows; with no qualifying group the
// section is empty.
func SpeedupSection(recs []Record) string {
	type group struct {
		seq     float64
		members []Record
	}
	groups := make(map[string]*group)
	for _, r := range recs {
		i := strings.LastIndex(r.Name, "/")
		if i < 0 {
			continue
		}
		prefix, leaf := r.Name[:i], r.Name[i+1:]
		g := groups[prefix]
		if g == nil {
			g = &group{}
			groups[prefix] = g
		}
		if leaf == "sequential" {
			g.seq = r.NsPerOp
		} else {
			g.members = append(g.members, r)
		}
	}
	prefixes := make([]string, 0, len(groups))
	for p, g := range groups {
		if g.seq > 0 && len(g.members) > 0 {
			prefixes = append(prefixes, p)
		}
	}
	sort.Strings(prefixes)
	if len(prefixes) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\nspeedup vs sequential (sequential ns/op / variant ns/op):\n")
	for _, p := range prefixes {
		g := groups[p]
		sort.Slice(g.members, func(i, j int) bool { return g.members[i].Name < g.members[j].Name })
		for _, m := range g.members {
			if m.NsPerOp <= 0 {
				continue
			}
			fmt.Fprintf(&b, "%-40s %8.2fx\n", m.Name, g.seq/m.NsPerOp)
		}
	}
	return b.String()
}

// ChaosScenario mirrors internal/chaos.ScenarioResult's JSON shape (only the
// gated fields).
type ChaosScenario struct {
	Name       string   `json:"name"`
	Passed     bool     `json:"passed"`
	Invariants int      `json:"invariants"`
	Failures   []string `json:"failures,omitempty"`
}

// ChaosSuite mirrors internal/chaos.SuiteResult's JSON shape.
type ChaosSuite struct {
	Scenarios []ChaosScenario `json:"scenarios"`
}

func (s *ChaosSuite) counts() (scenarios, invariants, failures int) {
	for _, sc := range s.Scenarios {
		scenarios++
		invariants += sc.Invariants
		failures += len(sc.Failures)
	}
	return
}

// ChaosSection renders the chaos-suite summary line (plus any violations)
// and reports whether the suite regressed: a failed invariant in the new
// run, fewer scenarios or invariants than the baseline, or a baseline
// scenario missing by name. old may be nil (no baseline: gate only on the
// new run's own failures).
func ChaosSection(old, cur *ChaosSuite) (string, bool) {
	return SuiteSection("chaos suite", old, cur)
}

// SuiteSection is ChaosSection generalized over the suite's display label;
// the scenario-suite gate (simulator run -json) shares the JSON shape and
// the regression rules.
func SuiteSection(label string, old, cur *ChaosSuite) (string, bool) {
	var b strings.Builder
	regressed := false
	scen, inv, fails := cur.counts()
	fmt.Fprintf(&b, "\n%s: %d scenarios, %d invariants, %d failures", label, scen, inv, fails)
	if old != nil {
		oScen, oInv, _ := old.counts()
		fmt.Fprintf(&b, " (baseline: %d scenarios, %d invariants)", oScen, oInv)
		if scen < oScen {
			fmt.Fprintf(&b, "\n  REGRESSION: scenario count shrank %d -> %d", oScen, scen)
			regressed = true
		}
		if inv < oInv {
			fmt.Fprintf(&b, "\n  REGRESSION: invariant count shrank %d -> %d", oInv, inv)
			regressed = true
		}
		have := make(map[string]bool, len(cur.Scenarios))
		for _, sc := range cur.Scenarios {
			have[sc.Name] = true
		}
		for _, sc := range old.Scenarios {
			if !have[sc.Name] {
				fmt.Fprintf(&b, "\n  REGRESSION: baseline scenario %q dropped", sc.Name)
				regressed = true
			}
		}
	}
	for _, sc := range cur.Scenarios {
		if !sc.Passed {
			regressed = true
			for _, f := range sc.Failures {
				fmt.Fprintf(&b, "\n  FAIL %s: %s", sc.Name, f)
			}
		}
	}
	b.WriteString("\n")
	return b.String(), regressed
}

func loadChaos(path string) (*ChaosSuite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s ChaosSuite
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func load(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "allowed relative ns/op growth before a benchmark counts as regressed")
	chaosOld := flag.String("chaos-old", "", "committed chaos-suite JSON baseline to gate coverage against")
	chaosNew := flag.String("chaos-new", "", "fresh chaos-suite JSON (cmd/experiments -run chaos-suite -chaos-json)")
	scenOld := flag.String("scenarios-old", "", "committed scenario-suite JSON baseline to gate coverage against")
	scenNew := flag.String("scenarios-new", "", "fresh scenario-suite JSON (simulator run -json)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold 0.10] [-chaos-old base.json -chaos-new new.json] [-scenarios-old base.json -scenarios-new new.json] [old.json new.json]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	benchArgs := flag.NArg() == 2
	if (!benchArgs && (flag.NArg() != 0 || (*chaosNew == "" && *scenNew == ""))) || *threshold < 0 || math.IsNaN(*threshold) {
		flag.Usage()
		os.Exit(2)
	}
	regressed := false
	if benchArgs {
		oldRecs, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		newRecs, err := load(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		rows := ExemptSpeedupGroups(Diff(oldRecs, newRecs, *threshold), newRecs)
		out, reg := Format(rows, *threshold)
		fmt.Print(out)
		fmt.Print(SpeedupSection(newRecs))
		if reg {
			regressed = true
			fmt.Fprintf(os.Stderr, "benchdiff: regression past %.0f%% threshold\n", *threshold*100)
		}
	}
	if *chaosNew != "" {
		cur, err := loadChaos(*chaosNew)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		var base *ChaosSuite
		if *chaosOld != "" {
			if base, err = loadChaos(*chaosOld); err != nil {
				fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
				os.Exit(2)
			}
		}
		out, reg := ChaosSection(base, cur)
		fmt.Print(out)
		if reg {
			regressed = true
			fmt.Fprintf(os.Stderr, "benchdiff: chaos suite regression\n")
		}
	}
	if *scenNew != "" {
		cur, err := loadChaos(*scenNew)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		var base *ChaosSuite
		if *scenOld != "" {
			if base, err = loadChaos(*scenOld); err != nil {
				fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
				os.Exit(2)
			}
		}
		out, reg := SuiteSection("scenario suite", base, cur)
		fmt.Print(out)
		if reg {
			regressed = true
			fmt.Fprintf(os.Stderr, "benchdiff: scenario suite regression\n")
		}
	}
	if regressed {
		os.Exit(1)
	}
}
