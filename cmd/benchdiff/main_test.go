package main

import (
	"strings"
	"testing"
)

func rec(name string, ns float64, allocs int64) Record {
	return Record{Name: name, Iterations: 100, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestDiff(t *testing.T) {
	oldRecs := []Record{
		rec("BenchmarkKernelStep", 100, 0),
		rec("BenchmarkPingPong", 1000, 5),
		rec("BenchmarkRemoved", 50, 1),
	}
	newRecs := []Record{
		rec("BenchmarkKernelStep", 105, 0), // +5%: within threshold
		rec("BenchmarkPingPong", 1200, 5),  // +20%: regression
		rec("BenchmarkAdded", 10, 0),
	}
	rows := Diff(oldRecs, newRecs, 0.10)
	want := []struct {
		name      string
		regressed bool
		onlyOld   bool
		onlyNew   bool
	}{
		{"BenchmarkAdded", false, false, true},
		{"BenchmarkKernelStep", false, false, false},
		{"BenchmarkPingPong", true, false, false},
		{"BenchmarkRemoved", false, true, false},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d: %+v", len(rows), len(want), rows)
	}
	for i, w := range want {
		r := rows[i]
		if r.Name != w.name || r.Regressed != w.regressed || r.OnlyOld != w.onlyOld || r.OnlyNew != w.onlyNew {
			t.Errorf("row %d = %+v, want %+v", i, r, w)
		}
	}
}

func TestDiffAllocGrowthAlwaysRegresses(t *testing.T) {
	// Even a tiny speedup cannot excuse a new allocation on a 0-alloc path.
	rows := Diff(
		[]Record{rec("BenchmarkKernelStep", 100, 0)},
		[]Record{rec("BenchmarkKernelStep", 90, 1)},
		0.10)
	if len(rows) != 1 || !rows[0].Regressed {
		t.Fatalf("alloc growth not flagged: %+v", rows)
	}
}

func TestDiffZeroOldNs(t *testing.T) {
	// A zero old ns/op (malformed or placeholder record) must not divide by
	// zero or spuriously regress.
	rows := Diff(
		[]Record{rec("BenchmarkX", 0, 0)},
		[]Record{rec("BenchmarkX", 50, 0)},
		0.10)
	if rows[0].NsDelta != 0 || rows[0].Regressed {
		t.Fatalf("zero-baseline row mishandled: %+v", rows[0])
	}
}

func TestFormat(t *testing.T) {
	rows := Diff(
		[]Record{rec("BenchmarkA", 100, 0), rec("BenchmarkB", 100, 2), rec("BenchmarkGone", 10, 0)},
		[]Record{rec("BenchmarkA", 150, 0), rec("BenchmarkB", 50, 2), rec("BenchmarkNew", 20, 1)},
		0.10)
	out, regressed := Format(rows, 0.10)
	if !regressed {
		t.Fatal("regression not reported")
	}
	for _, want := range []string{
		"REGRESSION", // BenchmarkA +50%
		"improved",   // BenchmarkB -50%
		"(removed)",  // BenchmarkGone
		"(new)",      // BenchmarkNew
		"+50.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatCleanRun(t *testing.T) {
	out, regressed := Format(Diff(
		[]Record{rec("BenchmarkA", 100, 0)},
		[]Record{rec("BenchmarkA", 101, 0)},
		0.10), 0.10)
	if regressed {
		t.Fatalf("clean run flagged as regression:\n%s", out)
	}
	if !strings.Contains(out, "+1.0%") {
		t.Errorf("delta missing from output:\n%s", out)
	}
}
