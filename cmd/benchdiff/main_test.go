package main

import (
	"strings"
	"testing"
)

func rec(name string, ns float64, allocs int64) Record {
	return Record{Name: name, Iterations: 100, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestDiff(t *testing.T) {
	oldRecs := []Record{
		rec("BenchmarkKernelStep", 100, 0),
		rec("BenchmarkPingPong", 1000, 5),
		rec("BenchmarkRemoved", 50, 1),
	}
	newRecs := []Record{
		rec("BenchmarkKernelStep", 105, 0), // +5%: within threshold
		rec("BenchmarkPingPong", 1200, 5),  // +20%: regression
		rec("BenchmarkAdded", 10, 0),
	}
	rows := Diff(oldRecs, newRecs, 0.10)
	want := []struct {
		name      string
		regressed bool
		onlyOld   bool
		onlyNew   bool
	}{
		{"BenchmarkAdded", false, false, true},
		{"BenchmarkKernelStep", false, false, false},
		{"BenchmarkPingPong", true, false, false},
		{"BenchmarkRemoved", false, true, false},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d: %+v", len(rows), len(want), rows)
	}
	for i, w := range want {
		r := rows[i]
		if r.Name != w.name || r.Regressed != w.regressed || r.OnlyOld != w.onlyOld || r.OnlyNew != w.onlyNew {
			t.Errorf("row %d = %+v, want %+v", i, r, w)
		}
	}
}

func TestDiffAllocGrowthAlwaysRegresses(t *testing.T) {
	// Even a tiny speedup cannot excuse a new allocation on a 0-alloc path.
	rows := Diff(
		[]Record{rec("BenchmarkKernelStep", 100, 0)},
		[]Record{rec("BenchmarkKernelStep", 90, 1)},
		0.10)
	if len(rows) != 1 || !rows[0].Regressed {
		t.Fatalf("alloc growth not flagged: %+v", rows)
	}
}

func TestDiffAllocJitterWithinThreshold(t *testing.T) {
	// On a nonzero alloc baseline, growth within the threshold is jitter
	// (parallel benchmarks have scheduling-dependent alloc counts), but
	// growth past it still regresses.
	rows := Diff(
		[]Record{rec("BenchmarkJitter", 100, 127323), rec("BenchmarkGrowth", 100, 1000)},
		[]Record{rec("BenchmarkJitter", 100, 127330), rec("BenchmarkGrowth", 100, 1200)},
		0.10)
	for _, r := range rows {
		switch r.Name {
		case "BenchmarkJitter":
			if r.Regressed {
				t.Errorf("+0.005%% alloc jitter flagged: %+v", r)
			}
		case "BenchmarkGrowth":
			if !r.Regressed {
				t.Errorf("+20%% alloc growth not flagged: %+v", r)
			}
		}
	}
}

func TestDiffZeroOldNs(t *testing.T) {
	// A zero old ns/op (malformed or placeholder record) must not divide by
	// zero or spuriously regress.
	rows := Diff(
		[]Record{rec("BenchmarkX", 0, 0)},
		[]Record{rec("BenchmarkX", 50, 0)},
		0.10)
	if rows[0].NsDelta != 0 || rows[0].Regressed {
		t.Fatalf("zero-baseline row mishandled: %+v", rows[0])
	}
}

func TestFormat(t *testing.T) {
	rows := Diff(
		[]Record{rec("BenchmarkA", 100, 0), rec("BenchmarkB", 100, 2), rec("BenchmarkGone", 10, 0)},
		[]Record{rec("BenchmarkA", 150, 0), rec("BenchmarkB", 50, 2), rec("BenchmarkNew", 20, 1)},
		0.10)
	out, regressed := Format(rows, 0.10)
	if !regressed {
		t.Fatal("regression not reported")
	}
	for _, want := range []string{
		"REGRESSION", // BenchmarkA +50%
		"improved",   // BenchmarkB -50%
		"(removed)",  // BenchmarkGone
		"(new)",      // BenchmarkNew
		"+50.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSpeedupSection(t *testing.T) {
	recs := []Record{
		rec("BenchmarkParallelTable4/sequential", 1000, 0),
		rec("BenchmarkParallelTable4/site-workers=1", 1100, 0),
		rec("BenchmarkParallelTable4/site-workers=4", 500, 0),
		rec("BenchmarkKernelStep", 100, 0),          // no group: no row
		rec("BenchmarkOther/variant", 50, 0),        // group without sequential leaf
		rec("BenchmarkParallelTable4/zeroed", 0, 0), // zero ns/op: skipped
	}
	out := SpeedupSection(recs)
	for _, want := range []string{
		"site-workers=1", "0.91x",
		"site-workers=4", "2.00x",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("speedup section missing %q:\n%s", want, out)
		}
	}
	for _, wantNot := range []string{"KernelStep", "Other/variant", "zeroed", "/sequential"} {
		if strings.Contains(out, wantNot) {
			t.Errorf("speedup section should not contain %q:\n%s", wantNot, out)
		}
	}
}

func TestExemptSpeedupGroups(t *testing.T) {
	newRecs := []Record{
		rec("BenchmarkParallelTable4/sequential", 300, 0),
		rec("BenchmarkParallelTable4/site-workers=2", 300, 0),
		rec("BenchmarkKernelStep", 300, 0),
	}
	oldRecs := []Record{
		rec("BenchmarkParallelTable4/sequential", 200, 0),
		rec("BenchmarkParallelTable4/site-workers=2", 200, 0),
		rec("BenchmarkKernelStep", 200, 0),
	}
	rows := ExemptSpeedupGroups(Diff(oldRecs, newRecs, 0.10), newRecs)
	for _, r := range rows {
		isSweep := strings.HasPrefix(r.Name, "BenchmarkParallelTable4/")
		if r.Regressed == isSweep {
			t.Errorf("%s: regressed = %t, want %t (+50%% ns/op, sweep rows exempt)",
				r.Name, r.Regressed, !isSweep)
		}
	}
}

func TestSpeedupSectionEmpty(t *testing.T) {
	if out := SpeedupSection([]Record{rec("BenchmarkKernelStep", 100, 0)}); out != "" {
		t.Errorf("no-group section = %q, want empty", out)
	}
}

func TestFormatCleanRun(t *testing.T) {
	out, regressed := Format(Diff(
		[]Record{rec("BenchmarkA", 100, 0)},
		[]Record{rec("BenchmarkA", 101, 0)},
		0.10), 0.10)
	if regressed {
		t.Fatalf("clean run flagged as regression:\n%s", out)
	}
	if !strings.Contains(out, "+1.0%") {
		t.Errorf("delta missing from output:\n%s", out)
	}
}

func chaosSuite(scens ...ChaosScenario) *ChaosSuite {
	return &ChaosSuite{Scenarios: scens}
}

func TestChaosSectionClean(t *testing.T) {
	s := chaosSuite(
		ChaosScenario{Name: "partition", Passed: true, Invariants: 5},
		ChaosScenario{Name: "flap", Passed: true, Invariants: 4},
	)
	out, regressed := ChaosSection(s, s)
	if regressed {
		t.Fatalf("identical suites flagged:\n%s", out)
	}
	for _, want := range []string{"2 scenarios", "9 invariants", "0 failures", "baseline: 2 scenarios"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestChaosSectionFailuresGate(t *testing.T) {
	cur := chaosSuite(ChaosScenario{
		Name: "partition", Passed: false, Invariants: 5,
		Failures: []string{"exact-optimum: best = 9, want 10"},
	})
	// Even with no baseline, a failed invariant gates.
	out, regressed := ChaosSection(nil, cur)
	if !regressed {
		t.Fatalf("failed invariant not flagged:\n%s", out)
	}
	if !strings.Contains(out, "FAIL partition: exact-optimum") {
		t.Errorf("failure detail missing:\n%s", out)
	}
}

func TestChaosSectionCoverageShrinkGates(t *testing.T) {
	old := chaosSuite(
		ChaosScenario{Name: "partition", Passed: true, Invariants: 5},
		ChaosScenario{Name: "flap", Passed: true, Invariants: 4},
	)
	// Same scenario count but a baseline scenario replaced by a new one,
	// and fewer total invariants: both must gate.
	cur := chaosSuite(
		ChaosScenario{Name: "partition", Passed: true, Invariants: 4},
		ChaosScenario{Name: "straggler", Passed: true, Invariants: 4},
	)
	out, regressed := ChaosSection(old, cur)
	if !regressed {
		t.Fatalf("coverage shrink not flagged:\n%s", out)
	}
	for _, want := range []string{`scenario "flap" dropped`, "invariant count shrank 9 -> 8"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// New scenarios on top of the baseline are growth, not regression.
	grown := chaosSuite(append(old.Scenarios, ChaosScenario{Name: "extra", Passed: true, Invariants: 3})...)
	if out, regressed := ChaosSection(old, grown); regressed {
		t.Fatalf("suite growth flagged as regression:\n%s", out)
	}
}

func TestSuiteSectionLabel(t *testing.T) {
	// The scenario-library gate reuses the chaos gate machinery under its
	// own label; the label must flow into the summary line.
	cur := chaosSuite(ChaosScenario{Name: "table4-sweep", Passed: true, Invariants: 6})
	out, regressed := SuiteSection("scenario suite", cur, cur)
	if regressed {
		t.Fatalf("identical suites flagged:\n%s", out)
	}
	if !strings.Contains(out, "scenario suite: 1 scenarios, 6 invariants, 0 failures") {
		t.Errorf("labeled summary missing:\n%s", out)
	}
	shrunk := chaosSuite()
	if out, regressed := SuiteSection("scenario suite", cur, shrunk); !regressed {
		t.Fatalf("scenario-count shrink not flagged:\n%s", out)
	} else if !strings.Contains(out, "scenario count shrank 1 -> 0") {
		t.Errorf("shrink detail missing:\n%s", out)
	}
}
