// Command rmf-allocator runs the RMF resource allocator daemon on real TCP.
// Q servers register with it at startup; Q clients ask it which resources
// are best for a job.
//
// Usage:
//
//	rmf-allocator [-port 7100]
package main

import (
	"flag"
	"log"

	"nxcluster/internal/rmf"
	"nxcluster/internal/transport"
)

func main() {
	port := flag.Int("port", rmf.AllocatorPort, "port to listen on")
	verbose := flag.Bool("v", false, "trace allocation decisions")
	flag.Parse()

	env := transport.NewTCPEnv("localhost")
	alloc := rmf.NewAllocator()
	if *verbose {
		alloc.SetTrace(func(format string, args ...interface{}) {
			log.Printf(format, args...)
		})
	}
	err := alloc.Serve(env, *port, func(addr string) {
		log.Printf("rmf-allocator: listening on %s", addr)
	})
	if err != nil {
		log.Fatalf("rmf-allocator: %v", err)
	}
}
