// Command nxproxy-inner runs the Nexus Proxy inner server on real TCP: the
// relay daemon inside a site firewall, listening on the single pre-opened
// nxport for splice requests from the outer server and completing the chain
// toward bound clients on the inside network.
//
// Usage:
//
//	nxproxy-inner -port 7010 [-buf 4096]
package main

import (
	"flag"
	"log"

	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

func main() {
	port := flag.Int("port", 7010, "nxport to listen on (the firewall's one opened inbound port)")
	buf := flag.Int("buf", 4096, "relay buffer size in bytes")
	verbose := flag.Bool("v", false, "trace relay activity")
	flag.Parse()

	env := transport.NewTCPEnv("localhost")
	srv := proxy.NewInnerServer(proxy.RelayConfig{BufBytes: *buf})
	if *verbose {
		srv.SetTrace(func(format string, args ...interface{}) {
			log.Printf(format, args...)
		})
	}
	err := srv.Serve(env, *port, func(addr string) {
		log.Printf("nxproxy-inner: listening on nxport %s", addr)
	})
	if err != nil {
		log.Fatalf("nxproxy-inner: %v", err)
	}
}
