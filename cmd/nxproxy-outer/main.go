// Command nxproxy-outer runs the Nexus Proxy outer server on real TCP: the
// relay daemon deployed just outside a site firewall. Processes inside the
// site send it connect and bind requests; remote peers connect to the
// public ports it binds on their behalf.
//
// Usage:
//
//	nxproxy-outer -port 7000 -inner host:7010 [-buf 4096]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

func main() {
	port := flag.Int("port", 7000, "control port to listen on")
	inner := flag.String("inner", "", "inner server address host:nxport (required)")
	buf := flag.Int("buf", 4096, "relay buffer size in bytes")
	verbose := flag.Bool("v", false, "trace relay activity")
	flag.Parse()
	if *inner == "" {
		fmt.Fprintln(os.Stderr, "nxproxy-outer: -inner is required")
		flag.Usage()
		os.Exit(2)
	}

	env := transport.NewTCPEnv("localhost")
	srv := proxy.NewOuterServer(*inner, proxy.RelayConfig{BufBytes: *buf})
	if *verbose {
		srv.SetTrace(func(format string, args ...interface{}) {
			log.Printf(format, args...)
		})
	}
	err := srv.Serve(env, *port, func(addr string) {
		log.Printf("nxproxy-outer: listening on %s, splicing via inner server %s", addr, *inner)
	})
	if err != nil {
		log.Fatalf("nxproxy-outer: %v", err)
	}
}
