// Command benchjson converts `go test -bench` output on stdin into a JSON
// array of benchmark records on stdout, one object per benchmark line:
//
//	go test -bench 'KernelStep' -benchmem . | go run ./cmd/benchjson
//
// Recognized per-line metrics: iterations, ns/op, B/op, allocs/op, MB/s.
// Custom b.ReportMetric units (e.g. the fleet sweep's Mevents/sec) are
// collected under "metrics". Non-benchmark lines (goos/goarch/pkg/PASS/ok)
// are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units verbatim.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	records := []Record{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		rec, ok := parseLine(sc.Text())
		if ok {
			records = append(records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one "BenchmarkName-8  1234  56.7 ns/op  8 B/op ..." line.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -GOMAXPROCS suffix when present.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: name, Iterations: iters}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			rec.NsPerOp = v
		case "MB/s":
			rec.MBPerSec = v
		case "B/op":
			rec.BytesPerOp = int64(v)
		case "allocs/op":
			rec.AllocsPerOp = int64(v)
		default:
			if rec.Metrics == nil {
				rec.Metrics = map[string]float64{}
			}
			rec.Metrics[fields[i+1]] = v
		}
	}
	return rec, true
}
