// Command knapsack solves 0-1 knapsack instances with the branch-and-bound
// solver: sequentially on this machine, or in parallel on the simulated
// wide-area cluster testbed (the paper's Table 4 systems).
//
// Examples:
//
//	knapsack -items 50 -capacity 4                 # paper's normalized workload, sequential
//	knapsack -random -items 30 -seed 7 -prune      # random instance with bound pruning
//	knapsack -system wide -items 50 -capacity 4    # 20-processor simulated wide-area run
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mpi"
)

func main() {
	items := flag.Int("items", 50, "number of items")
	capacity := flag.Int("capacity", 4, "knapsack capacity for the normalized workload")
	random := flag.Bool("random", false, "use a random instance instead of the normalized one")
	seed := flag.Int64("seed", 1, "random instance seed")
	prune := flag.Bool("prune", false, "enable bound pruning")
	system := flag.String("system", "", "run on a simulated system: compas|etlo2k|local|wide (empty = sequential here)")
	noProxy := flag.Bool("no-proxy", false, "wide-area run without the Nexus Proxy (opens the firewall)")
	hier := flag.Bool("hierarchical", false, "use the two-level hierarchical scheduler (per-cluster sub-masters)")
	flag.Parse()

	var in *knapsack.Instance
	if *random {
		in = knapsack.Random(*items, 1000, *seed)
	} else {
		in = knapsack.Normalized(*items, *capacity)
	}
	if err := in.Validate(); err != nil {
		log.Fatalf("knapsack: %v", err)
	}

	if *system == "" {
		runSequential(in, *prune)
		return
	}
	runSimulated(in, *system, !*noProxy, *prune, *hier)
}

func runSequential(in *knapsack.Instance, prune bool) {
	start := time.Now()
	var best, traversed int64
	if prune {
		best, traversed = knapsack.Solve(in)
	} else {
		best, traversed = knapsack.SolveExhaustive(in)
	}
	fmt.Printf("best profit:     %d\n", best)
	fmt.Printf("nodes traversed: %d\n", traversed)
	fmt.Printf("wall time:       %v\n", time.Since(start))
}

func runSimulated(in *knapsack.Instance, system string, useProxy, prune, hierarchical bool) {
	var sys cluster.System
	switch system {
	case "compas":
		sys = cluster.SystemCompas
	case "etlo2k":
		sys = cluster.SystemETLO2K
	case "local":
		sys = cluster.SystemLocal
	case "wide":
		sys = cluster.SystemWide
	default:
		log.Fatalf("knapsack: unknown system %q", system)
	}
	tb := cluster.NewTestbed(cluster.Options{OpenFirewall: !useProxy})
	defer tb.K.Shutdown()
	params := knapsack.DefaultParams()
	params.PruneBound = prune
	w := mpi.NewWorld(tb.Placements(sys, useProxy))
	groupOf := func(name string) string {
		if strings.HasPrefix(name, "compas") {
			return "COMPaS"
		}
		return name
	}
	var res *knapsack.Result
	w.Launch(func(c *mpi.Comm) error {
		var r *knapsack.Result
		var err error
		if hierarchical {
			r, err = knapsack.RunHierarchical(c, in, params, groupOf)
		} else {
			r, err = knapsack.Run(c, in, params)
		}
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	start := time.Now()
	if err := tb.K.Run(); err != nil {
		log.Fatalf("knapsack: simulation: %v", err)
	}
	if err := w.Err(); err != nil {
		log.Fatalf("knapsack: %v", err)
	}
	fmt.Printf("system:            %s (%d processors, proxy=%v)\n", sys, sys.Processors(), useProxy)
	fmt.Printf("best profit:       %d\n", res.Best)
	fmt.Printf("nodes traversed:   %d\n", res.TotalTraversed)
	fmt.Printf("virtual exec time: %.2f s\n", res.Elapsed.Seconds())
	fmt.Printf("steals handled:    %d\n", res.MasterHandled)
	fmt.Printf("host wall time:    %v\n", time.Since(start))
	for _, st := range res.Stats {
		fmt.Printf("  rank %2d %-10s traversed %10d  steals %5d  sentback %5d\n",
			st.Rank, st.Name, st.Traversed, st.Steals, st.SentBack)
	}
}
