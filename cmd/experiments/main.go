// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated testbed.
//
//	experiments                      # everything
//	experiments -run table2          # one experiment
//	experiments -run table4 -capacity 5
//
// Valid -run values: table2, table3, table4, table5, table6, figure1,
// figure2, figure3, figure4, figure5, sweep (bandwidth vs message size),
// all.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nxcluster/internal/bench"
	"nxcluster/internal/knapsack"
)

func main() {
	run := flag.String("run", "all", "experiment to run")
	items := flag.Int("items", 50, "knapsack items (paper: 50)")
	capacity := flag.Int("capacity", 4, "knapsack capacity; controls tree size (4 = ~2.6M nodes, 5 = ~20.6M)")
	rounds := flag.Int("rounds", 4, "rounds per Table 2 measurement")
	workers := flag.Int("workers", 0, "host threads for independent simulations (0 = GOMAXPROCS, 1 = sequential); virtual-time results are identical either way")
	flag.Parse()

	kcfg := bench.KnapsackConfig{Items: *items, Capacity: *capacity, Workers: *workers}

	var knapReport *bench.KnapsackReport
	needKnap := func() *bench.KnapsackReport {
		if knapReport == nil {
			start := time.Now()
			r, err := bench.RunKnapsack(kcfg)
			if err != nil {
				log.Fatalf("experiments: knapsack sweep: %v", err)
			}
			fmt.Fprintf(os.Stderr, "[knapsack sweep: %d items, capacity %d, %d nodes/run, host time %v]\n",
				*items, *capacity, knapsack.NormalizedTreeNodes(*items, *capacity), time.Since(start).Round(time.Millisecond))
			knapReport = r
		}
		return knapReport
	}

	section := func(s string, err error) {
		if err != nil {
			log.Fatalf("experiments: %v", err)
		}
		fmt.Println(s)
	}

	want := func(name string) bool { return *run == "all" || *run == name }

	if want("figure1") {
		s, err := bench.Figure1()
		section(s, err)
	}
	if want("figure2") {
		s, err := bench.Figure2()
		section(s, err)
	}
	if want("figure3") {
		s, err := bench.Figure3()
		section(s, err)
	}
	if want("figure4") {
		s, err := bench.Figure4()
		section(s, err)
	}
	if want("figure5") {
		s, err := bench.Figure5()
		section(s, err)
	}
	if want("sweep") {
		sweeps, err := bench.RunBandwidthSweep(bench.Table2Config{Rounds: *rounds, Workers: *workers})
		if err != nil {
			log.Fatalf("experiments: sweep: %v", err)
		}
		fmt.Println(bench.FormatSweep(sweeps))
	}
	if want("table2") {
		rows, err := bench.RunTable2(bench.Table2Config{Rounds: *rounds, Workers: *workers})
		if err != nil {
			log.Fatalf("experiments: table2: %v", err)
		}
		fmt.Println(bench.FormatTable2(rows))
	}
	if want("table3") {
		fmt.Println(bench.FormatTable3())
	}
	if want("table4") {
		fmt.Println(bench.FormatTable4(needKnap()))
	}
	if want("table5") {
		fmt.Println(bench.FormatTable5(needKnap()))
	}
	if want("table6") {
		fmt.Println(bench.FormatTable6(needKnap()))
	}

	switch *run {
	case "all", "sweep", "table2", "table3", "table4", "table5", "table6",
		"figure1", "figure2", "figure3", "figure4", "figure5":
	default:
		log.Fatalf("experiments: unknown -run %q", *run)
	}
}
