// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated testbed.
//
//	experiments                      # everything
//	experiments -run table2          # one experiment
//	experiments -run table4 -capacity 5
//
// Valid -run values: table2, table3, table4, table5, table6, figure1,
// figure2, figure3, figure4, figure5, sweep (bandwidth vs message size),
// decomp (per-hop latency decomposition of the Table 2 points), ktrace
// (wide-area knapsack run with tracing and a metrics snapshot), monitor
// (wide-area knapsack run with the live monitoring plane), gridftp
// (parallel-stream bulk transfers through the proxy over a congestion-
// modeled WAN), speedup (conservative parallel-DES wall-clock sweep over
// site-worker counts on a wide grid; needs a multi-core host to show
// speedup > 1), chaos-suite (the declarative gray-failure scenario library
// with end-of-run invariants; exits nonzero on any violation and writes a
// JSON summary with -chaos-json), fleet (open-loop fleet-scale run:
// -fleet-sites x -fleet-hosts hosts absorbing -fleet-jobs heavy-tailed jobs
// at ~0.85 utilization, reporting jobs/sec, events/sec and p50/p99 job
// latency from sampled causal traces), all.
//
// -parallel-sim N partitions the simulation kernel by site and runs it on N
// worker threads with lookahead synchronization (see DESIGN.md, "Parallel
// execution"); virtual-time results are identical to the default monolithic
// kernel. Applies to the knapsack sweeps (table4/table5/table6).
//
// Tracing (decomp and ktrace only; runs stay deterministic in virtual time):
//
//	experiments -run decomp -trace decomp.jsonl
//	experiments -run ktrace -trace-chrome knap.json   # chrome://tracing, Perfetto
//
// Monitoring (per-interval time-series, ASCII dashboard, GIS host table):
//
//	experiments -run monitor
//	experiments -run monitor -monitor-html report.html -monitor-jsonl ts.jsonl
//
// Profiling the simulator itself (any -run value):
//
//	experiments -run table4 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"nxcluster/internal/bench"
	"nxcluster/internal/chaos"
	"nxcluster/internal/cluster"
	"nxcluster/internal/fleet"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/obs"
)

func main() {
	run := flag.String("run", "all", "experiment to run")
	items := flag.Int("items", 50, "knapsack items (paper: 50)")
	capacity := flag.Int("capacity", 4, "knapsack capacity; controls tree size (4 = ~2.6M nodes, 5 = ~20.6M)")
	rounds := flag.Int("rounds", 4, "rounds per Table 2 measurement")
	workers := flag.Int("workers", 0, "host threads for independent simulations (0 = GOMAXPROCS, 1 = sequential); virtual-time results are identical either way")
	parallelSim := flag.Int("parallel-sim", 0, "site-workers for conservative parallel-DES execution of each simulation kernel (0 = monolithic sequential kernel); virtual-time results are identical")
	traceOut := flag.String("trace", "", "write the run's event trace as JSONL (decomp, ktrace)")
	traceChrome := flag.String("trace-chrome", "", "write the run's event trace in Chrome trace_event format (ktrace)")
	monitorInterval := flag.Duration("monitor-interval", time.Second, "virtual-time sampling window for -run monitor")
	monitorHTML := flag.String("monitor-html", "", "write the monitor run's HTML/SVG report to this file")
	monitorJSONL := flag.String("monitor-jsonl", "", "write the monitor run's time-series as JSONL to this file")
	monitorAll := flag.Bool("monitor-all", false, "show every series on the dashboard, not just the wide-area headline set")
	chaosJSON := flag.String("chaos-json", "", "write the chaos suite's per-scenario results as JSON (-run chaos-suite)")
	fleetSites := flag.Int("fleet-sites", 32, "sites in the -run fleet topology")
	fleetHosts := flag.Int("fleet-hosts", 32, "hosts per site in the -run fleet topology")
	fleetJobs := flag.Int("fleet-jobs", 100_000, "open-loop jobs for -run fleet")
	fleetSeed := flag.Uint64("fleet-seed", 1, "arrival/size RNG seed for -run fleet")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("experiments: cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("experiments: cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatalf("experiments: cpuprofile: %v", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("experiments: memprofile: %v", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("experiments: memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("experiments: memprofile: %v", err)
			}
		}()
	}

	kcfg := bench.KnapsackConfig{Items: *items, Capacity: *capacity, Workers: *workers}
	kcfg.Options.ParallelSites = *parallelSim

	var knapReport *bench.KnapsackReport
	needKnap := func() *bench.KnapsackReport {
		if knapReport == nil {
			start := time.Now()
			r, err := bench.RunKnapsack(kcfg)
			if err != nil {
				log.Fatalf("experiments: knapsack sweep: %v", err)
			}
			fmt.Fprintf(os.Stderr, "[knapsack sweep: %d items, capacity %d, %d nodes/run, host time %v]\n",
				*items, *capacity, knapsack.NormalizedTreeNodes(*items, *capacity), time.Since(start).Round(time.Millisecond))
			knapReport = r
		}
		return knapReport
	}

	section := func(s string, err error) {
		if err != nil {
			log.Fatalf("experiments: %v", err)
		}
		fmt.Println(s)
	}

	want := func(name string) bool { return *run == "all" || *run == name }

	if want("figure1") {
		s, err := bench.Figure1()
		section(s, err)
	}
	if want("figure2") {
		s, err := bench.Figure2()
		section(s, err)
	}
	if want("figure3") {
		s, err := bench.Figure3()
		section(s, err)
	}
	if want("figure4") {
		s, err := bench.Figure4()
		section(s, err)
	}
	if want("figure5") {
		s, err := bench.Figure5()
		section(s, err)
	}
	if want("sweep") {
		sweeps, err := bench.RunBandwidthSweep(bench.Table2Config{Rounds: *rounds, Workers: *workers})
		if err != nil {
			log.Fatalf("experiments: sweep: %v", err)
		}
		fmt.Println(bench.FormatSweep(sweeps))
	}
	if want("table2") {
		rows, err := bench.RunTable2(bench.Table2Config{Rounds: *rounds, Workers: *workers})
		if err != nil {
			log.Fatalf("experiments: table2: %v", err)
		}
		fmt.Println(bench.FormatTable2(rows))
	}
	if want("table3") {
		fmt.Println(bench.FormatTable3())
	}
	if *run == "decomp" {
		ds, err := bench.RunDecomposition(bench.Table2Config{Workers: *workers})
		if err != nil {
			log.Fatalf("experiments: decomp: %v", err)
		}
		fmt.Println(bench.FormatDecomposition(ds))
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatalf("experiments: %v", err)
			}
			// Concatenated JSONL, one section per point; each point's
			// timestamps restart at its own kernel's zero.
			for _, d := range ds {
				if err := d.Obs.WriteJSONL(f); err != nil {
					log.Fatalf("experiments: trace: %v", err)
				}
			}
			if err := f.Close(); err != nil {
				log.Fatalf("experiments: trace: %v", err)
			}
		}
	}
	if *run == "gridftp" {
		start := time.Now()
		pts, err := bench.RunTransfer(bench.TransferConfig{Workers: *workers})
		if err != nil {
			log.Fatalf("experiments: gridftp: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[gridftp sweep: %d points, host time %v]\n",
			len(pts), time.Since(start).Round(time.Millisecond))
		fmt.Println(bench.FormatTransfer(pts))
	}
	if *run == "ktrace" {
		o := obs.New()
		res, err := bench.RunKnapsackTraced(bench.KnapsackConfig{Items: *items, Capacity: *capacity}, o)
		if err != nil {
			log.Fatalf("experiments: ktrace: %v", err)
		}
		fmt.Printf("wide-area knapsack (traced): best %d, %d nodes, %s virtual time, %d trace events\n",
			res.Best, res.TotalTraversed, res.Elapsed, o.Len())
		fmt.Println(o.Metrics().Format())
		writeTrace := func(path string, write func(w io.Writer) error) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err != nil {
				log.Fatalf("experiments: %v", err)
			}
			if err := write(f); err != nil {
				log.Fatalf("experiments: trace: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("experiments: trace: %v", err)
			}
		}
		writeTrace(*traceOut, o.WriteJSONL)
		writeTrace(*traceChrome, o.WriteChromeTrace)
	}
	if *run == "monitor" {
		start := time.Now()
		rep, err := bench.RunMonitor(bench.MonitorConfig{
			KnapsackConfig: kcfg,
			Interval:       *monitorInterval,
		}, nil)
		if err != nil {
			log.Fatalf("experiments: monitor: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[monitored run: %d windows, %d series, host time %v]\n",
			rep.Store.Windows(), rep.Store.Len(), time.Since(start).Round(time.Millisecond))
		filter := bench.DefaultMonitorFilter
		if *monitorAll {
			filter = nil
		}
		fmt.Println(bench.FormatMonitor(rep, filter))
		writeOut := func(path string, write func(w io.Writer) error) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err != nil {
				log.Fatalf("experiments: monitor: %v", err)
			}
			if err := write(f); err != nil {
				log.Fatalf("experiments: monitor: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("experiments: monitor: %v", err)
			}
		}
		writeOut(*monitorJSONL, rep.Store.WriteJSONL)
		writeOut(*monitorHTML, func(w io.Writer) error {
			title := fmt.Sprintf("Wide-area monitored run: %d items, capacity %d", *items, *capacity)
			return rep.Store.WriteHTML(w, title, bench.MonitorHTMLOptions(*monitorAll))
		})
	}
	if *run == "speedup" {
		cfg := bench.GridConfig{
			Items:    *items,
			Capacity: *capacity,
			Options:  cluster.Options{ExtraSites: 3, OpenFirewall: true, WANLatency: 20 * time.Millisecond},
		}
		sweep := []int{1, 2, 4}
		if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
			sweep = append(sweep, p)
		}
		start := time.Now()
		rep, err := bench.RunParallelSpeedup(cfg, sweep)
		if err != nil {
			log.Fatalf("experiments: speedup: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[speedup sweep: %d runs, GOMAXPROCS %d, host time %v]\n",
			len(rep.Rows), runtime.GOMAXPROCS(0), time.Since(start).Round(time.Millisecond))
		fmt.Println(bench.FormatSpeedup(rep))
	}
	if *run == "chaos-suite" {
		start := time.Now()
		res, err := chaos.RunSuite(chaos.DefaultSuite(), func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		})
		if err != nil {
			log.Fatalf("experiments: chaos-suite: %v", err)
		}
		scen, inv, fails := res.Counts()
		fmt.Fprintf(os.Stderr, "[chaos suite: %d scenarios, host time %v]\n",
			scen, time.Since(start).Round(time.Millisecond))
		fmt.Printf("chaos suite: %d scenarios, %d invariants, %d failures\n", scen, inv, fails)
		if *chaosJSON != "" {
			f, err := os.Create(*chaosJSON)
			if err != nil {
				log.Fatalf("experiments: chaos-json: %v", err)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				log.Fatalf("experiments: chaos-json: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("experiments: chaos-json: %v", err)
			}
		}
		if !res.Passed() {
			os.Exit(1)
		}
	}
	if *run == "fleet" {
		sizes := fleet.SizeDist{Kind: fleet.DistPareto, Alpha: 1.5, Min: time.Second, Max: 5 * time.Minute}
		// Open-loop rate sized to ~0.85 fleet utilization: slots over the
		// distribution's analytic mean service time.
		slots := float64(*fleetSites) * float64(*fleetHosts) * 2
		rate := 0.85 * slots / sizes.MeanDuration().Seconds()
		start := time.Now()
		rep, err := bench.RunFleet(fleet.Config{
			Sites:        *fleetSites,
			HostsPerSite: *fleetHosts,
			Jobs:         *fleetJobs,
			Seed:         *fleetSeed,
			Arrivals:     fleet.RateShape{Kind: fleet.RateConstant, Rate: rate},
			Sizes:        sizes,
			Heartbeat:    30 * time.Second,
			TraceSample:  100,
		})
		if err != nil {
			log.Fatalf("experiments: fleet: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[fleet run: %d sites x %d hosts, %d jobs, host time %v]\n",
			*fleetSites, *fleetHosts, *fleetJobs, time.Since(start).Round(time.Millisecond))
		fmt.Println(bench.FormatFleet(rep))
	}
	if want("table4") {
		fmt.Println(bench.FormatTable4(needKnap()))
	}
	if want("table5") {
		fmt.Println(bench.FormatTable5(needKnap()))
	}
	if want("table6") {
		fmt.Println(bench.FormatTable6(needKnap()))
	}

	switch *run {
	case "all", "sweep", "table2", "table3", "table4", "table5", "table6",
		"figure1", "figure2", "figure3", "figure4", "figure5", "decomp", "ktrace", "monitor", "gridftp", "speedup", "chaos-suite", "fleet":
	default:
		log.Fatalf("experiments: unknown -run %q", *run)
	}
}
