// Command nxgatekeeper runs a Globus-style gatekeeper on real TCP. It
// authenticates submissions against a shared-secret credential and
// dispatches jobs either to a fork job manager (on this host) or, with
// -allocator, to the RMF Q system beyond the firewall.
//
// Usage:
//
//	nxgatekeeper -secret 0123abcd -subject /O=Grid/CN=demo [-port 2119] [-allocator host:7100]
package main

import (
	"encoding/hex"
	"flag"
	"log"

	"nxcluster/internal/auth"
	"nxcluster/internal/gram"
	"nxcluster/internal/programs"
	"nxcluster/internal/transport"
)

func main() {
	port := flag.Int("port", gram.DefaultPort, "port to listen on")
	secret := flag.String("secret", "", "shared secret key, hex (required)")
	subject := flag.String("subject", "/O=Grid/CN=demo", "authorized subject")
	local := flag.String("local-user", "demo", "local account the subject maps to")
	allocator := flag.String("allocator", "", "RMF allocator address for jobmanager=rmf")
	verbose := flag.Bool("v", false, "trace submissions")
	flag.Parse()
	if *secret == "" {
		log.Fatal("nxgatekeeper: -secret is required")
	}
	key, err := hex.DecodeString(*secret)
	if err != nil {
		log.Fatalf("nxgatekeeper: bad -secret: %v", err)
	}

	kr := auth.NewKeyring()
	kr.Grant(auth.Credential{Subject: *subject, Key: key}, *local)
	gk := gram.NewGatekeeper(gram.Config{
		Keyring:       kr,
		Registry:      programs.Demo(),
		AllocatorAddr: *allocator,
	})
	if *verbose {
		gk.SetTrace(func(format string, args ...interface{}) {
			log.Printf(format, args...)
		})
	}
	env := transport.NewTCPEnv("localhost")
	err = gk.Serve(env, *port, func(addr string) {
		log.Printf("nxgatekeeper: listening on %s (subject %s)", addr, *subject)
	})
	if err != nil {
		log.Fatalf("nxgatekeeper: %v", err)
	}
}
