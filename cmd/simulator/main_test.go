package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nxcluster/internal/scenario"
)

// fastScenario is a sub-second table2 run for end-to-end CLI tests.
const fastScenario = `
name: cli-rtt
desc: one-round RTT probe
kind: table2
workload:
  rounds: 1
  sizes: [4096]
  workers: 1
assert:
  - rows: 4
  - indirect-slower
`

// failingScenario declares an assertion the run cannot satisfy.
const failingScenario = `
name: cli-doomed
kind: table2
workload:
  rounds: 1
  sizes: [4096]
assert:
  - rows: 99
`

const invalidScenario = `
name: cli-bad
kind: chaos
workload:
  items: 8
  capacity: 2
  horizon: 30s
faults:
  - crash: {host: compas99, from: 1s}
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUsageAndUnknownCommand(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage: simulator") {
		t.Errorf("no usage text on stderr: %q", errb.String())
	}
	errb.Reset()
	if code := run([]string{"frobnicate"}, &out, &errb); code != 2 {
		t.Errorf("unknown command: exit %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"help"}, &out, &errb); code != 0 {
		t.Errorf("help: exit %d, want 0", code)
	}
	if !strings.Contains(out.String(), "validate <file>") {
		t.Errorf("help text missing commands: %q", out.String())
	}
}

func TestValidateCommand(t *testing.T) {
	good := writeTemp(t, "good.yaml", fastScenario)
	bad := writeTemp(t, "bad.yaml", invalidScenario)

	var out, errb bytes.Buffer
	if code := run([]string{"validate", good}, &out, &errb); code != 0 {
		t.Fatalf("validate good: exit %d, stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "ok") || !strings.Contains(out.String(), "cli-rtt") {
		t.Errorf("validate output %q", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"validate", good, bad}, &out, &errb); code != 1 {
		t.Fatalf("validate with invalid file: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "INVALID") || !strings.Contains(errb.String(), `"compas99" is not a host`) {
		t.Errorf("invalid diagnostics missing: %q", errb.String())
	}
	if !strings.Contains(errb.String(), "1 of 2 files invalid") {
		t.Errorf("summary line missing: %q", errb.String())
	}

	errb.Reset()
	if code := run([]string{"validate"}, &out, &errb); code != 2 {
		t.Errorf("validate with no files: exit %d, want 2", code)
	}
}

func TestRunCommand(t *testing.T) {
	good := writeTemp(t, "good.yaml", fastScenario)
	jsonPath := filepath.Join(t.TempDir(), "suite.json")

	var out, errb bytes.Buffer
	if code := run([]string{"run", "-json", jsonPath, good}, &out, &errb); code != 0 {
		t.Fatalf("run: exit %d, stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "cli-rtt") || !strings.Contains(out.String(), "PASS") {
		t.Errorf("run output %q", out.String())
	}
	// determinism + rows + indirect-slower
	if !strings.Contains(out.String(), "scenarios=1 invariants=3 failures=0") {
		t.Errorf("counts line wrong: %q", out.String())
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("suite JSON not written: %v", err)
	}
	var suite scenario.SuiteResult
	if err := json.Unmarshal(data, &suite); err != nil {
		t.Fatalf("suite JSON malformed: %v", err)
	}
	if len(suite.Scenarios) != 1 || suite.Scenarios[0].Name != "cli-rtt" || !suite.Scenarios[0].Passed {
		t.Errorf("suite JSON content: %+v", suite)
	}
	if suite.Scenarios[0].TraceHash == "" {
		t.Error("suite JSON is missing the trace hash")
	}
}

func TestRunCommandFailure(t *testing.T) {
	doomed := writeTemp(t, "doomed.yaml", failingScenario)
	var out, errb bytes.Buffer
	if code := run([]string{"run", doomed}, &out, &errb); code != 1 {
		t.Fatalf("run doomed: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "rows = 4, want 99") {
		t.Errorf("failure detail missing: %q", out.String())
	}

	// An invalid file is a hard error before anything runs.
	bad := writeTemp(t, "bad.yaml", invalidScenario)
	errb.Reset()
	if code := run([]string{"run", bad}, &out, &errb); code != 1 {
		t.Errorf("run invalid: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "is not a host") {
		t.Errorf("run invalid diagnostics: %q", errb.String())
	}

	if code := run([]string{"run"}, &out, &errb); code != 2 {
		t.Errorf("run with no files: exit %d, want 2", code)
	}
}

func TestListCommand(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.yaml"), []byte(fastScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.yaml"), []byte("kind: ???\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"list", dir}, &out, &errb); code != 0 {
		t.Fatalf("list: exit %d, stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "cli-rtt") || !strings.Contains(out.String(), "one-round RTT probe") {
		t.Errorf("list output %q", out.String())
	}
	if !strings.Contains(out.String(), "unparseable") {
		t.Errorf("list should flag the unparseable file: %q", out.String())
	}

	if code := run([]string{"list", t.TempDir()}, &out, &errb); code != 1 {
		t.Errorf("list empty dir: exit %d, want 1", code)
	}
	if code := run([]string{"list", "a", "b"}, &out, &errb); code != 2 {
		t.Errorf("list two dirs: exit %d, want 2", code)
	}
}

// TestListDefaultDir runs list against the real shipped library.
func TestListDefaultDir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"list", filepath.Join("..", "..", "scenarios")}, &out, &errb); code != 0 {
		t.Fatalf("list scenarios/: exit %d, stderr %q", code, errb.String())
	}
	for _, want := range []string{"partition-then-heal", "table4-sweep", "gridftp-congestion"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("shipped library listing missing %s:\n%s", want, out.String())
		}
	}
}
