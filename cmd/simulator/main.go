// Command simulator runs declarative scenario files against the simulated
// wide-area testbed.
//
//	simulator validate <file>...        parse + validate, no execution
//	simulator run [flags] <file>...     execute with invariant enforcement
//	simulator list [dir]                inventory a scenario directory
//
// A scenario file (YAML subset or JSON, see internal/scenario) declares the
// topology, the workload kind (chaos, table2, table4, monitor, gridftp,
// grid, or fleet — the open-loop fleet-scale workload that stamps its own
// sites x hosts tree), a fault schedule, and end-of-run assertions.
// Every run is executed twice and must reproduce bit-identically — the
// implicit determinism invariant every scenario carries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"nxcluster/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usageText = `usage: simulator <command> [arguments]

commands:
  validate <file>...      parse and validate scenario files (nothing runs)
  run [flags] <file>...   execute scenarios, enforcing every assertion
      -json FILE          write the suite result JSON (benchdiff gate input)
      -v                  print per-scenario failures as they happen
  list [dir]              list scenarios in a directory (default scenarios/)
`

// run is main minus the process exit, so tests can drive it.
// Exit codes: 0 ok, 1 validation/run failure, 2 usage.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	switch args[0] {
	case "validate":
		return runValidate(args[1:], stdout, stderr)
	case "run":
		return runRun(args[1:], stdout, stderr)
	case "list":
		return runList(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usageText)
		return 0
	}
	fmt.Fprintf(stderr, "simulator: unknown command %q\n\n%s", args[0], usageText)
	return 2
}

func loadSpec(path string) (*scenario.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := scenario.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func runValidate(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "simulator validate: no scenario files given")
		return 2
	}
	bad := 0
	for _, path := range files {
		s, err := loadSpec(path)
		if err == nil {
			err = scenario.Validate(s)
		}
		if err != nil {
			bad++
			fmt.Fprintf(stderr, "INVALID %s: %v\n", path, err)
			continue
		}
		fmt.Fprintf(stdout, "ok      %s (%s, kind %s)\n", path, s.Name, s.Kind)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "simulator validate: %d of %d files invalid\n", bad, len(files))
		return 1
	}
	return 0
}

func runRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.String("json", "", "write suite result JSON to this file")
	verbose := fs.Bool("v", false, "print failures as they happen")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "simulator run: no scenario files given")
		return 2
	}
	suite := &scenario.SuiteResult{}
	for _, path := range files {
		s, err := loadSpec(path)
		if err == nil {
			err = scenario.Validate(s)
		}
		if err != nil {
			fmt.Fprintf(stderr, "simulator run: %v\n", err)
			return 1
		}
		res, err := scenario.Run(s)
		if err != nil {
			fmt.Fprintf(stderr, "simulator run: %s: %v\n", path, err)
			return 1
		}
		suite.Scenarios = append(suite.Scenarios, *res)
		status := "PASS"
		if !res.Passed {
			status = "FAIL"
		}
		fmt.Fprintf(stdout, "%-26s %s  kind=%-7s invariants=%d elapsed=%dms trace=%s\n",
			res.Name, status, res.Kind, res.Invariants, res.ElapsedMS, res.TraceHash)
		if *verbose || !res.Passed {
			for _, f := range res.Failures {
				fmt.Fprintf(stdout, "    FAIL %s\n", f)
			}
		}
	}
	sc, inv, fails := suite.Counts()
	fmt.Fprintf(stdout, "scenarios=%d invariants=%d failures=%d\n", sc, inv, fails)
	if *jsonOut != "" {
		data, err := json.MarshalIndent(suite, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "simulator run: writing %s: %v\n", *jsonOut, err)
			return 1
		}
	}
	if !suite.Passed() {
		return 1
	}
	return 0
}

func runList(args []string, stdout, stderr io.Writer) int {
	dir := "scenarios"
	if len(args) > 1 {
		fmt.Fprintln(stderr, "simulator list: at most one directory")
		return 2
	}
	if len(args) == 1 {
		dir = args[0]
	}
	var files []string
	for _, pat := range []string{"*.yaml", "*.yml", "*.json"} {
		m, _ := filepath.Glob(filepath.Join(dir, pat))
		files = append(files, m...)
	}
	sort.Strings(files)
	if len(files) == 0 {
		fmt.Fprintf(stderr, "simulator list: no scenario files in %s\n", dir)
		return 1
	}
	for _, path := range files {
		s, err := loadSpec(path)
		if err != nil {
			fmt.Fprintf(stdout, "%-28s (unparseable: %v)\n", filepath.Base(path), err)
			continue
		}
		desc := s.Desc
		if desc == "" {
			desc = "-"
		}
		fmt.Fprintf(stdout, "%-28s %-8s %s\n", s.Name, s.Kind, desc)
	}
	return 0
}
