// Command nxbench measures communication latency and bandwidth over real
// TCP, directly or through a running Nexus Proxy pair — the measurement the
// paper's Table 2 reports for the simulated testbed. Run it in two roles:
//
//	nxbench -serve -port 6100                 # echo/ack server
//	nxbench -target host:6100 [-outer host:7000 -inner host:7010]
//
// With -outer/-inner the client connects through NXProxyConnect.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"time"

	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

func main() {
	serve := flag.Bool("serve", false, "run the measurement server")
	port := flag.Int("port", 6100, "server port")
	target := flag.String("target", "", "server address to measure against")
	outer := flag.String("outer", "", "Nexus Proxy outer server (with -inner: measure through the proxy)")
	inner := flag.String("inner", "", "Nexus Proxy inner server")
	rounds := flag.Int("rounds", 16, "rounds per measurement")
	flag.Parse()

	env := transport.NewTCPEnv("localhost")
	if *serve {
		runServer(env, *port)
		return
	}
	if *target == "" {
		log.Fatal("nxbench: need -serve or -target")
	}
	cfg := proxy.Config{OuterServer: *outer, InnerServer: *inner}
	dial := func() (transport.Conn, error) {
		if cfg.Enabled() {
			return proxy.NXProxyConnect(env, cfg, *target)
		}
		return env.Dial(*target)
	}
	c, err := dial()
	if err != nil {
		log.Fatalf("nxbench: connect: %v", err)
	}
	defer c.Close(env)
	st := transport.Stream{Env: env, Conn: c}

	mode := "direct"
	if cfg.Enabled() {
		mode = "indirect (via Nexus Proxy)"
	}
	fmt.Printf("target %s, %s, %d rounds\n", *target, mode, *rounds)

	if err := pingPong(st, 1); err != nil { // warmup
		log.Fatalf("nxbench: %v", err)
	}
	start := time.Now()
	for i := 0; i < *rounds; i++ {
		if err := pingPong(st, 1); err != nil {
			log.Fatalf("nxbench: %v", err)
		}
	}
	lat := time.Since(start) / time.Duration(2**rounds)
	fmt.Printf("latency: %.3f ms (one way)\n", float64(lat)/float64(time.Millisecond))

	for _, size := range []int{4096, 1 << 20} {
		if err := pingPong(st, size); err != nil {
			log.Fatalf("nxbench: %v", err)
		}
		start := time.Now()
		for i := 0; i < *rounds; i++ {
			if err := pingPong(st, size); err != nil {
				log.Fatalf("nxbench: %v", err)
			}
		}
		elapsed := time.Since(start)
		bps := float64(size) * float64(*rounds) / elapsed.Seconds()
		fmt.Printf("bandwidth (%7d byte msgs): %10.1f KB/s\n", size, bps/1024)
	}
}

func pingPong(st transport.Stream, size int) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(size))
	if _, err := st.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := st.Write(make([]byte, size)); err != nil {
		return err
	}
	one := make([]byte, 1)
	_, err := io.ReadFull(st, one)
	return err
}

func runServer(env *transport.TCPEnv, port int) {
	l, err := env.Listen(port)
	if err != nil {
		log.Fatalf("nxbench: listen: %v", err)
	}
	log.Printf("nxbench: serving on %s", l.Addr())
	for {
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		conn := c
		env.Spawn("conn", func(e transport.Env) {
			st := transport.Stream{Env: e, Conn: conn}
			var hdr [4]byte
			buf := make([]byte, 64*1024)
			for {
				if _, err := io.ReadFull(st, hdr[:]); err != nil {
					_ = conn.Close(e)
					return
				}
				remaining := int(binary.BigEndian.Uint32(hdr[:]))
				for remaining > 0 {
					n := len(buf)
					if n > remaining {
						n = remaining
					}
					got, err := st.Read(buf[:n])
					if err != nil {
						_ = conn.Close(e)
						return
					}
					remaining -= got
				}
				if _, err := st.Write([]byte{1}); err != nil {
					return
				}
			}
		})
	}
}
