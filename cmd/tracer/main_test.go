package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nxcluster/internal/obs"
)

const ms = time.Millisecond

// writeSample records a small two-job trace and writes its JSONL to a file.
func writeSample(t *testing.T) string {
	t.Helper()
	o := obs.New()
	job := o.BeginTrace(0, "rmf", "job", "client")
	alloc := o.BeginChild(10*ms, job, "rmf", "allocate", "client", obs.Int("count", 2))
	o.EndSpan(30*ms, alloc, "rmf", "allocate", "client")
	// A child on a different track draws a cross-track flow arrow in the
	// Chrome export.
	exec := o.BeginChild(30*ms, job, "rmf", "exec", "compas1")
	o.EndSpan(60*ms, exec, "rmf", "exec", "compas1")
	o.EmitCtx(40*ms, job, "rmf", "requeue", "client", obs.Str("to", "compas1"))
	o.EndSpan(100*ms, job, "rmf", "job", "client")
	rank := o.BeginTrace(0, "mpi", "rank", "compas1")
	o.EndSpan(50*ms, rank, "mpi", "rank", "compas1")
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyze(t *testing.T) {
	path := writeSample(t)
	var out, errb bytes.Buffer
	if code := run([]string{"analyze", "-legs", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"2 traced jobs", "rmf/job", "mpi/rank", "= total", "per-leg critical-path time:"} {
		if !strings.Contains(s, want) {
			t.Errorf("analyze output missing %q:\n%s", want, s)
		}
	}
}

func TestQuery(t *testing.T) {
	path := writeSample(t)
	var out, errb bytes.Buffer
	if code := run([]string{"query", "-trace", "1", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "trace 1  root rmf/job") || !strings.Contains(s, "rmf/requeue") {
		t.Errorf("query output unexpected:\n%s", s)
	}
	out.Reset()
	if code := run([]string{"query", "-trace", "99", path}, &out, &errb); code != 1 {
		t.Errorf("missing trace should exit 1, got %d", code)
	}
}

func TestChrome(t *testing.T) {
	path := writeSample(t)
	var out, errb bytes.Buffer
	if code := run([]string{"chrome", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{`"ph":"B"`, `"ph":"E"`, `"cat":"flow"`, `"trace":1`} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome output missing %q", want)
		}
	}
}

func TestRoundTripPreservesBytes(t *testing.T) {
	path := writeSample(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var re bytes.Buffer
	if err := obs.FromEvents(events).WriteJSONL(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, re.Bytes()) {
		t.Error("JSONL round trip is not byte-identical")
	}
}

func TestUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args should exit 2, got %d", code)
	}
	if code := run([]string{"help"}, &out, &errb); code != 0 {
		t.Errorf("help should exit 0, got %d", code)
	}
	if code := run([]string{"bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown command should exit 2, got %d", code)
	}
}
