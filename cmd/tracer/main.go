// Command tracer analyzes causal job traces exported by the simulator and
// benchmark harnesses (obs JSONL streams).
//
//	tracer analyze [flags] <trace.jsonl>   whole-run critical-path summary
//	tracer query [flags] <trace.jsonl>     one trace's per-leg decomposition
//	tracer chrome [flags] <trace.jsonl>    re-export as Chrome trace_event JSON
//
// A traced run stamps every span with a trace ID (one per job) and a parent
// span ID; analyze reconstructs the span trees and reports, per job, a
// per-leg decomposition that telescopes bit-exactly to the job's elapsed
// virtual time, plus whole-run per-leg aggregates and the top-K slowest
// jobs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nxcluster/internal/obs"
	"nxcluster/internal/obs/causal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usageText = `usage: tracer <command> [arguments]

commands:
  analyze [flags] <trace.jsonl>   critical-path summary of every traced job
      -top K       show the K slowest jobs (default 10, 0 = all)
      -legs        also print each listed job's full decomposition
  query [flags] <trace.jsonl>     decompose one job's trace
      -trace N     trace ID to decompose (required)
  chrome [flags] <trace.jsonl>    convert to Chrome trace_event JSON
      -o FILE      output file (default stdout); load in ui.perfetto.dev
`

// run is main minus the process exit, so tests can drive it.
// Exit codes: 0 ok, 1 failure, 2 usage.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	switch args[0] {
	case "analyze":
		return runAnalyze(args[1:], stdout, stderr)
	case "query":
		return runQuery(args[1:], stdout, stderr)
	case "chrome":
		return runChrome(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usageText)
		return 0
	}
	fmt.Fprintf(stderr, "tracer: unknown command %q\n\n%s", args[0], usageText)
	return 2
}

// load reads one JSONL trace file ("-" = stdin).
func load(path string, stderr io.Writer) ([]obs.Event, bool) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "tracer: %v\n", err)
			return nil, false
		}
		defer f.Close()
		r = f
	}
	events, err := obs.ReadJSONL(r)
	if err != nil {
		fmt.Fprintf(stderr, "tracer: %s: %v\n", path, err)
		return nil, false
	}
	if len(events) == 0 {
		fmt.Fprintf(stderr, "tracer: %s: no events\n", path)
		return nil, false
	}
	return events, true
}

func runAnalyze(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 10, "show the K slowest jobs (0 = all)")
	legs := fs.Bool("legs", false, "print each listed job's full decomposition")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "tracer analyze: want exactly one trace file\n")
		return 2
	}
	events, ok := load(fs.Arg(0), stderr)
	if !ok {
		return 1
	}
	f := causal.Build(events)
	if len(f.Traces) == 0 {
		fmt.Fprintf(stderr, "tracer: %s: stream has no traced spans (run with tracing enabled)\n", fs.Arg(0))
		return 1
	}
	s := causal.Summarize(f)
	fmt.Fprint(stdout, causal.FormatSummary(s, *top))
	if *legs {
		n := len(s.Jobs)
		if *top > 0 && *top < n {
			n = *top
		}
		for _, d := range s.Jobs[:n] {
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, causal.FormatDecomposition(d))
		}
	}
	return 0
}

func runQuery(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	traceID := fs.Uint64("trace", 0, "trace ID to decompose")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 || *traceID == 0 {
		fmt.Fprintf(stderr, "tracer query: want -trace N and one trace file\n")
		return 2
	}
	events, ok := load(fs.Arg(0), stderr)
	if !ok {
		return 1
	}
	f := causal.Build(events)
	tr := f.Trace(*traceID)
	if tr == nil {
		fmt.Fprintf(stderr, "tracer: no trace %d in %s (%d traces present)\n", *traceID, fs.Arg(0), len(f.Traces))
		return 1
	}
	for _, root := range tr.Roots {
		d, err := causal.Decompose(root)
		if err != nil {
			fmt.Fprintf(stderr, "tracer: %v\n", err)
			continue
		}
		fmt.Fprint(stdout, causal.FormatDecomposition(d))
	}
	if len(tr.Marks) > 0 {
		fmt.Fprintf(stdout, "marks:\n")
		for _, m := range tr.Marks {
			fmt.Fprintf(stdout, "  %12d %s/%s [%s]\n", int64(m.At), m.Cat, m.Name, m.Track)
		}
	}
	if tr.Incomplete > 0 {
		fmt.Fprintf(stdout, "%d incomplete spans (ends never recorded)\n", tr.Incomplete)
	}
	return 0
}

func runChrome(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chrome", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "tracer chrome: want exactly one trace file\n")
		return 2
	}
	events, ok := load(fs.Arg(0), stderr)
	if !ok {
		return 1
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "tracer: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := obs.FromEvents(events).WriteChromeTrace(w); err != nil {
		fmt.Fprintf(stderr, "tracer: %v\n", err)
		return 1
	}
	return 0
}
