// Command nxrun submits an RSL job request to a gatekeeper and waits for
// completion, like globusrun.
//
// Usage:
//
//	nxrun -gatekeeper host:2119 -secret 0123abcd -subject /O=Grid/CN=demo \
//	      '&(executable=hostname)(count=2)(jobmanager=rmf)'
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"time"

	"nxcluster/internal/auth"
	"nxcluster/internal/gram"
	"nxcluster/internal/transport"
)

func main() {
	gk := flag.String("gatekeeper", "localhost:2119", "gatekeeper address")
	secret := flag.String("secret", "", "shared secret key, hex (required)")
	subject := flag.String("subject", "/O=Grid/CN=demo", "credential subject")
	timeout := flag.Duration("timeout", time.Minute, "wait timeout")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("nxrun: exactly one RSL argument required")
	}
	if *secret == "" {
		log.Fatal("nxrun: -secret is required")
	}
	key, err := hex.DecodeString(*secret)
	if err != nil {
		log.Fatalf("nxrun: bad -secret: %v", err)
	}
	cred := auth.Credential{Subject: *subject, Key: key}
	env := transport.NewTCPEnv("localhost")

	contact, err := gram.Submit(env, *gk, cred, flag.Arg(0))
	if err != nil {
		log.Fatalf("nxrun: submit: %v", err)
	}
	fmt.Printf("job contact: %s\n", contact)
	if err := gram.Wait(env, *gk, cred, contact, 100*time.Millisecond, *timeout); err != nil {
		log.Fatalf("nxrun: %v", err)
	}
	fmt.Println("job completed")
}
