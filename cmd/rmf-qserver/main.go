// Command rmf-qserver runs an RMF Q server on real TCP: the per-resource
// job-execution daemon of the paper's Q system. It registers with the
// allocator at startup and executes submitted processes from the demo
// program registry.
//
// Usage:
//
//	rmf-qserver -name node0 -cluster compas [-port 7101] [-allocator host:7100]
package main

import (
	"flag"
	"log"

	"nxcluster/internal/programs"
	"nxcluster/internal/rmf"
	"nxcluster/internal/transport"
)

func main() {
	name := flag.String("name", "node0", "resource name")
	cluster := flag.String("cluster", "default", "cluster label")
	cpus := flag.Int("cpus", 1, "advertised processor count")
	port := flag.Int("port", rmf.QServerPort, "port to listen on")
	allocator := flag.String("allocator", "", "allocator address to register with (host:port)")
	verbose := flag.Bool("v", false, "trace job activity")
	flag.Parse()

	env := transport.NewTCPEnv("localhost")
	q := rmf.NewQServer(*name, *cluster, *cpus, programs.Demo())
	if *verbose {
		q.SetTrace(func(format string, args ...interface{}) {
			log.Printf(format, args...)
		})
	}
	err := q.Serve(env, *port, *allocator, func(addr string) {
		log.Printf("rmf-qserver: %s (%s, %d cpus) listening on %s", *name, *cluster, *cpus, addr)
	})
	if err != nil {
		log.Fatalf("rmf-qserver: %v", err)
	}
}
