// Package firewall models the packet-filtering gateways the paper's system
// must traverse. A firewall separates a site's inside from the Internet and
// filters connection attempts by direction and destination port.
//
// The paper identifies two rule-set styles and one "typical" combination:
//
//   - allow-based: all ports open by default, specific ports closed;
//   - deny-based: all ports closed by default, specific ports opened;
//   - typical site policy: deny-based for incoming packets, allow-based for
//     outgoing packets.
//
// That typical policy is what breaks Globus 1.0 (Nexus listens on dynamic
// ports, so inbound connections are denied) and what the Nexus Proxy works
// around by pre-opening a single nxport from the outer server to the inner
// server.
package firewall

import (
	"fmt"
	"sort"
	"strings"
)

// Direction of a connection attempt relative to the protected site.
type Direction int

const (
	// Incoming means the connection originates outside the site and targets
	// a host inside it.
	Incoming Direction = iota
	// Outgoing means the connection originates inside the site and targets
	// a host outside it.
	Outgoing
)

// String returns "incoming" or "outgoing".
func (d Direction) String() string {
	if d == Incoming {
		return "incoming"
	}
	return "outgoing"
}

// Policy is the verdict applied to a matched or unmatched packet.
type Policy int

const (
	// Deny rejects the connection.
	Deny Policy = iota
	// Allow permits the connection.
	Allow
)

// String returns "deny" or "allow".
func (p Policy) String() string {
	if p == Allow {
		return "allow"
	}
	return "deny"
}

// Rule matches a destination-port range and applies a policy. A zero-value
// port range (0,0) matches every port.
type Rule struct {
	// PortMin and PortMax bound the matched destination ports, inclusive.
	PortMin, PortMax int
	// Policy applied when the rule matches.
	Policy Policy
	// Comment is carried for audit rendering.
	Comment string
}

// Matches reports whether the rule covers dstPort.
func (r Rule) Matches(dstPort int) bool {
	if r.PortMin == 0 && r.PortMax == 0 {
		return true
	}
	return dstPort >= r.PortMin && dstPort <= r.PortMax
}

// RuleSet is an ordered rule list with a default policy; the first matching
// rule wins.
type RuleSet struct {
	// Default applies when no rule matches.
	Default Policy
	// Rules are evaluated in order.
	Rules []Rule
}

// Verdict returns the policy for a connection to dstPort.
func (rs RuleSet) Verdict(dstPort int) Policy {
	for _, r := range rs.Rules {
		if r.Matches(dstPort) {
			return r.Policy
		}
	}
	return rs.Default
}

// Firewall is a site gateway's filter configuration plus counters. The
// zero value permits everything (both defaults Allow would require explicit
// construction; use New or a preset instead).
type Firewall struct {
	// Site is the protected site's name, used in error messages.
	Site string
	// Incoming filters connections from outside targeting inside hosts.
	Incoming RuleSet
	// Outgoing filters connections from inside targeting outside hosts.
	Outgoing RuleSet

	// stats
	allowed map[string]int
	denied  map[string]int
}

// New creates a firewall for site with the paper's typical configuration:
// deny-based incoming, allow-based outgoing.
func New(site string) *Firewall {
	return &Firewall{
		Site:     site,
		Incoming: RuleSet{Default: Deny},
		Outgoing: RuleSet{Default: Allow},
	}
}

// AllowIncomingPort opens a single inbound destination port (the nxport
// mechanism: the only port that must be opened in advance for the proxy).
func (f *Firewall) AllowIncomingPort(port int, comment string) {
	f.Incoming.Rules = append(f.Incoming.Rules, Rule{PortMin: port, PortMax: port, Policy: Allow, Comment: comment})
}

// AllowIncomingRange opens an inbound destination port range. This mirrors
// the Globus 1.1 TCP_MIN_PORT/TCP_MAX_PORT escape hatch the paper argues
// degrades a deny-based firewall into an allow-based one.
func (f *Firewall) AllowIncomingRange(min, max int, comment string) {
	f.Incoming.Rules = append(f.Incoming.Rules, Rule{PortMin: min, PortMax: max, Policy: Allow, Comment: comment})
}

// DenyOutgoingPort closes a single outbound destination port.
func (f *Firewall) DenyOutgoingPort(port int, comment string) {
	f.Outgoing.Rules = append(f.Outgoing.Rules, Rule{PortMin: port, PortMax: port, Policy: Deny, Comment: comment})
}

// PermitConn decides a connection attempt crossing the firewall in the given
// direction toward dstPort, recording the decision for audit. src and dst
// name the endpoints for counters only; filtering is by direction and port,
// as in the paper's model.
func (f *Firewall) PermitConn(dir Direction, src, dst string, dstPort int) bool {
	var verdict Policy
	switch dir {
	case Incoming:
		verdict = f.Incoming.Verdict(dstPort)
	default:
		verdict = f.Outgoing.Verdict(dstPort)
	}
	key := fmt.Sprintf("%s %s->%s:%d", dir, src, dst, dstPort)
	if verdict == Allow {
		if f.allowed == nil {
			f.allowed = make(map[string]int)
		}
		f.allowed[key]++
		return true
	}
	if f.denied == nil {
		f.denied = make(map[string]int)
	}
	f.denied[key]++
	return false
}

// DeniedCount returns the total number of denied connection attempts.
func (f *Firewall) DeniedCount() int {
	n := 0
	for _, c := range f.denied {
		n += c
	}
	return n
}

// AllowedCount returns the total number of permitted connection attempts.
func (f *Firewall) AllowedCount() int {
	n := 0
	for _, c := range f.allowed {
		n += c
	}
	return n
}

// AuditLog renders the decision counters, sorted, one per line.
func (f *Firewall) AuditLog() string {
	var b strings.Builder
	var keys []string
	for k := range f.allowed {
		keys = append(keys, "ALLOW "+k)
	}
	for k := range f.denied {
		keys = append(keys, "DENY  "+k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(&b, k)
	}
	return b.String()
}

// Describe renders the configuration in a human-readable form.
func (f *Firewall) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "firewall %s:\n", f.Site)
	fmt.Fprintf(&b, "  incoming: default %s\n", f.Incoming.Default)
	for _, r := range f.Incoming.Rules {
		fmt.Fprintf(&b, "    %s ports %d-%d  # %s\n", r.Policy, r.PortMin, r.PortMax, r.Comment)
	}
	fmt.Fprintf(&b, "  outgoing: default %s\n", f.Outgoing.Default)
	for _, r := range f.Outgoing.Rules {
		fmt.Fprintf(&b, "    %s ports %d-%d  # %s\n", r.Policy, r.PortMin, r.PortMax, r.Comment)
	}
	return b.String()
}

// Open is a firewall-shaped value that permits everything; used for sites
// without a firewall (like ETL's public hosts in the paper's testbed).
func Open(site string) *Firewall {
	return &Firewall{
		Site:     site,
		Incoming: RuleSet{Default: Allow},
		Outgoing: RuleSet{Default: Allow},
	}
}
