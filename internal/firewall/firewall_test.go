package firewall

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypicalConfigDeniesUnknownIncoming(t *testing.T) {
	f := New("rwcp")
	if f.PermitConn(Incoming, "outside", "inside", 45678) {
		t.Fatal("deny-based incoming permitted an unopened port")
	}
	if !f.PermitConn(Outgoing, "inside", "outside", 45678) {
		t.Fatal("allow-based outgoing denied a connection")
	}
}

func TestAllowIncomingPortOpensExactlyThatPort(t *testing.T) {
	f := New("rwcp")
	f.AllowIncomingPort(7010, "nxport: outer->inner proxy channel")
	if !f.PermitConn(Incoming, "outer", "inner", 7010) {
		t.Fatal("opened nxport denied")
	}
	if f.PermitConn(Incoming, "outer", "inner", 7011) {
		t.Fatal("adjacent port permitted")
	}
	if f.PermitConn(Incoming, "outer", "inner", 7009) {
		t.Fatal("adjacent port permitted")
	}
}

func TestAllowIncomingRange(t *testing.T) {
	f := New("site")
	f.AllowIncomingRange(40000, 40100, "TCP_MIN_PORT/TCP_MAX_PORT style")
	for _, tc := range []struct {
		port int
		want bool
	}{
		{39999, false}, {40000, true}, {40050, true}, {40100, true}, {40101, false},
	} {
		if got := f.PermitConn(Incoming, "a", "b", tc.port); got != tc.want {
			t.Errorf("port %d: permit=%v, want %v", tc.port, got, tc.want)
		}
	}
}

func TestFirstMatchWins(t *testing.T) {
	f := New("site")
	f.Incoming.Rules = []Rule{
		{PortMin: 80, PortMax: 80, Policy: Deny, Comment: "explicit deny"},
		{PortMin: 1, PortMax: 1024, Policy: Allow, Comment: "low ports"},
	}
	if f.PermitConn(Incoming, "a", "b", 80) {
		t.Fatal("first-match deny overridden by later allow")
	}
	if !f.PermitConn(Incoming, "a", "b", 81) {
		t.Fatal("range allow not applied")
	}
}

func TestDenyOutgoingPort(t *testing.T) {
	f := New("site")
	f.DenyOutgoingPort(25, "no smtp")
	if f.PermitConn(Outgoing, "in", "out", 25) {
		t.Fatal("denied outgoing port permitted")
	}
	if !f.PermitConn(Outgoing, "in", "out", 26) {
		t.Fatal("default outgoing allow broken")
	}
}

func TestOpenFirewallPermitsEverything(t *testing.T) {
	f := Open("etl")
	if !f.PermitConn(Incoming, "a", "b", 1) || !f.PermitConn(Outgoing, "b", "a", 65535) {
		t.Fatal("Open firewall denied a connection")
	}
}

func TestCountersAndAudit(t *testing.T) {
	f := New("rwcp")
	f.AllowIncomingPort(7010, "nxport")
	f.PermitConn(Incoming, "outer", "inner", 7010)
	f.PermitConn(Incoming, "outer", "inner", 7010)
	f.PermitConn(Incoming, "evil", "inner", 22)
	if f.AllowedCount() != 2 {
		t.Fatalf("AllowedCount = %d, want 2", f.AllowedCount())
	}
	if f.DeniedCount() != 1 {
		t.Fatalf("DeniedCount = %d, want 1", f.DeniedCount())
	}
	log := f.AuditLog()
	if !strings.Contains(log, "DENY") || !strings.Contains(log, "ALLOW") {
		t.Fatalf("audit log missing entries:\n%s", log)
	}
}

func TestDescribeMentionsRules(t *testing.T) {
	f := New("rwcp")
	f.AllowIncomingPort(7010, "nxport")
	d := f.Describe()
	for _, want := range []string{"rwcp", "incoming: default deny", "outgoing: default allow", "7010", "nxport"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestWildcardRuleMatchesAllPorts(t *testing.T) {
	rs := RuleSet{Default: Allow, Rules: []Rule{{Policy: Deny, Comment: "block all"}}}
	for _, port := range []int{1, 80, 65535} {
		if rs.Verdict(port) != Deny {
			t.Errorf("wildcard rule missed port %d", port)
		}
	}
}

// Property: a deny-based incoming rule set with a single allowed port permits
// that port and nothing else.
func TestQuickSinglePortProperty(t *testing.T) {
	prop := func(open uint16, probe uint16) bool {
		if open == 0 {
			return true // port 0 is the wildcard sentinel, not a real port
		}
		f := New("s")
		f.AllowIncomingPort(int(open), "t")
		got := f.PermitConn(Incoming, "a", "b", int(probe))
		return got == (probe == open)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: verdicts depend only on (direction, port), never on endpoint
// names, matching the paper's packet-filter model.
func TestQuickEndpointIndependence(t *testing.T) {
	prop := func(port uint16, a, b, c, d string) bool {
		f := New("s")
		f.AllowIncomingRange(100, 30000, "r")
		return f.PermitConn(Incoming, a, b, int(port)) == f.PermitConn(Incoming, c, d, int(port))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
