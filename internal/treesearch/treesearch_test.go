package treesearch

import (
	"fmt"
	"testing"
	"time"

	"nxcluster/internal/mpi"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
)

// nqueens builds an Expander counting N-queens solutions. A task encodes
// [n, placedCount, col0, col1, ...].
func nqueens() Expander {
	return ExpanderFunc(func(task []byte, emit func([]byte)) int64 {
		n := int(task[0])
		placed := int(task[1])
		cols := task[2 : 2+placed]
		if placed == n {
			return 1 // a solution
		}
		for c := 0; c < n; c++ {
			ok := true
			for r, pc := range cols {
				if int(pc) == c || placed-r == c-int(pc) || placed-r == int(pc)-c {
					ok = false
					break
				}
			}
			if ok {
				child := make([]byte, 2+placed+1)
				child[0] = byte(n)
				child[1] = byte(placed + 1)
				copy(child[2:], cols)
				child[2+placed] = byte(c)
				emit(child)
			}
		}
		return 0
	})
}

func nqueensRoot(n int) []byte { return []byte{byte(n), 0} }

// knownCounts are the classic N-queens solution counts.
var knownCounts = map[int]int64{4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352}

// runWorld executes a search on a simulated LAN with the given rank count.
func runWorld(t *testing.T, ranks int, root []byte, ex Expander, p Params) *Result {
	t.Helper()
	k := sim.New()
	net := simnet.New(k)
	net.AddRouter("sw", "")
	pls := make([]mpi.Placement, ranks)
	for i := range pls {
		name := fmt.Sprintf("n%d", i)
		net.AddHost(name, simnet.HostConfig{})
		net.Connect(name, "sw", simnet.LinkConfig{Latency: 200 * time.Microsecond, Bandwidth: 12 << 20})
		pls[i] = mpi.Placement{Name: name, Spawn: net.Node(name).SpawnOn}
	}
	w := mpi.NewWorld(pls)
	var res *Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := Run(c, root, ex, p)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNQueensCountsSingleRank(t *testing.T) {
	for n, want := range knownCounts {
		res := runWorld(t, 1, nqueensRoot(n), nqueens(), Params{Combine: Sum})
		if res.Score != want {
			t.Errorf("n=%d: %d solutions, want %d", n, res.Score, want)
		}
	}
}

func TestNQueensParallelMatchesSequential(t *testing.T) {
	seq := runWorld(t, 1, nqueensRoot(8), nqueens(), Params{Combine: Sum})
	par := runWorld(t, 6, nqueensRoot(8), nqueens(), Params{
		Combine: Sum, Interval: 10, StealUnit: 2, TaskCost: 50 * time.Microsecond,
	})
	if par.Score != 92 || seq.Score != 92 {
		t.Fatalf("scores: seq=%d par=%d, want 92", seq.Score, par.Score)
	}
	// Work conservation: identical expansion counts regardless of ranks.
	if par.Expanded != seq.Expanded {
		t.Fatalf("expanded: seq=%d par=%d", seq.Expanded, par.Expanded)
	}
	// All ranks contributed.
	busy := 0
	for _, v := range par.PerRank {
		if v > 0 {
			busy++
		}
	}
	if busy < 4 {
		t.Fatalf("only %d of 6 ranks expanded tasks: %v", busy, par.PerRank)
	}
}

// TestMaxCombine searches for the deepest path in a skewed tree.
func TestMaxCombine(t *testing.T) {
	// Task = [depth]; each node emits children up to depth 6 with widths
	// shrinking by depth; score = depth.
	deepest := ExpanderFunc(func(task []byte, emit func([]byte)) int64 {
		d := int64(task[0])
		if d < 6 {
			for i := 0; i < 2; i++ {
				emit([]byte{byte(d + 1)})
			}
		}
		return d
	})
	res := runWorld(t, 3, []byte{0}, deepest, Params{Combine: Max, Interval: 5, TaskCost: 10 * time.Microsecond})
	if res.Score != 6 {
		t.Fatalf("max score = %d, want 6", res.Score)
	}
	if res.Expanded != 127 {
		t.Fatalf("expanded = %d, want 127 (full binary tree depth 6)", res.Expanded)
	}
}

func TestBatchCodec(t *testing.T) {
	ts := [][]byte{{1, 2}, nil, {3}}
	got, err := decodeBatch(encodeBatch(ts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "\x01\x02" || len(got[1]) != 0 || string(got[2]) != "\x03" {
		t.Fatalf("round trip = %v", got)
	}
	if _, err := decodeBatch([]byte{0, 0}); err == nil {
		t.Fatal("truncated batch decoded")
	}
}

func TestStackOps(t *testing.T) {
	var s stack
	for i := byte(0); i < 5; i++ {
		s.push([]byte{i})
	}
	bottom := s.takeBottom(2)
	if len(bottom) != 2 || bottom[0][0] != 0 || bottom[1][0] != 1 {
		t.Fatalf("takeBottom = %v", bottom)
	}
	top, ok := s.pop()
	if !ok || top[0] != 4 {
		t.Fatalf("pop = %v, %v", top, ok)
	}
	if s.len() != 2 {
		t.Fatalf("len = %d", s.len())
	}
	s.takeBottom(99)
	if _, ok := s.pop(); ok {
		t.Fatal("pop on empty stack")
	}
}
