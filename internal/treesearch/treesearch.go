// Package treesearch generalizes the paper's parallel tree-search engine
// into a reusable library: the conclusion of the paper is that "a parallel
// tree search problem has a coarse grained and asynchronous parallelism
// [and] is considered suitable for metacomputing environments", and this
// package lets any such problem run on the same master/worker
// self-scheduler the knapsack evaluation uses — opaque encoded tasks, a
// depth-first stack per rank, demand-driven stealing from the master, and
// periodic voluntary sharing of coarse (oldest) tasks.
//
// A problem supplies an Expander that expands one task into child tasks and
// a score contribution; scores combine by Max (optimization searches) or
// Sum (counting searches). internal/knapsack keeps its own specialized
// implementation for paper fidelity; new applications should use this one
// (internal/nqueens and examples/nqueens show the pattern).
package treesearch

import (
	"errors"
	"fmt"
	"time"

	"nxcluster/internal/mpi"
	"nxcluster/internal/nexus"
)

// Expander expands one encoded task: it calls emit for each child task and
// returns the task's score contribution (interpretation depends on the
// combine mode).
type Expander interface {
	Expand(task []byte, emit func(child []byte)) int64
}

// ExpanderFunc adapts a function to the Expander interface.
type ExpanderFunc func(task []byte, emit func(child []byte)) int64

// Expand implements Expander.
func (f ExpanderFunc) Expand(task []byte, emit func(child []byte)) int64 {
	return f(task, emit)
}

// Combine selects how per-task scores merge.
type Combine int

// Combine modes.
const (
	// Max keeps the largest score (branch-and-bound style searches).
	Max Combine = iota
	// Sum adds every score (counting searches).
	Sum
)

// Params mirror the knapsack scheduler's knobs.
type Params struct {
	// Interval is the number of expansions between scheduler interactions.
	Interval int
	// StealUnit is how many tasks a steal reply carries.
	StealUnit int
	// BackUnit is how many coarse tasks a worker returns when sharing.
	BackUnit int
	// ShareInterval makes a busy worker return BackUnit of its oldest
	// tasks every ShareInterval expansions; 0 selects 2*Interval, negative
	// disables.
	ShareInterval int
	// MasterReserve is the stack depth the master keeps while serving;
	// 0 selects 2, negative disables.
	MasterReserve int
	// Combine selects Max or Sum.
	Combine Combine
	// TaskCost is the virtual CPU time one expansion costs.
	TaskCost time.Duration
}

func (p Params) withDefaults() Params {
	if p.Interval <= 0 {
		p.Interval = 100
	}
	if p.StealUnit <= 0 {
		p.StealUnit = 2
	}
	if p.BackUnit <= 0 {
		p.BackUnit = 2
	}
	if p.ShareInterval == 0 {
		p.ShareInterval = 2 * p.Interval
	}
	if p.MasterReserve == 0 {
		p.MasterReserve = 2
	}
	return p
}

// Result summarizes a run.
type Result struct {
	// Score is the combined score (valid on every rank).
	Score int64
	// Expanded counts tasks expanded across ranks (valid on rank 0).
	Expanded int64
	// PerRank holds each rank's expansion count (valid on rank 0).
	PerRank []int64
	// Elapsed is the master's measure of the search (valid on rank 0).
	Elapsed time.Duration
}

// Message tags.
const (
	tagSteal = 11
	tagWork  = 12
	tagBack  = 13
	tagTerm  = 14
)

var errBadBatch = errors.New("treesearch: malformed task batch")

// stack is a LIFO of encoded tasks.
type stack struct{ tasks [][]byte }

func (s *stack) push(t []byte) { s.tasks = append(s.tasks, t) }
func (s *stack) len() int      { return len(s.tasks) }
func (s *stack) pop() ([]byte, bool) {
	if len(s.tasks) == 0 {
		return nil, false
	}
	t := s.tasks[len(s.tasks)-1]
	s.tasks = s.tasks[:len(s.tasks)-1]
	return t, true
}

// takeBottom removes up to k of the oldest (coarsest) tasks.
func (s *stack) takeBottom(k int) [][]byte {
	if k > len(s.tasks) {
		k = len(s.tasks)
	}
	out := make([][]byte, k)
	copy(out, s.tasks[:k])
	s.tasks = append(s.tasks[:0], s.tasks[k:]...)
	return out
}

func (s *stack) pushAll(ts [][]byte) { s.tasks = append(s.tasks, ts...) }

func encodeBatch(ts [][]byte) []byte {
	b := nexus.NewBuffer()
	b.PutInt32(int32(len(ts)))
	for _, t := range ts {
		b.PutBytes(t)
	}
	return b.Bytes()
}

func decodeBatch(data []byte) ([][]byte, error) {
	b := nexus.FromBytes(data)
	n, err := b.GetInt32()
	if err != nil || n < 0 {
		return nil, errBadBatch
	}
	out := make([][]byte, n)
	for i := range out {
		t, err := b.GetBytes()
		if err != nil {
			return nil, errBadBatch
		}
		out[i] = append([]byte(nil), t...)
	}
	return out, nil
}

// engine is the per-rank search state.
type engine struct {
	ex       Expander
	p        Params
	stack    stack
	score    int64
	hasScore bool
	expanded int64
}

func (e *engine) combine(v int64) {
	if !e.hasScore {
		e.score, e.hasScore = v, true
		return
	}
	if e.p.Combine == Sum {
		e.score += v
	} else if v > e.score {
		e.score = v
	}
}

// expandN expands up to k tasks; returns how many ran.
func (e *engine) expandN(k int) int {
	for i := 0; i < k; i++ {
		t, ok := e.stack.pop()
		if !ok {
			return i
		}
		e.expanded++
		e.combine(e.ex.Expand(t, func(child []byte) {
			e.stack.push(append([]byte(nil), child...))
		}))
	}
	return k
}

// Run executes the search on the communicator: rank 0 is the master holding
// the root task, other ranks steal on demand. Every rank must pass the same
// root, expander semantics and params; every rank receives the combined
// score.
func Run(c *mpi.Comm, root []byte, ex Expander, p Params) (*Result, error) {
	p = p.withDefaults()
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	start := c.Env().Now()
	eng := &engine{ex: ex, p: p}
	var err error
	if c.Rank() == 0 {
		eng.stack.push(append([]byte(nil), root...))
		err = runMaster(c, eng, p)
	} else {
		err = runWorker(c, eng, p)
	}
	if err != nil {
		return nil, err
	}
	elapsed := c.Env().Now() - start

	// Combine scores across ranks. Ranks that never expanded anything use
	// the identity for the mode.
	local := eng.score
	if !eng.hasScore {
		if p.Combine == Sum {
			local = 0
		} else {
			local = -1 << 62
		}
	}
	var score int64
	if p.Combine == Sum {
		score, err = c.AllreduceInt64(local, mpi.OpSum)
	} else {
		score, err = c.AllreduceInt64(local, mpi.OpMax)
	}
	if err != nil {
		return nil, err
	}
	var counts [8]byte
	for i := 0; i < 8; i++ {
		counts[i] = byte(eng.expanded >> (56 - 8*i))
	}
	parts, err := c.Gather(0, counts[:])
	if err != nil {
		return nil, err
	}
	res := &Result{Score: score, Elapsed: elapsed}
	if c.Rank() == 0 {
		for _, part := range parts {
			var v int64
			for i := 0; i < 8; i++ {
				v = v<<8 | int64(part[i])
			}
			res.PerRank = append(res.PerRank, v)
			res.Expanded += v
		}
	}
	return res, nil
}

func runMaster(c *mpi.Comm, eng *engine, p Params) error {
	nworkers := c.Size() - 1
	var pending []int
	reserve := p.MasterReserve
	if reserve < 0 {
		reserve = 0
	}
	serve := func() error {
		for len(pending) > 0 && eng.stack.len() > reserve {
			to := pending[0]
			pending = pending[1:]
			if err := c.Send(to, tagWork, encodeBatch(eng.stack.takeBottom(p.StealUnit))); err != nil {
				return err
			}
		}
		return nil
	}
	handle := func(m mpi.Message) error {
		switch m.Tag {
		case tagSteal:
			pending = append(pending, m.Src)
		case tagBack:
			ts, err := decodeBatch(m.Data)
			if err != nil {
				return err
			}
			eng.stack.pushAll(ts)
		default:
			return fmt.Errorf("treesearch master: unexpected tag %d", m.Tag)
		}
		return nil
	}
	for {
		if eng.stack.len() > 0 {
			ran := eng.expandN(p.Interval)
			if p.TaskCost > 0 && ran > 0 {
				c.Env().Compute(time.Duration(ran) * p.TaskCost)
			}
			for c.Iprobe(mpi.AnySource, mpi.AnyTag) {
				m, err := c.Recv(mpi.AnySource, mpi.AnyTag)
				if err != nil {
					return err
				}
				if err := handle(m); err != nil {
					return err
				}
			}
			if err := serve(); err != nil {
				return err
			}
			continue
		}
		if len(pending) == nworkers {
			break
		}
		m, err := c.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return err
		}
		if err := handle(m); err != nil {
			return err
		}
		if err := serve(); err != nil {
			return err
		}
	}
	for i := 1; i < c.Size(); i++ {
		if err := c.Send(i, tagTerm, nil); err != nil {
			return err
		}
	}
	return nil
}

func runWorker(c *mpi.Comm, eng *engine, p Params) error {
	ops := 0
	for {
		if eng.stack.len() == 0 {
			if err := c.Send(0, tagSteal, nil); err != nil {
				return err
			}
			m, err := c.Recv(0, mpi.AnyTag)
			if err != nil {
				return err
			}
			if m.Tag == tagTerm {
				return nil
			}
			if m.Tag != tagWork {
				return fmt.Errorf("treesearch worker: unexpected tag %d", m.Tag)
			}
			ts, err := decodeBatch(m.Data)
			if err != nil {
				return err
			}
			eng.stack.pushAll(ts)
			continue
		}
		ran := eng.expandN(p.Interval)
		ops += ran
		if p.TaskCost > 0 && ran > 0 {
			c.Env().Compute(time.Duration(ran) * p.TaskCost)
		}
		if p.ShareInterval > 0 && ops >= p.ShareInterval && eng.stack.len() > p.BackUnit+1 {
			ops = 0
			if err := c.Send(0, tagBack, encodeBatch(eng.stack.takeBottom(p.BackUnit))); err != nil {
				return err
			}
		}
	}
}
