// Package cluster builds the paper's experimental environment (Figure 5)
// inside the simulator and exposes the four evaluated systems (Table 3) as
// MPI placements: COMPaS, ETL-O2K, the Local-area Cluster and the Wide-area
// Cluster.
//
// # Calibration
//
// Link and relay constants are chosen so the simulated testbed reproduces
// the paper's Table 2 measurements in shape and magnitude:
//
//   - LAN links model the 100Base-T Ethernet at RWCP: 0.4 ms one-way
//     host-to-host latency and ~6.5 MB/s effective stream bandwidth (the
//     paper measures 0.41 ms and 6.32 MB/s for RWCP-Sun <-> COMPaS direct).
//   - The WAN is the 1.5 Mbps IMnet: 3.5 ms link latency (3.9 ms measured
//     end to end) and 187 KB/s bandwidth.
//   - Each relay server charges ~8 ms of CPU per 4 KiB buffer, reproducing
//     the paper's indirect measurements: ~25 ms latency through the relays
//     (60x direct on the LAN, ~6x on the WAN), an order-of-magnitude
//     bandwidth drop for small messages, and ~0.5 MB/s relay-pipeline
//     throughput so large WAN transfers are IMnet-bound and the proxy
//     overhead becomes negligible, the paper's headline observation.
//
// CPU speed factors are relative to one RWCP-Sun processor (the paper's
// sequential baseline machine): COMPaS Pentium Pro 200 MHz nodes at 0.6,
// the ETL-Sun at 1.0, and ETL-O2K R10000 processors at 1.25.
package cluster

import (
	"fmt"
	"strings"
	"time"

	"nxcluster/internal/firewall"
	"nxcluster/internal/mpi"
	"nxcluster/internal/obs"
	"nxcluster/internal/proxy"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

// Host names of the Figure 5 environment.
const (
	RWCPSun   = "rwcp-sun"
	RWCPInner = "rwcp-inner"
	RWCPOuter = "rwcp-outer"
	ETLSun    = "etl-sun"
	ETLO2K    = "etl-o2k"
)

// CompasNode returns the i-th COMPaS node's host name (i in [0,8)).
func CompasNode(i int) string { return fmt.Sprintf("compas%02d", i) }

// CompasNodes is the COMPaS node count.
const CompasNodes = 8

// GridSite returns the i-th extra grid site's name (i in [0,ExtraSites)).
func GridSite(i int) string { return fmt.Sprintf("grid%d", i+1) }

// GridHost returns the i-th extra grid site's compute host: an Origin-class
// SMP like ETL-O2K, reachable over its own IMnet-class WAN link.
func GridHost(i int) string { return GridSite(i) + "-o2k" }

// GridRanks is the per-grid-site rank count GridPlacements assigns.
const GridRanks = 8

// NXPort is the single firewall port opened for the outer->inner relay
// channel.
const NXPort = 7010

// OuterPort is the outer server's control port.
const OuterPort = 7000

// Calibrated network constants (see the package comment).
const (
	// LANHostLatency is the per-link latency of host connections on the
	// site Ethernets.
	LANHostLatency = 150 * time.Microsecond
	// GatewayLatency is the per-link latency of gateway/backbone hops.
	GatewayLatency = 50 * time.Microsecond
	// LANBandwidth is the effective 100Base-T stream bandwidth.
	LANBandwidth = int64(6_500_000)
	// WANLatency is the IMnet link latency.
	WANLatency = 3500 * time.Microsecond
	// WANBandwidth is the 1.5 Mbps IMnet in bytes/second.
	WANBandwidth = int64(187_500)
	// RelayPerBuffer is the calibrated relay processing cost per buffer.
	RelayPerBuffer = 8 * time.Millisecond
	// RelayBufBytes is the relay's read-buffer size.
	RelayBufBytes = 4096
)

// CPU speed factors relative to one RWCP-Sun processor.
const (
	SpeedRWCPSun = 1.0
	SpeedCompas  = 0.6
	SpeedETLSun  = 1.0
	SpeedETLO2K  = 1.25
)

// Options adjust testbed construction.
type Options struct {
	// RelayPerBuffer overrides the calibrated relay cost (0 = calibrated).
	RelayPerBuffer time.Duration
	// RelayBufBytes overrides the relay buffer size (0 = calibrated).
	RelayBufBytes int
	// OpenFirewall opens the RWCP firewall for direct inbound connections,
	// reproducing the paper's "we have temporarily changed the
	// configuration of the firewall" baseline runs.
	OpenFirewall bool
	// Secret, when non-empty, runs the relay daemons with authenticated
	// control channels (the hardened deployment; see proxy/secure.go) and
	// configures every RWCP-site client with the same site secret.
	Secret string
	// Obs, when non-nil, attaches an observability sink to the testbed's
	// network: every layer running on this kernel emits spans, events and
	// metrics into it, stamped with virtual time. Nil (the default) keeps
	// every hot path allocation-free and all results bit-identical.
	//
	// Obs binds to a single kernel, so it requires the monolithic testbed
	// (ParallelSites = 0); partitioned runs attach per-partition observers
	// to Nets[i].Obs instead.
	Obs *obs.Observer
	// Seed, when nonzero, seeds the kernel's deterministic RNG (backoff
	// jitter and any other randomized decisions draw from it). Partitioned
	// testbeds seed every site kernel identically so results do not depend
	// on the partition count.
	Seed uint64
	// WANLatency overrides the calibrated IMnet link latency (0 =
	// calibrated). Raising it models a longer wide-area path for bulk
	// data-plane studies.
	WANLatency time.Duration
	// WANBandwidth overrides the calibrated IMnet bandwidth in bytes/second
	// (0 = calibrated).
	WANBandwidth int64
	// WANLossRate sets a packet-loss probability on the IMnet link. It has
	// no effect unless FlowModel is also set (the base simnet data plane is
	// lossless).
	WANLossRate float64
	// FlowModel, when non-nil, enables simnet's TCP-Reno congestion model
	// for every connection in the testbed. Leave nil to keep the calibrated
	// paper runs bit-identical.
	FlowModel *simnet.FlowConfig
	// ParallelSites, when >= 1, builds the testbed in conservative
	// parallel-DES mode: the topology is partitioned by site (RWCP behind
	// the firewall plus the outer server, ETL, and each extra grid site),
	// every partition runs on its own sub-kernel, and ParallelSites worker
	// threads execute the site kernels concurrently with lookahead
	// synchronization at the minimum inter-site link latency. 0 (the
	// default) keeps the single sequential kernel — the oracle every
	// parallel run is validated against.
	ParallelSites int
	// ExtraSites adds that many "grid" sites — each an ETL-O2K-class host
	// behind its own WAN link off the outer server — widening the testbed
	// beyond Figure 5. Works in both monolithic and parallel modes, so
	// speedup comparisons run the identical topology.
	ExtraSites int
}

// Validate reports option combinations that cannot work together, instead of
// letting construction fail some distance from the mistake. NewTestbed
// panics on these; NewTestbedChecked surfaces the error.
func (o Options) Validate() error {
	if o.ParallelSites < 0 {
		return fmt.Errorf("cluster: Options.ParallelSites must be >= 0, got %d", o.ParallelSites)
	}
	if o.ParallelSites > 0 && o.Obs != nil {
		return fmt.Errorf("cluster: Options.Obs requires the monolithic testbed (ParallelSites = 0); attach per-partition observers to Nets[i].Obs instead")
	}
	return nil
}

// Testbed is the simulated Figure 5 environment with proxy daemons running.
//
// In monolithic mode (Options.ParallelSites == 0), K and Net hold the single
// kernel and network. In parallel mode, Group and Nets hold the per-site
// sub-kernels and their topology mirrors, and K/Net are nil — drive the
// testbed through Run, Shutdown, Node, ApplyPlan and Kernels, which work in
// both modes.
type Testbed struct {
	K        *sim.Kernel
	Net      *simnet.Network
	Group    *sim.Group
	Nets     []*simnet.Network
	Firewall *firewall.Firewall
	Outer    *proxy.OuterServer
	Inner    *proxy.InnerServer
	// ProxyCfg is the client configuration RWCP-site processes use.
	ProxyCfg proxy.Config
	// OuterBoots counts outer-server boots (1 + restarts after host
	// crashes); maintained once EnableRecovery is on.
	OuterBoots int
	opts       Options
	assign     map[string]int
	workers    int
}

// buildTopology adds the Figure 5 nodes, links, firewall and flow model to
// n: the RWCP site, the outer server, the IMnet, the ETL site and any extra
// grid sites. It performs no spawns, so parallel testbeds can build one
// identical mirror per partition. It returns the RWCP firewall.
func buildTopology(n *simnet.Network, opts Options) *firewall.Firewall {
	// RWCP site (firewalled): RWCP-Sun, the COMPaS cluster, the inner
	// server, and the gateway.
	n.AddRouter("rwcp-lan", "rwcp")
	n.AddRouter("compas-sw", "rwcp")
	n.AddRouter("rwcp-gw", "rwcp")
	n.AddHost(RWCPSun, simnet.HostConfig{Site: "rwcp", Speed: SpeedRWCPSun, CPUs: 4})
	n.AddHost(RWCPInner, simnet.HostConfig{Site: "rwcp", Speed: 1.0, CPUs: 2})
	for i := 0; i < CompasNodes; i++ {
		n.AddHost(CompasNode(i), simnet.HostConfig{Site: "rwcp", Speed: SpeedCompas, CPUs: 4})
	}
	lan := simnet.LinkConfig{Latency: LANHostLatency, Bandwidth: LANBandwidth}
	bb := simnet.LinkConfig{Latency: GatewayLatency, Bandwidth: LANBandwidth}
	n.Connect(RWCPSun, "rwcp-lan", lan)
	n.Connect(RWCPInner, "rwcp-lan", lan)
	n.Connect("compas-sw", "rwcp-lan", bb)
	for i := 0; i < CompasNodes; i++ {
		n.Connect(CompasNode(i), "compas-sw", lan)
	}
	n.Connect("rwcp-lan", "rwcp-gw", bb)

	// The outer server sits just outside the firewall.
	n.AddHost(RWCPOuter, simnet.HostConfig{Speed: 1.0, CPUs: 2})
	n.Connect("rwcp-gw", RWCPOuter, bb)

	// IMnet to ETL; the paper's ETL hosts are directly reachable.
	n.AddRouter("etl-gw", "etl")
	n.AddRouter("etl-lan", "etl")
	wan := simnet.LinkConfig{Latency: WANLatency, Bandwidth: WANBandwidth, LossRate: opts.WANLossRate}
	if opts.WANLatency > 0 {
		wan.Latency = opts.WANLatency
	}
	if opts.WANBandwidth > 0 {
		wan.Bandwidth = opts.WANBandwidth
	}
	n.Connect(RWCPOuter, "etl-gw", wan)
	n.Connect("etl-gw", "etl-lan", bb)
	n.AddHost(ETLSun, simnet.HostConfig{Site: "etl", Speed: SpeedETLSun, CPUs: 6})
	n.AddHost(ETLO2K, simnet.HostConfig{Site: "etl", Speed: SpeedETLO2K, CPUs: 16})
	n.Connect(ETLSun, "etl-lan", lan)
	n.Connect(ETLO2K, "etl-lan", lan)

	// Extra grid sites: each an O2K-class SMP on its own WAN spur off the
	// outer server, publicly reachable like ETL.
	for i := 0; i < opts.ExtraSites; i++ {
		site := GridSite(i)
		n.AddRouter(site+"-gw", site)
		n.AddRouter(site+"-lan", site)
		n.Connect(RWCPOuter, site+"-gw", wan)
		n.Connect(site+"-gw", site+"-lan", bb)
		n.AddHost(GridHost(i), simnet.HostConfig{Site: site, Speed: SpeedETLO2K, CPUs: 16})
		n.Connect(GridHost(i), site+"-lan", lan)
	}

	// The RWCP firewall: the paper's typical configuration plus the single
	// nxport hole. ETL's public hosts are modeled without a firewall (the
	// paper: "ETL-Sun and ETL-O2K can be accessed directly from RWCP").
	fw := firewall.New("rwcp")
	fw.AllowIncomingPort(NXPort, "nxport: outer->inner relay channel")
	if opts.OpenFirewall {
		fw.AllowIncomingRange(1, 65535, "temporary: direct-communication baseline")
	}
	n.SetFirewall("rwcp", fw)
	if opts.FlowModel != nil {
		n.EnableFlowModel(*opts.FlowModel)
	}
	return fw
}

// partitionAssign maps every node of the topology to its site partition:
// the RWCP site (with the siteless outer server) is partition 0, ETL is 1,
// and each extra grid site gets its own partition after that.
func partitionAssign(opts Options) map[string]int {
	a := map[string]int{
		"rwcp-lan": 0, "compas-sw": 0, "rwcp-gw": 0,
		RWCPSun: 0, RWCPInner: 0, RWCPOuter: 0,
		"etl-gw": 1, "etl-lan": 1, ETLSun: 1, ETLO2K: 1,
	}
	for i := 0; i < CompasNodes; i++ {
		a[CompasNode(i)] = 0
	}
	for i := 0; i < opts.ExtraSites; i++ {
		a[GridSite(i)+"-gw"] = 2 + i
		a[GridSite(i)+"-lan"] = 2 + i
		a[GridHost(i)] = 2 + i
	}
	return a
}

// NewTestbed builds the Figure 5 environment and starts the Nexus Proxy
// daemons: on a fresh single kernel by default, or partitioned across
// per-site sub-kernels when opts.ParallelSites >= 1.
func NewTestbed(opts Options) *Testbed {
	if err := opts.Validate(); err != nil {
		panic(err.Error())
	}
	if opts.RelayPerBuffer == 0 {
		opts.RelayPerBuffer = RelayPerBuffer
	}
	if opts.RelayBufBytes == 0 {
		opts.RelayBufBytes = RelayBufBytes
	}
	if opts.ParallelSites > 0 {
		return newParallelTestbed(opts)
	}
	k := sim.New()
	if opts.Seed != 0 {
		k.Seed(opts.Seed)
	}
	n := simnet.New(k)
	n.Obs = opts.Obs
	fw := buildTopology(n, opts)
	tb := newTestbedOn(opts, fw)
	tb.K, tb.Net = k, n
	tb.spawnDaemons()
	return tb
}

// newParallelTestbed builds one topology mirror per site partition on a
// kernel group and couples them with lookahead synchronization.
func newParallelTestbed(opts Options) *Testbed {
	assign := partitionAssign(opts)
	parts := 2 + opts.ExtraSites
	g := sim.NewGroup(parts)
	nets := make([]*simnet.Network, parts)
	var fw *firewall.Firewall
	for i := range nets {
		k := g.Kernel(i)
		if opts.Seed != 0 {
			k.Seed(opts.Seed)
		}
		nets[i] = simnet.New(k)
		f := buildTopology(nets[i], opts)
		if i == 0 {
			fw = f
		}
	}
	if _, err := simnet.Couple(g, nets, assign); err != nil {
		panic(fmt.Sprintf("cluster: couple site partitions: %v", err))
	}
	tb := newTestbedOn(opts, fw)
	tb.Group, tb.Nets, tb.assign, tb.workers = g, nets, assign, opts.ParallelSites
	tb.spawnDaemons()
	return tb
}

// NewTestbedChecked is NewTestbed with error-returning validation: option
// combinations the testbed cannot support (Obs on a partitioned testbed,
// negative ParallelSites) come back as errors instead of panics, so harness
// code can report them cleanly.
func NewTestbedChecked(opts Options) (*Testbed, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return NewTestbed(opts), nil
}

// newTestbedOn builds the kernel-independent testbed state.
func newTestbedOn(opts Options, fw *firewall.Firewall) *Testbed {
	relay := proxy.RelayConfig{BufBytes: opts.RelayBufBytes, PerBuffer: opts.RelayPerBuffer}
	tb := &Testbed{
		Firewall: fw, opts: opts,
		Inner: proxy.NewInnerServer(relay),
		Outer: proxy.NewOuterServer(transport.JoinAddr(RWCPInner, NXPort), relay),
		ProxyCfg: proxy.Config{
			OuterServer: transport.JoinAddr(RWCPOuter, OuterPort),
			InnerServer: transport.JoinAddr(RWCPInner, NXPort),
			Secret:      opts.Secret,
		},
	}
	tb.Inner.Secret = opts.Secret
	tb.Outer.Secret = opts.Secret
	return tb
}

// spawnDaemons boots the relay daemons on their owning hosts (both inside
// the RWCP partition in parallel mode).
func (tb *Testbed) spawnDaemons() {
	tb.Node(RWCPInner).SpawnDaemonOn("nxproxy-inner", func(env transport.Env) {
		_ = tb.Inner.Serve(env, NXPort, nil)
	})
	tb.Node(RWCPOuter).SpawnDaemonOn("nxproxy-outer", func(env transport.Env) {
		_ = tb.Outer.Serve(env, OuterPort, nil)
	})
}

// Parallel reports whether the testbed runs in partitioned parallel mode.
func (tb *Testbed) Parallel() bool { return tb.Group != nil }

// Run drives the simulation to completion: the single kernel's event loop in
// monolithic mode, or the site kernels on ParallelSites worker threads with
// lookahead synchronization in parallel mode.
func (tb *Testbed) Run() error {
	if tb.Group != nil {
		return tb.Group.Run(tb.workers)
	}
	return tb.K.Run()
}

// Shutdown releases the testbed's kernel(s); call it once the run is done
// (typically deferred right after NewTestbed).
func (tb *Testbed) Shutdown() {
	if tb.Group != nil {
		tb.Group.Shutdown()
		return
	}
	tb.K.Shutdown()
}

// checkRecovery reports why EnableRecovery cannot run on this testbed.
func (tb *Testbed) checkRecovery() error {
	if tb.Group != nil {
		return fmt.Errorf("cluster: EnableRecovery requires the monolithic testbed (ParallelSites = 0): recovery keepalives tick forever on a single RunUntil-driven kernel")
	}
	return nil
}

// EnableRecoveryChecked is EnableRecovery with an error return instead of a
// panic for the unsupported partitioned-testbed combination.
func (tb *Testbed) EnableRecoveryChecked(ka proxy.KeepaliveConfig) error {
	if err := tb.checkRecovery(); err != nil {
		return err
	}
	tb.EnableRecovery(ka)
	return nil
}

// RWCPSideNodes lists every node on the RWCP side of the wide-area IMnet
// link — the firewalled site plus the outer server. With ETLSideNodes it
// forms the natural group pair for FaultPlan.Partition: severing the two
// cuts ETL off from the rest of the testbed.
func RWCPSideNodes() []string {
	out := []string{"rwcp-lan", "compas-sw", "rwcp-gw", RWCPSun, RWCPInner, RWCPOuter}
	for i := 0; i < CompasNodes; i++ {
		out = append(out, CompasNode(i))
	}
	return out
}

// ETLSideNodes lists every node on the ETL side of the IMnet link.
func ETLSideNodes() []string {
	return []string{"etl-gw", "etl-lan", ETLSun, ETLO2K}
}

// Node returns a named node on the network that owns it — the single network
// in monolithic mode, the owning partition's mirror in parallel mode.
func (tb *Testbed) Node(name string) *simnet.Node {
	if tb.Group != nil {
		p, ok := tb.assign[name]
		if !ok {
			panic(fmt.Sprintf("cluster: unknown host %q", name))
		}
		return tb.Nets[p].Node(name)
	}
	return tb.Net.Node(name)
}

// ApplyPlan schedules a fault plan on the testbed. In parallel mode the plan
// is applied to every partition mirror: link faults execute everywhere (each
// mirror keeps its own copy of the wire state), host faults only on the
// owning partition.
func (tb *Testbed) ApplyPlan(p *simnet.FaultPlan) error {
	if tb.Group != nil {
		for _, n := range tb.Nets {
			if err := n.ApplyPlan(p); err != nil {
				return err
			}
		}
		return nil
	}
	return tb.Net.ApplyPlan(p)
}

// Kernels returns the testbed's kernels: one in monolithic mode, one per
// site partition in parallel mode (indexed like Nets).
func (tb *Testbed) Kernels() []*sim.Kernel {
	if tb.Group != nil {
		ks := make([]*sim.Kernel, len(tb.Nets))
		for i := range ks {
			ks[i] = tb.Group.Kernel(i)
		}
		return ks
	}
	return []*sim.Kernel{tb.K}
}

// EnableRecovery arms the testbed's fault-tolerance plumbing: the inner
// server keeps a registered keepalive session with the outer server
// (re-dialing with backoff when the boundary flaps or the outer host
// restarts), and both relay daemons get OnRestart boot scripts so
// Network.RestartHost brings them back. Call it right after NewTestbed,
// before driving the kernel. ka.OuterAddr defaults to the testbed's outer
// control address.
//
// With recovery on, the registration keepalive ticks forever — drive the
// kernel with RunUntil, not Run. Recovery requires the monolithic testbed
// (RunUntil has no parallel-mode equivalent).
func (tb *Testbed) EnableRecovery(ka proxy.KeepaliveConfig) {
	if err := tb.checkRecovery(); err != nil {
		panic(err.Error())
	}
	if ka.OuterAddr == "" {
		ka.OuterAddr = tb.ProxyCfg.OuterServer
	}
	relay := proxy.RelayConfig{BufBytes: tb.opts.RelayBufBytes, PerBuffer: tb.opts.RelayPerBuffer}
	tb.OuterBoots = 1
	tb.Net.Node(RWCPInner).SpawnDaemonOn("nxproxy-inner-register", func(env transport.Env) {
		env.Sleep(time.Millisecond) // after Serve binds the nxport
		tb.Inner.MaintainRegistration(env, ka)
	})
	tb.Net.Node(RWCPOuter).OnRestart("nxproxy-outer", func(env transport.Env) {
		o := proxy.NewOuterServer(transport.JoinAddr(RWCPInner, NXPort), relay)
		o.Secret = tb.opts.Secret
		tb.Outer = o
		tb.OuterBoots++
		_ = o.Serve(env, OuterPort, nil)
	})
	tb.Net.Node(RWCPInner).OnRestart("nxproxy-inner", func(env transport.Env) {
		in := proxy.NewInnerServer(relay)
		in.Secret = tb.opts.Secret
		tb.Inner = in
		env.SpawnService("nxproxy-inner-register", func(e transport.Env) {
			e.Sleep(time.Millisecond)
			in.MaintainRegistration(e, ka)
		})
		_ = in.Serve(env, NXPort, nil)
	})
}

// Host returns a named node (an alias for Node, kept for callers predating
// the parallel mode).
func (tb *Testbed) Host(name string) *simnet.Node { return tb.Node(name) }

// Dialer returns a proxy-aware dialer configured for RWCP-site processes.
func (tb *Testbed) Dialer() proxy.Dialer { return proxy.Dialer{Cfg: tb.ProxyCfg} }

// System identifies one of the paper's Table 3 configurations.
type System int

// The four evaluated systems.
const (
	// SystemCompas: 8 processors, one per COMPaS node (mpich ch_p4).
	SystemCompas System = iota
	// SystemETLO2K: 8 processors on the Origin 2000 (vendor MPI).
	SystemETLO2K
	// SystemLocal: RWCP-Sun + COMPaS, 12 processors (MPICH-G + proxy).
	SystemLocal
	// SystemWide: RWCP-Sun + COMPaS + ETL-O2K, 20 processors (MPICH-G +
	// proxy unless disabled).
	SystemWide
)

// String names the system as the paper does.
func (s System) String() string {
	switch s {
	case SystemCompas:
		return "COMPaS"
	case SystemETLO2K:
		return "ETL-O2K"
	case SystemLocal:
		return "Local-area Cluster"
	default:
		return "Wide-area Cluster"
	}
}

// Describe returns the Table 3 description.
func (s System) Describe() string {
	switch s {
	case SystemCompas:
		return "8 processors, 1 processor on each node. mpich ch_p4 device is used."
	case SystemETLO2K:
		return "8 processors on ETL-O2K. vendor provided mpi is used."
	case SystemLocal:
		return "RWCP-Sun + COMPaS. total 12 processors, 4 on RWCP-Sun, and 8 on COMPaS. mpich Globus device which utilizes the Nexus Proxy is used."
	default:
		return "RWCP-Sun + COMPaS + ETL-O2K. total 20 processors, 4 on RWCP-Sun, 8 on COMPaS, and 8 on ETL-O2K. mpich Globus device which utilizes the Nexus Proxy is used."
	}
}

// Processors returns the system's processor count.
func (s System) Processors() int {
	switch s {
	case SystemCompas, SystemETLO2K:
		return 8
	case SystemLocal:
		return 12
	default:
		return 20
	}
}

// Placements builds the MPI rank placements for a system. useProxy selects
// whether RWCP-site ranks communicate through the Nexus Proxy (the paper
// ran the wide-area system both ways; systems whose ranks never cross the
// firewall ignore it). Rank 0 — the knapsack master — is placed on RWCP-Sun
// for the Globus-device systems, matching the paper's setup, and on the
// system's own first processor otherwise.
func (tb *Testbed) Placements(s System, useProxy bool) []mpi.Placement {
	cfg := proxy.Config{}
	if useProxy {
		cfg = tb.ProxyCfg
	}
	var pls []mpi.Placement
	add := func(host string, proxied bool, n int) {
		pc := proxy.Config{}
		if proxied {
			pc = cfg
		}
		for i := 0; i < n; i++ {
			pls = append(pls, mpi.Placement{
				Name:  host,
				Spawn: tb.Node(host).SpawnOn,
				Proxy: pc,
			})
		}
	}
	switch s {
	case SystemCompas:
		for i := 0; i < CompasNodes; i++ {
			add(CompasNode(i), false, 1)
		}
	case SystemETLO2K:
		add(ETLO2K, false, 8)
	case SystemLocal:
		add(RWCPSun, useProxy, 4)
		for i := 0; i < CompasNodes; i++ {
			add(CompasNode(i), useProxy, 1)
		}
	default: // SystemWide
		add(RWCPSun, useProxy, 4)
		for i := 0; i < CompasNodes; i++ {
			add(CompasNode(i), useProxy, 1)
		}
		add(ETLO2K, false, 8)
	}
	return pls
}

// GridPlacements extends the wide-area system across every extra grid site:
// the Table 3 wide-area placements plus GridRanks ranks on each grid host
// (publicly reachable like ETL, so never proxied). This is the workload the
// parallel-DES speedup sweep partitions across site kernels.
func (tb *Testbed) GridPlacements(useProxy bool) []mpi.Placement {
	pls := tb.Placements(SystemWide, useProxy)
	for i := 0; i < tb.opts.ExtraSites; i++ {
		host := GridHost(i)
		for r := 0; r < GridRanks; r++ {
			pls = append(pls, mpi.Placement{Name: host, Spawn: tb.Node(host).SpawnOn})
		}
	}
	return pls
}

// SequentialPlacement returns the paper's baseline: one process on RWCP-Sun.
func (tb *Testbed) SequentialPlacement() []mpi.Placement {
	return []mpi.Placement{{Name: RWCPSun, Spawn: tb.Node(RWCPSun).SpawnOn}}
}

// Topology renders the Figure 1/Figure 5 environment as ASCII.
func (tb *Testbed) Topology() string {
	var b strings.Builder
	fmt.Fprintln(&b, "RWCP site (behind deny-based firewall)          ETL site")
	fmt.Fprintln(&b, "  rwcp-sun (E450, 4 CPU)                          etl-sun (E450, 6 CPU)")
	fmt.Fprintln(&b, "  compas00..07 (Pentium Pro SMP x8, 100Base-T)    etl-o2k (Origin 2000, 16 CPU)")
	fmt.Fprintln(&b, "  rwcp-inner (inner Nexus Proxy server)               |")
	fmt.Fprintln(&b, "      |                                               |")
	fmt.Fprintln(&b, "  [rwcp-gw FIREWALL: deny-in/allow-out, nxport open]  |")
	fmt.Fprintln(&b, "      |                                               |")
	fmt.Fprintln(&b, "  rwcp-outer (outer Nexus Proxy server)               |")
	fmt.Fprintln(&b, "      +------------- IMnet 1.5 Mbps -----------------+")
	fmt.Fprintf(&b, "\n%s", tb.Firewall.Describe())
	return b.String()
}
