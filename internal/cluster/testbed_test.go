package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

func TestTestbedTopologyLatencies(t *testing.T) {
	tb := NewTestbed(Options{})
	// RWCP-Sun <-> COMPaS node: ~0.4 ms one way (paper: 0.41 ms direct).
	lat, err := tb.Net.PathLatency(RWCPSun, CompasNode(0))
	if err != nil {
		t.Fatal(err)
	}
	if lat < 300*time.Microsecond || lat > 500*time.Microsecond {
		t.Fatalf("RWCP-Sun<->COMPaS latency = %v, want ~0.4ms", lat)
	}
	// RWCP-Sun <-> ETL-Sun: ~3.9 ms one way across IMnet.
	lat, err = tb.Net.PathLatency(RWCPSun, ETLSun)
	if err != nil {
		t.Fatal(err)
	}
	if lat < 3500*time.Microsecond || lat > 4300*time.Microsecond {
		t.Fatalf("RWCP-Sun<->ETL-Sun latency = %v, want ~3.9ms", lat)
	}
	// The IMnet is the bottleneck to ETL.
	bw, err := tb.Net.PathBandwidth(RWCPSun, ETLO2K)
	if err != nil {
		t.Fatal(err)
	}
	if bw != WANBandwidth {
		t.Fatalf("bottleneck to ETL = %d, want %d", bw, WANBandwidth)
	}
	tb.K.Shutdown()
}

func TestFirewallClosedByDefaultOpenWithOption(t *testing.T) {
	tb := NewTestbed(Options{})
	var dialErr error
	tb.Host(ETLSun).SpawnOn("prober", func(env transport.Env) {
		_, dialErr = env.Dial(transport.JoinAddr(RWCPSun, 9999))
	})
	if err := tb.K.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(dialErr, transport.ErrFirewallDenied) {
		t.Fatalf("inbound dial = %v, want firewall denial", dialErr)
	}
	tb.K.Shutdown()

	tb2 := NewTestbed(Options{OpenFirewall: true})
	tb2.Host(RWCPSun).SpawnDaemonOn("listener", func(env transport.Env) {
		l, _ := env.Listen(9999)
		_, _ = l.Accept(env)
	})
	var err2 error
	tb2.Host(ETLSun).SpawnOn("prober", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		_, err2 = env.Dial(transport.JoinAddr(RWCPSun, 9999))
	})
	if err := tb2.K.Run(); err != nil {
		t.Fatal(err)
	}
	if err2 != nil {
		t.Fatalf("open-firewall dial failed: %v", err2)
	}
	tb2.K.Shutdown()
}

func TestProxyDaemonsServeTheTestbed(t *testing.T) {
	tb := NewTestbed(Options{})
	var got string
	tb.Host(ETLSun).SpawnDaemonOn("etl-srv", func(env transport.Env) {
		l, _ := env.Listen(6001)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 5)
		n, _ := c.Read(env, buf)
		got = string(buf[:n])
	})
	tb.Host(RWCPSun).SpawnOn("rwcp-cli", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		// Active open through the relay, like the paper's Figure 3.
		c, err := env.Dial(tb.ProxyCfg.OuterServer)
		if err != nil {
			t.Errorf("dial outer: %v", err)
			return
		}
		_ = c.Close(env)
	})
	tb.Host(RWCPSun).SpawnOn("rwcp-data", func(env transport.Env) {
		env.Sleep(2 * time.Millisecond)
		d := tb.Dialer()
		c, err := d.Dial(env, transport.JoinAddr(ETLSun, 6001))
		if err != nil {
			t.Errorf("proxied dial: %v", err)
			return
		}
		_, _ = c.Write(env, []byte("hello"))
		env.Sleep(200 * time.Millisecond)
		_ = c.Close(env)
	})
	if err := tb.K.Run(); err != nil {
		t.Fatal(err)
	}
	tb.K.Shutdown()
	if got != "hello" {
		t.Fatalf("relayed payload = %q", got)
	}
	if tb.Outer.Stats().ConnectRelays == 0 {
		t.Fatal("outer server relayed nothing")
	}
}

func TestSystemDefinitionsMatchTable3(t *testing.T) {
	tb := NewTestbed(Options{})
	defer tb.K.Shutdown()
	cases := []struct {
		s     System
		procs int
	}{
		{SystemCompas, 8}, {SystemETLO2K, 8}, {SystemLocal, 12}, {SystemWide, 20},
	}
	for _, tc := range cases {
		if tc.s.Processors() != tc.procs {
			t.Errorf("%s: Processors() = %d, want %d", tc.s, tc.s.Processors(), tc.procs)
		}
		pls := tb.Placements(tc.s, true)
		if len(pls) != tc.procs {
			t.Errorf("%s: %d placements, want %d", tc.s, len(pls), tc.procs)
		}
	}
	// Wide-area with proxy: RWCP ranks proxied, ETL ranks direct.
	pls := tb.Placements(SystemWide, true)
	if !pls[0].Proxy.Enabled() {
		t.Error("RWCP-Sun rank not proxied in wide-area system")
	}
	if pls[19].Proxy.Enabled() {
		t.Error("ETL-O2K rank proxied; ETL has no firewall")
	}
	// Without proxy, nothing is proxied.
	for i, pl := range tb.Placements(SystemWide, false) {
		if pl.Proxy.Enabled() {
			t.Errorf("rank %d proxied in no-proxy configuration", i)
		}
	}
	// COMPaS system: 8 distinct nodes, 1 rank each.
	seen := map[string]bool{}
	for _, pl := range tb.Placements(SystemCompas, true) {
		if seen[pl.Name] {
			t.Errorf("COMPaS node %s used twice", pl.Name)
		}
		seen[pl.Name] = true
		if pl.Proxy.Enabled() {
			t.Error("COMPaS ch_p4 system must not use the proxy")
		}
	}
	if len(tb.SequentialPlacement()) != 1 {
		t.Error("sequential placement is not a single process")
	}
}

func TestTopologyRendering(t *testing.T) {
	tb := NewTestbed(Options{})
	defer tb.K.Shutdown()
	top := tb.Topology()
	for _, want := range []string{"rwcp-sun", "compas00..07", "IMnet", "FIREWALL", "nxport"} {
		if !strings.Contains(top, want) {
			t.Errorf("Topology() missing %q", want)
		}
	}
	for _, s := range []System{SystemCompas, SystemETLO2K, SystemLocal, SystemWide} {
		if s.Describe() == "" || s.String() == "" {
			t.Errorf("system %d lacks description", s)
		}
	}
}

// TestSecuredTestbedRelays: with a site secret configured end to end, the
// relay chains still work, and a client without the secret is refused.
func TestSecuredTestbedRelays(t *testing.T) {
	tb := NewTestbed(Options{Secret: "rwcp-site-secret"})
	defer tb.K.Shutdown()
	var got string
	tb.Host(ETLSun).SpawnDaemonOn("srv", func(env transport.Env) {
		l, _ := env.Listen(6001)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 2)
		n, _ := c.Read(env, buf)
		got = string(buf[:n])
	})
	var noSecretErr error
	tb.Host(RWCPSun).SpawnOn("cli", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		d := tb.Dialer()
		c, err := d.Dial(env, transport.JoinAddr(ETLSun, 6001))
		if err != nil {
			t.Errorf("secured dial: %v", err)
			return
		}
		_, _ = c.Write(env, []byte("ok"))
		env.Sleep(100 * time.Millisecond)
		// A client missing the secret must be rejected by the outer server.
		bad := tb.ProxyCfg
		bad.Secret = ""
		_, noSecretErr = proxyDialForTest(env, bad, transport.JoinAddr(ETLSun, 6001))
	})
	if err := tb.K.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "ok" {
		t.Fatalf("relayed payload = %q", got)
	}
	if noSecretErr == nil {
		t.Fatal("secretless client accepted by authenticated relay")
	}
}

// proxyDialForTest exposes NXProxyConnect for the secured-testbed test.
func proxyDialForTest(env transport.Env, cfg proxy.Config, addr string) (transport.Conn, error) {
	return proxy.NXProxyConnect(env, cfg, addr)
}
