package cluster

import (
	"strings"
	"testing"

	"nxcluster/internal/obs"
	"nxcluster/internal/proxy"
	"nxcluster/internal/simnet"
)

// TestOptionsValidateRejectsBadCombos pins the guard rails: observers bind to
// a single kernel, so Obs plus a partitioned testbed must be refused with an
// error that names the fix, and a negative worker count is never silently
// clamped.
func TestOptionsValidateRejectsBadCombos(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the error
	}{
		{"negative workers", Options{ParallelSites: -1}, "ParallelSites"},
		{"obs on parallel", Options{ParallelSites: 2, Obs: obs.New()}, "Nets[i].Obs"},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, err := NewTestbedChecked(tc.opts); err == nil {
			t.Errorf("%s: NewTestbedChecked accepted", tc.name)
		}
	}
	for _, ok := range []Options{{}, {ParallelSites: 2}, {Obs: obs.New()}} {
		if err := ok.Validate(); err != nil {
			t.Errorf("valid options %+v rejected: %v", ok, err)
		}
	}
}

// TestNewTestbedCheckedBuildsValidCombos: the checked constructor returns a
// working testbed for the combinations Validate admits.
func TestNewTestbedCheckedBuildsValidCombos(t *testing.T) {
	tb, err := NewTestbedChecked(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Net == nil || tb.K == nil {
		t.Fatal("monolithic testbed missing kernel or network")
	}
	tb.Shutdown()

	ptb, err := NewTestbedChecked(Options{ParallelSites: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ptb.Parallel() || len(ptb.Nets) == 0 {
		t.Fatal("parallel testbed not partitioned")
	}
	defer ptb.Shutdown()

	// EnableRecovery's keepalive loops never drain on a RunUntil-driven
	// partitioned kernel group; the checked variant must refuse rather than
	// wedge, and the error must say why.
	err = ptb.EnableRecoveryChecked(proxy.KeepaliveConfig{})
	if err == nil {
		t.Fatal("EnableRecoveryChecked on a parallel testbed succeeded")
	}
	if !strings.Contains(err.Error(), "ParallelSites = 0") {
		t.Errorf("error %q does not name the monolithic requirement", err)
	}
}

// TestTestbedApplyPlanPartitionGroups: the exported side-node lists must name
// real topology nodes in both modes, so suite plans built from them validate.
func TestTestbedApplyPlanPartitionGroups(t *testing.T) {
	plan := (&simnet.FaultPlan{}).Partition(RWCPSideNodes(), ETLSideNodes(), 0, 0)
	tb := NewTestbed(Options{})
	if err := tb.ApplyPlan(plan); err != nil {
		t.Errorf("monolithic: %v", err)
	}
	tb.Shutdown()

	ptb := NewTestbed(Options{ParallelSites: 2})
	defer ptb.Shutdown()
	if err := ptb.ApplyPlan(plan); err != nil {
		t.Errorf("parallel: %v", err)
	}
}
