package cluster

import (
	"fmt"

	"nxcluster/internal/obs"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
)

// Fleet topology: the testbed scaled past the paper's 4 sites / 20
// processors toward the ROADMAP's production-scale grid. N sites hang off a
// single core router over WAN-class links; each site is M hosts behind a
// site gateway on LAN-class links. The tree shape is deliberate: it is what
// simnet's hierarchical routing composes exactly (every node gets a parent
// pointer), so route lookup cost is O(depth) per uncached pair no matter
// how many hosts the fleet stamps out.
//
// Fleet links carry control datagrams (dispatch, completions, batched
// heartbeats), so they are configured with unlimited bandwidth: a message
// costs one propagation event per hop and zero serialization events, which
// is what keeps 1M-job runs at ~a dozen kernel events per job.

// FleetCore is the fleet's core router name.
const FleetCore = "fleet-core"

// FleetSite returns site s's name.
func FleetSite(s int) string { return fmt.Sprintf("fs%03d", s) }

// FleetGateway returns site s's gateway router name.
func FleetGateway(s int) string { return fmt.Sprintf("fs%03d-gw", s) }

// FleetHost returns host h of site s.
func FleetHost(s, h int) string { return fmt.Sprintf("fs%03dh%03d", s, h) }

// FleetOptions sizes a fleet topology.
type FleetOptions struct {
	// Sites is the site count (>= 1).
	Sites int
	// HostsPerSite is the per-site host count (>= 1).
	HostsPerSite int
	// CPUsPerHost is each host's slot count (default 2).
	CPUsPerHost int
	// Seed seeds the kernel RNG (0 leaves the kernel self-seeded).
	Seed uint64
	// Obs attaches an observability sink (nil keeps hot paths free).
	Obs *obs.Observer
}

// Fleet is a built fleet topology: one kernel, one network, the core
// router, and the generated site/host names (shared slices — callers must
// not mutate).
type Fleet struct {
	K    *sim.Kernel
	Net  *simnet.Network
	Opts FleetOptions
	// Gateways[s] is site s's gateway name; Hosts[s][h] is host h of site s.
	Gateways []string
	Hosts    [][]string
}

// NewFleet builds an N-site × M-host fleet on a fresh kernel: core router,
// per-site gateways and hosts, links, and the routing hierarchy. Only
// topology is built — no processes are spawned; the fleet engine drives
// everything event-style.
func NewFleet(opts FleetOptions) *Fleet {
	if opts.Sites < 1 || opts.HostsPerSite < 1 {
		panic(fmt.Sprintf("cluster: NewFleet: need >=1 site and host, got %d x %d", opts.Sites, opts.HostsPerSite))
	}
	if opts.CPUsPerHost <= 0 {
		opts.CPUsPerHost = 2
	}
	k := sim.New()
	if opts.Seed != 0 {
		k.Seed(opts.Seed)
	}
	n := simnet.New(k)
	n.Obs = opts.Obs

	n.AddRouter(FleetCore, "")
	wan := simnet.LinkConfig{Latency: WANLatency}     // control plane: unlimited bandwidth
	lan := simnet.LinkConfig{Latency: LANHostLatency} // ditto

	f := &Fleet{
		K: k, Net: n, Opts: opts,
		Gateways: make([]string, opts.Sites),
		Hosts:    make([][]string, opts.Sites),
	}
	for s := 0; s < opts.Sites; s++ {
		site := FleetSite(s)
		gw := FleetGateway(s)
		f.Gateways[s] = gw
		n.AddRouter(gw, site)
		n.Connect(FleetCore, gw, wan)
		n.SetParent(gw, FleetCore)
		hosts := make([]string, opts.HostsPerSite)
		for h := 0; h < opts.HostsPerSite; h++ {
			name := FleetHost(s, h)
			hosts[h] = name
			n.AddHost(name, simnet.HostConfig{Site: site, Speed: 1.0, CPUs: opts.CPUsPerHost})
			n.Connect(name, gw, lan)
			n.SetParent(name, gw)
		}
		f.Hosts[s] = hosts
	}
	return f
}

// TotalHosts reports sites × hosts-per-site.
func (f *Fleet) TotalHosts() int { return f.Opts.Sites * f.Opts.HostsPerSite }

// TotalCPUs reports the fleet's slot capacity.
func (f *Fleet) TotalCPUs() int { return f.TotalHosts() * f.Opts.CPUsPerHost }
