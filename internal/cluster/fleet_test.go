package cluster

import (
	"testing"
)

// TestFleetTopology: the builder stamps the expected names, parents, and
// path costs — a cross-site host pair is exactly 4 hops (host, gateway,
// core, gateway, host) at 2×LAN + 2×WAN latency.
func TestFleetTopology(t *testing.T) {
	f := NewFleet(FleetOptions{Sites: 3, HostsPerSite: 4, CPUsPerHost: 2})
	if f.TotalHosts() != 12 || f.TotalCPUs() != 24 {
		t.Fatalf("TotalHosts=%d TotalCPUs=%d, want 12 and 24", f.TotalHosts(), f.TotalCPUs())
	}
	if len(f.Gateways) != 3 || len(f.Hosts) != 3 || len(f.Hosts[0]) != 4 {
		t.Fatalf("name slices misshaped: %d gateways, %d sites", len(f.Gateways), len(f.Hosts))
	}
	if f.Gateways[1] != "fs001-gw" || f.Hosts[2][3] != "fs002h003" {
		t.Fatalf("naming scheme drifted: gw=%s host=%s", f.Gateways[1], f.Hosts[2][3])
	}

	hops, err := f.Net.Hops(f.Hosts[0][0], f.Hosts[2][3])
	if err != nil || hops != 4 {
		t.Fatalf("cross-site Hops = %d, %v; want 4", hops, err)
	}
	lat, err := f.Net.PathLatency(f.Hosts[0][0], f.Hosts[2][3])
	want := 2*LANHostLatency + 2*WANLatency
	if err != nil || lat != want {
		t.Fatalf("cross-site PathLatency = %v, %v; want %v", lat, err, want)
	}

	// Intra-site: host -> gateway -> host, 2 hops, 2×LAN.
	hops, _ = f.Net.Hops(f.Hosts[1][0], f.Hosts[1][3])
	lat, _ = f.Net.PathLatency(f.Hosts[1][0], f.Hosts[1][3])
	if hops != 2 || lat != 2*LANHostLatency {
		t.Fatalf("intra-site: %d hops at %v; want 2 at %v", hops, lat, 2*LANHostLatency)
	}

	// Control datagrams actually deliver over the built tree.
	delivered := false
	f.K.After(0, func() {
		err := f.Net.SendMessage(FleetCore, f.Hosts[2][0], 256, func() { delivered = true })
		if err != nil {
			t.Errorf("SendMessage: %v", err)
		}
	})
	if err := f.K.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !delivered {
		t.Fatal("core -> host datagram never delivered")
	}
}

// TestFleetDefaultsAndGuards: CPUs default to 2; degenerate shapes panic.
func TestFleetDefaultsAndGuards(t *testing.T) {
	f := NewFleet(FleetOptions{Sites: 1, HostsPerSite: 1})
	if f.Opts.CPUsPerHost != 2 {
		t.Fatalf("CPUsPerHost defaulted to %d, want 2", f.Opts.CPUsPerHost)
	}
	for _, opts := range []FleetOptions{
		{Sites: 0, HostsPerSite: 1},
		{Sites: 1, HostsPerSite: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFleet(%+v) did not panic", opts)
				}
			}()
			NewFleet(opts)
		}()
	}
}
