// Package nqueens is a second tree-search application on the generic
// treesearch engine: counting N-queens placements. It demonstrates that the
// paper's scheduler generalizes beyond the knapsack workload — any
// coarse-grained asynchronous tree search runs on the same wide-area
// machinery.
package nqueens

import (
	"fmt"

	"nxcluster/internal/treesearch"
)

// MaxN bounds the board size the task encoding supports.
const MaxN = 16

// Root returns the root task for an n-queens search.
func Root(n int) ([]byte, error) {
	if n < 1 || n > MaxN {
		return nil, fmt.Errorf("nqueens: n=%d out of range [1,%d]", n, MaxN)
	}
	return []byte{byte(n), 0}, nil
}

// Expander returns the treesearch expander. A task encodes
// [n, placedCount, col0, col1, ...]; expanding places the next row's queen
// in every non-attacked column; a fully placed board scores 1 (use
// treesearch.Sum).
func Expander() treesearch.Expander {
	return treesearch.ExpanderFunc(func(task []byte, emit func([]byte)) int64 {
		n := int(task[0])
		placed := int(task[1])
		cols := task[2 : 2+placed]
		if placed == n {
			return 1
		}
		for c := 0; c < n; c++ {
			ok := true
			for r, pc := range cols {
				if int(pc) == c || placed-r == c-int(pc) || placed-r == int(pc)-c {
					ok = false
					break
				}
			}
			if ok {
				child := make([]byte, 2+placed+1)
				child[0] = byte(n)
				child[1] = byte(placed + 1)
				copy(child[2:], cols)
				child[2+placed] = byte(c)
				emit(child)
			}
		}
		return 0
	})
}

// Count solves sequentially (a recursive oracle for tests and the CLI).
func Count(n int) int64 {
	var cols []int
	var rec func(row int) int64
	rec = func(row int) int64 {
		if row == n {
			return 1
		}
		var total int64
		for c := 0; c < n; c++ {
			ok := true
			for r, pc := range cols {
				if pc == c || row-r == c-pc || row-r == pc-c {
					ok = false
					break
				}
			}
			if ok {
				cols = append(cols, c)
				total += rec(row + 1)
				cols = cols[:len(cols)-1]
			}
		}
		return total
	}
	return rec(0)
}
