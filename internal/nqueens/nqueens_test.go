package nqueens

import (
	"testing"
	"testing/quick"
)

func TestCountKnownValues(t *testing.T) {
	want := map[int]int64{1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724}
	for n, w := range want {
		if got := Count(n); got != w {
			t.Errorf("Count(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestRootValidation(t *testing.T) {
	if _, err := Root(0); err == nil {
		t.Fatal("Root(0) accepted")
	}
	if _, err := Root(MaxN + 1); err == nil {
		t.Fatal("Root(17) accepted")
	}
	r, err := Root(8)
	if err != nil || len(r) != 2 || r[0] != 8 || r[1] != 0 {
		t.Fatalf("Root(8) = %v, %v", r, err)
	}
}

// Property: expanding the whole tree via the Expander (sequentially, with a
// local stack) matches the recursive oracle for every n.
func TestQuickExpanderMatchesOracle(t *testing.T) {
	prop := func(nRaw uint8) bool {
		n := int(nRaw)%8 + 1 // 1..8
		root, err := Root(n)
		if err != nil {
			return false
		}
		ex := Expander()
		stack := [][]byte{root}
		var solutions int64
		for len(stack) > 0 {
			task := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			solutions += ex.Expand(task, func(child []byte) {
				stack = append(stack, append([]byte(nil), child...))
			})
		}
		return solutions == Count(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
