package transport

import (
	"hash/fnv"
	"time"
)

// Backoff computes capped exponential retry delays with deterministic
// jitter. The jitter is a pure function of (Key, attempt number), so two
// runs of the same simulation produce bit-identical retry timelines, while
// distinct clients (distinct Keys) still decorrelate — the property real
// systems buy with randomness, bought here with a hash.
//
// The zero value is usable: Base defaults to 100ms, Max to 5s.
type Backoff struct {
	Base time.Duration // first delay
	Max  time.Duration // cap applied before jitter
	Key  string        // jitter seed, e.g. "inner-register@rwcp-inner"

	attempt int
}

// Next returns the delay to sleep before the next retry and advances the
// attempt counter. Delays double from Base up to Max, then up to 25% of the
// capped delay is added back as deterministic jitter.
func (b *Backoff) Next() time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < b.attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	h.Write([]byte(b.Key))
	var n [8]byte
	v := uint64(b.attempt)
	for i := range n {
		n[i] = byte(v >> (8 * i))
	}
	h.Write(n[:])
	jitter := time.Duration(h.Sum64() % uint64(d/4+1))
	b.attempt++
	return d + jitter
}

// Attempts reports how many delays Next has handed out since the last Reset.
func (b *Backoff) Attempts() int { return b.attempt }

// Reset rewinds the schedule to the first delay; call it after a successful
// attempt so the next failure starts from Base again.
func (b *Backoff) Reset() { b.attempt = 0 }
