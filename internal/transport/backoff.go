package transport

import (
	"hash/fnv"
	"time"
)

// Backoff computes capped exponential retry delays with deterministic
// jitter. The jitter draw comes from Rand when set — under simulation that
// must be the kernel's seeded stream (see RandOf), never any global source,
// so chaos runs are bit-reproducible — and otherwise falls back to a pure
// hash of (Key, attempt number), which keeps distinct clients (distinct
// Keys) decorrelated even outside a simulation: the property real systems
// buy with randomness, bought here with a hash.
//
// The zero value is usable: Base defaults to 100ms, Max to 5s.
type Backoff struct {
	Base time.Duration // first delay
	Max  time.Duration // cap applied before jitter
	Key  string        // fallback jitter seed, e.g. "inner-register@rwcp-inner"
	// Rand, when non-nil, supplies the jitter draws. Simulated code must wire
	// this to the kernel's seeded stream via RandOf(env); leaving it nil is
	// only acceptable where no kernel exists (real-TCP deployments, tests of
	// the hash fallback itself).
	Rand func() uint64

	attempt int
}

// Next returns the delay to sleep before the next retry and advances the
// attempt counter. Delays double from Base up to Max, then up to 25% of the
// capped delay is added back as jitter.
func (b *Backoff) Next() time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < b.attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	var v uint64
	if b.Rand != nil {
		v = b.Rand()
	} else {
		h := fnv.New64a()
		h.Write([]byte(b.Key))
		var n [8]byte
		a := uint64(b.attempt)
		for i := range n {
			n[i] = byte(a >> (8 * i))
		}
		h.Write(n[:])
		v = h.Sum64()
	}
	jitter := time.Duration(v % uint64(d/4+1))
	b.attempt++
	return d + jitter
}

// Attempts reports how many delays Next has handed out since the last Reset.
func (b *Backoff) Attempts() int { return b.attempt }

// Reset rewinds the schedule to the first delay; call it after a successful
// attempt so the next failure starts from Base again.
func (b *Backoff) Reset() { b.attempt = 0 }
