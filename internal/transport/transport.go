// Package transport defines the execution-and-network abstraction every
// layer of the system is written against, so that the identical protocol
// code (Nexus Proxy relay, Nexus, GRAM, RMF, MPI) runs in two environments:
//
//   - real TCP on the local machine (cmd/nxproxy-*, examples/quickstart), and
//   - the deterministic virtual network in internal/simnet, where the
//     wide-area cluster experiments execute in virtual time.
//
// An Env is the view one logical process has of its world: its host's name
// and clock, the ability to sleep, consume CPU, spawn sibling processes on
// the same host, and open/accept network connections. This corresponds to
// what a Unix process on one of the paper's testbed machines could do.
package transport

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ErrRefused is returned by Dial when the destination host has no listener
// on the target port.
var ErrRefused = errors.New("transport: connection refused")

// ErrFirewallDenied is returned by Dial when a firewall on the path rejects
// the connection attempt.
var ErrFirewallDenied = errors.New("transport: connection denied by firewall")

// ErrClosed is returned by operations on a closed listener or connection.
var ErrClosed = errors.New("transport: closed")

// ErrNoRoute is returned by Dial when the destination host is unknown or
// unreachable.
var ErrNoRoute = errors.New("transport: no route to host")

// ErrReset is returned by Read/Write when the connection was torn down
// abruptly — the peer aborted it, the peer's host crashed, or a relay on the
// path surfaced a mid-stream transport failure. Unlike io.EOF it means "the
// stream broke", never "the stream finished".
var ErrReset = errors.New("transport: connection reset by peer")

// ErrHostDown is returned by Dial when the destination host is known but
// currently crashed (fault injection). Callers that implement recovery treat
// it like ErrRefused: back off and retry until the host restarts.
var ErrHostDown = errors.New("transport: host is down")

// Env is the execution environment of one logical process.
//
// Every blocking primitive goes through the Env so that the simulated
// implementation can park the caller in virtual time. Implementations are
// not safe for concurrent use by multiple goroutines; each spawned process
// receives its own Env.
type Env interface {
	// Hostname returns the name of the host this process runs on.
	Hostname() string
	// Now returns the environment's clock (virtual or wall, monotonic).
	Now() time.Duration
	// Sleep blocks the process for d.
	Sleep(d time.Duration)
	// Compute consumes d of CPU time on this host at nominal speed; on a
	// host with speed factor s it takes d/s, and it contends for the host's
	// processors.
	Compute(d time.Duration)
	// Spawn starts a new process on the same host running fn.
	Spawn(name string, fn func(Env))
	// SpawnService is Spawn for processes that provide a service
	// indefinitely (accept loops, relay pumps, message readers). The
	// simulated environment excludes such processes from run-completion
	// accounting so a simulation ends when application work does.
	SpawnService(name string, fn func(Env))
	// Dial opens a stream connection to addr ("host:port").
	Dial(addr string) (Conn, error)
	// Listen binds a listener on the given local port; port 0 picks an
	// ephemeral port.
	Listen(port int) (Listener, error)
	// NewMutex creates a lock usable by processes of this environment.
	NewMutex() Mutex
	// NewQueue creates an unbounded FIFO usable by processes of this
	// environment; see Queue for the typed wrapper.
	NewQueue() AnyQueue
}

// Conn is a reliable byte stream. The Env parameter identifies the calling
// process so simulated implementations can block it; callers pass their own
// Env, never another process's.
type Conn interface {
	// Read fills b with available bytes, blocking until at least one byte
	// or end of stream (io.EOF).
	Read(env Env, b []byte) (int, error)
	// Write sends b, blocking until accepted by the local send buffer.
	Write(env Env, b []byte) (int, error)
	// Close shuts the connection down in both directions.
	Close(env Env) error
	// LocalAddr returns "host:port" of the local endpoint.
	LocalAddr() string
	// RemoteAddr returns "host:port" of the remote endpoint.
	RemoteAddr() string
}

// Aborter is implemented by connections that can be torn down abruptly
// (TCP RST rather than FIN). After Abort, the peer's pending and future
// Read/Write calls fail with ErrReset instead of observing a clean EOF.
// Relays use it to propagate a mid-stream failure on one leg to the other.
type Aborter interface {
	Abort(env Env) error
}

// Abort tears c down abruptly when it supports aborting, and falls back to
// an orderly Close when it does not.
func Abort(env Env, c Conn) error {
	if a, ok := c.(Aborter); ok {
		return a.Abort(env)
	}
	return c.Close(env)
}

// Listener accepts inbound connections on a bound port.
type Listener interface {
	// Accept blocks until a connection arrives or the listener closes.
	Accept(env Env) (Conn, error)
	// Close unbinds the port; blocked Accepts return ErrClosed.
	Close(env Env) error
	// Addr returns the bound "host:port".
	Addr() string
}

// RandOf extracts the deterministic random stream carried by env — the
// simulation kernel's seeded generator, exposed by simnet environments via a
// `Rand() uint64` method. It returns nil when env carries none (real-TCP
// deployments), in which case consumers like Backoff fall back to their
// hash-based jitter. Wire it at retry-loop setup:
//
//	bo := cfg.Backoff
//	if bo.Rand == nil {
//		bo.Rand = transport.RandOf(env)
//	}
func RandOf(env Env) func() uint64 {
	if r, ok := env.(interface{ Rand() uint64 }); ok {
		return r.Rand
	}
	return nil
}

// SplitAddr parses "host:port".
func SplitAddr(addr string) (host string, port int, err error) {
	i := strings.LastIndexByte(addr, ':')
	if i < 0 {
		return "", 0, fmt.Errorf("transport: address %q missing port", addr)
	}
	port, err = strconv.Atoi(addr[i+1:])
	if err != nil || port < 0 || port > 65535 {
		return "", 0, fmt.Errorf("transport: address %q has invalid port", addr)
	}
	return addr[:i], port, nil
}

// JoinAddr formats "host:port".
func JoinAddr(host string, port int) string {
	return host + ":" + strconv.Itoa(port)
}

// connReader adapts a Conn to io.Reader for one calling Env.
type connReader struct {
	env  Env
	conn Conn
}

func (r connReader) Read(b []byte) (int, error) { return r.conn.Read(r.env, b) }

// connWriter adapts a Conn to io.Writer for one calling Env.
type connWriter struct {
	env  Env
	conn Conn
}

func (w connWriter) Write(b []byte) (int, error) { return w.conn.Write(w.env, b) }

// Stream bundles a Conn with a calling Env into an io.ReadWriter so the wire
// protocols can use encoding/binary, io.ReadFull, io.Copy, bufio, etc.
type Stream struct {
	Env  Env
	Conn Conn
}

// Read implements io.Reader.
func (s Stream) Read(b []byte) (int, error) { return s.Conn.Read(s.Env, b) }

// Write implements io.Writer.
func (s Stream) Write(b []byte) (int, error) { return s.Conn.Write(s.Env, b) }

// Close implements io.Closer.
func (s Stream) Close() error { return s.Conn.Close(s.Env) }

// BulletinBoard is a small replicated key/value registry for distributed-job
// rosters (every rank publishes its contact address and waits for the full
// set). On a monolithic simulation or real TCP no board exists — ranks
// rendezvous through shared memory or out-of-band config — but a partitioned
// parallel simulation provides boards so the roster exchange crosses
// partition boundaries deterministically. Writes are visible locally at once
// and to other partitions after the next synchronization barrier.
type BulletinBoard interface {
	// SetExpected declares how many entries the board will carry.
	SetExpected(n int)
	// Put publishes one entry.
	Put(key, value string)
	// Get reads an entry from the local replica.
	Get(key string) (value string, ok bool)
	// Complete reports whether all expected entries have arrived locally.
	Complete() bool
}

// BoardEnv is implemented by environments that can hand out bulletin boards.
type BoardEnv interface {
	// BulletinBoard returns the named board, or nil when the environment has
	// no cross-partition coordination to do (monolithic simulation, real TCP).
	BulletinBoard(name string) BulletinBoard
}

// BoardOf returns env's named bulletin board, or nil when env carries none.
// Callers must fall back to their shared-memory rendezvous on nil.
func BoardOf(env Env, name string) BulletinBoard {
	if be, ok := env.(BoardEnv); ok {
		return be.BulletinBoard(name)
	}
	return nil
}
