package transport

import (
	"testing"
	"time"
)

// TestBackoffDoublesAndCaps checks the exponential schedule under the hash
// fallback: delays start at Base, double, cap at Max, and jitter stays
// within 25% of the capped delay.
func TestBackoffDoublesAndCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond, Key: "t"}
	expectedBase := []time.Duration{100, 200, 400, 800, 800, 800}
	for i, want := range expectedBase {
		want *= time.Millisecond
		got := b.Next()
		if got < want || got > want+want/4 {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", i, got, want, want+want/4)
		}
	}
}

// TestBackoffHashFallbackDeterministic pins the Rand-less path: the jitter
// is a pure function of (Key, attempt), so equal keys replay identical
// schedules and distinct keys decorrelate.
func TestBackoffHashFallbackDeterministic(t *testing.T) {
	a := Backoff{Key: "x@host"}
	b := Backoff{Key: "x@host"}
	same := 0
	for i := 0; i < 8; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("attempt %d: equal keys diverged", i)
		}
	}
	a.Reset()
	c := Backoff{Key: "y@host"}
	for i := 0; i < 8; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 8 {
		t.Error("distinct keys produced identical 8-delay schedules")
	}
}

// TestBackoffUsesInjectedRand checks the injected stream owns the jitter:
// wiring a deterministic Rand reproduces the schedule draw for draw, and
// the draws actually consume the stream.
func TestBackoffUsesInjectedRand(t *testing.T) {
	mk := func() func() uint64 {
		// splitmix64, same construction the kernel uses.
		s := uint64(42)
		return func() uint64 {
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
	}
	a := Backoff{Rand: mk()}
	b := Backoff{Rand: mk()}
	for i := 0; i < 8; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("attempt %d: identical injected streams diverged", i)
		}
	}
	calls := 0
	c := Backoff{Rand: func() uint64 { calls++; return 0 }}
	c.Next()
	c.Next()
	if calls != 2 {
		t.Errorf("Rand called %d times over 2 delays, want 2", calls)
	}
}

// TestRandOf checks the env capability probe: environments exposing a
// seeded stream (the simulator) yield a non-nil draw function and
// plain environments (real TCP) yield nil, leaving the hash fallback.
func TestRandOf(t *testing.T) {
	if RandOf(NewTCPEnv("localhost")) != nil {
		t.Error("RandOf(TCP env) != nil; TCP envs have no kernel stream")
	}
	r := RandOf(randEnv{Env: NewTCPEnv("localhost")})
	if r == nil {
		t.Fatal("RandOf missed the Rand capability")
	}
	if r() != 7 {
		t.Error("RandOf did not pass through the env's stream")
	}
}

// randEnv decorates an Env with the simulator's Rand capability.
type randEnv struct {
	Env
}

func (randEnv) Rand() uint64 { return 7 }
