package transport

import (
	"errors"
	"io"
	"net"
	"strings"
	"syscall"
	"time"
)

// TCPEnv is the real-network implementation of Env: processes are goroutines,
// the clock is the wall clock, and connections are loopback/OS TCP sockets.
// It is what cmd/nxproxy-outer, cmd/nxproxy-inner and the quickstart example
// run on.
type TCPEnv struct {
	host  string
	bind  string // interface to bind listeners on, default 127.0.0.1
	start time.Time
	// DialGuard, when non-nil, is consulted before every Dial; it lets
	// tests interpose a firewall rule set in front of real sockets.
	DialGuard func(addr string) error
}

// NewTCPEnv creates a real-TCP environment. host is the name Dial targets
// resolve against for the loopback interface; listeners bind 127.0.0.1.
func NewTCPEnv(host string) *TCPEnv {
	return &TCPEnv{host: host, bind: "127.0.0.1", start: time.Now()}
}

// Hostname implements Env.
func (e *TCPEnv) Hostname() string { return e.host }

// Now implements Env with a wall-clock monotonic reading.
func (e *TCPEnv) Now() time.Duration { return time.Since(e.start) }

// Sleep implements Env.
func (e *TCPEnv) Sleep(d time.Duration) { time.Sleep(d) }

// Compute implements Env; on the real machine CPU consumption is modeled as
// elapsed time.
func (e *TCPEnv) Compute(d time.Duration) { time.Sleep(d) }

// Spawn implements Env by starting a goroutine sharing this environment.
func (e *TCPEnv) Spawn(name string, fn func(Env)) {
	child := *e
	go fn(&child)
}

// SpawnService implements Env; on the real network it is identical to Spawn.
func (e *TCPEnv) SpawnService(name string, fn func(Env)) { e.Spawn(name, fn) }

// Dial implements Env. Host names other than this environment's own are
// resolved to loopback, so a multi-"host" topology can run in one process.
func (e *TCPEnv) Dial(addr string) (Conn, error) {
	if e.DialGuard != nil {
		if err := e.DialGuard(addr); err != nil {
			return nil, err
		}
	}
	_, port, err := SplitAddr(addr)
	if err != nil {
		return nil, err
	}
	c, err := net.DialTimeout("tcp", JoinAddr(e.bind, port), 5*time.Second)
	if err != nil {
		if errors.Is(err, syscall.ECONNREFUSED) {
			return nil, ErrRefused
		}
		return nil, err
	}
	return &tcpConn{c: c, local: JoinAddr(e.host, localPort(c)), remote: addr}, nil
}

// Listen implements Env.
func (e *TCPEnv) Listen(port int) (Listener, error) {
	l, err := net.Listen("tcp", JoinAddr(e.bind, port))
	if err != nil {
		return nil, err
	}
	boundPort := l.Addr().(*net.TCPAddr).Port
	return &tcpListener{l: l, host: e.host, addr: JoinAddr(e.host, boundPort)}, nil
}

func localPort(c net.Conn) int {
	if a, ok := c.LocalAddr().(*net.TCPAddr); ok {
		return a.Port
	}
	return 0
}

type tcpListener struct {
	l    net.Listener
	host string
	addr string
}

func (t *tcpListener) Accept(env Env) (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	remote := c.RemoteAddr().String()
	return &tcpConn{c: c, local: t.addr, remote: remote}, nil
}

func (t *tcpListener) Close(env Env) error { return t.l.Close() }

func (t *tcpListener) Addr() string { return t.addr }

type tcpConn struct {
	c      net.Conn
	local  string
	remote string
}

func (t *tcpConn) Read(env Env, b []byte) (int, error) {
	n, err := t.c.Read(b)
	if err != nil && !errors.Is(err, io.EOF) {
		if isResetErr(err) {
			return n, ErrReset
		}
		if isClosedErr(err) {
			return n, io.EOF
		}
	}
	return n, err
}

func (t *tcpConn) Write(env Env, b []byte) (int, error) {
	n, err := t.c.Write(b)
	if err != nil {
		if isResetErr(err) {
			return n, ErrReset
		}
		if isClosedErr(err) {
			return n, ErrClosed
		}
	}
	return n, err
}

func (t *tcpConn) Close(env Env) error { return t.c.Close() }

// Abort implements Aborter: linger zero makes Close emit an RST, so the
// peer's reads fail with ErrReset instead of reading a clean EOF.
func (t *tcpConn) Abort(env Env) error {
	if tc, ok := t.c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	return t.c.Close()
}

func (t *tcpConn) LocalAddr() string { return t.local }

func (t *tcpConn) RemoteAddr() string { return t.remote }

// isResetErr detects an abrupt peer teardown (RST / broken pipe), which
// upper layers must see as ErrReset, never as an orderly EOF.
func isResetErr(err error) bool {
	return errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE)
}

// isClosedErr folds the various "use of closed connection" flavors the OS
// can return into one category, so upper layers see io.EOF/ErrClosed.
func isClosedErr(err error) bool {
	if errors.Is(err, net.ErrClosed) || isResetErr(err) {
		return true
	}
	return strings.Contains(err.Error(), "use of closed network connection")
}
