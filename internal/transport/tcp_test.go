package transport

import (
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
)

func TestSplitJoinAddr(t *testing.T) {
	host, port, err := SplitAddr("etl-sun:7010")
	if err != nil || host != "etl-sun" || port != 7010 {
		t.Fatalf("SplitAddr = %q,%d,%v", host, port, err)
	}
	if JoinAddr("etl-sun", 7010) != "etl-sun:7010" {
		t.Fatal("JoinAddr mismatch")
	}
	if _, _, err := SplitAddr("noport"); err == nil {
		t.Fatal("missing port accepted")
	}
	if _, _, err := SplitAddr("h:notnum"); err == nil {
		t.Fatal("bad port accepted")
	}
	if _, _, err := SplitAddr("h:70000"); err == nil {
		t.Fatal("out-of-range port accepted")
	}
}

func TestQuickSplitJoinRoundTrip(t *testing.T) {
	prop := func(host string, port uint16) bool {
		h, p, err := SplitAddr(JoinAddr(host, int(port)))
		// Hosts containing ':' are not representable; skip them.
		for _, c := range host {
			if c == ':' {
				return true
			}
		}
		return err == nil && h == host && p == int(port)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCPEchoLoopback(t *testing.T) {
	env := NewTCPEnv("testhost")
	l, err := env.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close(env)

	var wg sync.WaitGroup
	wg.Add(1)
	env.Spawn("server", func(e Env) {
		defer wg.Done()
		c, err := l.Accept(e)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 5)
		if _, err := io.ReadFull(Stream{Env: e, Conn: c}, buf); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Write(e, buf); err != nil {
			t.Error(err)
		}
		_ = c.Close(e)
	})

	c, err := env.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(env, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(Stream{Env: env, Conn: c}, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo = %q", buf)
	}
	// After server close, reads hit EOF.
	if _, err := c.Read(env, buf); !errors.Is(err, io.EOF) {
		t.Fatalf("read after close = %v, want EOF", err)
	}
	wg.Wait()
}

func TestTCPDialRefused(t *testing.T) {
	env := NewTCPEnv("h")
	// Bind and immediately close to get a port that is very likely free.
	l, err := env.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	_ = l.Close(env)
	if _, err := env.Dial(addr); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial closed port = %v, want ErrRefused", err)
	}
}

func TestTCPDialGuard(t *testing.T) {
	env := NewTCPEnv("h")
	env.DialGuard = func(addr string) error { return ErrFirewallDenied }
	if _, err := env.Dial("h:80"); !errors.Is(err, ErrFirewallDenied) {
		t.Fatalf("guarded dial = %v, want ErrFirewallDenied", err)
	}
}

func TestTCPListenerCloseUnblocksAccept(t *testing.T) {
	env := NewTCPEnv("h")
	l, err := env.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	env.Spawn("acceptor", func(e Env) {
		_, err := l.Accept(e)
		done <- err
	})
	_ = l.Close(env)
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("Accept after Close = %v, want ErrClosed", err)
	}
}

func TestTCPEnvClockMonotonic(t *testing.T) {
	env := NewTCPEnv("h")
	a := env.Now()
	env.Sleep(10 * 1e6) // 10ms
	if env.Now() <= a {
		t.Fatal("clock did not advance")
	}
}
