package transport

import (
	"sync"
	"testing"
	"time"
)

func TestTCPQueueFIFO(t *testing.T) {
	env := NewTCPEnv("h")
	q := NewQueue[int](env)
	for i := 0; i < 10; i++ {
		q.Put(env, i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Get(env)
		if !ok || v != i {
			t.Fatalf("Get = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.TryGet(env); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
}

func TestTCPQueueBlockingGet(t *testing.T) {
	env := NewTCPEnv("h")
	q := NewQueue[string](env)
	done := make(chan string, 1)
	go func() {
		v, _ := q.Get(env)
		done <- v
	}()
	time.Sleep(10 * time.Millisecond)
	q.Put(env, "late")
	select {
	case v := <-done:
		if v != "late" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get never woke")
	}
}

func TestTCPQueueGetTimeout(t *testing.T) {
	env := NewTCPEnv("h")
	q := NewQueue[int](env)
	_, ok, timedOut := q.GetTimeout(env, 20*time.Millisecond)
	if ok || !timedOut {
		t.Fatalf("ok=%v timedOut=%v", ok, timedOut)
	}
	q.Put(env, 7)
	v, ok, timedOut := q.GetTimeout(env, time.Second)
	if !ok || timedOut || v != 7 {
		t.Fatalf("v=%d ok=%v timedOut=%v", v, ok, timedOut)
	}
}

func TestTCPQueueCloseDrains(t *testing.T) {
	env := NewTCPEnv("h")
	q := NewQueue[int](env)
	q.Put(env, 1)
	q.Close()
	if v, ok := q.Get(env); !ok || v != 1 {
		t.Fatalf("drain after close = %d,%v", v, ok)
	}
	if _, ok := q.Get(env); ok {
		t.Fatal("Get on closed+empty returned ok")
	}
	_, ok, timedOut := q.GetTimeout(env, time.Second)
	if ok || timedOut {
		t.Fatalf("GetTimeout on closed: ok=%v timedOut=%v (want closed, not timeout)", ok, timedOut)
	}
}

func TestTCPQueueConcurrentProducersConsumers(t *testing.T) {
	env := NewTCPEnv("h")
	q := NewQueue[int](env)
	const producers, perProducer = 4, 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Put(env, base+i)
			}
		}(p * perProducer)
	}
	seen := make([]bool, producers*perProducer)
	var mu sync.Mutex
	var cg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := q.Get(env)
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d delivered twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Drain then close once everything is consumed.
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	cg.Wait()
	for i, s := range seen {
		if !s {
			t.Fatalf("value %d lost", i)
		}
	}
}

func TestTCPMutex(t *testing.T) {
	env := NewTCPEnv("h")
	mu := env.NewMutex()
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				mu.Lock(env)
				counter++
				mu.Unlock(env)
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000 (mutual exclusion broken)", counter)
	}
}
