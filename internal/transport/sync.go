package transport

import (
	"sync"
	"time"
)

// Mutex is an environment-portable mutual-exclusion lock: backed by
// sync.Mutex on real TCP environments and by a virtual-time lock in the
// simulator. Obtain one from Env.NewMutex.
type Mutex interface {
	// Lock blocks the calling process until the lock is held.
	Lock(env Env)
	// Unlock releases the lock.
	Unlock(env Env)
}

// AnyQueue is an unbounded FIFO usable from any Env implementation. It is
// the portable building block under the Nexus message mailboxes and the MPI
// unexpected-message queues. Obtain one from Env.NewQueue; wrap it with
// Queue[T] for type safety.
type AnyQueue interface {
	// Put appends v; it never blocks.
	Put(env Env, v interface{})
	// Get blocks until a value is available; ok is false once the queue is
	// closed and drained.
	Get(env Env) (v interface{}, ok bool)
	// TryGet removes the head if one is immediately available.
	TryGet(env Env) (v interface{}, ok bool)
	// GetTimeout is Get bounded by d; timedOut reports expiry.
	GetTimeout(env Env, d time.Duration) (v interface{}, ok, timedOut bool)
	// Close marks the queue finished; blocked Gets drain then report !ok.
	Close()
	// Len reports the queued element count.
	Len() int
}

// Queue adds compile-time element typing over an AnyQueue.
type Queue[T any] struct {
	Q AnyQueue
}

// NewQueue creates a typed queue on env.
func NewQueue[T any](env Env) Queue[T] {
	return Queue[T]{Q: env.NewQueue()}
}

// Put appends v.
func (q Queue[T]) Put(env Env, v T) { q.Q.Put(env, v) }

// Get blocks for the next value.
func (q Queue[T]) Get(env Env) (T, bool) {
	v, ok := q.Q.Get(env)
	if !ok {
		var zero T
		return zero, false
	}
	// Comma-ok assertion: a nil interface (e.g. a nil error Put through the
	// untyped queue) yields T's zero value instead of panicking.
	tv, _ := v.(T)
	return tv, true
}

// TryGet pops the head if available.
func (q Queue[T]) TryGet(env Env) (T, bool) {
	v, ok := q.Q.TryGet(env)
	if !ok {
		var zero T
		return zero, false
	}
	tv, _ := v.(T)
	return tv, true
}

// GetTimeout is Get bounded by d.
func (q Queue[T]) GetTimeout(env Env, d time.Duration) (v T, ok, timedOut bool) {
	av, ok, timedOut := q.Q.GetTimeout(env, d)
	if !ok {
		var zero T
		return zero, ok, timedOut
	}
	tv, _ := av.(T)
	return tv, true, false
}

// Close marks the queue finished.
func (q Queue[T]) Close() { q.Q.Close() }

// Len reports the queued element count.
func (q Queue[T]) Len() int { return q.Q.Len() }

// ---- real (goroutine) implementations ----

type tcpMutex struct{ mu sync.Mutex }

func (m *tcpMutex) Lock(env Env)   { m.mu.Lock() }
func (m *tcpMutex) Unlock(env Env) { m.mu.Unlock() }

// NewMutex returns a goroutine-backed Mutex.
func (e *TCPEnv) NewMutex() Mutex { return &tcpMutex{} }

type tcpQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []interface{}
	closed bool
}

// NewQueue returns a goroutine-backed AnyQueue.
func (e *TCPEnv) NewQueue() AnyQueue {
	q := &tcpQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *tcpQueue) Put(env Env, v interface{}) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *tcpQueue) Get(env Env) (interface{}, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

func (q *tcpQueue) TryGet(env Env) (interface{}, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

func (q *tcpQueue) GetTimeout(env Env, d time.Duration) (interface{}, bool, bool) {
	deadline := time.Now().Add(d)
	// sync.Cond has no timed wait; poll with a short sleep, which is fine
	// for the real-TCP environment's test workloads.
	for {
		if v, ok := q.TryGet(env); ok {
			return v, true, false
		}
		q.mu.Lock()
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return nil, false, false
		}
		if time.Now().After(deadline) {
			return nil, false, true
		}
		time.Sleep(time.Millisecond)
	}
}

func (q *tcpQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *tcpQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
