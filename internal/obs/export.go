package obs

import (
	"bufio"
	"io"
	"strconv"
)

// Serialization is hand-rolled rather than encoding/json so the byte stream
// is exactly reproducible: field order is emission order, numbers are plain
// base-10 int64s (sim time in nanoseconds), and no reflection or map
// iteration is involved. Trace hashes are FNV-64a over the JSONL bytes, the
// same construction internal/bench/golden_test.go uses for table output.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hasher accumulates an FNV-64a hash. The zero value is ready to use.
type Hasher struct{ h uint64 }

// Write folds p into the hash; it never fails.
func (s *Hasher) Write(p []byte) (int, error) {
	h := s.h
	if h == 0 {
		h = fnvOffset
	}
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime
	}
	s.h = h
	return len(p), nil
}

// Sum64 returns the current hash.
func (s *Hasher) Sum64() uint64 {
	if s.h == 0 {
		return fnvOffset
	}
	return s.h
}

// AppendJSONString appends s as a JSON string literal (quoted, with the
// minimal escaping the deterministic exporters rely on). Shared with the
// time-series layer so every JSONL stream escapes identically.
func AppendJSONString(b []byte, s string) []byte { return appendJSONString(b, s) }

func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}

func appendEventJSON(b []byte, e *Event) []byte {
	b = append(b, `{"at":`...)
	b = strconv.AppendInt(b, int64(e.At), 10)
	b = append(b, `,"ph":"`...)
	b = append(b, e.Ph, '"')
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, e.Cat)
	b = append(b, `,"name":`...)
	b = appendJSONString(b, e.Name)
	b = append(b, `,"track":`...)
	b = appendJSONString(b, e.Track)
	if e.ID != 0 {
		b = append(b, `,"id":`...)
		b = strconv.AppendUint(b, e.ID, 10)
	}
	for i := range e.Fields {
		f := &e.Fields[i]
		b = append(b, ',')
		b = appendJSONString(b, f.Key)
		b = append(b, ':')
		if f.IsStr {
			b = appendJSONString(b, f.Str)
		} else {
			b = strconv.AppendInt(b, f.Int, 10)
		}
	}
	return append(b, '}')
}

// WriteJSONL writes one JSON object per event, in emission order. The bytes
// are deterministic for a deterministic run.
func (o *Observer) WriteJSONL(w io.Writer) error {
	if o == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := range o.events {
		buf = appendEventJSON(buf[:0], &o.events[i])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Hash returns the FNV-64a hash of the JSONL serialization — the value the
// golden-trace tests pin across GOMAXPROCS and worker counts.
func (o *Observer) Hash() uint64 {
	var h Hasher
	_ = o.WriteJSONL(&h)
	return h.Sum64()
}

// WriteChromeTrace writes the trace in Chrome's trace_event JSON array
// format, loadable in chrome://tracing or https://ui.perfetto.dev. Each
// Track becomes a named "thread"; timestamps are virtual microseconds with
// nanosecond remainders carried in the span args. Instant events use
// thread scope.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if o == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	// Assign stable tids in order of first appearance.
	tids := make(map[string]int)
	var order []string
	for i := range o.events {
		t := o.events[i].Track
		if _, ok := tids[t]; !ok {
			tids[t] = len(tids) + 1
			order = append(order, t)
		}
	}
	var buf []byte
	first := true
	put := func() error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.Write(buf)
		return err
	}
	for _, t := range order {
		buf = append(buf[:0], `{"ph":"M","pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tids[t]), 10)
		buf = append(buf, `,"name":"thread_name","args":{"name":`...)
		buf = appendJSONString(buf, t)
		buf = append(buf, `}}`...)
		if err := put(); err != nil {
			return err
		}
	}
	for i := range o.events {
		e := &o.events[i]
		buf = append(buf[:0], `{"ph":"`...)
		buf = append(buf, e.Ph, '"')
		buf = append(buf, `,"pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tids[e.Track]), 10)
		buf = append(buf, `,"ts":`...)
		us := int64(e.At) / 1000
		ns := int64(e.At) % 1000
		buf = strconv.AppendInt(buf, us, 10)
		if ns != 0 {
			buf = append(buf, '.')
			buf = append(buf, byte('0'+ns/100), byte('0'+ns/10%10), byte('0'+ns%10))
		}
		buf = append(buf, `,"cat":`...)
		buf = appendJSONString(buf, e.Cat)
		buf = append(buf, `,"name":`...)
		buf = appendJSONString(buf, e.Name)
		if e.Ph == PhaseInstant {
			buf = append(buf, `,"s":"t"`...)
		}
		if len(e.Fields) > 0 || e.ID != 0 {
			buf = append(buf, `,"args":{`...)
			n := 0
			if e.ID != 0 {
				buf = append(buf, `"span":`...)
				buf = strconv.AppendUint(buf, e.ID, 10)
				n++
			}
			for j := range e.Fields {
				f := &e.Fields[j]
				if n > 0 {
					buf = append(buf, ',')
				}
				n++
				buf = appendJSONString(buf, f.Key)
				buf = append(buf, ':')
				if f.IsStr {
					buf = appendJSONString(buf, f.Str)
				} else {
					buf = strconv.AppendInt(buf, f.Int, 10)
				}
			}
			buf = append(buf, '}')
		}
		buf = append(buf, '}')
		if err := put(); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
