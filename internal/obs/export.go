package obs

import (
	"bufio"
	"io"
	"strconv"
)

// Serialization is hand-rolled rather than encoding/json so the byte stream
// is exactly reproducible: field order is emission order, numbers are plain
// base-10 int64s (sim time in nanoseconds), and no reflection or map
// iteration is involved. Trace hashes are FNV-64a over the JSONL bytes, the
// same construction internal/bench/golden_test.go uses for table output.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hasher accumulates an FNV-64a hash. The zero value is ready to use.
type Hasher struct{ h uint64 }

// Write folds p into the hash; it never fails.
func (s *Hasher) Write(p []byte) (int, error) {
	h := s.h
	if h == 0 {
		h = fnvOffset
	}
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime
	}
	s.h = h
	return len(p), nil
}

// Sum64 returns the current hash.
func (s *Hasher) Sum64() uint64 {
	if s.h == 0 {
		return fnvOffset
	}
	return s.h
}

// AppendJSONString appends s as a JSON string literal (quoted, with the
// minimal escaping the deterministic exporters rely on). Shared with the
// time-series layer so every JSONL stream escapes identically.
func AppendJSONString(b []byte, s string) []byte { return appendJSONString(b, s) }

func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}

func appendEventJSON(b []byte, e *Event) []byte {
	b = append(b, `{"at":`...)
	b = strconv.AppendInt(b, int64(e.At), 10)
	b = append(b, `,"ph":"`...)
	b = append(b, e.Ph, '"')
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, e.Cat)
	b = append(b, `,"name":`...)
	b = appendJSONString(b, e.Name)
	b = append(b, `,"track":`...)
	b = appendJSONString(b, e.Track)
	if e.ID != 0 {
		b = append(b, `,"id":`...)
		b = strconv.AppendUint(b, e.ID, 10)
	}
	if e.Trace != 0 {
		b = append(b, `,"trace":`...)
		b = strconv.AppendUint(b, e.Trace, 10)
	}
	if e.Parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, e.Parent, 10)
	}
	for i := range e.Fields {
		f := &e.Fields[i]
		b = append(b, ',')
		b = appendJSONString(b, f.Key)
		b = append(b, ':')
		if f.IsStr {
			b = appendJSONString(b, f.Str)
		} else {
			b = strconv.AppendInt(b, f.Int, 10)
		}
	}
	return append(b, '}')
}

// WriteJSONL writes one JSON object per event, in emission order. The bytes
// are deterministic for a deterministic run.
func (o *Observer) WriteJSONL(w io.Writer) error {
	if o == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := range o.events {
		buf = appendEventJSON(buf[:0], &o.events[i])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Hash returns the FNV-64a hash of the JSONL serialization — the value the
// golden-trace tests pin across GOMAXPROCS and worker counts.
func (o *Observer) Hash() uint64 {
	var h Hasher
	_ = o.WriteJSONL(&h)
	return h.Sum64()
}

// WriteChromeTrace writes the trace in Chrome's trace_event JSON array
// format, loadable in chrome://tracing or https://ui.perfetto.dev. Each
// Track becomes a named "thread"; timestamps are virtual microseconds with
// nanosecond remainders carried in the span args. Instant events use
// thread scope.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if o == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	// Assign stable tids in order of first appearance, and remember where
	// each span begins so causal children can draw flow arrows back to
	// their parent span's begin point.
	tids := make(map[string]int)
	var order []string
	begins := make(map[uint64]int)
	for i := range o.events {
		e := &o.events[i]
		if _, ok := tids[e.Track]; !ok {
			tids[e.Track] = len(tids) + 1
			order = append(order, e.Track)
		}
		if e.Ph == PhaseBegin && e.ID != 0 {
			begins[e.ID] = i
		}
	}
	var buf []byte
	first := true
	put := func() error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.Write(buf)
		return err
	}
	for _, t := range order {
		buf = append(buf[:0], `{"ph":"M","pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tids[t]), 10)
		buf = append(buf, `,"name":"thread_name","args":{"name":`...)
		buf = appendJSONString(buf, t)
		buf = append(buf, `}}`...)
		if err := put(); err != nil {
			return err
		}
	}
	appendTS := func(buf []byte, at int64) []byte {
		us := at / 1000
		ns := at % 1000
		buf = strconv.AppendInt(buf, us, 10)
		if ns != 0 {
			buf = append(buf, '.')
			buf = append(buf, byte('0'+ns/100), byte('0'+ns/10%10), byte('0'+ns%10))
		}
		return buf
	}
	for i := range o.events {
		e := &o.events[i]
		buf = append(buf[:0], `{"ph":"`...)
		buf = append(buf, e.Ph, '"')
		buf = append(buf, `,"pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tids[e.Track]), 10)
		buf = append(buf, `,"ts":`...)
		buf = appendTS(buf, int64(e.At))
		buf = append(buf, `,"cat":`...)
		buf = appendJSONString(buf, e.Cat)
		buf = append(buf, `,"name":`...)
		buf = appendJSONString(buf, e.Name)
		if e.Ph == PhaseInstant {
			buf = append(buf, `,"s":"t"`...)
		}
		if len(e.Fields) > 0 || e.ID != 0 || e.Trace != 0 {
			buf = append(buf, `,"args":{`...)
			n := 0
			if e.ID != 0 {
				buf = append(buf, `"span":`...)
				buf = strconv.AppendUint(buf, e.ID, 10)
				n++
			}
			if e.Trace != 0 {
				if n > 0 {
					buf = append(buf, ',')
				}
				buf = append(buf, `"trace":`...)
				buf = strconv.AppendUint(buf, e.Trace, 10)
				n++
			}
			if e.Parent != 0 {
				if n > 0 {
					buf = append(buf, ',')
				}
				buf = append(buf, `"parent":`...)
				buf = strconv.AppendUint(buf, e.Parent, 10)
				n++
			}
			for j := range e.Fields {
				f := &e.Fields[j]
				if n > 0 {
					buf = append(buf, ',')
				}
				n++
				buf = appendJSONString(buf, f.Key)
				buf = append(buf, ':')
				if f.IsStr {
					buf = appendJSONString(buf, f.Str)
				} else {
					buf = strconv.AppendInt(buf, f.Int, 10)
				}
			}
			buf = append(buf, '}')
		}
		buf = append(buf, '}')
		if err := put(); err != nil {
			return err
		}
		// A causal child whose parent span began on a different track gets a
		// flow arrow from the parent's begin point to its own: a paired
		// "s"/"f" record bound by the child's span ID.
		if e.Ph == PhaseBegin && e.Parent != 0 {
			if pi, ok := begins[e.Parent]; ok && o.events[pi].Track != e.Track {
				p := &o.events[pi]
				buf = append(buf[:0], `{"ph":"s","pid":1,"tid":`...)
				buf = strconv.AppendInt(buf, int64(tids[p.Track]), 10)
				buf = append(buf, `,"ts":`...)
				buf = appendTS(buf, int64(p.At))
				buf = append(buf, `,"cat":"flow","name":"causal","id":`...)
				buf = strconv.AppendUint(buf, e.ID, 10)
				buf = append(buf, '}')
				if err := put(); err != nil {
					return err
				}
				buf = append(buf[:0], `{"ph":"f","bp":"e","pid":1,"tid":`...)
				buf = strconv.AppendInt(buf, int64(tids[e.Track]), 10)
				buf = append(buf, `,"ts":`...)
				buf = appendTS(buf, int64(e.At))
				buf = append(buf, `,"cat":"flow","name":"causal","id":`...)
				buf = strconv.AppendUint(buf, e.ID, 10)
				buf = append(buf, '}')
				if err := put(); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
