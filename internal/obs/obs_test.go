package obs

import (
	"strings"
	"testing"
	"time"
)

// TestNilObserverIsNoOp pins the disabled contract: every method on a nil
// observer (and on nil instruments) is safe and records nothing.
func TestNilObserverIsNoOp(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	o.Emit(1, "net", "x", "h")
	id := o.Begin(2, "net", "y", "h")
	if id != 0 {
		t.Fatalf("nil Begin returned %d", id)
	}
	o.End(3, id, "net", "y", "h")
	if o.Len() != 0 || o.Events() != nil {
		t.Fatal("nil observer recorded events")
	}
	m := o.Metrics()
	if m != nil {
		t.Fatal("nil observer returned a registry")
	}
	c := m.Counter("c")
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter held a value")
	}
	g := m.Gauge("g")
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge held a value")
	}
	h := m.Histogram("h")
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram held samples")
	}
	if m.Format() != "" {
		t.Fatal("nil registry formatted output")
	}
	if err := o.WriteJSONL(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestEmitBeginEnd checks recording order, span IDs, and field round-trips.
func TestEmitBeginEnd(t *testing.T) {
	o := New()
	o.Emit(10*time.Microsecond, "net", "send", "hostA", Int("bytes", 64), Str("link", "a->b"))
	id := o.Begin(20*time.Microsecond, "xfer", "ping", "hostA")
	o.End(55*time.Microsecond, id, "xfer", "ping", "hostA")
	ev := o.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	if ev[0].Ph != PhaseInstant || ev[0].Fields[0].Int != 64 || ev[0].Fields[1].Str != "a->b" {
		t.Fatalf("instant event mangled: %+v", ev[0])
	}
	if ev[1].Ph != PhaseBegin || ev[2].Ph != PhaseEnd || ev[1].ID != ev[2].ID || ev[1].ID == 0 {
		t.Fatalf("span not paired: %+v / %+v", ev[1], ev[2])
	}
	id2 := o.Begin(60*time.Microsecond, "xfer", "pong", "hostB")
	if id2 == id {
		t.Fatal("span IDs not unique")
	}
}

// TestJSONLDeterministic checks the serialization byte-for-byte, including
// string escaping, and that Hash is a pure function of the events.
func TestJSONLDeterministic(t *testing.T) {
	build := func() *Observer {
		o := New()
		o.Emit(1500, "net", "q\"uote", "h\\ost", Int("n", -3), Str("s", "line\nbreak"))
		id := o.Begin(2000, "relay", "recv", "outer")
		o.End(2600, id, "relay", "recv", "outer")
		return o
	}
	a, b := build(), build()
	var sa, sb strings.Builder
	if err := a.WriteJSONL(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Fatal("JSONL not deterministic")
	}
	want := `{"at":1500,"ph":"i","cat":"net","name":"q\"uote","track":"h\\ost","n":-3,"s":"line\u000abreak"}` + "\n" +
		`{"at":2000,"ph":"B","cat":"relay","name":"recv","track":"outer","id":1}` + "\n" +
		`{"at":2600,"ph":"E","cat":"relay","name":"recv","track":"outer","id":1}` + "\n"
	if sa.String() != want {
		t.Fatalf("JSONL:\n%s\nwant:\n%s", sa.String(), want)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("hashes differ for identical traces")
	}
	a.Emit(3000, "net", "extra", "h")
	if a.Hash() == b.Hash() {
		t.Fatal("hash ignored an extra event")
	}
}

// TestChromeTrace sanity-checks the trace_event output: valid bracketed
// array, thread metadata per track, microsecond timestamps with sub-µs
// remainders.
func TestChromeTrace(t *testing.T) {
	o := New()
	o.Emit(1500, "net", "send", "hostA")
	id := o.Begin(2*time.Microsecond, "xfer", "ping", "hostB")
	o.End(5*time.Microsecond, id, "xfer", "ping", "hostB")
	var sb strings.Builder
	if err := o.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "[\n") || !strings.HasSuffix(out, "\n]\n") {
		t.Fatalf("not a JSON array:\n%s", out)
	}
	for _, want := range []string{
		`"thread_name","args":{"name":"hostA"}`,
		`"thread_name","args":{"name":"hostB"}`,
		`"ts":1.500`, // 1500ns = 1.5µs
		`"ts":2,`,
		`"s":"t"`,
		`"args":{"span":1}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %q:\n%s", want, out)
		}
	}
	// Disabled observer still writes a valid (empty) array.
	var empty strings.Builder
	var nilObs *Observer
	if err := nilObs.WriteChromeTrace(&empty); err != nil {
		t.Fatal(err)
	}
	if empty.String() != "[]\n" {
		t.Fatalf("nil chrome trace = %q", empty.String())
	}
}

// TestMetrics exercises counters, gauges (high-water), histograms
// (bucketing, min/max), handle caching, and the snapshot printer.
func TestMetrics(t *testing.T) {
	o := New()
	m := o.Metrics()
	c := m.Counter("link.bytes")
	c.Add(100)
	c.Add(28)
	if m.Counter("link.bytes") != c {
		t.Fatal("counter handle not cached")
	}
	if c.Value() != 128 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := m.Gauge("queue.depth")
	g.Add(1)
	g.Add(1)
	g.Add(-1)
	if g.Value() != 1 || g.Max() != 2 {
		t.Fatalf("gauge = %d max %d", g.Value(), g.Max())
	}
	h := m.Histogram("rtt_ns")
	for _, v := range []int64{0, 1, 2, 3, 1000, 1500000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1501006 {
		t.Fatalf("hist n=%d sum=%d", h.Count(), h.Sum())
	}
	out := m.Format()
	for _, want := range []string{"link.bytes", "128", "queue.depth", "max 2", "rtt_ns", "n=6"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
	// Formatting is deterministic.
	if m.Format() != out {
		t.Fatal("Format not stable")
	}
}

// TestMetricUpdatesDoNotAllocate pins the allocation-free contract for
// cached instrument handles, enabled and disabled alike.
func TestMetricUpdatesDoNotAllocate(t *testing.T) {
	o := New()
	c := o.Metrics().Counter("c")
	g := o.Metrics().Gauge("g")
	h := o.Metrics().Histogram("h")
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Add(1)
		h.Observe(42)
		nilC.Add(1)
		nilG.Add(1)
		nilH.Observe(42)
	}); n != 0 {
		t.Fatalf("metric updates allocate: %v allocs/op", n)
	}
}

// TestDisabledTracingDoesNotAllocate pins the overhead contract for the
// span API: with tracing off (a nil observer) every call is a branch and a
// return — no event is built, nothing escapes. BenchmarkObsSpan/disabled in
// the root package reports the same path's per-op cost.
func TestDisabledTracingDoesNotAllocate(t *testing.T) {
	var o *Observer
	var parent TraceContext
	if n := testing.AllocsPerRun(1000, func() {
		o.Emit(1, "rmf", "submit", "t")
		id := o.Begin(2, "rmf", "job", "t")
		o.End(3, id, "rmf", "job", "t")
		tc := o.BeginTrace(4, "rmf", "job", "t")
		child := o.BeginChild(5, tc, "gram", "submit", "t")
		o.EndSpan(6, child, "gram", "submit", "t")
		span := o.BeginSpan(7, parent, "mpi", "rank", "t")
		o.EndSpan(8, span, "mpi", "rank", "t")
		o.EmitCtx(9, tc, "rmf", "requeue", "t")
		if o.Enabled() || o.Len() != 0 || o.Events() != nil || o.Metrics() != nil {
			t.Fatal("nil observer recorded something")
		}
	}); n != 0 {
		t.Fatalf("disabled tracing allocates: %v allocs/op", n)
	}
}

// TestFrom checks observer extraction via the duck-typed carrier.
func TestFrom(t *testing.T) {
	o := New()
	if From(carrierStub{o}) != o {
		t.Fatal("From missed the carrier")
	}
	if From(struct{}{}) != nil {
		t.Fatal("From invented an observer")
	}
	if From(nil) != nil {
		t.Fatal("From(nil) non-nil")
	}
}

type carrierStub struct{ o *Observer }

func (c carrierStub) Observer() *Observer { return c.o }
