package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"time"
)

// Metrics is an ordered registry of counters, gauges, and histograms.
// Instruments are looked up once (at wiring time, typically when a link or
// connection is created) and the returned handle is cached by the caller;
// updates through a handle are a field increment — no map lookups, no
// allocation. All handle methods are nil-receiver-safe so a disabled
// observer hands back nil handles and the update sites need no guards.
type Metrics struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Counter is a monotonically increasing count (bytes, retries, requeues).
type Counter struct {
	name string
	v    int64
}

// Add increments the counter. No-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level with a high-water mark (queue depth,
// relay buffer occupancy).
type Gauge struct {
	name string
	v    int64
	max  int64
}

// Set records the current level and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add shifts the level by delta (use +1/-1 around enqueue/dequeue).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.Set(g.v + delta)
}

// Value reads the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max reads the high-water mark (0 on nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// histBuckets is the fixed bucket count: bucket i counts samples in
// [2^(i-1), 2^i), with bucket 0 holding zero and negative samples.
const histBuckets = 64

// Histogram is a power-of-two histogram of int64 samples (durations in
// nanoseconds, message sizes). Fixed-size array: recording never allocates.
type Histogram struct {
	name    string
	buckets [histBuckets]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i]++
}

// Count reads the number of samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reads the sample total (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns a nil handle.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	if c, ok := m.counters[name]; ok {
		return c
	}
	if m.counters == nil {
		m.counters = make(map[string]*Counter)
	}
	c := &Counter{name: name}
	m.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	if g, ok := m.gauges[name]; ok {
		return g
	}
	if m.gauges == nil {
		m.gauges = make(map[string]*Gauge)
	}
	g := &Gauge{name: name}
	m.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	if h, ok := m.histograms[name]; ok {
		return h
	}
	if m.histograms == nil {
		m.histograms = make(map[string]*Histogram)
	}
	h := &Histogram{name: name}
	m.histograms[name] = h
	return h
}

// Instrument kind tags for Snapshot rows.
const (
	KindCounter   = byte('c')
	KindGauge     = byte('g')
	KindHistogram = byte('h')
)

// SnapshotRow is one instrument's current reading: a counter's cumulative
// value, a gauge's level, or a histogram's sample count.
type SnapshotRow struct {
	Kind  byte
	Name  string
	Value int64
}

// Snapshot appends every instrument's current reading to buf (counters, then
// gauges, then histograms, each group sorted by name) and returns the result.
// Passing the previous call's buf[:0] makes periodic sampling — the
// time-series layer calls this once per window — allocation-light. The order
// is deterministic, so samplers driven from kernel context stay reproducible.
func (m *Metrics) Snapshot(buf []SnapshotRow) []SnapshotRow {
	if m == nil {
		return buf
	}
	names := make([]string, 0, len(m.counters))
	for n := range m.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		buf = append(buf, SnapshotRow{Kind: KindCounter, Name: n, Value: m.counters[n].v})
	}
	names = names[:0]
	for n := range m.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		buf = append(buf, SnapshotRow{Kind: KindGauge, Name: n, Value: m.gauges[n].v})
	}
	names = names[:0]
	for n := range m.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		buf = append(buf, SnapshotRow{Kind: KindHistogram, Name: n, Value: m.histograms[n].count})
	}
	return buf
}

// Format renders a snapshot table of every instrument, sorted by name so the
// output is deterministic. Counters print their value; gauges print level
// and high-water mark; histograms print count, mean, min and max. Duration
// semantics are not inferred — callers pick nanosecond-valued names (suffix
// "_ns") when they record times.
func (m *Metrics) Format() string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	names := make([]string, 0, len(m.counters))
	for n := range m.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %-40s %12d\n", n, m.counters[n].v)
	}
	names = names[:0]
	for n := range m.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := m.gauges[n]
		fmt.Fprintf(&b, "gauge   %-40s %12d  max %d\n", n, g.v, g.max)
	}
	names = names[:0]
	for n := range m.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := m.histograms[n]
		mean := int64(0)
		if h.count > 0 {
			mean = h.sum / h.count
		}
		if strings.HasSuffix(n, "_ns") {
			fmt.Fprintf(&b, "hist    %-40s n=%d mean=%v min=%v max=%v\n", n, h.count,
				time.Duration(mean), time.Duration(h.min), time.Duration(h.max))
		} else {
			fmt.Fprintf(&b, "hist    %-40s n=%d mean=%d min=%d max=%d\n", n, h.count, mean, h.min, h.max)
		}
	}
	return b.String()
}
