package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrace is a small but representative trace: a causal tree crossing
// two tracks (so the Chrome export emits flow events), an untraced flat
// span, an instant marker with both field kinds, and a string needing JSON
// escaping.
func goldenTrace() *Observer {
	o := New()
	root := o.BeginTrace(500*time.Microsecond, "rmf", "job", "rwcp-sun", Str("rsl", `&(executable="knap")`))
	sub := o.BeginChild(700*time.Microsecond, root, "gram", "submit", "compas00", Int("rank", 0))
	o.EmitCtx(800*time.Microsecond, sub, "rmf", "requeue", "compas00", Int("attempt", 1))
	o.EndSpan(1200*time.Microsecond+250*time.Nanosecond, sub, "gram", "submit", "compas00")
	o.EndSpan(2*time.Millisecond, root, "rmf", "job", "rwcp-sun", Int("jobs", 1))
	id := o.Begin(3*time.Millisecond, "net", "dial", "etl-sun")
	o.End(3*time.Millisecond+10*time.Microsecond, id, "net", "dial", "etl-sun")
	o.Emit(4*time.Millisecond, "hbm", "suspect", "rwcp-inner", Str("host", "compas01"))
	return o
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs/... -run Golden -update` to create it)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestChromeTraceGolden pins the Chrome trace_event export byte for byte:
// metadata thread names, B/E/i phases, µs timestamps with the sub-µs
// remainder, span/trace/parent args, and the cross-track flow event pair.
func TestChromeTraceGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenTrace().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome.json.golden", []byte(b.String()))
}

// TestJSONLGolden pins the canonical JSONL export — the bytes the trace
// hash is computed over, and the format cmd/tracer reads back.
func TestJSONLGolden(t *testing.T) {
	var b strings.Builder
	o := goldenTrace()
	if err := o.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.jsonl.golden", []byte(b.String()))

	// The export must round-trip byte-exactly through the JSONL reader.
	events, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 strings.Builder
	if err := FromEvents(events).WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Fatal("JSONL round trip not byte-exact")
	}
}
