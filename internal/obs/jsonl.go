package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ReadJSONL parses a stream previously written by WriteJSONL back into
// events. It walks each line's object with a token decoder so field order —
// which WriteJSONL preserves from the original Emit calls — survives the
// round trip: re-serializing the result reproduces the input bytes exactly,
// which is what lets cmd/tracer verify a capture against its recorded hash.
//
// Keys at/ph/cat/name/track/id/trace/parent are the event envelope; every
// other key is a Field (string or integer by JSON type).
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		e, err := parseEventJSON(raw)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

func parseEventJSON(raw []byte) (Event, error) {
	var e Event
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return e, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return e, fmt.Errorf("not a JSON object")
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return e, err
		}
		key := keyTok.(string)
		valTok, err := dec.Token()
		if err != nil {
			return e, fmt.Errorf("key %q: %w", key, err)
		}
		switch key {
		case "at":
			n, err := tokInt(valTok)
			if err != nil {
				return e, fmt.Errorf("at: %w", err)
			}
			e.At = time.Duration(n)
		case "ph":
			s, ok := valTok.(string)
			if !ok || len(s) != 1 {
				return e, fmt.Errorf("ph: want 1-char string, got %v", valTok)
			}
			e.Ph = s[0]
		case "cat":
			e.Cat, _ = valTok.(string)
		case "name":
			e.Name, _ = valTok.(string)
		case "track":
			e.Track, _ = valTok.(string)
		case "id":
			n, err := tokInt(valTok)
			if err != nil {
				return e, fmt.Errorf("id: %w", err)
			}
			e.ID = uint64(n)
		case "trace":
			n, err := tokInt(valTok)
			if err != nil {
				return e, fmt.Errorf("trace: %w", err)
			}
			e.Trace = uint64(n)
		case "parent":
			n, err := tokInt(valTok)
			if err != nil {
				return e, fmt.Errorf("parent: %w", err)
			}
			e.Parent = uint64(n)
		default:
			switch v := valTok.(type) {
			case string:
				e.Fields = append(e.Fields, Str(key, v))
			case json.Number:
				n, err := v.Int64()
				if err != nil {
					return e, fmt.Errorf("field %q: %w", key, err)
				}
				e.Fields = append(e.Fields, Int(key, n))
			default:
				return e, fmt.Errorf("field %q: unsupported value %v", key, valTok)
			}
		}
	}
	return e, nil
}

func tokInt(tok json.Token) (int64, error) {
	n, ok := tok.(json.Number)
	if !ok {
		return 0, fmt.Errorf("want number, got %v", tok)
	}
	return n.Int64()
}
