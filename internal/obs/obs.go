// Package obs is the deterministic, virtual-time observability layer: every
// timestamp is simulation time (never wall clock), every record is appended
// from kernel-driven code — which executes one process at a time — so a trace
// is a pure function of the simulated run. Two runs of the same scenario
// produce bit-identical traces regardless of GOMAXPROCS or how many
// independent simulations execute concurrently on host threads (each kernel
// owns its own Observer).
//
// The layer has three parts:
//
//   - structured tracing (this file): instant events and begin/end spans,
//     categorized (net, relay, proxy, rmf, hbm, knap, xfer, proc) and stamped
//     with sim time, exported as JSONL and Chrome trace_event JSON;
//   - metrics (metrics.go): an allocation-free registry of counters, gauges
//     and power-of-two histograms with a snapshot table printer;
//   - export (export.go): deterministic serialization and hashing.
//
// # Overhead contract
//
// Disabled is the default, and disabled means free: the no-op observer is a
// nil *Observer, every instrumentation site guards with a nil check before
// building any event, and cached *Counter handles are nil too (Add on a nil
// counter is a branch and a return). The zero-alloc regression tests in
// internal/sim and internal/simnet pin this. Enabling tracing must never
// change virtual-time results: instrumentation only reads the clock, it
// never sleeps, computes, or schedules.
package obs

import "time"

// Field is one key/value annotation on an event. Only strings and int64s are
// representable, which keeps serialization trivially deterministic.
type Field struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// Str builds a string field.
func Str(k, v string) Field { return Field{Key: k, Str: v, IsStr: true} }

// Int builds an integer field.
func Int(k string, v int64) Field { return Field{Key: k, Int: v} }

// Phase markers, mirroring the Chrome trace_event "ph" values.
const (
	PhaseInstant = byte('i')
	PhaseBegin   = byte('B')
	PhaseEnd     = byte('E')
)

// Event is one trace record. At is virtual time. Track names the timeline
// the event belongs to (a host name, a link name, or host/process). ID links
// a PhaseEnd to its PhaseBegin. Trace and Parent, when nonzero, place the
// event in a causal span tree: Trace identifies the tree (one per traced
// job) and Parent is the span ID of the enclosing span. Untraced events
// keep both zero and serialize exactly as they did before tracing existed.
type Event struct {
	At     time.Duration
	Ph     byte
	Cat    string
	Name   string
	Track  string
	ID     uint64
	Trace  uint64
	Parent uint64
	Fields []Field
}

// SpanID identifies an open span returned by Begin.
type SpanID uint64

// TraceContext places work in a causal span tree: Trace identifies the tree
// (minted once per traced job) and Span is the current enclosing span. The
// zero TraceContext means "untraced" — every API accepting a parent treats
// it as plain flat instrumentation, so call sites never need to guard.
// Contexts flow out of band only (process environments and connection
// baggage), never in wire bytes, so enabling tracing cannot perturb
// simulated timing.
type TraceContext struct {
	Trace uint64
	Span  SpanID
}

// Traced reports whether the context belongs to a trace tree.
func (tc TraceContext) Traced() bool { return tc.Trace != 0 }

// Observer collects a run's trace and metrics. It belongs to exactly one
// simulation kernel: all appends happen from that kernel's cooperatively
// scheduled code, so no locking is needed and event order is deterministic.
// A nil *Observer is the no-op sink; every method is nil-safe, but hot paths
// should still guard with Enabled (or a direct nil check) so that argument
// construction costs nothing when tracing is off.
type Observer struct {
	events    []Event
	metrics   Metrics
	nextID    uint64
	nextTrace uint64
}

// New creates an enabled observer.
func New() *Observer { return &Observer{} }

// FromEvents wraps an existing event slice (e.g. one parsed back from a
// JSONL export) so the exporters can re-serialize it. The observer takes
// ownership of the slice.
func FromEvents(events []Event) *Observer { return &Observer{events: events} }

// Enabled reports whether events are being recorded.
func (o *Observer) Enabled() bool { return o != nil }

// Emit records an instant event.
func (o *Observer) Emit(at time.Duration, cat, name, track string, fields ...Field) {
	if o == nil {
		return
	}
	o.events = append(o.events, Event{At: at, Ph: PhaseInstant, Cat: cat, Name: name, Track: track, Fields: fields})
}

// Begin opens a span and returns its ID (0 when disabled).
func (o *Observer) Begin(at time.Duration, cat, name, track string, fields ...Field) SpanID {
	if o == nil {
		return 0
	}
	o.nextID++
	id := o.nextID
	o.events = append(o.events, Event{At: at, Ph: PhaseBegin, Cat: cat, Name: name, Track: track, ID: id, Fields: fields})
	return SpanID(id)
}

// End closes the span opened by Begin. Cat, name and track are repeated so
// the end record is self-describing (and so Chrome's flow view pairs them).
func (o *Observer) End(at time.Duration, id SpanID, cat, name, track string, fields ...Field) {
	if o == nil || id == 0 {
		return
	}
	o.events = append(o.events, Event{At: at, Ph: PhaseEnd, Cat: cat, Name: name, Track: track, ID: uint64(id), Fields: fields})
}

// BeginTrace opens the root span of a fresh trace tree: it mints a new trace
// ID from the observer's deterministic counter and returns the context
// children parent under. The zero context comes back when disabled.
func (o *Observer) BeginTrace(at time.Duration, cat, name, track string, fields ...Field) TraceContext {
	if o == nil {
		return TraceContext{}
	}
	o.nextTrace++
	o.nextID++
	id := o.nextID
	o.events = append(o.events, Event{At: at, Ph: PhaseBegin, Cat: cat, Name: name, Track: track,
		ID: id, Trace: o.nextTrace, Fields: fields})
	return TraceContext{Trace: o.nextTrace, Span: SpanID(id)}
}

// BeginChild opens a span causally under parent and returns the child
// context. With the zero parent it degrades to a plain flat span (identical
// bytes to Begin), so instrumentation sites call it unconditionally whether
// or not a trace is flowing through them.
func (o *Observer) BeginChild(at time.Duration, parent TraceContext, cat, name, track string, fields ...Field) TraceContext {
	if o == nil {
		return TraceContext{}
	}
	o.nextID++
	id := o.nextID
	o.events = append(o.events, Event{At: at, Ph: PhaseBegin, Cat: cat, Name: name, Track: track,
		ID: id, Trace: parent.Trace, Parent: uint64(parent.Span), Fields: fields})
	return TraceContext{Trace: parent.Trace, Span: SpanID(id)}
}

// BeginSpan joins parent when it carries a trace and roots a fresh trace
// otherwise: the right call for layers that are a job's entry point when
// invoked directly but a leg of a larger trace when an upstream layer
// (e.g. a gatekeeper relaying an RSL submit) already carries context.
func (o *Observer) BeginSpan(at time.Duration, parent TraceContext, cat, name, track string, fields ...Field) TraceContext {
	if parent.Traced() {
		return o.BeginChild(at, parent, cat, name, track, fields...)
	}
	return o.BeginTrace(at, cat, name, track, fields...)
}

// EndSpan closes a span opened by BeginTrace, BeginChild, or BeginSpan.
func (o *Observer) EndSpan(at time.Duration, tc TraceContext, cat, name, track string, fields ...Field) {
	o.End(at, tc.Span, cat, name, track, fields...)
}

// EmitCtx records an instant event causally tied to parent (a requeue or
// speculation marker inside a job's tree). Zero parent = plain Emit.
func (o *Observer) EmitCtx(at time.Duration, parent TraceContext, cat, name, track string, fields ...Field) {
	if o == nil {
		return
	}
	o.events = append(o.events, Event{At: at, Ph: PhaseInstant, Cat: cat, Name: name, Track: track,
		Trace: parent.Trace, Parent: uint64(parent.Span), Fields: fields})
}

// Events returns the recorded trace in emission order. The slice is owned by
// the observer; callers must not mutate it.
func (o *Observer) Events() []Event {
	if o == nil {
		return nil
	}
	return o.events
}

// Len reports the number of recorded events.
func (o *Observer) Len() int {
	if o == nil {
		return 0
	}
	return len(o.events)
}

// Metrics returns the observer's metric registry (nil when disabled; the
// registry's constructors are nil-safe and hand back nil instruments, whose
// update methods are no-ops).
func (o *Observer) Metrics() *Metrics {
	if o == nil {
		return nil
	}
	return &o.metrics
}

// carrier is implemented by execution environments that carry an observer
// (simnet.Env does; the real-TCP env does not, so production protocol code
// stays uninstrumented at zero cost).
type carrier interface{ Observer() *Observer }

// From extracts the observer carried by v (typically a transport.Env),
// returning nil — the no-op observer — when v carries none. Protocol layers
// call this once per operation or connection, never per byte.
func From(v interface{}) *Observer {
	if c, ok := v.(carrier); ok {
		return c.Observer()
	}
	return nil
}

// ctxCarrier is implemented by execution environments that carry an ambient
// trace context (simnet.Env does; children inherit it at spawn time).
type ctxCarrier interface{ TraceContext() TraceContext }

// ctxSetter is the writable half of the ambient-context carrier.
type ctxSetter interface{ SetTraceContext(TraceContext) }

// CtxOf extracts the ambient trace context carried by v (typically a
// transport.Env), returning the zero context when v carries none. Like From,
// call it once per operation, never per byte.
func CtxOf(v interface{}) TraceContext {
	if c, ok := v.(ctxCarrier); ok {
		return c.TraceContext()
	}
	return TraceContext{}
}

// SetCtx installs tc as v's ambient trace context so spans opened later in
// the same process (and in processes it spawns) parent under it. It reports
// whether v supports a context.
func SetCtx(v interface{}, tc TraceContext) bool {
	if s, ok := v.(ctxSetter); ok {
		s.SetTraceContext(tc)
		return true
	}
	return false
}

// baggageCarrier is implemented by connections that carry trace baggage
// (simnet conns do: the baggage is shared with the peer endpoint, so a
// server reads the context its dialer attached — out of band, never in the
// simulated byte stream).
type baggageCarrier interface{ TraceBaggage() TraceContext }

// baggageSetter is the writable half of the connection-baggage carrier.
type baggageSetter interface{ SetTraceBaggage(TraceContext) }

// BaggageOf extracts the trace baggage attached to conn, or the zero
// context.
func BaggageOf(conn interface{}) TraceContext {
	if c, ok := conn.(baggageCarrier); ok {
		return c.TraceBaggage()
	}
	return TraceContext{}
}

// SetBaggage attaches tc to conn (and, for simnet conns, to the peer
// endpoint) so the accepting side can parent its spans under the caller's.
// It reports whether conn supports baggage.
func SetBaggage(conn interface{}, tc TraceContext) bool {
	if s, ok := conn.(baggageSetter); ok {
		s.SetTraceBaggage(tc)
		return true
	}
	return false
}
