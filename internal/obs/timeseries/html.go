package timeseries

import (
	"bufio"
	"fmt"
	"html"
	"io"
	"strings"
	"time"
)

// WriteHTML renders the store as a self-contained HTML report: one SVG
// small-multiple per series (sorted by name), step-line for gauges and bars
// for rates, with a shared virtual-time axis. No external assets or scripts,
// so the file opens anywhere and the bytes are deterministic.
func (st *Store) WriteHTML(w io.Writer, title string, opt DashboardOptions) error {
	bw := bufio.NewWriter(w)
	const (
		plotW, plotH = 640, 64
		padL, padR   = 6, 6
	)
	names := st.Names()
	fmt.Fprintf(bw, `<!doctype html>
<meta charset="utf-8">
<title>%s</title>
<style>
body{font:13px/1.4 system-ui,sans-serif;margin:24px auto;max-width:760px;color:#222}
h1{font-size:18px}
.meta{color:#666;margin-bottom:18px}
.series{margin:10px 0}
.name{font-family:ui-monospace,monospace;font-size:12px}
.stat{color:#666;float:right;font-size:11px}
svg{display:block;background:#fafafa;border:1px solid #ddd}
.rate{fill:#3572b0}
.gauge{fill:none;stroke:#b03535;stroke-width:1.2}
</style>
<h1>%s</h1>
<div class="meta">%d windows &times; %s virtual time &middot; %d series</div>
`, html.EscapeString(title), html.EscapeString(title),
		st.windows, html.EscapeString(st.Interval.String()), len(names))
	horizon := time.Duration(st.windows) * st.Interval
	fmt.Fprintf(bw, "<div class=\"meta\">virtual horizon %s</div>\n", html.EscapeString(horizon.String()))
	for _, n := range names {
		s := st.series[n]
		if opt.Filter != nil && !opt.Filter(n) {
			continue
		}
		vals := s.Values(st.windows)
		peak := s.Max()
		scale := peak
		if scale <= 0 {
			scale = 1
		}
		var stat string
		if s.Kind == KindRate {
			stat = fmt.Sprintf("peak %d/win &middot; total %d", peak, s.Total())
		} else {
			stat = fmt.Sprintf("peak %d &middot; last %d", peak, s.Last())
		}
		fmt.Fprintf(bw, "<div class=\"series\"><span class=\"name\">%s</span><span class=\"stat\">%s</span>\n",
			html.EscapeString(n), stat)
		fmt.Fprintf(bw, "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">", plotW, plotH, plotW, plotH)
		innerW := float64(plotW - padL - padR)
		nw := len(vals)
		if nw == 0 {
			nw = 1
		}
		cell := innerW / float64(nw)
		if s.Kind == KindRate {
			// One bar per window; sub-pixel bars still render as hairlines.
			for i, v := range vals {
				if v <= 0 {
					continue
				}
				h := float64(plotH-4) * float64(v) / float64(scale)
				fmt.Fprintf(bw, `<rect class="rate" x="%.1f" y="%.1f" width="%.1f" height="%.1f"/>`,
					float64(padL)+float64(i)*cell, float64(plotH)-h, maxf(cell-0.5, 0.5), h)
			}
		} else {
			var pts strings.Builder
			for i, v := range vals {
				h := float64(plotH-4) * float64(v) / float64(scale)
				x := float64(padL) + (float64(i)+0.5)*cell
				fmt.Fprintf(&pts, "%.1f,%.1f ", x, float64(plotH)-2-h)
			}
			fmt.Fprintf(bw, `<polyline class="gauge" points="%s"/>`, strings.TrimSpace(pts.String()))
		}
		fmt.Fprint(bw, "</svg></div>\n")
	}
	return bw.Flush()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
