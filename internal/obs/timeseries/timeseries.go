// Package timeseries is the live-monitoring layer on top of internal/obs: a
// deterministic, virtual-time time-series store fed by a kernel-scheduled
// sampler. Where obs records flat cumulative counters and post-hoc traces,
// this package turns them into fixed-interval windowed series — per-window
// deltas of every counter (rates), window-end levels of every gauge, count
// deltas of every histogram, plus caller-registered derived probes
// (utilization, queue depths computed from subsystem state).
//
// Determinism is the same contract the rest of the repo pins: the sampler
// runs inside its kernel's event loop (an After callback, never a process),
// it only reads state, and it sweeps the metric registry in sorted order. A
// monitored run therefore produces bit-identical samples regardless of
// GOMAXPROCS or how many independent simulations share the host — and
// attaching a sampler never changes the workload's own virtual-time results,
// because sampling schedules no work and consumes no simulated CPU or
// network.
package timeseries

import (
	"sort"
	"time"

	"nxcluster/internal/obs"
	"nxcluster/internal/sim"
)

// Kind classifies how a series' samples were produced.
type Kind uint8

// Series kinds.
const (
	// KindGauge samples are instantaneous levels read at each window's end.
	KindGauge Kind = iota
	// KindRate samples are deltas of a cumulative counter per window.
	KindRate
)

// String renders the kind for export.
func (k Kind) String() string {
	if k == KindRate {
		return "rate"
	}
	return "gauge"
}

// Series is one named timeline: a sample per completed window since the
// series first appeared. Instruments created mid-run (a link that only sees
// traffic late, a relay gauge bound on first connection) start at a nonzero
// window; Values pads the missing prefix with zeros so all series align.
type Series struct {
	// Name is the instrument name (e.g. "link.rwcp-outer>etl-gw.bytes").
	Name string
	// Kind says whether samples are window deltas or window-end levels.
	Kind Kind
	// Start is the index of the first window the series existed in.
	Start int

	samples []int64
	cum     int64 // last cumulative reading (rate series)
}

// Values returns the series padded with leading zeros to exactly windows
// samples. The returned slice aliases internal storage beyond the pad;
// callers must not mutate it.
func (s *Series) Values(windows int) []int64 {
	if s.Start == 0 {
		return s.samples[:min(windows, len(s.samples))]
	}
	out := make([]int64, 0, windows)
	for i := 0; i < s.Start && i < windows; i++ {
		out = append(out, 0)
	}
	n := windows - s.Start
	if n > len(s.samples) {
		n = len(s.samples)
	}
	return append(out, s.samples[:n]...)
}

// Last returns the most recent sample (0 when empty).
func (s *Series) Last() int64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[len(s.samples)-1]
}

// Max returns the largest sample (0 when empty or all-negative).
func (s *Series) Max() int64 {
	var m int64
	for _, v := range s.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Total returns the sum of all samples: for a rate series, the cumulative
// counter value at the last completed window.
func (s *Series) Total() int64 {
	var t int64
	for _, v := range s.samples {
		t += v
	}
	return t
}

// Store holds a run's series, all sharing one sampling interval and window
// sequence.
type Store struct {
	// Interval is the virtual-time width of every window.
	Interval time.Duration

	windows int
	series  map[string]*Series
	order   []string
}

// NewStore creates an empty store with the given window width.
func NewStore(interval time.Duration) *Store {
	return &Store{Interval: interval, series: make(map[string]*Series)}
}

// Windows reports the number of completed windows.
func (st *Store) Windows() int { return st.windows }

// Len reports the number of series.
func (st *Store) Len() int { return len(st.series) }

// Series returns the named series, or nil.
func (st *Store) Series(name string) *Series { return st.series[name] }

// Names returns every series name, sorted.
func (st *Store) Names() []string {
	out := append([]string(nil), st.order...)
	sort.Strings(out)
	return out
}

// get returns the named series, creating it at the current window on first
// use.
func (st *Store) get(name string, kind Kind) *Series {
	s := st.series[name]
	if s == nil {
		s = &Series{Name: name, Kind: kind, Start: st.windows}
		st.series[name] = s
		st.order = append(st.order, name)
	}
	return s
}

// recordLevel appends a gauge reading for the closing window.
func (st *Store) recordLevel(name string, v int64) {
	s := st.get(name, KindGauge)
	s.samples = append(s.samples, v)
}

// recordCum appends the delta since the previous reading of a cumulative
// counter.
func (st *Store) recordCum(name string, cum int64) {
	s := st.get(name, KindRate)
	s.samples = append(s.samples, cum-s.cum)
	s.cum = cum
}

// Sampler drives a Store from a simulation kernel: every Interval of virtual
// time it sweeps the bound metric registry and its registered probes, closes
// one window, and invokes any OnSample hooks (the MDS status publisher).
// It stops itself once no non-daemon work remains, so kernels driven with
// Run still terminate.
type Sampler struct {
	// KeepAlive keeps the sampler ticking even with no live processes, for
	// simulations driven by RunUntil (chaos horizons, long-running services).
	KeepAlive bool

	k       *sim.Kernel
	store   *Store
	metrics *obs.Metrics
	probes  []probe
	hooks   []func(at time.Duration)
	snap    []obs.SnapshotRow
	stopped bool
}

type probe struct {
	name string
	kind Kind
	fn   func() int64
}

// NewSampler binds a sampler to kernel k, sampling m (which may be nil when
// only probes matter) every interval. Call Start to begin ticking.
func NewSampler(k *sim.Kernel, interval time.Duration, m *obs.Metrics) *Sampler {
	return &Sampler{k: k, store: NewStore(interval), metrics: m}
}

// Store returns the sampler's store.
func (s *Sampler) Store() *Store { return s.store }

// Probe registers a derived series read by fn at every tick, in registration
// order, after the metric registry sweep. fn runs in kernel context and must
// only read state.
func (s *Sampler) Probe(name string, kind Kind, fn func() int64) {
	s.probes = append(s.probes, probe{name: name, kind: kind, fn: fn})
}

// OnSample registers a hook invoked after each window closes (in kernel
// context, after all series recorded their samples). The MDS publisher
// attaches here so directory state always matches the latest window.
func (s *Sampler) OnSample(fn func(at time.Duration)) {
	s.hooks = append(s.hooks, fn)
}

// Start schedules the first tick one interval from now. It must be called
// from kernel context or before the kernel runs.
func (s *Sampler) Start() {
	s.k.After(s.store.Interval, s.tick)
}

// Stop ends sampling after the current window.
func (s *Sampler) Stop() { s.stopped = true }

func (s *Sampler) tick() {
	if s.stopped {
		return
	}
	s.sample()
	// The final tick after the workload exits still samples (capturing the
	// tail window) and then lets the kernel drain.
	if !s.KeepAlive && s.k.Live() == 0 {
		s.stopped = true
		return
	}
	s.k.After(s.store.Interval, s.tick)
}

// sample closes one window: sweep the registry, run the probes, bump the
// window count, fire the hooks.
func (s *Sampler) sample() {
	s.snap = s.metrics.Snapshot(s.snap[:0])
	for i := range s.snap {
		r := &s.snap[i]
		switch r.Kind {
		case obs.KindGauge:
			s.store.recordLevel(r.Name, r.Value)
		default: // counters and histogram counts are cumulative
			s.store.recordCum(r.Name, r.Value)
		}
	}
	for _, p := range s.probes {
		if p.kind == KindGauge {
			s.store.recordLevel(p.name, p.fn())
		} else {
			s.store.recordCum(p.name, p.fn())
		}
	}
	s.store.windows++
	at := s.k.Now()
	for _, fn := range s.hooks {
		fn(at)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
