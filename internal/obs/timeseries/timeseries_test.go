package timeseries

import (
	"strings"
	"testing"
	"time"

	"nxcluster/internal/obs"
	"nxcluster/internal/sim"
)

// workload drives a kernel with a process that bumps a counter and a gauge on
// a fixed virtual-time schedule, so every test sees the same series.
func workload(t *testing.T, interval time.Duration, keepAlive bool) (*Store, *sim.Kernel) {
	t.Helper()
	k := sim.New()
	var m obs.Metrics
	c := m.Counter("work.bytes")
	g := m.Gauge("work.queue")
	k.Spawn("worker", func(env *sim.Proc) {
		for i := 1; i <= 10; i++ {
			env.Sleep(500 * time.Millisecond)
			c.Add(int64(100 * i))
			g.Set(int64(i % 4))
		}
	})
	s := NewSampler(k, interval, &m)
	s.KeepAlive = keepAlive
	s.Start()
	if keepAlive {
		k.RunUntil(8 * time.Second)
	} else {
		k.Run()
	}
	return s.Store(), k
}

func TestSamplerWindowsAndRates(t *testing.T) {
	st, _ := workload(t, time.Second, false)
	// Worker runs 5s; sampler ticks at 1s..5s then sees Live()==0 on the
	// next tick at 6s, sampling the tail window first.
	if got := st.Windows(); got != 6 {
		t.Fatalf("windows = %d, want 6", got)
	}
	bytes := st.Series("work.bytes")
	if bytes == nil || bytes.Kind != KindRate {
		t.Fatalf("work.bytes missing or wrong kind: %+v", bytes)
	}
	// The sampler's timer was scheduled before the worker ever slept, so at
	// shared instants (1s, 2s, ...) the tick fires first: window 1 sees only
	// the 0.5s bump (100), window 2 the 1.0s+1.5s bumps (200+300), and the
	// 5.0s bump (1000) lands in the tail window after the worker exits.
	want := []int64{100, 500, 900, 1300, 1700, 1000}
	got := bytes.Values(st.Windows())
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window %d = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	if total := bytes.Total(); total != 5500 {
		t.Fatalf("total = %d, want 5500", total)
	}
	q := st.Series("work.queue")
	if q == nil || q.Kind != KindGauge {
		t.Fatalf("work.queue missing or wrong kind: %+v", q)
	}
	// Window-end levels: i%4 after i=1,3,5,7,9 (tick precedes the same-instant
	// bump), then the tail window sees i=10 → 2.
	wantQ := []int64{1, 3, 1, 3, 1, 2}
	gotQ := q.Values(st.Windows())
	for i := range wantQ {
		if gotQ[i] != wantQ[i] {
			t.Fatalf("queue window %d = %d, want %d (%v)", i, gotQ[i], wantQ[i], gotQ)
		}
	}
}

func TestSamplerKeepAliveRunsToHorizon(t *testing.T) {
	st, k := workload(t, time.Second, true)
	if got := st.Windows(); got != 8 {
		t.Fatalf("windows = %d, want 8 (horizon-driven)", got)
	}
	if k.Now() != 8*time.Second {
		t.Fatalf("now = %v, want 8s", k.Now())
	}
}

func TestSamplerStopsKernel(t *testing.T) {
	// Without the Live()==0 self-stop, Run would never return; reaching
	// here at all is the property, but also check time didn't run away.
	_, k := workload(t, time.Second, false)
	if k.Now() > 7*time.Second {
		t.Fatalf("kernel ran to %v; sampler failed to stop", k.Now())
	}
}

func TestMidRunSeriesPadsLeadingZeros(t *testing.T) {
	k := sim.New()
	var m obs.Metrics
	k.Spawn("late", func(env *sim.Proc) {
		env.Sleep(3500 * time.Millisecond)
		m.Counter("late.bytes").Add(42)
		env.Sleep(time.Second)
	})
	s := NewSampler(k, time.Second, &m)
	s.Start()
	k.Run()
	st := s.Store()
	la := st.Series("late.bytes")
	if la == nil {
		t.Fatal("late.bytes missing")
	}
	if la.Start != 3 {
		t.Fatalf("start = %d, want 3", la.Start)
	}
	vals := la.Values(st.Windows())
	if len(vals) != st.Windows() {
		t.Fatalf("padded len = %d, want %d", len(vals), st.Windows())
	}
	for i := 0; i < 3; i++ {
		if vals[i] != 0 {
			t.Fatalf("pad window %d = %d, want 0", i, vals[i])
		}
	}
	if vals[3] != 42 {
		t.Fatalf("window 3 = %d, want 42", vals[3])
	}
}

func TestProbesAndHooks(t *testing.T) {
	k := sim.New()
	var m obs.Metrics
	depth := 0
	k.Spawn("p", func(env *sim.Proc) {
		for i := 0; i < 4; i++ {
			env.Sleep(time.Second)
			depth = i + 1
		}
	})
	s := NewSampler(k, time.Second, &m)
	s.Probe("probe.depth", KindGauge, func() int64 { return int64(depth) })
	var ticks []time.Duration
	s.OnSample(func(at time.Duration) { ticks = append(ticks, at) })
	s.Start()
	k.Run()
	p := s.Store().Series("probe.depth")
	if p == nil {
		t.Fatal("probe series missing")
	}
	// The tick at each shared instant precedes the worker's wakeup, so the
	// probe lags one step and the tail window catches the final depth.
	got := p.Values(s.Store().Windows())
	want := []int64{0, 1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("probe window %d = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	if len(ticks) != s.Store().Windows() {
		t.Fatalf("hooks fired %d times, want %d", len(ticks), s.Store().Windows())
	}
	if ticks[0] != time.Second {
		t.Fatalf("first hook at %v, want 1s", ticks[0])
	}
}

func TestDashboardGolden(t *testing.T) {
	st, _ := workload(t, time.Second, false)
	got := st.FormatDashboard(DashboardOptions{Width: 12})
	want := strings.Join([]string{
		"monitor: 6 windows x 1s, 2 series",
		`scale: ' ' absent, '.' zero, low ":-=+*#%@" high (per-series max)`,
		"",
		"work.bytes |:=+#@*      | peak 1700/win total 5500",
		"work.queue |=@=@=*      | peak 3 last 2",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("dashboard mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestDashboardFilter(t *testing.T) {
	st, _ := workload(t, time.Second, false)
	got := st.FormatDashboard(DashboardOptions{
		Width:  12,
		Filter: func(name string) bool { return strings.HasSuffix(name, ".queue") },
	})
	if strings.Contains(got, "work.bytes") {
		t.Fatalf("filter leaked series:\n%s", got)
	}
	if !strings.Contains(got, "work.queue") {
		t.Fatalf("filter dropped wanted series:\n%s", got)
	}
}

func TestJSONLGoldenAndHash(t *testing.T) {
	st, _ := workload(t, time.Second, false)
	var b strings.Builder
	if err := st.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"name":"work.bytes","kind":"rate","interval_ns":1000000000,"start":0,"samples":[100,500,900,1300,1700,1000]}
{"name":"work.queue","kind":"gauge","interval_ns":1000000000,"start":0,"samples":[1,3,1,3,1,2]}
`
	if b.String() != want {
		t.Fatalf("jsonl mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
	// Hash is over these bytes; a second identical run must agree.
	st2, _ := workload(t, time.Second, false)
	if st.Hash() != st2.Hash() {
		t.Fatalf("hash not reproducible: %x vs %x", st.Hash(), st2.Hash())
	}
}

func TestHTMLReport(t *testing.T) {
	st, _ := workload(t, time.Second, false)
	var b strings.Builder
	if err := st.WriteHTML(&b, "test <run>", DashboardOptions{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<!doctype html>",
		"test &lt;run&gt;", // title escaped
		"work.bytes",
		"work.queue",
		`<rect class="rate"`,
		`<polyline class="gauge"`,
		"6 windows",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("html missing %q:\n%s", want, out)
		}
	}
	// Deterministic bytes.
	var b2 strings.Builder
	st2, _ := workload(t, time.Second, false)
	if err := st2.WriteHTML(&b2, "test <run>", DashboardOptions{}); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("html bytes not reproducible across runs")
	}
}

func TestSparklineMaxPooling(t *testing.T) {
	// A single spike must survive pooling into fewer cells.
	vals := make([]int64, 100)
	vals[57] = 9
	line := sparkline(vals, 0, 10, 9)
	if !strings.Contains(line, "@") {
		t.Fatalf("spike lost in pooling: %q", line)
	}
	if len(line) != 10 {
		t.Fatalf("width = %d, want 10", len(line))
	}
	// Width wider than data clamps to data length.
	if got := sparkline(vals[:5], 0, 10, 9); len(got) != 5 {
		t.Fatalf("clamped width = %d, want 5", len(got))
	}
}

func TestSnapshotOrderStable(t *testing.T) {
	var m obs.Metrics
	m.Counter("b").Add(1)
	m.Counter("a").Add(2)
	m.Gauge("z").Set(3)
	m.Histogram("h").Observe(4)
	rows := m.Snapshot(nil)
	wantNames := []string{"a", "b", "z", "h"}
	if len(rows) != len(wantNames) {
		t.Fatalf("rows = %d, want %d", len(rows), len(wantNames))
	}
	for i, n := range wantNames {
		if rows[i].Name != n {
			t.Fatalf("row %d = %q, want %q", i, rows[i].Name, n)
		}
	}
	if rows[0].Value != 2 || rows[2].Kind != obs.KindGauge || rows[3].Kind != obs.KindHistogram {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	// Reuse path appends to buf[:0] without reallocating when capacity fits.
	rows2 := m.Snapshot(rows[:0])
	if &rows2[0] != &rows[0] {
		t.Fatal("snapshot reallocated despite sufficient capacity")
	}
}
