package timeseries

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestHTMLGolden pins the self-contained HTML report byte for byte (the
// golden uses a .golden suffix so the repo's *.html ignore rule cannot eat
// it). TestHTMLReport checks the structural invariants; this catches any
// unintended drift in markup, styling, or SVG geometry.
func TestHTMLGolden(t *testing.T) {
	st, _ := workload(t, time.Second, false)
	var b strings.Builder
	if err := st.WriteHTML(&b, "golden run", DashboardOptions{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report.html.golden")
	if *update {
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs/timeseries -run Golden -update` to create it)", err)
	}
	if b.String() != string(want) {
		t.Fatalf("HTML report drifted from golden (re-run with -update if intended):\n--- got ---\n%.2000s", b.String())
	}
}
