package timeseries

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nxcluster/internal/obs"
)

// ramp is the sparkline intensity scale: ' ' marks windows before the series
// existed, '.' a zero sample, then eight brightness levels. ASCII-only so the
// dashboard survives any terminal and diffs cleanly in goldens.
const ramp = ":-=+*#%@"

// sparkline renders values into width cells by max-pooling: each cell shows
// the brightest sample in its span, so short bursts stay visible when a long
// run is squeezed into a narrow dashboard. scale is the global or per-series
// max that maps to the top ramp level.
func sparkline(values []int64, start, width int, scale int64) string {
	n := len(values)
	if width <= 0 || n == 0 {
		return ""
	}
	if width > n {
		width = n
	}
	var b strings.Builder
	b.Grow(width)
	for c := 0; c < width; c++ {
		lo, hi := c*n/width, (c+1)*n/width
		if hi == lo {
			hi = lo + 1
		}
		if hi <= start {
			b.WriteByte(' ')
			continue
		}
		var m int64
		for i := lo; i < hi; i++ {
			if values[i] > m {
				m = values[i]
			}
		}
		if m <= 0 {
			b.WriteByte('.')
			continue
		}
		idx := int(int64(len(ramp)-1) * m / scale)
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		b.WriteByte(ramp[idx])
	}
	return b.String()
}

// DashboardOptions controls FormatDashboard.
type DashboardOptions struct {
	// Width is the sparkline width in cells (default 60).
	Width int
	// Filter keeps only series whose name it accepts; nil keeps all.
	Filter func(name string) bool
}

// FormatDashboard renders the store as an ASCII dashboard: one sparkline row
// per series (sorted by name), annotated with the peak and final/total
// values. Deterministic for a deterministic run, so golden-testable.
func (st *Store) FormatDashboard(opt DashboardOptions) string {
	width := opt.Width
	if width <= 0 {
		width = 60
	}
	names := st.Names()
	kept := names[:0]
	nameW := 4
	for _, n := range names {
		if opt.Filter != nil && !opt.Filter(n) {
			continue
		}
		kept = append(kept, n)
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "monitor: %d windows x %v, %d series\n", st.windows, st.Interval, len(kept))
	fmt.Fprintf(&b, "scale: ' ' absent, '.' zero, low %q high (per-series max)\n\n", ramp)
	for _, n := range kept {
		s := st.series[n]
		vals := s.Values(st.windows)
		peak := s.Max()
		scale := peak
		if scale <= 0 {
			scale = 1
		}
		var note string
		if s.Kind == KindRate {
			note = fmt.Sprintf("peak %d/win total %d", peak, s.Total())
		} else {
			note = fmt.Sprintf("peak %d last %d", peak, s.Last())
		}
		fmt.Fprintf(&b, "%-*s |%-*s| %s\n", nameW, n, width, sparkline(vals, s.Start, width, scale), note)
	}
	return b.String()
}

// WriteJSONL writes one JSON object per series, sorted by name:
//
//	{"name":...,"kind":"rate","interval_ns":...,"start":N,"samples":[...]}
//
// Hand-rolled like obs's exporters so the bytes are exactly reproducible.
func (st *Store) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, n := range st.Names() {
		s := st.series[n]
		buf = append(buf[:0], `{"name":`...)
		buf = obs.AppendJSONString(buf, s.Name)
		buf = append(buf, `,"kind":"`...)
		buf = append(buf, s.Kind.String()...)
		buf = append(buf, `","interval_ns":`...)
		buf = strconv.AppendInt(buf, int64(st.Interval), 10)
		buf = append(buf, `,"start":`...)
		buf = strconv.AppendInt(buf, int64(s.Start), 10)
		buf = append(buf, `,"samples":[`...)
		for i, v := range s.samples {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendInt(buf, v, 10)
		}
		buf = append(buf, "]}\n"...)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Hash returns the FNV-64a hash of the JSONL serialization — the invariance
// tests pin this across GOMAXPROCS and worker counts.
func (st *Store) Hash() uint64 {
	var h obs.Hasher
	_ = st.WriteJSONL(&h)
	return h.Sum64()
}
