// Package causal reconstructs per-job span trees from an obs event stream
// and decomposes each job's elapsed virtual time across the tree's legs.
//
// Spans recorded through obs.BeginTrace/BeginChild carry a trace ID and a
// parent span ID, so a traced job's records form a tree rooted at the span
// minted when the job was submitted (an RMF job, an MPI rank, a GRAM
// request). Build turns a flat event stream back into those trees; Decompose
// walks one tree and attributes every instant of the root's duration to the
// deepest span active at that instant, generalizing the Table 2 single-path
// telescoping (internal/bench/decomp.go) to arbitrary jobs: the per-leg
// times sum bit-exactly to the root's elapsed virtual time by construction.
//
// Everything here is a pure function of the event slice — no clocks, no
// maps iterated without sorting — so output is deterministic for a
// deterministic trace.
package causal

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nxcluster/internal/obs"
)

// Span is one node of a reconstructed trace tree.
type Span struct {
	ID     obs.SpanID
	Trace  uint64
	Parent uint64 // parent span ID; 0 for a root
	Cat    string
	Name   string
	Track  string
	Start  time.Duration
	End    time.Duration
	// Complete is false when the span's End never arrived (the process was
	// killed mid-span by a fault plan or the run's horizon). Incomplete
	// spans are kept in the tree but excluded from time attribution.
	Complete bool
	Fields   []obs.Field
	Children []*Span
	depth    int
}

// Label renders the span's leg identity ("cat/name").
func (s *Span) Label() string { return s.Cat + "/" + s.Name }

// Duration is End-Start for complete spans, 0 otherwise.
func (s *Span) Duration() time.Duration {
	if !s.Complete {
		return 0
	}
	return s.End - s.Start
}

// Mark is an instant event tied into a trace (a requeue or speculation
// marker inside a job's tree).
type Mark struct {
	At     time.Duration
	Cat    string
	Name   string
	Track  string
	Parent uint64
}

// Trace is one reconstructed tree (or forest fragment, if a child's parent
// span never made it into the stream).
type Trace struct {
	ID    uint64
	Roots []*Span
	Marks []Mark
	// Spans counts every span in the trace; Incomplete counts the ones
	// whose End never arrived.
	Spans      int
	Incomplete int
}

// Forest is every trace reconstructed from an event stream, ordered by
// trace ID (mint order).
type Forest struct {
	Traces []*Trace
}

// Trace returns the trace with the given ID, or nil.
func (f *Forest) Trace(id uint64) *Trace {
	for _, t := range f.Traces {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Build reconstructs every trace tree in events. Untraced events (Trace ==
// 0) are ignored; an End without a matching Begin is ignored; a Begin whose
// parent span is missing from the stream becomes an extra root of its
// trace.
func Build(events []obs.Event) *Forest {
	spans := make(map[uint64]*Span)
	traces := make(map[uint64]*Trace)
	var order []uint64
	traceOf := func(id uint64) *Trace {
		t, ok := traces[id]
		if !ok {
			t = &Trace{ID: id}
			traces[id] = t
			order = append(order, id)
		}
		return t
	}
	for i := range events {
		e := &events[i]
		switch e.Ph {
		case obs.PhaseBegin:
			if e.Trace == 0 {
				continue
			}
			s := &Span{
				ID: obs.SpanID(e.ID), Trace: e.Trace, Parent: e.Parent,
				Cat: e.Cat, Name: e.Name, Track: e.Track,
				Start: e.At, Fields: e.Fields,
			}
			spans[e.ID] = s
			t := traceOf(e.Trace)
			t.Spans++
			if p, ok := spans[e.Parent]; ok && e.Parent != 0 && p.Trace == e.Trace {
				s.depth = p.depth + 1
				p.Children = append(p.Children, s)
			} else {
				t.Roots = append(t.Roots, s)
			}
		case obs.PhaseEnd:
			if s, ok := spans[e.ID]; ok && !s.Complete {
				s.End = e.At
				s.Complete = true
			}
		case obs.PhaseInstant:
			if e.Trace == 0 {
				continue
			}
			t := traceOf(e.Trace)
			t.Marks = append(t.Marks, Mark{At: e.At, Cat: e.Cat, Name: e.Name, Track: e.Track, Parent: e.Parent})
		}
	}
	f := &Forest{}
	for _, id := range order {
		t := traces[id]
		for _, s := range spans {
			if s.Trace == id && !s.Complete {
				t.Incomplete++
			}
		}
		f.Traces = append(f.Traces, t)
	}
	return f
}

// Row is one leg of a decomposition: the span and the self time attributed
// to it (the portion of the root's duration when it was the deepest active
// span).
type Row struct {
	Span *Span
	Self time.Duration
}

// Decomposition attributes every instant of a root span's duration to the
// deepest span active at that instant. Rows are ordered by first activation;
// their Self times sum bit-exactly to Total = root.End - root.Start.
type Decomposition struct {
	Root  *Span
	Total time.Duration
	Rows  []Row
}

// Decompose computes the critical-path decomposition of one complete root
// span. Incomplete descendants are skipped (their time falls to the
// enclosing span), and descendants are clipped to the root's window. It
// returns an error if root is incomplete.
func Decompose(root *Span) (*Decomposition, error) {
	if !root.Complete {
		return nil, fmt.Errorf("causal: root span %d (%s) is incomplete", root.ID, root.Label())
	}
	// Gather every complete descendant, clipped to the root's window.
	var all []*Span
	var walk func(s *Span)
	walk = func(s *Span) {
		if s.Complete {
			all = append(all, s)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	// Boundary sweep: each segment between consecutive boundaries belongs
	// entirely to one deepest active span.
	bounds := make([]time.Duration, 0, 2*len(all))
	clip := func(t time.Duration) time.Duration {
		if t < root.Start {
			return root.Start
		}
		if t > root.End {
			return root.End
		}
		return t
	}
	for _, s := range all {
		bounds = append(bounds, clip(s.Start), clip(s.End))
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	// Dedup.
	uniq := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	bounds = uniq
	d := &Decomposition{Root: root, Total: root.End - root.Start}
	self := make(map[*Span]time.Duration)
	var first []*Span // activation order
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi <= lo {
			continue
		}
		var best *Span
		for _, s := range all {
			if clip(s.Start) <= lo && clip(s.End) >= hi {
				if best == nil || deeper(s, best) {
					best = s
				}
			}
		}
		if best == nil {
			best = root // cannot happen (root covers its window) but stay total
		}
		if _, seen := self[best]; !seen {
			first = append(first, best)
		}
		self[best] += hi - lo
	}
	for _, s := range first {
		d.Rows = append(d.Rows, Row{Span: s, Self: self[s]})
	}
	// The sweep partitions [root.Start, root.End] exactly, so the rows
	// telescope to Total by construction; verify anyway so a future edit
	// cannot silently break the contract.
	var sum time.Duration
	for _, r := range d.Rows {
		sum += r.Self
	}
	if sum != d.Total {
		return nil, fmt.Errorf("causal: decomposition does not telescope: legs sum to %v, root spans %v", sum, d.Total)
	}
	return d, nil
}

// deeper reports whether a should win attribution over b: greater depth,
// then later start, then higher span ID (all deterministic).
func deeper(a, b *Span) bool {
	if a.depth != b.depth {
		return a.depth > b.depth
	}
	if a.Start != b.Start {
		return a.Start > b.Start
	}
	return a.ID > b.ID
}

// LegTotal is the whole-run aggregate of one leg (cat/name) across every
// decomposed job.
type LegTotal struct {
	Leg   string
	Total time.Duration
	Count int // spans that accrued self time
}

// Summary is the whole-run critical-path view: every complete root
// decomposed, slowest first, plus per-leg aggregates.
type Summary struct {
	Jobs []*Decomposition // sorted by Total desc, then trace ID
	Legs []LegTotal       // sorted by Total desc, then leg name
	// Skipped counts roots that could not be decomposed (incomplete).
	Skipped int
}

// Summarize decomposes every complete root in the forest.
func Summarize(f *Forest) *Summary {
	sum := &Summary{}
	legs := make(map[string]*LegTotal)
	for _, t := range f.Traces {
		for _, root := range t.Roots {
			d, err := Decompose(root)
			if err != nil {
				sum.Skipped++
				continue
			}
			sum.Jobs = append(sum.Jobs, d)
			for _, r := range d.Rows {
				l, ok := legs[r.Span.Label()]
				if !ok {
					l = &LegTotal{Leg: r.Span.Label()}
					legs[r.Span.Label()] = l
				}
				l.Total += r.Self
				l.Count++
			}
		}
	}
	sort.SliceStable(sum.Jobs, func(i, j int) bool {
		if sum.Jobs[i].Total != sum.Jobs[j].Total {
			return sum.Jobs[i].Total > sum.Jobs[j].Total
		}
		return sum.Jobs[i].Root.Trace < sum.Jobs[j].Root.Trace
	})
	names := make([]string, 0, len(legs))
	for n := range legs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sum.Legs = append(sum.Legs, *legs[n])
	}
	sort.SliceStable(sum.Legs, func(i, j int) bool {
		if sum.Legs[i].Total != sum.Legs[j].Total {
			return sum.Legs[i].Total > sum.Legs[j].Total
		}
		return sum.Legs[i].Leg < sum.Legs[j].Leg
	})
	return sum
}

// SpanDurations collects the durations of every complete span in the forest
// whose label ("cat/name") matches leg, in trace order. The SLO latency
// objectives percentile over this.
func SpanDurations(f *Forest, leg string) []time.Duration {
	var out []time.Duration
	var walk func(s *Span)
	walk = func(s *Span) {
		if s.Complete && s.Label() == leg {
			out = append(out, s.End-s.Start)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, t := range f.Traces {
		for _, r := range t.Roots {
			walk(r)
		}
	}
	return out
}

// Percentile returns the p-th percentile (nearest-rank, p in (0,100]) of
// durations. It returns 0 for an empty slice.
func Percentile(durations []time.Duration, p float64) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// fmtMS renders a duration as fixed-point milliseconds, the format the
// decomposition tables share with internal/bench.
func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.6fms", float64(d)/1e6)
}

// FormatDecomposition renders one job's per-leg table: indented span tree
// rows with self time, telescoping to the root's total.
func FormatDecomposition(d *Decomposition) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d  root %s [%s]  total %s\n",
		d.Root.Trace, d.Root.Label(), d.Root.Track, fmtMS(d.Total))
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "  %-13s %*s%s [%s]\n", fmtMS(r.Self),
			2*r.Span.depth, "", r.Span.Label(), r.Span.Track)
	}
	fmt.Fprintf(&b, "  %-13s = total\n", fmtMS(d.Total))
	return b.String()
}

// FormatSummary renders the whole-run view: the top-K slowest jobs and the
// per-leg aggregate. k <= 0 means every job.
func FormatSummary(s *Summary, k int) string {
	var b strings.Builder
	n := len(s.Jobs)
	if k > 0 && k < n {
		n = k
	}
	fmt.Fprintf(&b, "%d traced jobs (%d skipped incomplete); slowest %d:\n", len(s.Jobs), s.Skipped, n)
	for _, d := range s.Jobs[:n] {
		crit := ""
		if len(d.Rows) > 0 {
			top := d.Rows[0]
			for _, r := range d.Rows[1:] {
				if r.Self > top.Self {
					top = r
				}
			}
			crit = fmt.Sprintf("  critical %s %s", top.Span.Label(), fmtMS(top.Self))
		}
		fmt.Fprintf(&b, "  trace %-4d %-12s [%s] total %s%s\n",
			d.Root.Trace, d.Root.Label(), d.Root.Track, fmtMS(d.Total), crit)
	}
	fmt.Fprintf(&b, "per-leg critical-path time:\n")
	for _, l := range s.Legs {
		fmt.Fprintf(&b, "  %-24s %s  (%d spans)\n", l.Leg, fmtMS(l.Total), l.Count)
	}
	return b.String()
}
