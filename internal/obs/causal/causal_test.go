package causal

import (
	"strings"
	"testing"
	"time"

	"nxcluster/internal/obs"
)

const ms = time.Millisecond

// buildSample records one traced job with nested legs plus an instant mark:
//
//	job  [0,100ms]
//	├── allocate [10,30ms]
//	│   └── dial [15,25ms]
//	└── submit   [40,80ms]
func buildSample(t *testing.T) *Forest {
	t.Helper()
	o := obs.New()
	job := o.BeginTrace(0, "rmf", "job", "client")
	alloc := o.BeginChild(10*ms, job, "rmf", "allocate", "client")
	dial := o.BeginChild(15*ms, alloc, "net", "dial", "client")
	o.EndSpan(25*ms, dial, "net", "dial", "client")
	o.EndSpan(30*ms, alloc, "rmf", "allocate", "client")
	sub := o.BeginChild(40*ms, job, "rmf", "submit-proc", "client")
	o.EmitCtx(50*ms, sub, "rmf", "requeue", "client")
	o.EndSpan(80*ms, sub, "rmf", "submit-proc", "client")
	o.EndSpan(100*ms, job, "rmf", "job", "client")
	return Build(o.Events())
}

func TestBuildReconstructsTree(t *testing.T) {
	f := buildSample(t)
	if len(f.Traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(f.Traces))
	}
	tr := f.Traces[0]
	if tr.Spans != 4 || tr.Incomplete != 0 {
		t.Errorf("spans=%d incomplete=%d, want 4/0", tr.Spans, tr.Incomplete)
	}
	if len(tr.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tr.Roots))
	}
	root := tr.Roots[0]
	if root.Label() != "rmf/job" || len(root.Children) != 2 {
		t.Fatalf("root %s with %d children, want rmf/job with 2", root.Label(), len(root.Children))
	}
	if root.Children[0].Label() != "rmf/allocate" || len(root.Children[0].Children) != 1 {
		t.Errorf("first child = %s (%d children), want rmf/allocate with 1",
			root.Children[0].Label(), len(root.Children[0].Children))
	}
	if len(tr.Marks) != 1 || tr.Marks[0].Name != "requeue" {
		t.Errorf("marks = %+v, want one requeue", tr.Marks)
	}
}

func TestDecomposeTelescopes(t *testing.T) {
	f := buildSample(t)
	root := f.Traces[0].Roots[0]
	d, err := Decompose(root)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total != 100*ms {
		t.Fatalf("total = %v, want 100ms", d.Total)
	}
	var sum time.Duration
	want := map[string]time.Duration{
		"rmf/job":         40 * ms, // [0,10)+[30,40)+[80,100]
		"rmf/allocate":    10 * ms, // [10,15)+[25,30)
		"net/dial":        10 * ms, // [15,25)
		"rmf/submit-proc": 40 * ms, // [40,80)
	}
	for _, r := range d.Rows {
		sum += r.Self
		if w, ok := want[r.Span.Label()]; !ok || r.Self != w {
			t.Errorf("leg %s self = %v, want %v", r.Span.Label(), r.Self, w)
		}
	}
	if sum != d.Total {
		t.Errorf("legs sum to %v, want %v", sum, d.Total)
	}
	// Rows appear in first-activation order: the root activates first.
	if d.Rows[0].Span != root {
		t.Errorf("first row = %s, want the root", d.Rows[0].Span.Label())
	}
}

func TestDecomposeSkipsIncompleteDescendants(t *testing.T) {
	o := obs.New()
	job := o.BeginTrace(0, "rmf", "job", "client")
	o.BeginChild(10*ms, job, "rmf", "exec", "host") // never ended (killed)
	o.EndSpan(100*ms, job, "rmf", "job", "client")
	f := Build(o.Events())
	tr := f.Traces[0]
	if tr.Incomplete != 1 {
		t.Fatalf("incomplete = %d, want 1", tr.Incomplete)
	}
	d, err := Decompose(tr.Roots[0])
	if err != nil {
		t.Fatal(err)
	}
	// The incomplete child's time falls to the root.
	if len(d.Rows) != 1 || d.Rows[0].Self != 100*ms {
		t.Errorf("rows = %d (self %v), want the root owning all 100ms", len(d.Rows), d.Rows[0].Self)
	}
}

func TestDecomposeIncompleteRootErrors(t *testing.T) {
	o := obs.New()
	o.BeginTrace(0, "mpi", "rank", "host")
	f := Build(o.Events())
	if _, err := Decompose(f.Traces[0].Roots[0]); err == nil {
		t.Error("decomposing an incomplete root should error")
	}
}

func TestDecomposeClipsToRootWindow(t *testing.T) {
	// A child that outlives the root (the parent released before the child
	// closed) must only be charged inside the root's window.
	o := obs.New()
	job := o.BeginTrace(0, "rmf", "job", "client")
	child := o.BeginChild(50*ms, job, "rmf", "exec", "host")
	o.EndSpan(100*ms, job, "rmf", "job", "client")
	o.EndSpan(150*ms, child, "rmf", "exec", "host")
	f := Build(o.Events())
	d, err := Decompose(f.Traces[0].Roots[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range d.Rows {
		if r.Span.Label() == "rmf/exec" && r.Self != 50*ms {
			t.Errorf("clipped child self = %v, want 50ms", r.Self)
		}
	}
}

func TestOrphanChildBecomesRoot(t *testing.T) {
	// A Begin referencing a parent span that never appeared (e.g. the
	// parent's Begin fell outside a truncated capture) roots its own tree.
	events := []obs.Event{
		{At: 0, Ph: obs.PhaseBegin, Cat: "rmf", Name: "exec", Track: "h", ID: 7, Trace: 3, Parent: 99},
		{At: 10 * ms, Ph: obs.PhaseEnd, Cat: "rmf", Name: "exec", Track: "h", ID: 7},
	}
	f := Build(events)
	if len(f.Traces) != 1 || len(f.Traces[0].Roots) != 1 {
		t.Fatalf("want one trace with one root, got %+v", f.Traces)
	}
	if f.Trace(3) == nil || f.Trace(4) != nil {
		t.Error("Trace lookup by ID broken")
	}
}

func TestSummarizeOrdersJobsAndLegs(t *testing.T) {
	o := obs.New()
	fast := o.BeginTrace(0, "mpi", "rank", "a")
	o.EndSpan(10*ms, fast, "mpi", "rank", "a")
	slow := o.BeginTrace(0, "mpi", "rank", "b")
	o.EndSpan(90*ms, slow, "mpi", "rank", "b")
	f := Build(o.Events())
	s := Summarize(f)
	if len(s.Jobs) != 2 || s.Skipped != 0 {
		t.Fatalf("jobs=%d skipped=%d, want 2/0", len(s.Jobs), s.Skipped)
	}
	if s.Jobs[0].Total != 90*ms {
		t.Errorf("slowest first: got %v", s.Jobs[0].Total)
	}
	if len(s.Legs) != 1 || s.Legs[0].Leg != "mpi/rank" || s.Legs[0].Total != 100*ms || s.Legs[0].Count != 2 {
		t.Errorf("legs = %+v", s.Legs)
	}
	out := FormatSummary(s, 1)
	if !strings.Contains(out, "2 traced jobs") || !strings.Contains(out, "slowest 1") {
		t.Errorf("FormatSummary output unexpected:\n%s", out)
	}
}

func TestSpanDurationsAndPercentile(t *testing.T) {
	f := buildSample(t)
	ds := SpanDurations(f, "rmf/allocate")
	if len(ds) != 1 || ds[0] != 20*ms {
		t.Fatalf("durations = %v, want [20ms]", ds)
	}
	set := []time.Duration{10 * ms, 20 * ms, 30 * ms, 40 * ms}
	cases := []struct {
		p    float64
		want time.Duration
	}{{25, 10 * ms}, {50, 20 * ms}, {75, 30 * ms}, {99, 40 * ms}, {100, 40 * ms}}
	for _, c := range cases {
		if got := Percentile(set, c.p); got != c.want {
			t.Errorf("p%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestFormatDecompositionTelescopesInPrint(t *testing.T) {
	f := buildSample(t)
	d, err := Decompose(f.Traces[0].Roots[0])
	if err != nil {
		t.Fatal(err)
	}
	out := FormatDecomposition(d)
	if !strings.Contains(out, "total 100.000000ms") || !strings.Contains(out, "= total") {
		t.Errorf("unexpected format:\n%s", out)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := FormatSummary(Summarize(buildSample(t)), 0)
	b := FormatSummary(Summarize(buildSample(t)), 0)
	if a != b {
		t.Error("identical streams produced different summaries")
	}
}
