package bench

import (
	"testing"
)

// TestTable2Deterministic: the discrete-event substrate makes every
// experiment exactly reproducible — same inputs, bit-identical outputs.
func TestTable2Deterministic(t *testing.T) {
	first, err := RunTable2(Table2Config{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunTable2(Table2Config{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].Latency != second[i].Latency {
			t.Fatalf("row %d latency differs across runs: %v vs %v",
				i, first[i].Latency, second[i].Latency)
		}
		for _, size := range Table2Sizes {
			if first[i].Bandwidth[size] != second[i].Bandwidth[size] {
				t.Fatalf("row %d bw(%d) differs: %v vs %v",
					i, size, first[i].Bandwidth[size], second[i].Bandwidth[size])
			}
		}
	}
}

// TestKnapsackDeterministic: the whole 20-rank wide-area run, including
// every steal decision, is reproducible.
func TestKnapsackDeterministic(t *testing.T) {
	run := func() *KnapsackReport {
		r, err := RunKnapsack(KnapsackConfig{Capacity: 3})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.SeqTime != b.SeqTime {
		t.Fatalf("sequential time differs: %v vs %v", a.SeqTime, b.SeqTime)
	}
	for i := range a.Rows {
		if a.Rows[i].Exec != b.Rows[i].Exec {
			t.Fatalf("%s exec differs: %v vs %v", a.Rows[i].System, a.Rows[i].Exec, b.Rows[i].Exec)
		}
	}
	if a.Wide.MasterHandled != b.Wide.MasterHandled {
		t.Fatalf("steal counts differ: %d vs %d", a.Wide.MasterHandled, b.Wide.MasterHandled)
	}
	for i := range a.Wide.Stats {
		if a.Wide.Stats[i].Traversed != b.Wide.Stats[i].Traversed {
			t.Fatalf("rank %d traversed differs", i)
		}
	}
}
