package bench

import (
	"strings"
	"testing"
)

// TestBandwidthSweepShape checks the paper's crossover narrative: on the
// LAN path the proxy penalty shrinks as messages grow but stays bounded by
// the relay pipeline; on the WAN path the penalty converges to ~1x because
// the IMnet is the bottleneck either way.
func TestBandwidthSweepShape(t *testing.T) {
	sweeps, err := RunBandwidthSweep(Table2Config{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 2 {
		t.Fatalf("%d sweeps", len(sweeps))
	}
	lan, wan := sweeps[0], sweeps[1]
	if !strings.Contains(lan.Path, "COMPaS") || !strings.Contains(wan.Path, "ETL") {
		t.Fatalf("unexpected sweep order: %q, %q", lan.Path, wan.Path)
	}

	overhead := func(pt SweepPoint) float64 { return pt.Direct / pt.Indirect }

	// LAN: the small-message overhead is at least several times the
	// large-message overhead (monotone amortization of per-message cost).
	first, last := lan.Points[0], lan.Points[len(lan.Points)-1]
	if overhead(first) < 2*overhead(last) {
		t.Errorf("LAN overhead did not shrink with size: %.1fx -> %.1fx",
			overhead(first), overhead(last))
	}
	// WAN: at 1 MB the overhead is negligible (the paper's headline).
	wlast := wan.Points[len(wan.Points)-1]
	if ratio := overhead(wlast); ratio > 1.3 {
		t.Errorf("WAN 1MB overhead = %.2fx, want ~1x", ratio)
	}
	// Bandwidth is non-decreasing in message size for every series.
	for _, sw := range sweeps {
		for i := 1; i < len(sw.Points); i++ {
			if sw.Points[i].Direct+1 < sw.Points[i-1].Direct ||
				sw.Points[i].Indirect+1 < sw.Points[i-1].Indirect {
				t.Errorf("%s: bandwidth decreased between %d and %d bytes",
					sw.Path, sw.Points[i-1].Size, sw.Points[i].Size)
			}
		}
	}

	out := FormatSweep(sweeps)
	for _, want := range []string{"Bandwidth vs message size", "overhead", "1048576"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatSweep missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}
