package bench

import (
	"fmt"
	"strings"
	"time"

	"nxcluster/internal/auth"
	"nxcluster/internal/cluster"
	"nxcluster/internal/gram"
	"nxcluster/internal/proxy"
	"nxcluster/internal/rmf"
	"nxcluster/internal/transport"
)

// Figure1 renders the wide-area cluster system overview (paper Figure 1):
// the sites, clusters and networks, plus measured path characteristics of
// the simulated testbed.
func Figure1() (string, error) {
	tb := cluster.NewTestbed(cluster.Options{})
	defer tb.K.Shutdown()
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 1. Wide-area cluster system")
	fmt.Fprintln(&b, tb.Topology())
	fmt.Fprintln(&b, "measured paths:")
	for _, pair := range [][2]string{
		{cluster.RWCPSun, cluster.CompasNode(0)},
		{cluster.RWCPSun, cluster.ETLSun},
		{cluster.RWCPSun, cluster.ETLO2K},
	} {
		lat, err := tb.Net.PathLatency(pair[0], pair[1])
		if err != nil {
			return "", err
		}
		bw, err := tb.Net.PathBandwidth(pair[0], pair[1])
		if err != nil {
			return "", err
		}
		hops, err := tb.Net.Hops(pair[0], pair[1])
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-10s <-> %-10s  %2d hops, %6.2f ms, %8.1f KB/s bottleneck\n",
			pair[0], pair[1], hops, float64(lat)/float64(time.Millisecond), float64(bw)/1024)
	}
	return b.String(), nil
}

// Figure5 renders the experimental environment (paper Figure 5); the same
// topology as Figure 1 with the proxy daemons and firewall annotated.
func Figure5() (string, error) {
	tb := cluster.NewTestbed(cluster.Options{})
	defer tb.K.Shutdown()
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 5. Experimental environment")
	fmt.Fprintln(&b, tb.Topology())
	fmt.Fprintf(&b, "outer server control address: %s\n", tb.ProxyCfg.OuterServer)
	fmt.Fprintf(&b, "inner server nxport address:  %s\n", tb.ProxyCfg.InnerServer)
	return b.String(), nil
}

// Figure2 runs one traced job submission through the RMF-type GRAM on the
// simulated testbed and renders the six-step flow of the paper's Figure 2.
func Figure2() (string, error) {
	tb := cluster.NewTestbed(cluster.Options{})
	defer tb.K.Shutdown()

	var lines []string
	tracef := func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}

	reg := rmf.NewRegistry()
	reg.Register("app", func(e transport.Env, ctx *rmf.JobContext) error {
		fmt.Fprintf(&ctx.Stdout, "ran on %s", ctx.Resource)
		return nil
	})
	// The firewall must admit the Q client's connections, as the paper
	// requires.
	tb.Firewall.AllowIncomingPort(rmf.AllocatorPort, "RMF: Q client -> allocator")
	tb.Firewall.AllowIncomingPort(rmf.QServerPort, "RMF: Q client -> Q servers")

	alloc := rmf.NewAllocator()
	alloc.SetTrace(tracef)
	tb.Host(cluster.RWCPInner).SpawnDaemonOn("rmf-alloc", func(e transport.Env) {
		_ = alloc.Serve(e, rmf.AllocatorPort, nil)
	})
	for i := 0; i < 2; i++ {
		host := cluster.CompasNode(i)
		q := rmf.NewQServer(host, "compas", 4, reg)
		q.SetTrace(tracef)
		tb.Host(host).SpawnDaemonOn("qserver-"+host, func(e transport.Env) {
			e.Sleep(time.Millisecond)
			_ = q.Serve(e, rmf.QServerPort, transport.JoinAddr(cluster.RWCPInner, rmf.AllocatorPort), nil)
		})
	}

	cred, err := auth.NewCredential("/O=Grid/OU=RWCP/CN=operator")
	if err != nil {
		return "", err
	}
	kr := auth.NewKeyring()
	kr.Grant(cred, "operator")
	gk := gram.NewGatekeeper(gram.Config{
		Keyring:       kr,
		Registry:      reg,
		AllocatorAddr: transport.JoinAddr(cluster.RWCPInner, rmf.AllocatorPort),
	})
	gk.SetTrace(tracef)
	tb.Host(cluster.RWCPOuter).SpawnDaemonOn("gatekeeper", func(e transport.Env) {
		_ = gk.Serve(e, gram.DefaultPort, nil)
	})

	var jobErr error
	tb.Host(cluster.ETLSun).SpawnOn("globusrun", func(e transport.Env) {
		e.Sleep(5 * time.Millisecond)
		contact, err := gram.Submit(e, transport.JoinAddr(cluster.RWCPOuter, gram.DefaultPort), cred,
			`&(executable=app)(count=2)(jobmanager=rmf)(cluster=compas)`)
		if err != nil {
			jobErr = err
			return
		}
		jobErr = gram.Wait(e, transport.JoinAddr(cluster.RWCPOuter, gram.DefaultPort), cred, contact,
			10*time.Millisecond, time.Minute)
	})
	if err := tb.K.Run(); err != nil {
		return "", err
	}
	if jobErr != nil {
		return "", jobErr
	}

	var b strings.Builder
	fmt.Fprintln(&b, "Figure 2. The architecture of RMF — traced job submission")
	fmt.Fprintln(&b, "(gatekeeper on rwcp-outer, allocator on rwcp-inner, Q servers on COMPaS nodes)")
	for _, l := range lines {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	return b.String(), nil
}

// Figure3 traces an active open through the proxy (paper Figure 3): a
// firewalled process reaches a remote server via NXProxyConnect.
func Figure3() (string, error) {
	return traceProxy(false)
}

// Figure4 traces a passive open through the proxy (paper Figure 4): a
// firewalled process binds via NXProxyBind and a remote peer connects to
// the advertised outer address.
func Figure4() (string, error) {
	return traceProxy(true)
}

func traceProxy(passive bool) (string, error) {
	tb := cluster.NewTestbed(cluster.Options{})
	defer tb.K.Shutdown()
	var lines []string
	tracef := func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	tb.Outer.SetTrace(tracef)
	tb.Inner.SetTrace(tracef)

	addrCh := make(chan string, 1)
	var appErr error
	if passive {
		tb.Host(cluster.RWCPSun).SpawnDaemonOn("pa", func(e transport.Env) {
			e.Sleep(time.Millisecond)
			l, err := proxy.NXProxyBind(e, tb.ProxyCfg)
			if err != nil {
				appErr = err
				return
			}
			lines = append(lines, fmt.Sprintf("pa: NXProxyBind -> advertised %s (bind id %s)", l.Addr(), l.BindID()))
			addrCh <- l.Addr()
			c, err := proxy.NXProxyAccept(e, l)
			if err != nil {
				appErr = err
				return
			}
			lines = append(lines, "pa: NXProxyAccept completed; link established")
			buf := make([]byte, 2)
			if _, err := c.Read(e, buf); err == nil {
				_, _ = c.Write(e, buf)
			}
		})
		tb.Host(cluster.ETLSun).SpawnOn("pb", func(e transport.Env) {
			for len(addrCh) == 0 {
				e.Sleep(time.Millisecond)
			}
			addr := <-addrCh
			lines = append(lines, fmt.Sprintf("pb: connect() to advertised address %s", addr))
			c, err := e.Dial(addr)
			if err != nil {
				appErr = err
				return
			}
			_, _ = c.Write(e, []byte("42"))
			buf := make([]byte, 2)
			if _, err := c.Read(e, buf); err != nil {
				appErr = err
			}
		})
	} else {
		tb.Host(cluster.ETLSun).SpawnDaemonOn("pb", func(e transport.Env) {
			l, err := e.Listen(6000)
			if err != nil {
				appErr = err
				return
			}
			c, err := l.Accept(e)
			if err != nil {
				return
			}
			lines = append(lines, "pb: accept() completed; link established")
			buf := make([]byte, 2)
			if _, err := c.Read(e, buf); err == nil {
				_, _ = c.Write(e, buf)
			}
		})
		tb.Host(cluster.RWCPSun).SpawnOn("pa", func(e transport.Env) {
			e.Sleep(time.Millisecond)
			lines = append(lines, "pa: NXProxyConnect(etl-sun:6000) instead of connect()")
			c, err := proxy.NXProxyConnect(e, tb.ProxyCfg, transport.JoinAddr(cluster.ETLSun, 6000))
			if err != nil {
				appErr = err
				return
			}
			_, _ = c.Write(e, []byte("42"))
			buf := make([]byte, 2)
			if _, err := c.Read(e, buf); err != nil {
				appErr = err
			}
			lines = append(lines, "pa: round trip through relay complete")
		})
	}
	if err := tb.K.Run(); err != nil {
		return "", err
	}
	if appErr != nil {
		return "", appErr
	}
	var b strings.Builder
	if passive {
		fmt.Fprintln(&b, "Figure 4. Communication mechanism via the Nexus Proxy (passive connection)")
	} else {
		fmt.Fprintln(&b, "Figure 3. Communication mechanism via the Nexus Proxy (active connection)")
	}
	for _, l := range lines {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	return b.String(), nil
}
