package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mpi"
)

// goldenOutputs runs a small Table 2 + Tables 4-6 sweep and hashes the
// formatted output. Every virtual-time number appears in the formatted
// tables, so a stable hash across host configurations means the simulation
// results are bit-identical.
func goldenOutputs(t *testing.T, workers int) uint64 {
	t.Helper()
	rows, err := RunTable2(Table2Config{Rounds: 2, Workers: workers})
	if err != nil {
		t.Fatalf("table2: %v", err)
	}
	rep, err := RunKnapsack(KnapsackConfig{Capacity: 3, Workers: workers})
	if err != nil {
		t.Fatalf("knapsack: %v", err)
	}
	h := fnv.New64a()
	fmt.Fprint(h, FormatTable2(rows))
	fmt.Fprint(h, FormatTable4(rep))
	fmt.Fprint(h, FormatTable5(rep))
	fmt.Fprint(h, FormatTable6(rep))
	return h.Sum64()
}

// TestGoldenOutputsHostConfigInvariant asserts the contract the parallel
// sweep and the kernel fast paths must preserve: the formatted Table 2 and
// Table 4/5/6 outputs are identical whether the host runs with GOMAXPROCS=1
// or 8 and whether the sweep runs sequentially (Workers: 1) or fanned out
// across RunParallel workers (Workers: 8). Only wall-clock may differ.
func TestGoldenOutputsHostConfigInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run golden sweep")
	}
	combos := []struct {
		gomaxprocs int
		workers    int
	}{
		{1, 1}, // fully sequential
		{1, 8}, // RunParallel fan-out, single host thread
		{8, 1}, // sequential sweep, parallel runtime
		{8, 8}, // RunParallel fan-out across host threads
	}
	hashes := make([]uint64, len(combos))
	for i, c := range combos {
		prev := runtime.GOMAXPROCS(c.gomaxprocs)
		hashes[i] = goldenOutputs(t, c.workers)
		runtime.GOMAXPROCS(prev)
	}
	for i := 1; i < len(hashes); i++ {
		if hashes[i] != hashes[0] {
			t.Errorf("output hash diverged: GOMAXPROCS=%d Workers=%d -> %#x, want %#x (GOMAXPROCS=%d Workers=%d)",
				combos[i].gomaxprocs, combos[i].workers, hashes[i],
				combos[0].gomaxprocs, combos[0].workers, hashes[0])
		}
	}
}

// traceHash runs a wide-area knapsack solve with the kernel's Trace hook
// feeding an FNV hash, capturing the exact event interleaving (every
// process start/exit and wakeup, stamped with virtual time).
func traceHash(t *testing.T) uint64 {
	t.Helper()
	h := fnv.New64a()
	tb := cluster.NewTestbed(cluster.Options{})
	defer tb.K.Shutdown()
	tb.K.Trace = func(at time.Duration, format string, args ...interface{}) {
		fmt.Fprintf(h, "%d ", at)
		fmt.Fprintf(h, format, args...)
		h.Write([]byte{'\n'})
	}
	in := knapsack.Normalized(50, 2)
	w := mpi.NewWorld(tb.Placements(cluster.SystemWide, true))
	w.Launch(func(c *mpi.Comm) error {
		_, err := knapsack.Run(c, in, knapsack.DefaultParams())
		return err
	})
	if err := tb.K.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("world: %v", err)
	}
	return h.Sum64()
}

// TestGoldenEventTraceHostConfigInvariant pins the determinism contract at
// its finest grain: the kernel's event trace — not just the aggregated
// tables — is bit-identical across host thread counts.
func TestGoldenEventTraceHostConfigInvariant(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	h1 := traceHash(t)
	runtime.GOMAXPROCS(8)
	h8 := traceHash(t)
	runtime.GOMAXPROCS(prev)
	if h1 != h8 {
		t.Errorf("event trace diverged: GOMAXPROCS=1 -> %#x, GOMAXPROCS=8 -> %#x", h1, h8)
	}
}
