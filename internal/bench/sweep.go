package bench

import (
	"fmt"
	"strings"
)

// SweepPoint is one message size's direct and indirect bandwidth on a path.
type SweepPoint struct {
	// Size is the message size in bytes.
	Size int
	// Direct and Indirect are bandwidths in bytes/second.
	Direct, Indirect float64
}

// BandwidthSweep is the full curve behind the paper's narrative ("as
// message size increases, the communication overhead caused by the Nexus
// Proxy can be negligible"): bandwidth versus message size for a path,
// direct and through the relays, including the crossover where the relay
// pipeline stops being the bottleneck.
type BandwidthSweep struct {
	// Path names the endpoints.
	Path string
	// Points are ordered by increasing message size.
	Points []SweepPoint
}

// SweepSizes are the default message sizes measured.
var SweepSizes = []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// RunBandwidthSweep measures bandwidth across message sizes for both Table 2
// paths. Each (path, mode) pair runs on a fresh testbed, like Table 2.
func RunBandwidthSweep(cfg Table2Config) ([]BandwidthSweep, error) {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 2
	}
	cfg.Sizes = SweepSizes

	rows, err := RunTable2(cfg)
	if err != nil {
		return nil, err
	}
	byPath := map[string]*BandwidthSweep{}
	var order []string
	for _, r := range rows {
		sw := byPath[r.Path]
		if sw == nil {
			sw = &BandwidthSweep{Path: r.Path}
			for _, size := range SweepSizes {
				sw.Points = append(sw.Points, SweepPoint{Size: size})
			}
			byPath[r.Path] = sw
			order = append(order, r.Path)
		}
		for i, size := range SweepSizes {
			if r.Indirect {
				sw.Points[i].Indirect = r.Bandwidth[size]
			} else {
				sw.Points[i].Direct = r.Bandwidth[size]
			}
		}
	}
	out := make([]BandwidthSweep, 0, len(order))
	for _, p := range order {
		out = append(out, *byPath[p])
	}
	return out, nil
}

// FormatSweep renders the curves with the proxy overhead per size.
func FormatSweep(sweeps []BandwidthSweep) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Bandwidth vs message size (direct / via Nexus Proxy)")
	for _, sw := range sweeps {
		fmt.Fprintf(&b, "%s\n", sw.Path)
		fmt.Fprintf(&b, "  %10s %14s %14s %10s\n", "size", "direct", "indirect", "overhead")
		for _, pt := range sw.Points {
			overhead := "n/a"
			if pt.Indirect > 0 {
				overhead = fmt.Sprintf("%.1fx", pt.Direct/pt.Indirect)
			}
			fmt.Fprintf(&b, "  %10d %14s %14s %10s\n",
				pt.Size, fmtBandwidth(pt.Direct), fmtBandwidth(pt.Indirect), overhead)
		}
	}
	return b.String()
}
