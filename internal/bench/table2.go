// Package bench regenerates every table and figure of the paper's
// evaluation on the simulated testbed: Table 2 (communication latency and
// bandwidth, direct vs. through the Nexus Proxy), Table 3 (system
// configurations), Tables 4-6 (the 0-1 knapsack runs: execution time,
// speedup, steals, traversed nodes) and Figures 1-5 (topology, RMF
// architecture, proxy connection chains, experimental environment).
package bench

import (
	"fmt"
	"strings"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

// Table2Sizes are the message sizes the paper reports bandwidth for.
var Table2Sizes = []int{4096, 1 << 20}

// Table2Row is one measurement row.
type Table2Row struct {
	// Path names the endpoints, e.g. "RWCP-Sun <-> COMPaS".
	Path string
	// Indirect is true for measurements through the Nexus Proxy.
	Indirect bool
	// Latency is the one-way small-message latency (RTT/2).
	Latency time.Duration
	// Bandwidth maps message size to bytes/second.
	Bandwidth map[int]float64
}

// Mode renders "direct" or "indirect".
func (r Table2Row) Mode() string {
	if r.Indirect {
		return "indirect"
	}
	return "direct"
}

// Table2Config tunes the measurement.
type Table2Config struct {
	// Rounds per measurement point (default 4).
	Rounds int
	// Sizes are the message sizes bandwidth is measured at (default
	// Table2Sizes). Carried in the config — not a package global — so
	// concurrent measurements cannot interfere.
	Sizes []int
	// Workers bounds host-side parallelism across measurement points, each
	// of which runs on its own testbed and kernel. 0 selects GOMAXPROCS;
	// 1 measures sequentially.
	Workers int
	// Options are testbed options (relay calibration overrides for
	// ablations).
	Options cluster.Options
}

// RunTable2 reproduces the paper's Table 2: latency and bandwidth between
// RWCP-Sun and COMPaS and between RWCP-Sun and ETL-Sun, directly and through
// the proxy. Each row runs on a fresh testbed; direct rows open the firewall
// exactly as the paper temporarily did.
//
// Communication mirrors the Nexus model: a link is a pair of unidirectional
// channels, one per direction, each established the way that side's
// configuration dictates. In indirect mode a firewalled endpoint's inbound
// channel runs over the NXProxyBind chain (peer -> outer -> inner -> host)
// and its outbound connections run through NXProxyConnect, so a COMPaS <->
// RWCP-Sun round trip crosses the relays in both directions — which is why
// the paper measures ~60x direct LAN latency there and ~6x on the WAN path
// where only the RWCP side is proxied.
func RunTable2(cfg Table2Config) ([]Table2Row, error) {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 4
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = Table2Sizes
	}
	type point struct {
		path     string
		peer     string
		indirect bool
	}
	points := []point{
		{"RWCP-Sun <-> COMPaS", cluster.CompasNode(0), false},
		{"RWCP-Sun <-> COMPaS", cluster.CompasNode(0), true},
		{"RWCP-Sun <-> ETL-Sun", cluster.ETLSun, false},
		{"RWCP-Sun <-> ETL-Sun", cluster.ETLSun, true},
	}
	// Each point runs on a fresh testbed with its own kernel; measure them
	// across host threads and keep rows in point order.
	rows := make([]Table2Row, len(points))
	err := RunParallel(len(points), cfg.Workers, func(i int) error {
		pt := points[i]
		row, err := measurePoint(pt.path, pt.peer, pt.indirect, cfg)
		if err != nil {
			mode := "direct"
			if pt.indirect {
				mode = "indirect"
			}
			return fmt.Errorf("bench: table2 %s (%s): %w", pt.path, mode, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// measurePoint measures one Table 2 row on a fresh testbed. The client runs
// on RWCP-Sun (always behind the firewall); the server on the peer host.
func measurePoint(path, peer string, indirect bool, cfg Table2Config) (Table2Row, error) {
	opts := cfg.Options
	opts.OpenFirewall = !indirect
	tb := cluster.NewTestbed(opts)
	defer tb.K.Shutdown()

	row := Table2Row{Path: path, Indirect: indirect, Bandwidth: make(map[int]float64)}
	peerProxied := indirect && strings.HasPrefix(peer, "compas")

	serverAddr := make(chan string, 1)
	var benchErr error
	fail := func(err error) { benchErr = fmt.Errorf("%s: %w", path, err) }

	// Server: accept the forward channel, dial the reverse channel back to
	// the client's advertised address, then ack each transfer.
	tb.Host(peer).SpawnDaemonOn("t2-server", func(env transport.Env) {
		var l transport.Listener
		var err error
		if peerProxied {
			l, err = proxy.NXProxyBind(env, tb.ProxyCfg)
		} else {
			l, err = env.Listen(6100)
		}
		if err != nil {
			fail(err)
			return
		}
		serverAddr <- l.Addr()
		fwd, err := l.Accept(env)
		if err != nil {
			return
		}
		st := transport.Stream{Env: env, Conn: fwd}
		revAddr, err := readAddr(st)
		if err != nil {
			fail(err)
			return
		}
		var rev transport.Conn
		if peerProxied {
			rev, err = proxy.NXProxyConnect(env, tb.ProxyCfg, revAddr)
		} else {
			rev, err = env.Dial(revAddr)
		}
		if err != nil {
			fail(err)
			return
		}
		serveT2(env, fwd, rev)
	})

	done := false
	tb.Host(cluster.RWCPSun).SpawnOn("t2-client", func(env transport.Env) {
		// Reverse channel listener: through the proxy when indirect, since
		// RWCP-Sun always sits behind the firewall.
		var rl transport.Listener
		var err error
		if indirect {
			rl, err = proxy.NXProxyBind(env, tb.ProxyCfg)
		} else {
			rl, err = env.Listen(6200)
		}
		if err != nil {
			fail(err)
			return
		}
		for len(serverAddr) == 0 {
			env.Sleep(time.Millisecond)
		}
		addr := <-serverAddr
		var fwd transport.Conn
		if indirect {
			fwd, err = proxy.NXProxyConnect(env, tb.ProxyCfg, addr)
		} else {
			fwd, err = env.Dial(addr)
		}
		if err != nil {
			fail(err)
			return
		}
		fst := transport.Stream{Env: env, Conn: fwd}
		if err := writeAddr(fst, rl.Addr()); err != nil {
			fail(err)
			return
		}
		rev, err := rl.Accept(env)
		if err != nil {
			fail(err)
			return
		}
		rst := transport.Stream{Env: env, Conn: rev}

		// Latency: 1-byte ping (forward) / 1-byte ack (reverse).
		if err := pingPong(fst, rst, 1); err != nil { // warmup
			fail(err)
			return
		}
		start := env.Now()
		for i := 0; i < cfg.Rounds; i++ {
			if err := pingPong(fst, rst, 1); err != nil {
				fail(err)
				return
			}
		}
		row.Latency = (env.Now() - start) / time.Duration(2*cfg.Rounds)

		// Bandwidth per message size.
		for _, size := range cfg.Sizes {
			if err := pingPong(fst, rst, size); err != nil { // warmup
				fail(err)
				return
			}
			start := env.Now()
			for i := 0; i < cfg.Rounds; i++ {
				if err := pingPong(fst, rst, size); err != nil {
					fail(err)
					return
				}
			}
			elapsed := env.Now() - start
			row.Bandwidth[size] = float64(size) * float64(cfg.Rounds) / elapsed.Seconds()
		}
		done = true
		_ = fwd.Close(env)
	})

	if err := tb.K.Run(); err != nil {
		return row, err
	}
	if benchErr != nil {
		return row, benchErr
	}
	if !done {
		return row, fmt.Errorf("measurement did not complete")
	}
	return row, nil
}

// pingPong sends a size-byte payload (with a 4-byte size header) forward
// and waits for the 1-byte ack on the reverse channel.
func pingPong(fwd, rev transport.Stream, size int) error {
	hdr := []byte{byte(size >> 24), byte(size >> 16), byte(size >> 8), byte(size)}
	if _, err := fwd.Write(hdr); err != nil {
		return err
	}
	if _, err := fwd.Write(make([]byte, size)); err != nil {
		return err
	}
	one := make([]byte, 1)
	_, err := readFull(rev, one)
	return err
}

// serveT2 drains sized transfers from fwd and acks each on rev.
func serveT2(env transport.Env, fwd, rev transport.Conn) {
	fst := transport.Stream{Env: env, Conn: fwd}
	rst := transport.Stream{Env: env, Conn: rev}
	hdr := make([]byte, 4)
	buf := make([]byte, 64*1024)
	for {
		if _, err := readFull(fst, hdr); err != nil {
			_ = fwd.Close(env)
			_ = rev.Close(env)
			return
		}
		size := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
		remaining := size
		for remaining > 0 {
			n := len(buf)
			if n > remaining {
				n = remaining
			}
			got, err := fst.Read(buf[:n])
			if err != nil {
				_ = fwd.Close(env)
				_ = rev.Close(env)
				return
			}
			remaining -= got
		}
		if _, err := rst.Write([]byte{1}); err != nil {
			return
		}
	}
}

func readFull(st transport.Stream, b []byte) (int, error) {
	total := 0
	for total < len(b) {
		n, err := st.Read(b[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func writeAddr(st transport.Stream, addr string) error {
	if len(addr) > 255 {
		return fmt.Errorf("bench: address too long")
	}
	if _, err := st.Write([]byte{byte(len(addr))}); err != nil {
		return err
	}
	_, err := st.Write([]byte(addr))
	return err
}

func readAddr(st transport.Stream) (string, error) {
	one := make([]byte, 1)
	if _, err := readFull(st, one); err != nil {
		return "", err
	}
	b := make([]byte, one[0])
	if _, err := readFull(st, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// FormatTable2 renders rows like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Communication latency and bandwidth\n")
	fmt.Fprintf(&b, "%-24s %-9s %12s %18s %18s\n", "path", "mode", "latency", "bw (4096B msg)", "bw (1MB msg)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-9s %12s %18s %18s\n",
			r.Path, r.Mode(),
			fmtLatency(r.Latency),
			fmtBandwidth(r.Bandwidth[4096]),
			fmtBandwidth(r.Bandwidth[1<<20]))
	}
	return b.String()
}

func fmtLatency(d time.Duration) string {
	return fmt.Sprintf("%.2f msec", float64(d)/float64(time.Millisecond))
}

func fmtBandwidth(bps float64) string {
	switch {
	case bps >= 1<<20:
		return fmt.Sprintf("%.2f MB/sec", bps/(1<<20))
	case bps > 0:
		return fmt.Sprintf("%.1f KB/sec", bps/(1<<10))
	default:
		return "n/a"
	}
}
