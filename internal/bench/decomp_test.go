package bench

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestDecompositionTelescopes pins the report's core contract: per-hop rows
// sum bit-exactly (in virtual time) to the measured round trip, and the
// reported one-way latency is RTT/2.
func TestDecompositionTelescopes(t *testing.T) {
	ds, err := RunDecomposition(Table2Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("got %d points, want 4", len(ds))
	}
	for _, d := range ds {
		if len(d.Rows) == 0 {
			t.Errorf("%s (%s): no rows", d.Path, d.Mode())
			continue
		}
		var sum time.Duration
		for _, r := range d.Rows {
			if r.Delta < 0 {
				t.Errorf("%s (%s): negative delta %v at %v", d.Path, d.Mode(), r.Delta, r.At)
			}
			sum += r.Delta
		}
		if sum != d.RTT {
			t.Errorf("%s (%s): rows sum to %v, RTT %v", d.Path, d.Mode(), sum, d.RTT)
		}
		if d.Latency != d.RTT/2 {
			t.Errorf("%s (%s): latency %v, want RTT/2 = %v", d.Path, d.Mode(), d.Latency, d.RTT/2)
		}
	}
}

// TestDecompositionMatchesTable2 checks the decomposition measures the same
// steady-state ping-pong Table 2 does: each point's RTT/2 equals the Table 2
// row's latency exactly, so the per-hop rows are a decomposition of the
// reported number, not of some lookalike traffic.
func TestDecompositionMatchesTable2(t *testing.T) {
	rows, err := RunTable2(Table2Config{Rounds: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := RunDecomposition(Table2Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		if d.Latency != rows[i].Latency {
			t.Errorf("%s (%s): decomposition latency %v != Table 2 latency %v",
				d.Path, d.Mode(), d.Latency, rows[i].Latency)
		}
	}
}

// TestDecompositionAttributesRelays checks the indirect points expose the
// store-and-forward legs: relay buffer events appear on the proxy chain and
// never on the direct path.
func TestDecompositionAttributesRelays(t *testing.T) {
	ds, err := RunDecomposition(Table2Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		relay := false
		for _, r := range d.Rows {
			if strings.HasPrefix(r.Label, "relay/") {
				relay = true
			}
		}
		if relay != d.Indirect {
			t.Errorf("%s (%s): relay rows present = %v, want %v", d.Path, d.Mode(), relay, d.Indirect)
		}
	}
}

// decompTraceHashes runs the decomposition and hashes each point's full
// JSONL trace.
func decompTraceHashes(t *testing.T, workers int) []uint64 {
	t.Helper()
	ds, err := RunDecomposition(Table2Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]uint64, len(ds))
	for i, d := range ds {
		hs[i] = d.Obs.Hash()
	}
	return hs
}

// TestDecompTraceHostConfigInvariant pins the tracing determinism contract:
// the byte-exact JSONL trace of every Table 2 point is identical whether the
// host runs single-threaded or parallel, and whether the sweep fans out
// across workers. Virtual time owns the trace; the host schedule must not
// leak into it.
func TestDecompTraceHostConfigInvariant(t *testing.T) {
	combos := []struct {
		gomaxprocs int
		workers    int
	}{
		{1, 1},
		{1, 4},
		{8, 1},
		{8, 4},
	}
	var base []uint64
	for i, c := range combos {
		prev := runtime.GOMAXPROCS(c.gomaxprocs)
		hs := decompTraceHashes(t, c.workers)
		runtime.GOMAXPROCS(prev)
		if i == 0 {
			base = hs
			continue
		}
		for j := range hs {
			if hs[j] != base[j] {
				t.Errorf("GOMAXPROCS=%d Workers=%d: point %d trace hash %#x, want %#x",
					c.gomaxprocs, c.workers, j, hs[j], base[j])
			}
		}
	}
}
