package bench

import (
	"fmt"
	"strings"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mpi"
	"nxcluster/internal/obs"
	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

// This file is the latency-decomposition report: it re-runs the Table 2
// measurement points with tracing enabled and splits one timed 1-byte
// ping-pong into per-hop rows. Rows telescope over the trace — each row's
// delta is the virtual time between consecutive events on the single global
// clock — so they sum bit-exactly to the measured round trip, and RTT/2 is
// the one-way latency Table 2 reports.

// DecompRow is one segment of the round trip: the virtual time between the
// previous event (or the send) and this one, attributed to this event.
type DecompRow struct {
	// At is the event's virtual timestamp.
	At time.Duration
	// Delta is the time since the previous row (the segment this event
	// closes).
	Delta time.Duration
	// Label names the event: "cat/name track k=v ...".
	Label string
}

// Decomposition is one measurement point's per-hop breakdown.
type Decomposition struct {
	// Path names the endpoints as Table 2 does.
	Path string
	// Indirect is true for the Nexus Proxy chain.
	Indirect bool
	// RTT is the measured round-trip time of the decomposed ping-pong.
	RTT time.Duration
	// Latency is RTT/2, the number Table 2 reports.
	Latency time.Duration
	// Rows are the segments, in virtual-time order; their deltas sum to RTT.
	Rows []DecompRow
	// Obs holds the point's full trace (for -trace export).
	Obs *obs.Observer
}

// RunDecomposition measures the four Table 2 points with tracing on and
// decomposes each into per-hop rows. Each point runs on a fresh testbed and
// kernel with its own observer, so the fan-out across Workers host threads
// changes nothing in virtual time.
func RunDecomposition(cfg Table2Config) ([]Decomposition, error) {
	type point struct {
		path     string
		peer     string
		indirect bool
	}
	points := []point{
		{"RWCP-Sun <-> COMPaS", cluster.CompasNode(0), false},
		{"RWCP-Sun <-> COMPaS", cluster.CompasNode(0), true},
		{"RWCP-Sun <-> ETL-Sun", cluster.ETLSun, false},
		{"RWCP-Sun <-> ETL-Sun", cluster.ETLSun, true},
	}
	out := make([]Decomposition, len(points))
	err := RunParallel(len(points), cfg.Workers, func(i int) error {
		pt := points[i]
		d, err := decompPoint(pt.path, pt.peer, pt.indirect, cfg.Options)
		if err != nil {
			return fmt.Errorf("bench: decomp %s (%s): %w", pt.path, d.Mode(), err)
		}
		out[i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Mode renders "direct" or "indirect".
func (d Decomposition) Mode() string {
	if d.Indirect {
		return "indirect"
	}
	return "direct"
}

// decompPoint runs one Table 2 point's connection setup exactly as
// measurePoint does (client on RWCP-Sun, server on peer, forward and reverse
// channels each built per that side's configuration), then times a single
// 1-byte ping-pong with tracing enabled and telescopes the trace window into
// rows.
func decompPoint(path, peer string, indirect bool, opts cluster.Options) (Decomposition, error) {
	o := obs.New()
	opts.OpenFirewall = !indirect
	opts.Obs = o
	tb := cluster.NewTestbed(opts)
	defer tb.K.Shutdown()

	d := Decomposition{Path: path, Indirect: indirect, Obs: o}
	peerProxied := indirect && strings.HasPrefix(peer, "compas")

	serverAddr := make(chan string, 1)
	var benchErr error
	fail := func(err error) { benchErr = fmt.Errorf("%s: %w", path, err) }

	tb.Host(peer).SpawnDaemonOn("t2-server", func(env transport.Env) {
		var l transport.Listener
		var err error
		if peerProxied {
			l, err = proxy.NXProxyBind(env, tb.ProxyCfg)
		} else {
			l, err = env.Listen(6100)
		}
		if err != nil {
			fail(err)
			return
		}
		serverAddr <- l.Addr()
		fwd, err := l.Accept(env)
		if err != nil {
			return
		}
		st := transport.Stream{Env: env, Conn: fwd}
		revAddr, err := readAddr(st)
		if err != nil {
			fail(err)
			return
		}
		var rev transport.Conn
		if peerProxied {
			rev, err = proxy.NXProxyConnect(env, tb.ProxyCfg, revAddr)
		} else {
			rev, err = env.Dial(revAddr)
		}
		if err != nil {
			fail(err)
			return
		}
		serveT2(env, fwd, rev)
	})

	var start, end time.Duration
	startIdx, endIdx := 0, 0
	done := false
	tb.Host(cluster.RWCPSun).SpawnOn("t2-client", func(env transport.Env) {
		var rl transport.Listener
		var err error
		if indirect {
			rl, err = proxy.NXProxyBind(env, tb.ProxyCfg)
		} else {
			rl, err = env.Listen(6200)
		}
		if err != nil {
			fail(err)
			return
		}
		for len(serverAddr) == 0 {
			env.Sleep(time.Millisecond)
		}
		addr := <-serverAddr
		var fwd transport.Conn
		if indirect {
			fwd, err = proxy.NXProxyConnect(env, tb.ProxyCfg, addr)
		} else {
			fwd, err = env.Dial(addr)
		}
		if err != nil {
			fail(err)
			return
		}
		fst := transport.Stream{Env: env, Conn: fwd}
		if err := writeAddr(fst, rl.Addr()); err != nil {
			fail(err)
			return
		}
		rev, err := rl.Accept(env)
		if err != nil {
			fail(err)
			return
		}
		rst := transport.Stream{Env: env, Conn: rev}

		if err := pingPong(fst, rst, 1); err != nil { // warmup
			fail(err)
			return
		}
		// The decomposed round trip: mark the trace window around one
		// ping-pong so setup and warmup traffic stays out of the rows.
		startIdx = o.Len()
		start = env.Now()
		if err := pingPong(fst, rst, 1); err != nil {
			fail(err)
			return
		}
		end = env.Now()
		endIdx = o.Len()
		done = true
		_ = fwd.Close(env)
	})

	if err := tb.K.Run(); err != nil {
		return d, err
	}
	if benchErr != nil {
		return d, benchErr
	}
	if !done {
		return d, fmt.Errorf("measurement did not complete")
	}

	d.RTT = end - start
	d.Latency = d.RTT / 2
	prev := start
	for _, e := range o.Events()[startIdx:endIdx] {
		d.Rows = append(d.Rows, DecompRow{At: e.At, Delta: e.At - prev, Label: labelOf(e)})
		prev = e.At
	}
	if end > prev {
		d.Rows = append(d.Rows, DecompRow{At: end, Delta: end - prev, Label: "app/ack-read rwcp-sun"})
	}
	var sum time.Duration
	for _, r := range d.Rows {
		sum += r.Delta
	}
	if sum != d.RTT {
		return d, fmt.Errorf("decomposition does not telescope: rows sum to %v, RTT %v", sum, d.RTT)
	}
	return d, nil
}

// labelOf renders an event as "cat/name track k=v ...".
func labelOf(e obs.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s %s", e.Cat, e.Name, e.Track)
	for _, f := range e.Fields {
		if f.IsStr {
			fmt.Fprintf(&b, " %s=%s", f.Key, f.Str)
		} else {
			fmt.Fprintf(&b, " %s=%d", f.Key, f.Int)
		}
	}
	return b.String()
}

// FormatDecomposition renders the per-hop breakdown for every point. The
// deltas in each section sum exactly (in virtual time) to the RTT line, and
// the one-way latency is RTT/2 — the same number the Table 2 row reports.
func FormatDecomposition(ds []Decomposition) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Latency decomposition: one 1-byte ping-pong per Table 2 point")
	fmt.Fprintln(&b, "(rows telescope over the virtual-time trace; deltas sum exactly to the RTT)")
	for _, d := range ds {
		fmt.Fprintf(&b, "\n== %s (%s) ==\n", d.Path, d.Mode())
		fmt.Fprintf(&b, "%14s %14s  %s\n", "at", "+delta", "event")
		for _, r := range d.Rows {
			fmt.Fprintf(&b, "%14s %14s  %s\n", fmtNS(r.At), "+"+fmtNS(r.Delta), r.Label)
		}
		fmt.Fprintf(&b, "RTT %s  =>  one-way latency (RTT/2) %s\n", fmtNS(d.RTT), fmtNS(d.Latency))
	}
	return b.String()
}

// fmtNS renders a duration in milliseconds with nanosecond precision, so
// rows remain bit-exact in print form.
func fmtNS(d time.Duration) string {
	return fmt.Sprintf("%.6fms", float64(d)/float64(time.Millisecond))
}

// RunKnapsackTraced runs the wide-area knapsack system (through the Nexus
// Proxy) with the given observer attached to the testbed: every steal,
// bound improvement, relay buffer and link hop lands in the trace, ready
// for JSONL or Chrome trace_event export.
func RunKnapsackTraced(cfg KnapsackConfig, o *obs.Observer) (*knapsack.Result, error) {
	cfg = cfg.withDefaults()
	cfg.Options.Obs = o
	in := knapsack.Normalized(cfg.Items, cfg.Capacity)
	return runOn(cfg, in, func(tb *cluster.Testbed) []mpi.Placement {
		return tb.Placements(cluster.SystemWide, true)
	}, true)
}
