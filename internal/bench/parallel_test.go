package bench

import (
	"errors"
	"fmt"
	"testing"
)

func TestRunParallelAggregatesAllErrors(t *testing.T) {
	errA := errors.New("job 2 failed")
	errB := errors.New("job 5 failed")
	var ran [8]bool
	job := func(i int) error {
		ran[i] = true
		switch i {
		case 2:
			return errA
		case 5:
			return errB
		}
		return nil
	}
	for _, workers := range []int{1, 4} {
		ran = [8]bool{}
		err := RunParallel(len(ran), workers, job)
		if err == nil {
			t.Fatalf("workers=%d: nil error, want both job errors", workers)
		}
		if !errors.Is(err, errA) || !errors.Is(err, errB) {
			t.Errorf("workers=%d: error %v missing a job error", workers, err)
		}
		for i, r := range ran {
			if !r {
				t.Errorf("workers=%d: job %d skipped after earlier failure", workers, i)
			}
		}
	}
}

func TestRunParallelErrorOrder(t *testing.T) {
	// Errors surface in job-index order, not completion order.
	err := RunParallel(4, 4, func(i int) error {
		return fmt.Errorf("job %d", i)
	})
	want := "job 0\njob 1\njob 2\njob 3"
	if err == nil || err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}
}

func TestRunParallelNilOnSuccess(t *testing.T) {
	if err := RunParallel(6, 3, func(int) error { return nil }); err != nil {
		t.Errorf("err = %v, want nil", err)
	}
}
