package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTable2ReproducesPaperShape(t *testing.T) {
	rows, err := RunTable2(Table2Config{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	lanDirect, lanIndirect, wanDirect, wanIndirect := rows[0], rows[1], rows[2], rows[3]

	// Paper: direct LAN latency 0.41 ms.
	if lanDirect.Latency < 300*time.Microsecond || lanDirect.Latency > 700*time.Microsecond {
		t.Errorf("LAN direct latency = %v, want ~0.4ms", lanDirect.Latency)
	}
	// Paper: indirect LAN latency 25 ms — 60x direct.
	ratio := float64(lanIndirect.Latency) / float64(lanDirect.Latency)
	if ratio < 25 || ratio > 120 {
		t.Errorf("LAN indirect/direct latency ratio = %.1f (%v vs %v), want order 60x",
			ratio, lanIndirect.Latency, lanDirect.Latency)
	}
	// Paper: direct WAN latency 3.9 ms; indirect ~6x larger.
	if wanDirect.Latency < 3*time.Millisecond || wanDirect.Latency > 6*time.Millisecond {
		t.Errorf("WAN direct latency = %v, want ~3.9ms", wanDirect.Latency)
	}
	wratio := float64(wanIndirect.Latency) / float64(wanDirect.Latency)
	if wratio < 2.5 || wratio > 12 {
		t.Errorf("WAN indirect/direct latency ratio = %.1f (%v vs %v), want several x",
			wratio, wanIndirect.Latency, wanDirect.Latency)
	}

	// Paper: direct LAN 1MB bandwidth 6.32 MB/s.
	if bw := lanDirect.Bandwidth[1<<20]; bw < 4e6 || bw > 8e6 {
		t.Errorf("LAN direct 1MB bw = %.0f B/s, want ~6.3MB/s", bw)
	}
	// Paper: indirect small-message bandwidth an order of magnitude down.
	smallRatio := lanDirect.Bandwidth[4096] / lanIndirect.Bandwidth[4096]
	if smallRatio < 10 {
		t.Errorf("LAN 4KB direct/indirect bw ratio = %.1f, want >= 10", smallRatio)
	}
	// Paper: on the WAN the 1MB proxy overhead is negligible (both ~IMnet).
	wanRatio := wanDirect.Bandwidth[1<<20] / wanIndirect.Bandwidth[1<<20]
	if wanRatio > 1.35 {
		t.Errorf("WAN 1MB direct/indirect bw ratio = %.2f, want ~1 (negligible overhead)", wanRatio)
	}
	// And the indirect LAN large-message bandwidth is relay-pipeline bound,
	// far below direct.
	if lanIndirect.Bandwidth[1<<20] >= lanDirect.Bandwidth[1<<20]/4 {
		t.Errorf("LAN indirect 1MB bw = %.0f, want well below direct %.0f",
			lanIndirect.Bandwidth[1<<20], lanDirect.Bandwidth[1<<20])
	}

	out := FormatTable2(rows)
	for _, want := range []string{"Table 2", "direct", "indirect", "RWCP-Sun <-> COMPaS", "RWCP-Sun <-> ETL-Sun"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable2 missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}
