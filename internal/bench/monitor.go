package bench

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mds"
	"nxcluster/internal/mpi"
	"nxcluster/internal/obs"
	"nxcluster/internal/obs/timeseries"
)

// MonitorBase is the DN suffix the monitoring plane publishes under.
const MonitorBase = "ou=monitor, o=grid"

// MonitorConfig parameterizes the monitored wide-area run.
type MonitorConfig struct {
	KnapsackConfig
	// Interval is the sampling window width in virtual time (default 1s —
	// the capacity-4 wide-area run takes a few hundred virtual seconds).
	Interval time.Duration
	// TTL ages monitor entries out of the directory when not refreshed
	// (default 5 intervals).
	TTL time.Duration
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	c.KnapsackConfig = c.KnapsackConfig.withDefaults()
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.TTL <= 0 {
		c.TTL = 5 * c.Interval
	}
	return c
}

// MonitorReport is the outcome of a monitored run: the workload's result,
// the sampled time-series, and the GIS directory as the monitor left it.
type MonitorReport struct {
	Config  MonitorConfig
	Result  *knapsack.Result
	Store   *timeseries.Store
	Dir     *mds.Directory
	Elapsed time.Duration
	// Obs is the run's observer: the causal trace the scenario DSL's SLO
	// latency objectives decompose.
	Obs *obs.Observer
}

// RunMonitor executes the wide-area (proxied) knapsack run with the full
// monitoring plane attached: an observer collects metrics from every layer,
// a kernel-scheduled sampler windows them into time-series, and each window
// publishes host and link status rows into an MDS directory the way the
// paper's GRAM reporters refreshed GIS. The publisher writes the directory
// directly — no simulated traffic — so the workload's virtual-time results
// are identical to an unmonitored run.
//
// onSample, when non-nil, runs after each window (in kernel context) with
// the live store and directory — tests use it to assert mid-run consistency.
func RunMonitor(cfg MonitorConfig, onSample func(at time.Duration, st *timeseries.Store, dir *mds.Directory)) (*MonitorReport, error) {
	cfg = cfg.withDefaults()
	in := knapsack.Normalized(cfg.Items, cfg.Capacity)
	wantNodes := knapsack.NormalizedTreeNodes(cfg.Items, cfg.Capacity)
	wantBest := bestOf(in, cfg.Capacity)

	o := obs.New()
	opts := cfg.Options
	opts.Obs = o
	tb := cluster.NewTestbed(opts)
	defer tb.K.Shutdown()

	dir := mds.NewDirectory()
	pub := mds.NewPublisher(dir, MonitorBase, cfg.TTL)
	s := timeseries.NewSampler(tb.K, cfg.Interval, o.Metrics())
	s.Probe("cluster.hosts_up", timeseries.KindGauge, func() int64 {
		var up int64
		for _, h := range tb.Net.HostStatuses() {
			if h.Up {
				up++
			}
		}
		return up
	})
	s.Probe("cluster.conns", timeseries.KindGauge, func() int64 {
		var c int64
		for _, h := range tb.Net.HostStatuses() {
			c += int64(h.Conns)
		}
		return c
	})
	s.OnSample(func(at time.Duration) {
		pub.Publish(at, statusRows(tb))
		if onSample != nil {
			onSample(at, s.Store(), dir)
		}
	})
	s.Start()

	w := mpi.NewWorld(tb.Placements(cluster.SystemWide, true))
	var res *knapsack.Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := knapsack.Run(c, in, cfg.Params)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err := tb.K.Run(); err != nil {
		return nil, err
	}
	if err := w.Err(); err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("bench: monitored run: no result from master")
	}
	if res.Best != wantBest {
		return nil, fmt.Errorf("bench: monitored run found %d, want %d", res.Best, wantBest)
	}
	if res.TotalTraversed != wantNodes {
		return nil, fmt.Errorf("bench: monitored run traversed %d nodes, want %d",
			res.TotalTraversed, wantNodes)
	}
	return &MonitorReport{
		Config: cfg, Result: res, Store: s.Store(), Dir: dir, Elapsed: res.Elapsed, Obs: o,
	}, nil
}

// statusRows snapshots the testbed into GIS-style rows: one per host
// (status, load as live process count, cpus) and one per active link
// direction (status, linkMbps capacity, cumulative bytes, queue depth).
func statusRows(tb *cluster.Testbed) []mds.StatusRow {
	hosts := tb.Net.HostStatuses()
	links := tb.Net.LinkStatuses()
	rows := make([]mds.StatusRow, 0, len(hosts)+len(links))
	for _, h := range hosts {
		status := "up"
		if !h.Up {
			status = "down"
		}
		rows = append(rows, mds.StatusRow{Name: h.Name, Attrs: map[string][]string{
			"objectclass": {"host"},
			"site":        {h.Site},
			"status":      {status},
			"load":        {strconv.Itoa(h.Procs)},
			"cpus":        {strconv.Itoa(h.CPUs)},
		}})
	}
	for _, l := range links {
		status := "up"
		if !l.Up {
			status = "down"
		}
		mbps := float64(l.Bandwidth) * 8 / 1e6
		rows = append(rows, mds.StatusRow{Name: "link:" + l.Label, Attrs: map[string][]string{
			"objectclass": {"link"},
			"status":      {status},
			"linkmbps":    {strconv.FormatFloat(mbps, 'f', 1, 64)},
			"bytes":       {strconv.FormatInt(l.Bytes, 10)},
			"queue":       {strconv.Itoa(l.Queue)},
		}})
	}
	return rows
}

// FormatMonitor renders the monitored run: a summary header, the final GIS
// host table, and the ASCII time-series dashboard. Filter, when non-nil,
// restricts the dashboard's series (the full registry has one series per
// link direction and per rank — ~100 rows at full width).
func FormatMonitor(r *MonitorReport, filter func(string) bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Monitored wide-area run: %d items, capacity %d, exec %s, best %d\n",
		r.Config.Items, r.Config.Capacity, fmtSeconds(r.Elapsed), r.Result.Best)
	fmt.Fprintf(&b, "\nGIS directory (base %q) after final window:\n", MonitorBase)
	entries, _ := r.Dir.Search(MonitorBase, mds.Eq("objectclass", "host"))
	fmt.Fprintf(&b, "%-16s %-6s %-8s %-6s %-6s\n", "host", "site", "status", "load", "cpus")
	for _, e := range entries {
		fmt.Fprintf(&b, "%-16s %-6s %-8s %-6s %-6s\n",
			strings.TrimPrefix(strings.SplitN(e.DN, ",", 2)[0], "hn="),
			e.First("site"), e.First("status"), e.First("load"), e.First("cpus"))
	}
	fmt.Fprintf(&b, "\n%s", r.Store.FormatDashboard(timeseries.DashboardOptions{Filter: filter}))
	return b.String()
}

// MonitorHTMLOptions returns the HTML renderer options: every series when
// all is set, otherwise the headline filter the dashboard uses.
func MonitorHTMLOptions(all bool) timeseries.DashboardOptions {
	if all {
		return timeseries.DashboardOptions{}
	}
	return timeseries.DashboardOptions{Filter: DefaultMonitorFilter}
}

// DefaultMonitorFilter keeps the dashboard to the headline series: WAN and
// gateway links, relay activity, RMF lifecycle, and the cluster probes.
func DefaultMonitorFilter(name string) bool {
	switch {
	case strings.HasPrefix(name, "cluster."),
		strings.HasPrefix(name, "relay."),
		strings.HasPrefix(name, "rmf."),
		strings.HasPrefix(name, "hbm."):
		return true
	case strings.HasPrefix(name, "link."):
		// Only the wide-area legs; per-host LAN series would swamp the view.
		return strings.Contains(name, "etl-gw") || strings.Contains(name, "rwcp-gw")
	default:
		return false
	}
}
