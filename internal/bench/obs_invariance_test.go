package bench

import (
	"fmt"
	"hash/fnv"
	"testing"

	"nxcluster/internal/cluster"
	"nxcluster/internal/obs"
)

// resultsHash runs a small Table 2 + knapsack sweep with the given testbed
// options and hashes every formatted virtual-time number.
func resultsHash(t *testing.T, opts cluster.Options) uint64 {
	t.Helper()
	rows, err := RunTable2(Table2Config{Rounds: 2, Workers: 1, Options: opts})
	if err != nil {
		t.Fatalf("table2: %v", err)
	}
	rep, err := RunKnapsack(KnapsackConfig{Capacity: 2, Workers: 1, Options: opts})
	if err != nil {
		t.Fatalf("knapsack: %v", err)
	}
	h := fnv.New64a()
	fmt.Fprint(h, FormatTable2(rows))
	fmt.Fprint(h, FormatTable4(rep))
	fmt.Fprint(h, FormatTable5(rep))
	fmt.Fprint(h, FormatTable6(rep))
	return h.Sum64()
}

// TestTracingDoesNotPerturbResults pins the observability overhead contract
// from the other side: attaching an observer must never change a
// virtual-time result. The same sweep runs with tracing off and on and must
// produce bit-identical tables.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	off := resultsHash(t, cluster.Options{})
	o := obs.New()
	on := resultsHash(t, cluster.Options{Obs: o})
	if off != on {
		t.Errorf("results diverged: tracing off %#x, tracing on %#x", off, on)
	}
	if o.Len() == 0 {
		t.Error("tracing on recorded no events (observer not wired through the testbed?)")
	}
}
