package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"
)

// smallTransferConfig keeps test sweeps fast while covering the interesting
// corners: window-limited no-loss and congestion-limited lossy points.
func smallTransferConfig() TransferConfig {
	return TransferConfig{
		FileSize:  1 << 20,
		Streams:   []int{1, 8},
		LossRates: []float64{0, 0.02},
	}
}

func transferHash(pts []TransferPoint) uint64 {
	h := fnv.New64a()
	fmt.Fprint(h, FormatTransfer(pts))
	return h.Sum64()
}

// TestTransferCurveShape pins the qualitative physics of the sweep — the
// properties that motivated GridFTP's parallel streams.
func TestTransferCurveShape(t *testing.T) {
	pts, err := RunTransfer(TransferConfig{FileSize: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]int]TransferPoint{}
	for _, pt := range pts {
		byKey[[2]int{int(pt.LossRate * 1000), pt.Streams}] = pt
	}
	// A single stream never reaches the raw link bound: its 256 KiB window
	// is below the path's bandwidth-delay product even with zero loss.
	linkBound := float64(TransferWANBandwidth)
	if g := byKey[[2]int{0, 1}].Goodput; g <= 0 || g >= linkBound {
		t.Fatalf("single-stream no-loss goodput %.0f not in (0, %0.f)", g, linkBound)
	}
	// At every loss rate, 8 streams beat 1 stream; at the highest loss the
	// whole curve is strictly monotone in stream count.
	for _, loss := range []int{0, 5, 20} {
		g1, g8 := byKey[[2]int{loss, 1}].Goodput, byKey[[2]int{loss, 8}].Goodput
		if g8 <= g1 {
			t.Errorf("loss %d/1000: 8 streams (%.0f B/s) not above 1 stream (%.0f B/s)", loss, g8, g1)
		}
	}
	prev := 0.0
	for _, streams := range []int{1, 2, 4, 8} {
		g := byKey[[2]int{20, streams}].Goodput
		if g <= prev {
			t.Errorf("2%% loss: goodput not monotone at %d streams (%.0f after %.0f)", streams, g, prev)
		}
		prev = g
	}
	// Loss costs a single stream real throughput.
	if l, n := byKey[[2]int{20, 1}].Goodput, byKey[[2]int{0, 1}].Goodput; l >= n {
		t.Errorf("2%% loss single stream (%.0f) not below no-loss (%.0f)", l, n)
	}
	// Lossy points show flow-model activity; lossless points none.
	if pt := byKey[[2]int{20, 1}]; pt.Drops == 0 || pt.Retransmits < pt.Drops {
		t.Errorf("2%% loss: implausible counters %+v", pt)
	}
	if pt := byKey[[2]int{0, 8}]; pt.Drops != 0 || pt.Retransmits != 0 {
		t.Errorf("no loss: unexpected flow activity %+v", pt)
	}
}

// TestTransferDeterministic: the congestion-modeled sweep is bit-reproducible
// run to run and invariant under host parallelism, like every other
// experiment in the repo.
func TestTransferDeterministic(t *testing.T) {
	first, err := RunTransfer(smallTransferConfig())
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunTransfer(smallTransferConfig())
	if err != nil {
		t.Fatal(err)
	}
	if transferHash(first) != transferHash(second) {
		t.Fatalf("sweep not reproducible:\n%s\nvs\n%s", FormatTransfer(first), FormatTransfer(second))
	}

	cfg := smallTransferConfig()
	cfg.Workers = 1
	serial, err := RunTransfer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if transferHash(first) != transferHash(serial) {
		t.Fatalf("workers change results:\n%s\nvs\n%s", FormatTransfer(first), FormatTransfer(serial))
	}

	prev := runtime.GOMAXPROCS(1)
	limited, err := RunTransfer(smallTransferConfig())
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if transferHash(first) != transferHash(limited) {
		t.Fatalf("GOMAXPROCS changes results:\n%s\nvs\n%s", FormatTransfer(first), FormatTransfer(limited))
	}
}
