package bench

import (
	"strings"
	"testing"
	"time"

	"nxcluster/internal/fleet"
)

func fleetTestConfig() fleet.Config {
	return fleet.Config{
		Sites:        4,
		HostsPerSite: 8,
		Jobs:         500,
		Seed:         7,
		Arrivals:     fleet.RateShape{Kind: fleet.RateConstant, Rate: 50},
		Sizes:        fleet.SizeDist{Kind: fleet.DistFixed, Mean: time.Second},
		Heartbeat:    5 * time.Second,
		TraceSample:  25,
	}
}

// TestRunFleetReport: the harness completes a run, derives throughput from
// the wall clock, fills the causal percentiles from sampled spans, and the
// formatted table carries the headline figures.
func TestRunFleetReport(t *testing.T) {
	r, err := RunFleet(fleetTestConfig())
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if r.Result.Jobs != 500 {
		t.Fatalf("completed %d jobs, want 500", r.Result.Jobs)
	}
	if r.Wall <= 0 || r.EventsPerSec <= 0 || r.JobsPerSec <= 0 {
		t.Fatalf("throughput not derived: wall=%v ev/s=%.0f jobs/s=%.0f",
			r.Wall, r.EventsPerSec, r.JobsPerSec)
	}
	if r.CausalP50 <= 0 || r.CausalP99 < r.CausalP50 {
		t.Fatalf("causal percentiles missing or unordered: p50=%v p99=%v",
			r.CausalP50, r.CausalP99)
	}
	// The independent causal measurement must agree with the engine's own
	// accounting to within the sampling error (same population, 1/25 sample).
	if r.CausalP50 > 2*r.Result.P99Lat {
		t.Fatalf("causal p50 %v wildly above engine p99 %v", r.CausalP50, r.Result.P99Lat)
	}

	out := FormatFleet(r)
	for _, want := range []string{"Fleet run: 4 sites x 8 hosts", "events/sec",
		"job latency:", "causal job spans (1/25 sampled)", "fingerprint:"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFleet output missing %q:\n%s", want, out)
		}
	}
}

// TestRunFleetDeterministicFingerprint: the harness does not perturb the
// engine's determinism (wall-clock timing stays out of the fingerprint).
func TestRunFleetDeterministicFingerprint(t *testing.T) {
	a, err := RunFleet(fleetTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(fleetTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Fingerprint != b.Result.Fingerprint {
		t.Fatalf("fingerprints diverged: %016x vs %016x",
			a.Result.Fingerprint, b.Result.Fingerprint)
	}
}
