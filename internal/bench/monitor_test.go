package bench

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"nxcluster/internal/mds"
	"nxcluster/internal/obs/timeseries"
)

// monitorRun executes a small monitored wide-area run; capacity 2 keeps it
// to a few host-seconds while still exercising WAN links, relays and RMF.
func monitorRun(t *testing.T, onSample func(time.Duration, *timeseries.Store, *mds.Directory)) *MonitorReport {
	t.Helper()
	rep, err := RunMonitor(MonitorConfig{
		KnapsackConfig: KnapsackConfig{Capacity: 2},
		Interval:       time.Second,
	}, onSample)
	if err != nil {
		t.Fatalf("monitored run: %v", err)
	}
	return rep
}

func TestMonitorSeriesAndDirectory(t *testing.T) {
	rep := monitorRun(t, nil)
	if rep.Store.Windows() == 0 {
		t.Fatal("no windows sampled")
	}
	// The WAN leg must have carried traffic and produced a rate series.
	wan := rep.Store.Series("link.rwcp-outer>etl-gw.bytes")
	if wan == nil {
		names := strings.Join(rep.Store.Names(), "\n  ")
		t.Fatalf("WAN bytes series missing; have:\n  %s", names)
	}
	if wan.Total() == 0 {
		t.Fatal("WAN series carried no bytes")
	}
	// Host rows survive in the directory (all refreshed every window).
	hosts, err := rep.Dir.Search(MonitorBase, mds.Eq("objectclass", "host"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) == 0 {
		t.Fatal("no host rows in directory")
	}
	for _, e := range hosts {
		if got := e.First("status"); got != "up" {
			t.Fatalf("%s status = %q, want up (fault-free run)", e.DN, got)
		}
		if e.First("lastupdate") == "" {
			t.Fatalf("%s has no lastupdate stamp", e.DN)
		}
	}
	// Link rows too, with the WAN leg's capacity attribute.
	e, err := rep.Dir.Get("hn=link:rwcp-outer>etl-gw, " + MonitorBase)
	if err != nil {
		t.Fatalf("WAN link row missing: %v", err)
	}
	if got := e.First("linkmbps"); got != "1.5" {
		t.Fatalf("WAN linkMbps = %q, want 1.5 (IMnet)", got)
	}
}

func TestMonitorMidRunMDSConsistency(t *testing.T) {
	// At every window the cumulative bytes attribute published for the WAN
	// link must equal the sum of the rate series so far: the directory's
	// live view and the final time-series describe the same run.
	const wanSeries = "link.rwcp-outer>etl-gw.bytes"
	checked := 0
	rep := monitorRun(t, func(at time.Duration, st *timeseries.Store, dir *mds.Directory) {
		s := st.Series(wanSeries)
		if s == nil {
			return // link not yet active
		}
		e, err := dir.Get("hn=link:rwcp-outer>etl-gw, " + MonitorBase)
		if err != nil {
			t.Fatalf("window at %v: link row missing: %v", at, err)
		}
		attr, err := strconv.ParseInt(e.First("bytes"), 10, 64)
		if err != nil {
			t.Fatalf("window at %v: bad bytes attr %q", at, e.First("bytes"))
		}
		if attr != s.Total() {
			t.Fatalf("window at %v: directory bytes %d != series total %d", at, attr, s.Total())
		}
		if got := e.First("lastupdate"); got != strconv.FormatInt(int64(at), 10) {
			t.Fatalf("window at %v: lastupdate %q not refreshed", at, got)
		}
		checked++
	})
	if checked == 0 {
		t.Fatal("consistency hook never saw the WAN series")
	}
	// And the final directory row matches the completed store.
	e, err := rep.Dir.Get("hn=link:rwcp-outer>etl-gw, " + MonitorBase)
	if err != nil {
		t.Fatal(err)
	}
	attr, _ := strconv.ParseInt(e.First("bytes"), 10, 64)
	if attr != rep.Store.Series(wanSeries).Total() {
		t.Fatalf("final directory bytes %d != series total %d",
			attr, rep.Store.Series(wanSeries).Total())
	}
}

// monitorHash runs the monitored sweep and hashes the two user-visible
// serializations: the JSONL time-series and the ASCII dashboard.
func monitorHash(t *testing.T) (uint64, string) {
	t.Helper()
	rep := monitorRun(t, nil)
	return rep.Store.Hash(), FormatMonitor(rep, DefaultMonitorFilter)
}

// TestMonitorHostConfigInvariant mirrors TestGoldenOutputsHostConfigInvariant
// for the monitoring plane: the emitted time-series and dashboard are
// byte-identical across GOMAXPROCS settings.
func TestMonitorHostConfigInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run monitored sweep")
	}
	prev := runtime.GOMAXPROCS(1)
	h1, d1 := monitorHash(t)
	runtime.GOMAXPROCS(8)
	h8, d8 := monitorHash(t)
	runtime.GOMAXPROCS(prev)
	if h1 != h8 {
		t.Errorf("time-series hash diverged: GOMAXPROCS=1 -> %#x, GOMAXPROCS=8 -> %#x", h1, h8)
	}
	if d1 != d8 {
		t.Error("dashboard output diverged across GOMAXPROCS")
	}
}

// TestMonitorDoesNotPerturbResults pins the zero-perturbation contract: the
// monitored run's virtual execution time equals the unmonitored wide-area
// run's, because sampling and publishing are pure reads in kernel context.
func TestMonitorDoesNotPerturbResults(t *testing.T) {
	rep := monitorRun(t, nil)
	plain, err := RunKnapsack(KnapsackConfig{Capacity: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wide time.Duration
	for _, row := range plain.Rows {
		if row.System == "Wide-area Cluster (use Nexus Proxy)" {
			wide = row.Exec
		}
	}
	if rep.Elapsed != wide {
		t.Fatalf("monitored exec %v != unmonitored %v", rep.Elapsed, wide)
	}
}

func TestDefaultMonitorFilter(t *testing.T) {
	cases := map[string]bool{
		"cluster.hosts_up":              true,
		"relay.rwcp-outer.bytes":        true,
		"rmf.requeues":                  true,
		"hbm.transitions":               true,
		"link.rwcp-outer>etl-gw.bytes":  true,
		"link.rwcp-lan>rwcp-gw.busy_ns": true,
		"link.compas0>compas-sw.bytes":  false,
		"mpi.rank0.sends":               false,
		"link.rwcp-sun>rwcp-lan.queue":  false,
		"link.etl-gw>etl-lan.bytes":     true,
	}
	for name, want := range cases {
		if got := DefaultMonitorFilter(name); got != want {
			t.Errorf("filter(%q) = %v, want %v", name, got, want)
		}
	}
}
