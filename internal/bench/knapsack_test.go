package bench

import (
	"strings"
	"testing"

	"nxcluster/internal/cluster"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mpi"
)

// TestKnapsackReportShape runs the full Table 4/5/6 sweep on a reduced
// problem and checks the paper's qualitative results.
func TestKnapsackReportShape(t *testing.T) {
	r, err := RunKnapsack(KnapsackConfig{Capacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Every parallel system beats the sequential baseline.
	for _, row := range r.Rows {
		if row.Speedup <= 1.0 {
			t.Errorf("%s: speedup %.2f <= 1", row.System, row.Speedup)
		}
	}
	// The wide-area cluster (20 procs) beats the local-area cluster (12).
	var local, wide float64
	for _, row := range r.Rows {
		switch row.System {
		case "Local-area Cluster":
			local = row.Speedup
		case "Wide-area Cluster (use Nexus Proxy)":
			wide = row.Speedup
		}
	}
	if wide <= local {
		t.Errorf("wide-area speedup %.2f <= local-area %.2f", wide, local)
	}
	// The paper's headline: proxy overhead on the wide-area run is small
	// (~3.5% there; allow up to 15% on the reduced problem).
	oh := r.ProxyOverhead()
	if oh > 0.15 {
		t.Errorf("proxy overhead = %.1f%%, want small", oh*100)
	}
	if oh < -0.15 {
		t.Errorf("proxy overhead = %.1f%% (negative beyond noise)", oh*100)
	}
	// Tables 5/6 inputs exist and balance: all slaves stole work.
	if r.Local == nil || r.Wide == nil {
		t.Fatal("missing instrumented local/wide results")
	}
	for _, st := range r.Wide.Stats[1:] {
		if st.Steals == 0 {
			t.Errorf("wide-area slave %d (%s) never stole", st.Rank, st.Name)
		}
	}
	// Load balance: within each wide-area cluster group, max/min traversed
	// stay within an order of magnitude (the paper's Table 6 shows tight
	// balance from fine-grained stealing).
	for _, g := range groupStats(r.Wide, func(st knapsack.RankStats) int64 { return st.Traversed }) {
		if g.Min > 0 && float64(g.Max)/float64(g.Min) > 10 {
			t.Errorf("%s traversed imbalance max/min = %d/%d", g.Cluster, g.Max, g.Min)
		}
	}

	out4, out5, out6 := FormatTable4(r), FormatTable5(r), FormatTable6(r)
	for _, s := range []string{"Table 4", "COMPaS", "ETL-O2K", "Local-area", "Wide-area", "speedup"} {
		if !strings.Contains(out4, s) {
			t.Errorf("Table4 output missing %q", s)
		}
	}
	for _, s := range []string{"Table 5", "Master", "COMPaS"} {
		if !strings.Contains(out5, s) {
			t.Errorf("Table5 output missing %q", s)
		}
	}
	for _, s := range []string{"Table 6", "Master", "RWCP-Sun"} {
		if !strings.Contains(out6, s) {
			t.Errorf("Table6 output missing %q", s)
		}
	}
	t.Logf("\n%s\n%s\n%s", out4, out5, out6)
}

func TestWideHierarchicalCompletes(t *testing.T) {
	res, err := RunWideHierarchical(KnapsackConfig{Capacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	// All three clusters contributed.
	clusters := map[string]int64{}
	for _, st := range res.Stats {
		clusters[clusterOf(st.Name)] += st.Traversed
	}
	for _, cl := range []string{"RWCP-Sun", "COMPaS", "ETL-O2K"} {
		if clusters[cl] == 0 {
			t.Errorf("cluster %s did no work", cl)
		}
	}
}

// TestSecuredProxyDoesNotChangeResults: running the wide-area system with
// authenticated relay control channels costs only connection setup, so the
// computation's outputs are identical and the execution time very close.
func TestSecuredProxyDoesNotChangeResults(t *testing.T) {
	open := KnapsackConfig{Capacity: 3}
	secured := KnapsackConfig{Capacity: 3}
	secured.Options.Secret = "site-secret"
	in := knapsack.Normalized(50, 3)
	runWide := func(cfg KnapsackConfig) *knapsack.Result {
		res, err := runOn(cfg, in, func(tb *cluster.Testbed) []mpi.Placement {
			return tb.Placements(cluster.SystemWide, true)
		}, true)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runWide(open), runWide(secured)
	if a.Best != b.Best || a.TotalTraversed != b.TotalTraversed {
		t.Fatalf("secured run diverged: best %d/%d nodes %d/%d",
			a.Best, b.Best, a.TotalTraversed, b.TotalTraversed)
	}
	ratio := float64(b.Elapsed) / float64(a.Elapsed)
	if ratio > 1.10 {
		t.Fatalf("authentication cost %.1f%% execution time", (ratio-1)*100)
	}
}
