package bench

import (
	"fmt"
	"strings"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/gass"
	"nxcluster/internal/gridftp"
	"nxcluster/internal/proxy"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

// The gridftp sweep runs on a modernized wide-area path rather than the
// paper's 1.5 Mbps IMnet: at 187 KB/s and 3.5 ms the bandwidth-delay product
// is under one segment, so TCP congestion control never engages and parallel
// streams have nothing to recover. The constants below model the kind of
// path GridFTP was designed for — high bandwidth, long RTT, lossy — while
// the topology, firewall, and relay daemons stay the paper's Figure 5.
const (
	// TransferWANBandwidth is the sweep's wide-area bandwidth (8 MB/s).
	TransferWANBandwidth = int64(8_000_000)
	// TransferWANLatency is the sweep's one-way wide-area latency. With the
	// bandwidth above, the BDP (~400 KB) exceeds one connection's 256 KiB
	// flow-control window, so a single stream cannot fill the pipe even
	// loss-free.
	TransferWANLatency = 25 * time.Millisecond
	// TransferRelayPerBuffer keeps the relay pipeline faster than the WAN so
	// the wide-area link, not relay CPU, is the measured bottleneck.
	TransferRelayPerBuffer = 200 * time.Microsecond
)

// TransferConfig parameterizes the parallel-stream transfer sweep.
type TransferConfig struct {
	// FileSize is the bytes moved per point (default 2 MiB).
	FileSize int
	// Streams are the parallel data-channel counts swept (default 1,2,4,8).
	Streams []int
	// LossRates are the WAN packet-loss probabilities swept
	// (default 0, 0.005, 0.02).
	LossRates []float64
	// Seed seeds the flow model's loss process (default 1); every point
	// uses the same seed so curves differ only by configuration.
	Seed uint64
	// Workers bounds sweep parallelism (0 = GOMAXPROCS). Points run on
	// independent kernels, so parallelism cannot change results.
	Workers int
}

func (c TransferConfig) withDefaults() TransferConfig {
	if c.FileSize <= 0 {
		c.FileSize = 2 << 20
	}
	if len(c.Streams) == 0 {
		c.Streams = []int{1, 2, 4, 8}
	}
	if len(c.LossRates) == 0 {
		c.LossRates = []float64{0, 0.005, 0.02}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TransferPoint is one measured transfer: a file pulled from ETL-Sun to
// RWCP-Sun through the Nexus Proxy relays over the congestion-modeled WAN.
type TransferPoint struct {
	// Streams is the parallel data-channel count.
	Streams int
	// LossRate is the WAN loss probability.
	LossRate float64
	// Bytes is the file size moved.
	Bytes int64
	// Elapsed is the virtual transfer time.
	Elapsed time.Duration
	// Goodput is application bytes per virtual second.
	Goodput float64
	// Drops, Retransmits and Cuts are the network's flow-model counters.
	Drops, Retransmits, Cuts int64
}

// RunTransfer sweeps parallel-stream count against WAN loss rate. Each point
// boots a fresh Figure 5 testbed with the flow model enabled, serves a file
// from ETL-Sun over gridftp, and pulls it from RWCP-Sun with every control
// and data channel relayed through the firewall proxy.
func RunTransfer(cfg TransferConfig) ([]TransferPoint, error) {
	cfg = cfg.withDefaults()
	points := make([]TransferPoint, len(cfg.LossRates)*len(cfg.Streams))
	err := RunParallel(len(points), cfg.Workers, func(i int) error {
		loss := cfg.LossRates[i/len(cfg.Streams)]
		streams := cfg.Streams[i%len(cfg.Streams)]
		pt, err := transferPoint(cfg, loss, streams)
		if err != nil {
			return fmt.Errorf("loss %.3f streams %d: %w", loss, streams, err)
		}
		points[i] = pt
		return nil
	})
	return points, err
}

// transferPoint measures one (loss, streams) combination on its own kernel.
func transferPoint(cfg TransferConfig, loss float64, streams int) (TransferPoint, error) {
	tb := cluster.NewTestbed(cluster.Options{
		RelayPerBuffer: TransferRelayPerBuffer,
		WANLatency:     TransferWANLatency,
		WANBandwidth:   TransferWANBandwidth,
		WANLossRate:    loss,
		FlowModel:      &simnet.FlowConfig{Seed: cfg.Seed},
	})
	defer tb.K.Shutdown()

	store := gass.NewStore()
	data := make([]byte, cfg.FileSize)
	for i := range data {
		data[i] = byte(i*7 + i>>10)
	}
	if err := store.Put("/bulk/file.bin", data); err != nil {
		return TransferPoint{}, err
	}
	// ETL hosts are outside the firewall and bind directly; only the client
	// side relays through the proxy.
	srv := gridftp.NewServer(store, proxy.Dialer{})
	addr := make(chan string, 1)
	tb.Host(cluster.ETLSun).SpawnDaemonOn("gridftp-server", func(env transport.Env) {
		_ = srv.Serve(env, 7040, func(a string) { addr <- a })
	})

	pt := TransferPoint{Streams: streams, LossRate: loss}
	var benchErr error
	tb.Host(cluster.RWCPSun).SpawnOn("gridftp-client", func(env transport.Env) {
		for len(addr) == 0 {
			env.Sleep(time.Millisecond)
		}
		url := gridftp.URL(<-addr, "/bulk/file.bin")
		cl := &gridftp.Client{Dialer: tb.Dialer(), Streams: streams}
		got, stats, err := cl.Get(env, url)
		if err != nil {
			benchErr = err
			return
		}
		if len(got) != len(data) {
			benchErr = fmt.Errorf("received %d bytes, want %d", len(got), len(data))
			return
		}
		pt.Bytes = stats.Bytes
		pt.Elapsed = stats.Elapsed
		pt.Goodput = stats.Goodput()
	})
	if err := tb.K.Run(); err != nil {
		return pt, err
	}
	if benchErr != nil {
		return pt, benchErr
	}
	fs := tb.Net.FlowStats()
	pt.Drops, pt.Retransmits, pt.Cuts = fs.Drops, fs.Retransmits, fs.Cuts
	return pt, nil
}

// FormatTransfer renders the sweep as throughput-vs-streams curves, one
// block per loss rate.
func FormatTransfer(points []TransferPoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "GridFTP-style parallel-stream transfer through the Nexus Proxy")
	fmt.Fprintf(&b, "WAN %s one-way, %s, TCP-Reno flow model\n",
		TransferWANLatency, fmtBandwidth(float64(TransferWANBandwidth)))
	var lastLoss float64 = -1
	for _, pt := range points {
		if pt.LossRate != lastLoss {
			fmt.Fprintf(&b, "loss %.2f%%\n", pt.LossRate*100)
			fmt.Fprintf(&b, "  %8s %12s %12s %8s %8s %6s\n",
				"streams", "elapsed", "goodput", "drops", "retrans", "cuts")
			lastLoss = pt.LossRate
		}
		fmt.Fprintf(&b, "  %8d %12s %12s %8d %8d %6d\n",
			pt.Streams, pt.Elapsed, fmtBandwidth(pt.Goodput),
			pt.Drops, pt.Retransmits, pt.Cuts)
	}
	return b.String()
}
