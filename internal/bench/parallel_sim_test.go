package bench

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mpi"
	"nxcluster/internal/obs"
	"nxcluster/internal/obs/timeseries"
	"nxcluster/internal/simnet"
)

// gridFaults is the validation fault plan: a WAN outage on the ETL leg plus
// a crash window on ETL-Sun (which hosts no ranks, so the workload survives
// while the host-fault machinery runs on a non-owning partition boundary).
func gridFaults() *simnet.FaultPlan {
	return (&simnet.FaultPlan{}).
		LinkOutage(cluster.RWCPOuter, "etl-gw", 50*time.Millisecond, 120*time.Millisecond).
		CrashWindow(cluster.ETLSun, 30*time.Millisecond, 200*time.Millisecond)
}

// TestGridKnapsackParallelMatchesOracle is the tentpole contract: the
// partitioned parallel kernels produce bit-identical virtual-time results to
// the monolithic sequential oracle, at every worker count, with the proxied
// wide-area data path crossing the partition boundary.
func TestGridKnapsackParallelMatchesOracle(t *testing.T) {
	cfg := GridConfig{Capacity: 2, Options: cluster.Options{ExtraSites: 1}, UseProxy: true}
	want, err := RunGridKnapsack(cfg, 0)
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	if want.Best != bestOf(knapsack.Normalized(50, 2), 2) {
		t.Fatalf("oracle best = %d, want %d", want.Best, bestOf(knapsack.Normalized(50, 2), 2))
	}
	for _, sites := range []int{1, 2, 4} {
		got, err := RunGridKnapsack(cfg, sites)
		if err != nil {
			t.Fatalf("%d site-workers: %v", sites, err)
		}
		if got.Elapsed != want.Elapsed || got.Best != want.Best || got.Traversed != want.Traversed {
			t.Errorf("%d site-workers: elapsed %v best %d traversed %d, oracle %v/%d/%d",
				sites, got.Elapsed, got.Best, got.Traversed, want.Elapsed, want.Best, want.Traversed)
		}
	}
}

// TestGridKnapsackFaultsMatchOracle extends the oracle contract to a faulted
// run: with the WAN flapping and a host crash-restarting, the partitioned
// run still reproduces the oracle's virtual time exactly.
func TestGridKnapsackFaultsMatchOracle(t *testing.T) {
	cfg := GridConfig{Capacity: 2, Options: cluster.Options{ExtraSites: 1, OpenFirewall: true}, Plan: gridFaults()}
	want, err := RunGridKnapsack(cfg, 0)
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	for _, sites := range []int{1, 2} {
		got, err := RunGridKnapsack(cfg, sites)
		if err != nil {
			t.Fatalf("%d site-workers: %v", sites, err)
		}
		if got.Elapsed != want.Elapsed || got.Best != want.Best || got.Traversed != want.Traversed {
			t.Errorf("%d site-workers: elapsed %v best %d traversed %d, oracle %v/%d/%d",
				sites, got.Elapsed, got.Best, got.Traversed, want.Elapsed, want.Best, want.Traversed)
		}
	}
}

// TestParallelInvarianceMatrix sweeps {fault} x {flow} x {trace} and asserts
// the partitioned run's virtual results — elapsed time, knapsack optimum,
// traversed nodes, and per-partition event-trace hashes — are identical at
// 1, 2 and 4 site-workers. Flow-model cells are worker-count-invariant but
// not oracle-identical (cross-site congestion feedback is quantized to the
// lookahead window), which is exactly what this matrix pins down.
func TestParallelInvarianceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("24-run validation matrix")
	}
	for _, fault := range []bool{false, true} {
		for _, flow := range []bool{false, true} {
			for _, trace := range []bool{false, true} {
				name := fmt.Sprintf("fault=%t/flow=%t/trace=%t", fault, flow, trace)
				t.Run(name, func(t *testing.T) {
					cfg := GridConfig{
						Capacity: 2,
						Options:  cluster.Options{ExtraSites: 2, OpenFirewall: true, Seed: 11},
						Trace:    trace,
					}
					if flow {
						cfg.Options.FlowModel = &simnet.FlowConfig{Seed: 7}
						cfg.Options.WANLossRate = 0.01
					}
					if fault {
						cfg.Plan = gridFaults()
					}
					var base *GridResult
					for _, sites := range []int{1, 2, 4} {
						r, err := RunGridKnapsack(cfg, sites)
						if err != nil {
							t.Fatalf("%d site-workers: %v", sites, err)
						}
						if r.Best != bestOf(knapsack.Normalized(50, 2), 2) {
							t.Errorf("%d site-workers: best = %d, want optimum %d",
								sites, r.Best, bestOf(knapsack.Normalized(50, 2), 2))
						}
						if base == nil {
							base = r
							continue
						}
						if r.Elapsed != base.Elapsed || r.Best != base.Best || r.Traversed != base.Traversed {
							t.Errorf("%d site-workers: elapsed %v best %d traversed %d, 1-worker %v/%d/%d",
								sites, r.Elapsed, r.Best, r.Traversed, base.Elapsed, base.Best, base.Traversed)
						}
						if len(r.TraceHashes) != len(base.TraceHashes) {
							t.Fatalf("%d site-workers: %d trace hashes, want %d",
								sites, len(r.TraceHashes), len(base.TraceHashes))
						}
						for i := range r.TraceHashes {
							if r.TraceHashes[i] != base.TraceHashes[i] {
								t.Errorf("%d site-workers: partition %d trace %#x, 1-worker %#x",
									sites, i, r.TraceHashes[i], base.TraceHashes[i])
							}
						}
					}
				})
			}
		}
	}
}

// TestKnapsackSweepParallelMatchesOracle runs the complete Table 4 sweep —
// all five systems plus the baseline — in parallel-DES mode and asserts the
// formatted Tables 4/5/6 hash identically to the monolithic sweep: the
// golden outputs of the repository's headline experiment do not depend on
// the execution mode.
func TestKnapsackSweepParallelMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Table 4 sweeps")
	}
	sweep := func(parallelSites int) uint64 {
		t.Helper()
		rep, err := RunKnapsack(KnapsackConfig{Capacity: 2, Options: cluster.Options{ParallelSites: parallelSites}})
		if err != nil {
			t.Fatalf("sweep (ParallelSites=%d): %v", parallelSites, err)
		}
		h := fnv.New64a()
		fmt.Fprint(h, FormatTable4(rep))
		fmt.Fprint(h, FormatTable5(rep))
		fmt.Fprint(h, FormatTable6(rep))
		return h.Sum64()
	}
	mono, par := sweep(0), sweep(2)
	if mono != par {
		t.Errorf("table hashes diverged: monolithic %#x, parallel %#x", mono, par)
	}
}

// monitoredGridSeriesHash runs the wide-grid workload with a per-partition
// monitoring plane (one observer and sampler per site kernel) and hashes
// every partition's sampled series.
func monitoredGridSeriesHash(t *testing.T, sites int) uint64 {
	t.Helper()
	tb := cluster.NewTestbed(cluster.Options{ExtraSites: 1, OpenFirewall: true, ParallelSites: sites})
	defer tb.Shutdown()
	samplers := make([]*timeseries.Sampler, len(tb.Nets))
	for i, n := range tb.Nets {
		o := obs.New()
		n.Obs = o
		samplers[i] = timeseries.NewSampler(tb.Group.Kernel(i), 50*time.Millisecond, o.Metrics())
		samplers[i].Start()
	}
	in := knapsack.Normalized(50, 2)
	w := mpi.NewWorld(tb.GridPlacements(false))
	w.Launch(func(c *mpi.Comm) error {
		_, err := knapsack.Run(c, in, knapsack.DefaultParams())
		return err
	})
	if err := tb.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("world: %v", err)
	}
	h := fnv.New64a()
	for i, s := range samplers {
		st := s.Store()
		for _, name := range st.Names() {
			fmt.Fprintf(h, "p%d %s", i, name)
			for _, v := range st.Series(name).Values(st.Windows()) {
				fmt.Fprintf(h, " %d", v)
			}
			h.Write([]byte{'\n'})
		}
	}
	return h.Sum64()
}

// TestParallelMonitorSeriesInvariant asserts the PR 4 monitoring plane stays
// deterministic under parallel execution: per-partition samplers record
// identical series regardless of the site-worker count.
func TestParallelMonitorSeriesInvariant(t *testing.T) {
	base := monitoredGridSeriesHash(t, 1)
	for _, sites := range []int{2, 4} {
		if got := monitoredGridSeriesHash(t, sites); got != base {
			t.Errorf("%d site-workers: series hash %#x, 1-worker %#x", sites, got, base)
		}
	}
}
