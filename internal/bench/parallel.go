package bench

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunParallel executes n independent jobs across up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). Every job runs to completion even when
// earlier jobs fail; the per-job errors are aggregated in job-index order
// with errors.Join, so a failed sweep reports every broken run rather than
// an arbitrary first one.
//
// This is the experiment sweep harness: each job builds its own testbed on
// its own simulation kernel, so runs that execute concurrently on host
// threads remain bit-for-bit deterministic in virtual time — the kernels
// share nothing. Callers store results into per-index slots, which keeps
// result ordering deterministic regardless of completion order.
//
// With workers == 1 (or a single job) the jobs run inline on the calling
// goroutine in index order — the sequential semantics the determinism tests
// compare against — with the same error aggregation.
func RunParallel(n, workers int, job func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = job(i)
		}
		return errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
