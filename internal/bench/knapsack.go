package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mpi"
)

// KnapsackConfig parameterizes the Tables 4-6 experiment.
type KnapsackConfig struct {
	// Items is the problem size; like the paper we default to 50 items.
	Items int
	// Capacity bounds the knapsack in unit weights and thereby the tree
	// size (see knapsack.Normalized). The default 4 traverses ~2.6 million
	// nodes so a full five-system sweep finishes in seconds of host time;
	// 5 gives ~20.6 million and 6 ~136 million for longer, closer-to-paper
	// runs (the paper traverses billions).
	Capacity int
	// Params are the self-scheduler knobs (zero value = tuned defaults).
	Params knapsack.Params
	// Options are testbed options.
	Options cluster.Options
	// Workers bounds the sweep's host-side parallelism: each of the six
	// runs (baseline + five systems) executes on its own kernel, so they
	// can run on separate host threads without affecting virtual-time
	// results. 0 selects GOMAXPROCS; 1 runs them sequentially.
	Workers int
}

func (c KnapsackConfig) withDefaults() KnapsackConfig {
	if c.Items <= 0 {
		c.Items = 50
	}
	if c.Capacity <= 0 {
		c.Capacity = 4
	}
	if c.Params.Interval == 0 && c.Params.StealUnit == 0 {
		c.Params = knapsack.DefaultParams()
	}
	return c
}

// Table4Row is one system's execution time and speedup.
type Table4Row struct {
	// System is the paper's system name.
	System string
	// Processors in the system.
	Processors int
	// Exec is the virtual execution time.
	Exec time.Duration
	// Speedup relative to the sequential RWCP-Sun baseline.
	Speedup float64
	// Result carries the run's full statistics (nil for the baseline).
	Result *knapsack.Result
}

// KnapsackReport aggregates everything Tables 4, 5 and 6 need.
type KnapsackReport struct {
	// Config echoes the experiment parameters.
	Config KnapsackConfig
	// SeqTime is the sequential baseline on RWCP-Sun.
	SeqTime time.Duration
	// SeqTraversed is the baseline's node count.
	SeqTraversed int64
	// Rows holds one entry per Table 4 line, in the paper's order.
	Rows []Table4Row
	// Local and Wide keep the instrumented runs Tables 5/6 derive from.
	Local *knapsack.Result
	Wide  *knapsack.Result
}

// ProxyOverhead returns the relative execution-time overhead of the proxy on
// the wide-area cluster (the paper measures ~3.5%).
func (r *KnapsackReport) ProxyOverhead() float64 {
	var with, without time.Duration
	for _, row := range r.Rows {
		switch row.System {
		case "Wide-area Cluster (use Nexus Proxy)":
			with = row.Exec
		case "Wide-area Cluster (not use Nexus Proxy)":
			without = row.Exec
		}
	}
	if with == 0 || without == 0 {
		return 0
	}
	return float64(with-without) / float64(without)
}

// RunKnapsack executes the complete Table 4 sweep: sequential baseline, the
// four Table 3 systems, and the wide-area system again without the proxy
// (for which the firewall is temporarily opened, as in the paper).
func RunKnapsack(cfg KnapsackConfig) (*KnapsackReport, error) {
	cfg = cfg.withDefaults()
	in := knapsack.Normalized(cfg.Items, cfg.Capacity)
	wantNodes := knapsack.NormalizedTreeNodes(cfg.Items, cfg.Capacity)
	wantBest := bestOf(in, cfg.Capacity)
	report := &KnapsackReport{Config: cfg}

	type entry struct {
		name     string
		system   cluster.System
		useProxy bool
		openFW   bool
	}
	entries := []entry{
		{"COMPaS", cluster.SystemCompas, false, false},
		{"ETL-O2K", cluster.SystemETLO2K, false, false},
		{"Local-area Cluster", cluster.SystemLocal, true, false},
		{"Wide-area Cluster (use Nexus Proxy)", cluster.SystemWide, true, false},
		{"Wide-area Cluster (not use Nexus Proxy)", cluster.SystemWide, false, true},
	}

	// All six runs (the sequential baseline at slot 0, the Table 3 systems
	// after it) are independent simulations on private kernels; fan them out
	// across host threads and aggregate by slot for deterministic ordering.
	results := make([]*knapsack.Result, len(entries)+1)
	err := RunParallel(len(entries)+1, cfg.Workers, func(i int) error {
		if i == 0 {
			// Sequential baseline on RWCP-Sun: a single-rank parallel run
			// degenerates to the pure solver loop.
			res, err := runOn(cfg, in, func(tb *cluster.Testbed) []mpi.Placement {
				return tb.SequentialPlacement()
			}, false)
			if err != nil {
				return fmt.Errorf("bench: sequential baseline: %w", err)
			}
			results[0] = res
			return nil
		}
		e := entries[i-1]
		c := cfg
		c.Options.OpenFirewall = c.Options.OpenFirewall || e.openFW
		res, err := runOn(c, in, func(tb *cluster.Testbed) []mpi.Placement {
			return tb.Placements(e.system, e.useProxy)
		}, e.useProxy)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", e.name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	report.SeqTime = results[0].Elapsed
	report.SeqTraversed = results[0].TotalTraversed

	for i, e := range entries {
		res := results[i+1]
		if res.Best != wantBest {
			return nil, fmt.Errorf("bench: %s found %d, want %d", e.name, res.Best, wantBest)
		}
		if res.TotalTraversed != wantNodes {
			return nil, fmt.Errorf("bench: %s traversed %d nodes, want %d",
				e.name, res.TotalTraversed, wantNodes)
		}
		row := Table4Row{
			System:     e.name,
			Processors: e.system.Processors(),
			Exec:       res.Elapsed,
			Speedup:    float64(report.SeqTime) / float64(res.Elapsed),
			Result:     res,
		}
		report.Rows = append(report.Rows, row)
		switch e.name {
		case "Local-area Cluster":
			report.Local = res
		case "Wide-area Cluster (use Nexus Proxy)":
			report.Wide = res
		}
	}
	return report, nil
}

// bestOf computes the optimum of a unit-weight instance: the top `cap`
// profits.
func bestOf(in *knapsack.Instance, cap int) int64 {
	profits := make([]int64, 0, len(in.Items))
	for _, it := range in.Items {
		profits = append(profits, it.Profit)
	}
	sort.Slice(profits, func(i, j int) bool { return profits[i] > profits[j] })
	var s int64
	for i := 0; i < cap && i < len(profits); i++ {
		s += profits[i]
	}
	return s
}

// runOn executes one knapsack run on a fresh testbed.
func runOn(cfg KnapsackConfig, in *knapsack.Instance, place func(*cluster.Testbed) []mpi.Placement, proxied bool) (*knapsack.Result, error) {
	tb := cluster.NewTestbed(cfg.Options)
	defer tb.Shutdown()
	w := mpi.NewWorld(place(tb))
	var res *knapsack.Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := knapsack.Run(c, in, cfg.Params)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err := tb.Run(); err != nil {
		return nil, err
	}
	if err := w.Err(); err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("no result from master")
	}
	return res, nil
}

// clusterOf maps a rank's host name to its paper cluster label.
func clusterOf(host string) string {
	switch {
	case strings.HasPrefix(host, "compas"):
		return "COMPaS"
	case host == cluster.ETLO2K:
		return "ETL-O2K"
	case host == cluster.ETLSun:
		return "ETL-Sun"
	case strings.HasPrefix(host, "grid"):
		// grid3-o2k -> GRID3
		return strings.ToUpper(strings.SplitN(host, "-", 2)[0])
	default:
		return "RWCP-Sun"
	}
}

// GroupStat is a per-cluster max/min/average triple, as Tables 5 and 6
// report.
type GroupStat struct {
	Cluster string
	Max     int64
	Min     int64
	Avg     float64
	Count   int
}

// groupStats aggregates a per-rank metric by cluster, excluding the master
// (rank 0), which the paper reports separately.
func groupStats(res *knapsack.Result, metric func(knapsack.RankStats) int64) []GroupStat {
	byCluster := make(map[string]*GroupStat)
	for _, st := range res.Stats[1:] {
		cl := clusterOf(st.Name)
		g := byCluster[cl]
		if g == nil {
			g = &GroupStat{Cluster: cl, Min: 1<<63 - 1}
			byCluster[cl] = g
		}
		v := metric(st)
		if v > g.Max {
			g.Max = v
		}
		if v < g.Min {
			g.Min = v
		}
		g.Avg += float64(v)
		g.Count++
	}
	var out []GroupStat
	for _, g := range byCluster {
		g.Avg /= float64(g.Count)
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cluster < out[j].Cluster })
	return out
}

// FormatTable3 prints the testbed descriptions.
func FormatTable3() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 3. Experimental Testbed")
	for _, s := range []cluster.System{cluster.SystemCompas, cluster.SystemETLO2K, cluster.SystemLocal, cluster.SystemWide} {
		fmt.Fprintf(&b, "%-20s %s\n", s.String(), s.Describe())
	}
	return b.String()
}

// FormatTable4 renders the execution time / speedup table.
func FormatTable4(r *KnapsackReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4. Execution time for the 0-1 knapsack problem (%d items, capacity %d, %d nodes)\n",
		r.Config.Items, r.Config.Capacity, knapsack.NormalizedTreeNodes(r.Config.Items, r.Config.Capacity))
	fmt.Fprintf(&b, "%-42s %6s %18s %9s\n", "System", "procs", "execution time", "speedup")
	fmt.Fprintf(&b, "%-42s %6d %18s %9s\n", "RWCP-Sun (sequential baseline)", 1, fmtSeconds(r.SeqTime), "1.00")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-42s %6d %18s %9.2f\n", row.System, row.Processors, fmtSeconds(row.Exec), row.Speedup)
	}
	fmt.Fprintf(&b, "proxy overhead on wide-area cluster: %.1f%%\n", r.ProxyOverhead()*100)
	return b.String()
}

// FormatTable5 renders steal-request statistics for the local- and
// wide-area runs.
func FormatTable5(r *KnapsackReport) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 5. Number of steals")
	fmt.Fprintf(&b, "%-22s %10s  %s\n", "System", "Master", "per-cluster slave steals (max/min/avg)")
	for _, sys := range []struct {
		name string
		res  *knapsack.Result
	}{{"Local-area Cluster", r.Local}, {"Wide-area Cluster", r.Wide}} {
		if sys.res == nil {
			continue
		}
		fmt.Fprintf(&b, "%-22s %10d  ", sys.name, sys.res.MasterHandled)
		for _, g := range groupStats(sys.res, func(st knapsack.RankStats) int64 { return st.Steals }) {
			fmt.Fprintf(&b, "%s[%d/%d/%.1f] ", g.Cluster, g.Max, g.Min, g.Avg)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatTable6 renders traversed-node statistics.
func FormatTable6(r *KnapsackReport) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 6. Number of traversed nodes")
	fmt.Fprintf(&b, "%-22s %12s  %s\n", "System", "Master", "per-cluster slave nodes (max/min/avg)")
	for _, sys := range []struct {
		name string
		res  *knapsack.Result
	}{{"Local-area Cluster", r.Local}, {"Wide-area Cluster", r.Wide}} {
		if sys.res == nil {
			continue
		}
		fmt.Fprintf(&b, "%-22s %12d  ", sys.name, sys.res.Stats[0].Traversed)
		for _, g := range groupStats(sys.res, func(st knapsack.RankStats) int64 { return st.Traversed }) {
			fmt.Fprintf(&b, "%s[%d/%d/%.0f] ", g.Cluster, g.Max, g.Min, g.Avg)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func fmtSeconds(d time.Duration) string {
	return fmt.Sprintf("%.2f sec", d.Seconds())
}

// RunWideHierarchical runs the wide-area system with the two-level
// hierarchical scheduler (per-cluster sub-masters; see
// knapsack.RunHierarchical) for comparison against the paper's flat scheme.
func RunWideHierarchical(cfg KnapsackConfig) (*knapsack.Result, error) {
	cfg = cfg.withDefaults()
	in := knapsack.Normalized(cfg.Items, cfg.Capacity)
	tb := cluster.NewTestbed(cfg.Options)
	defer tb.Shutdown()
	w := mpi.NewWorld(tb.Placements(cluster.SystemWide, true))
	var res *knapsack.Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := knapsack.RunHierarchical(c, in, cfg.Params, clusterOf)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err := tb.Run(); err != nil {
		return nil, err
	}
	if err := w.Err(); err != nil {
		return nil, err
	}
	if res.TotalTraversed != knapsack.NormalizedTreeNodes(cfg.Items, cfg.Capacity) {
		return nil, fmt.Errorf("bench: hierarchical run traversed %d nodes, want %d",
			res.TotalTraversed, knapsack.NormalizedTreeNodes(cfg.Items, cfg.Capacity))
	}
	return res, nil
}
