package bench

import (
	"fmt"
	"strings"
	"time"

	"nxcluster/internal/fleet"
	"nxcluster/internal/obs"
	"nxcluster/internal/obs/causal"
)

// FleetReport is one fleet run plus the harness-side throughput figures: the
// engine reports virtual-time metrics only, and the harness wraps them with
// the wall clock to get simulated events and jobs per host second — the
// numbers that say whether a 10k-host / 1M-job run fits in minutes.
type FleetReport struct {
	Config fleet.Config
	Result fleet.Result
	// Wall is host time spent inside Engine.Run (build excluded).
	Wall time.Duration
	// EventsPerSec and JobsPerSec are simulated work per wall second.
	EventsPerSec float64
	JobsPerSec   float64
	// CausalP50/P99 are job-span percentiles from the causal layer, when the
	// run sampled traces (TraceSample > 0); zero otherwise. They cross-check
	// the engine's own latency accounting through the independent trace path.
	CausalP50 time.Duration
	CausalP99 time.Duration
}

// RunFleet builds and runs one fleet workload, timing the run itself. When
// cfg.TraceSample > 0 and cfg.Obs is nil, an observer is attached so the
// causal percentiles come back filled.
func RunFleet(cfg fleet.Config) (*FleetReport, error) {
	if cfg.TraceSample > 0 && cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	e, err := fleet.New(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := e.Run(); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	r := &FleetReport{Config: cfg, Result: e.Result(), Wall: wall}
	if secs := wall.Seconds(); secs > 0 {
		r.EventsPerSec = float64(r.Result.Events) / secs
		r.JobsPerSec = float64(r.Result.Jobs) / secs
	}
	if cfg.TraceSample > 0 && cfg.Obs != nil {
		f := causal.Build(cfg.Obs.Events())
		if durs := causal.SpanDurations(f, "fleet/job"); len(durs) > 0 {
			r.CausalP50 = causal.Percentile(durs, 50)
			r.CausalP99 = causal.Percentile(durs, 99)
		}
	}
	return r, nil
}

// cpusPerHost mirrors the engine's slot default so the summary header shows
// the stamped topology, not the raw (possibly zero) config field.
func cpusPerHost(cfg fleet.Config) int {
	if cfg.CPUsPerHost == 0 {
		return fleet.DefaultCPUsPerHost
	}
	return cfg.CPUsPerHost
}

// FormatFleet renders the summary table cmd/experiments prints: topology,
// throughput, and the latency profile.
func FormatFleet(r *FleetReport) string {
	var b strings.Builder
	res := r.Result
	fmt.Fprintf(&b, "Fleet run: %d sites x %d hosts (%d hosts, %d slots), %d jobs, seed %d\n",
		r.Config.Sites, r.Config.HostsPerSite, res.Hosts,
		res.Hosts*cpusPerHost(r.Config), res.Jobs, r.Config.Seed)
	fmt.Fprintf(&b, "  arrivals: %s at %.1f/s; sizes: %s (mean %s)\n",
		r.Config.Arrivals.Kind, r.Config.Arrivals.Rate,
		r.Config.Sizes.Kind, r.Config.Sizes.MeanDuration().Round(time.Millisecond))
	fmt.Fprintf(&b, "  virtual: makespan %s, %d events, %d publish ticks, dir %d entries, queued peak %d\n",
		res.Makespan.Round(time.Millisecond), res.Events, res.Ticks, res.DirEntries, res.QueuedPeak)
	fmt.Fprintf(&b, "  wall: %s  (%.2fM events/sec, %.0f jobs/sec)\n",
		r.Wall.Round(time.Millisecond), r.EventsPerSec/1e6, r.JobsPerSec)
	fmt.Fprintf(&b, "  job latency: mean %s  p50 %s  p99 %s  max %s\n",
		res.MeanLat.Round(time.Microsecond), res.P50Lat.Round(time.Microsecond),
		res.P99Lat.Round(time.Microsecond), res.MaxLat.Round(time.Microsecond))
	if r.CausalP50 > 0 {
		fmt.Fprintf(&b, "  causal job spans (1/%d sampled): p50 %s  p99 %s\n",
			r.Config.TraceSample, r.CausalP50.Round(time.Microsecond), r.CausalP99.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "  fingerprint: %016x\n", res.Fingerprint)
	return b.String()
}
