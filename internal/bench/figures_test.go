package bench

import (
	"strings"
	"testing"
)

func TestFigure1And5Render(t *testing.T) {
	f1, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "IMnet", "hops", "rwcp-sun"} {
		if !strings.Contains(f1, want) {
			t.Errorf("Figure1 missing %q:\n%s", want, f1)
		}
	}
	f5, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 5", "outer server", "nxport", "FIREWALL"} {
		if !strings.Contains(f5, want) {
			t.Errorf("Figure5 missing %q:\n%s", want, f5)
		}
	}
}

func TestFigure2Trace(t *testing.T) {
	out, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Figure 2",
		"authenticated", // gatekeeper auth
		"job request",   // step 1
		"Q client",      // step 2
		"selected",      // steps 3-4 (allocator)
		"accepted",      // step 5 (Q server)
		"done",          // step 6
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3Trace(t *testing.T) {
	out, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 3", "NXProxyConnect", "connect request", "relaying"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4Trace(t *testing.T) {
	out, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Figure 4", "NXProxyBind", "advertised", "splicing via inner",
		"inner: relaying", "NXProxyAccept",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure4 missing %q:\n%s", want, out)
		}
	}
}
