package bench

import (
	"runtime"
	"testing"

	"nxcluster/internal/obs"
	"nxcluster/internal/obs/causal"
)

// tracedTable4Events runs the wide-area (Table 4) knapsack system with an
// observer attached and returns the recorded event stream.
func tracedTable4Events(t *testing.T) []obs.Event {
	t.Helper()
	o := obs.New()
	if _, err := RunKnapsackTraced(KnapsackConfig{Capacity: 2, Workers: 1}, o); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	return o.Events()
}

// TestTable4JobsDecomposeExactly is the tentpole acceptance check: every
// job (MPI rank) in a Table 4 run yields a span tree whose critical-path
// decomposition telescopes bit-exactly to the job's elapsed virtual time.
// Decompose verifies the telescoping sum internally and errors on any
// mismatch, so a nil error per root IS the bit-exactness assertion.
func TestTable4JobsDecomposeExactly(t *testing.T) {
	f := causal.Build(tracedTable4Events(t))
	// SystemWide places 20 ranks (4 RWCP Sun + 8 compas + 8 ETL O2K); each
	// roots its own trace.
	if len(f.Traces) != 20 {
		t.Fatalf("traces = %d, want 20 (one per rank)", len(f.Traces))
	}
	jobs := 0
	for _, tr := range f.Traces {
		for _, root := range tr.Roots {
			if root.Label() != "mpi/rank" {
				continue
			}
			d, err := causal.Decompose(root)
			if err != nil {
				t.Fatalf("trace %d: %v", tr.ID, err)
			}
			if d.Total <= 0 {
				t.Errorf("trace %d: non-positive total %v", tr.ID, d.Total)
			}
			jobs++
		}
	}
	if jobs != 20 {
		t.Errorf("decomposed %d mpi/rank roots, want 20", jobs)
	}
	s := causal.Summarize(f)
	if len(s.Jobs) == 0 {
		t.Fatal("summary has no jobs")
	}
	// The solver leg must appear in the per-leg aggregate: the bulk of a
	// rank's life is the knap/solve span opened under it.
	found := false
	for _, l := range s.Legs {
		if l.Leg == "knap/solve" {
			found = true
		}
	}
	if !found {
		t.Errorf("per-leg aggregate missing knap/solve: %+v", s.Legs)
	}
}

// causalTraceHash hashes the JSONL export of a traced Table 4 run.
func causalTraceHash(t *testing.T) uint64 {
	t.Helper()
	o := obs.New()
	if _, err := RunKnapsackTraced(KnapsackConfig{Capacity: 2, Workers: 1}, o); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	return o.Hash()
}

// TestCausalTraceDeterministic pins double-run hash equality for the traced
// stream, including across host-parallelism settings: the causal fields
// (trace, parent) must be as deterministic as the event payloads.
func TestCausalTraceDeterministic(t *testing.T) {
	h1 := causalTraceHash(t)
	h2 := causalTraceHash(t)
	if h1 != h2 {
		t.Fatalf("double run diverged: %#x vs %#x", h1, h2)
	}
	prev := runtime.GOMAXPROCS(1)
	g1 := causalTraceHash(t)
	runtime.GOMAXPROCS(8)
	g8 := causalTraceHash(t)
	runtime.GOMAXPROCS(prev)
	if g1 != g8 {
		t.Errorf("trace diverged across GOMAXPROCS: %#x vs %#x", g1, g8)
	}
	if g1 != h1 {
		t.Errorf("trace diverged from baseline run: %#x vs %#x", g1, h1)
	}
}
