package bench

import (
	"fmt"
	"hash"
	"hash/fnv"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mpi"
	"nxcluster/internal/simnet"
)

// GridConfig parameterizes one wide-grid knapsack run: the Table 4 wide-area
// system extended with Options.ExtraSites extra grid sites, runnable on the
// monolithic oracle kernel or partitioned across site sub-kernels. It is the
// workload the conservative parallel-DES mode is validated and benchmarked
// on.
type GridConfig struct {
	// Items and Capacity size the knapsack instance (defaults 50 and 3).
	Items    int
	Capacity int
	// Params are the self-scheduler knobs (zero value = tuned defaults).
	Params knapsack.Params
	// Options are the testbed options. ParallelSites is overridden per run
	// by RunGridKnapsack's sites argument.
	Options cluster.Options
	// UseProxy routes RWCP-site ranks through the Nexus Proxy relays.
	UseProxy bool
	// Plan, when non-nil, is applied to the testbed before the run (to
	// every partition mirror in parallel mode).
	Plan *simnet.FaultPlan
	// Trace attaches a kernel trace hook per kernel and reports the event
	// interleaving as one FNV-64a hash per kernel.
	Trace bool
}

func (c GridConfig) withDefaults() GridConfig {
	if c.Items <= 0 {
		c.Items = 50
	}
	if c.Capacity <= 0 {
		c.Capacity = 3
	}
	if c.Params.Interval == 0 && c.Params.StealUnit == 0 {
		c.Params = knapsack.DefaultParams()
	}
	return c
}

// GridResult is one wide-grid run's outcome: the virtual-time results the
// determinism tests compare, plus the host wall-clock the speedup sweep
// measures.
type GridResult struct {
	// Elapsed is the solve's virtual execution time.
	Elapsed time.Duration
	// Best and Traversed are the knapsack optimum and total node count.
	Best      int64
	Traversed int64
	// TraceHashes holds one event-trace hash per kernel (partition order;
	// one entry on the monolithic kernel), when GridConfig.Trace is set.
	TraceHashes []uint64
	// Wall is the host time spent inside the kernel run.
	Wall time.Duration
	// Result carries the run's full statistics.
	Result *knapsack.Result
}

// RunGridKnapsack executes one wide-grid knapsack solve. sites selects the
// execution mode: 0 runs the monolithic sequential kernel (the oracle), >= 1
// partitions the testbed by site and runs the sub-kernels on that many
// worker threads with lookahead synchronization.
func RunGridKnapsack(cfg GridConfig, sites int) (*GridResult, error) {
	cfg = cfg.withDefaults()
	opts := cfg.Options
	opts.ParallelSites = sites
	tb := cluster.NewTestbed(opts)
	defer tb.Shutdown()

	var hashers []hash.Hash64
	if cfg.Trace {
		for _, k := range tb.Kernels() {
			h := fnv.New64a()
			hashers = append(hashers, h)
			k.Trace = func(at time.Duration, format string, args ...interface{}) {
				fmt.Fprintf(h, "%d ", at)
				fmt.Fprintf(h, format, args...)
				h.Write([]byte{'\n'})
			}
		}
	}
	if cfg.Plan != nil {
		if err := tb.ApplyPlan(cfg.Plan); err != nil {
			return nil, err
		}
	}

	in := knapsack.Normalized(cfg.Items, cfg.Capacity)
	w := mpi.NewWorld(tb.GridPlacements(cfg.UseProxy))
	var res *knapsack.Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := knapsack.Run(c, in, cfg.Params)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	start := time.Now()
	if err := tb.Run(); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	if err := w.Err(); err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("bench: grid run: no result from master")
	}
	gr := &GridResult{
		Elapsed:   res.Elapsed,
		Best:      res.Best,
		Traversed: res.TotalTraversed,
		Wall:      wall,
		Result:    res,
	}
	for _, h := range hashers {
		gr.TraceHashes = append(gr.TraceHashes, h.Sum64())
	}
	return gr, nil
}

// SpeedupRow is one speedup-sweep entry.
type SpeedupRow struct {
	// Label names the run ("sequential" or "site-workers-N").
	Label string
	// Sites is the site-worker count (0 = monolithic oracle).
	Sites int
	// Wall is the host time spent inside the kernel run.
	Wall time.Duration
	// Speedup is the sequential wall time divided by this run's.
	Speedup float64
}

// SpeedupReport is the parallel-DES speedup sweep: the same wide-grid
// workload run on the monolithic kernel and at each requested site-worker
// count, with wall-clock speedups relative to the sequential run.
type SpeedupReport struct {
	Config GridConfig
	// Elapsed is the (worker-count-invariant) virtual execution time.
	Elapsed time.Duration
	Rows    []SpeedupRow
}

// RunParallelSpeedup runs the speedup sweep. Every partitioned run's virtual
// results are checked against the sequential oracle when the flow model is
// off (the congestion model's cross-site feedback is barrier-quantized, so
// flow-model runs are worker-count-invariant but not oracle-identical).
func RunParallelSpeedup(cfg GridConfig, siteWorkers []int) (*SpeedupReport, error) {
	cfg = cfg.withDefaults()
	seq, err := RunGridKnapsack(cfg, 0)
	if err != nil {
		return nil, fmt.Errorf("bench: sequential grid run: %w", err)
	}
	rep := &SpeedupReport{
		Config:  cfg,
		Elapsed: seq.Elapsed,
		Rows:    []SpeedupRow{{Label: "sequential", Wall: seq.Wall, Speedup: 1}},
	}
	for _, sw := range siteWorkers {
		r, err := RunGridKnapsack(cfg, sw)
		if err != nil {
			return nil, fmt.Errorf("bench: grid run with %d site-workers: %w", sw, err)
		}
		if cfg.Options.FlowModel == nil &&
			(r.Elapsed != seq.Elapsed || r.Best != seq.Best || r.Traversed != seq.Traversed) {
			return nil, fmt.Errorf("bench: %d site-workers diverged from oracle: elapsed %v best %d traversed %d, want %v/%d/%d",
				sw, r.Elapsed, r.Best, r.Traversed, seq.Elapsed, seq.Best, seq.Traversed)
		}
		rep.Rows = append(rep.Rows, SpeedupRow{
			Label:   fmt.Sprintf("site-workers-%d", sw),
			Sites:   sw,
			Wall:    r.Wall,
			Speedup: float64(seq.Wall) / float64(r.Wall),
		})
	}
	return rep, nil
}

// FormatSpeedup renders the sweep as a table.
func FormatSpeedup(r *SpeedupReport) string {
	s := fmt.Sprintf("Parallel-DES speedup: wide-grid knapsack (%d items, capacity %d, %d extra sites, virtual exec %s)\n",
		r.Config.Items, r.Config.Capacity, r.Config.Options.ExtraSites, fmtSeconds(r.Elapsed))
	s += fmt.Sprintf("%-18s %14s %9s\n", "run", "wall clock", "speedup")
	for _, row := range r.Rows {
		s += fmt.Sprintf("%-18s %14s %9.2f\n", row.Label, row.Wall.Round(time.Millisecond), row.Speedup)
	}
	return s
}
