package bench

import (
	"testing"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mpi"
)

// TestKnapsackSurvivesWANOutage injects a WAN outage into the middle of a
// wide-area run: the IMnet link drops for 200 virtual seconds, stalling
// every RWCP<->ETL stream (steal requests, work batches), then comes back.
// The computation must complete with exactly the right totals — the
// reliable-stream layer stalls rather than corrupts — and the outage must
// cost wall-clock time.
func TestKnapsackSurvivesWANOutage(t *testing.T) {
	run := func(outage bool) *knapsack.Result {
		tb := cluster.NewTestbed(cluster.Options{})
		defer tb.K.Shutdown()
		in := knapsack.Normalized(50, 3)
		if outage {
			// Drop the IMnet at t=20s for 200s of virtual time.
			tb.K.After(20*time.Second, func() {
				if !tb.Net.SetLinkDown(cluster.RWCPOuter, "etl-gw") {
					t.Error("could not take IMnet down")
				}
			})
			tb.K.After(220*time.Second, func() {
				tb.Net.SetLinkUp(cluster.RWCPOuter, "etl-gw")
			})
		}
		w := mpi.NewWorld(tb.Placements(cluster.SystemWide, true))
		var res *knapsack.Result
		w.Launch(func(c *mpi.Comm) error {
			r, err := knapsack.Run(c, in, knapsack.DefaultParams())
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				res = r
			}
			return nil
		})
		if err := tb.K.Run(); err != nil {
			t.Fatal(err)
		}
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		return res
	}

	healthy := run(false)
	outage := run(true)
	want := knapsack.NormalizedTreeNodes(50, 3)
	if healthy.TotalTraversed != want || outage.TotalTraversed != want {
		t.Fatalf("work conservation broken: healthy=%d outage=%d want=%d",
			healthy.TotalTraversed, outage.TotalTraversed, want)
	}
	if healthy.Best != outage.Best {
		t.Fatalf("results diverge: %d vs %d", healthy.Best, outage.Best)
	}
	if outage.Elapsed <= healthy.Elapsed {
		t.Fatalf("outage run (%v) not slower than healthy run (%v)",
			outage.Elapsed, healthy.Elapsed)
	}
	// The outage costs at most roughly its duration plus recovery, not a
	// livelock: generous bound of outage length x3.
	if outage.Elapsed > healthy.Elapsed+600*time.Second {
		t.Fatalf("outage cost %v, implausibly large", outage.Elapsed-healthy.Elapsed)
	}
}
