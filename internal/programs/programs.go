// Package programs provides the demo executable registry shared by the
// real-TCP daemons (rmf-qserver, nxgatekeeper) and the examples. In the
// simulation jobs cannot be exec'ed binaries, so "executables" are
// registered Go functions; these are the stand-ins for the applications a
// year-2000 cluster would run.
package programs

import (
	"fmt"
	"strconv"
	"strings"

	"nxcluster/internal/knapsack"
	"nxcluster/internal/rmf"
	"nxcluster/internal/transport"
)

// Demo builds a registry with the standard demo programs:
//
//   - echo: writes its arguments and stdin to stdout;
//   - hostname: writes the executing resource's name;
//   - env: writes selected environment variables;
//   - knapsack-seq: solves a normalized knapsack instance sequentially;
//     args: items capacity [prune].
func Demo() *rmf.Registry {
	reg := rmf.NewRegistry()
	reg.Register("echo", func(env transport.Env, ctx *rmf.JobContext) error {
		fmt.Fprintf(&ctx.Stdout, "%s", strings.Join(ctx.Args, " "))
		if len(ctx.Stdin) > 0 {
			fmt.Fprintf(&ctx.Stdout, "\nstdin: %s", ctx.Stdin)
		}
		return nil
	})
	reg.Register("hostname", func(env transport.Env, ctx *rmf.JobContext) error {
		fmt.Fprintln(&ctx.Stdout, ctx.Resource)
		return nil
	})
	reg.Register("env", func(env transport.Env, ctx *rmf.JobContext) error {
		for _, k := range ctx.Args {
			fmt.Fprintf(&ctx.Stdout, "%s=%s\n", k, ctx.Env[k])
		}
		return nil
	})
	reg.Register("knapsack-seq", func(env transport.Env, ctx *rmf.JobContext) error {
		items, capacity := 30, 3
		if len(ctx.Args) > 0 {
			if n, err := strconv.Atoi(ctx.Args[0]); err == nil {
				items = n
			}
		}
		if len(ctx.Args) > 1 {
			if n, err := strconv.Atoi(ctx.Args[1]); err == nil {
				capacity = n
			}
		}
		in := knapsack.Normalized(items, capacity)
		var best, traversed int64
		if len(ctx.Args) > 2 && ctx.Args[2] == "prune" {
			best, traversed = knapsack.Solve(in)
		} else {
			best, traversed = knapsack.SolveExhaustive(in)
		}
		fmt.Fprintf(&ctx.Stdout, "best=%d traversed=%d\n", best, traversed)
		return nil
	})
	return reg
}
