package programs

import (
	"strings"
	"testing"

	"nxcluster/internal/rmf"
	"nxcluster/internal/transport"
)

func runProgram(t *testing.T, name string, args []string, env map[string]string, stdin []byte) *rmf.JobContext {
	t.Helper()
	reg := Demo()
	prog, ok := reg.Lookup(name)
	if !ok {
		t.Fatalf("program %q not registered", name)
	}
	ctx := &rmf.JobContext{
		JobID:    "t.1",
		Resource: "testnode",
		Args:     args,
		Env:      env,
		Stdin:    stdin,
	}
	if err := prog(transport.NewTCPEnv("localhost"), ctx); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return ctx
}

func TestEcho(t *testing.T) {
	ctx := runProgram(t, "echo", []string{"a", "b"}, nil, []byte("in"))
	out := ctx.Stdout.String()
	if !strings.Contains(out, "a b") || !strings.Contains(out, "stdin: in") {
		t.Fatalf("echo output = %q", out)
	}
}

func TestHostname(t *testing.T) {
	ctx := runProgram(t, "hostname", nil, nil, nil)
	if strings.TrimSpace(ctx.Stdout.String()) != "testnode" {
		t.Fatalf("hostname output = %q", ctx.Stdout.String())
	}
}

func TestEnv(t *testing.T) {
	ctx := runProgram(t, "env", []string{"A", "MISSING"}, map[string]string{"A": "1"}, nil)
	out := ctx.Stdout.String()
	if !strings.Contains(out, "A=1") || !strings.Contains(out, "MISSING=") {
		t.Fatalf("env output = %q", out)
	}
}

func TestKnapsackSeq(t *testing.T) {
	ctx := runProgram(t, "knapsack-seq", []string{"10", "2"}, nil, nil)
	out := ctx.Stdout.String()
	if !strings.Contains(out, "best=") || !strings.Contains(out, "traversed=") {
		t.Fatalf("knapsack-seq output = %q", out)
	}
	// Bad args fall back to defaults rather than failing.
	ctx = runProgram(t, "knapsack-seq", []string{"junk"}, nil, nil)
	if !strings.Contains(ctx.Stdout.String(), "best=") {
		t.Fatalf("knapsack-seq with junk args = %q", ctx.Stdout.String())
	}
	// Prune mode.
	ctx = runProgram(t, "knapsack-seq", []string{"12", "3", "prune"}, nil, nil)
	if !strings.Contains(ctx.Stdout.String(), "best=") {
		t.Fatalf("pruned output = %q", ctx.Stdout.String())
	}
}
