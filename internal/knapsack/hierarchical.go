package knapsack

import (
	"fmt"
	"sort"
	"time"

	"nxcluster/internal/mpi"
)

// RunHierarchical executes the parallel branch-and-bound with a two-level
// master/worker hierarchy: each cluster gets a sub-master, workers steal
// only from their cluster's sub-master (LAN traffic), and sub-masters
// exchange coarse work with the global master (rank 0) in bulk. This is the
// natural extension of the paper's flat scheme for metacomputing — steal
// round trips through the Nexus Proxy cost tens of milliseconds, so keeping
// them on the LAN and amortizing WAN exchanges over BulkFactor-sized
// batches reduces the wide-area overhead further (compare the
// BenchmarkAblationHierarchy results).
//
// groupOf maps a rank's placement name to its cluster label; ranks with the
// same label form one group, and the lowest rank in each group serves as
// its sub-master. Rank 0 is the global master (and its own group's
// sub-master). Termination is hierarchical: a sub-master reports idle
// upstream only when its own stack is empty and every group worker is
// waiting on it, which (with per-source FIFO delivery) guarantees no work
// remains in flight below it.
func RunHierarchical(c *mpi.Comm, in *Instance, p Params, groupOf func(name string) string) (*Result, error) {
	p = p.withDefaults().resolve(in)
	if p.BulkFactor <= 0 {
		p.BulkFactor = 4
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	topo := buildHierarchy(c, groupOf)
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	start := c.Env().Now()

	var (
		local   RankStats
		handled int64
		err     error
	)
	local.Rank = c.Rank()
	local.Name = c.Name(c.Rank())
	switch {
	case c.Rank() == 0:
		handled, local, err = runGlobalMaster(c, in, p, topo)
	case topo.subMaster[c.Rank()] == c.Rank():
		local, err = runSubMaster(c, in, p, topo)
	default:
		local, err = runWorker(c, in, p, topo.subMaster[c.Rank()])
	}
	if err != nil {
		return nil, err
	}
	elapsed := c.Env().Now() - start
	return collectResult(c, local, handled, elapsed)
}

// hierarchy captures the rank topology.
type hierarchy struct {
	// subMaster[r] is rank r's sub-master (its own rank for sub-masters).
	subMaster []int
	// children[m] lists the ranks that steal directly from m.
	children map[int][]int
	// subMasters lists every sub-master rank except the global master.
	subMasters []int
}

// buildHierarchy derives the deterministic topology every rank computes
// identically from the placement names.
func buildHierarchy(c *mpi.Comm, groupOf func(string) string) *hierarchy {
	groups := make(map[string][]int)
	var order []string
	for r := 0; r < c.Size(); r++ {
		g := groupOf(c.Name(r))
		if _, seen := groups[g]; !seen {
			order = append(order, g)
		}
		groups[g] = append(groups[g], r)
	}
	sort.Strings(order)
	h := &hierarchy{subMaster: make([]int, c.Size()), children: make(map[int][]int)}
	for _, g := range order {
		ranks := groups[g]
		sort.Ints(ranks)
		sm := ranks[0]
		for _, r := range ranks {
			h.subMaster[r] = sm
			if r != sm {
				h.children[sm] = append(h.children[sm], r)
			}
		}
		if sm != 0 {
			h.subMasters = append(h.subMasters, sm)
			h.children[0] = append(h.children[0], sm)
		}
	}
	sort.Ints(h.children[0])
	return h
}

// runGlobalMaster is the paper's master whose direct children are its own
// group's workers plus the other clusters' sub-masters; sub-masters get
// BulkFactor-sized batches.
func runGlobalMaster(c *mpi.Comm, in *Instance, p Params, topo *hierarchy) (int64, RankStats, error) {
	solver := NewSolver(in)
	solver.PruneBound = p.PruneBound
	children := topo.children[0]
	isSub := make(map[int]bool, len(topo.subMasters))
	for _, sm := range topo.subMasters {
		isSub[sm] = true
	}
	var pending []int
	var handled int64
	reserve := p.MasterReserve
	if reserve < 0 {
		reserve = 0
	}
	unit := func(child int) int {
		if isSub[child] {
			return p.StealUnit * p.BulkFactor
		}
		return p.StealUnit
	}
	serve := func() error {
		for len(pending) > 0 && solver.Stack.Len() > reserve {
			to := pending[0]
			pending = pending[1:]
			batch := solver.Stack.TakeBottom(unit(to))
			if err := c.Send(to, tagWork, EncodeNodes(batch)); err != nil {
				return err
			}
			handled++
		}
		return nil
	}
	handleMsg := func(m mpi.Message) error {
		switch m.Tag {
		case tagSteal:
			pending = append(pending, m.Src)
		case tagBack:
			ns, err := DecodeNodes(m.Data)
			if err != nil {
				return err
			}
			solver.Stack.PushAll(ns)
		default:
			return fmt.Errorf("knapsack global master: unexpected tag %d from %d", m.Tag, m.Src)
		}
		return nil
	}
	for {
		if solver.Stack.Len() > 0 {
			ran := solver.BranchN(p.Interval)
			if p.NodeCost > 0 && ran > 0 {
				c.Env().Compute(time.Duration(ran) * p.NodeCost)
			}
			for c.Iprobe(mpi.AnySource, mpi.AnyTag) {
				m, err := c.Recv(mpi.AnySource, mpi.AnyTag)
				if err != nil {
					return 0, RankStats{}, err
				}
				if err := handleMsg(m); err != nil {
					return 0, RankStats{}, err
				}
			}
			if err := serve(); err != nil {
				return 0, RankStats{}, err
			}
			continue
		}
		if len(pending) == len(children) {
			break
		}
		m, err := c.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return 0, RankStats{}, err
		}
		if err := handleMsg(m); err != nil {
			return 0, RankStats{}, err
		}
		if err := serve(); err != nil {
			return 0, RankStats{}, err
		}
	}
	for _, child := range children {
		if err := c.Send(child, tagTerm, nil); err != nil {
			return 0, RankStats{}, err
		}
	}
	st := RankStats{Rank: 0, Name: c.Name(0), Traversed: solver.Traversed, bestForReduce: solver.Best}
	return handled, st, nil
}

// runSubMaster works its own stack, serves its group's workers locally, and
// escalates to the global master only when its entire subtree runs dry.
func runSubMaster(c *mpi.Comm, in *Instance, p Params, topo *hierarchy) (RankStats, error) {
	solver := NewWorker(in)
	solver.PruneBound = p.PruneBound
	group := topo.children[c.Rank()]
	var st RankStats
	st.Rank = c.Rank()
	st.Name = c.Name(c.Rank())

	var pending []int
	requested := false
	opsSinceShare := 0
	reserve := p.MasterReserve
	if reserve < 0 {
		reserve = 0
	}
	serve := func() error {
		for len(pending) > 0 && solver.Stack.Len() > reserve {
			to := pending[0]
			pending = pending[1:]
			batch := solver.Stack.TakeBottom(p.StealUnit)
			if err := c.Send(to, tagWork, EncodeNodes(batch)); err != nil {
				return err
			}
		}
		return nil
	}
	handleGroupMsg := func(m mpi.Message) error {
		switch m.Tag {
		case tagSteal:
			pending = append(pending, m.Src)
		case tagBack:
			ns, err := DecodeNodes(m.Data)
			if err != nil {
				return err
			}
			solver.Stack.PushAll(ns)
		default:
			return fmt.Errorf("knapsack sub-master %d: unexpected tag %d from %d", c.Rank(), m.Tag, m.Src)
		}
		return nil
	}

	for {
		if solver.Stack.Len() > 0 {
			ran := solver.BranchN(p.Interval)
			opsSinceShare += ran
			if p.NodeCost > 0 && ran > 0 {
				c.Env().Compute(time.Duration(ran) * p.NodeCost)
			}
			for c.Iprobe(mpi.AnySource, mpi.AnyTag) {
				m, err := c.Recv(mpi.AnySource, mpi.AnyTag)
				if err != nil {
					return st, err
				}
				if err := handleGroupMsg(m); err != nil {
					return st, err
				}
			}
			if err := serve(); err != nil {
				return st, err
			}
			// Voluntary upstream sharing keeps other clusters fed; the
			// threshold must stay small — depth-first stacks are shallow,
			// so a group's surplus shows up as time, not stack depth.
			if p.ShareInterval > 0 && opsSinceShare >= p.ShareInterval &&
				solver.Stack.Len() > p.BackUnit+1 && len(pending) == 0 {
				batch := solver.Stack.TakeBottom(p.BackUnit)
				st.SentBack += int64(len(batch))
				opsSinceShare = 0
				if err := c.Send(0, tagBack, EncodeNodes(batch)); err != nil {
					return st, err
				}
			}
			continue
		}
		// Stack dry: escalate only when the whole subtree is idle.
		if len(pending) == len(group) && !requested {
			st.Steals++
			requested = true
			if err := c.Send(0, tagSteal, nil); err != nil {
				return st, err
			}
		}
		m, err := c.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return st, err
		}
		switch {
		case m.Src == 0 && m.Tag == tagWork:
			ns, err := DecodeNodes(m.Data)
			if err != nil {
				return st, err
			}
			solver.Stack.PushAll(ns)
			requested = false
			if err := serve(); err != nil {
				return st, err
			}
		case m.Src == 0 && m.Tag == tagTerm:
			for _, w := range group {
				if err := c.Send(w, tagTerm, nil); err != nil {
					return st, err
				}
			}
			st.Traversed = solver.Traversed
			st.bestForReduce = solver.Best
			return st, nil
		default:
			if err := handleGroupMsg(m); err != nil {
				return st, err
			}
			if err := serve(); err != nil {
				return st, err
			}
		}
	}
}

// runWorker is the flat scheme's slave pointed at its sub-master.
func runWorker(c *mpi.Comm, in *Instance, p Params, master int) (RankStats, error) {
	worker := NewWorker(in)
	worker.PruneBound = p.PruneBound
	var st RankStats
	st.Rank = c.Rank()
	st.Name = c.Name(c.Rank())
	opsSinceShare := 0
	sendBack := func(k int) error {
		batch := worker.Stack.TakeBottom(k)
		st.SentBack += int64(len(batch))
		opsSinceShare = 0
		return c.Send(master, tagBack, EncodeNodes(batch))
	}
	for {
		if worker.Stack.Len() == 0 {
			st.Steals++
			if err := c.Send(master, tagSteal, nil); err != nil {
				return st, err
			}
			m, err := c.Recv(master, mpi.AnyTag)
			if err != nil {
				return st, err
			}
			if m.Tag == tagTerm {
				break
			}
			if m.Tag != tagWork {
				return st, fmt.Errorf("knapsack worker %d: unexpected tag %d", c.Rank(), m.Tag)
			}
			ns, err := DecodeNodes(m.Data)
			if err != nil {
				return st, err
			}
			worker.Stack.PushAll(ns)
			continue
		}
		ran := worker.BranchN(p.Interval)
		opsSinceShare += ran
		if p.NodeCost > 0 && ran > 0 {
			c.Env().Compute(time.Duration(ran) * p.NodeCost)
		}
		switch {
		case p.BackThreshold > 0 && worker.Stack.Len() > p.BackThreshold:
			if err := sendBack(p.BackUnit); err != nil {
				return st, err
			}
		case p.ShareInterval > 0 && opsSinceShare >= p.ShareInterval && worker.Stack.Len() > p.BackUnit+1:
			if err := sendBack(p.BackUnit); err != nil {
				return st, err
			}
		}
	}
	st.Traversed = worker.Traversed
	st.bestForReduce = worker.Best
	return st, nil
}

// collectResult performs the final allreduce/gather shared by both schemes.
func collectResult(c *mpi.Comm, local RankStats, handled int64, elapsed time.Duration) (*Result, error) {
	best, err := c.AllreduceInt64(local.bestForReduce, mpi.OpMax)
	if err != nil {
		return nil, err
	}
	parts, err := c.Gather(0, encodeStats(local))
	if err != nil {
		return nil, err
	}
	res := &Result{Best: best, Elapsed: elapsed, MasterHandled: handled}
	if c.Rank() == 0 {
		for r, part := range parts {
			st, err := decodeStats(r, part)
			if err != nil {
				return nil, err
			}
			res.Stats = append(res.Stats, st)
			res.TotalTraversed += st.Traversed
		}
	}
	return res, nil
}
