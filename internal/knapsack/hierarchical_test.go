package knapsack

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"nxcluster/internal/mpi"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
)

// runHier executes the hierarchical solver on a two-cluster simulated
// topology: clusterA hosts a0..a(na-1) and clusterB hosts b0..b(nb-1),
// joined by a slow WAN link.
func runHier(t *testing.T, na, nb int, in *Instance, p Params) *Result {
	t.Helper()
	k := sim.New()
	net := simnet.New(k)
	net.AddRouter("swA", "")
	net.AddRouter("swB", "")
	lan := simnet.LinkConfig{Latency: 100 * time.Microsecond, Bandwidth: 12 << 20}
	net.Connect("swA", "swB", simnet.LinkConfig{Latency: 20 * time.Millisecond, Bandwidth: 187 << 10})
	var pls []mpi.Placement
	for i := 0; i < na; i++ {
		name := fmt.Sprintf("a%d", i)
		net.AddHost(name, simnet.HostConfig{})
		net.Connect(name, "swA", lan)
		pls = append(pls, mpi.Placement{Name: name, Spawn: net.Node(name).SpawnOn})
	}
	for i := 0; i < nb; i++ {
		name := fmt.Sprintf("b%d", i)
		net.AddHost(name, simnet.HostConfig{})
		net.Connect(name, "swB", lan)
		pls = append(pls, mpi.Placement{Name: name, Spawn: net.Node(name).SpawnOn})
	}
	groupOf := func(name string) string { return name[:1] }
	w := mpi.NewWorld(pls)
	var res *Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := RunHierarchical(c, in, p, groupOf)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no result")
	}
	return res
}

func TestHierarchicalCorrectness(t *testing.T) {
	in := Normalized(30, 4)
	wantNodes := NormalizedTreeNodes(30, 4)
	p := Params{Interval: 25, StealUnit: 2, NodeCost: 200 * time.Microsecond}
	res := runHier(t, 3, 4, in, p)
	if res.TotalTraversed != wantNodes {
		t.Fatalf("traversed %d, want %d (work conservation)", res.TotalTraversed, wantNodes)
	}
	// Unit weights: optimum = top 4 profits.
	want, _ := SolveExhaustive(in)
	if res.Best != want {
		t.Fatalf("best = %d, want %d", res.Best, want)
	}
	// Both clusters contributed.
	var aNodes, bNodes int64
	for _, st := range res.Stats {
		if strings.HasPrefix(st.Name, "a") {
			aNodes += st.Traversed
		} else {
			bNodes += st.Traversed
		}
	}
	if aNodes == 0 || bNodes == 0 {
		t.Fatalf("cluster contribution a=%d b=%d", aNodes, bNodes)
	}
}

func TestHierarchicalMatchesRandomOptimum(t *testing.T) {
	in := Random(16, 300, 11)
	want := BruteForce(in)
	p := Params{Interval: 20, StealUnit: 2, NodeCost: 100 * time.Microsecond}
	res := runHier(t, 2, 3, in, p)
	if res.Best != want {
		t.Fatalf("best = %d, want %d", res.Best, want)
	}
}

func TestHierarchicalSingleGroupDegeneratesToFlat(t *testing.T) {
	in := Normalized(24, 3)
	p := Params{Interval: 25, StealUnit: 2, NodeCost: 100 * time.Microsecond}
	res := runHier(t, 4, 0, in, p)
	if res.TotalTraversed != NormalizedTreeNodes(24, 3) {
		t.Fatalf("traversed %d", res.TotalTraversed)
	}
}

func TestHierarchicalReducesWANSteals(t *testing.T) {
	// The global master's handled count (WAN-crossing exchanges for the
	// remote cluster) must be far below what the flat scheme's remote
	// slaves would generate individually.
	in := Normalized(40, 4)
	p := Params{Interval: 25, StealUnit: 2, NodeCost: 500 * time.Microsecond}
	res := runHier(t, 4, 8, in, p)
	// In the hierarchy only rank a0 (global) and b's sub-master talk across
	// the WAN; remote workers' steals all terminate at their sub-master.
	var remoteWorkerSteals int64
	var subMasterSteals int64
	for _, st := range res.Stats {
		if strings.HasPrefix(st.Name, "b") {
			if st.Rank == 4 { // lowest b rank = sub-master
				subMasterSteals += st.Steals
			} else {
				remoteWorkerSteals += st.Steals
			}
		}
	}
	if remoteWorkerSteals == 0 {
		t.Fatal("remote workers never stole locally")
	}
	if subMasterSteals*5 > remoteWorkerSteals {
		t.Fatalf("sub-master escalations (%d) not well below local steals (%d)",
			subMasterSteals, remoteWorkerSteals)
	}
}

func TestBuildHierarchyTopology(t *testing.T) {
	// Synthetic Comm is heavy; validate via a real tiny world instead.
	in := Normalized(16, 3)
	p := Params{Interval: 10, StealUnit: 1, NodeCost: 50 * time.Microsecond}
	res := runHier(t, 2, 2, in, p)
	if len(res.Stats) != 4 {
		t.Fatalf("stats = %d ranks", len(res.Stats))
	}
	if res.Stats[0].Name != "a0" {
		t.Fatalf("rank0 = %s", res.Stats[0].Name)
	}
}
