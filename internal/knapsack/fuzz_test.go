package knapsack

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"nxcluster/internal/mpi"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
)

// TestSchedulerParameterFuzz runs the parallel solver under randomized
// scheduler parameters, world sizes, topologies and instances, asserting
// the two invariants that must hold for every combination: exact work
// conservation (every node expanded exactly once) and optimality.
func TestSchedulerParameterFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		ranks := 2 + rng.Intn(6)
		params := Params{
			Interval:      1 + rng.Intn(200),
			StealUnit:     1 + rng.Intn(6),
			BackUnit:      1 + rng.Intn(6),
			BackThreshold: rng.Intn(3) - 1, // -1 disable, 0 auto, 1 aggressive
			MasterReserve: rng.Intn(3) - 1,
			ShareInterval: rng.Intn(3)*100 - 1, // -1 disable, or 99/199
			NodeCost:      time.Duration(rng.Intn(300)) * time.Microsecond,
		}
		var in *Instance
		var wantBest, wantNodes int64
		if rng.Intn(2) == 0 {
			n, cap := 10+rng.Intn(20), 2+rng.Intn(3)
			in = Normalized(n, cap)
			wantNodes = NormalizedTreeNodes(n, cap)
			wantBest, _ = SolveExhaustive(in)
		} else {
			in = Random(10+rng.Intn(6), 100, rng.Int63())
			wantBest, wantNodes = SolveExhaustive(in)
		}

		k := sim.New()
		net := simnet.New(k)
		net.AddRouter("sw", "")
		pls := make([]mpi.Placement, ranks)
		for i := range pls {
			name := fmt.Sprintf("n%d", i)
			net.AddHost(name, simnet.HostConfig{Speed: 0.5 + rng.Float64()*1.5})
			net.Connect(name, "sw", simnet.LinkConfig{
				Latency:   time.Duration(rng.Intn(5000)) * time.Microsecond,
				Bandwidth: 1 << 20,
			})
			pls[i] = mpi.Placement{Name: name, Spawn: net.Node(name).SpawnOn}
		}
		w := mpi.NewWorld(pls)
		var res *Result
		w.Launch(func(c *mpi.Comm) error {
			r, err := Run(c, in, params)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				res = r
			}
			return nil
		})
		if err := k.Run(); err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, params, err)
		}
		k.Shutdown()
		if err := w.Err(); err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, params, err)
		}
		if res.TotalTraversed != wantNodes {
			t.Fatalf("trial %d (%+v): traversed %d, want %d",
				trial, params, res.TotalTraversed, wantNodes)
		}
		if res.Best != wantBest {
			t.Fatalf("trial %d (%+v): best %d, want %d", trial, params, res.Best, wantBest)
		}
	}
}

// TestHierarchicalParameterFuzz applies the same invariants to the
// hierarchical scheme with random group shapes.
func TestHierarchicalParameterFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		groups := 1 + rng.Intn(3)
		params := Params{
			Interval:   1 + rng.Intn(100),
			StealUnit:  1 + rng.Intn(4),
			BackUnit:   1 + rng.Intn(4),
			BulkFactor: 1 + rng.Intn(6),
			NodeCost:   time.Duration(rng.Intn(200)) * time.Microsecond,
		}
		n, cap := 12+rng.Intn(12), 2+rng.Intn(3)
		in := Normalized(n, cap)
		wantBest, wantNodes := SolveExhaustive(in)

		k := sim.New()
		net := simnet.New(k)
		net.AddRouter("core", "")
		var pls []mpi.Placement
		for g := 0; g < groups; g++ {
			sw := fmt.Sprintf("sw%d", g)
			net.AddRouter(sw, "")
			net.Connect(sw, "core", simnet.LinkConfig{Latency: 10 * time.Millisecond, Bandwidth: 256 << 10})
			members := 1 + rng.Intn(4)
			for m := 0; m < members; m++ {
				name := fmt.Sprintf("g%dm%d", g, m)
				net.AddHost(name, simnet.HostConfig{})
				net.Connect(name, sw, simnet.LinkConfig{Latency: 100 * time.Microsecond, Bandwidth: 12 << 20})
				pls = append(pls, mpi.Placement{Name: name, Spawn: net.Node(name).SpawnOn})
			}
		}
		w := mpi.NewWorld(pls)
		var res *Result
		w.Launch(func(c *mpi.Comm) error {
			r, err := RunHierarchical(c, in, params, func(name string) string { return name[:2] })
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				res = r
			}
			return nil
		})
		if err := k.Run(); err != nil {
			t.Fatalf("trial %d (groups=%d %+v): %v", trial, groups, params, err)
		}
		k.Shutdown()
		if err := w.Err(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.TotalTraversed != wantNodes || res.Best != wantBest {
			t.Fatalf("trial %d (groups=%d %+v): traversed=%d/%d best=%d/%d",
				trial, groups, params, res.TotalTraversed, wantNodes, res.Best, wantBest)
		}
	}
}
