package knapsack

import (
	"fmt"
	"strconv"
	"time"

	"nxcluster/internal/mpi"
	"nxcluster/internal/nexus"
	"nxcluster/internal/obs"
)

// Message tags of the self-scheduling protocol.
const (
	tagSteal = 1 // slave -> master: "my stack is empty"
	tagWork  = 2 // master -> slave: stealunit nodes
	tagBack  = 3 // slave -> master: backunit nodes returned
	tagTerm  = 4 // master -> slave: search finished
)

// Params are the paper's tuning knobs for the master/slave self-scheduler
// ("we varied a stealunit, interval, and backunit and took the best
// combination").
type Params struct {
	// Interval is how many branch operations run between the master's
	// checks of slave steal requests (and between a slave's stack checks).
	Interval int
	// StealUnit is how many nodes a steal reply carries.
	StealUnit int
	// BackUnit is how many nodes a slave returns when its stack exceeds
	// BackThreshold.
	BackUnit int
	// BackThreshold is the slave stack depth that triggers sending nodes
	// back to the master. 0 selects an automatic threshold of
	// items + StealUnit (a stack deeper than one full tree path means the
	// slave is hoarding multiple sizable branches); negative disables the
	// mechanism entirely.
	BackThreshold int
	// MasterReserve is the stack depth the master keeps for itself while
	// serving steal requests, so that serving one fast slave cannot strip
	// the master bare and starve the rest. 0 selects 2; negative disables
	// the reserve.
	MasterReserve int
	// ShareInterval makes a busy slave voluntarily return BackUnit of its
	// coarsest nodes every ShareInterval branch operations, provided it
	// keeps enough work for itself. On the paper's deep search stacks the
	// depth trigger (BackThreshold) fires periodically during big-subtree
	// expansion; on shallow capacity-bounded stacks depth is uncorrelated
	// with remaining work, and this operation-count trigger provides the
	// same periodic redistribution. 0 selects 2*Interval; negative
	// disables it.
	ShareInterval int
	// BulkFactor multiplies StealUnit for sub-master <-> global-master
	// exchanges in RunHierarchical (default 4); the flat scheme ignores it.
	BulkFactor int
	// NodeCost is the virtual CPU time one branch operation costs on a
	// nominal-speed processor.
	NodeCost time.Duration
	// PruneBound enables bound pruning (off for the paper's normalized
	// workload). Each rank prunes against its local incumbent only, which
	// is conservative and therefore still exact.
	PruneBound bool
}

// DefaultParams returns the tuned combination used by the experiment
// harness.
func DefaultParams() Params {
	return Params{Interval: 25, StealUnit: 2, BackUnit: 2, NodeCost: 1500 * time.Microsecond}
}

func (p Params) withDefaults() Params {
	if p.Interval <= 0 {
		p.Interval = 2000
	}
	if p.StealUnit <= 0 {
		p.StealUnit = 4
	}
	if p.BackUnit <= 0 {
		p.BackUnit = 2
	}
	return p
}

// resolve finalizes the automatic knobs. The depth-first stack of a
// branch-and-bound search stays shallow (one pending sibling per branching
// level), so both automatic knobs are small: the master keeps a couple of
// nodes for itself, and a slave whose stack outgrows a typical working
// depth ships its coarsest nodes home.
func (p Params) resolve(in *Instance) Params {
	if p.BackThreshold == 0 {
		p.BackThreshold = p.StealUnit + 6
	}
	if p.MasterReserve == 0 {
		p.MasterReserve = 2
	}
	if p.ShareInterval == 0 {
		p.ShareInterval = 2 * p.Interval
	}
	return p
}

// RankStats reports one rank's contribution (paper Tables 5 and 6).
type RankStats struct {
	// Rank in the MPI world.
	Rank int
	// Name is the placement (cluster/host) name.
	Name string
	// Steals counts steal requests the rank issued (0 for the master).
	Steals int64
	// Traversed counts nodes the rank expanded.
	Traversed int64
	// SentBack counts nodes the rank returned to the master.
	SentBack int64

	// bestForReduce carries the rank's local incumbent into the final
	// allreduce.
	bestForReduce int64
}

// Result is the outcome of a parallel run.
type Result struct {
	// Best is the optimal profit (valid on every rank).
	Best int64
	// Elapsed is the master's search time, barrier to termination (valid
	// on rank 0).
	Elapsed time.Duration
	// MasterHandled counts steal requests the master served (Table 5's
	// "Master" column; valid on rank 0).
	MasterHandled int64
	// Stats holds per-rank statistics in rank order (valid on rank 0).
	Stats []RankStats
	// TotalTraversed sums Traversed over ranks (valid on rank 0).
	TotalTraversed int64
}

// Run executes the parallel branch-and-bound on the communicator: rank 0 is
// the master, every other rank a slave stealing work on demand. All ranks
// must pass identical instances and params.
func Run(c *mpi.Comm, in *Instance, p Params) (*Result, error) {
	p = p.withDefaults().resolve(in)
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	start := c.Env().Now()
	// Each rank's solve is one span under its mpi/rank context; the steal,
	// bound, and reclaim instants below parent under it via the ambient
	// context, so a job's critical path can charge time to the solver leg.
	env := c.Env()
	o := obs.From(env)
	tcSolve := o.BeginChild(start, obs.CtxOf(env), "knap", "solve", env.Hostname(),
		obs.Int("rank", int64(c.Rank())))
	saved := obs.CtxOf(env)
	obs.SetCtx(env, tcSolve)
	defer func() {
		obs.SetCtx(env, saved)
		o.EndSpan(env.Now(), tcSolve, "knap", "solve", env.Hostname())
	}()
	var (
		local RankStats
		err   error
	)
	local.Rank = c.Rank()
	local.Name = c.Name(c.Rank())
	var handled int64
	switch {
	case c.Size() == 1:
		local, err = runSequentialMaster(c, in, p)
	case c.Rank() == 0:
		handled, local, err = runMaster(c, in, p)
	default:
		local, err = runSlave(c, in, p)
	}
	if err != nil {
		return nil, err
	}
	elapsed := c.Env().Now() - start
	return collectResult(c, local, handled, elapsed)
}

// knapObs resolves a rank's observer and trace track, and seeds the
// incumbent used to suppress duplicate bound events. All three are inert
// when tracing is off (nil observer).
func knapObs(c *mpi.Comm, best int64) (*obs.Observer, string, int64) {
	o := obs.From(c.Env())
	trk := ""
	if o != nil {
		trk = "knap/rank" + strconv.Itoa(c.Rank())
	}
	return o, trk, best
}

// encodeStats serializes one rank's statistics for the final gather.
func encodeStats(st RankStats) []byte {
	b := nexus.NewBuffer()
	b.PutInt64(st.Steals)
	b.PutInt64(st.Traversed)
	b.PutInt64(st.SentBack)
	b.PutString(st.Name)
	return b.Bytes()
}

// decodeStats parses one rank's gathered statistics.
func decodeStats(rank int, data []byte) (RankStats, error) {
	b := nexus.FromBytes(data)
	var st RankStats
	var err error
	st.Rank = rank
	if st.Steals, err = b.GetInt64(); err != nil {
		return st, err
	}
	if st.Traversed, err = b.GetInt64(); err != nil {
		return st, err
	}
	if st.SentBack, err = b.GetInt64(); err != nil {
		return st, err
	}
	if st.Name, err = b.GetString(); err != nil {
		return st, err
	}
	return st, nil
}

// runSequentialMaster is the single-rank fast path used by the sequential
// baseline runs. With no slaves there are no steal requests to poll and no
// messages to serve, so the per-interval Compute charges — which runMaster
// issues one steal-interval at a time purely to stay responsive — are
// accumulated over the whole search and the scheduler is entered once with
// the batched total. The batched charge equals the sum of the per-interval
// charges whenever each charge is exact under the host's speed scaling
// (always true at nominal speed 1.0, where the baseline runs), so the
// reported Elapsed is bit-identical to the interval-at-a-time loop.
func runSequentialMaster(c *mpi.Comm, in *Instance, p Params) (RankStats, error) {
	solver := NewSolver(in)
	solver.PruneBound = p.PruneBound
	var batched time.Duration
	for solver.Stack.Len() > 0 {
		ran := solver.BranchN(p.Interval)
		if p.NodeCost > 0 && ran > 0 {
			batched += time.Duration(ran) * p.NodeCost
		}
	}
	if batched > 0 {
		c.Env().Compute(batched)
	}
	st := RankStats{Rank: 0, Name: c.Name(0), Traversed: solver.Traversed, bestForReduce: solver.Best}
	return st, nil
}

// runMaster is the paper's master: read data, push the root, branch in
// interval-sized batches, and serve steal requests from the top of the
// stack.
func runMaster(c *mpi.Comm, in *Instance, p Params) (int64, RankStats, error) {
	solver := NewSolver(in)
	solver.PruneBound = p.PruneBound
	nslaves := c.Size() - 1
	var pending []int // slaves with unanswered steal requests, FIFO
	var handled int64
	o, trk, lastBest := knapObs(c, solver.Best)

	reserve := p.MasterReserve
	if reserve < 0 {
		reserve = 0
	}
	serve := func() error {
		// Serve waiting slaves with the oldest nodes on the stack — the
		// shallow entries whose subtrees are the largest. (The paper says
		// the master sends "stealunit nodes on top of its stack"; with the
		// array-stack representation of the era the top is the oldest end,
		// and only this reading produces the paper's measured load balance:
		// handing out the newest, deepest nodes starves the slaves on
		// leaf-sized subtrees while the master keeps all coarse work.)
		// The master never serves below its reserve, so one fast slave
		// cannot strip it bare and starve the rest.
		for len(pending) > 0 && solver.Stack.Len() > reserve {
			batch := solver.Stack.TakeBottom(p.StealUnit)
			to := pending[0]
			pending = pending[1:]
			if err := c.Send(to, tagWork, EncodeNodes(batch)); err != nil {
				return err
			}
			handled++
			if o != nil {
				o.EmitCtx(c.Env().Now(), obs.CtxOf(c.Env()), "knap", "serve", trk,
					obs.Int("to", int64(to)), obs.Int("nodes", int64(len(batch))))
			}
		}
		return nil
	}
	handleMsg := func(m mpi.Message) error {
		switch m.Tag {
		case tagSteal:
			pending = append(pending, m.Src)
		case tagBack:
			ns, err := DecodeNodes(m.Data)
			if err != nil {
				return err
			}
			solver.Stack.PushAll(ns)
		default:
			return fmt.Errorf("knapsack master: unexpected tag %d from %d", m.Tag, m.Src)
		}
		return nil
	}

	for {
		if solver.Stack.Len() > 0 {
			ran := solver.BranchN(p.Interval)
			if p.NodeCost > 0 && ran > 0 {
				c.Env().Compute(time.Duration(ran) * p.NodeCost)
			}
			if o != nil && solver.Best != lastBest {
				lastBest = solver.Best
				o.EmitCtx(c.Env().Now(), obs.CtxOf(c.Env()), "knap", "bound", trk, obs.Int("best", lastBest))
			}
			for c.Iprobe(mpi.AnySource, mpi.AnyTag) {
				m, err := c.Recv(mpi.AnySource, mpi.AnyTag)
				if err != nil {
					return 0, RankStats{}, err
				}
				if err := handleMsg(m); err != nil {
					return 0, RankStats{}, err
				}
			}
			if err := serve(); err != nil {
				return 0, RankStats{}, err
			}
			continue
		}
		// Master out of work: when every slave is also idle the search is
		// complete (per-source FIFO delivery means no tagBack can still be
		// in flight from a slave whose steal request we already hold).
		if len(pending) == nslaves {
			break
		}
		m, err := c.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return 0, RankStats{}, err
		}
		if err := handleMsg(m); err != nil {
			return 0, RankStats{}, err
		}
		if err := serve(); err != nil {
			return 0, RankStats{}, err
		}
	}
	for i := 1; i < c.Size(); i++ {
		if err := c.Send(i, tagTerm, nil); err != nil {
			return 0, RankStats{}, err
		}
	}
	st := RankStats{Rank: 0, Name: c.Name(0), Traversed: solver.Traversed, bestForReduce: solver.Best}
	return handled, st, nil
}

// runSlave is the paper's slave: branch until the stack empties, then steal
// from the master; return backunit nodes whenever the stack grows beyond the
// threshold.
func runSlave(c *mpi.Comm, in *Instance, p Params) (RankStats, error) {
	worker := NewWorker(in)
	worker.PruneBound = p.PruneBound
	var st RankStats
	st.Rank = c.Rank()
	st.Name = c.Name(c.Rank())
	o, trk, lastBest := knapObs(c, worker.Best)
	opsSinceShare := 0
	sendBack := func(k int) error {
		batch := worker.Stack.TakeBottom(k)
		st.SentBack += int64(len(batch))
		opsSinceShare = 0
		if o != nil {
			o.EmitCtx(c.Env().Now(), obs.CtxOf(c.Env()), "knap", "back", trk, obs.Int("nodes", int64(len(batch))))
		}
		return c.Send(0, tagBack, EncodeNodes(batch))
	}
	for {
		if worker.Stack.Len() == 0 {
			st.Steals++
			if o != nil {
				o.EmitCtx(c.Env().Now(), obs.CtxOf(c.Env()), "knap", "steal", trk)
				o.Metrics().Counter("knap.steals").Add(1)
			}
			if err := c.Send(0, tagSteal, nil); err != nil {
				return st, err
			}
			m, err := c.Recv(0, mpi.AnyTag)
			if err != nil {
				return st, err
			}
			if m.Tag == tagTerm {
				break
			}
			if m.Tag != tagWork {
				return st, fmt.Errorf("knapsack slave: unexpected tag %d", m.Tag)
			}
			ns, err := DecodeNodes(m.Data)
			if err != nil {
				return st, err
			}
			worker.Stack.PushAll(ns)
			continue
		}
		ran := worker.BranchN(p.Interval)
		opsSinceShare += ran
		if p.NodeCost > 0 && ran > 0 {
			c.Env().Compute(time.Duration(ran) * p.NodeCost)
		}
		if o != nil && worker.Best != lastBest {
			lastBest = worker.Best
			o.EmitCtx(c.Env().Now(), obs.CtxOf(c.Env()), "knap", "bound", trk, obs.Int("best", lastBest))
		}
		switch {
		case p.BackThreshold > 0 && worker.Stack.Len() > p.BackThreshold:
			if err := sendBack(p.BackUnit); err != nil {
				return st, err
			}
		case p.ShareInterval > 0 && opsSinceShare >= p.ShareInterval && worker.Stack.Len() > p.BackUnit+1:
			if err := sendBack(p.BackUnit); err != nil {
				return st, err
			}
		}
	}
	st.Traversed = worker.Traversed
	st.bestForReduce = worker.Best
	return st, nil
}
