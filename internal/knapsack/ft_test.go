package knapsack

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"nxcluster/internal/mpi"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
)

// buildFTWorld prepares a simulated LAN cluster world for RunFT tests and
// returns the kernel, network, and world so callers can inject faults.
func buildFTWorld(ranks int) (*sim.Kernel, *simnet.Network, *mpi.World) {
	k := sim.New()
	net := simnet.New(k)
	net.AddRouter("sw", "")
	pls := make([]mpi.Placement, ranks)
	for i := range pls {
		name := fmt.Sprintf("node%d", i)
		net.AddHost(name, simnet.HostConfig{})
		net.Connect(name, "sw", simnet.LinkConfig{Latency: 100 * time.Microsecond, Bandwidth: 12 << 20})
		pls[i] = mpi.Placement{Name: name, Spawn: net.Node(name).SpawnOn}
	}
	return k, net, mpi.NewWorld(pls)
}

// TestRunFTFaultFreeMatchesRun: with no faults injected, the FT scheduler
// must find the same optimum and expand every node exactly once, like the
// plain scheduler.
func TestRunFTFaultFreeMatchesRun(t *testing.T) {
	in := NoPruning(14)
	wantBest, wantNodes := SolveExhaustive(in)
	k, _, w := buildFTWorld(4)
	var res *Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := RunFT(c, in, FTParams{Params: Params{Interval: 50, StealUnit: 3, NodeCost: time.Microsecond}})
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Best != wantBest {
		t.Fatalf("ft best = %d, want %d", res.Best, wantBest)
	}
	if res.TotalTraversed != wantNodes {
		t.Fatalf("ft traversed = %d, want %d (fault-free runs must not duplicate work)",
			res.TotalTraversed, wantNodes)
	}
	if len(res.Stats) != 4 {
		t.Fatalf("stats for %d ranks", len(res.Stats))
	}
	for _, st := range res.Stats[1:] {
		if st.Traversed == 0 {
			t.Errorf("slave %d did no work", st.Rank)
		}
	}
}

// TestRunFTSurvivesSlaveCrash kills one slave's host mid-search: the master
// must reclaim its outstanding batch and still return the exact optimum.
// The killed rank's error slot stays nil (its process never returns).
func TestRunFTSurvivesSlaveCrash(t *testing.T) {
	in := NoPruning(14)
	wantBest, wantNodes := SolveExhaustive(in)
	k, net, w := buildFTWorld(4)
	var res *Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := RunFT(c, in, FTParams{
			Params:       Params{Interval: 50, StealUnit: 3, NodeCost: 200 * time.Microsecond},
			SlaveTimeout: 300 * time.Millisecond,
			StealTimeout: 100 * time.Millisecond,
		})
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	// The full tree is ~32k nodes at 200us each across 4 ranks: well over a
	// second of virtual time. Crash node2 in the thick of it.
	k.After(400*time.Millisecond, func() {
		if err := net.CrashHost("node2"); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if res == nil {
		t.Fatal("master produced no result")
	}
	if res.Best != wantBest {
		t.Fatalf("ft best after crash = %d, want %d", res.Best, wantBest)
	}
	// Reclaimed batches are re-expanded, so the total can only grow.
	if res.TotalTraversed < wantNodes {
		t.Fatalf("ft traversed %d < %d: work was lost, not reclaimed", res.TotalTraversed, wantNodes)
	}
	errs := w.RankErrs()
	if errs[0] != nil {
		t.Fatalf("master error: %v", errs[0])
	}
	if errs[2] != nil {
		t.Fatalf("killed rank reported %v, want nil (never returned)", errs[2])
	}
}

// TestRunFTSurvivesTwoCrashes: with two of three slaves dead the master and
// the last slave still finish exactly.
func TestRunFTSurvivesTwoCrashes(t *testing.T) {
	in := NoPruning(13)
	wantBest, _ := SolveExhaustive(in)
	k, net, w := buildFTWorld(4)
	var res *Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := RunFT(c, in, FTParams{
			Params:       Params{Interval: 40, StealUnit: 2, NodeCost: 200 * time.Microsecond},
			SlaveTimeout: 300 * time.Millisecond,
			StealTimeout: 100 * time.Millisecond,
		})
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	k.After(200*time.Millisecond, func() { _ = net.CrashHost("node1") })
	k.After(500*time.Millisecond, func() { _ = net.CrashHost("node3") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if res == nil {
		t.Fatal("master produced no result")
	}
	if res.Best != wantBest {
		t.Fatalf("ft best after two crashes = %d, want %d", res.Best, wantBest)
	}
}

// TestRunFTOrphanedSlave: a slave whose master dies must not hang — it
// gives up with ErrOrphaned after its retry budget.
func TestRunFTOrphanedSlave(t *testing.T) {
	in := NoPruning(12)
	k, net, w := buildFTWorld(2)
	w.Launch(func(c *mpi.Comm) error {
		_, err := RunFT(c, in, FTParams{
			Params:       Params{Interval: 40, StealUnit: 2, NodeCost: 200 * time.Microsecond},
			StealTimeout: 50 * time.Millisecond,
			StealRetries: 3,
		})
		return err
	})
	k.After(100*time.Millisecond, func() { _ = net.CrashHost("node0") })
	// The orphaned slave's rank error is only recorded once it gives up;
	// the run has no other live work, so the queue drains on its own.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	errs := w.RankErrs()
	if errs[0] != nil {
		t.Fatalf("killed master reported %v, want nil", errs[0])
	}
	if !errors.Is(errs[1], ErrOrphaned) {
		t.Fatalf("orphaned slave error = %v, want ErrOrphaned", errs[1])
	}
}

// TestRunFTDeterministic: the FT scheduler must stay bit-reproducible — the
// same instance and fault-free world give identical elapsed virtual time
// and identical per-rank traversal counts run after run.
func TestRunFTDeterministic(t *testing.T) {
	in := Random(15, 300, 7)
	run := func() (time.Duration, []int64) {
		k, _, w := buildFTWorld(3)
		var res *Result
		w.Launch(func(c *mpi.Comm) error {
			r, err := RunFT(c, in, FTParams{Params: Params{Interval: 30, StealUnit: 2, NodeCost: time.Microsecond}})
			if c.Rank() == 0 {
				res = r
			}
			return err
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		k.Shutdown()
		var tr []int64
		for _, st := range res.Stats {
			tr = append(tr, st.Traversed)
		}
		return res.Elapsed, tr
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 {
		t.Fatalf("elapsed differs across runs: %v vs %v", e1, e2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("rank %d traversed %d vs %d", i, t1[i], t2[i])
		}
	}
}
