package knapsack

import (
	"errors"
	"fmt"
	"time"

	"nxcluster/internal/mpi"
	"nxcluster/internal/nexus"
	"nxcluster/internal/obs"
)

// This file is the fault-tolerant variant of the self-scheduling
// branch-and-bound. The plain scheduler (parallel.go) has fail-stop
// semantics: one lost slave and the master waits forever. RunFT keeps the
// exact same work-stealing structure but adds an outstanding-work ledger on
// the master and sequence-numbered steals on the slaves, so the search
// returns the exact optimum even when slaves die mid-batch:
//
//   - every steal request carries a sequence number; a slave only
//     increments it after it has fully expanded the previous batch, so a
//     steal with sequence n+1 is the slave's proof that batch n is done;
//   - the master remembers the one batch it served per slave (the ledger);
//     when a slave goes silent past SlaveTimeout the master reclaims that
//     batch onto its own stack and re-expands it itself;
//   - retried steals reuse the same sequence number, so the master can tell
//     "the reply got lost, resend it" from "new work request" and never
//     drops a batch that was served but not delivered.
//
// Because the objective is a max over node values, re-expanding a subtree a
// second time cannot change the optimum — recovery is idempotent where it
// matters. Traversal counts, by contrast, are approximate under faults: a
// dead slave's nodes since its last snapshot are unreported, and reclaimed
// batches are counted again by whoever re-expands them.
//
// No collectives run after the startup barrier: results travel as snapshots
// piggybacked on the protocol messages, so a crash cannot hang a reduction.

// Message tags of the fault-tolerant protocol (disjoint from parallel.go's).
const (
	tagFTSteal = 11 // slave -> master: [seq, snapshot]
	tagFTWork  = 12 // master -> slave: [seq, nodes]
	tagFTBack  = 13 // slave -> master: [snapshot, nodes]
	tagFTTerm  = 14 // master -> slave: search finished
	tagFTDone  = 15 // slave -> master: [snapshot] final
)

// ErrOrphaned is returned by a slave that lost its master: its steal
// requests went unanswered past the retry budget, or the master was gone by
// the time it asked. The rank's partial work has already been (or will be)
// re-expanded elsewhere, so an orphaned slave is a casualty report, not a
// correctness problem.
var ErrOrphaned = errors.New("knapsack: slave orphaned (master unreachable)")

// FTParams extends Params with the failure-detection knobs.
type FTParams struct {
	Params
	// SlaveTimeout is how long a silent slave may stay silent (while the
	// master is starved for work) before its outstanding batch is reclaimed
	// (default 2s). Too short merely wastes work — a false death re-expands
	// a batch twice — it never loses results.
	SlaveTimeout time.Duration
	// StealTimeout is how long a slave waits for a work reply before
	// resending its steal request with the same sequence number (default 1s).
	StealTimeout time.Duration
	// StealRetries is how many resends a slave attempts before concluding it
	// is orphaned (default 5).
	StealRetries int
	// HeartbeatEvery, when nonzero, makes each slave send a lightweight
	// snapshot (an empty send-back) whenever it has computed that long
	// without otherwise talking to the master — and lets the master reclaim
	// a slave on ITS OWN silence exceeding SlaveTimeout, rather than only on
	// total silence from everyone. Without heartbeats a computing slave and a
	// dead one are indistinguishable, so the master's conservative detector
	// waits for the whole network to go quiet; under gray failures (a slow
	// host crashing with a batch outstanding while starving peers keep
	// resending steals) that quiet never comes and the batch is stuck until
	// every peer has given up. Zero disables both sides and preserves the
	// original behavior bit for bit.
	//
	// Beats are sent between expansion intervals, so the effective beat
	// granularity is Interval x NodeCost: keep that product (and
	// HeartbeatEvery itself) well under SlaveTimeout, or slaves get falsely
	// reclaimed mid-batch and their work re-expanded — still exact, but
	// wasteful.
	HeartbeatEvery time.Duration
}

func (p FTParams) withFTDefaults() FTParams {
	if p.SlaveTimeout <= 0 {
		p.SlaveTimeout = 2 * time.Second
	}
	if p.StealTimeout <= 0 {
		p.StealTimeout = time.Second
	}
	if p.StealRetries <= 0 {
		p.StealRetries = 5
	}
	return p
}

// ftSnapshot is a slave's running totals, piggybacked on every protocol
// message so the master always holds a recent view of each slave's
// contribution — including slaves that die before the final collection.
type ftSnapshot struct {
	best      int64
	traversed int64
	sentBack  int64
	steals    int64
}

func putSnapshot(b *nexus.Buffer, s ftSnapshot) {
	b.PutInt64(s.best)
	b.PutInt64(s.traversed)
	b.PutInt64(s.sentBack)
	b.PutInt64(s.steals)
}

func getSnapshot(b *nexus.Buffer) (ftSnapshot, error) {
	var s ftSnapshot
	var err error
	if s.best, err = b.GetInt64(); err != nil {
		return s, err
	}
	if s.traversed, err = b.GetInt64(); err != nil {
		return s, err
	}
	if s.sentBack, err = b.GetInt64(); err != nil {
		return s, err
	}
	s.steals, err = b.GetInt64()
	return s, err
}

func encodeFTSteal(seq int64, s ftSnapshot) []byte {
	b := nexus.NewBuffer()
	b.PutInt64(seq)
	putSnapshot(b, s)
	return b.Bytes()
}

func decodeFTSteal(data []byte) (int64, ftSnapshot, error) {
	b := nexus.FromBytes(data)
	seq, err := b.GetInt64()
	if err != nil {
		return 0, ftSnapshot{}, err
	}
	s, err := getSnapshot(b)
	return seq, s, err
}

func encodeFTWork(seq int64, ns []Node) []byte {
	b := nexus.NewBuffer()
	b.PutInt64(seq)
	b.PutBytes(EncodeNodes(ns))
	return b.Bytes()
}

func decodeFTWork(data []byte) (int64, []Node, error) {
	b := nexus.FromBytes(data)
	seq, err := b.GetInt64()
	if err != nil {
		return 0, nil, err
	}
	raw, err := b.GetBytes()
	if err != nil {
		return 0, nil, err
	}
	ns, err := DecodeNodes(raw)
	return seq, ns, err
}

func encodeFTBack(s ftSnapshot, ns []Node) []byte {
	b := nexus.NewBuffer()
	putSnapshot(b, s)
	b.PutBytes(EncodeNodes(ns))
	return b.Bytes()
}

func decodeFTBack(data []byte) (ftSnapshot, []Node, error) {
	b := nexus.FromBytes(data)
	s, err := getSnapshot(b)
	if err != nil {
		return s, nil, err
	}
	raw, err := b.GetBytes()
	if err != nil {
		return s, nil, err
	}
	ns, err := DecodeNodes(raw)
	return s, ns, err
}

// RunFT executes the fault-tolerant parallel branch-and-bound. Rank 0 is
// the master and must survive; slave ranks may crash at any point after the
// startup barrier without affecting the optimum. The Result (Best, Stats,
// MasterHandled, Elapsed) is valid on rank 0 only — there is no final
// collective to distribute it, by design.
func RunFT(c *mpi.Comm, in *Instance, p FTParams) (*Result, error) {
	p = p.withFTDefaults()
	p.Params = p.Params.withDefaults().resolve(in)
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	start := c.Env().Now()
	// Same per-rank solve span as the non-FT path; reclaim/serve/steal
	// instants parent under it through the ambient context.
	env := c.Env()
	o := obs.From(env)
	tcSolve := o.BeginChild(start, obs.CtxOf(env), "knap", "solve", env.Hostname(),
		obs.Int("rank", int64(c.Rank())))
	saved := obs.CtxOf(env)
	obs.SetCtx(env, tcSolve)
	defer func() {
		obs.SetCtx(env, saved)
		o.EndSpan(env.Now(), tcSolve, "knap", "solve", env.Hostname())
	}()
	if c.Size() == 1 || c.Rank() == 0 {
		return runFTMaster(c, in, p, start)
	}
	return runFTSlave(c, in, p)
}

// ftSlaveState is the master's ledger entry for one slave.
type ftSlaveState struct {
	alive       bool
	lastHeard   time.Duration
	lastSteal   int64  // highest steal sequence received
	served      int64  // steal sequence the outstanding batch answers
	outstanding []Node // the one batch served but not yet proven consumed
	snap        ftSnapshot
}

func runFTMaster(c *mpi.Comm, in *Instance, p FTParams, start time.Duration) (*Result, error) {
	solver := NewSolver(in)
	solver.PruneBound = p.PruneBound
	size := c.Size()
	slaves := make([]*ftSlaveState, size)
	for s := 1; s < size; s++ {
		slaves[s] = &ftSlaveState{alive: true, lastHeard: start}
	}
	var pending []int
	inPending := make([]bool, size)
	var handled int64
	o, trk, _ := knapObs(c, solver.Best)

	markDead := func(s int) {
		st := slaves[s]
		if !st.alive {
			return
		}
		st.alive = false
		if o != nil {
			o.EmitCtx(c.Env().Now(), obs.CtxOf(c.Env()), "knap", "reclaim", trk,
				obs.Int("slave", int64(s)), obs.Int("nodes", int64(len(st.outstanding))))
			o.Metrics().Counter("knap.reclaims").Add(1)
		}
		solver.Stack.PushAll(st.outstanding)
		st.outstanding = nil
	}
	reserve := p.MasterReserve
	if reserve < 0 {
		reserve = 0
	}
	serve := func() {
		for len(pending) > 0 && solver.Stack.Len() > reserve {
			s := pending[0]
			pending = pending[1:]
			inPending[s] = false
			st := slaves[s]
			if !st.alive {
				continue
			}
			batch := solver.Stack.TakeBottom(p.StealUnit)
			if err := c.Send(s, tagFTWork, encodeFTWork(st.lastSteal, batch)); err != nil {
				// Unreachable: take the work back and write the slave off.
				solver.Stack.PushAll(batch)
				markDead(s)
				continue
			}
			st.served = st.lastSteal
			st.outstanding = batch
			handled++
			if o != nil {
				o.EmitCtx(c.Env().Now(), obs.CtxOf(c.Env()), "knap", "serve", trk,
					obs.Int("to", int64(s)), obs.Int("nodes", int64(len(batch))))
			}
		}
	}
	handleMsg := func(m mpi.Message) error {
		st := slaves[m.Src]
		if st == nil {
			return fmt.Errorf("knapsack ft master: message from unknown rank %d", m.Src)
		}
		st.lastHeard = c.Env().Now()
		st.alive = true // any message resurrects a falsely-declared death
		switch m.Tag {
		case tagFTSteal:
			seq, snap, err := decodeFTSteal(m.Data)
			if err != nil {
				return err
			}
			st.snap = snap
			switch {
			case seq > st.lastSteal:
				// The slave's proof that its previous batch is fully
				// expanded: drop it from the ledger and queue the request.
				st.lastSteal = seq
				st.outstanding = nil
				if !inPending[m.Src] {
					pending = append(pending, m.Src)
					inPending[m.Src] = true
				}
			case seq == st.lastSteal:
				if st.served == seq && len(st.outstanding) > 0 {
					// Same request again with the batch still on the ledger:
					// the reply was lost or is slow. Resend the identical
					// batch; the slave discards duplicates by sequence.
					if err := c.Send(m.Src, tagFTWork, encodeFTWork(seq, st.outstanding)); err != nil {
						markDead(m.Src)
					}
				} else if !inPending[m.Src] {
					// Not served yet, or served-then-reclaimed on a false
					// death: treat as a live request.
					pending = append(pending, m.Src)
					inPending[m.Src] = true
				}
			}
			// seq < lastSteal: stale duplicate from before a resend; ignore.
		case tagFTBack:
			snap, ns, err := decodeFTBack(m.Data)
			if err != nil {
				return err
			}
			st.snap = snap
			solver.Stack.PushAll(ns)
		case tagFTDone:
			// A straggler finishing after a false death; keep its totals.
			b := nexus.FromBytes(m.Data)
			if snap, err := getSnapshot(b); err == nil {
				st.snap = snap
			}
		default:
			return fmt.Errorf("knapsack ft master: unexpected tag %d from %d", m.Tag, m.Src)
		}
		return nil
	}
	idleDone := func() bool {
		for s := 1; s < size; s++ {
			if slaves[s].alive && !inPending[s] {
				return false
			}
		}
		return true
	}

	for {
		if solver.Stack.Len() > 0 {
			ran := solver.BranchN(p.Interval)
			if p.NodeCost > 0 && ran > 0 {
				c.Env().Compute(time.Duration(ran) * p.NodeCost)
			}
			for c.Iprobe(mpi.AnySource, mpi.AnyTag) {
				m, err := c.Recv(mpi.AnySource, mpi.AnyTag)
				if err != nil {
					return nil, err
				}
				if err := handleMsg(m); err != nil {
					return nil, err
				}
			}
			serve()
			continue
		}
		if idleDone() {
			break
		}
		m, ok, err := c.RecvTimeout(mpi.AnySource, mpi.AnyTag, p.SlaveTimeout)
		if err != nil {
			return nil, err
		}
		if p.HeartbeatEvery > 0 {
			// Slaves beat while computing, so per-slave silence is an honest
			// death signal: reclaim even while other slaves keep talking
			// (starving peers resending steals must not shield a dead slave's
			// outstanding batch from reclamation).
			now := c.Env().Now()
			for s := 1; s < size; s++ {
				if slaves[s].alive && now-slaves[s].lastHeard >= p.SlaveTimeout {
					markDead(s)
				}
			}
		}
		if !ok {
			// Nobody spoke for a whole timeout while we starve: reclaim from
			// every slave that has been silent at least as long.
			now := c.Env().Now()
			for s := 1; s < size; s++ {
				if slaves[s].alive && now-slaves[s].lastHeard >= p.SlaveTimeout {
					markDead(s)
				}
			}
			continue
		}
		if err := handleMsg(m); err != nil {
			return nil, err
		}
		serve()
	}

	// Dismiss the survivors and collect their final totals. Failures here
	// are tolerated — the optimum is already exact, and the piggybacked
	// snapshot stands in for a lost final report.
	for s := 1; s < size; s++ {
		if !slaves[s].alive {
			continue
		}
		if err := c.Send(s, tagFTTerm, nil); err != nil {
			markDead(s)
		}
	}
	for s := 1; s < size; s++ {
		if !slaves[s].alive {
			continue
		}
		m, ok, err := c.RecvTimeout(s, tagFTDone, p.SlaveTimeout)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		b := nexus.FromBytes(m.Data)
		if snap, err := getSnapshot(b); err == nil {
			slaves[s].snap = snap
		}
	}

	res := &Result{
		Best:          solver.Best,
		Elapsed:       c.Env().Now() - start,
		MasterHandled: handled,
	}
	res.Stats = append(res.Stats, RankStats{Rank: 0, Name: c.Name(0), Traversed: solver.Traversed})
	res.TotalTraversed = solver.Traversed
	for s := 1; s < size; s++ {
		snap := slaves[s].snap
		if snap.best > res.Best {
			res.Best = snap.best
		}
		res.Stats = append(res.Stats, RankStats{
			Rank: s, Name: c.Name(s),
			Steals: snap.steals, Traversed: snap.traversed, SentBack: snap.sentBack,
		})
		res.TotalTraversed += snap.traversed
	}
	return res, nil
}

func runFTSlave(c *mpi.Comm, in *Instance, p FTParams) (*Result, error) {
	worker := NewWorker(in)
	worker.PruneBound = p.PruneBound
	var seq, steals, sentBack int64
	o, trk, _ := knapObs(c, worker.Best)
	snapshot := func() ftSnapshot {
		return ftSnapshot{best: worker.Best, traversed: worker.Traversed, sentBack: sentBack, steals: steals}
	}
	finish := func() (*Result, error) {
		// Best effort: the master falls back to the last piggybacked
		// snapshot if this report is lost.
		_ = c.Send(0, tagFTDone, func() []byte {
			b := nexus.NewBuffer()
			putSnapshot(b, snapshot())
			return b.Bytes()
		}())
		return &Result{Best: worker.Best}, nil
	}
	opsSinceShare := 0
	lastContact := c.Env().Now()
	sendBack := func(k int) error {
		batch := worker.Stack.TakeBottom(k)
		sentBack += int64(len(batch))
		opsSinceShare = 0
		lastContact = c.Env().Now()
		return c.Send(0, tagFTBack, encodeFTBack(snapshot(), batch))
	}
	for {
		if worker.Stack.Len() == 0 {
			seq++
			steals++
			if o != nil {
				o.EmitCtx(c.Env().Now(), obs.CtxOf(c.Env()), "knap", "steal", trk, obs.Int("seq", seq))
				o.Metrics().Counter("knap.steals").Add(1)
			}
			retries := 0
			for worker.Stack.Len() == 0 {
				if err := c.Send(0, tagFTSteal, encodeFTSteal(seq, snapshot())); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrOrphaned, err)
				}
				m, ok, err := c.RecvTimeout(0, mpi.AnyTag, p.StealTimeout)
				if err != nil {
					return nil, err
				}
				if !ok {
					retries++
					if retries > p.StealRetries {
						return nil, ErrOrphaned
					}
					continue // resend the SAME sequence number
				}
				switch m.Tag {
				case tagFTTerm:
					return finish()
				case tagFTWork:
					gotSeq, ns, err := decodeFTWork(m.Data)
					if err != nil {
						return nil, err
					}
					if gotSeq != seq {
						continue // duplicate reply to an older steal; drop
					}
					worker.Stack.PushAll(ns)
					lastContact = c.Env().Now()
				default:
					return nil, fmt.Errorf("knapsack ft slave: unexpected tag %d", m.Tag)
				}
			}
			continue
		}
		ran := worker.BranchN(p.Interval)
		opsSinceShare += ran
		if p.NodeCost > 0 && ran > 0 {
			c.Env().Compute(time.Duration(ran) * p.NodeCost)
		}
		switch {
		case p.BackThreshold > 0 && worker.Stack.Len() > p.BackThreshold:
			if err := sendBack(p.BackUnit); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrOrphaned, err)
			}
		case p.ShareInterval > 0 && opsSinceShare >= p.ShareInterval && worker.Stack.Len() > p.BackUnit+1:
			if err := sendBack(p.BackUnit); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrOrphaned, err)
			}
		case p.HeartbeatEvery > 0 && c.Env().Now()-lastContact >= p.HeartbeatEvery:
			// Liveness beat: an empty send-back refreshing the master's
			// lastHeard (and snapshot) so a long subtree expansion is not
			// mistaken for death under per-slave reclamation.
			if err := sendBack(0); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrOrphaned, err)
			}
		}
	}
}
