package knapsack

import (
	"testing"
	"time"

	"nxcluster/internal/mpi"
)

// TestRunFTHeartbeatReclaimsSilentSlaveAmongChattyPeers pins the gray-failure
// fix: a dead slave holding an outstanding batch while a healthy peer keeps
// the master's receive loop busy (results and steal requests) means TOTAL
// silence never happens, so the legacy reclaim path never fires. With
// HeartbeatEvery set, per-slave silence is an honest death signal and the
// master reclaims the batch while the chatty peer stays up.
func TestRunFTHeartbeatReclaimsSilentSlaveAmongChattyPeers(t *testing.T) {
	in := NoPruning(13)
	wantBest, wantNodes := SolveExhaustive(in)
	k, net, w := buildFTWorld(3)
	var res *Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := RunFT(c, in, FTParams{
			Params:         Params{Interval: 50, StealUnit: 3, NodeCost: 200 * time.Microsecond},
			SlaveTimeout:   200 * time.Millisecond,
			StealTimeout:   50 * time.Millisecond,
			StealRetries:   1000, // the healthy slave must never orphan
			HeartbeatEvery: 50 * time.Millisecond,
		})
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	k.After(300*time.Millisecond, func() { _ = net.CrashHost("node2") })
	// RunUntil, not Run: if the reclaim regressed, the master and the starved
	// healthy slave would exchange steals forever and the queue never drains.
	k.RunUntil(60 * time.Second)
	k.Shutdown()
	if res == nil {
		t.Fatal("master produced no result: silent slave's batch never reclaimed")
	}
	if res.Best != wantBest {
		t.Fatalf("best = %d, want %d", res.Best, wantBest)
	}
	if res.TotalTraversed < wantNodes {
		t.Fatalf("traversed %d < %d: work lost, not reclaimed", res.TotalTraversed, wantNodes)
	}
	errs := w.RankErrs()
	if errs[0] != nil {
		t.Fatalf("master error: %v", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("healthy slave error: %v", errs[1])
	}
}

// TestRunFTHeartbeatNoFalseKills guards the other edge of the same knife: a
// fault-free run where slaves spend many multiples of SlaveTimeout expanding
// a batch. Per-slave reclaim without the liveness beats would kill and
// re-expand those batches; with beats flowing between expansion intervals
// (Interval x NodeCost, the beat granularity, kept under SlaveTimeout) the
// run must stay exact — every node expanded exactly once.
func TestRunFTHeartbeatNoFalseKills(t *testing.T) {
	in := NoPruning(10)
	wantBest, wantNodes := SolveExhaustive(in)
	k, _, w := buildFTWorld(3)
	var res *Result
	w.Launch(func(c *mpi.Comm) error {
		// A 20-node batch takes 20 x 20ms = 400ms >> SlaveTimeout, but the
		// slave checks for a due beat every 2 nodes (40ms), so it is never
		// silent long enough to be falsely reclaimed.
		r, err := RunFT(c, in, FTParams{
			Params:         Params{Interval: 2, StealUnit: 20, NodeCost: 20 * time.Millisecond},
			SlaveTimeout:   200 * time.Millisecond,
			StealTimeout:   50 * time.Millisecond,
			StealRetries:   1000,
			HeartbeatEvery: 50 * time.Millisecond,
		})
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Best != wantBest {
		t.Fatalf("best = %d, want %d", res.Best, wantBest)
	}
	if res.TotalTraversed != wantNodes {
		t.Fatalf("traversed = %d, want exactly %d (a false kill duplicates work)",
			res.TotalTraversed, wantNodes)
	}
}
