package knapsack

import (
	"testing"
	"testing/quick"
)

func TestNoPruningTraversesFullTree(t *testing.T) {
	for _, n := range []int{1, 4, 10, 16} {
		in := NoPruning(n)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		best, traversed := SolveExhaustive(in)
		if want := FullTreeNodes(n); traversed != want {
			t.Fatalf("n=%d traversed %d nodes, want %d (full tree)", n, traversed, want)
		}
		if best != in.TotalProfit() {
			t.Fatalf("n=%d best=%d, want all-items profit %d", n, best, in.TotalProfit())
		}
	}
}

func TestSolveMatchesBruteForceRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in := Random(14, 100, seed)
		want := BruteForce(in)
		got, _ := Solve(in)
		if got != want {
			t.Fatalf("seed %d: Solve=%d brute=%d", seed, got, want)
		}
		gotEx, _ := SolveExhaustive(in)
		if gotEx != want {
			t.Fatalf("seed %d: SolveExhaustive=%d brute=%d", seed, gotEx, want)
		}
	}
}

func TestSolveMatchesBruteForceCorrelated(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := StronglyCorrelated(13, 50, seed)
		want := BruteForce(in)
		got, _ := Solve(in)
		if got != want {
			t.Fatalf("seed %d: Solve=%d brute=%d", seed, got, want)
		}
	}
}

func TestBoundPruningReducesWork(t *testing.T) {
	in := Random(18, 1000, 7)
	_, pruned := Solve(in)
	_, full := SolveExhaustive(in)
	if pruned >= full {
		t.Fatalf("bound pruning traversed %d >= exhaustive %d", pruned, full)
	}
}

func TestQuickSolverOptimality(t *testing.T) {
	prop := func(seed int64, corr bool) bool {
		var in *Instance
		if corr {
			in = StronglyCorrelated(12, 40, seed)
		} else {
			in = Random(12, 80, seed)
		}
		got, _ := Solve(in)
		return got == BruteForce(in)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStackTakeTop(t *testing.T) {
	var s Stack
	for i := 0; i < 5; i++ {
		s.Push(Node{Index: int32(i)})
	}
	top := s.TakeTop(2)
	if len(top) != 2 || top[0].Index != 3 || top[1].Index != 4 {
		t.Fatalf("TakeTop(2) = %v", top)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	rest := s.TakeTop(10)
	if len(rest) != 3 {
		t.Fatalf("TakeTop(10) returned %d", len(rest))
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop on empty succeeded")
	}
}

func TestEncodeDecodeNodes(t *testing.T) {
	ns := []Node{{Index: 1, Value: 100, Capacity: 50}, {Index: 30, Value: -2, Capacity: 0}}
	got, err := DecodeNodes(EncodeNodes(ns))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ns) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range ns {
		if got[i] != ns[i] {
			t.Fatalf("node %d = %+v, want %+v", i, got[i], ns[i])
		}
	}
	if _, err := DecodeNodes([]byte{0, 0, 0}); err == nil {
		t.Fatal("truncated batch decoded")
	}
}

func TestQuickNodeCodecRoundTrip(t *testing.T) {
	prop := func(idx int32, val, cap int64) bool {
		ns := []Node{{Index: idx, Value: val, Capacity: cap}}
		got, err := DecodeNodes(EncodeNodes(ns))
		return err == nil && len(got) == 1 && got[0] == ns[0]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadInstances(t *testing.T) {
	if err := (&Instance{}).Validate(); err == nil {
		t.Fatal("empty instance validated")
	}
	if err := (&Instance{Items: []Item{{1, 1}}, Capacity: -1}).Validate(); err == nil {
		t.Fatal("negative capacity validated")
	}
	if err := (&Instance{Items: []Item{{-1, 1}}, Capacity: 1}).Validate(); err == nil {
		t.Fatal("negative profit validated")
	}
}

func TestBruteForceSmall(t *testing.T) {
	in := &Instance{
		Items:    []Item{{Profit: 60, Weight: 10}, {Profit: 100, Weight: 20}, {Profit: 120, Weight: 30}},
		Capacity: 50,
	}
	if got := BruteForce(in); got != 220 {
		t.Fatalf("BruteForce = %d, want 220", got)
	}
	best, _ := Solve(in)
	if best != 220 {
		t.Fatalf("Solve = %d, want 220", best)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Interval <= 0 || p.StealUnit <= 0 || p.BackUnit <= 0 {
		t.Fatalf("DefaultParams has non-positive knobs: %+v", p)
	}
	var zero Params
	wd := zero.withDefaults()
	if wd.Interval <= 0 || wd.StealUnit <= 0 || wd.BackUnit <= 0 {
		t.Fatalf("withDefaults left non-positive knobs: %+v", wd)
	}
}

func TestInstanceCodecRoundTrip(t *testing.T) {
	for _, in := range []*Instance{
		Normalized(50, 4),
		Random(20, 500, 3),
		StronglyCorrelated(15, 100, 9),
	} {
		got, err := DecodeInstance(EncodeInstance(in))
		if err != nil {
			t.Fatal(err)
		}
		if got.Capacity != in.Capacity || len(got.Items) != len(in.Items) {
			t.Fatalf("shape mismatch")
		}
		for i := range in.Items {
			if got.Items[i] != in.Items[i] {
				t.Fatalf("item %d mismatch", i)
			}
		}
	}
	if _, err := DecodeInstance([]byte{1, 2}); err == nil {
		t.Fatal("truncated instance decoded")
	}
	// An encoded-but-invalid instance must fail validation on decode.
	bad := &Instance{Items: []Item{{Profit: -1, Weight: 1}}, Capacity: 1}
	if _, err := DecodeInstance(EncodeInstance(bad)); err == nil {
		t.Fatal("invalid instance decoded")
	}
}

func TestQuickInstanceCodec(t *testing.T) {
	prop := func(cap uint16, profits []uint16) bool {
		if len(profits) == 0 {
			return true
		}
		in := &Instance{Capacity: int64(cap)}
		for _, p := range profits {
			in.Items = append(in.Items, Item{Profit: int64(p), Weight: int64(p % 7)})
		}
		got, err := DecodeInstance(EncodeInstance(in))
		if err != nil {
			return false
		}
		for i := range in.Items {
			if got.Items[i] != in.Items[i] {
				return false
			}
		}
		return got.Capacity == in.Capacity
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
