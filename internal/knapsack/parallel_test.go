package knapsack

import (
	"fmt"
	"testing"
	"time"

	"nxcluster/internal/mpi"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
)

// runParallel executes the solver on a simulated homogeneous LAN cluster and
// returns the master's Result.
func runParallel(t *testing.T, ranks int, in *Instance, p Params) *Result {
	t.Helper()
	k := sim.New()
	net := simnet.New(k)
	net.AddRouter("sw", "")
	pls := make([]mpi.Placement, ranks)
	for i := range pls {
		name := fmt.Sprintf("node%d", i)
		net.AddHost(name, simnet.HostConfig{})
		net.Connect(name, "sw", simnet.LinkConfig{Latency: 100 * time.Microsecond, Bandwidth: 12 << 20})
		pls[i] = mpi.Placement{Name: name, Spawn: net.Node(name).SpawnOn}
	}
	w := mpi.NewWorld(pls)
	var res *Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := Run(c, in, p)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("master produced no result")
	}
	return res
}

func TestParallelMatchesSequentialNoPruning(t *testing.T) {
	in := NoPruning(14)
	wantBest, wantNodes := SolveExhaustive(in)
	res := runParallel(t, 4, in, Params{Interval: 50, StealUnit: 3, NodeCost: time.Microsecond})
	if res.Best != wantBest {
		t.Fatalf("parallel best = %d, want %d", res.Best, wantBest)
	}
	// Work conservation: every node expanded exactly once across ranks.
	if res.TotalTraversed != wantNodes {
		t.Fatalf("total traversed = %d, want %d", res.TotalTraversed, wantNodes)
	}
}

func TestParallelMatchesSequentialRandom(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		in := Random(16, 200, seed)
		wantBest := BruteForce(in)
		res := runParallel(t, 5, in, Params{Interval: 30, StealUnit: 2, NodeCost: 500 * time.Nanosecond})
		if res.Best != wantBest {
			t.Fatalf("seed %d: parallel best = %d, want %d", seed, res.Best, wantBest)
		}
	}
}

func TestParallelSingleRankDegeneratesToSequential(t *testing.T) {
	in := NoPruning(10)
	res := runParallel(t, 1, in, Params{Interval: 100, NodeCost: time.Microsecond})
	if res.Best != in.TotalProfit() {
		t.Fatalf("best = %d", res.Best)
	}
	if res.TotalTraversed != FullTreeNodes(10) {
		t.Fatalf("traversed = %d", res.TotalTraversed)
	}
	if res.MasterHandled != 0 {
		t.Fatalf("handled = %d steals with no slaves", res.MasterHandled)
	}
}

func TestParallelStatsAccounting(t *testing.T) {
	in := NoPruning(13)
	res := runParallel(t, 4, in, Params{Interval: 40, StealUnit: 2, NodeCost: time.Microsecond})
	if len(res.Stats) != 4 {
		t.Fatalf("stats for %d ranks", len(res.Stats))
	}
	var steals int64
	for _, st := range res.Stats[1:] {
		if st.Steals == 0 {
			t.Errorf("slave %d never stole", st.Rank)
		}
		steals += st.Steals
	}
	// Every slave's final steal request is left unanswered at termination,
	// so the master handles exactly (total steals - nslaves).
	if res.MasterHandled != steals-3 {
		t.Fatalf("master handled %d, slaves requested %d (want handled = requests-3)", res.MasterHandled, steals)
	}
	if res.Stats[0].Steals != 0 {
		t.Fatal("master reported steal requests")
	}
}

func TestParallelLoadBalanceOnHeterogeneousCluster(t *testing.T) {
	// A 2x-speed host and a 0.5x host: self-scheduling should give the fast
	// host substantially more nodes.
	in := NoPruning(15)
	k := sim.New()
	net := simnet.New(k)
	net.AddRouter("sw", "")
	speeds := []float64{1, 2, 0.5}
	pls := make([]mpi.Placement, 3)
	for i, sp := range speeds {
		name := fmt.Sprintf("node%d", i)
		net.AddHost(name, simnet.HostConfig{Speed: sp})
		net.Connect(name, "sw", simnet.LinkConfig{Latency: 100 * time.Microsecond, Bandwidth: 12 << 20})
		pls[i] = mpi.Placement{Name: name, Spawn: net.Node(name).SpawnOn}
	}
	w := mpi.NewWorld(pls)
	var res *Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := Run(c, in, Params{Interval: 50, StealUnit: 4, NodeCost: 2 * time.Microsecond})
		if c.Rank() == 0 {
			res = r
		}
		return err
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	fast, slow := res.Stats[1], res.Stats[2]
	if fast.Traversed <= slow.Traversed {
		t.Fatalf("fast slave traversed %d <= slow slave %d; self-scheduling failed",
			fast.Traversed, slow.Traversed)
	}
}

func TestParallelBackUnitReturnsWork(t *testing.T) {
	in := NoPruning(14)
	res := runParallel(t, 3, in, Params{
		Interval: 20, StealUnit: 8, BackUnit: 4, BackThreshold: 10,
		NodeCost: time.Microsecond,
	})
	if res.Best != in.TotalProfit() {
		t.Fatalf("best = %d", res.Best)
	}
	if res.TotalTraversed != FullTreeNodes(14) {
		t.Fatalf("traversed = %d, want %d", res.TotalTraversed, FullTreeNodes(14))
	}
	var sentBack int64
	for _, st := range res.Stats {
		sentBack += st.SentBack
	}
	if sentBack == 0 {
		t.Fatal("BackThreshold=10 never triggered a send-back")
	}
}

func TestParallelSpeedupOnSimulatedCluster(t *testing.T) {
	// The headline property behind Table 4: in virtual time, 4 workers beat
	// 1 worker substantially on the normalized workload.
	in := NoPruning(15)
	p := Params{Interval: 100, StealUnit: 4, NodeCost: 2 * time.Microsecond}
	t1 := runParallel(t, 1, in, p).Elapsed
	t4 := runParallel(t, 4, in, p).Elapsed
	speedup := float64(t1) / float64(t4)
	if speedup < 2.0 {
		t.Fatalf("speedup on 4 ranks = %.2f (t1=%v t4=%v), want >= 2", speedup, t1, t4)
	}
}

func TestParallelWithBoundPruningStillOptimal(t *testing.T) {
	in := Random(16, 500, 42)
	want := BruteForce(in)
	res := runParallel(t, 4, in, Params{Interval: 25, StealUnit: 2, NodeCost: time.Microsecond, PruneBound: true})
	if res.Best != want {
		t.Fatalf("pruned parallel best = %d, want %d", res.Best, want)
	}
	_, seqNodes := SolveExhaustive(in)
	if res.TotalTraversed > seqNodes {
		t.Fatalf("pruned parallel traversed %d > exhaustive %d", res.TotalTraversed, seqNodes)
	}
}
