// Package knapsack implements the paper's benchmark workload: the 0-1
// knapsack problem solved by branch and bound, both sequentially and in the
// master/slave self-scheduling parallel formulation of section 4.3 (dynamic
// load balancing by work stealing with the interval, stealunit and backunit
// parameters).
package knapsack

import (
	"errors"
	"fmt"
	"math/rand"

	"nxcluster/internal/nexus"
)

// Item is one knapsack item.
type Item struct {
	// Profit is the value gained by taking the item.
	Profit int64
	// Weight is the capacity consumed by taking the item.
	Weight int64
}

// Instance is a 0-1 knapsack problem.
type Instance struct {
	// Items to choose from; index order is the branching order.
	Items []Item
	// Capacity is the weight budget.
	Capacity int64
}

// N returns the item count.
func (in *Instance) N() int { return len(in.Items) }

// Validate checks basic sanity.
func (in *Instance) Validate() error {
	if len(in.Items) == 0 {
		return errors.New("knapsack: no items")
	}
	if in.Capacity < 0 {
		return errors.New("knapsack: negative capacity")
	}
	for i, it := range in.Items {
		if it.Weight < 0 || it.Profit < 0 {
			return fmt.Errorf("knapsack: item %d has negative weight or profit", i)
		}
	}
	return nil
}

// TotalProfit sums all profits.
func (in *Instance) TotalProfit() int64 {
	var s int64
	for _, it := range in.Items {
		s += it.Profit
	}
	return s
}

// NoPruning builds the paper's normalized workload: input data chosen so
// that no branches are pruned and the entire 2^(n+1)-1 node search space is
// traced ("in order to evaluate the performance characteristics of the
// cluster system clear and normalize the problem"). Every item fits
// regardless of choices (weights sum to at most the capacity), so the
// capacity check never cuts a subtree.
func NoPruning(n int) *Instance {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Profit: int64(i%7 + 1), Weight: 1}
	}
	return &Instance{Items: items, Capacity: int64(n)}
}

// FullTreeNodes returns the node count a no-pruning instance of n items
// traverses: the full binary tree with n+1 levels.
func FullTreeNodes(n int) int64 { return (int64(1) << (n + 1)) - 1 }

// Normalized builds the paper's experiment workload: n items (the paper
// uses 50) of unit weight with capacity cap. Bound pruning stays off, so the
// entire feasible space — every prefix fixing at most cap items to 1 — is
// traced, giving a depth-n tree whose size is controlled by cap (cap 4 is
// ~2.6 million nodes at n=50, cap 5 ~20.6 million, cap 6 ~136 million; the
// paper's runs traverse billions). Deep trees with capacity-graded subtree
// sizes are what make the paper's top-of-stack stealing balance well.
func Normalized(n, cap int) *Instance {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Profit: int64(i%7 + 1), Weight: 1}
	}
	return &Instance{Items: items, Capacity: int64(cap)}
}

// NormalizedTreeNodes returns the exact node count Normalized(n, cap)
// traverses: the number of feasible decision prefixes.
func NormalizedTreeNodes(n, cap int) int64 {
	// nodes = sum over depth d of the count of length-d binary strings with
	// at most cap ones; computed with a rolling binomial row.
	var total int64
	binom := make([]int64, n+1)
	binom[0] = 1
	for d := 0; d <= n; d++ {
		for j := 0; j <= cap && j <= d; j++ {
			total += binom[j]
		}
		if d == n {
			break
		}
		// Advance row d -> d+1 in place (right to left).
		for j := d + 1; j > 0; j-- {
			binom[j] += binom[j-1]
		}
	}
	return total
}

// Random builds an uncorrelated random instance: weights and profits in
// [1, maxCoeff], capacity = half the total weight — the classic generator
// from Martello & Toth's KNAPSACK PROBLEMS (the paper's reference [10]).
func Random(n int, maxCoeff int64, seed int64) *Instance {
	r := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	var wsum int64
	for i := range items {
		items[i] = Item{
			Profit: r.Int63n(maxCoeff) + 1,
			Weight: r.Int63n(maxCoeff) + 1,
		}
		wsum += items[i].Weight
	}
	return &Instance{Items: items, Capacity: wsum / 2}
}

// StronglyCorrelated builds a strongly correlated instance (profit = weight
// + maxCoeff/10), the hard family from Martello & Toth.
func StronglyCorrelated(n int, maxCoeff int64, seed int64) *Instance {
	r := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	var wsum int64
	for i := range items {
		w := r.Int63n(maxCoeff) + 1
		items[i] = Item{Profit: w + maxCoeff/10, Weight: w}
		wsum += w
	}
	return &Instance{Items: items, Capacity: wsum / 2}
}

// BruteForce computes the optimal profit by exhaustive enumeration; usable
// only for small n, as the test oracle.
func BruteForce(in *Instance) int64 {
	n := in.N()
	if n > 24 {
		panic("knapsack: BruteForce limited to n <= 24")
	}
	var best int64
	for mask := 0; mask < 1<<n; mask++ {
		var p, w int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p += in.Items[i].Profit
				w += in.Items[i].Weight
			}
		}
		if w <= in.Capacity && p > best {
			best = p
		}
	}
	return best
}

// EncodeInstance serializes an instance for staging through GASS ("a master
// reads a data file" in the paper's algorithm).
func EncodeInstance(in *Instance) []byte {
	b := nexus.NewBuffer()
	b.PutInt64(in.Capacity)
	b.PutInt32(int32(len(in.Items)))
	for _, it := range in.Items {
		b.PutInt64(it.Profit)
		b.PutInt64(it.Weight)
	}
	return b.Bytes()
}

// DecodeInstance parses a staged instance file.
func DecodeInstance(data []byte) (*Instance, error) {
	b := nexus.FromBytes(data)
	in := &Instance{}
	var err error
	if in.Capacity, err = b.GetInt64(); err != nil {
		return nil, err
	}
	n, err := b.GetInt32()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, errors.New("knapsack: negative item count")
	}
	in.Items = make([]Item, n)
	for i := range in.Items {
		if in.Items[i].Profit, err = b.GetInt64(); err != nil {
			return nil, err
		}
		if in.Items[i].Weight, err = b.GetInt64(); err != nil {
			return nil, err
		}
	}
	return in, in.Validate()
}
