package knapsack

import (
	"sort"

	"nxcluster/internal/nexus"
)

// Node is one search-tree node, exactly the paper's representation: "each
// node of a search tree is represented by a set of index, value, and
// capacity", where index is the first item not yet fixed, value the profit
// of items fixed to 1, and capacity the remaining weight budget.
type Node struct {
	Index    int32
	Value    int64
	Capacity int64
}

// Stack is the LIFO the search tree lives on; nodes are pushed by the branch
// operation and popped for expansion.
type Stack struct {
	nodes []Node
}

// Push adds a node.
func (s *Stack) Push(n Node) { s.nodes = append(s.nodes, n) }

// Pop removes and returns the most recent node.
func (s *Stack) Pop() (Node, bool) {
	if len(s.nodes) == 0 {
		return Node{}, false
	}
	n := s.nodes[len(s.nodes)-1]
	s.nodes = s.nodes[:len(s.nodes)-1]
	return n, true
}

// TakeTop removes and returns up to k nodes from the top of the stack —
// the unit of work stealing ("the master sends stealunit nodes on top of its
// stack to the slave").
func (s *Stack) TakeTop(k int) []Node {
	if k > len(s.nodes) {
		k = len(s.nodes)
	}
	out := make([]Node, k)
	copy(out, s.nodes[len(s.nodes)-k:])
	s.nodes = s.nodes[:len(s.nodes)-k]
	return out
}

// TakeBottom removes and returns up to k nodes from the bottom of the
// stack: the oldest, shallowest nodes, whose subtrees are the largest. This
// is what a slave ships back to the master for redistribution — returning
// coarse work keeps the master able to feed other processors while the
// slave retains the deep nodes it is actively expanding.
func (s *Stack) TakeBottom(k int) []Node {
	if k > len(s.nodes) {
		k = len(s.nodes)
	}
	out := make([]Node, k)
	copy(out, s.nodes[:k])
	s.nodes = append(s.nodes[:0], s.nodes[k:]...)
	return out
}

// PushAll pushes nodes in order.
func (s *Stack) PushAll(ns []Node) { s.nodes = append(s.nodes, ns...) }

// Len reports the stack depth.
func (s *Stack) Len() int { return len(s.nodes) }

// Solver holds the state of a branch-and-bound search over one instance.
type Solver struct {
	in *Instance
	// PruneBound enables fractional-relaxation bound pruning. The paper's
	// normalized experiments run with it off so the entire space is traced;
	// real solves want it on.
	PruneBound bool

	Stack     Stack
	Best      int64
	Traversed int64 // nodes popped ("the number of nodes which is traversed")

	// densityOrder lists item indices by decreasing profit density; the
	// fractional-relaxation bound must fill in this order to be a valid
	// upper bound.
	densityOrder []int
}

// NewSolver prepares a solver with the root node pushed, as the paper's
// master does.
func NewSolver(in *Instance) *Solver {
	s := &Solver{in: in, Best: -1}
	s.Stack.Push(Node{Index: 0, Value: 0, Capacity: in.Capacity})
	return s
}

// NewWorker prepares a solver with an empty stack (a slave steals its work).
func NewWorker(in *Instance) *Solver {
	return &Solver{in: in, Best: -1}
}

func (s *Solver) initDensityOrder() {
	s.densityOrder = make([]int, s.in.N())
	for i := range s.densityOrder {
		s.densityOrder[i] = i
	}
	items := s.in.Items
	sort.SliceStable(s.densityOrder, func(a, b int) bool {
		ia, ib := items[s.densityOrder[a]], items[s.densityOrder[b]]
		// Zero-weight items have infinite density.
		if ia.Weight == 0 || ib.Weight == 0 {
			return ib.Weight != 0
		}
		return ia.Profit*ib.Weight > ib.Profit*ia.Weight
	})
}

// bound computes the fractional-relaxation upper bound for a node: current
// value plus a greedy fractional fill of the remaining capacity with the
// not-yet-fixed items, taken in decreasing profit density.
func (s *Solver) bound(n Node) int64 {
	if s.densityOrder == nil {
		s.initDensityOrder()
	}
	b := n.Value
	cap := n.Capacity
	for _, i := range s.densityOrder {
		if i < int(n.Index) {
			continue // already fixed by this node
		}
		it := s.in.Items[i]
		if it.Weight <= cap {
			b += it.Profit
			cap -= it.Weight
		} else {
			b += it.Profit * cap / it.Weight
			// Fractional fill exhausts the capacity in LP-relaxation terms;
			// rounding down keeps it a valid integer bound.
			break
		}
	}
	return b
}

// Branch performs one branch operation, the paper's three steps: pop a
// node, check it, and push its (one or two) children. It reports whether a
// node was available.
func (s *Solver) Branch() bool {
	n, ok := s.Stack.Pop()
	if !ok {
		return false
	}
	s.Traversed++
	if n.Value > s.Best {
		s.Best = n.Value
	}
	if int(n.Index) >= s.in.N() {
		return true // leaf: all items fixed
	}
	if s.PruneBound && s.bound(n) <= s.Best {
		return true // cannot beat the incumbent
	}
	it := s.in.Items[n.Index]
	// Child 0: item not taken. Always feasible.
	s.Stack.Push(Node{Index: n.Index + 1, Value: n.Value, Capacity: n.Capacity})
	// Child 1: item taken, if it fits.
	if it.Weight <= n.Capacity {
		s.Stack.Push(Node{Index: n.Index + 1, Value: n.Value + it.Profit, Capacity: n.Capacity - it.Weight})
	}
	return true
}

// BranchN performs up to k branch operations ("the master repeats the branch
// operation interval times") and returns how many ran before the stack
// emptied.
func (s *Solver) BranchN(k int) int {
	for i := 0; i < k; i++ {
		if !s.Branch() {
			return i
		}
	}
	return k
}

// Run exhausts the stack and returns the best value found.
func (s *Solver) Run() int64 {
	for s.Branch() {
	}
	return s.Best
}

// Solve runs a sequential branch-and-bound with bound pruning enabled and
// returns (optimum, nodes traversed).
func Solve(in *Instance) (int64, int64) {
	s := NewSolver(in)
	s.PruneBound = true
	best := s.Run()
	return best, s.Traversed
}

// SolveExhaustive runs the paper's normalized sequential search (no bound
// pruning) and returns (optimum, nodes traversed).
func SolveExhaustive(in *Instance) (int64, int64) {
	s := NewSolver(in)
	best := s.Run()
	return best, s.Traversed
}

// EncodeNodes serializes a work batch for an MPI message.
func EncodeNodes(ns []Node) []byte {
	b := nexus.NewBuffer()
	b.PutInt32(int32(len(ns)))
	for _, n := range ns {
		b.PutInt32(n.Index)
		b.PutInt64(n.Value)
		b.PutInt64(n.Capacity)
	}
	return b.Bytes()
}

// DecodeNodes parses a work batch.
func DecodeNodes(data []byte) ([]Node, error) {
	b := nexus.FromBytes(data)
	k, err := b.GetInt32()
	if err != nil {
		return nil, err
	}
	ns := make([]Node, k)
	for i := range ns {
		if ns[i].Index, err = b.GetInt32(); err != nil {
			return nil, err
		}
		if ns[i].Value, err = b.GetInt64(); err != nil {
			return nil, err
		}
		if ns[i].Capacity, err = b.GetInt64(); err != nil {
			return nil, err
		}
	}
	return ns, nil
}
