package fleet

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/hbm"
	"nxcluster/internal/mds"
	"nxcluster/internal/obs"
	"nxcluster/internal/rmf"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
)

// MaxFleetHosts bounds sites × hosts-per-site: past a million hosts the
// topology build alone dwarfs any experiment this repo runs, so the cap
// turns a typo'd scenario into a decode error instead of an OOM.
const MaxFleetHosts = 1 << 20

// msgBytes is the wire size charged for each control datagram (dispatch,
// completion): a small header-plus-payload packet.
const msgBytes = 256

// DefaultHeartbeat is the batched heartbeat / MDS publishing interval.
const DefaultHeartbeat = 10 * time.Second

// DefaultCPUsPerHost is the slot count stamped on each host when the config
// leaves CPUsPerHost at 0 (the paper's dual-CPU cluster nodes).
const DefaultCPUsPerHost = 2

// Config sizes and shapes one fleet run.
type Config struct {
	// Sites and HostsPerSite size the topology (cluster.NewFleet).
	Sites        int
	HostsPerSite int
	// CPUsPerHost is each host's slot count (default 2).
	CPUsPerHost int
	// Jobs is the total number of arrivals to generate.
	Jobs int
	// Seed drives every workload draw (default 1). The same seed always
	// produces the bit-identical run.
	Seed uint64
	// Arrivals is the λ(t) arrival process.
	Arrivals RateShape
	// Sizes is the job service-time distribution.
	Sizes SizeDist
	// Heartbeat is the batched beat + MDS publishing interval (default 10s).
	Heartbeat time.Duration
	// TraceSample, when > 0, opens a causal trace for every Nth job (1 =
	// every job). Requires Obs; sampling keeps 1M-job runs from holding a
	// span per job.
	TraceSample int
	// Obs, when non-nil, receives trace events (sampled job spans included).
	Obs *obs.Observer
}

// Validate reports a malformed configuration. The scenario DSL calls this
// during strict decode, so every message names the offending field.
func (c Config) Validate() error {
	if c.Sites < 1 {
		return fmt.Errorf("fleet: sites must be >= 1, got %d", c.Sites)
	}
	if c.HostsPerSite < 1 {
		return fmt.Errorf("fleet: hosts per site must be >= 1, got %d", c.HostsPerSite)
	}
	if int64(c.Sites)*int64(c.HostsPerSite) > MaxFleetHosts {
		return fmt.Errorf("fleet: %d sites x %d hosts = %d hosts exceeds the %d-host cap",
			c.Sites, c.HostsPerSite, int64(c.Sites)*int64(c.HostsPerSite), MaxFleetHosts)
	}
	if c.CPUsPerHost < 0 {
		return fmt.Errorf("fleet: cpus per host must be >= 0 (0 = default), got %d", c.CPUsPerHost)
	}
	if c.Jobs < 1 {
		return fmt.Errorf("fleet: jobs must be >= 1, got %d", c.Jobs)
	}
	if c.Heartbeat < 0 {
		return fmt.Errorf("fleet: heartbeat interval must be >= 0 (0 = default), got %v", c.Heartbeat)
	}
	if c.TraceSample < 0 {
		return fmt.Errorf("fleet: trace sample must be >= 0, got %d", c.TraceSample)
	}
	if err := c.Arrivals.Validate(); err != nil {
		return err
	}
	return c.Sizes.Validate()
}

// siteState is one site's control-plane state: the gateway the router
// addresses, the sharded allocator, and the FIFO overflow queue.
type siteState struct {
	gw    string
	hosts []string
	shard *rmf.Shard
	// FIFO overflow queue; qhead advances instead of shifting.
	queue []*job
	qhead int
	// outstanding is the router's (core-side) view: dispatches minus
	// completions seen back at the core. It is what placement balances on.
	outstanding int
	done        int
	// lastClass is each host's last-published state class (-1 = never), so
	// MDS publishing ships per-host rows only on change.
	lastClass []int8
}

func (s *siteState) queued() int { return len(s.queue) - s.qhead }

func (s *siteState) pushQueue(j *job) { s.queue = append(s.queue, j) }

func (s *siteState) popQueue() *job {
	if s.qhead == len(s.queue) {
		return nil
	}
	j := s.queue[s.qhead]
	s.queue[s.qhead] = nil
	s.qhead++
	if s.qhead == len(s.queue) {
		s.queue = s.queue[:0]
		s.qhead = 0
	}
	return j
}

// job is one unit of work moving through the fleet. Records are pooled and
// carry their delivery callbacks pre-bound, so the per-job steady state
// allocates nothing. A job also serves as its own service-completion event
// handler (sim.EventHandler).
type job struct {
	e       *Engine
	site    int
	host    int
	size    time.Duration
	arrived time.Duration
	tctx    obs.TraceContext

	// Delivery callbacks, bound once when the record is created.
	atGateway func()
	atHost    func()
	atGwDone  func()
	atCore    func()
}

// OnEvent fires when the job's service time elapses on its host: report
// completion one hop up to the site gateway.
func (j *job) OnEvent(k *sim.Kernel) {
	e := j.e
	s := &e.sites[j.site]
	e.must(e.net.SendMessage(e.fl.Hosts[j.site][j.host], s.gw, msgBytes, j.atGwDone))
}

// Engine drives one fleet run on a dedicated kernel. All logic is
// event-style — there are no simulated processes — so kernel cost is a
// handful of events per job.
type Engine struct {
	cfg Config
	fl  *cluster.Fleet
	k   *sim.Kernel
	net *simnet.Network
	rng *RNG
	arr *Arrivals

	mon *hbm.Monitor
	dir *mds.Directory
	pub *mds.Publisher

	sites    []siteState
	freeJobs []*job

	submitted  int
	done       int
	queuedPeak int
	sumService int64 // ns
	sumLatency int64 // ns
	latencies  []int64
	doneAt     time.Duration
	ticks      int

	arrTick  tickArrival
	beatTick tickBeat
	// refreshNames is the reused per-tick buffer of unchanged host rows.
	refreshNames []string
	err          error
}

type tickArrival struct{ e *Engine }

func (t tickArrival) OnEvent(k *sim.Kernel) { t.e.arrive() }

type tickBeat struct{ e *Engine }

func (t tickBeat) OnEvent(k *sim.Kernel) { t.e.beat() }

// New validates cfg, builds the fleet topology, and arms the first arrival
// and heartbeat events. Call Run next.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CPUsPerHost == 0 {
		cfg.CPUsPerHost = DefaultCPUsPerHost
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	fl := cluster.NewFleet(cluster.FleetOptions{
		Sites:        cfg.Sites,
		HostsPerSite: cfg.HostsPerSite,
		CPUsPerHost:  cfg.CPUsPerHost,
		Seed:         cfg.Seed,
		Obs:          cfg.Obs,
	})
	e := &Engine{
		cfg: cfg, fl: fl, k: fl.K, net: fl.Net,
		rng:       NewRNG(cfg.Seed),
		mon:       hbm.NewMonitor(cfg.Heartbeat),
		dir:       mds.NewDirectory(),
		sites:     make([]siteState, cfg.Sites),
		latencies: make([]int64, 0, cfg.Jobs),
	}
	e.pub = mds.NewPublisher(e.dir, "ou=fleet, o=grid", 3*cfg.Heartbeat)
	e.arr = NewArrivals(cfg.Arrivals, e.rng)
	for s := range e.sites {
		st := &e.sites[s]
		st.gw = fl.Gateways[s]
		st.hosts = fl.Hosts[s]
		st.shard = rmf.NewUniformShard(cfg.HostsPerSite, cfg.CPUsPerHost)
		st.lastClass = make([]int8, cfg.HostsPerSite)
		for h := range st.lastClass {
			st.lastClass[h] = -1
		}
	}
	e.arrTick = tickArrival{e}
	e.beatTick = tickBeat{e}
	e.refreshNames = make([]string, 0, cfg.HostsPerSite*cfg.Sites)
	// Arm the first arrival (absolute instant from the rate process) and
	// the first heartbeat tick.
	e.k.AfterEvent(e.arr.Next(), e.arrTick)
	e.k.AfterEvent(cfg.Heartbeat, e.beatTick)
	return e, nil
}

// must records the first internal error (an unroutable message means the
// topology is broken) and surfaces it from Run.
func (e *Engine) must(err error) {
	if err != nil && e.err == nil {
		e.err = err
	}
}

// pickSite is power-of-two-choices over the router's outstanding counts:
// sample two sites, dispatch to the less loaded (ties to the lower index).
// O(1), fully local to the core router, and within a few percent of
// least-loaded at fleet scale.
func (e *Engine) pickSite() int {
	n := len(e.sites)
	if n == 1 {
		return 0
	}
	a := e.rng.Intn(n)
	b := e.rng.Intn(n)
	if a == b {
		return a
	}
	if b < a {
		a, b = b, a
	}
	if e.sites[b].outstanding < e.sites[a].outstanding {
		return b
	}
	return a
}

func (e *Engine) getJob() *job {
	if l := len(e.freeJobs); l > 0 {
		j := e.freeJobs[l-1]
		e.freeJobs[l-1] = nil
		e.freeJobs = e.freeJobs[:l-1]
		return j
	}
	j := &job{e: e}
	j.atGateway = j.gatewayArrive
	j.atHost = j.hostArrive
	j.atGwDone = j.gatewayDone
	j.atCore = j.coreDone
	return j
}

func (e *Engine) putJob(j *job) {
	j.tctx = obs.TraceContext{}
	e.freeJobs = append(e.freeJobs, j)
}

// arrive fires one open-loop arrival at the core router: draw the job,
// place it on a site, send the dispatch datagram, and arm the next arrival.
func (e *Engine) arrive() {
	now := e.k.Now()
	j := e.getJob()
	j.site = e.pickSite()
	j.size = e.cfg.Sizes.Sample(e.rng)
	j.arrived = now
	e.submitted++
	e.sumService += int64(j.size)
	if e.cfg.TraceSample > 0 && e.cfg.Obs != nil && (e.submitted-1)%e.cfg.TraceSample == 0 {
		j.tctx = e.cfg.Obs.BeginTrace(now, "fleet", "job", cluster.FleetSite(j.site))
	}
	s := &e.sites[j.site]
	s.outstanding++
	e.must(e.net.SendMessage(cluster.FleetCore, s.gw, msgBytes, j.atGateway))
	if e.submitted < e.cfg.Jobs {
		e.k.AfterEvent(e.arr.Next()-now, e.arrTick)
	}
}

// gatewayArrive runs when the dispatch datagram reaches the site gateway:
// allocate a host slot from the shard, or queue FIFO when saturated.
func (j *job) gatewayArrive() {
	e := j.e
	s := &e.sites[j.site]
	host, ok := s.shard.Allocate()
	if !ok {
		s.pushQueue(j)
		if q := s.queued(); q > e.queuedPeak {
			e.queuedPeak = q
		}
		return
	}
	j.host = host
	e.must(e.net.SendMessage(s.gw, e.fl.Hosts[j.site][host], msgBytes, j.atHost))
}

// hostArrive runs when the job lands on its host: hold the slot for the
// service time, then OnEvent reports back.
func (j *job) hostArrive() {
	j.e.k.AfterEvent(j.size, j)
}

// gatewayDone runs when the completion datagram reaches the gateway:
// release the slot, hand it straight to the queue head if one is waiting,
// and forward the completion to the core.
func (j *job) gatewayDone() {
	e := j.e
	s := &e.sites[j.site]
	s.shard.Release(j.host)
	if q := s.popQueue(); q != nil {
		host, ok := s.shard.Allocate()
		if ok {
			q.host = host
			e.must(e.net.SendMessage(s.gw, e.fl.Hosts[q.site][host], msgBytes, q.atHost))
		} else {
			// Cannot happen (a slot was just released), but never drop work.
			s.queue = append(s.queue, nil)
			copy(s.queue[s.qhead+1:], s.queue[s.qhead:])
			s.queue[s.qhead] = q
		}
	}
	e.must(e.net.SendMessage(s.gw, cluster.FleetCore, msgBytes, j.atCore))
}

// coreDone runs when the completion reaches the core router: account the
// job and recycle its record.
func (j *job) coreDone() {
	e := j.e
	now := e.k.Now()
	s := &e.sites[j.site]
	s.outstanding--
	s.done++
	e.done++
	lat := int64(now - j.arrived)
	e.sumLatency += lat
	e.latencies = append(e.latencies, lat)
	if j.tctx.Traced() {
		e.cfg.Obs.EndSpan(now, j.tctx, "fleet", "job", cluster.FleetSite(j.site))
	}
	e.putJob(j)
	if e.done == e.cfg.Jobs {
		e.doneAt = now
	}
}

// beat is the batched control-plane tick: every site coalesces its hosts
// into one BeatBatch (monitor cost scales with sites, not hosts) and MDS
// gets one aggregate row per site plus per-host rows only for hosts whose
// state class changed; unchanged rows are TTL-refreshed without rewriting.
func (e *Engine) beat() {
	now := e.k.Now()
	e.ticks++
	e.refreshNames = e.refreshNames[:0]
	var rows []mds.StatusRow
	for si := range e.sites {
		s := &e.sites[si]
		e.mon.BeatBatch(now, s.hosts)
		rows = append(rows, mds.StatusRow{
			Name: cluster.FleetSite(si),
			Attrs: map[string][]string{
				"objectclass": {"GridSite"},
				"hosts":       {itoa(len(s.hosts))},
				"running":     {itoa(s.shard.Running())},
				"queued":      {itoa(s.queued())},
				"done":        {itoa(s.done)},
			},
		})
		for h, name := range s.hosts {
			c := hostClass(s.shard, h)
			if c == s.lastClass[h] {
				e.refreshNames = append(e.refreshNames, name)
				continue
			}
			s.lastClass[h] = c
			rows = append(rows, mds.StatusRow{
				Name: name,
				Attrs: map[string][]string{
					"objectclass": {"GridHost"},
					"class":       {hostClassName(c)},
					"load":        {itoa(s.shard.Load(h))},
				},
			})
		}
	}
	e.pub.Publish(now, rows)
	e.pub.Refresh(now, e.refreshNames)
	if e.done < e.cfg.Jobs {
		e.k.AfterEvent(e.cfg.Heartbeat, e.beatTick)
	}
}

// hostClass buckets a host's load into idle / busy / full — the coarse
// classes per-host MDS deltas are keyed on.
func hostClass(s *rmf.Shard, h int) int8 {
	switch load := s.Load(h); {
	case load == 0:
		return 0
	case load < int(s.Cpus(h)):
		return 1
	default:
		return 2
	}
}

func hostClassName(c int8) string {
	switch c {
	case 0:
		return "idle"
	case 1:
		return "busy"
	default:
		return "full"
	}
}

// itoa keeps the tick loop terse.
func itoa(n int) string { return strconv.Itoa(n) }

// Run drives the simulation to completion and returns the first internal
// error, if any. After Run, Result summarizes the run.
func (e *Engine) Run() error {
	if err := e.k.Run(); err != nil {
		return err
	}
	if e.err != nil {
		return e.err
	}
	if e.done != e.cfg.Jobs {
		return fmt.Errorf("fleet: run drained with %d of %d jobs complete", e.done, e.cfg.Jobs)
	}
	return nil
}

// Kernel exposes the engine's kernel (events metric, shutdown).
func (e *Engine) Kernel() *sim.Kernel { return e.k }

// Fleet exposes the built topology.
func (e *Engine) Fleet() *cluster.Fleet { return e.fl }

// Monitor exposes the heartbeat monitor.
func (e *Engine) Monitor() *hbm.Monitor { return e.mon }

// Directory exposes the MDS directory the control plane publishes into.
func (e *Engine) Directory() *mds.Directory { return e.dir }

// Result is one completed run's summary. Every field is a pure function of
// the configuration (virtual-time metrics only — wall-clock throughput is
// the harness's to measure).
type Result struct {
	Jobs        int
	Sites       int
	Hosts       int
	Events      uint64        // kernel events stamped over the run
	Makespan    time.Duration // virtual time of the last completion
	MeanLat     time.Duration
	P50Lat      time.Duration
	P99Lat      time.Duration
	MaxLat      time.Duration
	QueuedPeak  int
	Ticks       int // heartbeat/publish ticks
	DirEntries  int // MDS directory size at the end
	Fingerprint uint64
}

// Result summarizes the run and computes its determinism fingerprint.
func (e *Engine) Result() Result {
	r := Result{
		Jobs:       e.done,
		Sites:      e.cfg.Sites,
		Hosts:      e.fl.TotalHosts(),
		Events:     e.k.Events(),
		Makespan:   e.doneAt,
		QueuedPeak: e.queuedPeak,
		Ticks:      e.ticks,
		DirEntries: e.dir.Len(),
	}
	if len(e.latencies) > 0 {
		sorted := append([]int64(nil), e.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		r.MeanLat = time.Duration(e.sumLatency / int64(len(sorted)))
		r.P50Lat = time.Duration(sorted[rank(50, len(sorted))])
		r.P99Lat = time.Duration(sorted[rank(99, len(sorted))])
		r.MaxLat = time.Duration(sorted[len(sorted)-1])
	}
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	word(uint64(e.submitted))
	word(uint64(e.done))
	word(uint64(e.sumService))
	word(uint64(e.sumLatency))
	word(uint64(e.doneAt))
	word(r.Events)
	word(uint64(r.QueuedPeak))
	word(uint64(r.DirEntries))
	word(uint64(e.mon.SuspectCount()))
	word(uint64(e.mon.DownCount()))
	word(uint64(r.P50Lat))
	word(uint64(r.P99Lat))
	word(uint64(r.MaxLat))
	for si := range e.sites {
		word(uint64(e.sites[si].done))
	}
	r.Fingerprint = h.Sum64()
	return r
}

// rank is the nearest-rank index for percentile p over n sorted samples.
func rank(p float64, n int) int {
	i := int(math.Ceil(p/100*float64(n))) - 1
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
