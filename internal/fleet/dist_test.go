package fleet

import (
	"math"
	"sort"
	"testing"
	"time"
)

// TestParetoShape: for a fixed seed, the empirical mean of the bounded
// Pareto sits within tolerance of the analytic mean, and the empirical tail
// quantile matches the inverse CDF — the distribution really is heavy-tailed
// with the configured bounds.
func TestParetoShape(t *testing.T) {
	d := SizeDist{Kind: DistPareto, Alpha: 1.3, Min: time.Second, Max: 20 * time.Minute}
	r := NewRNG(42)
	const n = 200_000
	samples := make([]float64, n)
	var sum float64
	for i := range samples {
		x := d.Sample(r).Seconds()
		if x < d.Min.Seconds()-1e-9 || x > d.Max.Seconds()+1e-9 {
			t.Fatalf("sample %g outside bounds [%g, %g]", x, d.Min.Seconds(), d.Max.Seconds())
		}
		samples[i] = x
		sum += x
	}
	mean := sum / n
	want := d.MeanDuration().Seconds()
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("empirical mean %.3fs vs analytic %.3fs (>5%% off)", mean, want)
	}
	// Tail check at p = 0.99: invert the bounded-Pareto CDF.
	sort.Float64s(samples)
	q99 := samples[int(0.99*n)]
	l, h, a := d.Min.Seconds(), d.Max.Seconds(), d.Alpha
	wantQ := l / math.Pow(1-0.99*(1-math.Pow(l/h, a)), 1/a)
	if math.Abs(q99-wantQ)/wantQ > 0.10 {
		t.Errorf("empirical q99 %.2fs vs analytic %.2fs (>10%% off)", q99, wantQ)
	}
	// Heavy tail: the q99 must dwarf the median.
	if q99 < 10*samples[n/2] {
		t.Errorf("tail not heavy: q99 %.2fs < 10x median %.2fs", q99, samples[n/2])
	}
}

// TestLognormalShape: empirical mean and median against the analytic
// lognormal values for a fixed seed.
func TestLognormalShape(t *testing.T) {
	d := SizeDist{Kind: DistLognormal, Mu: 2.0, Sigma: 1.0}
	r := NewRNG(7)
	const n = 200_000
	samples := make([]float64, n)
	var sum float64
	for i := range samples {
		x := d.Sample(r).Seconds()
		samples[i] = x
		sum += x
	}
	mean := sum / n
	want := d.MeanDuration().Seconds() // exp(mu + sigma^2/2)
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("empirical mean %.3fs vs analytic %.3fs (>5%% off)", mean, want)
	}
	sort.Float64s(samples)
	median := samples[n/2]
	wantMed := math.Exp(d.Mu) // lognormal median
	if math.Abs(median-wantMed)/wantMed > 0.05 {
		t.Errorf("empirical median %.3fs vs analytic %.3fs (>5%% off)", median, wantMed)
	}
}

// TestFixedAndClamp: fixed sizes pass through; degenerate draws floor at 1µs.
func TestFixedAndClamp(t *testing.T) {
	d := SizeDist{Kind: DistFixed, Mean: 3 * time.Second}
	r := NewRNG(1)
	if got := d.Sample(r); got != 3*time.Second {
		t.Fatalf("fixed sample = %v", got)
	}
	if clampSize(0) != time.Microsecond || clampSize(-time.Second) != time.Microsecond {
		t.Fatal("clampSize did not floor at 1µs")
	}
}

// TestSizeDistValidate is the strict-decode error table the scenario DSL
// relies on.
func TestSizeDistValidate(t *testing.T) {
	bad := []SizeDist{
		{},
		{Kind: "weibull"},
		{Kind: DistFixed},
		{Kind: DistFixed, Mean: -time.Second},
		{Kind: DistPareto, Alpha: 0, Min: time.Second, Max: time.Minute},
		{Kind: DistPareto, Alpha: 1.2, Min: 0, Max: time.Minute},
		{Kind: DistPareto, Alpha: 1.2, Min: time.Minute, Max: time.Second},
		{Kind: DistLognormal, Sigma: 0},
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Errorf("case %d (%+v): Validate accepted a malformed distribution", i, d)
		}
	}
	good := []SizeDist{
		{Kind: DistFixed, Mean: time.Second},
		{Kind: DistPareto, Alpha: 1.1, Min: time.Second, Max: time.Hour},
		{Kind: DistLognormal, Mu: 0, Sigma: 0.5},
	}
	for i, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected a good distribution: %v", i, err)
		}
	}
}

// TestRateShapeValidate covers the malformed-rate errors.
func TestRateShapeValidate(t *testing.T) {
	bad := []RateShape{
		{},
		{Kind: RateConstant, Rate: 0},
		{Kind: RateConstant, Rate: -5},
		{Kind: "bursty", Rate: 1},
		{Kind: RateDiurnal, Rate: 1, Amplitude: 1.5, Period: time.Hour},
		{Kind: RateDiurnal, Rate: 1, Amplitude: 0.5},
		{Kind: RateFlashCrowd, Rate: 1, Peak: 1},
		{Kind: RateFlashCrowd, Rate: 1, Peak: 4, From: 10 * time.Second, To: 5 * time.Second},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d (%+v): Validate accepted a malformed shape", i, s)
		}
	}
}

// countArrivals draws arrivals until horizon and buckets them.
func countArrivals(shape RateShape, seed uint64, horizon, bucket time.Duration) []int {
	a := NewArrivals(shape, NewRNG(seed))
	counts := make([]int, int(horizon/bucket))
	for {
		at := a.Next()
		if at >= horizon {
			return counts
		}
		counts[int(at/bucket)]++
	}
}

// TestConstantRate: arrivals over a long window integrate to ~rate*T.
func TestConstantRate(t *testing.T) {
	counts := countArrivals(RateShape{Kind: RateConstant, Rate: 50}, 9, 200*time.Second, time.Second)
	total := 0
	for _, c := range counts {
		total += c
	}
	want := 50 * 200
	if math.Abs(float64(total-want))/float64(want) > 0.05 {
		t.Errorf("constant rate: %d arrivals over 200s at 50/s (want ~%d)", total, want)
	}
}

// TestDiurnalRate: the peak quarter of the cycle must out-arrive the trough
// quarter by roughly the modulation ratio.
func TestDiurnalRate(t *testing.T) {
	shape := RateShape{Kind: RateDiurnal, Rate: 40, Amplitude: 0.8, Period: 100 * time.Second}
	counts := countArrivals(shape, 3, 400*time.Second, 25*time.Second)
	// sin(2πt/100) is positive over buckets 0-1 and negative over 2-3 of each
	// cycle; compare bucket 1 (avg sin = 2/π) against bucket 3 (avg -2/π).
	var peak, trough int
	for i, c := range counts {
		switch i % 4 {
		case 1:
			peak += c
		case 3:
			trough += c
		}
	}
	if peak <= trough {
		t.Fatalf("diurnal: peak quarter %d <= trough quarter %d", peak, trough)
	}
	// Analytic ratio of mean rates over the quarters: (1 + 0.8*avg sin) vs
	// (1 - 0.8*avg sin) with avg sin over the peak quarter [π/2, π] = 2/π.
	ratio := float64(peak) / float64(trough)
	avgSin := 2 / math.Pi
	wantRatio := (1 + 0.8*avgSin) / (1 - 0.8*avgSin)
	if math.Abs(ratio-wantRatio)/wantRatio > 0.15 {
		t.Errorf("diurnal peak/trough ratio %.2f, want ~%.2f", ratio, wantRatio)
	}
}

// TestFlashCrowdRate: inside the spike window the arrival rate multiplies
// by Peak; outside it stays at base.
func TestFlashCrowdRate(t *testing.T) {
	shape := RateShape{Kind: RateFlashCrowd, Rate: 30, Peak: 5,
		From: 40 * time.Second, To: 60 * time.Second}
	counts := countArrivals(shape, 11, 100*time.Second, 20*time.Second)
	// Buckets: [0,20) base, [20,40) base, [40,60) spike, [60,80) base, [80,100) base.
	spike := counts[2]
	base := (counts[0] + counts[1] + counts[3] + counts[4]) / 4
	ratio := float64(spike) / float64(base)
	if ratio < 4 || ratio > 6 {
		t.Fatalf("flash-crowd spike/base ratio %.2f, want ~5 (spike %d, base %d)", ratio, spike, base)
	}
}

// TestArrivalsDeterminism: the arrival stream is a pure function of the
// seed and shape.
func TestArrivalsDeterminism(t *testing.T) {
	shape := RateShape{Kind: RateFlashCrowd, Rate: 10, Peak: 3, From: time.Second, To: 2 * time.Second}
	a := NewArrivals(shape, NewRNG(99))
	b := NewArrivals(shape, NewRNG(99))
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("arrival %d diverged: %v vs %v", i, x, y)
		}
	}
}
