package fleet

import (
	"runtime"
	"testing"
	"time"

	"nxcluster/internal/obs"
	"nxcluster/internal/obs/causal"
)

func smallConfig() Config {
	return Config{
		Sites:        4,
		HostsPerSite: 8,
		CPUsPerHost:  2,
		Jobs:         2000,
		Seed:         42,
		Arrivals:     RateShape{Kind: RateConstant, Rate: 40},
		Sizes:        SizeDist{Kind: DistPareto, Alpha: 1.5, Min: 200 * time.Millisecond, Max: 30 * time.Second},
		Heartbeat:    5 * time.Second,
	}
}

func runFleet(t *testing.T, cfg Config) Result {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return e.Result()
}

// TestEngineEndToEnd: a small fleet run completes every job, accumulates
// sane latency stats, publishes into MDS, and beats every host.
func TestEngineEndToEnd(t *testing.T) {
	cfg := smallConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := e.Result()
	if r.Jobs != cfg.Jobs {
		t.Fatalf("completed %d of %d jobs", r.Jobs, cfg.Jobs)
	}
	if r.Hosts != cfg.Sites*cfg.HostsPerSite {
		t.Fatalf("Hosts = %d, want %d", r.Hosts, cfg.Sites*cfg.HostsPerSite)
	}
	if r.Events == 0 || r.Makespan <= 0 {
		t.Fatalf("degenerate run: events=%d makespan=%v", r.Events, r.Makespan)
	}
	// Latency is bounded below by the two-way core<->host control path.
	if r.P50Lat <= 0 || r.P50Lat > r.P99Lat || r.P99Lat > r.MaxLat {
		t.Fatalf("latency ordering broken: p50=%v p99=%v max=%v", r.P50Lat, r.P99Lat, r.MaxLat)
	}
	if r.MeanLat < r.P50Lat/10 {
		t.Fatalf("mean %v implausibly small vs p50 %v", r.MeanLat, r.P50Lat)
	}
	if r.Ticks == 0 {
		t.Fatal("no heartbeat ticks fired")
	}
	// Every host beats, so none are suspect or down.
	if e.Monitor().SuspectCount() != 0 || e.Monitor().DownCount() != 0 {
		t.Fatalf("batched beats left suspects=%d down=%d",
			e.Monitor().SuspectCount(), e.Monitor().DownCount())
	}
	// MDS holds the per-site aggregates (one row per site at minimum).
	if r.DirEntries < cfg.Sites {
		t.Fatalf("directory has %d entries, want >= %d site aggregates", r.DirEntries, cfg.Sites)
	}
}

// TestEngineOverload: an arrival rate far above capacity must queue at the
// gateways (queuedPeak > 0) and still finish every job.
func TestEngineOverload(t *testing.T) {
	cfg := smallConfig()
	cfg.Jobs = 1500
	cfg.Arrivals = RateShape{Kind: RateConstant, Rate: 400} // 10x capacity
	cfg.Sizes = SizeDist{Kind: DistFixed, Mean: 2 * time.Second}
	r := runFleet(t, cfg)
	if r.Jobs != cfg.Jobs {
		t.Fatalf("completed %d of %d jobs", r.Jobs, cfg.Jobs)
	}
	if r.QueuedPeak == 0 {
		t.Fatal("10x-overload run never queued at a gateway")
	}
	if r.P99Lat <= 4*time.Second {
		t.Fatalf("overload p99 %v suspiciously small (no queueing delay?)", r.P99Lat)
	}
}

// TestEngineDeterminism: double-run fingerprint equality for the same seed
// — including under a different GOMAXPROCS — and inequality across seeds.
func TestEngineDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.Arrivals = RateShape{Kind: RateFlashCrowd, Rate: 30, Peak: 4,
		From: 10 * time.Second, To: 25 * time.Second}
	a := runFleet(t, cfg)
	b := runFleet(t, cfg)
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same seed diverged: %016x vs %016x", a.Fingerprint, b.Fingerprint)
	}
	if a != b {
		t.Fatalf("full results differ despite equal fingerprints:\n%+v\n%+v", a, b)
	}

	prev := runtime.GOMAXPROCS(1)
	c := runFleet(t, cfg)
	runtime.GOMAXPROCS(prev)
	if c.Fingerprint != a.Fingerprint {
		t.Fatalf("GOMAXPROCS=1 run diverged: %016x vs %016x", c.Fingerprint, a.Fingerprint)
	}

	cfg.Seed = 43
	d := runFleet(t, cfg)
	if d.Fingerprint == a.Fingerprint {
		t.Fatal("different seeds produced the same fingerprint")
	}
}

// TestEngineTraceSampling: with TraceSample=n, exactly ceil(jobs/n) causal
// job spans open and close, and the causal layer can extract their durations.
func TestEngineTraceSampling(t *testing.T) {
	cfg := smallConfig()
	cfg.Jobs = 100
	cfg.TraceSample = 10
	cfg.Obs = obs.New()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	f := causal.Build(cfg.Obs.Events())
	durs := causal.SpanDurations(f, "fleet/job")
	if len(durs) != 10 {
		t.Fatalf("sampled %d job spans, want 10", len(durs))
	}
	for _, d := range durs {
		if d <= 0 {
			t.Fatalf("non-positive sampled job duration %v", d)
		}
	}
	if p99 := causal.Percentile(durs, 99); p99 < causal.Percentile(durs, 50) {
		t.Fatalf("p99 %v < p50", p99)
	}
}

// TestConfigValidate is the strict-decode table for fleet blocks.
func TestConfigValidate(t *testing.T) {
	ok := smallConfig()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero sites", func(c *Config) { c.Sites = 0 }},
		{"zero hosts", func(c *Config) { c.HostsPerSite = 0 }},
		{"host cap overflow", func(c *Config) { c.Sites = 1 << 12; c.HostsPerSite = 1 << 12 }},
		{"negative cpus", func(c *Config) { c.CPUsPerHost = -1 }},
		{"zero jobs", func(c *Config) { c.Jobs = 0 }},
		{"negative heartbeat", func(c *Config) { c.Heartbeat = -time.Second }},
		{"negative trace sample", func(c *Config) { c.TraceSample = -1 }},
		{"bad rate", func(c *Config) { c.Arrivals.Rate = 0 }},
		{"bad distribution", func(c *Config) { c.Sizes.Kind = "zipf" }},
	}
	for _, tc := range cases {
		cfg := smallConfig()
		tc.mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("%s: Validate accepted the config", tc.name)
		}
	}
	// sites*hosts right at the cap stays valid.
	cfg := smallConfig()
	cfg.Sites = 1 << 10
	cfg.HostsPerSite = 1 << 10
	if err := cfg.Validate(); err != nil {
		t.Errorf("config at the host cap rejected: %v", err)
	}
}
