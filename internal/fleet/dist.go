// Package fleet is the open-loop, fleet-scale workload layer: a seeded
// deterministic arrival generator with heavy-tailed job sizes and
// time-varying rates, driving an event-style control plane (hierarchical
// site routing, sharded per-site allocation, batched heartbeats and batched
// MDS publishing) over a cluster.NewFleet topology. A 10k-host / 1M-job run
// costs roughly a dozen kernel events per job, so it completes in seconds
// of wall clock while staying bit-deterministic across runs and GOMAXPROCS
// settings.
//
// Unlike the paper-shaped workloads (closed-loop MPI programs), the
// generator is open loop: arrivals follow the configured rate process
// regardless of how the fleet is coping — no back-pressure — which is what
// exposes saturation behavior (queue growth, latency tails) at scale.
package fleet

import (
	"fmt"
	"math"
	"time"
)

// RNG is a splitmix64 stream, the same generator the simulation kernel
// uses, but owned by the fleet engine so workload draws never perturb —
// and are never perturbed by — kernel-level randomness.
type RNG struct{ s uint64 }

// NewRNG seeds a stream; seed 0 is mapped to 1 so the zero value is usable.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 1
	}
	return &RNG{s: seed}
}

// Uint64 returns the next raw draw.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n).
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Size-distribution kinds.
const (
	DistFixed     = "fixed"
	DistPareto    = "pareto"
	DistLognormal = "lognormal"
)

// SizeDist describes the job-size (service-time) distribution. Real grid
// job mixes are heavy-tailed — most jobs are short, a few are enormous —
// which bounded Pareto and lognormal both capture; fixed sizes remain for
// calibration runs.
type SizeDist struct {
	// Kind selects the family: fixed, pareto, or lognormal.
	Kind string
	// Mean is the fixed kind's constant size.
	Mean time.Duration
	// Alpha is the bounded Pareto tail exponent (heavier tail as it
	// approaches 1; typical grid fits use 1.1–1.5).
	Alpha float64
	// Min and Max bound the Pareto support.
	Min, Max time.Duration
	// Mu and Sigma parameterize the lognormal in log-seconds:
	// exp(Mu + Sigma*Z) seconds.
	Mu, Sigma float64
}

// Validate reports a malformed distribution; the scenario DSL surfaces
// these as strict decode errors.
func (d SizeDist) Validate() error {
	switch d.Kind {
	case DistFixed:
		if d.Mean <= 0 {
			return fmt.Errorf("fleet: fixed size distribution needs mean > 0, got %v", d.Mean)
		}
	case DistPareto:
		if d.Alpha <= 0 {
			return fmt.Errorf("fleet: pareto alpha must be > 0, got %g", d.Alpha)
		}
		if d.Min <= 0 || d.Max <= d.Min {
			return fmt.Errorf("fleet: pareto needs 0 < min < max, got min=%v max=%v", d.Min, d.Max)
		}
	case DistLognormal:
		if d.Sigma <= 0 {
			return fmt.Errorf("fleet: lognormal sigma must be > 0, got %g", d.Sigma)
		}
	case "":
		return fmt.Errorf("fleet: size distribution kind is required (fixed, pareto, lognormal)")
	default:
		return fmt.Errorf("fleet: unknown size distribution %q (want fixed, pareto, lognormal)", d.Kind)
	}
	return nil
}

// MeanDuration returns the distribution's analytic mean, for capacity math
// and distribution-shape tests.
func (d SizeDist) MeanDuration() time.Duration {
	switch d.Kind {
	case DistFixed:
		return d.Mean
	case DistPareto:
		l, h := d.Min.Seconds(), d.Max.Seconds()
		a := d.Alpha
		var mean float64
		if a == 1 {
			mean = (h * l / (h - l)) * math.Log(h/l)
		} else {
			mean = math.Pow(l, a) / (1 - math.Pow(l/h, a)) * (a / (a - 1)) *
				(1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
		}
		return time.Duration(mean * float64(time.Second))
	case DistLognormal:
		return time.Duration(math.Exp(d.Mu+d.Sigma*d.Sigma/2) * float64(time.Second))
	}
	return 0
}

// Sample draws one job size. Draw count per call is fixed per kind (one
// uniform for fixed/pareto, two for lognormal), so the stream stays aligned
// across identical runs.
func (d SizeDist) Sample(r *RNG) time.Duration {
	switch d.Kind {
	case DistPareto:
		// Bounded Pareto inverse CDF on [Min, Max].
		u := r.Float64()
		l, h := d.Min.Seconds(), d.Max.Seconds()
		a := d.Alpha
		x := l / math.Pow(1-u*(1-math.Pow(l/h, a)), 1/a)
		return clampSize(time.Duration(x * float64(time.Second)))
	case DistLognormal:
		// Box–Muller from two uniforms.
		u1, u2 := r.Float64(), r.Float64()
		if u1 < 1e-300 {
			u1 = 1e-300
		}
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		return clampSize(time.Duration(math.Exp(d.Mu+d.Sigma*z) * float64(time.Second)))
	default: // fixed
		return d.Mean
	}
}

// clampSize floors a sampled size at 1µs so degenerate draws cannot produce
// zero-length (or, through float rounding, negative) service events.
func clampSize(d time.Duration) time.Duration {
	if d < time.Microsecond {
		return time.Microsecond
	}
	return d
}
