// Package auth provides the mutual authentication the gatekeeper performs
// before accepting a job request, standing in for the Globus Security
// Infrastructure (GSI). Instead of X.509 proxy certificates it uses a
// shared-secret HMAC challenge/response: both sides prove possession of the
// subject's key without sending it, and each verifies the other — the
// property GRAM relies on (the user trusts the gatekeeper host; the
// gatekeeper maps the subject to a local account).
package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"nxcluster/internal/nexus"
	"nxcluster/internal/transport"
)

// ErrDenied is returned when authentication fails.
var ErrDenied = errors.New("auth: authentication failed")

const nonceLen = 32

// Credential is a subject identity with its secret key.
type Credential struct {
	// Subject names the identity, e.g. "/O=Grid/OU=RWCP/CN=yoshio".
	Subject string
	// Key is the shared secret.
	Key []byte
}

// NewCredential generates a credential with a random key.
func NewCredential(subject string) (Credential, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return Credential{}, err
	}
	return Credential{Subject: subject, Key: key}, nil
}

// Keyring maps subjects to keys on the verifying side (the gatekeeper's
// grid-mapfile analogue).
type Keyring struct {
	keys map[string][]byte
	// Local maps an authenticated subject to a local account name.
	local map[string]string
}

// NewKeyring creates an empty keyring.
func NewKeyring() *Keyring {
	return &Keyring{keys: make(map[string][]byte), local: make(map[string]string)}
}

// Grant registers a subject's key and local account mapping.
func (kr *Keyring) Grant(cred Credential, localUser string) {
	kr.keys[cred.Subject] = append([]byte(nil), cred.Key...)
	kr.local[cred.Subject] = localUser
}

// Revoke removes a subject.
func (kr *Keyring) Revoke(subject string) {
	delete(kr.keys, subject)
	delete(kr.local, subject)
}

// LocalUser returns the account a subject maps to.
func (kr *Keyring) LocalUser(subject string) (string, bool) {
	u, ok := kr.local[subject]
	return u, ok
}

func mac(key []byte, role string, a, b []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write([]byte(role))
	m.Write(a)
	m.Write(b)
	return m.Sum(nil)
}

// Initiate performs the client half of the handshake on an established
// connection: send subject + nonce, verify the server's proof, return our
// own proof.
func Initiate(env transport.Env, conn transport.Conn, cred Credential) error {
	st := transport.Stream{Env: env, Conn: conn}
	nc := make([]byte, nonceLen)
	if _, err := rand.Read(nc); err != nil {
		return err
	}
	hello := nexus.NewBuffer()
	hello.PutString(cred.Subject)
	hello.PutBytes(nc)
	if err := writeFrame(st, hello); err != nil {
		return err
	}
	resp, err := readFrame(st)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrDenied, err)
	}
	ok, err := resp.GetBool()
	if err != nil || !ok {
		return ErrDenied
	}
	ns, err := resp.GetBytes()
	if err != nil {
		return err
	}
	proof, err := resp.GetBytes()
	if err != nil {
		return err
	}
	if !hmac.Equal(proof, mac(cred.Key, "server", nc, ns)) {
		return fmt.Errorf("%w: server proof invalid", ErrDenied)
	}
	final := nexus.NewBuffer()
	final.PutBytes(mac(cred.Key, "client", ns, nc))
	if err := writeFrame(st, final); err != nil {
		return err
	}
	done, err := readFrame(st)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrDenied, err)
	}
	if ok, err := done.GetBool(); err != nil || !ok {
		return ErrDenied
	}
	return nil
}

// Accept performs the server half: read the client hello, prove key
// possession, verify the client's proof, and return the authenticated
// subject.
func Accept(env transport.Env, conn transport.Conn, kr *Keyring) (subject string, err error) {
	st := transport.Stream{Env: env, Conn: conn}
	hello, err := readFrame(st)
	if err != nil {
		return "", err
	}
	subject, err = hello.GetString()
	if err != nil {
		return "", err
	}
	nc, err := hello.GetBytes()
	if err != nil {
		return "", err
	}
	key, known := kr.keys[subject]
	deny := func() (string, error) {
		resp := nexus.NewBuffer()
		resp.PutBool(false)
		_ = writeFrame(st, resp)
		return "", fmt.Errorf("%w: subject %q", ErrDenied, subject)
	}
	if !known {
		return deny()
	}
	ns := make([]byte, nonceLen)
	if _, err := rand.Read(ns); err != nil {
		return "", err
	}
	resp := nexus.NewBuffer()
	resp.PutBool(true)
	resp.PutBytes(ns)
	resp.PutBytes(mac(key, "server", nc, ns))
	if err := writeFrame(st, resp); err != nil {
		return "", err
	}
	final, err := readFrame(st)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrDenied, err)
	}
	proof, err := final.GetBytes()
	if err != nil {
		return "", err
	}
	done := nexus.NewBuffer()
	if !hmac.Equal(proof, mac(key, "client", ns, nc)) {
		done.PutBool(false)
		_ = writeFrame(st, done)
		return "", fmt.Errorf("%w: client proof invalid for %q", ErrDenied, subject)
	}
	done.PutBool(true)
	if err := writeFrame(st, done); err != nil {
		return "", err
	}
	return subject, nil
}

// Frame helpers (length-prefixed nexus buffers).

func writeFrame(st transport.Stream, b *nexus.Buffer) error {
	n := b.Len()
	hdr := []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
	if _, err := st.Write(hdr); err != nil {
		return err
	}
	_, err := st.Write(b.Bytes())
	return err
}

func readFrame(st transport.Stream) (*nexus.Buffer, error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(st, hdr); err != nil {
		return nil, err
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n > 1<<20 {
		return nil, errors.New("auth: frame too large")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(st, body); err != nil {
		return nil, err
	}
	return nexus.FromBytes(body), nil
}
