package auth

import (
	"errors"
	"testing"

	"nxcluster/internal/transport"
)

// pair establishes a loopback connection and runs client/server halves.
func runHandshake(t *testing.T, cred Credential, kr *Keyring) (clientErr error, subject string, serverErr error) {
	t.Helper()
	env := transport.NewTCPEnv("localhost")
	l, err := env.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close(env)
	srvDone := make(chan struct{})
	env.Spawn("server", func(e transport.Env) {
		defer close(srvDone)
		c, err := l.Accept(e)
		if err != nil {
			serverErr = err
			return
		}
		subject, serverErr = Accept(e, c, kr)
		_ = c.Close(e)
	})
	c, err := env.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	clientErr = Initiate(env, c, cred)
	_ = c.Close(env)
	<-srvDone
	return clientErr, subject, serverErr
}

func TestMutualAuthenticationSucceeds(t *testing.T) {
	cred, err := NewCredential("/O=Grid/OU=RWCP/CN=yoshio")
	if err != nil {
		t.Fatal(err)
	}
	kr := NewKeyring()
	kr.Grant(cred, "yoshio")
	cErr, subject, sErr := runHandshake(t, cred, kr)
	if cErr != nil || sErr != nil {
		t.Fatalf("client=%v server=%v", cErr, sErr)
	}
	if subject != cred.Subject {
		t.Fatalf("subject = %q", subject)
	}
	if u, ok := kr.LocalUser(subject); !ok || u != "yoshio" {
		t.Fatalf("LocalUser = %q, %v", u, ok)
	}
}

func TestUnknownSubjectDenied(t *testing.T) {
	cred, _ := NewCredential("/CN=stranger")
	kr := NewKeyring()
	cErr, _, sErr := runHandshake(t, cred, kr)
	if !errors.Is(sErr, ErrDenied) {
		t.Fatalf("server err = %v, want ErrDenied", sErr)
	}
	if !errors.Is(cErr, ErrDenied) {
		t.Fatalf("client err = %v, want ErrDenied", cErr)
	}
}

func TestWrongKeyDenied(t *testing.T) {
	cred, _ := NewCredential("/CN=user")
	imposter := Credential{Subject: cred.Subject, Key: make([]byte, 32)} // zero key
	kr := NewKeyring()
	kr.Grant(cred, "user")
	cErr, _, sErr := runHandshake(t, imposter, kr)
	// The imposter detects the server proof mismatch first (it cannot
	// verify the real key's MAC), or the server rejects the client proof.
	if cErr == nil && sErr == nil {
		t.Fatal("imposter authenticated")
	}
}

func TestRevokeDenies(t *testing.T) {
	cred, _ := NewCredential("/CN=gone")
	kr := NewKeyring()
	kr.Grant(cred, "gone")
	kr.Revoke(cred.Subject)
	_, _, sErr := runHandshake(t, cred, kr)
	if !errors.Is(sErr, ErrDenied) {
		t.Fatalf("server err = %v, want ErrDenied", sErr)
	}
	if _, ok := kr.LocalUser(cred.Subject); ok {
		t.Fatal("LocalUser after revoke")
	}
}

func TestDistinctCredentialsHaveDistinctKeys(t *testing.T) {
	a, _ := NewCredential("/CN=a")
	b, _ := NewCredential("/CN=b")
	if string(a.Key) == string(b.Key) {
		t.Fatal("two generated credentials share a key")
	}
	if len(a.Key) < 16 {
		t.Fatal("key too short")
	}
}
