package proxy

import (
	"fmt"
	"sync"
	"sync/atomic"

	"nxcluster/internal/transport"
)

// OuterServer is the relay daemon outside the firewall. It serves two kinds
// of clients on its control port: processes inside the site sending connect
// and bind requests (their outgoing connections pass the firewall), and —
// on dynamically bound public ports — remote processes connecting toward
// bound clients.
type OuterServer struct {
	// InnerAddr is the inner server's "host:nxport"; the firewall must
	// permit incoming connections from this server to that address.
	InnerAddr string
	// Relay tunes the data pumps.
	Relay RelayConfig
	// Secret, when non-empty, requires an HMAC proof on every control
	// request (see secure.go); the same site secret must be configured on
	// the inner server and in client Configs.
	Secret string

	listener transport.Listener
	nextBind int64
	// Relay counters, updated atomically: handler goroutines on real TCP
	// run concurrently.
	connectRelays int64
	bindRelays    int64
	bytes         int64
	registrations int64
	innerLive     int32
	mu            sync.Mutex // guards binds and registeredInner across TCP goroutines
	binds         map[string]*outerBind
	// registeredInner is the inner address most recently advertised over a
	// msgRegister session; it overrides the static InnerAddr.
	registeredInner string
	trace           func(format string, args ...interface{})
}

type outerBind struct {
	id         string
	clientAddr string // the bound client's private listener inside the site
	public     transport.Listener
	nextConn   int64
}

// NewOuterServer creates an outer server that will splice passive opens via
// the inner server at innerAddr.
func NewOuterServer(innerAddr string, relay RelayConfig) *OuterServer {
	return &OuterServer{InnerAddr: innerAddr, Relay: relay, binds: make(map[string]*outerBind)}
}

// SetTrace installs a tracing callback used by the Figure 3/4 experiment
// renderers.
func (s *OuterServer) SetTrace(fn func(format string, args ...interface{})) { s.trace = fn }

func (s *OuterServer) tracef(format string, args ...interface{}) {
	if s.trace != nil {
		s.trace(format, args...)
	}
}

// Stats returns a snapshot of relay counters.
func (s *OuterServer) Stats() Stats {
	return Stats{
		ConnectRelays:  int(atomic.LoadInt64(&s.connectRelays)),
		BindRelays:     int(atomic.LoadInt64(&s.bindRelays)),
		Bytes:          atomic.LoadInt64(&s.bytes),
		Registrations:  int(atomic.LoadInt64(&s.registrations)),
		InnerConnected: atomic.LoadInt32(&s.innerLive) != 0,
	}
}

// innerAddr returns the inner server's current nxport address: the one
// registered over the control channel when there is one, the statically
// configured InnerAddr otherwise.
func (s *OuterServer) innerAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.registeredInner != "" {
		return s.registeredInner
	}
	return s.InnerAddr
}

// Addr returns the control listener address once Serve has bound it.
func (s *OuterServer) Addr() string { return s.listener.Addr() }

// Serve binds the control port and runs the accept loop; it blocks its
// process (start it under a daemon Spawn). port 0 picks an ephemeral port;
// call Addr after Bound fires... to avoid a race, Serve accepts a ready
// callback invoked after binding.
func (s *OuterServer) Serve(env transport.Env, port int, ready func(addr string)) error {
	l, err := env.Listen(port)
	if err != nil {
		return fmt.Errorf("proxy outer: listen: %w", err)
	}
	s.listener = l
	if ready != nil {
		ready(l.Addr())
	}
	for {
		c, err := l.Accept(env)
		if err != nil {
			return nil // listener closed: normal shutdown
		}
		conn := c
		env.SpawnService("outer:conn", func(e transport.Env) { s.handleControl(e, conn) })
	}
}

// Close shuts down the control listener.
func (s *OuterServer) Close(env transport.Env) {
	if s.listener != nil {
		_ = s.listener.Close(env)
	}
}

// handleControl serves one client connection on the control port,
// challenging it first when a site secret is configured.
func (s *OuterServer) handleControl(env transport.Env, c transport.Conn) {
	st := transport.Stream{Env: env, Conn: c}
	var nonce string
	if s.Secret != "" {
		var err error
		if nonce, err = issueChallenge(st); err != nil {
			_ = c.Close(env)
			return
		}
	}
	typ, fields, err := readMsg(st)
	if err != nil {
		_ = c.Close(env)
		return
	}
	if s.Secret != "" {
		if fields, err = verifyProof(s.Secret, nonce, typ, fields); err != nil {
			s.tracef("outer: rejected %s: %v", c.RemoteAddr(), err)
			_ = writeMsg(st, msgError, "authentication failed")
			_ = c.Close(env)
			return
		}
	}
	switch typ {
	case msgConnect:
		if len(fields) != 1 {
			_ = writeMsg(st, msgError, "connect: want 1 field")
			_ = c.Close(env)
			return
		}
		s.handleConnect(env, c, fields[0])
	case msgBind:
		if len(fields) != 1 {
			_ = writeMsg(st, msgError, "bind: want 1 field")
			_ = c.Close(env)
			return
		}
		s.handleBind(env, c, fields[0])
	case msgRegister:
		if len(fields) != 1 {
			_ = writeMsg(st, msgError, "register: want 1 field")
			_ = c.Close(env)
			return
		}
		s.handleRegister(env, c, fields[0])
	default:
		_ = writeMsg(st, msgError, fmt.Sprintf("unexpected message %#x", typ))
		_ = c.Close(env)
	}
}

// handleRegister serves one registration session from the inner server:
// record its advertised nxport address, then answer keepalive pings until
// the session breaks (connection error or reset). A broken session leaves
// the last registered address in place — splices keep working through a
// flap; the inner server re-registers when it notices the break.
func (s *OuterServer) handleRegister(env transport.Env, c transport.Conn, innerAddr string) {
	st := transport.Stream{Env: env, Conn: c}
	s.mu.Lock()
	s.registeredInner = innerAddr
	s.mu.Unlock()
	n := atomic.AddInt64(&s.registrations, 1)
	atomic.StoreInt32(&s.innerLive, 1)
	s.tracef("outer: inner server registered from %s as %s (session %d)", c.RemoteAddr(), innerAddr, n)
	if err := writeMsg(st, msgRegisterOK); err == nil {
		for {
			typ, _, err := readMsg(st)
			if err != nil || typ != msgPing {
				break
			}
			if err := writeMsg(st, msgPong); err != nil {
				break
			}
		}
	}
	atomic.StoreInt32(&s.innerLive, 0)
	s.tracef("outer: registration session %d ended", n)
	_ = c.Close(env)
}

// handleConnect implements the active open (paper Figure 3): dial the
// target on the client's behalf and relay.
func (s *OuterServer) handleConnect(env transport.Env, c transport.Conn, target string) {
	s.tracef("outer: connect request from %s for %s", c.RemoteAddr(), target)
	st := transport.Stream{Env: env, Conn: c}
	out, err := env.Dial(target)
	if err != nil {
		_ = writeMsg(st, msgError, fmt.Sprintf("dial %s: %v", target, err))
		_ = c.Close(env)
		return
	}
	if err := writeMsg(st, msgOK); err != nil {
		_ = out.Close(env)
		_ = c.Close(env)
		return
	}
	atomic.AddInt64(&s.connectRelays, 1)
	s.tracef("outer: relaying %s <-> %s", c.RemoteAddr(), target)
	splice(env, "outer:relay", c, out, s.Relay, &s.bytes)
}

// handleBind implements the passive open registration (paper Figure 4,
// steps 1-2): bind a public port, remember the client's private listener
// address, and keep the control connection open until the client unbinds.
func (s *OuterServer) handleBind(env transport.Env, c transport.Conn, clientAddr string) {
	st := transport.Stream{Env: env, Conn: c}
	public, err := env.Listen(0)
	if err != nil {
		_ = writeMsg(st, msgError, fmt.Sprintf("bind: %v", err))
		_ = c.Close(env)
		return
	}
	id := fmt.Sprintf("bind-%d", atomic.AddInt64(&s.nextBind, 1))
	b := &outerBind{id: id, clientAddr: clientAddr, public: public}
	s.mu.Lock()
	s.binds[id] = b
	s.mu.Unlock()
	s.tracef("outer: bind %s for client %s -> public %s", id, clientAddr, public.Addr())
	if err := writeMsg(st, msgBindOK, public.Addr(), id); err != nil {
		_ = public.Close(env)
		_ = c.Close(env)
		return
	}
	env.SpawnService("outer:"+id, func(e transport.Env) { s.acceptPublic(e, b) })
	// Hold the control connection; any message or EOF tears the bind down.
	for {
		typ, _, err := readMsg(st)
		if err != nil || typ == msgUnbind {
			break
		}
	}
	s.mu.Lock()
	delete(s.binds, id)
	s.mu.Unlock()
	_ = public.Close(env)
	_ = c.Close(env)
	s.tracef("outer: unbind %s", id)
}

// acceptPublic completes the passive-open chain for each remote peer (paper
// Figure 4, steps 3-5): peer connects to the public port, the outer server
// connects to the inner server through the pre-opened nxport and asks it to
// splice toward the client's private listener.
func (s *OuterServer) acceptPublic(env transport.Env, b *outerBind) {
	for {
		peer, err := b.public.Accept(env)
		if err != nil {
			return
		}
		pc := peer
		env.SpawnService("outer:"+b.id+":peer", func(e transport.Env) {
			connID := fmt.Sprintf("%s/conn-%d", b.id, atomic.AddInt64(&b.nextConn, 1))
			inner := s.innerAddr()
			s.tracef("outer: peer %s for %s; splicing via inner %s", pc.RemoteAddr(), b.id, inner)
			in, err := e.Dial(inner)
			if err != nil {
				_ = pc.Close(e)
				return
			}
			ist := transport.Stream{Env: e, Conn: in}
			if err := sendAuthedRequest(ist, s.Secret, msgSplice, b.clientAddr, connID); err != nil {
				_ = in.Close(e)
				_ = pc.Close(e)
				return
			}
			if _, err := expect(ist, msgOK); err != nil {
				_ = in.Close(e)
				_ = pc.Close(e)
				return
			}
			atomic.AddInt64(&s.bindRelays, 1)
			splice(e, "outer:"+connID, pc, in, s.Relay, &s.bytes)
		})
	}
}
