package proxy

import (
	"fmt"

	"nxcluster/internal/obs"
	"nxcluster/internal/transport"
)

// Config selects the proxy servers a process should use, mirroring the
// paper's NEXUS_PROXY_OUTER_SERVER / NEXUS_PROXY_INNER_SERVER environment
// variables: when both are set the proxy is used, otherwise communication is
// direct.
type Config struct {
	// OuterServer is the outer server's control address "host:port".
	OuterServer string
	// InnerServer is the inner server's nxport address "host:port". The
	// client itself never dials it (the outer server does); its presence
	// switches the proxy on, as in the paper.
	InnerServer string
	// Secret is the site secret for authenticated relay servers ("" when
	// the servers run open, as the paper's did).
	Secret string
}

// Enabled reports whether the proxy should be used.
func (c Config) Enabled() bool { return c.OuterServer != "" && c.InnerServer != "" }

// NXProxyConnect performs an active open through the proxy (paper Figure 3):
// it sends a connect request to the outer server and returns a stream on
// which the caller talks to target.
func NXProxyConnect(env transport.Env, cfg Config, target string) (transport.Conn, error) {
	// The span covers both setup legs of Figure 3: dialing the outer server,
	// then the outer server's onward dial (acknowledged by msgOK). The leg
	// events let the decomposition report split them apart.
	o := obs.From(env)
	span := o.BeginChild(env.Now(), obs.CtxOf(env), "proxy", "connect", env.Hostname(), obs.Str("target", target))
	c, err := env.Dial(cfg.OuterServer)
	if err != nil {
		o.EndSpan(env.Now(), span, "proxy", "connect", env.Hostname(), obs.Str("err", "dial-outer"))
		return nil, fmt.Errorf("proxy: dial outer server %s: %w", cfg.OuterServer, err)
	}
	o.EmitCtx(env.Now(), span, "proxy", "connect.leg.outer", env.Hostname(), obs.Str("outer", cfg.OuterServer))
	st := transport.Stream{Env: env, Conn: c}
	if err := sendAuthedRequest(st, cfg.Secret, msgConnect, target); err != nil {
		_ = c.Close(env)
		o.EndSpan(env.Now(), span, "proxy", "connect", env.Hostname(), obs.Str("err", "request"))
		return nil, err
	}
	if _, err := expect(st, msgOK); err != nil {
		_ = c.Close(env)
		o.EndSpan(env.Now(), span, "proxy", "connect", env.Hostname(), obs.Str("err", "relay"))
		return nil, fmt.Errorf("proxy: connect %s: %w", target, err)
	}
	o.EndSpan(env.Now(), span, "proxy", "connect", env.Hostname(), obs.Str("target", target))
	return c, nil
}

// ProxyListener is the handle returned by NXProxyBind. Its Addr is the outer
// server's public address — the address a process advertises in place of its
// own, which is how the paper's modified Globus "changes the address
// information for the communication startpoint/endpoint to indicate the
// Nexus Proxy server".
type ProxyListener struct {
	cfg        Config
	control    transport.Conn
	local      transport.Listener
	publicAddr string
	bindID     string
	closed     bool
}

var _ transport.Listener = (*ProxyListener)(nil)

// NXProxyBind performs a passive-open registration (paper Figure 4 steps
// 1-2): it binds a private listener on the local host, registers it with the
// outer server, and returns a listener whose address is the outer server's
// public port.
func NXProxyBind(env transport.Env, cfg Config) (*ProxyListener, error) {
	o := obs.From(env)
	span := o.BeginChild(env.Now(), obs.CtxOf(env), "proxy", "bind", env.Hostname())
	local, err := env.Listen(0)
	if err != nil {
		o.EndSpan(env.Now(), span, "proxy", "bind", env.Hostname(), obs.Str("err", "local-bind"))
		return nil, fmt.Errorf("proxy: local bind: %w", err)
	}
	o.EmitCtx(env.Now(), span, "proxy", "bind.leg.local", env.Hostname(), obs.Str("local", local.Addr()))
	control, err := env.Dial(cfg.OuterServer)
	if err != nil {
		_ = local.Close(env)
		o.EndSpan(env.Now(), span, "proxy", "bind", env.Hostname(), obs.Str("err", "dial-outer"))
		return nil, fmt.Errorf("proxy: dial outer server %s: %w", cfg.OuterServer, err)
	}
	st := transport.Stream{Env: env, Conn: control}
	if err := sendAuthedRequest(st, cfg.Secret, msgBind, local.Addr()); err != nil {
		_ = local.Close(env)
		_ = control.Close(env)
		o.EndSpan(env.Now(), span, "proxy", "bind", env.Hostname(), obs.Str("err", "request"))
		return nil, err
	}
	fields, err := expect(st, msgBindOK)
	if err != nil || len(fields) != 2 {
		_ = local.Close(env)
		_ = control.Close(env)
		if err == nil {
			err = fmt.Errorf("%w: bindok wants 2 fields", ErrProtocol)
		}
		o.EndSpan(env.Now(), span, "proxy", "bind", env.Hostname(), obs.Str("err", "bindok"))
		return nil, err
	}
	o.EndSpan(env.Now(), span, "proxy", "bind", env.Hostname(), obs.Str("public", fields[0]))
	return &ProxyListener{
		cfg:        cfg,
		control:    control,
		local:      local,
		publicAddr: fields[0],
		bindID:     fields[1],
	}, nil
}

// Addr returns the public (outer server) address peers should dial.
func (l *ProxyListener) Addr() string { return l.publicAddr }

// BindID returns the outer server's identifier for this bind.
func (l *ProxyListener) BindID() string { return l.bindID }

// Accept is NXProxyAccept (paper Figure 4 step 5): it accepts the inner
// server's local leg and completes the preamble, returning a stream to the
// remote peer.
func (l *ProxyListener) Accept(env transport.Env) (transport.Conn, error) {
	for {
		c, err := l.local.Accept(env)
		if err != nil {
			return nil, err
		}
		st := transport.Stream{Env: env, Conn: c}
		typ, fields, err := readMsg(st)
		if err != nil || typ != msgAccept || len(fields) != 1 {
			// Not the inner server; drop and keep accepting.
			_ = c.Close(env)
			continue
		}
		if err := writeMsg(st, msgOK); err != nil {
			_ = c.Close(env)
			continue
		}
		if o := obs.From(env); o != nil {
			o.EmitCtx(env.Now(), obs.BaggageOf(c), "proxy", "accept", env.Hostname(), obs.Str("conn", fields[0]))
		}
		return c, nil
	}
}

// Close releases the bind at the outer server and the private listener.
func (l *ProxyListener) Close(env transport.Env) error {
	if l.closed {
		return transport.ErrClosed
	}
	l.closed = true
	_ = writeMsg(transport.Stream{Env: env, Conn: l.control}, msgUnbind)
	_ = l.control.Close(env)
	return l.local.Close(env)
}

// NXProxyAccept is the paper-named alias for ProxyListener.Accept.
func NXProxyAccept(env transport.Env, l *ProxyListener) (transport.Conn, error) {
	return l.Accept(env)
}

// Dialer dials through the proxy when configured and directly otherwise —
// the behaviour the paper patched into Globus ("a communication utilizes the
// Nexus Proxy system when the environment variables are defined; otherwise,
// the original communication is done").
type Dialer struct {
	Cfg Config
}

// Dial opens a stream to addr, via the outer server if the proxy is enabled.
func (d Dialer) Dial(env transport.Env, addr string) (transport.Conn, error) {
	if d.Cfg.Enabled() {
		return NXProxyConnect(env, d.Cfg, addr)
	}
	return env.Dial(addr)
}

// Listen binds a listener whose advertised address is reachable by remote
// peers: the proxy's public address when enabled, the local address
// otherwise.
func (d Dialer) Listen(env transport.Env, port int) (transport.Listener, error) {
	if d.Cfg.Enabled() {
		if port != 0 {
			return nil, fmt.Errorf("proxy: bind via proxy cannot request a specific public port")
		}
		return NXProxyBind(env, d.Cfg)
	}
	return env.Listen(port)
}
