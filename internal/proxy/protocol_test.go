package proxy

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestMsgRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeMsg(&buf, msgSplice, "host:1234", "bind-1/conn-2"); err != nil {
		t.Fatal(err)
	}
	typ, fields, err := readMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgSplice {
		t.Fatalf("type = %#x, want %#x", typ, msgSplice)
	}
	if len(fields) != 2 || fields[0] != "host:1234" || fields[1] != "bind-1/conn-2" {
		t.Fatalf("fields = %v", fields)
	}
}

func TestMsgNoFields(t *testing.T) {
	var buf bytes.Buffer
	if err := writeMsg(&buf, msgOK); err != nil {
		t.Fatal(err)
	}
	typ, fields, err := readMsg(&buf)
	if err != nil || typ != msgOK || len(fields) != 0 {
		t.Fatalf("typ=%#x fields=%v err=%v", typ, fields, err)
	}
}

func TestMsgFieldTooLong(t *testing.T) {
	var buf bytes.Buffer
	err := writeMsg(&buf, msgConnect, strings.Repeat("x", maxFieldLen+1))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestReadMsgTruncated(t *testing.T) {
	var buf bytes.Buffer
	_ = writeMsg(&buf, msgConnect, "target:80")
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		_, _, err := readMsg(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestReadMsgRejectsOversizedField(t *testing.T) {
	// Hand-craft a header claiming a field longer than the limit.
	raw := []byte{msgConnect, 1, 0xFF, 0xFF}
	_, _, err := readMsg(bytes.NewReader(raw))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestExpectUnwrapsRemoteError(t *testing.T) {
	var buf bytes.Buffer
	_ = writeMsg(&buf, msgError, "dial refused")
	_, err := expect(&buf, msgOK)
	if err == nil || !strings.Contains(err.Error(), "dial refused") {
		t.Fatalf("err = %v, want remote error text", err)
	}
}

func TestExpectWrongType(t *testing.T) {
	var buf bytes.Buffer
	_ = writeMsg(&buf, msgBindOK, "a:1", "id")
	_, err := expect(&buf, msgOK)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestExpectEOF(t *testing.T) {
	_, err := expect(bytes.NewReader(nil), msgOK)
	if !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

// Property: any message with fields under the limit round-trips exactly.
func TestQuickMsgRoundTrip(t *testing.T) {
	prop := func(typ byte, f1, f2, f3 string) bool {
		fields := []string{f1, f2, f3}
		for i := range fields {
			if len(fields[i]) > maxFieldLen {
				fields[i] = fields[i][:maxFieldLen]
			}
		}
		var buf bytes.Buffer
		if err := writeMsg(&buf, typ, fields...); err != nil {
			return false
		}
		gotTyp, got, err := readMsg(&buf)
		if err != nil || gotTyp != typ || len(got) != 3 {
			return false
		}
		for i := range fields {
			if got[i] != fields[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRelayConfigDefaults(t *testing.T) {
	var c RelayConfig
	if c.bufBytes() != 4096 {
		t.Fatalf("default buffer = %d, want 4096", c.bufBytes())
	}
	c.BufBytes = 128
	if c.bufBytes() != 128 {
		t.Fatalf("buffer = %d, want 128", c.bufBytes())
	}
}
