package proxy_test

import (
	"fmt"
	"io"

	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

// Example demonstrates the paper's active open on real TCP: a client
// replaces connect() with NXProxyConnect and reaches an echo server through
// the outer relay.
func Example() {
	env := transport.NewTCPEnv("localhost")

	// The two relay daemons (inner on the firewall's one opened port,
	// outer outside).
	inner := proxy.NewInnerServer(proxy.RelayConfig{})
	innerReady := make(chan string, 1)
	env.Spawn("inner", func(e transport.Env) {
		_ = inner.Serve(e, 0, func(a string) { innerReady <- a })
	})
	outer := proxy.NewOuterServer(<-innerReady, proxy.RelayConfig{})
	outerReady := make(chan string, 1)
	env.Spawn("outer", func(e transport.Env) {
		_ = outer.Serve(e, 0, func(a string) { outerReady <- a })
	})
	cfg := proxy.Config{OuterServer: <-outerReady, InnerServer: inner.Addr()}

	// A destination server ("PB").
	dst, _ := env.Listen(0)
	env.Spawn("pb", func(e transport.Env) {
		c, err := dst.Accept(e)
		if err != nil {
			return
		}
		buf := make([]byte, 5)
		if _, err := io.ReadFull(transport.Stream{Env: e, Conn: c}, buf); err == nil {
			_, _ = c.Write(e, buf)
		}
	})

	// "PA" behind the firewall: NXProxyConnect instead of connect().
	c, err := proxy.NXProxyConnect(env, cfg, dst.Addr())
	if err != nil {
		panic(err)
	}
	defer c.Close(env)
	_, _ = c.Write(env, []byte("hello"))
	buf := make([]byte, 5)
	_, _ = io.ReadFull(transport.Stream{Env: env, Conn: c}, buf)
	fmt.Println(string(buf))
	// Output:
	// hello
}
