package proxy

import (
	"errors"
	"io"
	"strings"
	"testing"

	"nxcluster/internal/transport"
)

// startTCPProxy boots an outer and inner server pair on loopback TCP and
// returns the client configuration.
func startTCPProxy(t *testing.T, relay RelayConfig) (Config, *OuterServer, *InnerServer) {
	t.Helper()
	env := transport.NewTCPEnv("localhost")

	inner := NewInnerServer(relay)
	innerReady := make(chan string, 1)
	env.Spawn("inner", func(e transport.Env) {
		if err := inner.Serve(e, 0, func(addr string) { innerReady <- addr }); err != nil {
			t.Errorf("inner serve: %v", err)
		}
	})
	innerAddr := <-innerReady

	outer := NewOuterServer(innerAddr, relay)
	outerReady := make(chan string, 1)
	env.Spawn("outer", func(e transport.Env) {
		if err := outer.Serve(e, 0, func(addr string) { outerReady <- addr }); err != nil {
			t.Errorf("outer serve: %v", err)
		}
	})
	outerAddr := <-outerReady

	t.Cleanup(func() {
		outer.Close(env)
		inner.Close(env)
	})
	return Config{OuterServer: outerAddr, InnerServer: innerAddr}, outer, inner
}

func TestTCPActiveConnectRelaysData(t *testing.T) {
	cfg, outer, _ := startTCPProxy(t, RelayConfig{})
	env := transport.NewTCPEnv("localhost")

	// Plain destination server ("PB" in Figure 3).
	dst, err := env.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close(env)
	env.Spawn("pb", func(e transport.Env) {
		c, err := dst.Accept(e)
		if err != nil {
			return
		}
		st := transport.Stream{Env: e, Conn: c}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(st, buf); err != nil {
			t.Errorf("pb read: %v", err)
			return
		}
		if _, err := st.Write(append([]byte("re:"), buf...)); err != nil {
			t.Errorf("pb write: %v", err)
		}
	})

	// "PA" connects via NXProxyConnect instead of connect().
	c, err := NXProxyConnect(env, cfg, dst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	st := transport.Stream{Env: env, Conn: c}
	if _, err := st.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "re:ping" {
		t.Fatalf("reply = %q, want re:ping", buf)
	}
	_ = c.Close(env)
	if outer.Stats().ConnectRelays != 1 {
		t.Fatalf("ConnectRelays = %d, want 1", outer.Stats().ConnectRelays)
	}
	if outer.Stats().Bytes < 11 {
		t.Fatalf("relayed bytes = %d, want >= 11", outer.Stats().Bytes)
	}
}

func TestTCPActiveConnectRefusedTarget(t *testing.T) {
	cfg, _, _ := startTCPProxy(t, RelayConfig{})
	env := transport.NewTCPEnv("localhost")
	// Find a dead port.
	l, _ := env.Listen(0)
	dead := l.Addr()
	_ = l.Close(env)
	_, err := NXProxyConnect(env, cfg, dead)
	if err == nil {
		t.Fatal("connect to dead target succeeded")
	}
	if !strings.Contains(err.Error(), "dial") {
		t.Fatalf("err = %v, want remote dial error", err)
	}
}

func TestTCPPassiveBindAcceptChain(t *testing.T) {
	cfg, outer, inner := startTCPProxy(t, RelayConfig{})
	envA := transport.NewTCPEnv("localhost") // "PA", behind the firewall
	envB := transport.NewTCPEnv("localhost") // "PB", remote

	pl, err := NXProxyBind(envA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close(envA)
	if pl.Addr() == "" || pl.BindID() == "" {
		t.Fatalf("bind returned addr=%q id=%q", pl.Addr(), pl.BindID())
	}
	// The advertised address must be the outer server's host, not PA's
	// private listener.
	outerHost, _, _ := transport.SplitAddr(cfg.OuterServer)
	advHost, _, err := transport.SplitAddr(pl.Addr())
	if err != nil || advHost != outerHost {
		t.Fatalf("advertised %q, want host %q", pl.Addr(), outerHost)
	}

	done := make(chan error, 1)
	envA.Spawn("pa", func(e transport.Env) {
		c, err := NXProxyAccept(e, pl)
		if err != nil {
			done <- err
			return
		}
		st := transport.Stream{Env: e, Conn: c}
		buf := make([]byte, 5)
		if _, err := io.ReadFull(st, buf); err != nil {
			done <- err
			return
		}
		if _, err := st.Write([]byte("ack:" + string(buf))); err != nil {
			done <- err
			return
		}
		done <- nil
	})

	// PB connects to the advertised (outer) address like a normal socket.
	c, err := envB.Dial(pl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	st := transport.Stream{Env: envB, Conn: c}
	if _, err := st.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ack:hello" {
		t.Fatalf("reply = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatalf("PA accept path: %v", err)
	}
	if outer.Stats().BindRelays != 1 || inner.Stats().BindRelays != 1 {
		t.Fatalf("BindRelays outer=%d inner=%d, want 1,1",
			outer.Stats().BindRelays, inner.Stats().BindRelays)
	}
}

func TestTCPPassiveMultipleConnections(t *testing.T) {
	cfg, _, _ := startTCPProxy(t, RelayConfig{})
	envA := transport.NewTCPEnv("localhost")
	envB := transport.NewTCPEnv("localhost")

	pl, err := NXProxyBind(envA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close(envA)

	const n = 4
	envA.Spawn("pa", func(e transport.Env) {
		for i := 0; i < n; i++ {
			c, err := pl.Accept(e)
			if err != nil {
				return
			}
			e.Spawn("echo", func(e2 transport.Env) {
				st := transport.Stream{Env: e2, Conn: c}
				buf := make([]byte, 1)
				if _, err := io.ReadFull(st, buf); err == nil {
					_, _ = st.Write(buf)
				}
				_ = c.Close(e2)
			})
		}
	})

	for i := 0; i < n; i++ {
		c, err := envB.Dial(pl.Addr())
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		st := transport.Stream{Env: envB, Conn: c}
		msg := []byte{byte('a' + i)}
		if _, err := st.Write(msg); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if _, err := io.ReadFull(st, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != msg[0] {
			t.Fatalf("conn %d echoed %q, want %q", i, buf, msg)
		}
		_ = c.Close(envB)
	}
}

func TestTCPUnbindReleasesPublicPort(t *testing.T) {
	cfg, _, _ := startTCPProxy(t, RelayConfig{})
	env := transport.NewTCPEnv("localhost")
	pl, err := NXProxyBind(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	public := pl.Addr()
	if err := pl.Close(env); err != nil {
		t.Fatal(err)
	}
	// Give the outer server a beat to process the unbind.
	deadline := 50
	var dialErr error
	for i := 0; i < deadline; i++ {
		_, dialErr = env.Dial(public)
		if dialErr != nil {
			break
		}
		env.Sleep(10 * 1e6)
	}
	if dialErr == nil {
		t.Fatal("public port still accepting after unbind")
	}
	if !errors.Is(dialErr, transport.ErrRefused) {
		t.Logf("dial error after unbind: %v (acceptable)", dialErr)
	}
}

func TestTCPLargeTransferIntegrity(t *testing.T) {
	cfg, _, _ := startTCPProxy(t, RelayConfig{BufBytes: 1024})
	env := transport.NewTCPEnv("localhost")

	dst, err := env.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close(env)
	const size = 1 << 20
	sum := make(chan byte, 1)
	env.Spawn("sink", func(e transport.Env) {
		c, err := dst.Accept(e)
		if err != nil {
			return
		}
		var x byte
		buf := make([]byte, 32*1024)
		total := 0
		for total < size {
			n, err := c.Read(e, buf)
			for _, b := range buf[:n] {
				x ^= b
			}
			total += n
			if err != nil {
				break
			}
		}
		sum <- x
	})

	c, err := NXProxyConnect(env, cfg, dst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	var want byte
	for i := range data {
		data[i] = byte(i * 31)
		want ^= data[i]
	}
	if _, err := c.Write(env, data); err != nil {
		t.Fatal(err)
	}
	if got := <-sum; got != want {
		t.Fatalf("checksum mismatch: got %#x want %#x", got, want)
	}
	_ = c.Close(env)
}

func TestDialerFallsBackToDirect(t *testing.T) {
	env := transport.NewTCPEnv("localhost")
	l, err := env.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close(env)
	env.Spawn("srv", func(e transport.Env) {
		for {
			c, err := l.Accept(e)
			if err != nil {
				return
			}
			_ = c.Close(e)
		}
	})
	d := Dialer{} // no proxy configured
	c, err := d.Dial(env, l.Addr())
	if err != nil {
		t.Fatalf("direct dial via Dialer: %v", err)
	}
	_ = c.Close(env)
	dl, err := d.Listen(env, 0)
	if err != nil {
		t.Fatalf("direct listen via Dialer: %v", err)
	}
	host, _, _ := transport.SplitAddr(dl.Addr())
	if host != "localhost" {
		t.Fatalf("direct listener advertises %q", dl.Addr())
	}
	_ = dl.Close(env)
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("empty config enabled")
	}
	if (Config{OuterServer: "o:1"}).Enabled() {
		t.Fatal("half config enabled")
	}
	if !(Config{OuterServer: "o:1", InnerServer: "i:2"}).Enabled() {
		t.Fatal("full config disabled")
	}
}
