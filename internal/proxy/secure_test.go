package proxy

import (
	"io"
	"strings"
	"testing"

	"nxcluster/internal/transport"
)

// startSecureTCPProxy boots an authenticated outer/inner pair.
func startSecureTCPProxy(t *testing.T, secret string) Config {
	t.Helper()
	env := transport.NewTCPEnv("localhost")

	inner := NewInnerServer(RelayConfig{})
	inner.Secret = secret
	innerReady := make(chan string, 1)
	env.Spawn("inner", func(e transport.Env) {
		_ = inner.Serve(e, 0, func(a string) { innerReady <- a })
	})
	innerAddr := <-innerReady

	outer := NewOuterServer(innerAddr, RelayConfig{})
	outer.Secret = secret
	outerReady := make(chan string, 1)
	env.Spawn("outer", func(e transport.Env) {
		_ = outer.Serve(e, 0, func(a string) { outerReady <- a })
	})
	outerAddr := <-outerReady

	t.Cleanup(func() {
		outer.Close(env)
		inner.Close(env)
	})
	return Config{OuterServer: outerAddr, InnerServer: innerAddr, Secret: secret}
}

func TestSecureActiveConnect(t *testing.T) {
	cfg := startSecureTCPProxy(t, "site-secret-42")
	env := transport.NewTCPEnv("localhost")
	dst, err := env.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close(env)
	env.Spawn("pb", func(e transport.Env) {
		c, err := dst.Accept(e)
		if err != nil {
			return
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(transport.Stream{Env: e, Conn: c}, buf); err == nil {
			_, _ = c.Write(e, buf)
		}
	})
	c, err := NXProxyConnect(env, cfg, dst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(env)
	if _, err := c.Write(env, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(transport.Stream{Env: env, Conn: c}, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo = %q", buf)
	}
}

func TestSecurePassiveChain(t *testing.T) {
	// The outer -> inner splice leg must also authenticate.
	cfg := startSecureTCPProxy(t, "site-secret-42")
	envA := transport.NewTCPEnv("localhost")
	envB := transport.NewTCPEnv("localhost")
	pl, err := NXProxyBind(envA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close(envA)
	done := make(chan error, 1)
	envA.Spawn("pa", func(e transport.Env) {
		c, err := pl.Accept(e)
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 2)
		if _, err := io.ReadFull(transport.Stream{Env: e, Conn: c}, buf); err != nil {
			done <- err
			return
		}
		_, _ = c.Write(e, buf)
		done <- nil
	})
	c, err := envB.Dial(pl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(envB, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(transport.Stream{Env: envB, Conn: c}, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestWrongSecretRejected(t *testing.T) {
	cfg := startSecureTCPProxy(t, "right-secret")
	env := transport.NewTCPEnv("localhost")
	bad := cfg
	bad.Secret = "wrong-secret"
	_, err := NXProxyConnect(env, bad, "localhost:1")
	if err == nil || !strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("connect with wrong secret = %v", err)
	}
	if _, err := NXProxyBind(env, bad); err == nil {
		t.Fatal("bind with wrong secret succeeded")
	}
}

func TestMissingSecretRejected(t *testing.T) {
	cfg := startSecureTCPProxy(t, "right-secret")
	env := transport.NewTCPEnv("localhost")
	// A client that does not even expect the challenge: its request bytes
	// cannot satisfy the proof check.
	open := cfg
	open.Secret = ""
	if _, err := NXProxyConnect(env, open, "localhost:1"); err == nil {
		t.Fatal("secretless connect to authenticated server succeeded")
	}
}

func TestProveRequestDeterministicAndSensitive(t *testing.T) {
	a := proveRequest("s", "nonce", msgConnect, []string{"host:1"})
	b := proveRequest("s", "nonce", msgConnect, []string{"host:1"})
	if a != b {
		t.Fatal("proof not deterministic")
	}
	for _, other := range []string{
		proveRequest("x", "nonce", msgConnect, []string{"host:1"}),
		proveRequest("s", "other", msgConnect, []string{"host:1"}),
		proveRequest("s", "nonce", msgBind, []string{"host:1"}),
		proveRequest("s", "nonce", msgConnect, []string{"host:2"}),
	} {
		if a == other {
			t.Fatal("proof not sensitive to all inputs")
		}
	}
	// Field-boundary ambiguity must change the proof.
	if proveRequest("s", "n", msgSplice, []string{"ab", "c"}) == proveRequest("s", "n", msgSplice, []string{"a", "bc"}) {
		t.Fatal("proof ambiguous across field boundaries")
	}
}
