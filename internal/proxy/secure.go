package proxy

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"nxcluster/internal/transport"
)

// The paper hardens the proxy by binding it to privileged ports (root-only
// on year-2000 Unix). This file provides the modern equivalent knob: an
// optional site secret on the relay control channels. When a server is
// configured with a secret, every connect/bind/splice request must carry an
// HMAC proof over a server-issued nonce, so only site processes holding the
// secret can open relays — the firewall still restricts who can reach the
// nxport at all.

// msgChallenge (server → client): fields [nonceHex]. Sent immediately after
// accept when the server has a secret; the client appends the proof as the
// final field of its request.
const msgChallenge = byte(0x09)

// nonceBytes is the challenge size.
const nonceBytes = 16

// proveRequest computes the proof for a request of the given type and
// fields against a challenge nonce.
func proveRequest(secret, nonceHex string, typ byte, fields []string) string {
	m := hmac.New(sha256.New, []byte(secret))
	m.Write([]byte(nonceHex))
	m.Write([]byte{typ})
	for _, f := range fields {
		m.Write([]byte{0})
		m.Write([]byte(f))
	}
	return hex.EncodeToString(m.Sum(nil))
}

// issueChallenge sends a fresh nonce on the stream and returns it.
func issueChallenge(st transport.Stream) (string, error) {
	raw := make([]byte, nonceBytes)
	if _, err := rand.Read(raw); err != nil {
		return "", err
	}
	nonce := hex.EncodeToString(raw)
	if err := writeMsg(st, msgChallenge, nonce); err != nil {
		return "", err
	}
	return nonce, nil
}

// readChallenge consumes the server's challenge.
func readChallenge(r io.Reader) (string, error) {
	fields, err := expect(r, msgChallenge)
	if err != nil {
		return "", err
	}
	if len(fields) != 1 {
		return "", fmt.Errorf("%w: challenge wants 1 field", ErrProtocol)
	}
	return fields[0], nil
}

// verifyProof checks a request's trailing proof field and returns the
// request fields without it.
func verifyProof(secret, nonce string, typ byte, fields []string) ([]string, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("proxy: request missing authentication proof")
	}
	proof := fields[len(fields)-1]
	rest := fields[:len(fields)-1]
	want := proveRequest(secret, nonce, typ, rest)
	if !hmac.Equal([]byte(proof), []byte(want)) {
		return nil, fmt.Errorf("proxy: authentication proof invalid")
	}
	return rest, nil
}

// sendAuthedRequest performs the client side: consume the challenge if the
// config carries a secret, then send the request (with proof appended when
// authenticated).
func sendAuthedRequest(st transport.Stream, secret string, typ byte, fields ...string) error {
	if secret == "" {
		return writeMsg(st, typ, fields...)
	}
	nonce, err := readChallenge(st)
	if err != nil {
		return err
	}
	fields = append(append([]string(nil), fields...), proveRequest(secret, nonce, typ, fields))
	return writeMsg(st, typ, fields...)
}
