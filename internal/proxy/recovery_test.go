package proxy

import (
	"errors"
	"io"
	"testing"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

// bootRegisteredProxy starts the inner server with a registration loop and
// the outer server with an OnRestart boot script. The outer server is
// created with NO static inner address, so every passive-open splice depends
// on the registration channel working.
func bootRegisteredProxy(n *simnet.Network, ka KeepaliveConfig) (*InnerServer, *[]*OuterServer) {
	inner := NewInnerServer(RelayConfig{})
	n.Node("inner").SpawnDaemonOn("inner-server", func(env transport.Env) {
		_ = inner.Serve(env, 7010, func(string) {
			env.SpawnService("inner-register", func(e transport.Env) {
				inner.MaintainRegistration(e, ka)
			})
		})
	})
	outers := &[]*OuterServer{}
	bootOuter := func(env transport.Env) {
		o := NewOuterServer("", RelayConfig{})
		*outers = append(*outers, o)
		_ = o.Serve(env, 7000, nil)
	}
	n.Node("outer").SpawnDaemonOn("outer-server", bootOuter)
	n.Node("outer").OnRestart("outer-server", bootOuter)
	return inner, outers
}

// TestRegistrationSurvivesOuterRestart crashes the outer host mid-run. The
// inner server must fail fast on its dead session (reset, then ErrHostDown
// dials), back off, and re-register with the restarted daemon — after which
// the full passive-open chain works purely off the re-registered address.
func TestRegistrationSurvivesOuterRestart(t *testing.T) {
	k := sim.New()
	n := buildFirewalledSite(k)
	ka := KeepaliveConfig{
		OuterAddr: "outer:7000",
		Interval:  100 * time.Millisecond,
		Backoff:   transport.Backoff{Base: 50 * time.Millisecond, Max: time.Second},
	}
	inner, outers := bootRegisteredProxy(n, ka)
	if err := n.ApplyPlan((&simnet.FaultPlan{}).CrashWindow("outer", time.Second, 1500*time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	cfg := Config{OuterServer: "outer:7000", InnerServer: "inner:7010"}
	var paAddr string
	var echoed string
	n.Node("pa").SpawnOn("pa", func(env transport.Env) {
		env.Sleep(3 * time.Second) // well past the recovery
		pl, err := NXProxyBind(env, cfg)
		if err != nil {
			t.Errorf("NXProxyBind after recovery: %v", err)
			return
		}
		paAddr = pl.Addr()
		c, err := pl.Accept(env)
		if err != nil {
			t.Errorf("NXProxyAccept: %v", err)
			return
		}
		st := transport.Stream{Env: env, Conn: c}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(st, buf); err != nil {
			t.Errorf("pa read: %v", err)
			return
		}
		_, _ = st.Write(buf)
		_ = c.Close(env)
	})
	n.Node("pb").SpawnOn("pb", func(env transport.Env) {
		for paAddr == "" {
			env.Sleep(10 * time.Millisecond)
		}
		c, err := env.Dial(paAddr)
		if err != nil {
			t.Errorf("pb dial: %v", err)
			return
		}
		st := transport.Stream{Env: env, Conn: c}
		_, _ = st.Write([]byte("ping"))
		buf := make([]byte, 4)
		if _, err := io.ReadFull(st, buf); err != nil {
			t.Errorf("pb read: %v", err)
			return
		}
		echoed = string(buf)
		_ = c.Close(env)
	})

	// The registration keepalive runs forever, so drive to a horizon rather
	// than draining the event queue.
	k.RunUntil(6 * time.Second)
	if echoed != "ping" {
		t.Errorf("echo through re-registered proxy = %q, want %q", echoed, "ping")
	}
	if got := inner.Stats().Registrations; got < 2 {
		t.Errorf("inner registrations = %d, want >= 2 (initial + after restart)", got)
	}
	if len(*outers) != 2 {
		t.Fatalf("outer server booted %d times, want 2", len(*outers))
	}
	last := (*outers)[1].Stats()
	if last.Registrations < 1 {
		t.Error("restarted outer server never saw a registration")
	}
	if !last.InnerConnected {
		t.Error("restarted outer server does not show a live inner session")
	}
	k.Shutdown()
}

// TestRegistrationSurvivesBoundaryFlap flaps the link between the site
// gateway and the outer host for longer than the keepalive timeout: the
// inner server must notice the dead session via a missed pong and establish
// a second one once connectivity returns.
func TestRegistrationSurvivesBoundaryFlap(t *testing.T) {
	k := sim.New()
	n := buildFirewalledSite(k)
	ka := KeepaliveConfig{
		OuterAddr: "outer:7000",
		Interval:  100 * time.Millisecond,
		Timeout:   200 * time.Millisecond,
		Backoff:   transport.Backoff{Base: 50 * time.Millisecond, Max: time.Second},
	}
	inner, outers := bootRegisteredProxy(n, ka)
	if err := n.ApplyPlan((&simnet.FaultPlan{}).LinkOutage("gw", "outer", time.Second, 2*time.Second)); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(4 * time.Second)
	if got := inner.Stats().Registrations; got != 2 {
		t.Errorf("inner registrations = %d, want 2 (initial + after flap)", got)
	}
	st := (*outers)[0].Stats()
	if st.Registrations != 2 {
		t.Errorf("outer registrations = %d, want 2", st.Registrations)
	}
	if !st.InnerConnected {
		t.Error("outer does not show a live inner session after the flap healed")
	}
	k.Shutdown()
}

// TestRelayPropagatesResetThroughSplice aborts one endpoint of a fully
// spliced passive-open chain (pb -> outer -> inner -> pa) mid-stream and
// asserts the opposite endpoint reads ErrReset, not a clean EOF.
func TestRelayPropagatesResetThroughSplice(t *testing.T) {
	k := sim.New()
	n := buildFirewalledSite(k)
	cfg := startSimProxy(n, RelayConfig{})

	var paAddr string
	var paErr error
	n.Node("pa").SpawnOn("pa", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		pl, err := NXProxyBind(env, cfg)
		if err != nil {
			t.Errorf("NXProxyBind: %v", err)
			return
		}
		paAddr = pl.Addr()
		c, err := pl.Accept(env)
		if err != nil {
			t.Errorf("NXProxyAccept: %v", err)
			return
		}
		st := transport.Stream{Env: env, Conn: c}
		buf := make([]byte, 2)
		if _, err := io.ReadFull(st, buf); err != nil {
			t.Errorf("pa first read: %v", err)
			return
		}
		_, paErr = c.Read(env, buf) // blocks until pb aborts
	})
	n.Node("pb").SpawnOn("pb", func(env transport.Env) {
		for paAddr == "" {
			env.Sleep(10 * time.Millisecond)
		}
		c, err := env.Dial(paAddr)
		if err != nil {
			t.Errorf("pb dial: %v", err)
			return
		}
		_, _ = c.Write(env, []byte("hi"))
		env.Sleep(100 * time.Millisecond) // let the bytes traverse the chain
		_ = transport.Abort(env, c)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(paErr, transport.ErrReset) {
		t.Errorf("pa read after pb abort = %v, want ErrReset", paErr)
	}
	k.Shutdown()
}

// TestKeepaliveMissBudgetRidesOutDegradedBoundary degrades the boundary link
// so every pong lands after the keepalive timeout but well before the next
// cycle. With a miss budget the inner server stays on its one session and
// counts SUSPECT periods; the budget-less control flaps through a full
// teardown and re-registration on the same schedule.
func TestKeepaliveMissBudgetRidesOutDegradedBoundary(t *testing.T) {
	run := func(missBudget int) (registrations, suspectPeriods int) {
		k := sim.New()
		n := buildFirewalledSite(k)
		inner, _ := bootRegisteredProxy(n, KeepaliveConfig{
			OuterAddr:  "outer:7000",
			Interval:   100 * time.Millisecond,
			Timeout:    200 * time.Millisecond,
			MissBudget: missBudget,
			Backoff:    transport.Backoff{Base: 50 * time.Millisecond, Max: time.Second},
		})
		// +250ms one-way: pings arrive late, so pongs always miss the 200ms
		// window but surface as queued late arrivals next cycle.
		plan := (&simnet.FaultPlan{}).LinkDegrade("gw", "outer", 250*time.Millisecond, 0,
			time.Second, 3*time.Second)
		if err := n.ApplyPlan(plan); err != nil {
			t.Fatal(err)
		}
		k.RunUntil(5 * time.Second)
		st := inner.Stats()
		k.Shutdown()
		return st.Registrations, st.SuspectPeriods
	}
	regs, suspects := run(2)
	if regs != 1 {
		t.Errorf("with budget: registrations = %d, want 1 (session rides out the degrade)", regs)
	}
	// Only the first cycle misses: its late pong primes a one-behind
	// pipeline, and every later cycle finds the previous pong already queued.
	if suspects != 1 {
		t.Errorf("with budget: suspect periods = %d, want 1", suspects)
	}
	regs, suspects = run(0)
	if regs < 2 {
		t.Errorf("without budget: registrations = %d, want >= 2 (flapped through teardown)", regs)
	}
	if suspects != 0 {
		t.Errorf("without budget: suspect periods = %d, want 0", suspects)
	}
}
