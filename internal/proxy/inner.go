package proxy

import (
	"fmt"
	"sync/atomic"

	"nxcluster/internal/transport"
)

// InnerServer is the relay daemon inside the firewall. It listens on the
// nxport — the single port the site firewall opens for incoming traffic from
// the outer server — and completes passive-open chains by dialing the bound
// client's private listener on the inside network.
//
// The paper notes that binding the proxy to a privileged port (requiring
// root) strengthens the deployment; port policy is the operator's choice
// here and the firewall restricts the source anyway.
type InnerServer struct {
	// Relay tunes the data pumps.
	Relay RelayConfig
	// Secret, when non-empty, requires an HMAC proof on every splice
	// request; configure the same site secret on the outer server.
	Secret string

	listener transport.Listener
	// Relay counters, updated atomically (see OuterServer).
	bindRelays     int64
	bytes          int64
	registrations  int64
	suspectPeriods int64
	trace          func(format string, args ...interface{})
}

// NewInnerServer creates an inner server.
func NewInnerServer(relay RelayConfig) *InnerServer {
	return &InnerServer{Relay: relay}
}

// SetTrace installs a tracing callback.
func (s *InnerServer) SetTrace(fn func(format string, args ...interface{})) { s.trace = fn }

func (s *InnerServer) tracef(format string, args ...interface{}) {
	if s.trace != nil {
		s.trace(format, args...)
	}
}

// Stats returns a snapshot of relay counters.
func (s *InnerServer) Stats() Stats {
	return Stats{
		BindRelays:     int(atomic.LoadInt64(&s.bindRelays)),
		Bytes:          atomic.LoadInt64(&s.bytes),
		Registrations:  int(atomic.LoadInt64(&s.registrations)),
		SuspectPeriods: int(atomic.LoadInt64(&s.suspectPeriods)),
	}
}

// Addr returns the nxport listener address once Serve has bound it.
func (s *InnerServer) Addr() string { return s.listener.Addr() }

// Serve binds the nxport and runs the accept loop; it blocks its process.
func (s *InnerServer) Serve(env transport.Env, nxport int, ready func(addr string)) error {
	l, err := env.Listen(nxport)
	if err != nil {
		return fmt.Errorf("proxy inner: listen: %w", err)
	}
	s.listener = l
	if ready != nil {
		ready(l.Addr())
	}
	for {
		c, err := l.Accept(env)
		if err != nil {
			return nil
		}
		conn := c
		env.SpawnService("inner:conn", func(e transport.Env) { s.handle(e, conn) })
	}
}

// Close shuts down the nxport listener.
func (s *InnerServer) Close(env transport.Env) {
	if s.listener != nil {
		_ = s.listener.Close(env)
	}
}

// handle serves one connection from the outer server: read the splice
// request, dial the client's private listener, deliver the accept preamble,
// and pump (paper Figure 4 steps 4-5).
func (s *InnerServer) handle(env transport.Env, c transport.Conn) {
	st := transport.Stream{Env: env, Conn: c}
	var nonce string
	if s.Secret != "" {
		var err error
		if nonce, err = issueChallenge(st); err != nil {
			_ = c.Close(env)
			return
		}
	}
	typ, fields, err := readMsg(st)
	if err == nil && s.Secret != "" {
		fields, err = verifyProof(s.Secret, nonce, typ, fields)
	}
	if err != nil || typ != msgSplice || len(fields) != 2 {
		_ = writeMsg(st, msgError, "inner: want authenticated splice request")
		_ = c.Close(env)
		return
	}
	target, connID := fields[0], fields[1]
	s.tracef("inner: splice %s toward %s", connID, target)
	local, err := env.Dial(target)
	if err != nil {
		_ = writeMsg(st, msgError, fmt.Sprintf("dial %s: %v", target, err))
		_ = c.Close(env)
		return
	}
	lst := transport.Stream{Env: env, Conn: local}
	if err := writeMsg(lst, msgAccept, connID); err != nil {
		_ = local.Close(env)
		_ = c.Close(env)
		return
	}
	if _, err := expect(lst, msgOK); err != nil {
		_ = local.Close(env)
		_ = c.Close(env)
		return
	}
	if err := writeMsg(st, msgOK); err != nil {
		_ = local.Close(env)
		_ = c.Close(env)
		return
	}
	atomic.AddInt64(&s.bindRelays, 1)
	s.tracef("inner: relaying %s", connID)
	splice(env, "inner:"+connID, c, local, s.Relay, &s.bytes)
}
