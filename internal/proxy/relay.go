package proxy

import (
	"errors"
	"io"
	"sync/atomic"
	"time"

	"nxcluster/internal/obs"
	"nxcluster/internal/transport"
)

// RelayConfig tunes the data pump both servers use to shuttle bytes between
// the two legs of a relayed connection.
type RelayConfig struct {
	// BufBytes is the relay read buffer; each read-process-write cycle
	// handles at most this many bytes (default 4096). It is the knob behind
	// the paper's small-message bandwidth cliff and is swept by the
	// ablation benchmarks.
	BufBytes int
	// PerBuffer is the processing cost charged (as CPU time on the relay
	// host) per buffer relayed. It models the year-2000 userspace relay
	// overhead the paper measures: ~10 ms per relay server per message,
	// which makes indirect LAN latency ~60x direct latency while becoming
	// negligible for large transfers on a 1.5 Mbps WAN.
	PerBuffer time.Duration
}

func (c RelayConfig) bufBytes() int {
	if c.BufBytes <= 0 {
		return 4096
	}
	return c.BufBytes
}

// Stats counts relay activity for reporting.
type Stats struct {
	// ConnectRelays counts active opens relayed.
	ConnectRelays int
	// BindRelays counts passive opens spliced.
	BindRelays int
	// Bytes counts payload bytes pumped in both directions.
	Bytes int64
	// Registrations counts registration sessions established on the
	// inner-to-outer control channel (1 in a fault-free run; each recovery
	// after a flap or outer restart adds one).
	Registrations int
	// InnerConnected reports whether a registration session is currently
	// live (outer server only).
	InnerConnected bool
	// SuspectPeriods counts keepalive cycles that missed a pong but stayed
	// on the session under KeepaliveConfig.MissBudget (inner server only):
	// evidence the boundary link was degraded rather than down.
	SuspectPeriods int
}

// pump copies bytes from src to dst until EOF or error, charging the
// configured per-buffer processing cost. It runs as its own process; a
// relayed connection uses two pumps, one per direction.
//
// Teardown distinguishes how the stream ended: a clean EOF closes both legs
// in order, while a mid-stream transport failure (connection reset, crashed
// endpoint) aborts both legs, so the surviving endpoint observes ErrReset
// rather than mistaking the break for an orderly close.
func pump(env transport.Env, name string, src, dst transport.Conn, cfg RelayConfig, bytes *int64) {
	buf := make([]byte, cfg.bufBytes())
	// The observer is resolved once per pump: nil on real TCP and when
	// tracing is off. recv marks a buffer landing in the relay, fwd marks it
	// leaving — the gap between them is the store-and-forward cost the paper
	// attributes the proxy's latency penalty to. The occupancy gauge sums
	// held bytes across all pumps on this relay host.
	o := obs.From(env)
	var mOcc *obs.Gauge
	var mBytes *obs.Counter
	track := env.Hostname() + "/" + name
	// Relay legs belong to whichever traced job dialed the source leg; its
	// context rides the connection as baggage.
	tc := obs.BaggageOf(src)
	if o != nil {
		mOcc = o.Metrics().Gauge("relay." + env.Hostname() + ".occupancy")
		mBytes = o.Metrics().Counter("relay." + env.Hostname() + ".bytes")
		// Active-pump gauge: the monitoring plane's view of concurrent
		// relayed streams on this host (2 pumps per spliced connection).
		mStreams := o.Metrics().Gauge("relay." + env.Hostname() + ".streams")
		mStreams.Add(1)
		defer mStreams.Add(-1)
	}
	var failure error
	for {
		n, err := src.Read(env, buf)
		if n > 0 {
			if o != nil {
				o.EmitCtx(env.Now(), tc, "relay", "recv", track, obs.Int("bytes", int64(n)))
				mOcc.Add(int64(n))
			}
			if cfg.PerBuffer > 0 {
				env.Compute(cfg.PerBuffer)
			}
			if _, werr := dst.Write(env, buf[:n]); werr != nil {
				failure = werr
				break
			}
			if o != nil {
				o.EmitCtx(env.Now(), tc, "relay", "fwd", track, obs.Int("bytes", int64(n)))
				mOcc.Add(-int64(n))
				mBytes.Add(int64(n))
			}
			if bytes != nil {
				// Atomic because the two pumps of a TCP relay are separate
				// goroutines (in the simulator they are cooperatively
				// scheduled and the atomicity is free).
				atomic.AddInt64(bytes, int64(n))
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				failure = err
			}
			break
		}
	}
	if failure != nil {
		_ = transport.Abort(env, dst)
		_ = transport.Abort(env, src)
		return
	}
	_ = dst.Close(env)
	_ = src.Close(env)
}

// splice wires a and b together with two pumps and returns immediately.
func splice(env transport.Env, name string, a, b transport.Conn, cfg RelayConfig, bytes *int64) {
	env.SpawnService(name+":fwd", func(e transport.Env) { pump(e, name+":fwd", a, b, cfg, bytes) })
	env.SpawnService(name+":rev", func(e transport.Env) { pump(e, name+":rev", b, a, cfg, bytes) })
}
