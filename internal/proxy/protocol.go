// Package proxy implements the Nexus Proxy, the paper's mechanism for
// establishing TCP communication links beyond a deny-based firewall.
//
// Two relay daemons cooperate:
//
//   - the outer server runs outside the firewall and accepts both relay
//     requests from clients inside the site and connections from remote
//     processes;
//   - the inner server runs inside the firewall and listens on a single
//     pre-opened port (the nxport) reachable only from the outer server —
//     the one hole a site must punch for the whole system to work.
//
// A process inside the firewall uses three library calls in place of the
// socket primitives (paper Table 1):
//
//   - NXProxyConnect sends a connect request to the outer server and returns
//     a stream to the destination (active open, paper Figure 3);
//   - NXProxyBind sends a bind request; the outer server binds a public port
//     and returns its address, which is what gets advertised to peers;
//   - NXProxyAccept accepts a connection on the port returned by
//     NXProxyBind; the chain runs peer → outer server → inner server →
//     client (passive open, paper Figure 4).
//
// The paper contrasts this with SOCKS, which cannot relay passive opens, and
// with the Globus 1.1 port-range escape hatch, which degrades a deny-based
// firewall into an allow-based one.
package proxy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Message types on the proxy control channel.
const (
	// msgConnect (client → outer): fields [targetAddr]. Requests an active
	// open; on msgOK the control connection becomes the relayed stream.
	msgConnect = byte(0x01)
	// msgBind (client → outer): fields [clientLocalAddr]. Requests a
	// passive open relay for the client's private listener.
	msgBind = byte(0x02)
	// msgBindOK (outer → client): fields [publicAddr, bindID].
	msgBindOK = byte(0x03)
	// msgOK: success, no fields.
	msgOK = byte(0x04)
	// msgError: fields [message].
	msgError = byte(0x05)
	// msgSplice (outer → inner): fields [targetLocalAddr, connID]. Asks the
	// inner server to complete the chain toward the bound client.
	msgSplice = byte(0x06)
	// msgAccept (inner → client): fields [connID]. Preamble on the local
	// leg delivered to NXProxyAccept.
	msgAccept = byte(0x07)
	// msgUnbind (client → outer): no fields. Releases a bind.
	msgUnbind = byte(0x08)
	// msgRegister (inner → outer): fields [innerNxAddr]. The inner server
	// advertises its nxport address on a persistent control connection; the
	// outer server splices passive opens toward the registered address. The
	// connection doubles as the liveness channel between the two daemons.
	msgRegister = byte(0x09)
	// msgRegisterOK (outer → inner): no fields.
	msgRegisterOK = byte(0x0a)
	// msgPing (inner → outer) / msgPong (outer → inner): keepalives on the
	// registration channel; a missed pong makes the inner server tear the
	// session down and re-register with backoff.
	msgPing = byte(0x0b)
	msgPong = byte(0x0c)
)

// maxFieldLen bounds a single protocol field on the wire.
const maxFieldLen = 4096

// ErrProtocol reports a malformed proxy message.
var ErrProtocol = errors.New("proxy: protocol error")

// writeMsg frames a control message: [type:1][nfields:1]([len:2][bytes])*.
func writeMsg(w io.Writer, typ byte, fields ...string) error {
	if len(fields) > 255 {
		return fmt.Errorf("%w: too many fields", ErrProtocol)
	}
	buf := []byte{typ, byte(len(fields))}
	for _, f := range fields {
		if len(f) > maxFieldLen {
			return fmt.Errorf("%w: field too long (%d)", ErrProtocol, len(f))
		}
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(f)))
		buf = append(buf, l[:]...)
		buf = append(buf, f...)
	}
	_, err := w.Write(buf)
	return err
}

// readMsg parses one framed control message.
func readMsg(r io.Reader) (typ byte, fields []string, err error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	n := int(hdr[1])
	fields = make([]string, 0, n)
	for i := 0; i < n; i++ {
		var l [2]byte
		if _, err := io.ReadFull(r, l[:]); err != nil {
			return 0, nil, fmt.Errorf("%w: truncated field length: %v", ErrProtocol, err)
		}
		fl := int(binary.BigEndian.Uint16(l[:]))
		if fl > maxFieldLen {
			return 0, nil, fmt.Errorf("%w: field length %d exceeds limit", ErrProtocol, fl)
		}
		b := make([]byte, fl)
		if _, err := io.ReadFull(r, b); err != nil {
			return 0, nil, fmt.Errorf("%w: truncated field: %v", ErrProtocol, err)
		}
		fields = append(fields, string(b))
	}
	return typ, fields, nil
}

// expect reads a message and verifies its type, unwrapping msgError replies
// into Go errors.
func expect(r io.Reader, want byte) ([]string, error) {
	typ, fields, err := readMsg(r)
	if err != nil {
		return nil, err
	}
	if typ == msgError {
		msg := "unknown"
		if len(fields) > 0 {
			msg = fields[0]
		}
		return nil, fmt.Errorf("proxy: remote error: %s", msg)
	}
	if typ != want {
		return nil, fmt.Errorf("%w: got message type %#x, want %#x", ErrProtocol, typ, want)
	}
	return fields, nil
}
