package proxy

import (
	"sync/atomic"
	"time"

	"nxcluster/internal/obs"
	"nxcluster/internal/transport"
)

// KeepaliveConfig tunes the inner server's persistent registration channel
// to the outer server.
type KeepaliveConfig struct {
	// OuterAddr is the outer server's control address ("host:port").
	OuterAddr string
	// Interval is the ping period (default 500ms).
	Interval time.Duration
	// Timeout is how long to wait for a pong before declaring the session
	// dead (default 2*Interval). A WAN flap longer than this triggers a
	// re-registration once connectivity returns.
	Timeout time.Duration
	// MissBudget is how many consecutive pong timeouts to tolerate before
	// tearing the session down. On a degraded (slow but alive) boundary link
	// a pong can arrive after Timeout; with a budget the session rides the
	// delay out as SUSPECT — counted in Stats.SuspectPeriods — instead of
	// flapping through teardown and re-registration. A late pong stays
	// queued and squares the books on the next ping cycle. Zero preserves
	// the original behavior: the first miss ends the session.
	MissBudget int
	// Backoff is the redial schedule after a failed or broken session; the
	// zero value uses the transport defaults (100ms base, 5s cap) with a
	// jitter key derived from the inner host's name.
	Backoff transport.Backoff
}

// MaintainRegistration keeps the inner server registered with the outer
// server for as long as the calling process lives: it dials the control
// port, registers the nxport address, then exchanges keepalives. When the
// session breaks — the outer host restarts, the boundary link flaps past
// the keepalive timeout — it re-dials with capped exponential backoff and
// deterministic jitter, re-registers, and resumes service.
//
// Call it from a daemon process after Serve has bound the nxport (the
// registered address is s.Addr()). It never returns.
func (s *InnerServer) MaintainRegistration(env transport.Env, cfg KeepaliveConfig) {
	interval := cfg.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 2 * interval
	}
	bo := cfg.Backoff
	if bo.Key == "" {
		bo.Key = "inner-register@" + env.Hostname()
	}
	if bo.Rand == nil {
		// Under simulation the jitter must come from the kernel's seeded
		// stream so chaos runs replay bit for bit; on real TCP RandOf returns
		// nil and the hash fallback applies.
		bo.Rand = transport.RandOf(env)
	}
	o := obs.From(env)
	for {
		c, err := env.Dial(cfg.OuterAddr)
		if err != nil {
			s.tracef("inner: register dial %s: %v (retry in backoff)", cfg.OuterAddr, err)
			env.Sleep(bo.Next())
			continue
		}
		st := transport.Stream{Env: env, Conn: c}
		err = sendAuthedRequest(st, s.Secret, msgRegister, s.Addr())
		if err == nil {
			_, err = expect(st, msgRegisterOK)
		}
		if err != nil {
			s.tracef("inner: register with %s failed: %v", cfg.OuterAddr, err)
			_ = c.Close(env)
			env.Sleep(bo.Next())
			continue
		}
		n := atomic.AddInt64(&s.registrations, 1)
		s.tracef("inner: registered with %s (session %d)", cfg.OuterAddr, n)
		if o != nil {
			o.Emit(env.Now(), "proxy", "register", env.Hostname(), obs.Int("session", n))
			o.Metrics().Counter("proxy.registrations").Add(1)
		}
		bo.Reset()
		s.keepalive(env, c, interval, timeout, cfg.MissBudget)
		s.tracef("inner: registration session %d broke; re-registering", n)
		if o != nil {
			o.Emit(env.Now(), "proxy", "register.broken", env.Hostname(), obs.Int("session", n))
		}
		env.Sleep(bo.Next())
	}
}

// keepalive pings the outer server every interval and waits for pongs. It
// returns when the session is no longer healthy: a write error, a connection
// reset, or more consecutive pong timeouts than missBudget allows (zero
// budget: the first miss ends the session). The connection is aborted on
// return so the outer server (if alive) sees the session end as a reset, and
// the reader process unblocks.
func (s *InnerServer) keepalive(env transport.Env, c transport.Conn, interval, timeout time.Duration, missBudget int) {
	st := transport.Stream{Env: env, Conn: c}
	pongs := transport.NewQueue[byte](env)
	env.SpawnService("inner:reg-reader", func(e transport.Env) {
		for {
			typ, _, err := readMsg(transport.Stream{Env: e, Conn: c})
			if err != nil {
				pongs.Close()
				return
			}
			pongs.Put(e, typ)
		}
	})
	misses := 0
	for {
		env.Sleep(interval)
		if err := writeMsg(st, msgPing); err != nil {
			break
		}
		typ, ok, timedOut := pongs.GetTimeout(env, timeout)
		if timedOut {
			if misses < missBudget {
				// Degraded, not dead: the pong is late, not lost. Stay on
				// the session and let a queued late pong settle the next
				// cycle.
				misses++
				atomic.AddInt64(&s.suspectPeriods, 1)
				s.tracef("inner: keepalive pong late (miss %d/%d); session SUSPECT", misses, missBudget)
				continue
			}
			break
		}
		if !ok || typ != msgPong {
			break
		}
		misses = 0
	}
	_ = transport.Abort(env, c)
}
