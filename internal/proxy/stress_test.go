package proxy

import (
	"fmt"
	"io"
	"testing"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

// TestManyConcurrentRelaysInSim pushes 32 simultaneous proxied connections
// (16 active opens + 16 passive-chain peers) through one outer/inner pair
// and verifies every byte arrives on the right stream.
func TestManyConcurrentRelaysInSim(t *testing.T) {
	k := sim.New()
	n := buildFirewalledSite(k)
	cfg := startSimProxy(n, RelayConfig{PerBuffer: time.Millisecond})

	const conns = 16
	okActive := make([]bool, conns)
	okPassive := make([]bool, conns)

	// Passive side: PA binds one proxied listener and accepts 16 peers,
	// echoing each peer's id back.
	addrCh := make(chan string, 1)
	n.Node("pa").SpawnDaemonOn("pa-bind", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		pl, err := NXProxyBind(env, cfg)
		if err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		addrCh <- pl.Addr()
		for {
			c, err := pl.Accept(env)
			if err != nil {
				return
			}
			cc := c
			env.Spawn("pa-echo", func(e transport.Env) {
				buf := make([]byte, 1)
				if _, err := io.ReadFull(transport.Stream{Env: e, Conn: cc}, buf); err == nil {
					_, _ = cc.Write(e, buf)
				}
			})
		}
	})
	// PB hosts a plain echo server for the active opens.
	n.Node("pb").SpawnDaemonOn("pb-echo", func(env transport.Env) {
		l, _ := env.Listen(5000)
		for {
			c, err := l.Accept(env)
			if err != nil {
				return
			}
			cc := c
			env.Spawn("pb-conn", func(e transport.Env) {
				buf := make([]byte, 1)
				if _, err := io.ReadFull(transport.Stream{Env: e, Conn: cc}, buf); err == nil {
					_, _ = cc.Write(e, buf)
				}
			})
		}
	})

	for i := 0; i < conns; i++ {
		i := i
		// Active: PA-side client through NXProxyConnect.
		n.Node("pa").SpawnOn(fmt.Sprintf("active-%d", i), func(env transport.Env) {
			env.Sleep(2 * time.Millisecond)
			c, err := NXProxyConnect(env, cfg, "pb:5000")
			if err != nil {
				t.Errorf("active %d: %v", i, err)
				return
			}
			id := []byte{byte(i)}
			_, _ = c.Write(env, id)
			buf := make([]byte, 1)
			if _, err := io.ReadFull(transport.Stream{Env: env, Conn: c}, buf); err == nil && buf[0] == byte(i) {
				okActive[i] = true
			}
			_ = c.Close(env)
		})
		// Passive: PB-side peer dialing the advertised address.
		n.Node("pb").SpawnOn(fmt.Sprintf("peer-%d", i), func(env transport.Env) {
			for len(addrCh) == 0 {
				env.Sleep(time.Millisecond)
			}
			addr := <-addrCh
			addrCh <- addr // put back for the other peers
			c, err := env.Dial(addr)
			if err != nil {
				t.Errorf("peer %d: %v", i, err)
				return
			}
			id := []byte{byte(100 + i)}
			_, _ = c.Write(env, id)
			buf := make([]byte, 1)
			if _, err := io.ReadFull(transport.Stream{Env: env, Conn: c}, buf); err == nil && buf[0] == byte(100+i) {
				okPassive[i] = true
			}
			_ = c.Close(env)
		})
	}

	k.RunUntil(30 * time.Second)
	k.Shutdown()
	for i := 0; i < conns; i++ {
		if !okActive[i] {
			t.Errorf("active conn %d failed", i)
		}
		if !okPassive[i] {
			t.Errorf("passive conn %d failed", i)
		}
	}
}
