package proxy

import (
	"errors"
	"io"
	"testing"
	"time"

	"nxcluster/internal/firewall"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

// buildFirewalledSite creates the paper's minimal scenario:
//
//	pa (site rwcp) -- gateway -- outer -- pb
//	inner (site rwcp) -- gateway
//
// The rwcp firewall denies incoming except nxport 7010 (outer -> inner) and
// allows all outgoing.
func buildFirewalledSite(k *sim.Kernel) *simnet.Network {
	n := simnet.New(k)
	n.AddHost("pa", simnet.HostConfig{Site: "rwcp"})
	n.AddHost("inner", simnet.HostConfig{Site: "rwcp"})
	n.AddRouter("gw", "rwcp")
	n.AddHost("outer", simnet.HostConfig{})
	n.AddHost("pb", simnet.HostConfig{})
	lan := simnet.LinkConfig{Latency: 200 * time.Microsecond, Bandwidth: 12 << 20}
	wan := simnet.LinkConfig{Latency: 2 * time.Millisecond, Bandwidth: 12 << 20}
	n.Connect("pa", "gw", lan)
	n.Connect("inner", "gw", lan)
	n.Connect("gw", "outer", lan)
	n.Connect("outer", "pb", wan)
	fw := firewall.New("rwcp")
	fw.AllowIncomingPort(7010, "nxport")
	n.SetFirewall("rwcp", fw)
	return n
}

// startSimProxy boots the proxy daemons on the outer/inner hosts.
func startSimProxy(n *simnet.Network, relay RelayConfig) Config {
	inner := NewInnerServer(relay)
	n.Node("inner").SpawnDaemonOn("inner-server", func(env transport.Env) {
		_ = inner.Serve(env, 7010, nil)
	})
	outer := NewOuterServer("inner:7010", relay)
	n.Node("outer").SpawnDaemonOn("outer-server", func(env transport.Env) {
		_ = outer.Serve(env, 7000, nil)
	})
	return Config{OuterServer: "outer:7000", InnerServer: "inner:7010"}
}

func TestSimDirectDialBlockedByFirewall(t *testing.T) {
	k := sim.New()
	n := buildFirewalledSite(k)
	var err error
	n.Node("pa").SpawnDaemonOn("pa-listen", func(env transport.Env) {
		l, _ := env.Listen(4000)
		_, _ = l.Accept(env)
	})
	n.Node("pb").SpawnOn("pb-dial", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		_, err = env.Dial("pa:4000")
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err, transport.ErrFirewallDenied) {
		t.Fatalf("direct inbound dial = %v, want ErrFirewallDenied", err)
	}
	k.Shutdown()
}

func TestSimPassiveChainBeyondFirewall(t *testing.T) {
	// Paper Figure 4: PA (inside) binds via the proxy; PB (outside) connects
	// to the advertised outer address; data flows PB <-> outer <-> inner <-> PA.
	k := sim.New()
	n := buildFirewalledSite(k)
	cfg := startSimProxy(n, RelayConfig{})

	var reply string
	var acceptedFrom string
	n.Node("pa").SpawnDaemonOn("pa", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		pl, err := NXProxyBind(env, cfg)
		if err != nil {
			t.Errorf("NXProxyBind: %v", err)
			return
		}
		// Advertise pl.Addr() out of band (the sim test reads it directly).
		advertised <- pl.Addr()
		c, err := NXProxyAccept(env, pl)
		if err != nil {
			t.Errorf("NXProxyAccept: %v", err)
			return
		}
		acceptedFrom = c.RemoteAddr()
		st := transport.Stream{Env: env, Conn: c}
		buf := make([]byte, 2)
		if _, err := io.ReadFull(st, buf); err != nil {
			t.Errorf("pa read: %v", err)
			return
		}
		_, _ = st.Write([]byte("pong-" + string(buf)))
	})
	n.Node("pb").SpawnOn("pb", func(env transport.Env) {
		addr := <-advertisedRecv(env)
		c, err := env.Dial(addr)
		if err != nil {
			t.Errorf("pb dial %s: %v", addr, err)
			return
		}
		st := transport.Stream{Env: env, Conn: c}
		_, _ = st.Write([]byte("42"))
		buf := make([]byte, 7)
		if _, err := io.ReadFull(st, buf); err != nil {
			t.Errorf("pb read: %v", err)
			return
		}
		reply = string(buf)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if reply != "pong-42" {
		t.Fatalf("reply = %q, want pong-42", reply)
	}
	if acceptedFrom == "" {
		t.Fatal("PA never accepted")
	}
}

// advertised passes the proxy public address between simulated processes in
// tests. A buffered Go channel is safe here because the kernel runs one
// process at a time.
var advertised = make(chan string, 1)

func advertisedRecv(env transport.Env) chan string {
	// Busy-wait in virtual time until the address is posted.
	for len(advertised) == 0 {
		env.Sleep(time.Millisecond)
	}
	return advertised
}

func TestSimActiveConnectBeyondFirewall(t *testing.T) {
	// Paper Figure 3: PA (inside) reaches PB (outside) via NXProxyConnect;
	// the relay chain is PA <-> outer <-> PB.
	k := sim.New()
	n := buildFirewalledSite(k)
	cfg := startSimProxy(n, RelayConfig{})

	var got string
	n.Node("pb").SpawnDaemonOn("pb", func(env transport.Env) {
		l, _ := env.Listen(5000)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		st := transport.Stream{Env: env, Conn: c}
		buf := make([]byte, 5)
		if _, err := io.ReadFull(st, buf); err == nil {
			got = string(buf)
		}
	})
	n.Node("pa").SpawnOn("pa", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := NXProxyConnect(env, cfg, "pb:5000")
		if err != nil {
			t.Errorf("NXProxyConnect: %v", err)
			return
		}
		_, _ = c.Write(env, []byte("hello"))
		env.Sleep(50 * time.Millisecond)
		_ = c.Close(env)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if got != "hello" {
		t.Fatalf("pb got %q, want hello", got)
	}
}

func TestSimIndirectLatencyExceedsDirect(t *testing.T) {
	// With a relay processing cost configured, the proxied round trip must
	// be several times the direct round trip — the paper's Table 2 effect.
	measure := func(relay RelayConfig, viaProxy bool) time.Duration {
		k := sim.New()
		n := buildFirewalledSite(k)
		// For the direct case the paper "temporarily changed the firewall
		// configuration"; do the same.
		if !viaProxy {
			n.Firewall("rwcp").AllowIncomingRange(1, 65535, "temporary: direct measurement")
		}
		cfg := startSimProxy(n, relay)
		var rtt time.Duration
		n.Node("pa").SpawnDaemonOn("pa", func(env transport.Env) {
			env.Sleep(time.Millisecond)
			var l transport.Listener
			var err error
			if viaProxy {
				l, err = NXProxyBind(env, cfg)
			} else {
				l, err = env.Listen(4000)
			}
			if err != nil {
				t.Errorf("bind: %v", err)
				return
			}
			advertised <- l.Addr()
			c, err := l.Accept(env)
			if err != nil {
				return
			}
			buf := make([]byte, 1)
			for {
				if _, err := c.Read(env, buf); err != nil {
					return
				}
				if _, err := c.Write(env, buf); err != nil {
					return
				}
			}
		})
		n.Node("pb").SpawnOn("pb", func(env transport.Env) {
			addr := <-advertisedRecv(env)
			c, err := env.Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			buf := make([]byte, 1)
			start := env.Now()
			const rounds = 4
			for i := 0; i < rounds; i++ {
				_, _ = c.Write(env, buf)
				if _, err := io.ReadFull(transport.Stream{Env: env, Conn: c}, buf); err != nil {
					t.Errorf("pingpong: %v", err)
					return
				}
			}
			rtt = (env.Now() - start) / rounds
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		k.Shutdown()
		return rtt
	}

	relay := RelayConfig{PerBuffer: 5 * time.Millisecond}
	direct := measure(relay, false)
	indirect := measure(relay, true)
	if direct <= 0 || indirect <= 0 {
		t.Fatalf("rtt direct=%v indirect=%v", direct, indirect)
	}
	if indirect < 3*direct {
		t.Fatalf("indirect RTT %v not >> direct %v", indirect, direct)
	}
}
