package proxy

import (
	"bytes"
	"testing"
)

// FuzzReadMsg hammers the proxy control-channel decoder with arbitrary
// frames. Malformed input must produce an error — never a panic, a hang, or
// a read past the frame — and anything that decodes must round-trip through
// writeMsg bit-exactly, so encoder and decoder agree on the wire format.
func FuzzReadMsg(f *testing.F) {
	// Well-formed frames from the encoder itself.
	for _, m := range []struct {
		typ    byte
		fields []string
	}{
		{msgConnect, []string{"etl-sun:6100"}},
		{msgBind, []string{"rwcp-sun:32768"}},
		{msgBindOK, []string{"rwcp-outer:40000", "7"}},
		{msgOK, nil},
		{msgError, []string{"proxy: no route"}},
		{msgRegister, []string{"rwcp-inner:7010"}},
		{msgPing, nil},
	} {
		var b bytes.Buffer
		if err := writeMsg(&b, m.typ, m.fields...); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	// Hand-built malformations: truncated header, truncated length,
	// truncated field, oversized field length, trailing garbage.
	f.Add([]byte{})
	f.Add([]byte{msgConnect})
	f.Add([]byte{msgConnect, 1})
	f.Add([]byte{msgConnect, 1, 0x00})
	f.Add([]byte{msgConnect, 1, 0x00, 0x05, 'a', 'b'})
	f.Add([]byte{msgConnect, 1, 0xff, 0xff})
	f.Add([]byte{msgConnect, 255, 0x00, 0x00})
	f.Add([]byte{msgOK, 0, 'x', 'y', 'z'})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		typ, fields, err := readMsg(r)
		if err != nil {
			return
		}
		// The decoder accepted the prefix it consumed; it must satisfy the
		// frame invariants and re-encode to exactly those consumed bytes.
		if len(fields) > 255 {
			t.Fatalf("decoded %d fields, wire maximum is 255", len(fields))
		}
		for _, fl := range fields {
			if len(fl) > maxFieldLen {
				t.Fatalf("decoded field of %d bytes, limit %d", len(fl), maxFieldLen)
			}
		}
		consumed := len(data) - r.Len()
		var out bytes.Buffer
		if err := writeMsg(&out, typ, fields...); err != nil {
			t.Fatalf("decoded message fails to re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("round trip mismatch:\n consumed %x\n re-encoded %x", data[:consumed], out.Bytes())
		}
	})
}
