package gridftp

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Data-channel block framing, modeled on GridFTP's MODE E extended blocks:
// every block is self-describing — [flags:1][offset:8][length:4][payload] —
// so blocks from parallel channels interleave freely and a receiver can
// account partial transfers by offset. A block with flagEOD and zero length
// ends one data channel.
const (
	blockHdrSize = 13
	// flagEOD marks the final (empty) block on a data channel.
	flagEOD = byte(0x01)
	// MaxBlock bounds a single block's payload; anything larger is a
	// protocol violation.
	MaxBlock = 1 << 20
)

// writeBlock emits one block.
func writeBlock(w io.Writer, flags byte, off int64, payload []byte) error {
	var hdr [blockHdrSize]byte
	hdr[0] = flags
	binary.BigEndian.PutUint64(hdr[1:9], uint64(off))
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// writeEOD ends a data channel.
func writeEOD(w io.Writer) error { return writeBlock(w, flagEOD, 0, nil) }

// parseBlockHeader validates a raw block header and returns its fields.
func parseBlockHeader(hdr [blockHdrSize]byte) (flags byte, off int64, length int, err error) {
	flags = hdr[0]
	off = int64(binary.BigEndian.Uint64(hdr[1:9]))
	length = int(binary.BigEndian.Uint32(hdr[9:13]))
	if off < 0 {
		return 0, 0, 0, fmt.Errorf("gridftp: negative block offset %d", off)
	}
	if length > MaxBlock {
		return 0, 0, 0, fmt.Errorf("gridftp: block length %d exceeds max %d", length, MaxBlock)
	}
	if off+int64(length) < 0 {
		return 0, 0, 0, fmt.Errorf("gridftp: block [%d,+%d) overflows", off, length)
	}
	return flags, off, length, nil
}

// readBlock reads one block from r. It returns io.EOF only on a clean
// boundary (no partial header).
func readBlock(r io.Reader, buf []byte) (flags byte, off int64, payload []byte, err error) {
	var hdr [blockHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("gridftp: truncated block header: %w", err)
		}
		return 0, 0, nil, err
	}
	flags, off, length, err := parseBlockHeader(hdr)
	if err != nil {
		return 0, 0, nil, err
	}
	if length == 0 {
		return flags, off, nil, nil
	}
	if cap(buf) >= length {
		payload = buf[:length]
	} else {
		payload = make([]byte, length)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, fmt.Errorf("gridftp: truncated block payload: %w", err)
	}
	return flags, off, payload, nil
}
