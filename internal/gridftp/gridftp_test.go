package gridftp

import (
	"bytes"
	"reflect"
	"testing"

	"nxcluster/internal/gass"
	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

func TestLedgerAddMergesRanges(t *testing.T) {
	var l Ledger
	l.Add(100, 50)
	l.Add(0, 50)
	l.Add(300, 10)
	if got := l.Ranges(); !reflect.DeepEqual(got, []Range{{0, 50}, {100, 50}, {300, 10}}) {
		t.Fatalf("disjoint ranges = %v", got)
	}
	l.Add(50, 50) // bridges the first gap exactly
	if got := l.Ranges(); !reflect.DeepEqual(got, []Range{{0, 150}, {300, 10}}) {
		t.Fatalf("after bridge = %v", got)
	}
	l.Add(140, 200) // overlaps both remaining ranges
	if got := l.Ranges(); !reflect.DeepEqual(got, []Range{{0, 340}}) {
		t.Fatalf("after overlap = %v", got)
	}
	if l.Bytes() != 340 {
		t.Fatalf("Bytes = %d", l.Bytes())
	}
	if !l.Complete(340) || l.Complete(341) {
		t.Fatal("Complete")
	}
	// Duplicate and degenerate adds are no-ops.
	l.Add(0, 340)
	l.Add(10, 0)
	l.Add(-5, 10)
	if got := l.Ranges(); !reflect.DeepEqual(got, []Range{{0, 340}}) {
		t.Fatalf("after no-ops = %v", got)
	}
}

func TestLedgerMissing(t *testing.T) {
	var l Ledger
	if got := l.Missing(100); !reflect.DeepEqual(got, []Range{{0, 100}}) {
		t.Fatalf("empty ledger Missing = %v", got)
	}
	l.Add(10, 20)
	l.Add(50, 25)
	want := []Range{{0, 10}, {30, 20}, {75, 25}}
	if got := l.Missing(100); !reflect.DeepEqual(got, want) {
		t.Fatalf("Missing = %v, want %v", got, want)
	}
	l.Add(0, 100)
	if got := l.Missing(100); got != nil {
		t.Fatalf("complete Missing = %v", got)
	}
}

func TestLedgerEncodeDecodeRoundTrip(t *testing.T) {
	var l Ledger
	l.Add(0, 64<<10)
	l.Add(200<<10, 64<<10)
	dec, err := DecodeLedger(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Ranges(), l.Ranges()) {
		t.Fatalf("round trip = %v, want %v", dec.Ranges(), l.Ranges())
	}
	for _, bad := range [][]byte{nil, {1, 2, 3}, {0, 0, 0, 1}, {0, 0, 0, 1, 0xff, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}} {
		if _, err := DecodeLedger(bad); err == nil {
			t.Errorf("DecodeLedger(%v) succeeded", bad)
		}
	}
}

func TestChopAndComplement(t *testing.T) {
	blocks := chopRanges([]Range{{0, 250}}, 100)
	if !reflect.DeepEqual(blocks, []Range{{0, 100}, {100, 100}, {200, 50}}) {
		t.Fatalf("chopRanges = %v", blocks)
	}
	comp := complementLedger(250, []Range{{0, 100}, {200, 50}})
	if got := comp.Ranges(); !reflect.DeepEqual(got, []Range{{100, 100}}) {
		t.Fatalf("complementLedger = %v", got)
	}
}

func TestParseAndBuildURL(t *testing.T) {
	hp, path, err := ParseURL("x-gridftp://etl-sun:7040/bulk/input.dat")
	if err != nil || hp != "etl-sun:7040" || path != "/bulk/input.dat" {
		t.Fatalf("ParseURL = %q, %q, %v", hp, path, err)
	}
	if URL("h:1", "a/b") != "x-gridftp://h:1/a/b" {
		t.Fatal("URL build")
	}
	for _, bad := range []string{"", "x-gass://h:1/p", "x-gridftp://hostonly"} {
		if _, _, err := ParseURL(bad); err == nil {
			t.Errorf("ParseURL(%q) succeeded", bad)
		}
	}
	if !IsURL("x-gridftp://h:1/p") || IsURL("x-gass://h:1/p") {
		t.Fatal("IsURL")
	}
}

// startServer runs a gridftp server over a real TCP loopback env with direct
// (non-proxied) dialing and returns its control address.
func startServer(t *testing.T) (*transport.TCPEnv, *Server, string) {
	t.Helper()
	env := transport.NewTCPEnv("localhost")
	srv := NewServer(gass.NewStore(), proxy.Dialer{})
	ready := make(chan string, 1)
	env.Spawn("gridftp", func(e transport.Env) {
		_ = srv.Serve(e, 0, func(addr string) { ready <- addr })
	})
	addr := <-ready
	t.Cleanup(func() { srv.Close(env) })
	return env, srv, addr
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

func TestPutGetRoundTrip(t *testing.T) {
	env, srv, addr := startServer(t)
	payload := pattern(300<<10 + 37) // several blocks plus a ragged tail
	url := URL(addr, "/bulk/data.bin")
	cl := &Client{Streams: 4, BlockSize: 64 << 10}
	stats, err := cl.Put(env, url, payload)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != int64(len(payload)) || stats.Resumes != 0 {
		t.Fatalf("put stats = %+v", stats)
	}
	stored, err := srv.Store.Get("/bulk/data.bin")
	if err != nil || !bytes.Equal(stored, payload) {
		t.Fatalf("server store holds %d bytes, %v", len(stored), err)
	}
	got, gstats, err := cl.Get(env, url)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %d bytes, %v", len(got), err)
	}
	if gstats.Bytes != int64(len(payload)) || gstats.Resumes != 0 {
		t.Fatalf("get stats = %+v", gstats)
	}
	if sz, err := cl.Size(env, url); err != nil || sz != int64(len(payload)) {
		t.Fatalf("Size = %d, %v", sz, err)
	}
}

func TestEmptyAndSingleByteFiles(t *testing.T) {
	env, _, addr := startServer(t)
	cl := &Client{Streams: 3}
	for _, n := range []int{0, 1} {
		url := URL(addr, "/tiny/"+string(rune('a'+n)))
		payload := pattern(n)
		if _, err := cl.Put(env, url, payload); err != nil {
			t.Fatalf("put %d bytes: %v", n, err)
		}
		got, _, err := cl.Get(env, url)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("get %d bytes = %v, %v", n, got, err)
		}
	}
}

func TestGetMissingFile(t *testing.T) {
	env, _, addr := startServer(t)
	cl := &Client{Retries: 1, RetryDelay: 1}
	if _, _, err := cl.Get(env, URL(addr, "/no/such")); err == nil {
		t.Fatal("Get of missing file succeeded")
	}
}

func TestPutTooLarge(t *testing.T) {
	env, _, addr := startServer(t)
	// Claim an oversize length on the control channel without allocating it:
	// drive putOnce directly with a doctored size via the public Put path
	// would allocate 64MB, so exercise the server check through opStor.
	cl := &Client{Retries: 1, RetryDelay: 1}
	_, err := cl.Put(env, URL(addr, "/huge"), make([]byte, gass.MaxFileSize+1))
	if err == nil {
		t.Fatal("oversize Put succeeded")
	}
}

// TestGetResumesFromLedger verifies the restart-marker path: an attempt that
// already holds the first half of the file asks the server for the rest, and
// the server streams only the missing blocks.
func TestGetResumesFromLedger(t *testing.T) {
	env, srv, addr := startServer(t)
	payload := pattern(256 << 10)
	srv.Store.Put("/bulk/r.bin", payload)
	cl := &Client{Streams: 2, BlockSize: 64 << 10}

	sink := newGetSink()
	sink.setSize(int64(len(payload)))
	half := int64(len(payload) / 2)
	if err := sink.land(0, payload[:half]); err != nil {
		t.Fatal(err)
	}
	before := sink.progress.Load()
	if err := cl.fetch(env, addr, "/bulk/r.bin", 2, &sink.ledger, sink); err != nil {
		t.Fatal(err)
	}
	if !sink.ledger.Complete(int64(len(payload))) || !bytes.Equal(sink.buf, payload) {
		t.Fatal("resume did not complete the file")
	}
	// Only the missing half moved on the wire.
	if moved := sink.progress.Load() - before; moved != half {
		t.Fatalf("resume moved %d bytes, want %d", moved, half)
	}
}

// TestPutResumesFromServerPartial verifies upload restart markers: a second
// attempt with the same upload ID learns the server's partial ledger and
// sends only the missing blocks.
func TestPutResumesFromServerPartial(t *testing.T) {
	env, srv, addr := startServer(t)
	payload := pattern(256 << 10)
	const uploadID = "test-upload-1"

	// Seed a server-side partial as an interrupted first attempt would have:
	// the first half present, the rest missing.
	half := int64(len(payload) / 2)
	part := &storPartial{path: "/bulk/u.bin", size: int64(len(payload)),
		buf: make([]byte, len(payload))}
	copy(part.buf, payload[:half])
	part.ledger.Add(0, half)
	srv.mu.Lock()
	srv.parts[uploadID] = part
	srv.mu.Unlock()

	cl := &Client{Streams: 2, BlockSize: 64 << 10}
	complete, err := cl.putOnce(env, addr, "/bulk/u.bin", payload, uploadID)
	if err != nil || !complete {
		t.Fatalf("resume putOnce = %v, %v", complete, err)
	}
	stored, err := srv.Store.Get("/bulk/u.bin")
	if err != nil || !bytes.Equal(stored, payload) {
		t.Fatalf("server store holds %d bytes, %v", len(stored), err)
	}
	// The committed upload retires the partial.
	srv.mu.Lock()
	_, live := srv.parts[uploadID]
	srv.mu.Unlock()
	if live {
		t.Fatal("partial survived a committed upload")
	}
}

func TestGetStriped(t *testing.T) {
	env1, srv1, addr1 := startServer(t)
	_, srv2, addr2 := startServer(t)
	payload := pattern(400<<10 + 11)
	srv1.Store.Put("/rep/f.bin", payload)
	srv2.Store.Put("/rep/f.bin", payload)
	cl := &Client{Streams: 4, BlockSize: 64 << 10}
	got, stats, err := cl.GetStriped(env1,
		[]string{URL(addr1, "/rep/f.bin"), URL(addr2, "/rep/f.bin")})
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("GetStriped = %d bytes, %v", len(got), err)
	}
	if stats.Bytes != int64(len(payload)) || stats.Resumes != 0 {
		t.Fatalf("striped stats = %+v", stats)
	}
}

func TestThirdPartyTransfer(t *testing.T) {
	env1, srv1, addr1 := startServer(t)
	_, srv2, addr2 := startServer(t)
	payload := pattern(128 << 10)
	srv1.Store.Put("/src/f.bin", payload)
	cl := &Client{Streams: 2}
	n, err := cl.ThirdParty(env1, URL(addr1, "/src/f.bin"), URL(addr2, "/dst/f.bin"))
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("ThirdParty = %d, %v", n, err)
	}
	stored, err := srv2.Store.Get("/dst/f.bin")
	if err != nil || !bytes.Equal(stored, payload) {
		t.Fatalf("dest store holds %d bytes, %v", len(stored), err)
	}
}

func TestFetchPublishHelpers(t *testing.T) {
	env, _, addr := startServer(t)
	url := URL(addr, "/h/x")
	payload := pattern(70 << 10)
	if err := Publish(env, url, payload); err != nil {
		t.Fatal(err)
	}
	got, err := Fetch(env, url)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Fetch = %d bytes, %v", len(got), err)
	}
	if _, err := Fetch(env, "x-gass://h:1/p"); err == nil {
		t.Fatal("Fetch accepted a gass URL")
	}
}
