// Package gridftp is a GridFTP-style bulk data-movement service: the
// parallel-stream, restartable counterpart to the simple GASS file service.
// It implements the techniques the GridFTP protocol introduced for wide-area
// transfers — N parallel data channels so aggregate throughput is not capped
// by one congestion-limited TCP stream, extended-block framing where every
// block carries its file offset, restart markers (a ledger of received
// ranges) so an interrupted transfer resumes instead of starting over,
// striped transfers pulling disjoint blocks from multiple replica hosts, and
// third-party transfers where a client steers data directly between two
// servers.
//
// Control and data channels are ordinary transport streams dialed through a
// proxy.Dialer, so transfers traverse the paper's Nexus Proxy firewall relay
// unchanged: a server behind the firewall listens via the proxy (passive
// mode), and every data channel becomes a relayed stream through the outer
// server. Combined with simnet's TCP-Reno flow model, the parallel-stream
// throughput recovery that motivated GridFTP is directly measurable (see
// bench.RunTransfer).
//
// Files are backed by the same gass.Store, and URLs use the
// x-gridftp://host:port/path scheme; gass.MaxFileSize bounds transfers.
package gridftp

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"nxcluster/internal/gass"
	"nxcluster/internal/nexus"
	"nxcluster/internal/obs"
	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

// Scheme prefixes gridftp URLs.
const Scheme = "x-gridftp://"

// DefaultBlockSize is the block granularity for transfers and restart
// accounting.
const DefaultBlockSize = 64 << 10

// DefaultStreams is the client's default parallel data-channel count.
const DefaultStreams = 4

// IsURL reports whether url carries the gridftp scheme.
func IsURL(url string) bool { return strings.HasPrefix(url, Scheme) }

// ParseURL splits an x-gridftp URL into transport address and path.
func ParseURL(url string) (hostport, path string, err error) {
	if !IsURL(url) {
		return "", "", fmt.Errorf("gridftp: URL %q: missing %s scheme", url, Scheme)
	}
	rest := url[len(Scheme):]
	i := strings.IndexByte(rest, '/')
	if i < 0 {
		return "", "", fmt.Errorf("gridftp: URL %q: missing path", url)
	}
	return rest[:i], rest[i:], nil
}

// URL builds an x-gridftp URL.
func URL(hostport, path string) string {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return Scheme + hostport + path
}

// Control-channel ops (nexus-framed).
const (
	opRetr = int32(1) // download: path, have-ledger, streams
	opStor = int32(2) // upload: path, size, streams, uploadID
	opSize = int32(3) // stat: path -> size
	opXfer = int32(4) // third-party: srcPath, destURL, streams
)

// retrXfer is one active download: an immutable snapshot plus the block list
// each data channel serves round-robin.
type retrXfer struct {
	data      []byte
	blocks    []Range
	streams   int
	remaining int // data channels yet to finish
}

// storPartial is the server-side state of an upload, keyed by the client's
// uploadID. It persists across interrupted attempts — it IS the restart
// marker the server returns on resume.
type storPartial struct {
	path   string
	size   int64
	buf    []byte
	ledger Ledger
}

// storXfer is one upload attempt in flight.
type storXfer struct {
	partial   *storPartial
	streams   int
	remaining int
	done      transport.Queue[bool] // true once the ledger completes
}

// Server serves a gass.Store over the gridftp protocol on two listeners: a
// control port and a data port (control port + 1 when listening directly).
type Server struct {
	// Store backs the served files.
	Store *gass.Store
	// Dialer provides firewall traversal: listeners bind through it
	// (passive mode via the Nexus Proxy when enabled) and third-party
	// transfers dial out through it.
	Dialer proxy.Dialer
	// BlockSize is the server-side block granularity for downloads
	// (default DefaultBlockSize).
	BlockSize int

	mu     sync.Mutex
	nextID int
	retrs  map[string]*retrXfer
	stors  map[string]*storXfer
	parts  map[string]*storPartial
	ctrlL  transport.Listener
	dataL  transport.Listener
}

// NewServer wraps a store.
func NewServer(store *gass.Store, dialer proxy.Dialer) *Server {
	return &Server{
		Store:  store,
		Dialer: dialer,
		retrs:  make(map[string]*retrXfer),
		stors:  make(map[string]*storXfer),
		parts:  make(map[string]*storPartial),
	}
}

func (s *Server) blockSize() int {
	if s.BlockSize > 0 {
		return s.BlockSize
	}
	return DefaultBlockSize
}

// Addr returns the control listener's public address once serving.
func (s *Server) Addr() string { return s.ctrlL.Addr() }

// Serve binds the control and data listeners and accepts until closed; it
// blocks its process. ready (optional) receives the control address.
func (s *Server) Serve(env transport.Env, port int, ready func(addr string)) error {
	ctrl, err := s.Dialer.Listen(env, port)
	if err != nil {
		return fmt.Errorf("gridftp: listen control: %w", err)
	}
	dataPort := 0
	if port != 0 {
		dataPort = port + 1
	}
	data, err := s.Dialer.Listen(env, dataPort)
	if err != nil {
		_ = ctrl.Close(env)
		return fmt.Errorf("gridftp: listen data: %w", err)
	}
	s.ctrlL, s.dataL = ctrl, data
	if ready != nil {
		ready(ctrl.Addr())
	}
	env.SpawnService("gridftp:data-accept", func(e transport.Env) {
		for {
			c, err := data.Accept(e)
			if err != nil {
				return
			}
			conn := c
			e.SpawnService("gridftp:data", func(e2 transport.Env) { s.handleData(e2, conn) })
		}
	})
	for {
		c, err := ctrl.Accept(env)
		if err != nil {
			return nil
		}
		conn := c
		env.SpawnService("gridftp:ctrl", func(e transport.Env) { s.handleCtrl(e, conn) })
	}
}

// Close shuts both listeners down.
func (s *Server) Close(env transport.Env) {
	if s.ctrlL != nil {
		_ = s.ctrlL.Close(env)
	}
	if s.dataL != nil {
		_ = s.dataL.Close(env)
	}
}

func putErr(resp *nexus.Buffer, err error) {
	resp.PutBool(false)
	resp.PutString(err.Error())
}

// handleCtrl serves one control connection: a single request frame, a reply
// frame, and — for uploads and third-party transfers — a final completion
// frame once the data movement ends.
func (s *Server) handleCtrl(env transport.Env, c transport.Conn) {
	defer c.Close(env)
	st := transport.Stream{Env: env, Conn: c}
	req, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return
	}
	op, err := req.GetInt32()
	if err != nil {
		return
	}
	resp := nexus.NewBuffer()
	switch op {
	case opRetr:
		s.handleRetr(env, st, req, resp)
	case opStor:
		s.handleStor(env, st, req, resp)
	case opSize:
		path, err := req.GetString()
		if err != nil {
			putErr(resp, err)
			break
		}
		data, err := s.Store.Get(path)
		if err != nil {
			putErr(resp, err)
			break
		}
		resp.PutBool(true)
		resp.PutInt64(int64(len(data)))
	case opXfer:
		s.handleXfer(env, st, req, resp)
		return // handleXfer writes its own frames
	default:
		putErr(resp, fmt.Errorf("gridftp: unknown op %d", op))
	}
	_ = nexus.WriteFrame(st, resp)
}

// handleRetr registers a download and replies with its transfer ID and data
// address; the client's data channels do the rest.
func (s *Server) handleRetr(env transport.Env, st transport.Stream, req, resp *nexus.Buffer) {
	path, e1 := req.GetString()
	haveBytes, e2 := req.GetBytes()
	streams, e3 := req.GetInt32()
	if e1 != nil || e2 != nil || e3 != nil || streams < 1 || streams > 64 {
		putErr(resp, fmt.Errorf("gridftp: malformed RETR"))
		return
	}
	have, err := DecodeLedger(haveBytes)
	if err != nil {
		putErr(resp, err)
		return
	}
	data, err := s.Store.Get(path)
	if err != nil {
		putErr(resp, err)
		return
	}
	// The block list is exactly what the client does not yet have: resume
	// restarts mid-file instead of resending delivered ranges.
	blocks := chopRanges(have.Missing(int64(len(data))), s.blockSize())
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("r%d", s.nextID)
	s.retrs[id] = &retrXfer{data: data, blocks: blocks, streams: int(streams), remaining: int(streams)}
	s.mu.Unlock()
	if o := obs.From(env); o != nil {
		o.Emit(env.Now(), "gridftp", "retr", env.Hostname(),
			obs.Str("path", path), obs.Int("bytes", int64(len(data))), obs.Int("streams", int64(streams)))
	}
	resp.PutBool(true)
	resp.PutInt64(int64(len(data)))
	resp.PutString(id)
	resp.PutString(s.dataL.Addr())
}

// handleStor registers an upload attempt, replying with the restart ledger
// of any prior attempt, then waits for the data channels and reports the
// final status on the control connection.
func (s *Server) handleStor(env transport.Env, st transport.Stream, req, resp *nexus.Buffer) {
	path, e1 := req.GetString()
	size, e2 := req.GetInt64()
	streams, e3 := req.GetInt32()
	uploadID, e4 := req.GetString()
	if e1 != nil || e2 != nil || e3 != nil || e4 != nil || size < 0 || streams < 1 || streams > 64 {
		putErr(resp, fmt.Errorf("gridftp: malformed STOR"))
		return
	}
	if size > gass.MaxFileSize {
		putErr(resp, fmt.Errorf("%w (%d bytes)", gass.ErrTooLarge, size))
		return
	}
	s.mu.Lock()
	part := s.parts[uploadID]
	if part == nil || part.size != size || part.path != path {
		part = &storPartial{path: path, size: size, buf: make([]byte, size)}
		s.parts[uploadID] = part
	}
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	x := &storXfer{partial: part, streams: int(streams), remaining: int(streams),
		done: transport.NewQueue[bool](env)}
	s.stors[id] = x
	ledgerBytes := part.ledger.Encode()
	s.mu.Unlock()
	if o := obs.From(env); o != nil {
		o.Emit(env.Now(), "gridftp", "stor", env.Hostname(),
			obs.Str("path", path), obs.Int("bytes", size), obs.Int("streams", int64(streams)))
	}
	resp.PutBool(true)
	resp.PutString(id)
	resp.PutString(s.dataL.Addr())
	resp.PutBytes(ledgerBytes)
	if err := nexus.WriteFrame(st, resp); err != nil {
		return
	}
	// Wait for the attempt to finish: every channel sends one event, plus a
	// completion event if the ledger filled. An interrupted client simply
	// abandons the control connection; the partial survives for resume.
	final := nexus.NewBuffer()
	committed := false
	for i := 0; i < x.streams; i++ {
		complete, ok := x.done.Get(env)
		if !ok {
			break
		}
		if complete {
			committed = true
			break
		}
	}
	s.mu.Lock()
	delete(s.stors, id)
	s.mu.Unlock()
	if committed {
		if err := s.Store.Put(path, part.partialDone()); err != nil {
			putErr(final, err)
		} else {
			s.mu.Lock()
			delete(s.parts, uploadID)
			s.mu.Unlock()
			final.PutBool(true)
			final.PutInt64(size)
		}
	} else {
		s.mu.Lock()
		got := part.ledger.Bytes()
		s.mu.Unlock()
		putErr(final, fmt.Errorf("gridftp: upload incomplete (%d/%d bytes)", got, size))
	}
	_ = nexus.WriteFrame(st, final)
}

// partialDone snapshots the completed upload buffer.
func (p *storPartial) partialDone() []byte { return p.buf }

// handleXfer performs a third-party transfer: this server pushes srcPath to
// a destination gridftp URL and reports the outcome on the control channel.
func (s *Server) handleXfer(env transport.Env, st transport.Stream, req, resp *nexus.Buffer) {
	srcPath, e1 := req.GetString()
	destURL, e2 := req.GetString()
	streams, e3 := req.GetInt32()
	if e1 != nil || e2 != nil || e3 != nil || streams < 1 || streams > 64 {
		putErr(resp, fmt.Errorf("gridftp: malformed XFER"))
		_ = nexus.WriteFrame(st, resp)
		return
	}
	data, err := s.Store.Get(srcPath)
	if err != nil {
		putErr(resp, err)
		_ = nexus.WriteFrame(st, resp)
		return
	}
	if o := obs.From(env); o != nil {
		o.Emit(env.Now(), "gridftp", "xfer", env.Hostname(),
			obs.Str("src", srcPath), obs.Str("dest", destURL), obs.Int("bytes", int64(len(data))))
	}
	sub := &Client{Dialer: s.Dialer, Streams: int(streams), BlockSize: s.blockSize()}
	if _, err := sub.Put(env, destURL, data); err != nil {
		putErr(resp, err)
	} else {
		resp.PutBool(true)
		resp.PutInt64(int64(len(data)))
	}
	_ = nexus.WriteFrame(st, resp)
}

// handleData serves one data channel. The channel handshake names the
// transfer and the channel index; downloads then stream this channel's
// round-robin share of the block list, uploads consume blocks into the
// partial buffer and ledger.
func (s *Server) handleData(env transport.Env, c transport.Conn) {
	defer c.Close(env)
	st := transport.Stream{Env: env, Conn: c}
	hs, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return
	}
	id, e1 := hs.GetString()
	idx, e2 := hs.GetInt32()
	if e1 != nil || e2 != nil || idx < 0 {
		return
	}
	s.mu.Lock()
	retr := s.retrs[id]
	stor := s.stors[id]
	s.mu.Unlock()
	switch {
	case retr != nil && int(idx) < retr.streams:
		s.serveRetrChannel(env, st, id, retr, int(idx))
	case stor != nil && int(idx) < stor.streams:
		s.serveStorChannel(env, st, stor)
	}
}

func (s *Server) serveRetrChannel(env transport.Env, st transport.Stream, id string, x *retrXfer, idx int) {
	defer func() {
		s.mu.Lock()
		x.remaining--
		if x.remaining == 0 {
			delete(s.retrs, id)
		}
		s.mu.Unlock()
	}()
	for i := idx; i < len(x.blocks); i += x.streams {
		r := x.blocks[i]
		if err := writeBlock(st, 0, r.Off, x.data[r.Off:r.End()]); err != nil {
			return
		}
	}
	_ = writeEOD(st)
}

func (s *Server) serveStorChannel(env transport.Env, st transport.Stream, x *storXfer) {
	p := x.partial
	var chanErr error
	for {
		flags, off, payload, err := readBlock(st, nil)
		if err != nil {
			chanErr = err
			break
		}
		if flags&flagEOD != 0 {
			break
		}
		if off+int64(len(payload)) > p.size {
			chanErr = fmt.Errorf("gridftp: block [%d,+%d) beyond size %d", off, len(payload), p.size)
			break
		}
		s.mu.Lock()
		copy(p.buf[off:], payload)
		p.ledger.Add(off, int64(len(payload)))
		s.mu.Unlock()
	}
	s.mu.Lock()
	x.remaining--
	complete := chanErr == nil && p.ledger.Complete(p.size)
	s.mu.Unlock()
	x.done.Put(env, complete)
}

// chopRanges splits ranges into blocks of at most blockSize bytes,
// preserving order.
func chopRanges(ranges []Range, blockSize int) []Range {
	var out []Range
	for _, r := range ranges {
		for off := r.Off; off < r.End(); off += int64(blockSize) {
			n := r.End() - off
			if n > int64(blockSize) {
				n = int64(blockSize)
			}
			out = append(out, Range{Off: off, Len: n})
		}
	}
	return out
}

// errIncomplete tags transfers that ran out of resume attempts.
var errIncomplete = errors.New("gridftp: transfer incomplete")
