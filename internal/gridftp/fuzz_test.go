package gridftp

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzReadBlock throws arbitrary bytes at the data-channel block reader: it
// must never panic, never return a block larger than MaxBlock, and any block
// it does accept must re-encode to the exact bytes it consumed.
func FuzzReadBlock(f *testing.F) {
	// Seed with well-formed frames, an EOD, and assorted corruptions.
	var good bytes.Buffer
	_ = writeBlock(&good, 0, 0, []byte("hello gridftp"))
	f.Add(good.Bytes())
	var eod bytes.Buffer
	_ = writeEOD(&eod)
	f.Add(eod.Bytes())
	var offset bytes.Buffer
	_ = writeBlock(&offset, 0, 1<<40, bytes.Repeat([]byte{0xaa}, 300))
	f.Add(offset.Bytes())
	huge := make([]byte, blockHdrSize)
	binary.BigEndian.PutUint32(huge[9:13], MaxBlock+1)
	f.Add(huge)
	neg := make([]byte, blockHdrSize)
	binary.BigEndian.PutUint64(neg[1:9], 1<<63)
	f.Add(neg)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})

	f.Fuzz(func(t *testing.T, in []byte) {
		r := bytes.NewReader(in)
		consumed := 0
		for {
			flags, off, payload, err := readBlock(r, nil)
			if err != nil {
				if consumed == 0 && len(in) == 0 && err != io.EOF {
					t.Fatalf("empty input: %v", err)
				}
				return
			}
			if len(payload) > MaxBlock {
				t.Fatalf("accepted %d-byte block beyond MaxBlock", len(payload))
			}
			if off < 0 || off+int64(len(payload)) < 0 {
				t.Fatalf("accepted overflowing block [%d,+%d)", off, len(payload))
			}
			// Round trip: the accepted block re-encodes to the bytes read.
			var re bytes.Buffer
			if err := writeBlock(&re, flags, off, payload); err != nil {
				t.Fatal(err)
			}
			end := consumed + re.Len()
			if end > len(in) || !bytes.Equal(re.Bytes(), in[consumed:end]) {
				t.Fatalf("re-encode mismatch at %d", consumed)
			}
			consumed = end
		}
	})
}

// FuzzDecodeLedger checks that hostile restart-marker encodings either fail
// cleanly or decode to a consistent ledger (sorted, disjoint, non-adjacent
// ranges whose Encode round-trips through DecodeLedger).
func FuzzDecodeLedger(f *testing.F) {
	var l Ledger
	l.Add(0, 64<<10)
	l.Add(200<<10, 32<<10)
	f.Add(l.Encode())
	f.Add((&Ledger{}).Encode())
	f.Add([]byte{0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 9})

	f.Fuzz(func(t *testing.T, in []byte) {
		dec, err := DecodeLedger(in)
		if err != nil {
			return
		}
		ranges := dec.Ranges()
		for i, r := range ranges {
			if r.Off < 0 || r.Len <= 0 || r.Off+r.Len < 0 {
				t.Fatalf("decoded invalid range %v", r)
			}
			if i > 0 && ranges[i-1].End() >= r.Off {
				t.Fatalf("ranges not disjoint/sorted: %v", ranges)
			}
		}
		re, err := DecodeLedger(dec.Encode())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !bytes.Equal(re.Encode(), dec.Encode()) {
			t.Fatal("encode not stable")
		}
	})
}
