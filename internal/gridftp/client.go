package gridftp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nxcluster/internal/nexus"
	"nxcluster/internal/obs"
	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

// TransferStats reports one completed transfer.
type TransferStats struct {
	// Bytes is the file size moved.
	Bytes int64
	// Elapsed is the virtual wall time from first control dial to completion.
	Elapsed time.Duration
	// Streams is the parallel data-channel count used.
	Streams int
	// Resumes counts restart-marker resumes after interruptions (0 for an
	// undisturbed transfer).
	Resumes int
}

// Goodput returns application bytes per second over the whole transfer.
func (s *TransferStats) Goodput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Bytes) / s.Elapsed.Seconds()
}

// Client moves files against gridftp servers over parallel data channels.
// The zero value works (direct dialing, DefaultStreams channels); a Dialer
// with proxy config routes every channel through the Nexus Proxy relay.
type Client struct {
	// Dialer provides firewall traversal for control and data channels.
	Dialer proxy.Dialer
	// Streams is the parallel data-channel count (default DefaultStreams).
	Streams int
	// BlockSize is the requested block granularity (default
	// DefaultBlockSize); the server's own block size governs downloads.
	BlockSize int
	// ProgressTimeout, when > 0, arms a watchdog that aborts an attempt's
	// channels after that long without a single byte of progress (e.g.
	// during a WAN outage) so the restart-marker resume logic can take over.
	ProgressTimeout time.Duration
	// Retries bounds resume attempts after an interrupted attempt
	// (default 4).
	Retries int
	// RetryDelay spaces resume attempts (linear backoff, default 50ms).
	RetryDelay time.Duration

	mu         sync.Mutex
	nextUpload int
}

func (c *Client) streams() int {
	if c.Streams > 0 {
		return c.Streams
	}
	return DefaultStreams
}

func (c *Client) blockSize() int {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return DefaultBlockSize
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 4
}

func (c *Client) retryDelay() time.Duration {
	if c.RetryDelay > 0 {
		return c.RetryDelay
	}
	return 50 * time.Millisecond
}

// getSink is the shared receive state of a download: the assembly buffer,
// the restart-marker ledger, and a progress counter the watchdog samples.
// Parallel channels (and striped sources) all land blocks here.
type getSink struct {
	mu       sync.Mutex
	size     int64 // -1 until the first server reply
	buf      []byte
	ledger   Ledger
	progress atomic.Int64
}

func newGetSink() *getSink { return &getSink{size: -1} }

func (g *getSink) setSize(n int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.size < 0 {
		g.size = n
		g.buf = make([]byte, n)
	}
}

func (g *getSink) land(off int64, payload []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if off+int64(len(payload)) > g.size {
		return fmt.Errorf("gridftp: block [%d,+%d) beyond size %d", off, len(payload), g.size)
	}
	copy(g.buf[off:], payload)
	g.ledger.Add(off, int64(len(payload)))
	g.progress.Add(int64(len(payload)))
	return nil
}

// Get downloads url over parallel data channels, resuming from restart
// markers after interruptions.
func (c *Client) Get(env transport.Env, url string) ([]byte, *TransferStats, error) {
	hostport, path, err := ParseURL(url)
	if err != nil {
		return nil, nil, err
	}
	start := env.Now()
	o := obs.From(env)
	var span obs.TraceContext
	if o != nil {
		span = o.BeginChild(start, obs.CtxOf(env), "gridftp", "get", env.Hostname(), obs.Str("url", url))
	}
	sink := newGetSink()
	stats := &TransferStats{Streams: c.streams()}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			stats.Resumes++
			env.Sleep(c.retryDelay() * time.Duration(attempt))
		}
		lastErr = c.fetch(env, hostport, path, c.streams(), &sink.ledger, sink)
		if sink.size >= 0 && sink.ledger.Complete(sink.size) {
			stats.Bytes = sink.size
			stats.Elapsed = env.Now() - start
			if o != nil {
				o.EndSpan(env.Now(), span, "gridftp", "get", env.Hostname(),
					obs.Int("bytes", stats.Bytes), obs.Int("resumes", int64(stats.Resumes)))
				o.Metrics().Counter("gridftp." + env.Hostname() + ".bytes_in").Add(stats.Bytes)
			}
			return sink.buf, stats, nil
		}
		if attempt >= c.retries() {
			break
		}
	}
	if lastErr == nil {
		lastErr = errIncomplete
	}
	err = fmt.Errorf("gridftp: get %s after %d resumes: %w", url, stats.Resumes, lastErr)
	if o != nil {
		o.EndSpan(env.Now(), span, "gridftp", "get", env.Hostname(), obs.Str("err", err.Error()))
	}
	return nil, stats, err
}

// fetch runs one download attempt against one server: announce the have
// ledger, then pull the server's block list over streams parallel channels
// into sink. An error (or silent stall tripping the watchdog) leaves the
// ledger holding whatever landed.
func (c *Client) fetch(env transport.Env, hostport, path string, streams int, have *Ledger, sink *getSink) error {
	ctrl, err := c.Dialer.Dial(env, hostport)
	if err != nil {
		return fmt.Errorf("gridftp: dial %s: %w", hostport, err)
	}
	defer ctrl.Close(env)
	st := transport.Stream{Env: env, Conn: ctrl}
	req := nexus.NewBuffer()
	req.PutInt32(opRetr)
	req.PutString(path)
	sink.mu.Lock()
	req.PutBytes(have.Encode())
	sink.mu.Unlock()
	req.PutInt32(int32(streams))
	if err := nexus.WriteFrame(st, req); err != nil {
		return err
	}
	resp, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return err
	}
	if err := checkStatus(resp); err != nil {
		return err
	}
	size, e1 := resp.GetInt64()
	id, e2 := resp.GetString()
	dataAddr, e3 := resp.GetString()
	if e1 != nil || e2 != nil || e3 != nil {
		return fmt.Errorf("gridftp: malformed RETR reply")
	}
	sink.setSize(size)

	w := c.armWatchdog(env, &sink.progress)
	defer w.disarm()
	done := transport.NewQueue[error](env)
	for i := 0; i < streams; i++ {
		idx := i
		env.Spawn("gridftp:get-chan", func(e transport.Env) {
			done.Put(e, c.runGetChannel(e, w, dataAddr, id, idx, sink))
		})
	}
	var chanErr error
	for i := 0; i < streams; i++ {
		if err, _ := done.Get(env); err != nil && chanErr == nil {
			chanErr = err
		}
	}
	return chanErr
}

// runGetChannel reads one data channel's blocks into the sink.
func (c *Client) runGetChannel(env transport.Env, w *watchdog, dataAddr, id string, idx int, sink *getSink) error {
	conn, err := c.Dialer.Dial(env, dataAddr)
	if err != nil {
		return err
	}
	defer conn.Close(env)
	w.track(conn)
	st := transport.Stream{Env: env, Conn: conn}
	hs := nexus.NewBuffer()
	hs.PutString(id)
	hs.PutInt32(int32(idx))
	if err := nexus.WriteFrame(st, hs); err != nil {
		return err
	}
	for {
		flags, off, payload, err := readBlock(st, nil)
		if err != nil {
			return err
		}
		if flags&flagEOD != 0 {
			return nil
		}
		if err := sink.land(off, payload); err != nil {
			return err
		}
	}
}

// Put uploads data to url over parallel data channels, resuming from the
// server's restart ledger after interruptions.
func (c *Client) Put(env transport.Env, url string, data []byte) (*TransferStats, error) {
	hostport, path, err := ParseURL(url)
	if err != nil {
		return nil, err
	}
	start := env.Now()
	o := obs.From(env)
	var span obs.TraceContext
	if o != nil {
		span = o.BeginChild(start, obs.CtxOf(env), "gridftp", "put", env.Hostname(),
			obs.Str("url", url), obs.Int("bytes", int64(len(data))))
	}
	c.mu.Lock()
	c.nextUpload++
	uploadID := fmt.Sprintf("%s:%s#%d", env.Hostname(), path, c.nextUpload)
	c.mu.Unlock()
	stats := &TransferStats{Streams: c.streams()}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			stats.Resumes++
			env.Sleep(c.retryDelay() * time.Duration(attempt))
		}
		var complete bool
		complete, lastErr = c.putOnce(env, hostport, path, data, uploadID)
		if complete {
			stats.Bytes = int64(len(data))
			stats.Elapsed = env.Now() - start
			if o != nil {
				o.EndSpan(env.Now(), span, "gridftp", "put", env.Hostname(),
					obs.Int("bytes", stats.Bytes), obs.Int("resumes", int64(stats.Resumes)))
				o.Metrics().Counter("gridftp." + env.Hostname() + ".bytes_out").Add(stats.Bytes)
			}
			return stats, nil
		}
		if attempt >= c.retries() {
			break
		}
	}
	if lastErr == nil {
		lastErr = errIncomplete
	}
	err = fmt.Errorf("gridftp: put %s after %d resumes: %w", url, stats.Resumes, lastErr)
	if o != nil {
		o.EndSpan(env.Now(), span, "gridftp", "put", env.Hostname(), obs.Str("err", err.Error()))
	}
	return stats, err
}

// putOnce runs one upload attempt: learn the server's restart ledger, send
// the missing blocks over parallel channels, then wait for the server's
// final verdict on the control channel.
func (c *Client) putOnce(env transport.Env, hostport, path string, data []byte, uploadID string) (bool, error) {
	ctrl, err := c.Dialer.Dial(env, hostport)
	if err != nil {
		return false, fmt.Errorf("gridftp: dial %s: %w", hostport, err)
	}
	defer ctrl.Close(env)
	st := transport.Stream{Env: env, Conn: ctrl}
	req := nexus.NewBuffer()
	req.PutInt32(opStor)
	req.PutString(path)
	req.PutInt64(int64(len(data)))
	req.PutInt32(int32(c.streams()))
	req.PutString(uploadID)
	if err := nexus.WriteFrame(st, req); err != nil {
		return false, err
	}
	resp, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return false, err
	}
	if err := checkStatus(resp); err != nil {
		return false, err
	}
	id, e1 := resp.GetString()
	dataAddr, e2 := resp.GetString()
	ledgerBytes, e3 := resp.GetBytes()
	if e1 != nil || e2 != nil || e3 != nil {
		return false, fmt.Errorf("gridftp: malformed STOR reply")
	}
	serverHas, err := DecodeLedger(ledgerBytes)
	if err != nil {
		return false, err
	}
	blocks := chopRanges(serverHas.Missing(int64(len(data))), c.blockSize())

	var progress atomic.Int64
	w := c.armWatchdog(env, &progress)
	defer w.disarm()
	w.track(ctrl) // a stalled final-frame read must also trip the watchdog
	streams := c.streams()
	done := transport.NewQueue[error](env)
	for i := 0; i < streams; i++ {
		idx := i
		env.Spawn("gridftp:put-chan", func(e transport.Env) {
			done.Put(e, c.runPutChannel(e, w, dataAddr, id, idx, streams, blocks, data, &progress))
		})
	}
	var chanErr error
	for i := 0; i < streams; i++ {
		if err, _ := done.Get(env); err != nil && chanErr == nil {
			chanErr = err
		}
	}
	final, err := nexus.ReadFrame(st, 0)
	if err != nil {
		if chanErr != nil {
			return false, chanErr
		}
		return false, err
	}
	if err := checkStatus(final); err != nil {
		return false, err
	}
	return true, nil
}

// runPutChannel writes one channel's round-robin share of the block list.
func (c *Client) runPutChannel(env transport.Env, w *watchdog, dataAddr, id string, idx, streams int, blocks []Range, data []byte, progress *atomic.Int64) error {
	conn, err := c.Dialer.Dial(env, dataAddr)
	if err != nil {
		return err
	}
	defer conn.Close(env)
	w.track(conn)
	st := transport.Stream{Env: env, Conn: conn}
	hs := nexus.NewBuffer()
	hs.PutString(id)
	hs.PutInt32(int32(idx))
	if err := nexus.WriteFrame(st, hs); err != nil {
		return err
	}
	for i := idx; i < len(blocks); i += streams {
		r := blocks[i]
		if err := writeBlock(st, 0, r.Off, data[r.Off:r.End()]); err != nil {
			return err
		}
		progress.Add(r.Len)
	}
	return writeEOD(st)
}

// GetStriped downloads one file striped across multiple replica servers:
// source j serves the blocks with index ≡ j (mod len(urls)), all landing in
// one shared sink. If any stripe is interrupted, the remainder is fetched
// from the first source via the normal resume path.
func (c *Client) GetStriped(env transport.Env, urls []string) ([]byte, *TransferStats, error) {
	if len(urls) == 0 {
		return nil, nil, fmt.Errorf("gridftp: striped get needs at least one URL")
	}
	if len(urls) == 1 {
		return c.Get(env, urls[0])
	}
	type source struct{ hostport, path string }
	srcs := make([]source, len(urls))
	for i, u := range urls {
		hp, p, err := ParseURL(u)
		if err != nil {
			return nil, nil, err
		}
		srcs[i] = source{hp, p}
	}
	start := env.Now()
	size, err := c.Size(env, urls[0])
	if err != nil {
		return nil, nil, err
	}
	o := obs.From(env)
	var span obs.TraceContext
	if o != nil {
		span = o.BeginChild(start, obs.CtxOf(env), "gridftp", "get-striped", env.Hostname(),
			obs.Int("bytes", size), obs.Int("sources", int64(len(urls))))
	}
	sink := newGetSink()
	sink.setSize(size)
	// Assign whole blocks round-robin across sources; each source is told
	// the complement of its stripe as "already held", so it streams exactly
	// its own blocks.
	all := chopRanges([]Range{{Off: 0, Len: size}}, c.blockSize())
	perStripe := c.streams() / len(urls)
	if perStripe < 1 {
		perStripe = 1
	}
	done := transport.NewQueue[error](env)
	for j := range srcs {
		var stripe []Range
		for i := j; i < len(all); i += len(srcs) {
			stripe = append(stripe, all[i])
		}
		have := complementLedger(size, stripe)
		src := srcs[j]
		env.Spawn("gridftp:stripe", func(e transport.Env) {
			done.Put(e, c.fetch(e, src.hostport, src.path, perStripe, have, sink))
		})
	}
	var stripeErr error
	for range srcs {
		if err, _ := done.Get(env); err != nil && stripeErr == nil {
			stripeErr = err
		}
	}
	stats := &TransferStats{Streams: perStripe * len(srcs)}
	if !sink.ledger.Complete(size) {
		// Fall back to the first source for whatever the stripes missed.
		for attempt := 0; attempt <= c.retries() && !sink.ledger.Complete(size); attempt++ {
			stats.Resumes++
			if err := c.fetch(env, srcs[0].hostport, srcs[0].path, c.streams(), &sink.ledger, sink); err != nil {
				stripeErr = err
			}
		}
	}
	if !sink.ledger.Complete(size) {
		if stripeErr == nil {
			stripeErr = errIncomplete
		}
		err := fmt.Errorf("gridftp: striped get: %w", stripeErr)
		if o != nil {
			o.EndSpan(env.Now(), span, "gridftp", "get-striped", env.Hostname(), obs.Str("err", err.Error()))
		}
		return nil, stats, err
	}
	stats.Bytes = size
	stats.Elapsed = env.Now() - start
	if o != nil {
		o.EndSpan(env.Now(), span, "gridftp", "get-striped", env.Hostname(),
			obs.Int("bytes", size), obs.Int("resumes", int64(stats.Resumes)))
	}
	return sink.buf, stats, nil
}

// complementLedger builds the ledger covering [0, size) minus the given
// sorted, disjoint ranges.
func complementLedger(size int64, ranges []Range) *Ledger {
	l := &Ledger{}
	var pos int64
	for _, r := range ranges {
		if r.Off > pos {
			l.Add(pos, r.Off-pos)
		}
		if r.End() > pos {
			pos = r.End()
		}
	}
	if pos < size {
		l.Add(pos, size-pos)
	}
	return l
}

// Size asks a server for a file's size.
func (c *Client) Size(env transport.Env, url string) (int64, error) {
	hostport, path, err := ParseURL(url)
	if err != nil {
		return 0, err
	}
	ctrl, err := c.Dialer.Dial(env, hostport)
	if err != nil {
		return 0, fmt.Errorf("gridftp: dial %s: %w", hostport, err)
	}
	defer ctrl.Close(env)
	st := transport.Stream{Env: env, Conn: ctrl}
	req := nexus.NewBuffer()
	req.PutInt32(opSize)
	req.PutString(path)
	if err := nexus.WriteFrame(st, req); err != nil {
		return 0, err
	}
	resp, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return 0, err
	}
	if err := checkStatus(resp); err != nil {
		return 0, err
	}
	return resp.GetInt64()
}

// ThirdParty asks the server holding srcURL to push the file directly to
// destURL (server-to-server; the data never touches this client). It
// returns the bytes moved.
func (c *Client) ThirdParty(env transport.Env, srcURL, destURL string) (int64, error) {
	hostport, path, err := ParseURL(srcURL)
	if err != nil {
		return 0, err
	}
	if _, _, err := ParseURL(destURL); err != nil {
		return 0, err
	}
	ctrl, err := c.Dialer.Dial(env, hostport)
	if err != nil {
		return 0, fmt.Errorf("gridftp: dial %s: %w", hostport, err)
	}
	defer ctrl.Close(env)
	st := transport.Stream{Env: env, Conn: ctrl}
	req := nexus.NewBuffer()
	req.PutInt32(opXfer)
	req.PutString(path)
	req.PutString(destURL)
	req.PutInt32(int32(c.streams()))
	if err := nexus.WriteFrame(st, req); err != nil {
		return 0, err
	}
	resp, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return 0, err
	}
	if err := checkStatus(resp); err != nil {
		return 0, err
	}
	return resp.GetInt64()
}

// checkStatus consumes a reply frame's status bool, converting a server
// error message into an error.
func checkStatus(resp *nexus.Buffer) error {
	ok, err := resp.GetBool()
	if err != nil {
		return err
	}
	if !ok {
		msg, err := resp.GetString()
		if err != nil {
			return fmt.Errorf("gridftp: malformed error reply")
		}
		return fmt.Errorf("gridftp: server: %s", msg)
	}
	return nil
}

// watchdog aborts an attempt's connections after ProgressTimeout without
// any byte progress — the recovery trigger for transfers stalled by a WAN
// outage (simnet links stall rather than drop, so without the watchdog a
// dead attempt would wait out the whole outage instead of resuming).
type watchdog struct {
	env      transport.Env
	timeout  time.Duration
	progress *atomic.Int64
	mu       sync.Mutex
	conns    []transport.Conn
	stopped  bool
}

// armWatchdog starts the watchdog process if ProgressTimeout is set;
// otherwise returns an inert watchdog.
func (c *Client) armWatchdog(env transport.Env, progress *atomic.Int64) *watchdog {
	w := &watchdog{env: env, timeout: c.ProgressTimeout, progress: progress}
	if w.timeout <= 0 {
		return w
	}
	env.Spawn("gridftp:watchdog", func(e transport.Env) {
		last := w.progress.Load()
		for {
			e.Sleep(w.timeout)
			w.mu.Lock()
			if w.stopped {
				w.mu.Unlock()
				return
			}
			cur := w.progress.Load()
			if cur == last {
				conns := append([]transport.Conn(nil), w.conns...)
				w.stopped = true
				w.mu.Unlock()
				if o := obs.From(e); o != nil {
					o.EmitCtx(e.Now(), obs.CtxOf(e), "gridftp", "stall-abort", e.Hostname(),
						obs.Int("conns", int64(len(conns))))
				}
				for _, conn := range conns {
					transport.Abort(e, conn)
				}
				return
			}
			last = cur
			w.mu.Unlock()
		}
	})
	return w
}

// track registers a connection for stall teardown.
func (w *watchdog) track(c transport.Conn) {
	if w.timeout <= 0 {
		return
	}
	w.mu.Lock()
	w.conns = append(w.conns, c)
	w.mu.Unlock()
}

// disarm stops the watchdog.
func (w *watchdog) disarm() {
	if w.timeout <= 0 {
		return
	}
	w.mu.Lock()
	w.stopped = true
	w.conns = nil
	w.mu.Unlock()
}

// Fetch retrieves a gridftp URL with default settings (the staging-path
// counterpart of gass.Fetch).
func Fetch(env transport.Env, url string) ([]byte, error) {
	data, _, err := (&Client{}).Get(env, url)
	return data, err
}

// Publish stores data at a gridftp URL with default settings.
func Publish(env transport.Env, url string, data []byte) error {
	_, err := (&Client{}).Put(env, url, data)
	return err
}
