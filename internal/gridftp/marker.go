package gridftp

import (
	"encoding/binary"
	"fmt"
)

// Range is a half-open byte interval [Off, Off+Len) of a file.
type Range struct {
	Off int64
	Len int64
}

// End returns the exclusive upper bound of the range.
func (r Range) End() int64 { return r.Off + r.Len }

// Ledger is a restart-marker ledger: the coalesced, sorted set of byte
// ranges of a file known to have arrived. GridFTP's extended block mode
// tags every block with its offset, so a receiver can account arbitrary
// arrival orders; the ledger is what survives an interrupted transfer and
// what a resume request sends back to the server ("send me everything I
// don't have yet").
type Ledger struct {
	ranges []Range // sorted by Off, non-overlapping, non-adjacent
}

// Add records the arrival of [off, off+n), merging with existing ranges.
func (l *Ledger) Add(off, n int64) {
	if n <= 0 || off < 0 {
		return
	}
	end := off + n
	// Find the first range that could touch [off, end): the leftmost range
	// with End() >= off.
	i := 0
	for i < len(l.ranges) && l.ranges[i].End() < off {
		i++
	}
	j := i
	for j < len(l.ranges) && l.ranges[j].Off <= end {
		if l.ranges[j].Off < off {
			off = l.ranges[j].Off
		}
		if l.ranges[j].End() > end {
			end = l.ranges[j].End()
		}
		j++
	}
	merged := Range{Off: off, Len: end - off}
	l.ranges = append(l.ranges[:i], append([]Range{merged}, l.ranges[j:]...)...)
}

// Ranges returns the covered ranges, sorted by offset.
func (l *Ledger) Ranges() []Range { return append([]Range(nil), l.ranges...) }

// Bytes reports the total number of covered bytes.
func (l *Ledger) Bytes() int64 {
	var total int64
	for _, r := range l.ranges {
		total += r.Len
	}
	return total
}

// Complete reports whether [0, total) is fully covered.
func (l *Ledger) Complete(total int64) bool {
	if total == 0 {
		return true
	}
	return len(l.ranges) == 1 && l.ranges[0].Off == 0 && l.ranges[0].Len >= total
}

// Missing returns the gaps in [0, total) not yet covered, sorted by offset.
func (l *Ledger) Missing(total int64) []Range {
	var out []Range
	var pos int64
	for _, r := range l.ranges {
		if r.Off >= total {
			break
		}
		if r.Off > pos {
			out = append(out, Range{Off: pos, Len: r.Off - pos})
		}
		if r.End() > pos {
			pos = r.End()
		}
	}
	if pos < total {
		out = append(out, Range{Off: pos, Len: total - pos})
	}
	return out
}

// Encode serializes the ledger as restart-marker records:
// [count:4] then count × [off:8][len:8], big-endian.
func (l *Ledger) Encode() []byte {
	buf := make([]byte, 4+16*len(l.ranges))
	binary.BigEndian.PutUint32(buf, uint32(len(l.ranges)))
	for i, r := range l.ranges {
		binary.BigEndian.PutUint64(buf[4+16*i:], uint64(r.Off))
		binary.BigEndian.PutUint64(buf[12+16*i:], uint64(r.Len))
	}
	return buf
}

// DecodeLedger parses restart-marker records. Records are replayed through
// Add, so a hostile or corrupt encoding can produce at worst a valid (if
// useless) ledger, never an inconsistent one.
func DecodeLedger(b []byte) (*Ledger, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("gridftp: ledger too short (%d bytes)", len(b))
	}
	count := int(binary.BigEndian.Uint32(b))
	if len(b) != 4+16*count {
		return nil, fmt.Errorf("gridftp: ledger length %d does not match %d records", len(b), count)
	}
	l := &Ledger{}
	for i := 0; i < count; i++ {
		off := int64(binary.BigEndian.Uint64(b[4+16*i:]))
		n := int64(binary.BigEndian.Uint64(b[12+16*i:]))
		if off < 0 || n < 0 || off+n < 0 {
			return nil, fmt.Errorf("gridftp: ledger record %d out of range (off=%d len=%d)", i, off, n)
		}
		l.Add(off, n)
	}
	return l, nil
}
