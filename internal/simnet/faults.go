package simnet

import (
	"fmt"
	"sort"
	"time"
)

// SetLinkDown takes the duplex link between a and b out of service: packets
// already serialized onto the wire still arrive; everything else — data
// segments, connection attempts — stalls until the link returns, which is
// what endpoints of reliable streams observe across a real link flap (TCP
// retransmissions cover the loss; only the delay shows). It reports whether
// such a link exists.
func (n *Network) SetLinkDown(a, b string) bool {
	return n.setLink(a, b, true)
}

// SetLinkUp restores a downed link.
func (n *Network) SetLinkUp(a, b string) bool {
	return n.setLink(a, b, false)
}

func (n *Network) setLink(a, b string, down bool) bool {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return false
	}
	found := false
	for _, ld := range na.links {
		if ld.to == nb {
			ld.down = down
			ld.rev.down = down
			found = true
		}
	}
	return found
}

// LinkDown reports whether the a->b link is out of service.
func (n *Network) LinkDown(a, b string) bool {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return false
	}
	for _, ld := range na.links {
		if ld.to == nb {
			return ld.down
		}
	}
	return false
}

// LinkStats reports one directed link's traffic counters.
type LinkStats struct {
	// From and To name the endpoints.
	From, To string
	// Bytes carried since the simulation started.
	Bytes int64
	// Stalled counts bytes that had to wait out a link outage.
	Stalled int64
	// Busy is the cumulative serialization time.
	Busy time.Duration
}

// Stats returns per-directed-link traffic counters, sorted for determinism.
func (n *Network) Stats() []LinkStats {
	var out []LinkStats
	for _, node := range n.nodes {
		for _, ld := range node.links {
			out = append(out, LinkStats{
				From:    ld.from.name,
				To:      ld.to.name,
				Bytes:   ld.bytes,
				Stalled: ld.stalled,
				Busy:    ld.busy,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Utilization reports the a->b link's busy fraction of the elapsed virtual
// time (0 when no time has passed).
func (n *Network) Utilization(a, b string) (float64, error) {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return 0, fmt.Errorf("simnet: unknown node in %q -> %q", a, b)
	}
	for _, ld := range na.links {
		if ld.to == nb {
			now := n.K.Now()
			if now == 0 {
				return 0, nil
			}
			return float64(ld.busy) / float64(now), nil
		}
	}
	return 0, fmt.Errorf("simnet: no link %q -> %q", a, b)
}
