package simnet

import (
	"fmt"
	"sort"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

// trackProc registers a process as running on the host so CrashHost can take
// it down; untrackProc runs from the process's own deferred cleanup.
func (nd *Node) trackProc(p *sim.Proc) {
	if nd.procs != nil {
		nd.procs[p.PID()] = p
	}
}

func (nd *Node) untrackProc(p *sim.Proc) {
	if nd.procs != nil {
		delete(nd.procs, p.PID())
	}
}

// trackConn registers an open connection endpoint on its host.
func (nd *Node) trackConn(c *conn) {
	if nd.conns != nil {
		nd.conns[c] = struct{}{}
	}
}

func (nd *Node) untrackConn(c *conn) {
	if nd.conns != nil {
		delete(nd.conns, c)
	}
}

// Crashed reports whether the host is currently down.
func (nd *Node) Crashed() bool { return nd.crashed }

// OnRestart registers a boot script for the host: after every RestartHost,
// fn is spawned as a daemon process (in registration order), modeling init
// scripts that bring a machine's services back after a reboot.
func (nd *Node) OnRestart(name string, fn func(transport.Env)) {
	nd.restartHooks = append(nd.restartHooks, restartHook{name: name, fn: fn})
}

// CrashHost fails the named host abruptly, as a power loss would: every
// process on it is killed mid-flight (stacks unwind, no goroutine leaks),
// every listener dies, and every open connection endpoint is reset — the
// surviving peer's pending and future Read/Write calls fail with
// transport.ErrReset after the RST propagates along the path. Dials to a
// crashed host fail with transport.ErrHostDown after one path round trip.
//
// CrashHost must be called from kernel context (an event callback, a
// FaultPlan, or between Run calls), because killing a process requires the
// scheduler to be parked. All teardown is ordered deterministically: conns by
// address, processes by PID.
func (n *Network) CrashHost(name string) error {
	nd := n.nodes[name]
	if nd == nil || !nd.isHost {
		return fmt.Errorf("simnet: CrashHost(%q): not a host", name)
	}
	if nd.crashed {
		return nil
	}
	nd.crashed = true

	// Listeners die: blocked Accepts fail, queued-but-unaccepted conns are
	// reset with their dialer's endpoints below.
	ports := make([]int, 0, len(nd.listeners))
	for port := range nd.listeners {
		ports = append(ports, port)
	}
	sort.Ints(ports)
	for _, port := range ports {
		l := nd.listeners[port]
		l.closed = true
		l.pending.Close()
	}
	nd.listeners = make(map[int]*listener)

	// Reset open connections and notify surviving peers with an RST that
	// travels the path like any control packet.
	conns := make([]*conn, 0, len(nd.conns))
	for c := range nd.conns {
		conns = append(conns, c)
	}
	sort.Slice(conns, func(i, j int) bool {
		if conns[i].local != conns[j].local {
			return conns[i].local < conns[j].local
		}
		return conns[i].remote < conns[j].remote
	})
	for _, c := range conns {
		x := c.x
		c.reset()
		if x != nil {
			// Cross-partition endpoint: the peer lives elsewhere, so the RST
			// travels as a typed packet along the same path.
			n.part.sendX(c.path, &xwire{op: opRST, srcPart: n.part.idx, dstID: x.peerID})
			continue
		}
		peer := c.peer
		if peer.node.crashed {
			continue // both endpoints down; nobody left to notify
		}
		n.send(c.path, ctlSize, func() { peer.deliverReset() })
	}
	nd.conns = make(map[*conn]struct{})

	// Kill processes in PID order. Their deferred cleanup runs, but any
	// conn.Close they attempt is a no-op on the already-reset endpoints.
	pids := make([]int, 0, len(nd.procs))
	for pid := range nd.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		n.K.Kill(nd.procs[pid])
	}
	nd.procs = make(map[int]*sim.Proc)
	return nil
}

// RestartHost brings a crashed host back: fresh NIC and port state, a fresh
// CPU semaphore (crash-killed processes may have died holding CPUs), and the
// host's OnRestart boot scripts spawned in registration order. Like
// CrashHost it must run from kernel context.
func (n *Network) RestartHost(name string) error {
	nd := n.nodes[name]
	if nd == nil || !nd.isHost {
		return fmt.Errorf("simnet: RestartHost(%q): not a host", name)
	}
	if !nd.crashed {
		return nil
	}
	nd.crashed = false
	nd.cpus = sim.NewSemaphore(n.K, nd.cpuCount)
	nd.nextPort = 32768
	for _, h := range nd.restartHooks {
		nd.SpawnDaemonOn(h.name, h.fn)
	}
	return nil
}

// SetLinkDown takes the duplex link between a and b out of service: packets
// already serialized onto the wire still arrive; everything else — data
// segments, connection attempts — stalls until the link returns, which is
// what endpoints of reliable streams observe across a real link flap (TCP
// retransmissions cover the loss; only the delay shows). It reports whether
// such a link exists.
func (n *Network) SetLinkDown(a, b string) bool {
	return n.setLink(a, b, true)
}

// SetLinkUp restores a downed link.
func (n *Network) SetLinkUp(a, b string) bool {
	return n.setLink(a, b, false)
}

func (n *Network) setLink(a, b string, down bool) bool {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return false
	}
	found := false
	for _, ld := range na.links {
		if ld.to == nb {
			ld.down = down
			ld.rev.down = down
			found = true
		}
	}
	return found
}

// SetPartition severs (down=true) or restores every link with one endpoint
// in groupA and the other in groupB. All cross-group links change state in
// this one call — a network partition is atomic, traffic never observes a
// half-cut boundary. Unknown node names and group pairs with no direct link
// are skipped, so healing after topology edits is a deterministic no-op.
// It returns the number of duplex links touched.
func (n *Network) SetPartition(groupA, groupB []string, down bool) int {
	inB := make(map[string]bool, len(groupB))
	for _, b := range groupB {
		inB[b] = true
	}
	count := 0
	for _, a := range groupA {
		na := n.nodes[a]
		if na == nil {
			continue
		}
		for _, ld := range na.links {
			if inB[ld.to.name] {
				ld.down = down
				ld.rev.down = down
				count++
			}
		}
	}
	return count
}

// SetLinkDegraded applies gray degradation to the DIRECTED link a->b: every
// transfer pays addLatency of extra propagation delay, and flow-modeled data
// segments see lossPct of extra loss on top of the configured LossRate
// (plain reliable streams are lossless by construction — for them only the
// latency shows). Pass zeros to clear. Routing is not recomputed: paths keep
// their hops, so degradation models congestion on the same route rather
// than a topology change. It reports whether the link exists.
func (n *Network) SetLinkDegraded(a, b string, addLatency time.Duration, lossPct float64) bool {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return false
	}
	found := false
	for _, ld := range na.links {
		if ld.to == nb {
			ld.extraLat = addLatency
			ld.extraLoss = lossPct
			found = true
		}
	}
	return found
}

// LinkDegraded reports the a->b direction's current extra latency and loss.
func (n *Network) LinkDegraded(a, b string) (time.Duration, float64) {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return 0, 0
	}
	for _, ld := range na.links {
		if ld.to == nb {
			return ld.extraLat, ld.extraLoss
		}
	}
	return 0, 0
}

// SetHostSpeed rescales a host's compute speed to configured/factor: factor
// 2 makes every Compute call take twice as long (a straggler), factor 1
// restores nominal. Sleep is wall-time, not compute, and stays unscaled.
// Compute calls already in progress keep the rate they started with; only
// new calls observe the change. Restarting a crashed host does not reset
// the factor — slowness models hardware state that survives a reboot.
func (n *Network) SetHostSpeed(name string, factor float64) error {
	nd := n.nodes[name]
	if nd == nil || !nd.isHost {
		return fmt.Errorf("simnet: SetHostSpeed(%q): not a host", name)
	}
	if factor <= 0 {
		return fmt.Errorf("simnet: SetHostSpeed(%q): factor %v must be > 0", name, factor)
	}
	nd.speed = nd.baseSpeed / factor
	return nil
}

// LinkDown reports whether the a->b link is out of service.
func (n *Network) LinkDown(a, b string) bool {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return false
	}
	for _, ld := range na.links {
		if ld.to == nb {
			return ld.down
		}
	}
	return false
}

// LinkStats reports one directed link's traffic counters.
type LinkStats struct {
	// From and To name the endpoints.
	From, To string
	// Bytes carried since the simulation started.
	Bytes int64
	// Stalled counts bytes that had to wait out a link outage.
	Stalled int64
	// Busy is the cumulative serialization time.
	Busy time.Duration
}

// Stats returns per-directed-link traffic counters, sorted for determinism.
func (n *Network) Stats() []LinkStats {
	var out []LinkStats
	for _, node := range n.nodes {
		for _, ld := range node.links {
			out = append(out, LinkStats{
				From:    ld.from.name,
				To:      ld.to.name,
				Bytes:   ld.bytes,
				Stalled: ld.stalled,
				Busy:    ld.busy,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Utilization reports the a->b link's busy fraction of the elapsed virtual
// time (0 when no time has passed).
func (n *Network) Utilization(a, b string) (float64, error) {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return 0, fmt.Errorf("simnet: unknown node in %q -> %q", a, b)
	}
	for _, ld := range na.links {
		if ld.to == nb {
			now := n.K.Now()
			if now == 0 {
				return 0, nil
			}
			return float64(ld.busy) / float64(now), nil
		}
	}
	return 0, fmt.Errorf("simnet: no link %q -> %q", a, b)
}
