package simnet

import (
	"strings"
	"testing"
	"time"

	"nxcluster/internal/transport"
)

// TestFaultPlanInsertionOrderTies pins the same-instant tie-break: faults at
// one instant apply in insertion order, never reordered by kind. The plan
// restores a link and re-cuts it at the same instant; if ordering ever
// regressed to kind-based, the final state would flip.
func TestFaultPlanInsertionOrderTies(t *testing.T) {
	k, n := crashPair(time.Millisecond, 0)
	defer k.Shutdown()
	plan := (&FaultPlan{}).
		LinkOutage("a", "r", 10*time.Millisecond, 50*time.Millisecond) // up again at 50ms...
	plan.add(Fault{At: 50 * time.Millisecond, Kind: FaultLinkDown, A: "a", B: "r"}) // ...then down at the same instant

	ord := plan.ordered()
	kinds := make([]FaultKind, len(ord))
	for i, f := range ord {
		kinds[i] = f.Kind
	}
	want := []FaultKind{FaultLinkDown, FaultLinkUp, FaultLinkDown}
	for i, w := range want {
		if kinds[i] != w {
			t.Fatalf("ordered kinds = %v, want %v", kinds, want)
		}
	}

	if err := n.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
	down := false
	k.After(60*time.Millisecond, func() { down = n.LinkDown("a", "r") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !down {
		t.Error("link up after same-instant up-then-down; ties not in insertion order")
	}
}

// TestFaultPlanZeroLengthWindows checks that degenerate windows (to == from)
// schedule cleanly: a zero-length crash window bounces the host within one
// instant, and zero-length degrade/slow/partition windows mean "permanent".
func TestFaultPlanZeroLengthWindows(t *testing.T) {
	k, n := crashPair(time.Millisecond, 0)
	defer k.Shutdown()
	boots := 0
	n.Node("b").OnRestart("srv", func(env transport.Env) { boots++ })
	plan := (&FaultPlan{}).
		CrashWindow("b", 30*time.Millisecond, 30*time.Millisecond).
		LinkOutage("a", "r", 40*time.Millisecond, 40*time.Millisecond).
		LinkDegrade("r", "b", 5*time.Millisecond, 0, 45*time.Millisecond, 45*time.Millisecond).
		SlowHost("a", 2, 45*time.Millisecond, 45*time.Millisecond)
	if err := n.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Node("b").Crashed() {
		t.Error("host still crashed after zero-length crash window")
	}
	if boots != 1 {
		t.Errorf("boots = %d, want 1 (restart hook ran)", boots)
	}
	if n.LinkDown("a", "r") {
		t.Error("link still down after zero-length outage")
	}
	// Zero-length degrade and slow windows are permanent by contract.
	if lat, _ := n.LinkDegraded("r", "b"); lat != 5*time.Millisecond {
		t.Errorf("r->b extra latency = %v, want permanent 5ms", lat)
	}
	if got := n.Node("a").Speed(); got != 0.5 {
		t.Errorf("host a speed = %v, want permanent 0.5", got)
	}
}

// TestFaultPlanRestartRacingOutage schedules a restart BEFORE the host ever
// crashes and a crash for an already-crashed host: both are no-ops, never
// panics, and the terminal state follows the last fault.
func TestFaultPlanRestartRacingOutage(t *testing.T) {
	k, n := crashPair(time.Millisecond, 0)
	defer k.Shutdown()
	plan := &FaultPlan{}
	plan.add(Fault{At: 5 * time.Millisecond, Kind: FaultRestart, A: "b"}) // host is up: no-op
	plan.Crash("b", 10*time.Millisecond)
	plan.Crash("b", 15*time.Millisecond) // already crashed: no-op
	plan.add(Fault{At: 20 * time.Millisecond, Kind: FaultRestart, A: "b"})
	if err := n.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Node("b").Crashed() {
		t.Error("host crashed at end; want restarted")
	}
}

// TestFaultPlanRejectsMalformed covers every validation path: unknown nodes,
// missing links, non-hosts, bad degrade/slow parameters, empty partition
// groups, unknown kinds, and builder-recorded LinkFlap errors. ApplyPlan must
// return an error — never panic — and schedule nothing.
func TestFaultPlanRejectsMalformed(t *testing.T) {
	k, n := crashPair(time.Millisecond, 0)
	defer k.Shutdown()
	cases := map[string]*FaultPlan{
		"unknown link node": {Faults: []Fault{{Kind: FaultDegrade, A: "a", B: "zzz"}}},
		"no such link":      {Faults: []Fault{{Kind: FaultDegrade, A: "a", B: "b"}}},
		"negative latency":  {Faults: []Fault{{Kind: FaultDegrade, A: "a", B: "r", AddLatency: -time.Millisecond}}},
		"loss >= 1":         {Faults: []Fault{{Kind: FaultDegrade, A: "a", B: "r", LossPct: 1.0}}},
		"slow non-host":     {Faults: []Fault{{Kind: FaultSlowHost, A: "r", Factor: 2}}},
		"slow unknown host": {Faults: []Fault{{Kind: FaultSlowHost, A: "zzz", Factor: 2}}},
		"zero slow factor":  {Faults: []Fault{{Kind: FaultSlowHost, A: "a"}}},
		"empty group":       {Faults: []Fault{{Kind: FaultPartition, GroupA: []string{"a"}}}},
		"unknown in group":  {Faults: []Fault{{Kind: FaultPartition, GroupA: []string{"a"}, GroupB: []string{"zzz"}}}},
		"flap bad duty":     (&FaultPlan{}).LinkFlap("a", "r", time.Second, 1.5, 0, time.Minute),
		"flap zero period":  (&FaultPlan{}).LinkFlap("a", "r", 0, 0.5, 0, time.Minute),
		"flap empty window": (&FaultPlan{}).LinkFlap("a", "r", time.Second, 0.5, time.Minute, time.Minute),
	}
	for name, p := range cases {
		if err := n.ApplyPlan(p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestLinkFlapExpansion pins the build-time expansion of a flap into plain
// down/up pairs: one pair per period, down for duty*period, and the link
// guaranteed up at the window's end even mid-period.
func TestLinkFlapExpansion(t *testing.T) {
	p := (&FaultPlan{}).LinkFlap("a", "r", 10*time.Millisecond, 0.3, 0, 35*time.Millisecond)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	type win struct{ down, up time.Duration }
	want := []win{
		{0, 3 * time.Millisecond},
		{10 * time.Millisecond, 13 * time.Millisecond},
		{20 * time.Millisecond, 23 * time.Millisecond},
		{30 * time.Millisecond, 33 * time.Millisecond},
	}
	if len(p.Faults) != 2*len(want) {
		t.Fatalf("flap expanded to %d faults, want %d", len(p.Faults), 2*len(want))
	}
	for i, w := range want {
		d, u := p.Faults[2*i], p.Faults[2*i+1]
		if d.Kind != FaultLinkDown || d.At != w.down || u.Kind != FaultLinkUp || u.At != w.up {
			t.Errorf("period %d = %v@%v / %v@%v, want down@%v up@%v", i, d.Kind, d.At, u.Kind, u.At, w.down, w.up)
		}
	}
	// A final period truncated by `to` must still end up.
	p2 := (&FaultPlan{}).LinkFlap("a", "r", 10*time.Millisecond, 0.5, 0, 32*time.Millisecond)
	last := p2.Faults[len(p2.Faults)-1]
	if last.Kind != FaultLinkUp || last.At != 32*time.Millisecond {
		t.Errorf("truncated flap ends with %v@%v, want link-up@32ms", last.Kind, last.At)
	}
	if !strings.Contains(p.String(), "link-down") {
		t.Error("plan rendering missing expanded flap faults")
	}
}

// TestSetPartitionAndHeal severs the a | {r, b} cut and verifies traffic
// stalls until the heal, that the cut is atomic (returns the touched link
// count), and that unknown names in a group are skipped, not fatal.
func TestSetPartitionAndHeal(t *testing.T) {
	k, n := crashPair(time.Millisecond, 0)
	received := 0
	n.Node("b").SpawnDaemonOn("sink", func(env transport.Env) {
		l, _ := env.Listen(1)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		for {
			nn, err := c.Read(env, buf)
			received += nn
			if err != nil {
				return
			}
		}
	})
	n.Node("a").SpawnOn("src", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:1")
		if err != nil {
			t.Error(err)
			return
		}
		if got := n.SetPartition([]string{"a", "ghost"}, []string{"r", "b"}, true); got != 1 {
			t.Errorf("partition touched %d links, want 1 (a-r; ghost skipped)", got)
		}
		_, _ = c.Write(env, make([]byte, 64))
		env.Sleep(50 * time.Millisecond)
		if received != 0 {
			t.Errorf("received %d bytes across the partition, want 0", received)
		}
		n.SetPartition([]string{"a", "ghost"}, []string{"r", "b"}, false)
		env.Sleep(50 * time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 64 {
		t.Errorf("received %d bytes after heal, want 64", received)
	}
	k.Shutdown()
}

// TestSetLinkDegradedLatencyIsDirectional measures a request/response pair
// over a degraded hop: +20ms on r->b delays the request direction only, so
// the observed RTT grows by exactly the one-way penalty.
func TestSetLinkDegradedLatencyIsDirectional(t *testing.T) {
	k, n := crashPair(time.Millisecond, 0)
	n.Node("b").SpawnDaemonOn("echo", func(env transport.Env) {
		l, _ := env.Listen(1)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 16)
		for {
			nn, err := c.Read(env, buf)
			if err != nil {
				return
			}
			if _, err := c.Write(env, buf[:nn]); err != nil {
				return
			}
		}
	})
	var healthy, degraded time.Duration
	n.Node("a").SpawnOn("probe", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:1")
		if err != nil {
			t.Error(err)
			return
		}
		rtt := func() time.Duration {
			start := env.Now()
			_, _ = c.Write(env, make([]byte, 8))
			_, _ = c.Read(env, make([]byte, 16))
			return env.Now() - start
		}
		healthy = rtt()
		if !n.SetLinkDegraded("r", "b", 20*time.Millisecond, 0) {
			t.Error("SetLinkDegraded: link not found")
		}
		if lat, loss := n.LinkDegraded("r", "b"); lat != 20*time.Millisecond || loss != 0 {
			t.Errorf("LinkDegraded = %v/%v, want 20ms/0", lat, loss)
		}
		degraded = rtt()
		n.SetLinkDegraded("r", "b", 0, 0)
		if after := rtt(); after != healthy {
			t.Errorf("RTT after clear = %v, want %v", after, healthy)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := degraded - healthy; got != 20*time.Millisecond {
		t.Errorf("degrade added %v to RTT, want exactly 20ms (one direction)", got)
	}
	if n.SetLinkDegraded("a", "zzz", time.Millisecond, 0) {
		t.Error("SetLinkDegraded on unknown node reported success")
	}
	k.Shutdown()
}

// TestSetHostSpeedScalesCompute pins the straggler model: Compute stretches
// by the slowdown factor, Sleep is unscaled, and restoring the host returns
// Compute to nominal.
func TestSetHostSpeedScalesCompute(t *testing.T) {
	k, n := crashPair(time.Millisecond, 0)
	var slow, restored, slept time.Duration
	n.Node("b").SpawnOn("burn", func(env transport.Env) {
		if err := n.SetHostSpeed("b", 4); err != nil {
			t.Error(err)
		}
		start := env.Now()
		env.Compute(10 * time.Millisecond)
		slow = env.Now() - start

		start = env.Now()
		env.Sleep(10 * time.Millisecond)
		slept = env.Now() - start

		if err := n.SetHostSpeed("b", 1); err != nil {
			t.Error(err)
		}
		start = env.Now()
		env.Compute(10 * time.Millisecond)
		restored = env.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if slow != 40*time.Millisecond {
		t.Errorf("slowed Compute(10ms) took %v, want 40ms", slow)
	}
	if slept != 10*time.Millisecond {
		t.Errorf("Sleep under slowdown took %v, want 10ms (unscaled)", slept)
	}
	if restored != 10*time.Millisecond {
		t.Errorf("restored Compute(10ms) took %v, want 10ms", restored)
	}
	if err := n.SetHostSpeed("r", 2); err == nil {
		t.Error("SetHostSpeed on a router succeeded")
	}
	if err := n.SetHostSpeed("b", -1); err == nil {
		t.Error("SetHostSpeed with negative factor succeeded")
	}
	k.Shutdown()
}
