package simnet

import (
	"fmt"
	"time"
)

// Hierarchical site routing.
//
// The Dijkstra router is exact but global: every uncached (src, dst) pair
// costs a scan of the whole node set, which melts once a fleet topology
// stamps out tens of thousands of hosts. Fleet topologies are trees —
// host -> site gateway -> core — so paths can instead be composed by walking
// parent pointers: climb from both endpoints to their lowest common
// ancestor and join the two chains. That is O(depth) per uncached pair,
// independent of host count, and on a tree it returns exactly the path
// Dijkstra would (the tree path is the only path).
//
// The hierarchy is opt-in per node via SetParent. Nodes without parent
// chains — every topology built before this existed — fall through to
// Dijkstra unchanged, and composed paths land in the same route cache, so
// per-message cost after warmup is identical either way.

// maxHierDepth bounds parent-chain walks, guarding against cycles created
// by misconfigured SetParent calls.
const maxHierDepth = 64

// SetParent declares parent as child's uplink in a tree-shaped (hierarchical)
// topology: route lookups between nodes with parent chains are composed by
// lowest-common-ancestor walk instead of Dijkstra. The nodes must already be
// connected by a direct link by the time traffic flows; composition falls
// back to Dijkstra for any pair whose chains do not join or whose chain
// links are missing.
func (n *Network) SetParent(child, parent string) {
	c, p := n.nodes[child], n.nodes[parent]
	if c == nil || p == nil {
		panic(fmt.Sprintf("simnet: SetParent(%q, %q): unknown node", child, parent))
	}
	if c == p {
		panic(fmt.Sprintf("simnet: SetParent(%q, %q): node cannot be its own parent", child, parent))
	}
	c.parent = p
	n.routes = make(map[routeKey][]*linkDir) // invalidate cache
}

// hierPath composes the tree path from src to dst via their lowest common
// ancestor, or returns nil when the hierarchy cannot answer (no parent
// chains, chains that never meet, or a missing direct link between adjacent
// chain nodes) — the caller then falls back to Dijkstra.
func (n *Network) hierPath(src, dst *Node) []*linkDir {
	if src.parent == nil && dst.parent == nil {
		return nil
	}
	up := ancestry(src)
	down := ancestry(dst)
	if up == nil || down == nil {
		return nil
	}
	// Find the lowest common ancestor: the first node of src's chain that
	// appears anywhere in dst's chain. Chains are maxHierDepth short, so the
	// quadratic scan is cheap and allocation-light.
	ui, di := -1, -1
	for i, a := range up {
		for j, b := range down {
			if a == b {
				ui, di = i, j
				break
			}
		}
		if ui >= 0 {
			break
		}
	}
	if ui < 0 {
		return nil
	}
	// Ascend src -> LCA, then descend LCA -> dst.
	path := make([]*linkDir, 0, ui+di)
	for i := 0; i < ui; i++ {
		ld := directLink(up[i], up[i+1])
		if ld == nil {
			return nil
		}
		path = append(path, ld)
	}
	for j := di; j > 0; j-- {
		ld := directLink(down[j], down[j-1])
		if ld == nil {
			return nil
		}
		path = append(path, ld)
	}
	return path
}

// ancestry returns the chain [node, parent, grandparent, ...] up to the
// root, or nil when a cycle exceeds maxHierDepth.
func ancestry(nd *Node) []*Node {
	chain := make([]*Node, 0, 4)
	for cur := nd; cur != nil; cur = cur.parent {
		if len(chain) >= maxHierDepth {
			return nil
		}
		chain = append(chain, cur)
	}
	return chain
}

// directLink returns the directed link from a to b, or nil when the nodes
// are not directly connected.
func directLink(a, b *Node) *linkDir {
	for _, ld := range a.links {
		if ld.to == b {
			return ld
		}
	}
	return nil
}

// SendMessage delivers a connection-less control datagram of size bytes from
// src to dst: it traverses the routed path hop by hop (each hop costs the
// link's serialization and propagation exactly like a stream segment) and
// runs deliver at the final node. There is no connection handshake and —
// unlike Dial — no firewall check: datagrams model intra-fleet control
// traffic (dispatch, completions, heartbeats) between components that are
// already mutually trusted, not new inbound connections. Must be called
// from kernel or process context. Same-node sends deliver after a
// scheduling tick.
func (n *Network) SendMessage(src, dst string, size int, deliver func()) error {
	a, b := n.nodes[src], n.nodes[dst]
	if a == nil || b == nil {
		return fmt.Errorf("simnet: SendMessage: unknown node in %q -> %q", src, dst)
	}
	path := n.route(a, b)
	if path == nil {
		return fmt.Errorf("simnet: SendMessage: no route %q -> %q", src, dst)
	}
	n.send(path, size, deliver)
	return nil
}

// MessageLatency reports the one-way delivery latency of a zero-size
// datagram between two nodes (the sum of link latencies plus the per-hop
// scheduling nanosecond), for calibration and capacity math.
func (n *Network) MessageLatency(src, dst string) (time.Duration, error) {
	return n.PathLatency(src, dst)
}
