package simnet

import (
	"fmt"
	"time"

	"nxcluster/internal/obs"
	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

// Conservative-parallel partitioning of a network.
//
// Couple splits one logical topology across the sub-kernels of a sim.Group:
// every partition holds a full mirror of the topology (nodes, links,
// firewalls — cheap, static data) but *owns* only the nodes assigned to it.
// Processes, listeners and connection endpoints live on owning partitions
// only; routing and firewall checks run against the local mirror.
//
// The data plane needs exactly one new mechanism: when a link pump finishes
// serializing a transfer whose next node is foreign, the transfer is not
// propagated locally — it is shipped to the owning partition as a typed wire
// message (an *xwire) carrying its remaining node chain, timestamped at
// now + link latency. The group delivers it at that instant after the next
// barrier; the lookahead window (the minimum boundary-link latency, computed
// here) guarantees the instant is never in the destination's past. The
// destination resolves the chain against its own mirror and resumes the
// transfer, so multi-hop timing — serialization, queueing, stalls — is
// reproduced hop for hop.
//
// Connections whose endpoints live in different partitions cannot share the
// monolithic *conn pair (closures and pointers must not cross kernels), so
// the handshake and teardown run over the same typed messages: SYN/SYNACK
// establish half-conns registered in per-partition tables keyed by id,
// data segments carry (id, seq, payload), window credit and loss
// notifications return as barrier messages. With the flow model off this
// reproduces the monolithic virtual-time behavior exactly for the paper's
// workloads; with it on, cross-partition ACK timing is quantized to the
// lookahead window (documented divergence — still deterministic for any
// worker count).

// Partition binds a Network to one sub-kernel of a sim.Group.
type Partition struct {
	net   *Network
	gk    *sim.GroupKernel
	idx   int
	owner map[string]int

	nextX  uint64
	xconns map[uint64]*conn
	dials  map[uint64]*xdial
}

// xdial tracks one in-flight cross-partition connection attempt on the
// dialing side.
type xdial struct {
	nd   *Node
	path []*linkDir
	done *sim.Event
	conn *conn
	err  error
}

// xdesc marks a conn as one endpoint of a cross-partition connection.
type xdesc struct {
	id       uint64 // key in the local partition's xconns table
	peerPart int
	peerID   uint64
}

// Cross-partition wire operations.
const (
	opSYN uint8 = iota + 1
	opSYNACK
	opDialErr
	opData
	opCredit
	opLoss
	opFIN
	opRST
)

// Dial-failure kinds carried by opDialErr.
const (
	dialErrRefused uint8 = iota + 1
	dialErrHostDown
)

// xwire is one typed cross-partition message. Messages with a node chain
// traverse links in the destination partition (resuming at nodes[0], final
// node last); chainless messages (credit, loss) apply instantaneous control
// state directly.
type xwire struct {
	op    uint8
	nodes []string // remaining node chain; empty for instantaneous control ops
	size  int

	srcPart int
	srcID   uint64 // sending side's conn/dial id
	dstID   uint64 // receiving side's conn/dial id

	// opSYN
	route  []string // full forward node chain, dialer first
	dialer string
	port   int

	// opSYNACK / opDialErr
	localAddr  string
	remoteAddr string
	dialErr    uint8

	// opData
	seq  int64
	data []byte
	flow bool
	rtt  time.Duration // sender's flow RTT, for destination-side retransmit timing

	// opFIN
	finSeq int64

	// opCredit / opLoss
	n int
}

// Couple partitions a set of identically-built mirror networks across the
// sub-kernels of g: nets[i] must be built on g.Kernel(i) with the same
// topology as every other mirror, and assign must map every node name to the
// partition that owns it. It computes the lookahead window — the minimum
// latency of any link joining differently-owned nodes — sets it on g, and
// returns it. Boundary links must have positive latency (the lookahead would
// otherwise be zero) and every partition's owned nodes should form a
// connected subgraph so transfers cross where they are intercepted.
func Couple(g *sim.Group, nets []*Network, assign map[string]int) (time.Duration, error) {
	if len(nets) != g.Parts() {
		return 0, fmt.Errorf("simnet: Couple: %d networks for %d partitions", len(nets), g.Parts())
	}
	ref := nets[0]
	for name := range ref.nodes {
		p, ok := assign[name]
		if !ok {
			return 0, fmt.Errorf("simnet: Couple: node %q not assigned to a partition", name)
		}
		if p < 0 || p >= len(nets) {
			return 0, fmt.Errorf("simnet: Couple: node %q assigned to invalid partition %d", name, p)
		}
	}
	for i, n := range nets {
		if n.K != g.Kernel(i) {
			return 0, fmt.Errorf("simnet: Couple: nets[%d] is not built on partition %d's kernel", i, i)
		}
		if n.part != nil {
			return 0, fmt.Errorf("simnet: Couple: nets[%d] already coupled", i)
		}
		if len(n.nodes) != len(ref.nodes) {
			return 0, fmt.Errorf("simnet: Couple: nets[%d] has %d nodes, mirror has %d", i, len(n.nodes), len(ref.nodes))
		}
		for name := range ref.nodes {
			if n.nodes[name] == nil {
				return 0, fmt.Errorf("simnet: Couple: nets[%d] is missing node %q", i, name)
			}
		}
	}
	var window time.Duration
	for _, nd := range ref.nodes {
		for _, ld := range nd.links {
			if assign[ld.from.name] == assign[ld.to.name] {
				continue
			}
			if ld.cfg.Latency <= 0 {
				return 0, fmt.Errorf("simnet: Couple: boundary link %s has zero latency (no lookahead)", ld.label)
			}
			if window == 0 || ld.cfg.Latency < window {
				window = ld.cfg.Latency
			}
		}
	}
	if window == 0 {
		return 0, fmt.Errorf("simnet: Couple: no partition-crossing links; nothing to parallelize")
	}
	for i, n := range nets {
		pt := &Partition{
			net: n, gk: g.Part(i), idx: i, owner: assign,
			xconns: make(map[uint64]*conn),
			dials:  make(map[uint64]*xdial),
		}
		n.part = pt
		pt.gk.OnMessage = pt.onMessage
		for _, nd := range n.nodes {
			for _, ld := range nd.links {
				ld.xship = assign[ld.to.name] != i
			}
		}
	}
	g.SetWindow(window)
	return window, nil
}

// Partitioned reports whether this network is one partition of a group.
func (n *Network) Partitioned() bool { return n.part != nil }

// Owns reports whether this network's partition owns the named node (always
// true on a monolithic network).
func (n *Network) Owns(name string) bool {
	return n.part == nil || n.part.owner[name] == n.part.idx
}

// findDir returns the directed link from one node to an adjacent one.
func (n *Network) findDir(from, to string) *linkDir {
	nf := n.nodes[from]
	if nf == nil {
		return nil
	}
	for _, ld := range nf.links {
		if ld.to.name == to {
			return ld
		}
	}
	return nil
}

// ship intercepts a transfer whose next hop is foreign: the remaining node
// chain travels to the owning partition as a message timestamped at the
// arrival instant (now + link latency >= next barrier, by lookahead).
func (pt *Partition) ship(ld *linkDir, tr *transfer) {
	n := pt.net
	x := tr.x
	if x == nil {
		src := tr.src
		if src == nil || src.x == nil {
			panic(fmt.Sprintf("simnet: transfer crossed partition boundary on %s without cross routing (partitions must own connected subgraphs)", ld.label))
		}
		x = &xwire{op: opData, seq: tr.seq, data: tr.seg, srcPart: pt.idx, srcID: src.x.id, dstID: src.x.peerID}
		if f := src.flow; f != nil {
			x.flow = true
			x.rtt = f.rtt
		}
	}
	x.size = tr.size
	nodes := make([]string, 0, len(tr.path)-tr.idx)
	nodes = append(nodes, ld.to.name)
	for j := tr.idx + 1; j < len(tr.path); j++ {
		nodes = append(nodes, tr.path[j].to.name)
	}
	x.nodes = nodes
	pt.gk.Send(pt.owner[ld.to.name], n.K.Now()+ld.cfg.Latency, x)
	n.putTransfer(tr)
}

// onMessage handles one cross-partition message in kernel context at its
// timestamp: resume the transfer along its remaining links, or deliver it
// when it arrived at its final node (single-name chains and chainless
// control ops).
func (pt *Partition) onMessage(payload any) {
	x := payload.(*xwire)
	if len(x.nodes) > 1 {
		pt.resume(x)
		return
	}
	pt.deliverX(x)
}

// resume re-launches a shipped transfer on this partition's mirror, entering
// at the first remaining link.
func (pt *Partition) resume(x *xwire) {
	n := pt.net
	path := make([]*linkDir, 0, len(x.nodes)-1)
	for i := 0; i+1 < len(x.nodes); i++ {
		ld := n.findDir(x.nodes[i], x.nodes[i+1])
		if ld == nil {
			panic(fmt.Sprintf("simnet: partition %d cannot resolve link %s>%s", pt.idx, x.nodes[i], x.nodes[i+1]))
		}
		path = append(path, ld)
	}
	tr := n.newTransfer()
	tr.size, tr.path, tr.idx = x.size, path, 0
	tr.x = x
	if x.op == opData {
		tr.seg = x.data
		tr.seq = x.seq
	}
	path[0].enqueue(tr)
}

// deliverX dispatches a cross-partition message that reached its target.
func (pt *Partition) deliverX(x *xwire) {
	n := pt.net
	switch x.op {
	case opSYN:
		pt.acceptSYN(x)

	case opSYNACK:
		xd := pt.dials[x.dstID]
		delete(pt.dials, x.dstID)
		if xd == nil {
			return
		}
		if xd.nd.crashed {
			// The dialer's host died mid-handshake; reset the accepted end.
			pt.sendX(xd.path, &xwire{op: opRST, srcPart: pt.idx, dstID: x.srcID})
			return
		}
		cDial := &conn{
			node: xd.nd, local: x.localAddr, remote: x.remoteAddr, path: xd.path,
			readCond: sim.NewCond(n.K), credit: DefaultWindow, creditCond: sim.NewCond(n.K),
			finSeq: -1,
			x:      &xdesc{id: x.dstID, peerPart: x.srcPart, peerID: x.srcID},
		}
		if n.flowOn && len(xd.path) > 0 {
			cDial.flow = n.newFlowState(cDial.path, x.localAddr+">"+x.remoteAddr)
		}
		pt.xconns[x.dstID] = cDial
		xd.nd.trackConn(cDial)
		xd.conn = cDial
		xd.done.Set()

	case opDialErr:
		xd := pt.dials[x.dstID]
		delete(pt.dials, x.dstID)
		if xd == nil || xd.nd.crashed {
			return // nobody left to answer to; the attempt evaporates
		}
		if x.dialErr == dialErrHostDown {
			xd.err = transport.ErrHostDown
		} else {
			xd.err = transport.ErrRefused
		}
		xd.done.Set()

	case opData:
		c := pt.xconns[x.dstID]
		// Window credit (and the flow-model ACK) returns to the sender as an
		// instantaneous control message, mirroring the monolithic credit
		// return at delivery time.
		pt.gk.Send(x.srcPart, n.K.Now(), &xwire{op: opCredit, srcPart: pt.idx, dstID: x.srcID, n: x.size, flow: x.flow})
		if c == nil || c.closed {
			n.putSeg(x.data)
			return
		}
		if x.flow {
			c.deliverSeq(x.seq, x.data)
		} else {
			c.pushInbox(x.data)
			c.readCond.Broadcast()
		}

	case opCredit:
		c := pt.xconns[x.dstID]
		if c == nil {
			return
		}
		if x.flow && c.flow != nil {
			c.flow.onAck(x.n)
		}
		c.credit += x.n
		c.creditCond.Broadcast()

	case opLoss:
		c := pt.xconns[x.dstID]
		if c == nil || c.flow == nil {
			return
		}
		if c.flow.onLoss(n.K.Now()) {
			n.flowCuts++
		}
		n.flowRetrans++

	case opFIN:
		if c := pt.xconns[x.dstID]; c != nil {
			c.deliverFin(x.finSeq)
		}

	case opRST:
		if c := pt.xconns[x.dstID]; c != nil {
			c.deliverReset()
		}

	default:
		panic(fmt.Sprintf("simnet: partition %d received unknown wire op %d", pt.idx, x.op))
	}
}

// acceptSYN is the accepting side of a cross-partition dial: allocate the
// local half-conn, queue it on the listener, and answer along the exact
// reverse of the dialer's forward route (carried in the SYN), so handshake
// timing matches the monolithic path reversal hop for hop.
func (pt *Partition) acceptSYN(x *xwire) {
	n := pt.net
	dst := n.nodes[x.nodes[len(x.nodes)-1]]
	back := make([]*linkDir, 0, len(x.route)-1)
	for i := len(x.route) - 1; i > 0; i-- {
		ld := n.findDir(x.route[i], x.route[i-1])
		if ld == nil {
			panic(fmt.Sprintf("simnet: partition %d cannot reverse route at %s>%s", pt.idx, x.route[i], x.route[i-1]))
		}
		back = append(back, ld)
	}
	refuse := func(kind uint8) {
		pt.sendX(back, &xwire{op: opDialErr, srcPart: pt.idx, dstID: x.srcID, dialErr: kind})
	}
	if dst.crashed {
		refuse(dialErrHostDown)
		return
	}
	l := dst.listeners[x.port]
	if l == nil || l.closed {
		refuse(dialErrRefused)
		return
	}
	n.nextConn++
	localAddr := transport.JoinAddr(x.dialer, 50000+n.nextConn)
	remoteAddr := transport.JoinAddr(dst.name, x.port)
	pt.nextX++
	aid := pt.nextX
	cAcc := &conn{
		node: dst, local: remoteAddr, remote: localAddr, path: back,
		readCond: sim.NewCond(n.K), credit: DefaultWindow, creditCond: sim.NewCond(n.K),
		finSeq: -1,
		x:      &xdesc{id: aid, peerPart: x.srcPart, peerID: x.srcID},
	}
	if n.flowOn && len(back) > 0 {
		cAcc.flow = n.newFlowState(cAcc.path, remoteAddr+">"+localAddr)
	}
	if err := l.pending.TrySend(cAcc); err != nil {
		refuse(dialErrRefused)
		return
	}
	pt.xconns[aid] = cAcc
	dst.trackConn(cAcc)
	pt.sendX(back, &xwire{
		op: opSYNACK, srcPart: pt.idx, srcID: aid, dstID: x.srcID,
		localAddr: localAddr, remoteAddr: remoteAddr,
	})
}

// dialX performs the dialing side of a cross-partition handshake, blocking p
// for the same one path round trip the monolithic dial costs.
func (pt *Partition) dialX(p *sim.Proc, nd *Node, port int, path []*linkDir) (*conn, error) {
	n := pt.net
	pt.nextX++
	did := pt.nextX
	chain := make([]string, 0, len(path)+1)
	chain = append(chain, nd.name)
	for _, ld := range path {
		chain = append(chain, ld.to.name)
	}
	xd := &xdial{nd: nd, path: path, done: sim.NewEvent(n.K)}
	pt.dials[did] = xd
	pt.sendX(path, &xwire{op: opSYN, srcPart: pt.idx, srcID: did, dialer: nd.name, port: port, route: chain})
	xd.done.Wait(p)
	return xd.conn, xd.err
}

// sendX launches a typed control packet along path (ctl-sized, never
// dropped, like every monolithic control packet).
func (pt *Partition) sendX(path []*linkDir, x *xwire) {
	n := pt.net
	tr := n.newTransfer()
	tr.size, tr.path = ctlSize, path
	tr.x = x
	n.launch(tr)
}

// dropSegmentX handles a flow-model drop of a resumed cross-partition data
// segment: the retransmission re-enters at the resume point one sender-RTT
// later (the pre-boundary hops were already paid for), and the sender's
// window reacts via an opLoss message at the same instant.
func (pt *Partition) dropSegmentX(ld *linkDir, tr *transfer) {
	n := pt.net
	n.flowDrops++
	if o := n.Obs; o != nil {
		o.Emit(n.K.Now(), "net", "drop", ld.label,
			obs.Int("bytes", int64(tr.size)), obs.Int("seq", tr.seq))
		o.Metrics().Counter("link." + ld.label + ".drops").Add(1)
	}
	n.K.After(tr.x.rtt, func() { pt.retransmitX(tr) })
}

// retransmitX re-sends a dropped cross-partition segment from its resume
// point and notifies the sending partition so its congestion window halves.
func (pt *Partition) retransmitX(tr *transfer) {
	n := pt.net
	x := tr.x
	c := pt.xconns[x.dstID]
	if c == nil || c.aborted {
		n.putSeg(tr.seg)
		n.putTransfer(tr)
		return
	}
	pt.gk.Send(x.srcPart, n.K.Now(), &xwire{op: opLoss, srcPart: pt.idx, dstID: x.srcID, n: x.size})
	if o := n.Obs; o != nil {
		o.Emit(n.K.Now(), "net", "retransmit", x.nodes[0],
			obs.Int("bytes", int64(tr.size)), obs.Int("seq", tr.seq))
	}
	tr.idx = 0
	tr.path[0].enqueue(tr)
}
