package simnet

import (
	"errors"
	"testing"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

// buildPair creates the shared test topology on n: two hosts behind routers,
// joined by a 5ms wide link (the partition boundary in coupled runs).
func buildPair(n *Network) {
	n.AddHost("h1", HostConfig{Site: "a"})
	n.AddRouter("r1", "a")
	n.AddHost("h2", HostConfig{Site: "b"})
	n.AddRouter("r2", "b")
	n.Connect("h1", "r1", LinkConfig{Latency: 100 * time.Microsecond, Bandwidth: 10 << 20})
	n.Connect("r1", "r2", LinkConfig{Latency: 5 * time.Millisecond, Bandwidth: 1 << 20})
	n.Connect("r2", "h2", LinkConfig{Latency: 100 * time.Microsecond, Bandwidth: 10 << 20})
}

var pairAssign = map[string]int{"h1": 0, "r1": 0, "h2": 1, "r2": 1}

// echoWorkload runs a client on h1 (on net cli) against an echo server on h2
// (on net srv): dial, send payload, read the echo, close. It records the
// client's completion instant.
func echoWorkload(t *testing.T, cli, srv *Network, payload int, doneAt *time.Duration, gotErr *error) {
	t.Helper()
	srv.Node("h2").SpawnDaemonOn("echo", func(env transport.Env) {
		l, err := env.Listen(7000)
		if err != nil {
			return
		}
		for {
			c, err := l.Accept(env)
			if err != nil {
				return
			}
			env.Spawn("echo-conn", func(env transport.Env) {
				buf := make([]byte, 32<<10)
				for {
					n, err := c.Read(env, buf)
					if n > 0 {
						if _, werr := c.Write(env, buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			})
		}
	})
	cli.Node("h1").SpawnOn("client", func(env transport.Env) {
		defer func() { *doneAt = env.Now() }()
		c, err := env.Dial("h2:7000")
		if err != nil {
			*gotErr = err
			return
		}
		msg := make([]byte, payload)
		if _, err := c.Write(env, msg); err != nil {
			*gotErr = err
			return
		}
		got := 0
		buf := make([]byte, 32<<10)
		for got < payload {
			n, err := c.Read(env, buf)
			got += n
			if err != nil {
				*gotErr = err
				return
			}
		}
		c.Close(env)
	})
}

// runMono runs the echo workload on a monolithic network.
func runMono(t *testing.T, payload int, flow bool) time.Duration {
	t.Helper()
	k := sim.New()
	n := New(k)
	buildPair(n)
	if flow {
		n.EnableFlowModel(FlowConfig{Seed: 7})
	}
	var done time.Duration
	var err error
	echoWorkload(t, n, n, payload, &done, &err)
	if rerr := k.Run(); rerr != nil {
		t.Fatalf("mono run: %v", rerr)
	}
	if err != nil {
		t.Fatalf("mono workload: %v", err)
	}
	return done
}

// runCoupled runs the echo workload split across two partitions.
func runCoupled(t *testing.T, payload, workers int, flow bool) time.Duration {
	t.Helper()
	g := sim.NewGroup(2)
	nets := make([]*Network, 2)
	for i := range nets {
		nets[i] = New(g.Kernel(i))
		buildPair(nets[i])
		if flow {
			nets[i].EnableFlowModel(FlowConfig{Seed: 7})
		}
	}
	w, err := Couple(g, nets, pairAssign)
	if err != nil {
		t.Fatalf("Couple: %v", err)
	}
	if w != 5*time.Millisecond {
		t.Fatalf("lookahead = %v, want 5ms", w)
	}
	var done time.Duration
	var werr error
	echoWorkload(t, nets[0], nets[1], payload, &done, &werr)
	if rerr := g.Run(workers); rerr != nil {
		t.Fatalf("group run: %v", rerr)
	}
	if werr != nil {
		t.Fatalf("coupled workload: %v", werr)
	}
	return done
}

func TestPartitionedEchoMatchesMonolithic(t *testing.T) {
	for _, payload := range []int{100, 64 << 10} {
		want := runMono(t, payload, false)
		for _, workers := range []int{1, 2} {
			got := runCoupled(t, payload, workers, false)
			if got != want {
				t.Errorf("payload=%d workers=%d: coupled finished at %v, mono at %v",
					payload, workers, got, want)
			}
		}
	}
}

func TestPartitionedFlowDeterministicAcrossWorkers(t *testing.T) {
	// With the flow model on, cross-partition ACK timing is quantized to the
	// lookahead window, so we assert worker-count invariance (not equality
	// with the monolithic oracle).
	base := runCoupled(t, 256<<10, 1, true)
	for _, workers := range []int{2, 4} {
		if got := runCoupled(t, 256<<10, workers, true); got != base {
			t.Errorf("workers=%d: finished at %v, 1-worker baseline %v", workers, got, base)
		}
	}
}

func TestPartitionedDialRefusedAndCrash(t *testing.T) {
	g := sim.NewGroup(2)
	nets := make([]*Network, 2)
	for i := range nets {
		nets[i] = New(g.Kernel(i))
		buildPair(nets[i])
	}
	if _, err := Couple(g, nets, pairAssign); err != nil {
		t.Fatal(err)
	}
	var refusedErr, downErr error
	nets[0].Node("h1").SpawnOn("client", func(env transport.Env) {
		_, refusedErr = env.Dial("h2:9999") // nothing listens there
		env.Sleep(50 * time.Millisecond)    // crash happens at 20ms
		_, downErr = env.Dial("h2:9999")
	})
	plan := (&FaultPlan{}).Crash("h2", 20*time.Millisecond)
	for _, n := range nets {
		if err := n.ApplyPlan(plan); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(2); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !errors.Is(refusedErr, transport.ErrRefused) {
		t.Errorf("dial to closed port: %v, want ErrRefused", refusedErr)
	}
	if !errors.Is(downErr, transport.ErrHostDown) {
		t.Errorf("dial to crashed host: %v, want ErrHostDown", downErr)
	}
}

func TestPartitionedCrashResetsCrossConn(t *testing.T) {
	g := sim.NewGroup(2)
	nets := make([]*Network, 2)
	for i := range nets {
		nets[i] = New(g.Kernel(i))
		buildPair(nets[i])
	}
	if _, err := Couple(g, nets, pairAssign); err != nil {
		t.Fatal(err)
	}
	var readErr error
	nets[1].Node("h2").SpawnDaemonOn("server", func(env transport.Env) {
		l, err := env.Listen(7000)
		if err != nil {
			return
		}
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 16)
		_, readErr = c.Read(env, buf) // blocks until the RST from h1's crash
	})
	nets[0].Node("h1").SpawnOn("client", func(env transport.Env) {
		if _, err := env.Dial("h2:7000"); err != nil {
			t.Errorf("dial: %v", err)
		}
		env.Sleep(time.Hour) // killed by the crash long before this expires
	})
	plan := (&FaultPlan{}).Crash("h1", 30*time.Millisecond)
	for _, n := range nets {
		if err := n.ApplyPlan(plan); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(2); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !errors.Is(readErr, transport.ErrReset) {
		t.Errorf("server read after client crash: %v, want ErrReset", readErr)
	}
}

func TestCoupleRejectsZeroLatencyBoundary(t *testing.T) {
	g := sim.NewGroup(2)
	nets := make([]*Network, 2)
	for i := range nets {
		n := New(g.Kernel(i))
		n.AddHost("a", HostConfig{})
		n.AddHost("b", HostConfig{})
		n.Connect("a", "b", LinkConfig{}) // zero latency
		nets[i] = n
	}
	if _, err := Couple(g, nets, map[string]int{"a": 0, "b": 1}); err == nil {
		t.Fatal("Couple accepted a zero-latency boundary link")
	}
}
