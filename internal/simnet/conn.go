package simnet

import (
	"fmt"
	"io"
	"math"

	"nxcluster/internal/obs"
	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

var (
	errFirewallDenied = transport.ErrFirewallDenied
)

// listener is a bound port's accept queue.
type listener struct {
	node    *Node
	port    int
	pending *sim.Chan[*conn]
	closed  bool
}

// Addr implements transport.Listener.
func (l *listener) Addr() string { return transport.JoinAddr(l.node.name, l.port) }

// Accept implements transport.Listener.
func (l *listener) Accept(env transport.Env) (transport.Conn, error) {
	p := procOf(env, "Accept")
	c, err := l.pending.Recv(p)
	if err != nil {
		return nil, transport.ErrClosed
	}
	return c, nil
}

// Close implements transport.Listener.
func (l *listener) Close(env transport.Env) error {
	if l.closed {
		return transport.ErrClosed
	}
	l.closed = true
	delete(l.node.listeners, l.port)
	l.pending.Close()
	return nil
}

// listen binds a listener on the node.
func (nd *Node) listen(port int) (*listener, error) {
	if !nd.isHost {
		return nil, fmt.Errorf("simnet: %s is not a host", nd.name)
	}
	if nd.crashed {
		return nil, fmt.Errorf("simnet: listen on %s: %w", nd.name, transport.ErrHostDown)
	}
	if port == 0 {
		for nd.listeners[nd.nextPort] != nil {
			nd.nextPort++
		}
		port = nd.nextPort
		nd.nextPort++
	}
	if nd.listeners[port] != nil {
		return nil, fmt.Errorf("simnet: %s: port %d already in use", nd.name, port)
	}
	l := &listener{node: nd, port: port, pending: sim.NewChan[*conn](nd.net.K, math.MaxInt32)}
	nd.listeners[port] = l
	return l, nil
}

// inSeg is one received segment awaiting Read; off marks how much of it has
// been consumed.
type inSeg struct {
	buf []byte
	off int
}

// conn is one endpoint of an established virtual stream.
type conn struct {
	node   *Node
	local  string
	remote string
	path   []*linkDir // toward the peer
	peer   *conn

	// Received segments, FIFO; inboxHead advances instead of shifting, and
	// fully-consumed buffers return to the network's segment pool.
	inbox        []inSeg
	inboxHead    int
	readCond     *sim.Cond
	credit       int
	creditCond   *sim.Cond
	closed       bool // local Close called
	remoteClosed bool // peer FIN received
	aborted      bool // local Abort called or host crashed
	remoteReset  bool // peer RST received: the stream broke mid-flight

	// TCP-Reno flow model state (nil/zero unless the network's flow model
	// was enabled when this connection was dialed; see flow.go).
	flow     *flowState
	sendSeq  int64    // next byte sequence this endpoint will send
	recvNext int64    // next in-order byte sequence expected
	ooo      []oooSeg // out-of-order segments awaiting retransmitted holes
	finSeq   int64    // peer FIN sequence; -1 until received

	// x is non-nil when the peer endpoint lives in another partition of a
	// parallel group: peer is nil and all peer effects travel as typed wire
	// messages (see partition.go).
	x *xdesc

	// bag is the connection's trace baggage: the dialer's ambient trace
	// context, shared with the peer endpoint so the accepting side can
	// parent its spans under the caller's job. Out of band only — it never
	// adds wire bytes, so it cannot perturb simulated timing. Cross-
	// partition connections carry none (parallel testbeds run untraced).
	bag obs.TraceContext
}

// TraceBaggage returns the trace context attached to this connection
// (obs.BaggageOf is the portable extraction).
func (c *conn) TraceBaggage() obs.TraceContext { return c.bag }

// SetTraceBaggage attaches a trace context to both endpoints of the
// connection (obs.SetBaggage is the portable setter). No-op effect on the
// peer for cross-partition conns, whose peer lives in another kernel.
func (c *conn) SetTraceBaggage(tc obs.TraceContext) {
	c.bag = tc
	if c.peer != nil {
		c.peer.bag = tc
	}
}

func (c *conn) pushInbox(seg []byte) {
	c.inbox = append(c.inbox, inSeg{buf: seg})
}

// dial performs the connection handshake from nd to addr, blocking p for one
// path round trip. Firewall denial surfaces immediately (reject semantics;
// a drop-style firewall would instead time the dialer out — the distinction
// does not affect any experiment). tctx is the dialing process's ambient
// trace context: the dial span parents under it and the new connection
// carries it as baggage for the accepting side.
func (nd *Node) dial(p *sim.Proc, tctx obs.TraceContext, addr string) (transport.Conn, error) {
	host, port, err := transport.SplitAddr(addr)
	if err != nil {
		return nil, err
	}
	dst := nd.net.nodes[host]
	if dst == nil || !dst.isHost {
		return nil, fmt.Errorf("simnet: dial %s: %w", addr, transport.ErrNoRoute)
	}
	if err := nd.net.checkFirewalls(nd, dst, port); err != nil {
		return nil, err
	}
	path := nd.net.route(nd, dst)
	if path == nil && nd != dst {
		return nil, fmt.Errorf("simnet: dial %s: %w", addr, transport.ErrNoRoute)
	}

	var dialed *conn
	var dialErr error
	n := nd.net
	var span obs.TraceContext
	if o := n.Obs; o != nil {
		span = o.BeginChild(n.K.Now(), tctx, "net", "dial", nd.name, obs.Str("addr", addr))
	}
	if pt := n.part; pt != nil && pt.owner[dst.name] != pt.idx {
		dialed, dialErr = pt.dialX(p, nd, port, path)
		return nd.finishDial(span, addr, dialed, dialErr)
	}
	done := sim.NewEvent(nd.net.K)
	n.send(path, ctlSize, func() {
		if nd.crashed {
			// The dialer's host died while the SYN was in flight; nobody is
			// left to answer to, so the attempt evaporates.
			return
		}
		if dst.crashed {
			n.send(reversePath(path), ctlSize, func() {
				dialErr = transport.ErrHostDown
				done.Set()
			})
			return
		}
		l := dst.listeners[port]
		if l == nil || l.closed {
			n.send(reversePath(path), ctlSize, func() {
				dialErr = transport.ErrRefused
				done.Set()
			})
			return
		}
		n.nextConn++
		localAddr := transport.JoinAddr(nd.name, 50000+n.nextConn)
		remoteAddr := transport.JoinAddr(dst.name, port)
		cDial := &conn{
			node: nd, local: localAddr, remote: remoteAddr, path: path,
			readCond: sim.NewCond(n.K), credit: DefaultWindow, creditCond: sim.NewCond(n.K),
			finSeq: -1,
		}
		cAcc := &conn{
			node: dst, local: remoteAddr, remote: localAddr, path: reversePath(path),
			readCond: sim.NewCond(n.K), credit: DefaultWindow, creditCond: sim.NewCond(n.K),
			finSeq: -1,
		}
		cDial.peer, cAcc.peer = cAcc, cDial
		cDial.bag, cAcc.bag = tctx, tctx
		if n.flowOn && len(path) > 0 {
			cDial.flow = n.newFlowState(cDial.path, localAddr+">"+remoteAddr)
			cAcc.flow = n.newFlowState(cAcc.path, remoteAddr+">"+localAddr)
		}
		if err := l.pending.TrySend(cAcc); err != nil {
			n.send(reversePath(path), ctlSize, func() {
				dialErr = transport.ErrRefused
				done.Set()
			})
			return
		}
		nd.trackConn(cDial)
		dst.trackConn(cAcc)
		n.send(reversePath(path), ctlSize, func() {
			dialed = cDial
			done.Set()
		})
	})
	done.Wait(p)
	return nd.finishDial(span, addr, dialed, dialErr)
}

// finishDial closes the dial trace span and wraps the handshake outcome.
func (nd *Node) finishDial(span obs.TraceContext, addr string, dialed *conn, dialErr error) (transport.Conn, error) {
	n := nd.net
	if o := n.Obs; o != nil {
		if dialErr != nil {
			o.EndSpan(n.K.Now(), span, "net", "dial", nd.name, obs.Str("err", dialErr.Error()))
		} else {
			o.EndSpan(n.K.Now(), span, "net", "dial", nd.name, obs.Str("addr", addr))
		}
	}
	if dialErr != nil {
		return nil, fmt.Errorf("simnet: dial %s: %w", addr, dialErr)
	}
	return dialed, nil
}

// Read implements transport.Conn.
func (c *conn) Read(env transport.Env, b []byte) (int, error) {
	p := procOf(env, "Read")
	for {
		if c.inboxHead < len(c.inbox) {
			seg := &c.inbox[c.inboxHead]
			n := copy(b, seg.buf[seg.off:])
			seg.off += n
			if seg.off == len(seg.buf) {
				c.node.net.putSeg(seg.buf)
				seg.buf = nil
				c.inboxHead++
				if c.inboxHead == len(c.inbox) {
					c.inbox = c.inbox[:0]
					c.inboxHead = 0
				}
			}
			return n, nil
		}
		if c.remoteReset {
			return 0, transport.ErrReset
		}
		if c.remoteClosed {
			return 0, io.EOF
		}
		if c.aborted {
			return 0, transport.ErrReset
		}
		if c.closed {
			return 0, transport.ErrClosed
		}
		c.readCond.Wait(p)
	}
}

// Write implements transport.Conn. Data is segmented at the network MTU;
// each segment consumes window credit that returns when the segment lands in
// the peer's buffer.
func (c *conn) Write(env transport.Env, b []byte) (int, error) {
	p := procOf(env, "Write")
	total := 0
	mtu := c.node.net.MTU
	for len(b) > 0 {
		if c.aborted || c.remoteReset {
			return total, transport.ErrReset
		}
		if c.closed || c.remoteClosed {
			return total, transport.ErrClosed
		}
		chunk := len(b)
		if chunk > mtu {
			chunk = mtu
		}
		for c.credit < chunk || (c.flow != nil && c.flow.inflight+chunk > c.flow.cwnd) {
			if c.aborted || c.remoteReset {
				return total, transport.ErrReset
			}
			if c.closed || c.remoteClosed {
				return total, transport.ErrClosed
			}
			c.creditCond.Wait(p)
		}
		c.credit -= chunk
		seg := c.node.net.getSeg(chunk)
		copy(seg, b[:chunk])
		c.node.net.sendData(c, seg)
		b = b[chunk:]
		total += chunk
	}
	return total, nil
}

// Close implements transport.Conn: both directions shut down; the peer
// reads EOF after draining, and further writes on either end fail.
func (c *conn) Close(env transport.Env) error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.node.untrackConn(c)
	c.readCond.Broadcast()
	c.creditCond.Broadcast()
	fin := c.sendSeq // flow mode: EOF takes effect only after all bytes land
	if c.x != nil {
		pt := c.node.net.part
		pt.sendX(c.path, &xwire{op: opFIN, srcPart: pt.idx, dstID: c.x.peerID, finSeq: fin})
		return nil
	}
	peer := c.peer
	c.node.net.send(c.path, ctlSize, func() {
		peer.deliverFin(fin)
	})
	return nil
}

// deliverFin is the receiving side of a FIN control packet. On flow-modeled
// connections the FIN can overtake retransmitted data, so EOF is deferred
// until the byte stream is complete up to the FIN sequence.
func (c *conn) deliverFin(fin int64) {
	if c.flow != nil && c.recvNext < fin {
		c.finSeq = fin
		return
	}
	c.remoteClosed = true
	c.readCond.Broadcast()
	c.creditCond.Broadcast()
}

// Abort implements transport.Aborter: the connection is torn down abruptly
// (TCP RST). The local end is dead immediately; the RST propagates along the
// path and makes the peer's pending and future Read/Write calls fail with
// transport.ErrReset instead of a clean EOF.
func (c *conn) Abort(env transport.Env) error {
	procOf(env, "Abort") // assert the caller belongs to this network
	if c.closed {
		return nil
	}
	c.reset()
	if c.x != nil {
		pt := c.node.net.part
		pt.sendX(c.path, &xwire{op: opRST, srcPart: pt.idx, dstID: c.x.peerID})
		return nil
	}
	peer := c.peer
	c.node.net.send(c.path, ctlSize, func() {
		peer.deliverReset()
	})
	return nil
}

// reset marks the local endpoint dead: buffered data is discarded, blocked
// readers and writers wake with ErrReset. Used by Abort and by host crashes.
func (c *conn) reset() {
	c.closed, c.aborted = true, true
	for i := c.inboxHead; i < len(c.inbox); i++ {
		c.node.net.putSeg(c.inbox[i].buf)
		c.inbox[i].buf = nil
	}
	c.inbox = c.inbox[:0]
	c.inboxHead = 0
	for i := range c.ooo {
		c.node.net.putSeg(c.ooo[i].buf)
		c.ooo[i].buf = nil
	}
	c.ooo = nil
	if c.x != nil {
		// Late cross-partition messages for a dead endpoint drop harmlessly.
		delete(c.node.net.part.xconns, c.x.id)
	}
	c.node.untrackConn(c)
	c.readCond.Broadcast()
	c.creditCond.Broadcast()
}

// deliverReset is the receiving side of an RST control packet.
func (c *conn) deliverReset() {
	c.remoteReset = true
	c.readCond.Broadcast()
	c.creditCond.Broadcast()
}

// LocalAddr implements transport.Conn.
func (c *conn) LocalAddr() string { return c.local }

// RemoteAddr implements transport.Conn.
func (c *conn) RemoteAddr() string { return c.remote }
