package simnet

import (
	"fmt"
	"time"

	"nxcluster/internal/obs"
	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

// Env is the simulated implementation of transport.Env: one logical process
// (a *sim.Proc) running on one host of the virtual network.
type Env struct {
	node   *Node
	p      *sim.Proc
	daemon bool
	// tctx is the process's ambient trace context: spans opened while it is
	// set parent under the traced job that reached this process. Children
	// inherit the spawner's context at spawn time. Purely observational —
	// it never influences scheduling or timing.
	tctx obs.TraceContext
}

var _ transport.Env = (*Env)(nil)

// Spawn starts fn as a new simulated process on the same host. The spawned
// process receives its own Env bound to a fresh kernel process. Processes
// spawned by a daemon are themselves daemons (a server's connection handlers
// should not keep the simulation alive).
func (e *Env) Spawn(name string, fn func(transport.Env)) {
	node := e.node
	tctx := e.tctx
	spawn := node.net.K.Spawn
	if e.daemon {
		spawn = node.net.K.SpawnDaemon
	}
	node.trackProc(spawn(name, func(p *sim.Proc) {
		defer node.untrackProc(p)
		fn(&Env{node: node, p: p, daemon: e.daemon, tctx: tctx})
	}))
}

// SpawnService starts fn as a daemon process on the same host regardless of
// the spawner's own status: service loops never count as pending work.
func (e *Env) SpawnService(name string, fn func(transport.Env)) {
	node := e.node
	tctx := e.tctx
	node.trackProc(node.net.K.SpawnDaemon(name, func(p *sim.Proc) {
		defer node.untrackProc(p)
		fn(&Env{node: node, p: p, daemon: true, tctx: tctx})
	}))
}

// Hostname implements transport.Env.
func (e *Env) Hostname() string { return e.node.name }

// Now implements transport.Env with the virtual clock.
func (e *Env) Now() time.Duration { return e.p.Now() }

// Sleep implements transport.Env in virtual time.
func (e *Env) Sleep(d time.Duration) { e.p.Sleep(d) }

// Compute implements transport.Env: it acquires one of the host's CPUs and
// holds it for d scaled by the host's speed factor, so co-located processes
// contend realistically and slow clusters take proportionally longer.
func (e *Env) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	e.node.cpus.Acquire(e.p)
	e.p.Sleep(time.Duration(float64(d) / e.node.speed))
	e.node.cpus.Release()
}

// Dial implements transport.Env.
func (e *Env) Dial(addr string) (transport.Conn, error) { return e.node.dial(e.p, e.tctx, addr) }

// Listen implements transport.Env.
func (e *Env) Listen(port int) (transport.Listener, error) { return e.node.listen(port) }

// Proc exposes the underlying kernel process for code that needs raw sim
// primitives alongside the transport API (e.g. the MPI progress engine).
func (e *Env) Proc() *sim.Proc { return e.p }

// Observer exposes the network's observability sink (nil when tracing is
// disabled). Protocol layers reach it portably with obs.From(env), which
// returns nil for environments — like real TCP — that carry none.
func (e *Env) Observer() *obs.Observer { return e.node.net.Obs }

// Rand draws from the kernel's seeded deterministic random stream; see
// transport.RandOf for the portable extraction used by retry jitter.
func (e *Env) Rand() uint64 { return e.node.net.K.Rand() }

// TraceContext returns the process's ambient trace context; obs.CtxOf is
// the portable extraction instrumentation sites use.
func (e *Env) TraceContext() obs.TraceContext { return e.tctx }

// SetTraceContext installs the process's ambient trace context (obs.SetCtx
// is the portable setter). Processes spawned afterwards inherit it.
func (e *Env) SetTraceContext(tc obs.TraceContext) { e.tctx = tc }

// Node exposes the underlying host.
func (e *Env) Node() *Node { return e.node }

// BulletinBoard implements transport.BoardEnv: partitioned networks hand out
// group-replicated boards for roster rendezvous; monolithic networks return
// nil and callers use their shared-memory path.
func (e *Env) BulletinBoard(name string) transport.BulletinBoard {
	pt := e.node.net.part
	if pt == nil {
		return nil
	}
	return pt.gk.Board(name)
}

// SpawnOn starts fn as a process on host nd; the usual way to boot daemons
// and application ranks onto the virtual testbed.
func (nd *Node) SpawnOn(name string, fn func(transport.Env)) {
	nd.trackProc(nd.net.K.Spawn(name, func(p *sim.Proc) {
		defer nd.untrackProc(p)
		fn(&Env{node: nd, p: p})
	}))
}

// SpawnDaemonOn is SpawnOn for never-exiting service processes, so that
// sim.Kernel.Run still returns once application work completes.
func (nd *Node) SpawnDaemonOn(name string, fn func(transport.Env)) {
	nd.trackProc(nd.net.K.SpawnDaemon(name, func(p *sim.Proc) {
		defer nd.untrackProc(p)
		fn(&Env{node: nd, p: p, daemon: true})
	}))
}

// procOf extracts the kernel process from a caller's Env, guarding against
// mixing environments from a different implementation.
func procOf(env transport.Env, op string) *sim.Proc {
	se, ok := env.(*Env)
	if !ok {
		panic(fmt.Sprintf("simnet: %s called with non-simnet Env %T", op, env))
	}
	return se.p
}
