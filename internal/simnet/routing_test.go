package simnet

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"nxcluster/internal/sim"
)

// TestRoutingMatchesBruteForce compares Dijkstra against an exhaustive
// shortest-path search on random small topologies.
func TestRoutingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		k := sim.New()
		n := New(k)
		nodes := 3 + rng.Intn(5)
		for i := 0; i < nodes; i++ {
			n.AddHost(fmt.Sprintf("h%d", i), HostConfig{})
		}
		// Random edges with random latencies.
		type edge struct {
			a, b int
			lat  time.Duration
		}
		var edges []edge
		adj := make([][]time.Duration, nodes)
		for i := range adj {
			adj[i] = make([]time.Duration, nodes)
		}
		for i := 0; i < nodes; i++ {
			for j := i + 1; j < nodes; j++ {
				if rng.Intn(2) == 0 {
					lat := time.Duration(1+rng.Intn(20)) * time.Millisecond
					edges = append(edges, edge{i, j, lat})
					adj[i][j], adj[j][i] = lat, lat
					n.Connect(fmt.Sprintf("h%d", i), fmt.Sprintf("h%d", j), LinkConfig{Latency: lat})
				}
			}
		}
		// Brute-force all-pairs shortest latency (Floyd-Warshall).
		const inf = time.Duration(1) << 60
		dist := make([][]time.Duration, nodes)
		for i := range dist {
			dist[i] = make([]time.Duration, nodes)
			for j := range dist[i] {
				switch {
				case i == j:
					dist[i][j] = 0
				case adj[i][j] > 0:
					dist[i][j] = adj[i][j]
				default:
					dist[i][j] = inf
				}
			}
		}
		for via := 0; via < nodes; via++ {
			for i := 0; i < nodes; i++ {
				for j := 0; j < nodes; j++ {
					if dist[i][via]+dist[via][j] < dist[i][j] {
						dist[i][j] = dist[i][via] + dist[via][j]
					}
				}
			}
		}
		for i := 0; i < nodes; i++ {
			for j := 0; j < nodes; j++ {
				if i == j {
					continue
				}
				got, err := n.PathLatency(fmt.Sprintf("h%d", i), fmt.Sprintf("h%d", j))
				if dist[i][j] == inf {
					if err == nil {
						t.Fatalf("trial %d: route found between disconnected h%d,h%d", trial, i, j)
					}
					continue
				}
				if err != nil {
					t.Fatalf("trial %d: no route h%d->h%d, want %v", trial, i, j, dist[i][j])
				}
				if got != dist[i][j] {
					t.Fatalf("trial %d: latency h%d->h%d = %v, want %v", trial, i, j, got, dist[i][j])
				}
			}
		}
		k.Shutdown()
	}
}

// TestRoutingSymmetricAndCacheInvalidation: symmetric links give symmetric
// latencies, and adding a shortcut node invalidates cached routes.
func TestRoutingSymmetricAndCacheInvalidation(t *testing.T) {
	k := sim.New()
	defer k.Shutdown()
	n := New(k)
	n.AddHost("a", HostConfig{})
	n.AddHost("b", HostConfig{})
	n.AddRouter("r", "")
	n.Connect("a", "r", LinkConfig{Latency: 10 * time.Millisecond})
	n.Connect("r", "b", LinkConfig{Latency: 10 * time.Millisecond})
	ab, _ := n.PathLatency("a", "b")
	ba, _ := n.PathLatency("b", "a")
	if ab != ba || ab != 20*time.Millisecond {
		t.Fatalf("asymmetric or wrong: ab=%v ba=%v", ab, ba)
	}
	// A direct shortcut must replace the cached two-hop route.
	n.Connect("a", "b", LinkConfig{Latency: time.Millisecond})
	ab2, _ := n.PathLatency("a", "b")
	if ab2 != time.Millisecond {
		t.Fatalf("route cache not invalidated: %v", ab2)
	}
}
