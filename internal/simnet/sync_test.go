package simnet

import (
	"testing"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

func TestSimQueueBlockingAndTimeout(t *testing.T) {
	k, n := twoHosts(LinkConfig{})
	n.Node("a").SpawnOn("driver", func(env transport.Env) {
		q := transport.NewQueue[int](env)
		// TryGet on empty.
		if _, ok := q.TryGet(env); ok {
			t.Error("TryGet on empty queue")
		}
		// Timed get expires in virtual time.
		start := env.Now()
		_, ok, timedOut := q.GetTimeout(env, 2*time.Second)
		if ok || !timedOut {
			t.Errorf("GetTimeout = ok=%v timedOut=%v", ok, timedOut)
		}
		if env.Now()-start != 2*time.Second {
			t.Errorf("timeout took %v", env.Now()-start)
		}
		// Put then get.
		q.Put(env, 42)
		if q.Len() != 1 {
			t.Errorf("Len = %d", q.Len())
		}
		v, ok := q.Get(env)
		if !ok || v != 42 {
			t.Errorf("Get = %d, %v", v, ok)
		}
		// Close drains then reports !ok.
		q.Put(env, 1)
		q.Close()
		if v, ok := q.Get(env); !ok || v != 1 {
			t.Errorf("drain after close = %d, %v", v, ok)
		}
		if _, ok := q.Get(env); ok {
			t.Error("Get on closed empty queue")
		}
		// Put on closed drops silently.
		q.Put(env, 9)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
}

func TestSimQueueCrossProcess(t *testing.T) {
	k, n := twoHosts(LinkConfig{})
	var got int
	n.Node("a").SpawnOn("driver", func(env transport.Env) {
		q := transport.NewQueue[int](env)
		env.Spawn("producer", func(e transport.Env) {
			e.Sleep(time.Second)
			q.Put(e, 7)
		})
		v, ok := q.Get(env)
		if !ok {
			t.Error("Get failed")
		}
		got = v
		if env.Now() != time.Second {
			t.Errorf("woke at %v", env.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if got != 7 {
		t.Fatalf("got %d", got)
	}
}

func TestSimMutexSerializes(t *testing.T) {
	k, n := twoHosts(LinkConfig{})
	var mu transport.Mutex
	inCS := false
	violations := 0
	made := sim.NewEvent(k)
	n.Node("a").SpawnOn("init", func(env transport.Env) {
		mu = env.NewMutex()
		made.Set()
	})
	for i := 0; i < 3; i++ {
		n.Node("a").SpawnOn("worker", func(env transport.Env) {
			p := env.(*Env).Proc()
			made.Wait(p)
			mu.Lock(env)
			if inCS {
				violations++
			}
			inCS = true
			env.Sleep(time.Second)
			inCS = false
			mu.Unlock(env)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("3 serialized sections took %v", k.Now())
	}
}

func TestProcOfPanicsOnForeignEnv(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("procOf accepted a foreign Env")
		}
	}()
	procOf(transport.NewTCPEnv("x"), "test")
}
