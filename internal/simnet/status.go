package simnet

import (
	"sort"
	"time"
)

// HostStatus is a point-in-time view of one host, the raw material for the
// GIS-style rows the monitoring plane publishes into MDS.
type HostStatus struct {
	Name  string
	Site  string
	Up    bool // false while crashed
	Procs int  // live tracked processes
	Conns int  // open connection endpoints
	CPUs  int
}

// HostStatuses reports every host (not routers), sorted by name. Safe to
// call from kernel context; it only reads state.
func (n *Network) HostStatuses() []HostStatus {
	out := make([]HostStatus, 0, len(n.nodes))
	for _, nd := range n.nodes {
		if !nd.isHost {
			continue
		}
		out = append(out, HostStatus{
			Name:  nd.name,
			Site:  nd.site,
			Up:    !nd.crashed,
			Procs: len(nd.procs),
			Conns: len(nd.conns),
			CPUs:  nd.cpuCount,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LinkStatus is a point-in-time view of one link direction.
type LinkStatus struct {
	Label     string // "from>to"
	Up        bool   // false while the direction is out of service
	Bytes     int64  // cumulative bytes serialized
	Stalled   int64  // cumulative bytes that hit an outage at pickup
	Busy      time.Duration
	Queue     int // transfers waiting (excluding the one in service)
	Bandwidth int64
	// ExtraLatency/ExtraLoss are the direction's current gray degradation
	// (SetLinkDegraded); zero on a healthy link.
	ExtraLatency time.Duration
	ExtraLoss    float64
}

// LinkStatuses reports every link direction that has ever carried or queued
// traffic, sorted by label. Idle never-used directions are skipped so wide
// topologies don't flood the directory with all-zero rows.
func (n *Network) LinkStatuses() []LinkStatus {
	var out []LinkStatus
	for _, nd := range n.nodes {
		for _, ld := range nd.links {
			if ld.from != nd {
				continue // each direction is owned by its source node
			}
			if ld.bytes == 0 && ld.stalled == 0 && len(ld.queue) == ld.qhead && ld.cur == nil {
				continue
			}
			out = append(out, LinkStatus{
				Label:        ld.label,
				Up:           !ld.down,
				Bytes:        ld.bytes,
				Stalled:      ld.stalled,
				Busy:         ld.busy,
				Queue:        len(ld.queue) - ld.qhead,
				Bandwidth:    ld.cfg.Bandwidth,
				ExtraLatency: ld.extraLat,
				ExtraLoss:    ld.extraLoss,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}
