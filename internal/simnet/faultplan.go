package simnet

import (
	"fmt"
	"sort"
	"time"
)

// FaultKind enumerates the fault injections a FaultPlan can schedule.
type FaultKind int

const (
	// FaultLinkDown takes the duplex link A<->B out of service.
	FaultLinkDown FaultKind = iota
	// FaultLinkUp restores the duplex link A<->B.
	FaultLinkUp
	// FaultCrash crashes host A (CrashHost).
	FaultCrash
	// FaultRestart restarts host A (RestartHost).
	FaultRestart
)

func (k FaultKind) String() string {
	switch k {
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one scheduled injection. A names the host (crash/restart) or one
// link endpoint; B names the other link endpoint for link faults.
type Fault struct {
	At   time.Duration
	Kind FaultKind
	A    string
	B    string
}

// FaultPlan is a declarative schedule of fault injections, executed by
// kernel timers when applied to a network. Plans are plain data: a seeded
// generator can build one up front, the harness can log it, and replaying
// the same plan yields a bit-identical run.
type FaultPlan struct {
	Faults []Fault
}

// LinkOutage schedules the duplex link a<->b down at from and back up at to.
func (p *FaultPlan) LinkOutage(a, b string, from, to time.Duration) *FaultPlan {
	p.Faults = append(p.Faults,
		Fault{At: from, Kind: FaultLinkDown, A: a, B: b},
		Fault{At: to, Kind: FaultLinkUp, A: a, B: b})
	return p
}

// CrashWindow schedules host h to crash at from and restart at to.
func (p *FaultPlan) CrashWindow(h string, from, to time.Duration) *FaultPlan {
	p.Faults = append(p.Faults,
		Fault{At: from, Kind: FaultCrash, A: h},
		Fault{At: to, Kind: FaultRestart, A: h})
	return p
}

// Crash schedules host h to crash at t with no restart.
func (p *FaultPlan) Crash(h string, t time.Duration) *FaultPlan {
	p.Faults = append(p.Faults, Fault{At: t, Kind: FaultCrash, A: h})
	return p
}

// String renders the plan one fault per line, in execution order.
func (p *FaultPlan) String() string {
	faults := p.ordered()
	s := ""
	for _, f := range faults {
		target := f.A
		if f.B != "" {
			target += "<->" + f.B
		}
		s += fmt.Sprintf("%12v %-9s %s\n", f.At, f.Kind, target)
	}
	return s
}

// ordered returns the faults sorted by (At, insertion order).
func (p *FaultPlan) ordered() []Fault {
	out := make([]Fault, len(p.Faults))
	copy(out, p.Faults)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// ApplyPlan validates the plan against the topology and schedules every
// fault on the kernel timeline. It must be called before the faults' times
// pass (normally before Run). Faults at the same instant execute in
// insertion order.
func (n *Network) ApplyPlan(p *FaultPlan) error {
	for _, f := range p.Faults {
		switch f.Kind {
		case FaultLinkDown, FaultLinkUp:
			na, nb := n.nodes[f.A], n.nodes[f.B]
			if na == nil || nb == nil {
				return fmt.Errorf("simnet: fault plan: unknown node in link %q<->%q", f.A, f.B)
			}
			linked := false
			for _, ld := range na.links {
				if ld.to == nb {
					linked = true
				}
			}
			if !linked {
				return fmt.Errorf("simnet: fault plan: no link %q<->%q", f.A, f.B)
			}
		case FaultCrash, FaultRestart:
			nd := n.nodes[f.A]
			if nd == nil || !nd.isHost {
				return fmt.Errorf("simnet: fault plan: %q is not a host", f.A)
			}
		default:
			return fmt.Errorf("simnet: fault plan: unknown fault kind %v", f.Kind)
		}
	}
	now := n.K.Now()
	for _, f := range p.ordered() {
		f := f
		d := f.At - now
		if d < 0 {
			d = 0
		}
		n.K.After(d, func() { n.execute(f) })
	}
	return nil
}

func (n *Network) execute(f Fault) {
	switch f.Kind {
	case FaultLinkDown:
		n.SetLinkDown(f.A, f.B)
	case FaultLinkUp:
		n.SetLinkUp(f.A, f.B)
	case FaultCrash:
		if !n.Owns(f.A) {
			return // the owning partition executes host faults
		}
		if err := n.CrashHost(f.A); err != nil {
			panic(err) // validated at ApplyPlan; unreachable
		}
	case FaultRestart:
		if !n.Owns(f.A) {
			return
		}
		if err := n.RestartHost(f.A); err != nil {
			panic(err)
		}
	}
}
