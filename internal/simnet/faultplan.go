package simnet

import (
	"fmt"
	"sort"
	"time"
)

// FaultKind enumerates the fault injections a FaultPlan can schedule.
type FaultKind int

const (
	// FaultLinkDown takes the duplex link A<->B out of service.
	FaultLinkDown FaultKind = iota
	// FaultLinkUp restores the duplex link A<->B.
	FaultLinkUp
	// FaultCrash crashes host A (CrashHost).
	FaultCrash
	// FaultRestart restarts host A (RestartHost).
	FaultRestart
	// FaultDegrade applies gray degradation to the directed link A->B:
	// AddLatency of extra propagation delay on every transfer, plus LossPct
	// of extra segment loss for flow-modeled connections (plain reliable
	// streams are lossless by construction, so they see only the latency).
	FaultDegrade
	// FaultClearDegrade restores the directed link A->B to its configured
	// latency and loss rate.
	FaultClearDegrade
	// FaultPartition severs every link with one endpoint in GroupA and the
	// other in GroupB, atomically at a single instant.
	FaultPartition
	// FaultHeal restores every GroupA<->GroupB link cut by FaultPartition.
	FaultHeal
	// FaultSlowHost divides host A's compute speed by Factor, modeling a
	// straggler: Compute calls take Factor times longer; Sleep is unscaled.
	FaultSlowHost
	// FaultRestoreHost returns host A to its configured speed.
	FaultRestoreHost
)

func (k FaultKind) String() string {
	switch k {
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	case FaultDegrade:
		return "degrade"
	case FaultClearDegrade:
		return "clear-degrade"
	case FaultPartition:
		return "partition"
	case FaultHeal:
		return "heal"
	case FaultSlowHost:
		return "slow-host"
	case FaultRestoreHost:
		return "restore-host"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one scheduled injection. A names the host (crash/restart/slow) or
// one link endpoint; B names the other link endpoint for link faults.
type Fault struct {
	At   time.Duration
	Kind FaultKind
	A    string
	B    string

	// Seq is the insertion index, assigned by the builder methods. ordered()
	// breaks same-instant ties on it, so faults at the same instant always
	// apply in insertion order regardless of kind. Hand-built Fault slices
	// may leave Seq zero; the stable sort then preserves slice order.
	Seq int

	// AddLatency and LossPct parameterize FaultDegrade.
	AddLatency time.Duration
	LossPct    float64
	// Factor parameterizes FaultSlowHost (must be > 0; > 1 slows).
	Factor float64
	// GroupA and GroupB parameterize FaultPartition / FaultHeal.
	GroupA, GroupB []string
}

// FaultPlan is a declarative schedule of fault injections, executed by
// kernel timers when applied to a network. Plans are plain data: a seeded
// generator can build one up front, the harness can log it, and replaying
// the same plan yields a bit-identical run.
type FaultPlan struct {
	Faults []Fault

	// err records the first malformed builder call (e.g. a LinkFlap with an
	// impossible duty cycle); ApplyPlan refuses such plans.
	err error
}

// add appends f with its insertion sequence number.
func (p *FaultPlan) add(f Fault) *FaultPlan {
	f.Seq = len(p.Faults)
	p.Faults = append(p.Faults, f)
	return p
}

// fail records a builder error; the first one wins and surfaces at ApplyPlan.
func (p *FaultPlan) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// Err returns the first builder error, if any. ApplyPlan checks it, so
// chained builders don't need per-call error handling.
func (p *FaultPlan) Err() error { return p.err }

// LinkOutage schedules the duplex link a<->b down at from and back up at to.
func (p *FaultPlan) LinkOutage(a, b string, from, to time.Duration) *FaultPlan {
	p.add(Fault{At: from, Kind: FaultLinkDown, A: a, B: b})
	p.add(Fault{At: to, Kind: FaultLinkUp, A: a, B: b})
	return p
}

// CrashWindow schedules host h to crash at from and restart at to.
func (p *FaultPlan) CrashWindow(h string, from, to time.Duration) *FaultPlan {
	p.add(Fault{At: from, Kind: FaultCrash, A: h})
	p.add(Fault{At: to, Kind: FaultRestart, A: h})
	return p
}

// Crash schedules host h to crash at t with no restart.
func (p *FaultPlan) Crash(h string, t time.Duration) *FaultPlan {
	return p.add(Fault{At: t, Kind: FaultCrash, A: h})
}

// Partition severs every link between groupA and groupB at from, and heals
// the cut at to (to <= from schedules no heal — a permanent partition).
// Severing and healing are atomic: all cross-group links change state in one
// kernel event, so no traffic ever observes a half-partitioned network.
func (p *FaultPlan) Partition(groupA, groupB []string, from, to time.Duration) *FaultPlan {
	p.add(Fault{At: from, Kind: FaultPartition, GroupA: groupA, GroupB: groupB})
	if to > from {
		p.add(Fault{At: to, Kind: FaultHeal, GroupA: groupA, GroupB: groupB})
	}
	return p
}

// Heal schedules an explicit restore of the groupA<->groupB cut at t, for
// plans that partition once and heal on a separate schedule.
func (p *FaultPlan) Heal(groupA, groupB []string, t time.Duration) *FaultPlan {
	return p.add(Fault{At: t, Kind: FaultHeal, GroupA: groupA, GroupB: groupB})
}

// LinkDegrade applies gray degradation to the DIRECTED link a->b between
// from and to: addLatency of extra propagation delay on everything, and
// lossPct of extra loss for flow-modeled data segments. Asymmetric WANs are
// the point — degrade the reverse direction with a second call. to <= from
// leaves the degradation in place for the rest of the run.
func (p *FaultPlan) LinkDegrade(a, b string, addLatency time.Duration, lossPct float64, from, to time.Duration) *FaultPlan {
	p.add(Fault{At: from, Kind: FaultDegrade, A: a, B: b, AddLatency: addLatency, LossPct: lossPct})
	if to > from {
		p.add(Fault{At: to, Kind: FaultClearDegrade, A: a, B: b})
	}
	return p
}

// LinkFlap models a flapping link: starting at from, each period opens with
// duty*period of outage followed by (1-duty)*period of service, until to
// (the link is guaranteed up at to). It expands into plain down/up faults at
// build time, so mirrors, logging, and ordering all see ordinary link faults.
func (p *FaultPlan) LinkFlap(a, b string, period time.Duration, duty float64, from, to time.Duration) *FaultPlan {
	if period <= 0 || duty <= 0 || duty >= 1 || to <= from {
		p.fail(fmt.Errorf("simnet: LinkFlap(%q, %q): need period > 0, 0 < duty < 1, to > from", a, b))
		return p
	}
	downFor := time.Duration(duty * float64(period))
	for t := from; t < to; t += period {
		up := t + downFor
		if up > to {
			up = to
		}
		p.add(Fault{At: t, Kind: FaultLinkDown, A: a, B: b})
		p.add(Fault{At: up, Kind: FaultLinkUp, A: a, B: b})
	}
	return p
}

// SlowHost divides host h's compute speed by factor between from and to,
// modeling a straggler (thermal throttling, a failing disk, a noisy
// neighbor). to <= from leaves the host slow for the rest of the run.
func (p *FaultPlan) SlowHost(h string, factor float64, from, to time.Duration) *FaultPlan {
	p.add(Fault{At: from, Kind: FaultSlowHost, A: h, Factor: factor})
	if to > from {
		p.add(Fault{At: to, Kind: FaultRestoreHost, A: h})
	}
	return p
}

// String renders the plan one fault per line, in execution order.
func (p *FaultPlan) String() string {
	faults := p.ordered()
	s := ""
	for _, f := range faults {
		target := f.A
		switch f.Kind {
		case FaultLinkDown, FaultLinkUp:
			target = f.A + "<->" + f.B
		case FaultDegrade:
			target = fmt.Sprintf("%s->%s +%v loss=%.2f", f.A, f.B, f.AddLatency, f.LossPct)
		case FaultClearDegrade:
			target = f.A + "->" + f.B
		case FaultPartition, FaultHeal:
			target = fmt.Sprintf("%v | %v", f.GroupA, f.GroupB)
		case FaultSlowHost:
			target = fmt.Sprintf("%s /%.1f", f.A, f.Factor)
		}
		s += fmt.Sprintf("%12v %-13s %s\n", f.At, f.Kind, target)
	}
	return s
}

// ordered returns the faults sorted by time, same-instant ties broken by
// insertion sequence — never by kind, so a plan that downs a link and crashes
// a host at the same instant applies them exactly as written.
func (p *FaultPlan) ordered() []Fault {
	out := make([]Fault, len(p.Faults))
	copy(out, p.Faults)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// validateLink checks that the duplex link a<->b exists.
func (n *Network) validateLink(a, b string) error {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return fmt.Errorf("simnet: fault plan: unknown node in link %q<->%q", a, b)
	}
	for _, ld := range na.links {
		if ld.to == nb {
			return nil
		}
	}
	return fmt.Errorf("simnet: fault plan: no link %q<->%q", a, b)
}

// ApplyPlan validates the plan against the topology and schedules every
// fault on the kernel timeline. It must be called before the faults' times
// pass (normally before Run). Faults at the same instant execute in
// insertion order.
func (n *Network) ApplyPlan(p *FaultPlan) error {
	if p.err != nil {
		return p.err
	}
	for _, f := range p.Faults {
		switch f.Kind {
		case FaultLinkDown, FaultLinkUp:
			if err := n.validateLink(f.A, f.B); err != nil {
				return err
			}
		case FaultDegrade, FaultClearDegrade:
			if err := n.validateLink(f.A, f.B); err != nil {
				return err
			}
			if f.Kind == FaultDegrade {
				if f.AddLatency < 0 {
					return fmt.Errorf("simnet: fault plan: degrade %q->%q: negative latency %v", f.A, f.B, f.AddLatency)
				}
				if f.LossPct < 0 || f.LossPct >= 1 {
					return fmt.Errorf("simnet: fault plan: degrade %q->%q: loss %v outside [0,1)", f.A, f.B, f.LossPct)
				}
			}
		case FaultCrash, FaultRestart:
			nd := n.nodes[f.A]
			if nd == nil || !nd.isHost {
				return fmt.Errorf("simnet: fault plan: %q is not a host", f.A)
			}
		case FaultSlowHost, FaultRestoreHost:
			nd := n.nodes[f.A]
			if nd == nil || !nd.isHost {
				return fmt.Errorf("simnet: fault plan: %q is not a host", f.A)
			}
			if f.Kind == FaultSlowHost && f.Factor <= 0 {
				return fmt.Errorf("simnet: fault plan: slow-host %q: factor %v must be > 0", f.A, f.Factor)
			}
		case FaultPartition, FaultHeal:
			if len(f.GroupA) == 0 || len(f.GroupB) == 0 {
				return fmt.Errorf("simnet: fault plan: partition with an empty group")
			}
			for _, name := range append(append([]string{}, f.GroupA...), f.GroupB...) {
				if n.nodes[name] == nil {
					return fmt.Errorf("simnet: fault plan: partition names unknown node %q", name)
				}
			}
		default:
			return fmt.Errorf("simnet: fault plan: unknown fault kind %v", f.Kind)
		}
	}
	now := n.K.Now()
	for _, f := range p.ordered() {
		f := f
		d := f.At - now
		if d < 0 {
			d = 0
		}
		n.K.After(d, func() { n.execute(f) })
	}
	return nil
}

func (n *Network) execute(f Fault) {
	switch f.Kind {
	case FaultLinkDown:
		n.SetLinkDown(f.A, f.B)
	case FaultLinkUp:
		n.SetLinkUp(f.A, f.B)
	case FaultDegrade:
		n.SetLinkDegraded(f.A, f.B, f.AddLatency, f.LossPct)
	case FaultClearDegrade:
		n.SetLinkDegraded(f.A, f.B, 0, 0)
	case FaultPartition:
		n.SetPartition(f.GroupA, f.GroupB, true)
	case FaultHeal:
		n.SetPartition(f.GroupA, f.GroupB, false)
	case FaultCrash:
		if !n.Owns(f.A) {
			return // the owning partition executes host faults
		}
		if err := n.CrashHost(f.A); err != nil {
			panic(err) // validated at ApplyPlan; unreachable
		}
	case FaultRestart:
		if !n.Owns(f.A) {
			return
		}
		if err := n.RestartHost(f.A); err != nil {
			panic(err)
		}
	case FaultSlowHost:
		if !n.Owns(f.A) {
			return
		}
		if err := n.SetHostSpeed(f.A, f.Factor); err != nil {
			panic(err)
		}
	case FaultRestoreHost:
		if !n.Owns(f.A) {
			return
		}
		if err := n.SetHostSpeed(f.A, 1); err != nil {
			panic(err)
		}
	}
}
