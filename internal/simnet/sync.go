package simnet

import (
	"math"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

// simMutex implements transport.Mutex on the virtual-time kernel.
type simMutex struct{ mu *sim.Mutex }

func (m simMutex) Lock(env transport.Env)   { m.mu.Lock(procOf(env, "Mutex.Lock")) }
func (m simMutex) Unlock(env transport.Env) { m.mu.Unlock() }

// NewMutex implements transport.Env.
func (e *Env) NewMutex() transport.Mutex {
	return simMutex{mu: sim.NewMutex(e.node.net.K)}
}

// simQueue implements transport.AnyQueue over a sim channel.
type simQueue struct{ ch *sim.Chan[interface{}] }

// NewQueue implements transport.Env.
func (e *Env) NewQueue() transport.AnyQueue {
	return simQueue{ch: sim.NewChan[interface{}](e.node.net.K, math.MaxInt32)}
}

func (q simQueue) Put(env transport.Env, v interface{}) {
	if err := q.ch.TrySend(v); err != nil {
		// Closed queue: drop, matching the semantics of delivering to a
		// finished consumer.
		return
	}
}

func (q simQueue) Get(env transport.Env) (interface{}, bool) {
	v, err := q.ch.Recv(procOf(env, "Queue.Get"))
	if err != nil {
		return nil, false
	}
	return v, true
}

func (q simQueue) TryGet(env transport.Env) (interface{}, bool) {
	v, err := q.ch.TryRecv()
	if err != nil {
		return nil, false
	}
	return v, true
}

func (q simQueue) GetTimeout(env transport.Env, d time.Duration) (interface{}, bool, bool) {
	v, err := q.ch.RecvTimeout(procOf(env, "Queue.GetTimeout"), d)
	switch err {
	case nil:
		return v, true, false
	case sim.ErrTimeout:
		return nil, false, true
	default:
		return nil, false, false
	}
}

func (q simQueue) Close() { q.ch.Close() }

func (q simQueue) Len() int { return q.ch.Len() }
