package simnet

import (
	"testing"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

// pingPongKernel builds a two-host network with a perpetual 4 KiB echo
// stream and steps it past connection setup, so subsequent steps exercise
// only the steady-state data plane: serialization, propagation, delivery,
// wakeup.
func pingPongKernel(t *testing.T) *sim.Kernel {
	t.Helper()
	k := sim.New()
	n := New(k)
	n.AddHost("a", HostConfig{})
	n.AddHost("b", HostConfig{})
	n.Connect("a", "b", LinkConfig{Latency: time.Millisecond, Bandwidth: 100 << 20})
	n.Node("b").SpawnDaemonOn("echo", func(env transport.Env) {
		l, err := env.Listen(1)
		if err != nil {
			t.Error(err)
			return
		}
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			nn, err := c.Read(env, buf)
			if err != nil {
				return
			}
			if _, err := c.Write(env, buf[:nn]); err != nil {
				return
			}
		}
	})
	n.Node("a").SpawnDaemonOn("src", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:1")
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		for {
			if _, err := c.Write(env, buf); err != nil {
				return
			}
			total := 0
			for total < len(buf) {
				nn, err := c.Read(env, buf[total:])
				if err != nil {
					return
				}
				total += nn
			}
		}
	})
	for i := 0; i < 20000; i++ { // handshake + segment/transfer pool warmup
		k.Step()
	}
	return k
}

// TestDeliveryZeroAlloc pins the simnet data-plane contract with no
// observer attached (Network.Obs nil, the default): steady-state message
// delivery is allocation-free. Instrumentation sites must stay behind nil
// guards so the disabled path never constructs field slices.
func TestDeliveryZeroAlloc(t *testing.T) {
	k := pingPongKernel(t)
	defer k.Shutdown()
	if avg := testing.AllocsPerRun(5000, func() { k.Step() }); avg != 0 {
		t.Errorf("simnet delivery allocates %.4f objects/op in steady state, want 0", avg)
	}
}
