package simnet

import (
	"testing"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

func TestLinkDownStallsTrafficUntilUp(t *testing.T) {
	k, n := twoHosts(LinkConfig{Latency: time.Millisecond, Bandwidth: 1 << 20})
	received := 0
	n.Node("b").SpawnDaemonOn("sink", func(env transport.Env) {
		l, _ := env.Listen(1)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 1024)
		for {
			nn, err := c.Read(env, buf)
			received += nn
			if err != nil {
				return
			}
		}
	})
	n.Node("a").SpawnOn("src", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:1")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Write(env, make([]byte, 512)); err != nil {
			t.Error(err)
		}
		env.Sleep(100 * time.Millisecond) // first burst arrives
		n.SetLinkDown("a", "b")
		_, _ = c.Write(env, make([]byte, 512)) // stalls on the wire
		env.Sleep(100 * time.Millisecond)
		if received != 512 {
			t.Errorf("received %d during outage, want 512", received)
		}
		n.SetLinkUp("a", "b")
		if _, err := c.Write(env, make([]byte, 256)); err != nil {
			t.Error(err)
		}
		env.Sleep(200 * time.Millisecond)
	})
	k.RunUntil(2 * time.Second)
	k.Shutdown()
	if received != 512+512+256 {
		t.Fatalf("received %d bytes, want %d (stalled burst delivered after revival)", received, 512+512+256)
	}
	var stalled int64
	for _, st := range n.Stats() {
		stalled += st.Stalled
	}
	if stalled != 512 {
		t.Fatalf("stalled %d bytes, want 512", stalled)
	}
}

func TestDialBlocksWhileLinkDown(t *testing.T) {
	k, n := twoHosts(LinkConfig{Latency: time.Millisecond})
	n.Node("b").SpawnDaemonOn("srv", func(env transport.Env) {
		l, _ := env.Listen(1)
		for {
			if _, err := l.Accept(env); err != nil {
				return
			}
		}
	})
	n.SetLinkDown("a", "b")
	dialed := false
	n.Node("a").SpawnOn("cli", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		if _, err := env.Dial("b:1"); err == nil {
			dialed = true
		}
	})
	// Revive the link after 500ms: a retry dial then succeeds.
	k.After(500*time.Millisecond, func() { n.SetLinkUp("a", "b") })
	k.RunUntil(400 * time.Millisecond)
	if dialed {
		t.Fatal("dial completed across a downed link")
	}
	k.Shutdown()
}

func TestSetLinkUnknownNodes(t *testing.T) {
	k, n := twoHosts(LinkConfig{})
	defer k.Shutdown()
	if n.SetLinkDown("a", "zzz") {
		t.Fatal("SetLinkDown on unknown node reported success")
	}
	if n.LinkDown("a", "zzz") {
		t.Fatal("LinkDown on unknown node")
	}
	if !n.SetLinkDown("a", "b") || !n.LinkDown("a", "b") || !n.LinkDown("b", "a") {
		t.Fatal("duplex down flag not set both ways")
	}
	if !n.SetLinkUp("a", "b") || n.LinkDown("a", "b") {
		t.Fatal("SetLinkUp did not clear")
	}
}

func TestUtilizationAndStats(t *testing.T) {
	// 1 MB over a 1 MB/s link in ~1s of virtual time: the a->b direction
	// should be nearly fully utilized.
	const mb = 1 << 20
	k, n := twoHosts(LinkConfig{Latency: time.Millisecond, Bandwidth: mb})
	n.Node("b").SpawnDaemonOn("sink", func(env transport.Env) {
		l, _ := env.Listen(1)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 64*1024)
		for {
			if _, err := c.Read(env, buf); err != nil {
				return
			}
		}
	})
	n.Node("a").SpawnOn("src", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:1")
		if err != nil {
			t.Error(err)
			return
		}
		_, _ = c.Write(env, make([]byte, mb))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	u, err := n.Utilization("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.5 || u > 1.0 {
		t.Fatalf("utilization = %.2f, want high", u)
	}
	stats := n.Stats()
	if len(stats) != 2 {
		t.Fatalf("%d directed links", len(stats))
	}
	var ab LinkStats
	for _, s := range stats {
		if s.From == "a" {
			ab = s
		}
	}
	if ab.Bytes < mb {
		t.Fatalf("a->b carried %d bytes, want >= %d", ab.Bytes, mb)
	}
	if _, err := n.Utilization("a", "zzz"); err == nil {
		t.Fatal("Utilization on unknown node succeeded")
	}
	k.Shutdown()
}

func TestUtilizationZeroTime(t *testing.T) {
	k := sim.New()
	n := New(k)
	n.AddHost("a", HostConfig{})
	n.AddHost("b", HostConfig{})
	n.Connect("a", "b", LinkConfig{Bandwidth: 1})
	u, err := n.Utilization("a", "b")
	if err != nil || u != 0 {
		t.Fatalf("zero-time utilization = %v, %v", u, err)
	}
}
