package simnet

import (
	"errors"
	"testing"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

// crashPair builds a-r-b: two hosts joined through a router, so faults on
// individual links of a routed path can be tested.
func crashPair(lat time.Duration, bw int64) (*sim.Kernel, *Network) {
	k := sim.New()
	n := New(k)
	n.AddHost("a", HostConfig{})
	n.AddRouter("r", "")
	n.AddHost("b", HostConfig{})
	n.Connect("a", "r", LinkConfig{Latency: lat, Bandwidth: bw})
	n.Connect("r", "b", LinkConfig{Latency: lat, Bandwidth: bw})
	return k, n
}

func TestCrashHostResetsPeerConnections(t *testing.T) {
	k, n := crashPair(time.Millisecond, 1<<20)
	var readErr, writeErr error
	n.Node("b").SpawnDaemonOn("srv", func(env transport.Env) {
		l, _ := env.Listen(1)
		for {
			c, err := l.Accept(env)
			if err != nil {
				return
			}
			// Echo forever; the crash should break us out with ErrReset.
			buf := make([]byte, 256)
			for {
				if _, err := c.Read(env, buf); err != nil {
					return
				}
			}
		}
	})
	n.Node("a").SpawnOn("cli", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:1")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Write(env, make([]byte, 128)); err != nil {
			t.Error(err)
		}
		// Block in Read until the crash resets the stream.
		_, readErr = c.Read(env, make([]byte, 16))
		_, writeErr = c.Write(env, make([]byte, 16))
	})
	k.After(50*time.Millisecond, func() {
		if err := n.CrashHost("b"); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(readErr, transport.ErrReset) {
		t.Errorf("read after peer crash: %v, want ErrReset", readErr)
	}
	if !errors.Is(writeErr, transport.ErrReset) {
		t.Errorf("write after peer crash: %v, want ErrReset", writeErr)
	}
	k.Shutdown()
}

func TestCrashHostKillsProcessesAndFailsDials(t *testing.T) {
	k, n := crashPair(time.Millisecond, 0)
	aliveTicks := 0
	n.Node("b").SpawnDaemonOn("ticker", func(env transport.Env) {
		for {
			env.Sleep(10 * time.Millisecond)
			aliveTicks++
		}
	})
	var dialErr error
	n.Node("a").SpawnOn("cli", func(env transport.Env) {
		env.Sleep(100 * time.Millisecond) // past the crash
		_, dialErr = env.Dial("b:1")
	})
	k.After(45*time.Millisecond, func() { _ = n.CrashHost("b") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if aliveTicks != 4 {
		t.Errorf("ticker ticked %d times, want 4 (killed at 45ms)", aliveTicks)
	}
	if !errors.Is(dialErr, transport.ErrHostDown) {
		t.Errorf("dial to crashed host: %v, want ErrHostDown", dialErr)
	}
	if !n.Node("b").Crashed() {
		t.Error("host not marked crashed")
	}
	k.Shutdown()
}

func TestRestartHostRunsBootScriptsAndAcceptsDials(t *testing.T) {
	k, n := crashPair(time.Millisecond, 0)
	boots := 0
	serve := func(env transport.Env) {
		boots++
		l, err := env.Listen(1)
		if err != nil {
			t.Errorf("rebind after restart: %v", err)
			return
		}
		for {
			c, err := l.Accept(env)
			if err != nil {
				return
			}
			_ = c.Close(env)
		}
	}
	n.Node("b").OnRestart("srv", serve)
	n.Node("b").SpawnDaemonOn("srv", serve)
	var errDuring, errAfter error
	n.Node("a").SpawnOn("cli", func(env transport.Env) {
		env.Sleep(60 * time.Millisecond) // inside the crash window
		_, errDuring = env.Dial("b:1")
		env.Sleep(100 * time.Millisecond) // past the restart
		_, errAfter = env.Dial("b:1")
	})
	k.After(50*time.Millisecond, func() { _ = n.CrashHost("b") })
	k.After(100*time.Millisecond, func() { _ = n.RestartHost("b") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errDuring, transport.ErrHostDown) {
		t.Errorf("dial during crash window: %v, want ErrHostDown", errDuring)
	}
	if errAfter != nil {
		t.Errorf("dial after restart: %v, want success", errAfter)
	}
	if boots != 2 {
		t.Errorf("server booted %d times, want 2 (initial + restart hook)", boots)
	}
	k.Shutdown()
}

func TestAbortSurfacesResetNotEOF(t *testing.T) {
	k, n := crashPair(time.Millisecond, 0)
	var readErr error
	got := 0
	n.Node("b").SpawnDaemonOn("srv", func(env transport.Env) {
		l, _ := env.Listen(1)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		for {
			nn, err := c.Read(env, buf)
			got += nn
			if err != nil {
				readErr = err
				return
			}
		}
	})
	n.Node("a").SpawnOn("cli", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, _ := env.Dial("b:1")
		_, _ = c.Write(env, make([]byte, 32))
		env.Sleep(50 * time.Millisecond) // let it land
		_ = transport.Abort(env, c)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Errorf("received %d bytes before abort, want 32", got)
	}
	if !errors.Is(readErr, transport.ErrReset) {
		t.Errorf("read on aborted stream: %v, want ErrReset", readErr)
	}
	k.Shutdown()
}

// TestFaultPlanSchedule drives a full crash window and a link flap from one
// declarative plan and checks the timeline executed as written.
func TestFaultPlanSchedule(t *testing.T) {
	k, n := crashPair(time.Millisecond, 0)
	plan := (&FaultPlan{}).
		CrashWindow("b", 20*time.Millisecond, 40*time.Millisecond).
		LinkOutage("a", "r", 60*time.Millisecond, 80*time.Millisecond)
	if err := n.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
	type sample struct {
		at      time.Duration
		crashed bool
		down    bool
	}
	var samples []sample
	for _, at := range []time.Duration{10, 30, 50, 70, 90} {
		at := at * time.Millisecond
		k.After(at, func() {
			samples = append(samples, sample{at, n.Node("b").Crashed(), n.LinkDown("a", "r")})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []sample{
		{10 * time.Millisecond, false, false},
		{30 * time.Millisecond, true, false},
		{50 * time.Millisecond, false, false},
		{70 * time.Millisecond, false, true},
		{90 * time.Millisecond, false, false},
	}
	for i, w := range want {
		if samples[i] != w {
			t.Errorf("sample %d = %+v, want %+v", i, samples[i], w)
		}
	}
	if plan.String() == "" {
		t.Error("plan renders empty")
	}
}

func TestFaultPlanValidation(t *testing.T) {
	k, n := crashPair(time.Millisecond, 0)
	defer k.Shutdown()
	cases := []*FaultPlan{
		{Faults: []Fault{{Kind: FaultLinkDown, A: "a", B: "zzz"}}},
		{Faults: []Fault{{Kind: FaultLinkDown, A: "a", B: "b"}}}, // no direct link
		{Faults: []Fault{{Kind: FaultCrash, A: "r"}}},            // router, not host
		{Faults: []Fault{{Kind: FaultKind(99), A: "a"}}},
	}
	for i, p := range cases {
		if err := n.ApplyPlan(p); err == nil {
			t.Errorf("case %d: invalid plan accepted", i)
		}
	}
}

// TestLinkStatsAcrossOutage pins the Bytes/Stalled accounting of one
// directed link across an outage window on a multi-hop routed path, and that
// downing one constituent link stalls the whole path.
func TestLinkStatsAcrossOutage(t *testing.T) {
	k, n := crashPair(time.Millisecond, 1<<20)
	received := 0
	n.Node("b").SpawnDaemonOn("sink", func(env transport.Env) {
		l, _ := env.Listen(1)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 1024)
		for {
			nn, err := c.Read(env, buf)
			received += nn
			if err != nil {
				return
			}
		}
	})
	n.Node("a").SpawnOn("src", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:1")
		if err != nil {
			t.Error(err)
			return
		}
		_, _ = c.Write(env, make([]byte, 512))
		env.Sleep(100 * time.Millisecond)
		// Down only the far link r-b: the path a->r->b must stall even
		// though a->r stays up.
		n.SetLinkDown("r", "b")
		_, _ = c.Write(env, make([]byte, 512))
		env.Sleep(100 * time.Millisecond)
		if received != 512 {
			t.Errorf("received %d during r-b outage, want 512", received)
		}
		n.SetLinkUp("r", "b")
		env.Sleep(100 * time.Millisecond)
	})
	k.RunUntil(time.Second)
	if received != 1024 {
		t.Fatalf("received %d bytes, want 1024", received)
	}
	stats := map[string]LinkStats{}
	for _, st := range n.Stats() {
		stats[st.From+">"+st.To] = st
	}
	// Both data-direction links carried everything: handshake + 1024 data.
	for _, link := range []string{"a>r", "r>b"} {
		if stats[link].Bytes < 1024 {
			t.Errorf("%s carried %d bytes, want >= 1024", link, stats[link].Bytes)
		}
	}
	// Only r->b saw the stall, and only for the second burst.
	if got := stats["r>b"].Stalled; got != 512 {
		t.Errorf("r->b stalled %d bytes, want 512", got)
	}
	if got := stats["a>r"].Stalled; got != 0 {
		t.Errorf("a->r stalled %d bytes, want 0", got)
	}
	if stats["a>r"].Busy == 0 || stats["r>b"].Busy == 0 {
		t.Error("busy time not accounted on path links")
	}
	k.Shutdown()
}
