package simnet

import (
	"testing"
	"time"

	"nxcluster/internal/sim"
)

// buildTree builds a fleet-shaped tree: core, nsites gateways, nhosts hosts
// per site. withParents additionally registers the routing hierarchy.
func buildTree(t *testing.T, nsites, nhosts int, withParents bool) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.New()
	n := New(k)
	n.AddRouter("core", "")
	wan := LinkConfig{Latency: 3 * time.Millisecond}
	lan := LinkConfig{Latency: 100 * time.Microsecond}
	for s := 0; s < nsites; s++ {
		gw := "gw" + string(rune('a'+s))
		n.AddRouter(gw, gw)
		n.Connect("core", gw, wan)
		if withParents {
			n.SetParent(gw, "core")
		}
		for h := 0; h < nhosts; h++ {
			host := gw + "-h" + string(rune('0'+h))
			n.AddHost(host, HostConfig{Site: gw})
			n.Connect(host, gw, lan)
			if withParents {
				n.SetParent(host, gw)
			}
		}
	}
	return k, n
}

// TestHierarchyMatchesDijkstra proves the LCA-composed paths are identical
// to Dijkstra's on tree topologies: same hop counts and same latencies for
// every representative pair shape (intra-site, cross-site, host-to-gateway,
// host-to-core, and the reverse directions).
func TestHierarchyMatchesDijkstra(t *testing.T) {
	_, flat := buildTree(t, 3, 4, false)
	_, hier := buildTree(t, 3, 4, true)
	pairs := [][2]string{
		{"gwa-h0", "gwa-h1"}, // intra-site
		{"gwa-h0", "gwb-h3"}, // cross-site
		{"gwa-h2", "gwa"},    // host -> own gateway
		{"gwa-h2", "core"},   // host -> core (ancestor)
		{"core", "gwc-h1"},   // core -> host (descendant)
		{"gwb", "gwc"},       // gateway -> gateway
		{"gwc-h3", "gwa-h0"}, // reverse cross-site
	}
	for _, p := range pairs {
		fh, err1 := flat.Hops(p[0], p[1])
		hh, err2 := hier.Hops(p[0], p[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("Hops(%s, %s): %v / %v", p[0], p[1], err1, err2)
		}
		if fh != hh {
			t.Errorf("Hops(%s, %s): dijkstra %d, hierarchical %d", p[0], p[1], fh, hh)
		}
		fl, _ := flat.PathLatency(p[0], p[1])
		hl, _ := hier.PathLatency(p[0], p[1])
		if fl != hl {
			t.Errorf("PathLatency(%s, %s): dijkstra %v, hierarchical %v", p[0], p[1], fl, hl)
		}
	}
}

// TestHierarchyFallback: nodes outside the hierarchy still route via
// Dijkstra even on a network where other nodes have parents.
func TestHierarchyFallback(t *testing.T) {
	k := sim.New()
	n := New(k)
	n.AddRouter("core", "")
	n.AddRouter("gw", "s")
	n.AddHost("in-tree", HostConfig{Site: "s"})
	n.AddHost("outsider", HostConfig{})
	n.Connect("core", "gw", LinkConfig{Latency: time.Millisecond})
	n.Connect("in-tree", "gw", LinkConfig{Latency: time.Millisecond})
	n.Connect("outsider", "core", LinkConfig{Latency: time.Millisecond})
	n.SetParent("gw", "core")
	n.SetParent("in-tree", "gw")
	// outsider has no parent; its chain ends at itself, the in-tree chain
	// ends at core — no common ancestor, so Dijkstra answers.
	hops, err := n.Hops("outsider", "in-tree")
	if err != nil || hops != 3 {
		t.Fatalf("Hops(outsider, in-tree) = %d, %v; want 3, nil", hops, err)
	}
	lat, _ := n.PathLatency("outsider", "in-tree")
	if lat != 3*time.Millisecond {
		t.Fatalf("PathLatency = %v, want 3ms", lat)
	}
}

// TestSendMessage: datagrams deliver exactly once, at the path's latency
// (plus one scheduling nanosecond per hop), and same-node sends deliver
// after a tick. Unknown nodes error.
func TestSendMessage(t *testing.T) {
	k, n := buildTree(t, 2, 2, true)
	var deliveredAt time.Duration
	var count int
	k.After(0, func() {
		if err := n.SendMessage("gwa-h0", "gwb-h1", 256, func() {
			deliveredAt = k.Now()
			count++
		}); err != nil {
			t.Errorf("SendMessage: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Path: h0 -> gwa -> core -> gwb -> h1 = 100µs + 3ms + 3ms + 100µs,
	// plus 1ns Dijkstra tiebreak per hop is not charged to delivery (that
	// is route-cost only), so expect the raw latency sum.
	want := 2*(100*time.Microsecond) + 2*(3*time.Millisecond)
	if count != 1 || deliveredAt != want {
		t.Fatalf("delivered %d times at %v; want once at %v", count, deliveredAt, want)
	}

	if err := n.SendMessage("gwa-h0", "nope", 1, func() {}); err == nil {
		t.Fatal("SendMessage to unknown node did not error")
	}

	// Same-node send: delivers on a later tick, still exactly once.
	k2 := sim.New()
	n2 := New(k2)
	n2.AddHost("solo", HostConfig{})
	fired := 0
	k2.After(0, func() {
		if err := n2.SendMessage("solo", "solo", 1, func() { fired++ }); err != nil {
			t.Errorf("same-node SendMessage: %v", err)
		}
	})
	if err := k2.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("same-node delivery fired %d times, want 1", fired)
	}
}

// TestSendMessageZeroAlloc: once the route cache is warm, a control
// datagram costs no heap allocations — pointer-keyed route lookup, pooled
// transfer records, pooled kernel events. This is the fleet data plane's
// per-job budget, pinned like the kernel-step alloc tests.
func TestSendMessageZeroAlloc(t *testing.T) {
	k, n := buildTree(t, 2, 2, true)
	deliver := func() {}
	send := func() {
		if err := n.SendMessage("gwa-h0", "gwb-h1", 256, deliver); err != nil {
			t.Fatalf("SendMessage: %v", err)
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	send() // warm route cache and pools
	if avg := testing.AllocsPerRun(50, send); avg != 0 {
		t.Fatalf("warm SendMessage allocates %.1f allocs/run, want 0", avg)
	}
}

// TestSetParentValidation: unknown nodes and self-parents panic loudly at
// build time instead of corrupting routing later.
func TestSetParentValidation(t *testing.T) {
	k := sim.New()
	n := New(k)
	n.AddHost("a", HostConfig{})
	for _, tc := range [][2]string{{"a", "ghost"}, {"ghost", "a"}, {"a", "a"}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetParent(%q, %q) did not panic", tc[0], tc[1])
				}
			}()
			n.SetParent(tc[0], tc[1])
		}()
	}
}
