package simnet

import (
	"math"
	"sort"
	"time"

	"nxcluster/internal/obs"
)

// TCP-Reno flow model.
//
// By default simnet streams are loss-free: the per-connection sliding window
// and the link pumps model latency and serialization only, which is the right
// fidelity for the paper's calibrated tables. The flow model is an opt-in
// layer on top that makes wide-area throughput genuinely congestion-limited:
// each connection endpoint gets a TCP-Reno congestion window (slow start,
// AIMD congestion avoidance, multiplicative decrease on loss, at most one
// decrease per RTT), and links may drop data segments — randomly at a seeded
// per-segment rate, or by tail drop when their queue exceeds a limit. A
// dropped segment is retransmitted by the sender one RTT later (fast
// retransmit: the three duplicate ACKs are not simulated individually, only
// their timing). Because retransmitted segments arrive out of order, flow
// connections carry byte sequence numbers and reassemble at the receiver.
//
// Everything is deterministic: the loss draw comes from a dedicated
// splitmix64 stream on the Network (not the kernel RNG, so enabling the model
// never perturbs unrelated code), and draws happen in kernel event order.
// With the model disabled nothing in the data path changes — no draws, no
// sequence numbers, no extra events — so all existing goldens stay
// bit-identical.

// FlowConfig parameterizes the network's TCP-Reno flow model.
type FlowConfig struct {
	// InitialWindow is the initial congestion window in segments (default 2).
	InitialWindow int
	// InitialSsthresh is the initial slow-start threshold in bytes
	// (default 64 KiB).
	InitialSsthresh int
	// Seed seeds the deterministic per-segment loss stream.
	Seed uint64
}

// FlowStats aggregates flow-model activity across the whole network.
type FlowStats struct {
	// Drops counts data segments dropped by random loss or queue overflow.
	Drops int64
	// Retransmits counts segments re-sent after loss detection.
	Retransmits int64
	// Cuts counts multiplicative window decreases (at most one per RTT per
	// flow, so Cuts <= Retransmits).
	Cuts int64
}

// EnableFlowModel switches the TCP-Reno flow model on for every connection
// dialed afterwards. It must be called before traffic flows; already-open
// connections are unaffected.
func (n *Network) EnableFlowModel(cfg FlowConfig) {
	if cfg.InitialWindow <= 0 {
		cfg.InitialWindow = 2
	}
	if cfg.InitialSsthresh <= 0 {
		cfg.InitialSsthresh = 64 << 10
	}
	n.flowOn = true
	n.flowCfg = cfg
	n.lossSeed = cfg.Seed
}

// FlowModelEnabled reports whether EnableFlowModel has been called.
func (n *Network) FlowModelEnabled() bool { return n.flowOn }

// FlowStats reports aggregate flow-model counters.
func (n *Network) FlowStats() FlowStats {
	return FlowStats{Drops: n.flowDrops, Retransmits: n.flowRetrans, Cuts: n.flowCuts}
}

// flowRand draws the next uniform [0,1) variate from the network's dedicated
// loss stream (splitmix64, the same generator the kernel uses — but a
// separate sequence, so loss draws never disturb application randomness).
func (n *Network) flowRand() float64 {
	n.lossSeed += 0x9e3779b97f4a7c15
	z := n.lossSeed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) * (1.0 / (1 << 53))
}

// flowState is one direction's Reno congestion state (each endpoint of a
// connection is an independent flow for the data it sends).
type flowState struct {
	mss      int           // segment size (the network MTU)
	cwnd     int           // congestion window, bytes
	ssthresh int           // slow-start threshold, bytes
	inflight int           // bytes sent and not yet acknowledged
	rtt      time.Duration // propagation round trip, the loss-detection delay
	lastCut  time.Duration // virtual instant of the last multiplicative decrease

	// Per-flow counters (network-wide aggregates live on Network).
	drops       int64
	retransmits int64
	cuts        int64

	gCwnd *obs.Gauge // nil when tracing is off
}

// newFlowState builds the Reno state for a connection whose outbound path is
// path. Loopback (empty path) connections carry no flow state.
func (n *Network) newFlowState(path []*linkDir, label string) *flowState {
	var lat time.Duration
	for _, ld := range path {
		lat += ld.cfg.Latency
	}
	rtt := 2 * lat
	if rtt < time.Millisecond {
		rtt = time.Millisecond
	}
	f := &flowState{
		mss:      n.MTU,
		cwnd:     n.flowCfg.InitialWindow * n.MTU,
		ssthresh: n.flowCfg.InitialSsthresh,
		rtt:      rtt,
		lastCut:  math.MinInt64 / 4,
	}
	if o := n.Obs; o != nil {
		f.gCwnd = o.Metrics().Gauge("flow." + label + ".cwnd")
		f.gCwnd.Set(int64(f.cwnd))
	}
	return f
}

// onAck processes the acknowledgment of n in-flight bytes: slow start grows
// the window one MSS per ACK (doubling per RTT), congestion avoidance grows
// it MSS²/cwnd per ACK (about one MSS per RTT) — the classic Reno shapes,
// RTT-clocked for free because ACKs return one path round trip after the
// send.
func (f *flowState) onAck(n int) {
	f.inflight -= n
	if f.inflight < 0 {
		f.inflight = 0
	}
	if f.cwnd < f.ssthresh {
		f.cwnd += f.mss
	} else {
		inc := f.mss * f.mss / f.cwnd
		if inc < 1 {
			inc = 1
		}
		f.cwnd += inc
	}
	if f.gCwnd != nil {
		f.gCwnd.Set(int64(f.cwnd))
	}
}

// onLoss reacts to a detected segment loss at virtual instant now. The
// window halves (to max(inflight/2, 2·MSS)) at most once per RTT — losses
// within the same window of data count as one congestion event, as in
// NewReno. It reports whether a decrease happened.
func (f *flowState) onLoss(now time.Duration) bool {
	f.retransmits++
	if now-f.lastCut < f.rtt {
		return false
	}
	f.lastCut = now
	f.cuts++
	half := f.inflight / 2
	if min := 2 * f.mss; half < min {
		half = min
	}
	f.ssthresh = half
	f.cwnd = half
	if f.gCwnd != nil {
		f.gCwnd.Set(int64(f.cwnd))
	}
	return true
}

// shouldDrop decides, for a flow-modeled data segment about to enter this
// link's queue, whether the segment is lost here: tail drop when the waiting
// queue is at QueueLimit, else a seeded random draw against LossRate. Down
// links stall traffic rather than drop it (outages and congestion are
// separate mechanisms), and control packets are never dropped.
func (ld *linkDir) shouldDrop() bool {
	if ld.down {
		return false
	}
	if ld.cfg.QueueLimit > 0 && len(ld.queue)-ld.qhead >= ld.cfg.QueueLimit {
		return true
	}
	if rate := ld.cfg.LossRate + ld.extraLoss; rate > 0 {
		if rate > 0.99 {
			rate = 0.99 // a flow must eventually make progress
		}
		return ld.net.flowRand() < rate
	}
	return false
}

// dropSegment records the loss and schedules the sender's reaction one RTT
// later: the window cut (loss detection via fast retransmit) and the
// retransmission, which re-enters the network at the first hop and may be
// dropped again.
func (ld *linkDir) dropSegment(tr *transfer) {
	n := ld.net
	if tr.src == nil {
		// A resumed cross-partition segment: the sending conn lives in
		// another partition, so the loss is handled locally and the sender
		// notified by message (see partition.go).
		n.part.dropSegmentX(ld, tr)
		return
	}
	f := tr.src.flow
	f.drops++
	n.flowDrops++
	if o := n.Obs; o != nil {
		o.Emit(n.K.Now(), "net", "drop", ld.label,
			obs.Int("bytes", int64(tr.size)), obs.Int("seq", tr.seq))
		o.Metrics().Counter("link." + ld.label + ".drops").Add(1)
	}
	n.K.After(f.rtt, func() { n.retransmit(tr) })
}

// retransmit re-sends a dropped segment from its origin after the sender
// detected the loss. A cleanly Closed sender still retransmits — its FIN
// only takes effect at the receiver once all bytes before it land — but an
// aborted stream is dead and the segment is simply recycled.
func (n *Network) retransmit(tr *transfer) {
	src := tr.src
	if src.aborted {
		n.putSeg(tr.seg)
		n.putTransfer(tr)
		return
	}
	f := src.flow
	if f.onLoss(n.K.Now()) {
		n.flowCuts++
	}
	n.flowRetrans++
	if o := n.Obs; o != nil {
		o.Emit(n.K.Now(), "net", "retransmit", src.local,
			obs.Int("bytes", int64(tr.size)), obs.Int("seq", tr.seq))
	}
	tr.idx = 0
	tr.path[0].enqueue(tr)
}

// oooSeg is an out-of-order segment parked at the receiver until a
// retransmission fills the sequence hole before it.
type oooSeg struct {
	seq int64
	buf []byte
}

// deliverSeq lands one flow-modeled data segment at the receiver: in-order
// segments go straight to the inbox (pulling any parked successors along);
// segments beyond a hole park in the sorted reassembly buffer. The window
// credit was already returned to the sender (selective-acknowledgment
// semantics — the receiver buffers out-of-order data).
func (c *conn) deliverSeq(seq int64, seg []byte) {
	switch {
	case seq == c.recvNext:
		c.pushInbox(seg)
		c.recvNext += int64(len(seg))
		for len(c.ooo) > 0 && c.ooo[0].seq == c.recvNext {
			c.pushInbox(c.ooo[0].buf)
			c.recvNext += int64(len(c.ooo[0].buf))
			c.ooo[0].buf = nil
			c.ooo = c.ooo[1:]
		}
		c.readCond.Broadcast()
	case seq > c.recvNext:
		i := sort.Search(len(c.ooo), func(i int) bool { return c.ooo[i].seq >= seq })
		c.ooo = append(c.ooo, oooSeg{})
		copy(c.ooo[i+1:], c.ooo[i:])
		c.ooo[i] = oooSeg{seq: seq, buf: seg}
	default:
		// Duplicate of already-delivered data; discard.
		c.node.net.putSeg(seg)
	}
	// A FIN that arrived ahead of retransmitted data takes effect only once
	// the byte stream is complete up to it.
	if c.finSeq >= 0 && c.recvNext >= c.finSeq && !c.remoteClosed {
		c.remoteClosed = true
		c.readCond.Broadcast()
		c.creditCond.Broadcast()
	}
}
