// Package simnet is a deterministic virtual network running on the
// discrete-event kernel in internal/sim. It models the paper's testbed:
// hosts and routers joined by duplex links with latency and bandwidth
// (100Base-T LANs, the 1.5 Mbps IMnet WAN), site firewalls at gateways, and
// reliable byte-stream connections with store-and-forward segmentation.
//
// simnet implements the transport.Env contract, so the exact protocol code
// that runs on real TCP (the Nexus Proxy relay, Nexus, GRAM, RMF, MPI) runs
// unmodified inside the simulation, where the wide-area experiments execute
// in virtual time on a single core.
//
// # Timing model
//
// A stream write is segmented into MTU-sized segments. Each directed link
// has a FIFO pump: a segment occupies the link for size/bandwidth
// (serialization), then arrives after the link's propagation latency,
// overlapped with the serialization of the next segment. Multi-hop paths
// therefore pipeline naturally, which is exactly the mechanism behind the
// paper's observation that proxy overhead fades as message size grows.
// Connection setup costs one round trip along the path. A per-connection
// sliding window (default 256 KiB) bounds in-flight bytes; window credit is
// returned when a segment reaches the receiver's buffer.
package simnet

import (
	"container/heap"
	"fmt"
	"time"

	"nxcluster/internal/firewall"
	"nxcluster/internal/obs"
	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

// DefaultMTU is the segment size streams are chopped into.
const DefaultMTU = 4096

// DefaultWindow is the per-connection in-flight byte limit.
const DefaultWindow = 256 * 1024

// ctlSize models the wire size of SYN/ACK/FIN control packets.
const ctlSize = 64

// LinkConfig describes one duplex link.
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is bytes per second in each direction; 0 means unlimited.
	Bandwidth int64
	// LossRate is the per-segment drop probability (each direction) applied
	// to data segments of flow-modeled connections crossing this link. The
	// draw is seeded and deterministic. No effect unless EnableFlowModel has
	// been called.
	LossRate float64
	// QueueLimit, when > 0, tail-drops a flow-modeled data segment that
	// arrives while QueueLimit transfers are already waiting on the link.
	// No effect unless EnableFlowModel has been called.
	QueueLimit int
}

// Network is a virtual network bound to a simulation kernel.
type Network struct {
	K   *sim.Kernel
	MTU int
	// Obs, when non-nil, receives virtual-time trace events and metrics for
	// every link hop, connection handshake, and stall. It must be set before
	// traffic flows and belongs to this network's kernel alone. Nil (the
	// default) keeps the data plane allocation-free: every emission site
	// guards on the nil check before building an event.
	Obs   *obs.Observer
	nodes map[string]*Node
	// routes caches computed paths. The key is the node-pointer pair so a
	// cache hit — every data- and control-plane send after the first — does
	// not allocate a concatenated string key.
	routes    map[routeKey][]*linkDir
	firewalls map[string]*firewall.Firewall
	nextConn  int
	// Free lists for the data plane: in-flight transfer records and
	// MTU-capacity segment buffers are recycled per network, so the
	// steady-state per-segment cost is allocation-free. Networks are
	// single-kernel objects, so the pools need no locking.
	freeTr  []*transfer
	freeSeg [][]byte

	// TCP-Reno flow model (see flow.go); off by default, and when off the
	// data plane behaves bit-identically to a network built before the model
	// existed.
	flowOn      bool
	flowCfg     FlowConfig
	lossSeed    uint64
	flowDrops   int64
	flowRetrans int64
	flowCuts    int64

	// part is non-nil when this network is one partition of a conservative
	// parallel group (see partition.go); nil networks behave exactly as
	// before the parallel mode existed.
	part *Partition
}

// Pool bounds: past these, records are left to the garbage collector.
const (
	maxTransferPool = 4096
	maxSegPool      = 1024
)

// New creates an empty network on kernel k.
func New(k *sim.Kernel) *Network {
	return &Network{
		K:         k,
		MTU:       DefaultMTU,
		nodes:     make(map[string]*Node),
		routes:    make(map[routeKey][]*linkDir),
		firewalls: make(map[string]*firewall.Firewall),
	}
}

// Node is a host or router in the network. Hosts can bind listeners, dial,
// and run processes; routers only forward.
type Node struct {
	net       *Network
	name      string
	site      string
	isHost    bool
	speed     float64
	baseSpeed float64 // configured speed; SetHostSpeed scales speed off this
	cpus      *sim.Semaphore
	cpuCount  int
	links     []*linkDir
	listeners map[int]*listener
	nextPort  int
	// parent, when set (SetParent), places the node in a tree-shaped routing
	// hierarchy: paths between parented nodes compose by LCA walk instead of
	// Dijkstra. Nil everywhere keeps routing exactly as before.
	parent *Node

	// Crash/restart state: every process spawned on the host and every open
	// connection endpoint is tracked so CrashHost can take them down, and
	// restart hooks rebuild the host's daemons after RestartHost.
	crashed      bool
	procs        map[int]*sim.Proc
	conns        map[*conn]struct{}
	restartHooks []restartHook
}

// restartHook is a boot script re-run after RestartHost (e.g. respawning a
// Q server daemon), named for trace attribution.
type restartHook struct {
	name string
	fn   func(transport.Env)
}

// HostConfig describes a host's compute capability.
type HostConfig struct {
	// Site groups the host behind its site firewall ("" = no site).
	Site string
	// Speed is the relative CPU speed factor (1.0 = nominal).
	Speed float64
	// CPUs is the processor count (default 1).
	CPUs int
}

// AddHost creates a host node.
func (n *Network) AddHost(name string, cfg HostConfig) *Node {
	if cfg.Speed <= 0 {
		cfg.Speed = 1.0
	}
	if cfg.CPUs <= 0 {
		cfg.CPUs = 1
	}
	node := &Node{
		net:       n,
		name:      name,
		site:      cfg.Site,
		isHost:    true,
		speed:     cfg.Speed,
		baseSpeed: cfg.Speed,
		cpus:      sim.NewSemaphore(n.K, cfg.CPUs),
		cpuCount:  cfg.CPUs,
		listeners: make(map[int]*listener),
		nextPort:  32768,
		procs:     make(map[int]*sim.Proc),
		conns:     make(map[*conn]struct{}),
	}
	n.addNode(node)
	return node
}

// AddRouter creates a forwarding-only node (a gateway or switch).
func (n *Network) AddRouter(name, site string) *Node {
	node := &Node{net: n, name: name, site: site}
	n.addNode(node)
	return node
}

func (n *Network) addNode(node *Node) {
	if _, dup := n.nodes[node.name]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %q", node.name))
	}
	n.nodes[node.name] = node
	n.routes = make(map[routeKey][]*linkDir) // invalidate cache
}

// Node returns the named node, or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// Name returns the node's name.
func (nd *Node) Name() string { return nd.name }

// Site returns the node's site.
func (nd *Node) Site() string { return nd.site }

// Speed returns the host's relative CPU speed.
func (nd *Node) Speed() float64 { return nd.speed }

// SetFirewall installs fw as the filter for every boundary crossing into or
// out of the named site.
func (n *Network) SetFirewall(site string, fw *firewall.Firewall) {
	n.firewalls[site] = fw
}

// Firewall returns the site's firewall, or nil.
func (n *Network) Firewall(site string) *firewall.Firewall { return n.firewalls[site] }

// Connect joins nodes a and b with a duplex link.
func (n *Network) Connect(a, b string, cfg LinkConfig) {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		panic(fmt.Sprintf("simnet: Connect(%q, %q): unknown node", a, b))
	}
	ab := &linkDir{net: n, from: na, to: nb, cfg: cfg, label: a + ">" + b}
	ba := &linkDir{net: n, from: nb, to: na, cfg: cfg, label: b + ">" + a}
	ab.rev, ba.rev = ba, ab
	na.links = append(na.links, ab)
	nb.links = append(nb.links, ba)
	n.routes = make(map[routeKey][]*linkDir)
}

// route computes (with caching) the minimum-latency path between two nodes
// as a sequence of directed links. Ties break on hop count, then on node
// name for determinism.
func (n *Network) route(src, dst *Node) []*linkDir {
	if src == dst {
		return []*linkDir{}
	}
	key := routeKey{src, dst}
	if p, ok := n.routes[key]; ok {
		return p
	}
	p := n.hierPath(src, dst)
	if p == nil {
		p = n.dijkstra(src, dst)
	}
	n.routes[key] = p
	return p
}

// routeKey identifies a cached path by its endpoint nodes.
type routeKey struct{ src, dst *Node }

type pqItem struct {
	node *Node
	dist time.Duration
	hops int
	via  *linkDir
	prev *pqItem
	idx  int
}

type pq []*pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	if q[i].hops != q[j].hops {
		return q[i].hops < q[j].hops
	}
	return q[i].node.name < q[j].node.name
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].idx, q[j].idx = i, j }
func (q *pq) Push(x interface{}) { it := x.(*pqItem); it.idx = len(*q); *q = append(*q, it) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

func (n *Network) dijkstra(src, dst *Node) []*linkDir {
	settled := make(map[string]bool)
	best := make(map[string]*pqItem)
	q := &pq{}
	start := &pqItem{node: src}
	heap.Push(q, start)
	best[src.name] = start
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		if settled[it.node.name] {
			continue
		}
		settled[it.node.name] = true
		if it.node == dst {
			var path []*linkDir
			for cur := it; cur.via != nil; cur = cur.prev {
				path = append([]*linkDir{cur.via}, path...)
			}
			return path
		}
		for _, ld := range it.node.links {
			if settled[ld.to.name] {
				continue
			}
			// A nanosecond per hop keeps zero-latency topologies ordered.
			nd := it.dist + ld.cfg.Latency + 1
			cur, ok := best[ld.to.name]
			cand := &pqItem{node: ld.to, dist: nd, hops: it.hops + 1, via: ld, prev: it}
			if !ok || pq([]*pqItem{cand, cur}).Less(0, 1) {
				best[ld.to.name] = cand
				heap.Push(q, cand)
			}
		}
	}
	return nil
}

// reversePath returns the reverse direction of each link, in reverse order.
func reversePath(path []*linkDir) []*linkDir {
	out := make([]*linkDir, len(path))
	for i, ld := range path {
		out[len(path)-1-i] = ld.rev
	}
	return out
}

// linkDir pump states.
const (
	linkIdle        = iota // no transfer in service, ready-queue entry not posted
	linkPosted             // continuation posted to the ready queue, pickup pending
	linkStalling           // head transfer waiting out a link outage (10ms polls)
	linkSerializing        // head transfer occupying the link until its serialization ends
)

// linkDir is one direction of a duplex link, with a FIFO store-and-forward
// pump. The pump is an event-driven continuation (a sim.Task) rather than a
// daemon goroutine: each wakeup that used to park/resume the pump process now
// runs inline on the kernel goroutine, at exactly the same ready-queue
// positions and with exactly the same event schedule, so virtual-time results
// are unchanged while the two channel handoffs per segment disappear.
type linkDir struct {
	net   *Network
	from  *Node
	to    *Node
	rev   *linkDir
	cfg   LinkConfig
	label string // "from>to", the trace track and metric prefix
	down  bool
	// Gray degradation (SetLinkDegraded): extra one-way propagation delay on
	// every transfer and extra flow-model loss probability, this direction
	// only. Both zero on a healthy link — the hot path pays one add.
	extraLat  time.Duration
	extraLoss float64
	// Traffic counters for utilization reporting.
	bytes   int64
	stalled int64
	busy    time.Duration

	// Cached metric handles, created on first use when net.Obs is set (nil
	// handles are no-ops, so these stay nil — and free — when disabled).
	mBytes *obs.Counter
	mQueue *obs.Gauge
	mBusy  *obs.Counter

	// Waiting transfers, FIFO; qhead advances instead of shifting.
	queue []*transfer
	qhead int
	state uint8
	cur   *transfer     // transfer in service while stalling/serializing
	ser   time.Duration // cur's serialization time, added to busy on completion

	// xship marks a partition-boundary direction: the far node belongs to
	// another partition, so completed transfers ship as group messages
	// instead of propagating locally. Always false on monolithic networks.
	xship bool
}

// transfer is one segment or control packet in flight along a path. idx is
// the index of the link currently being traversed (-1 for same-host sends).
// Data segments carry (seg, src, dst) and deliver without any closure;
// control packets (SYN/ACK/FIN) carry a deliver func. Records are pooled on
// the owning Network.
type transfer struct {
	net     *Network
	size    int
	path    []*linkDir
	idx     int
	seg     []byte
	src     *conn // writer credited when the segment lands
	dst     *conn // peer whose inbox receives seg
	seq     int64 // byte sequence (flow-modeled connections only)
	deliver func()
	x       *xwire // cross-partition payload (resumed or outbound typed packet)
}

func (n *Network) newTransfer() *transfer {
	if l := len(n.freeTr); l > 0 {
		tr := n.freeTr[l-1]
		n.freeTr[l-1] = nil
		n.freeTr = n.freeTr[:l-1]
		return tr
	}
	return &transfer{net: n}
}

func (n *Network) putTransfer(tr *transfer) {
	*tr = transfer{net: n}
	if len(n.freeTr) < maxTransferPool {
		n.freeTr = append(n.freeTr, tr)
	}
}

// getSeg returns a segment buffer of the given size (<= MTU buffers come
// from the pool with MTU capacity so they stay reusable).
func (n *Network) getSeg(size int) []byte {
	if size <= n.MTU {
		if l := len(n.freeSeg); l > 0 {
			b := n.freeSeg[l-1]
			n.freeSeg[l-1] = nil
			n.freeSeg = n.freeSeg[:l-1]
			return b[:size]
		}
		return make([]byte, size, n.MTU)
	}
	return make([]byte, size)
}

// putSeg recycles a fully-consumed segment buffer.
func (n *Network) putSeg(b []byte) {
	if cap(b) == n.MTU && len(n.freeSeg) < maxSegPool {
		n.freeSeg = append(n.freeSeg, b[:n.MTU])
	}
}

// send enqueues a control packet of the given size along path; deliver runs
// at the final hop. Must be called from kernel or process context.
func (n *Network) send(path []*linkDir, size int, deliver func()) {
	tr := n.newTransfer()
	tr.size, tr.path, tr.deliver = size, path, deliver
	n.launch(tr)
}

// sendData enqueues one data segment from src to its peer; the segment
// buffer lands in the peer's inbox and the window credit returns to src.
func (n *Network) sendData(src *conn, seg []byte) {
	tr := n.newTransfer()
	tr.size, tr.path = len(seg), src.path
	tr.seg, tr.src, tr.dst = seg, src, src.peer
	if f := src.flow; f != nil {
		tr.seq = src.sendSeq
		src.sendSeq += int64(len(seg))
		f.inflight += len(seg)
	}
	n.launch(tr)
}

func (n *Network) launch(tr *transfer) {
	if len(tr.path) == 0 {
		// Same-host communication: deliver after a scheduling tick.
		tr.idx = -1
		n.K.AfterEvent(0, tr)
		return
	}
	tr.idx = 0
	tr.path[0].enqueue(tr)
}

func (ld *linkDir) enqueue(tr *transfer) {
	if (tr.src != nil && tr.src.flow != nil || tr.x != nil && tr.x.flow) && ld.shouldDrop() {
		ld.dropSegment(tr)
		return
	}
	if ld.state == linkIdle {
		ld.state = linkPosted
		ld.net.K.Post(ld)
	}
	ld.queue = append(ld.queue, tr)
	if o := ld.net.Obs; o != nil {
		ld.initMetrics(o)
		ld.mQueue.Set(int64(len(ld.queue) - ld.qhead))
	}
}

// initMetrics lazily binds the link's cached metric handles to o.
func (ld *linkDir) initMetrics(o *obs.Observer) {
	if ld.mBytes == nil {
		ld.mBytes = o.Metrics().Counter("link." + ld.label + ".bytes")
		ld.mQueue = o.Metrics().Gauge("link." + ld.label + ".queue")
		ld.mBusy = o.Metrics().Counter("link." + ld.label + ".busy_ns")
	}
}

func (ld *linkDir) popQueue() *transfer {
	if ld.qhead == len(ld.queue) {
		ld.queue = ld.queue[:0]
		ld.qhead = 0
		return nil
	}
	tr := ld.queue[ld.qhead]
	ld.queue[ld.qhead] = nil
	ld.qhead++
	if ld.qhead == len(ld.queue) {
		ld.queue = ld.queue[:0]
		ld.qhead = 0
	}
	return tr
}

// RunTask implements sim.Task: one pump wakeup. It is posted by enqueue when
// the link is idle and re-posted by the kernel when a poll or
// serialization-end event fires.
func (ld *linkDir) RunTask(k *sim.Kernel) {
	switch ld.state {
	case linkStalling:
		if ld.down {
			// Out of service: traffic stalls until the link returns. At
			// the reliable-stream abstraction this is what a link flap
			// looks like from the endpoints (TCP retransmits cover the
			// loss); only the delay is observable.
			k.AfterTask(10*time.Millisecond, ld)
			return
		}
		if !ld.beginSerialize(k, ld.cur) {
			return
		}
	case linkSerializing:
		ld.busy += ld.ser
		ld.completeHead(k)
	}
	// Drain: pick up queued transfers until one occupies the link (or the
	// queue empties). Zero-bandwidth links complete pickups inline, exactly
	// like the daemon pump's no-sleep fast path.
	for {
		tr := ld.popQueue()
		if tr == nil {
			ld.state = linkIdle
			return
		}
		ld.cur = tr
		if o := ld.net.Obs; o != nil {
			ld.mQueue.Set(int64(len(ld.queue) - ld.qhead))
		}
		if ld.down {
			// Stalled bytes are counted once per transfer, at pickup.
			ld.stalled += int64(tr.size)
			ld.state = linkStalling
			if o := ld.net.Obs; o != nil {
				o.Emit(k.Now(), "net", "stall", ld.label, obs.Int("bytes", int64(tr.size)))
			}
			k.AfterTask(10*time.Millisecond, ld)
			return
		}
		if !ld.beginSerialize(k, tr) {
			return
		}
	}
}

// beginSerialize starts tr's occupancy of the link. It reports whether the
// transfer completed inline (zero-bandwidth or zero-duration serialization
// re-posts keep the ready-queue position the daemon pump's Yield had).
func (ld *linkDir) beginSerialize(k *sim.Kernel, tr *transfer) bool {
	if ld.cfg.Bandwidth > 0 {
		ser := time.Duration(float64(tr.size) / float64(ld.cfg.Bandwidth) * float64(time.Second))
		ld.ser = ser
		ld.state = linkSerializing
		if ser > 0 {
			k.AfterTask(ser, ld)
		} else {
			k.Post(ld)
		}
		return false
	}
	ld.ser = 0
	ld.completeHead(k)
	return true
}

// completeHead finishes the in-service transfer: account the carried bytes
// and launch the propagation-latency event toward the next hop.
func (ld *linkDir) completeHead(k *sim.Kernel) {
	tr := ld.cur
	ld.cur = nil
	ld.bytes += int64(tr.size)
	lat := ld.cfg.Latency + ld.extraLat
	if o := ld.net.Obs; o != nil {
		// One instant per (segment, hop), stamped at serialization end ==
		// propagation start: ser_ns looks back, lat_ns looks forward.
		ld.initMetrics(o)
		ld.mBytes.Add(int64(tr.size))
		ld.mBusy.Add(int64(ld.ser))
		o.Emit(k.Now(), "net", "hop", ld.label,
			obs.Int("bytes", int64(tr.size)),
			obs.Int("ser_ns", int64(ld.ser)),
			obs.Int("lat_ns", int64(lat)))
	}
	if ld.xship {
		ld.net.part.ship(ld, tr)
		return
	}
	k.AfterEvent(lat, tr)
}

// advance moves the transfer to its next hop, or delivers it at the final
// one and recycles the record.
func (tr *transfer) advance() {
	tr.idx++
	if tr.idx < len(tr.path) {
		tr.path[tr.idx].enqueue(tr)
		return
	}
	n := tr.net
	if o := n.Obs; o != nil && len(tr.path) > 0 {
		last := tr.path[len(tr.path)-1]
		o.Emit(n.K.Now(), "net", "deliver", last.label, obs.Int("bytes", int64(tr.size)))
	}
	if tr.x != nil {
		// Typed cross-partition packet at its final node: dispatch by op.
		x := tr.x
		n.putTransfer(tr)
		n.part.deliverX(x)
		return
	}
	if tr.deliver != nil {
		// Control packet: run the handshake/teardown callback.
		fn := tr.deliver
		n.putTransfer(tr)
		fn()
		return
	}
	// Data segment: land in the peer's inbox and return window credit.
	seg, src, dst := tr.seg, tr.src, tr.dst
	seq := tr.seq
	n.putTransfer(tr)
	if f := src.flow; f != nil {
		// Flow-modeled stream: the arrival is the ACK (window growth happens
		// here), and the receiver reassembles by sequence because
		// retransmitted segments arrive out of order.
		f.onAck(len(seg))
		src.credit += len(seg)
		src.creditCond.Broadcast()
		if dst.closed {
			n.putSeg(seg)
			return
		}
		dst.deliverSeq(seq, seg)
		return
	}
	if !dst.closed {
		dst.pushInbox(seg)
		dst.readCond.Broadcast()
	} else {
		n.putSeg(seg)
	}
	src.credit += len(seg)
	src.creditCond.Broadcast()
}

// OnEvent implements sim.EventHandler: the propagation-latency event fired.
func (tr *transfer) OnEvent(k *sim.Kernel) { tr.advance() }

// checkFirewalls applies site firewall policy to a connection attempt from
// src to dst:dstPort. Crossing out of a firewalled site consults its
// outgoing rules; crossing into one consults its incoming rules.
func (n *Network) checkFirewalls(src, dst *Node, dstPort int) error {
	if src.site == dst.site {
		return nil
	}
	if fw := n.firewalls[src.site]; fw != nil {
		if !fw.PermitConn(firewall.Outgoing, src.name, dst.name, dstPort) {
			return fmt.Errorf("simnet: %s -> %s:%d: %w (site %s outgoing)",
				src.name, dst.name, dstPort, errFirewallDenied, src.site)
		}
	}
	if fw := n.firewalls[dst.site]; fw != nil {
		if !fw.PermitConn(firewall.Incoming, src.name, dst.name, dstPort) {
			return fmt.Errorf("simnet: %s -> %s:%d: %w (site %s incoming)",
				src.name, dst.name, dstPort, errFirewallDenied, dst.site)
		}
	}
	return nil
}

// PathLatency reports the one-way propagation latency between two hosts
// (sum of link latencies on the routed path), for calibration and tests.
func (n *Network) PathLatency(src, dst string) (time.Duration, error) {
	a, b := n.nodes[src], n.nodes[dst]
	if a == nil || b == nil {
		return 0, fmt.Errorf("simnet: unknown node in %q -> %q", src, dst)
	}
	path := n.route(a, b)
	if path == nil {
		return 0, fmt.Errorf("simnet: no route %q -> %q", src, dst)
	}
	var total time.Duration
	for _, ld := range path {
		total += ld.cfg.Latency
	}
	return total, nil
}

// PathBandwidth reports the bottleneck bandwidth along the routed path;
// 0 means unlimited end to end.
func (n *Network) PathBandwidth(src, dst string) (int64, error) {
	a, b := n.nodes[src], n.nodes[dst]
	if a == nil || b == nil {
		return 0, fmt.Errorf("simnet: unknown node in %q -> %q", src, dst)
	}
	path := n.route(a, b)
	if path == nil {
		return 0, fmt.Errorf("simnet: no route %q -> %q", src, dst)
	}
	var min int64
	for _, ld := range path {
		if ld.cfg.Bandwidth == 0 {
			continue
		}
		if min == 0 || ld.cfg.Bandwidth < min {
			min = ld.cfg.Bandwidth
		}
	}
	return min, nil
}

// Hops reports the number of links on the routed path.
func (n *Network) Hops(src, dst string) (int, error) {
	a, b := n.nodes[src], n.nodes[dst]
	if a == nil || b == nil {
		return 0, fmt.Errorf("simnet: unknown node in %q -> %q", src, dst)
	}
	path := n.route(a, b)
	if path == nil {
		return 0, fmt.Errorf("simnet: no route %q -> %q", src, dst)
	}
	return len(path), nil
}
