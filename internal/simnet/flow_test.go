package simnet

import (
	"bytes"
	"io"
	"testing"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

// TestRenoStateMachine drives one flowState through ACK and loss events at
// exact virtual instants and pins the resulting window trajectory: slow
// start doubling, the crossover into congestion avoidance, the halving on
// loss, and the one-cut-per-RTT rule.
func TestRenoStateMachine(t *testing.T) {
	const mss = 4096
	type ev struct {
		at           time.Duration // virtual instant of the event
		loss         bool          // loss detection (else an ACK of mss bytes)
		inflight     int           // bytes in flight at the event (pinned)
		wantCwnd     int
		wantSsthresh int
		wantCut      bool // loss events only: a multiplicative decrease happened
	}
	tests := []struct {
		name     string
		cwnd     int // initial window
		ssthresh int
		events   []ev
	}{
		{
			name: "slow start grows one MSS per ACK", cwnd: 2 * mss, ssthresh: 16 * mss,
			events: []ev{
				{at: 10 * time.Millisecond, wantCwnd: 3 * mss, wantSsthresh: 16 * mss},
				{at: 10 * time.Millisecond, wantCwnd: 4 * mss, wantSsthresh: 16 * mss},
				{at: 20 * time.Millisecond, wantCwnd: 5 * mss, wantSsthresh: 16 * mss},
			},
		},
		{
			name: "congestion avoidance grows ~MSS^2/cwnd per ACK", cwnd: 16 * mss, ssthresh: 16 * mss,
			events: []ev{
				{at: 10 * time.Millisecond, wantCwnd: 16*mss + mss/16, wantSsthresh: 16 * mss},
				{at: 20 * time.Millisecond, wantCwnd: 16*mss + mss/16 + (mss*mss)/(16*mss+mss/16), wantSsthresh: 16 * mss},
			},
		},
		{
			name: "loss halves inflight and enters CA", cwnd: 32 * mss, ssthresh: 64 * mss,
			events: []ev{
				{at: 50 * time.Millisecond, loss: true, inflight: 20 * mss, wantCwnd: 10 * mss, wantSsthresh: 10 * mss, wantCut: true},
				// Next ACK grows additively: cwnd == ssthresh means CA.
				{at: 60 * time.Millisecond, wantCwnd: 10*mss + mss/10, wantSsthresh: 10 * mss},
			},
		},
		{
			name: "at most one cut per RTT", cwnd: 32 * mss, ssthresh: 64 * mss,
			events: []ev{
				{at: 50 * time.Millisecond, loss: true, inflight: 32 * mss, wantCwnd: 16 * mss, wantSsthresh: 16 * mss, wantCut: true},
				// 5ms later — inside the same 10ms RTT — a second loss is part
				// of the same congestion event: no second halving.
				{at: 55 * time.Millisecond, loss: true, inflight: 30 * mss, wantCwnd: 16 * mss, wantSsthresh: 16 * mss},
				// One full RTT past the first cut, a new loss cuts again.
				{at: 60 * time.Millisecond, loss: true, inflight: 16 * mss, wantCwnd: 8 * mss, wantSsthresh: 8 * mss, wantCut: true},
			},
		},
		{
			name: "window floor is two segments", cwnd: 3 * mss, ssthresh: 16 * mss,
			events: []ev{
				{at: 50 * time.Millisecond, loss: true, inflight: mss, wantCwnd: 2 * mss, wantSsthresh: 2 * mss, wantCut: true},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := &flowState{mss: mss, cwnd: tt.cwnd, ssthresh: tt.ssthresh,
				rtt: 10 * time.Millisecond, lastCut: -1 << 40}
			for i, e := range tt.events {
				if e.loss {
					f.inflight = e.inflight
					if cut := f.onLoss(e.at); cut != e.wantCut {
						t.Fatalf("event %d at %v: cut = %v, want %v", i, e.at, cut, e.wantCut)
					}
				} else {
					f.inflight += mss
					f.onAck(mss)
				}
				if f.cwnd != e.wantCwnd || f.ssthresh != e.wantSsthresh {
					t.Fatalf("event %d at %v: cwnd/ssthresh = %d/%d, want %d/%d",
						i, e.at, f.cwnd, f.ssthresh, e.wantCwnd, e.wantSsthresh)
				}
			}
		})
	}
}

// pattern fills n bytes with a position-dependent pattern so any reassembly
// error (holes, duplicates, reordering) is caught by a byte compare.
func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

// runFlowTransfer pushes size bytes a->b over the given link with the flow
// model enabled and returns the received bytes, the elapsed virtual time,
// and the network's flow counters.
func runFlowTransfer(t *testing.T, cfg LinkConfig, flow FlowConfig, size int) ([]byte, time.Duration, FlowStats) {
	t.Helper()
	k, n := twoHosts(cfg)
	n.EnableFlowModel(flow)
	data := pattern(size)
	var got []byte
	var start, done time.Duration
	n.Node("b").SpawnDaemonOn("server", func(env transport.Env) {
		l, err := env.Listen(7000)
		if err != nil {
			t.Error(err)
			return
		}
		c, err := l.Accept(env)
		if err != nil {
			t.Error(err)
			return
		}
		b, err := io.ReadAll(transport.Stream{Env: env, Conn: c})
		if err != nil {
			t.Error(err)
			return
		}
		got = b
		done = env.Now() // last byte (and FIN) landed
	})
	n.Node("a").SpawnOn("client", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:7000")
		if err != nil {
			t.Error(err)
			return
		}
		start = env.Now()
		// Write returns once the window absorbs the tail, so transfer time
		// is measured at the receiver (start of write to last delivery).
		if _, err := c.Write(env, data); err != nil {
			t.Error(err)
			return
		}
		_ = c.Close(env)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("received %d bytes, sent %d; content mismatch", len(got), len(data))
	}
	return got, done - start, n.FlowStats()
}

func TestFlowLossyTransferDeliversIntact(t *testing.T) {
	cfg := LinkConfig{Latency: 5 * time.Millisecond, Bandwidth: 1 << 20, LossRate: 0.02}
	_, elapsed, st := runFlowTransfer(t, cfg, FlowConfig{Seed: 7}, 512<<10)
	if st.Drops == 0 || st.Retransmits == 0 || st.Cuts == 0 {
		t.Fatalf("expected loss activity, got %+v", st)
	}
	if st.Retransmits < st.Drops {
		t.Fatalf("every drop must be retransmitted: %+v", st)
	}
	// A congestion-limited flow must run strictly below the loss-free time
	// (512 KiB at 1 MiB/s = 0.5 s serialization alone).
	lossFree := time.Duration(float64(512<<10) / float64(1<<20) * float64(time.Second))
	if elapsed <= lossFree {
		t.Fatalf("elapsed %v not above loss-free bound %v", elapsed, lossFree)
	}
}

func TestFlowNoLossMatchesPlainThroughputClosely(t *testing.T) {
	cfg := LinkConfig{Latency: time.Millisecond, Bandwidth: 1 << 20}
	_, elapsed, st := runFlowTransfer(t, cfg, FlowConfig{}, 256<<10)
	if st.Drops != 0 || st.Retransmits != 0 {
		t.Fatalf("no loss configured, got %+v", st)
	}
	// Slow start adds a few RTTs over the raw serialization time but the
	// transfer must still be bandwidth-dominated.
	ser := time.Duration(float64(256<<10) / float64(1<<20) * float64(time.Second))
	if elapsed < ser || elapsed > ser+100*time.Millisecond {
		t.Fatalf("elapsed %v, want within [%v, %v]", elapsed, ser, ser+100*time.Millisecond)
	}
}

func TestFlowQueueOverflowDrops(t *testing.T) {
	// Two senders share one narrow link with a tiny queue: overflow must
	// drop and the streams must still deliver intact.
	k := sim.New()
	n := New(k)
	n.AddHost("a", HostConfig{})
	n.AddHost("b", HostConfig{})
	n.Connect("a", "b", LinkConfig{Latency: 2 * time.Millisecond, Bandwidth: 256 << 10, QueueLimit: 4})
	n.EnableFlowModel(FlowConfig{Seed: 3})
	data := pattern(128 << 10)
	results := make([][]byte, 2)
	n.Node("b").SpawnDaemonOn("server", func(env transport.Env) {
		l, err := env.Listen(7000)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 2; i++ {
			c, err := l.Accept(env)
			if err != nil {
				t.Error(err)
				return
			}
			idx := i
			env.Spawn("sink", func(e transport.Env) {
				b, err := io.ReadAll(transport.Stream{Env: e, Conn: c})
				if err != nil {
					t.Error(err)
					return
				}
				results[idx] = b
			})
		}
	})
	for s := 0; s < 2; s++ {
		n.Node("a").SpawnOn("client", func(env transport.Env) {
			env.Sleep(time.Millisecond)
			c, err := env.Dial("b:7000")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := c.Write(env, data); err != nil {
				t.Error(err)
				return
			}
			_ = c.Close(env)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range results {
		if !bytes.Equal(got, data) {
			t.Fatalf("stream %d: %d bytes received, want %d intact", i, len(got), len(data))
		}
	}
	if st := n.FlowStats(); st.Drops == 0 {
		t.Fatalf("queue limit 4 never overflowed: %+v", st)
	}
}

// TestFlowDeterminism runs the same lossy transfer twice and requires
// identical virtual-time results and counters.
func TestFlowDeterminism(t *testing.T) {
	cfg := LinkConfig{Latency: 5 * time.Millisecond, Bandwidth: 1 << 20, LossRate: 0.05}
	_, e1, s1 := runFlowTransfer(t, cfg, FlowConfig{Seed: 11}, 256<<10)
	_, e2, s2 := runFlowTransfer(t, cfg, FlowConfig{Seed: 11}, 256<<10)
	if e1 != e2 || s1 != s2 {
		t.Fatalf("double run diverged: %v/%+v vs %v/%+v", e1, s1, e2, s2)
	}
	_, e3, s3 := runFlowTransfer(t, cfg, FlowConfig{Seed: 12}, 256<<10)
	if e3 == e1 && s3 == s1 {
		t.Fatalf("different seed produced identical run: %v %+v", e3, s3)
	}
}

// TestFlowOffIsInert checks the flow model's central contract: a network
// that never calls EnableFlowModel behaves exactly as before — LossRate and
// QueueLimit on links are ignored and no flow state is attached.
func TestFlowOffIsInert(t *testing.T) {
	cfg := LinkConfig{Latency: time.Millisecond, Bandwidth: 1 << 20, LossRate: 0.5, QueueLimit: 1}
	k, n := twoHosts(cfg)
	data := pattern(64 << 10)
	var got []byte
	n.Node("b").SpawnDaemonOn("server", func(env transport.Env) {
		l, _ := env.Listen(7000)
		c, err := l.Accept(env)
		if err != nil {
			t.Error(err)
			return
		}
		got, _ = io.ReadAll(transport.Stream{Env: env, Conn: c})
	})
	n.Node("a").SpawnOn("client", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:7000")
		if err != nil {
			t.Error(err)
			return
		}
		_, _ = c.Write(env, data)
		_ = c.Close(env)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch with flow model off")
	}
	if st := n.FlowStats(); st != (FlowStats{}) {
		t.Fatalf("flow counters moved while disabled: %+v", st)
	}
}
