package simnet

import (
	"errors"
	"io"
	"testing"
	"time"

	"nxcluster/internal/firewall"
	"nxcluster/internal/sim"
	"nxcluster/internal/transport"
)

// twoHosts builds a minimal a--b topology with the given link.
func twoHosts(cfg LinkConfig) (*sim.Kernel, *Network) {
	k := sim.New()
	n := New(k)
	n.AddHost("a", HostConfig{})
	n.AddHost("b", HostConfig{})
	n.Connect("a", "b", cfg)
	return k, n
}

func TestDialRefusedWithoutListener(t *testing.T) {
	k, n := twoHosts(LinkConfig{Latency: time.Millisecond})
	var dialErr error
	n.Node("a").SpawnOn("dialer", func(env transport.Env) {
		_, dialErr = env.Dial("b:9999")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(dialErr, transport.ErrRefused) {
		t.Fatalf("dial = %v, want ErrRefused", dialErr)
	}
}

func TestDialUnknownHost(t *testing.T) {
	k, n := twoHosts(LinkConfig{})
	var dialErr error
	n.Node("a").SpawnOn("dialer", func(env transport.Env) {
		_, dialErr = env.Dial("nosuch:1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(dialErr, transport.ErrNoRoute) {
		t.Fatalf("dial = %v, want ErrNoRoute", dialErr)
	}
}

func TestConnectCostsOneRoundTrip(t *testing.T) {
	k, n := twoHosts(LinkConfig{Latency: 10 * time.Millisecond})
	var dialedAt time.Duration
	n.Node("b").SpawnDaemonOn("server", func(env transport.Env) {
		l, err := env.Listen(7000)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			if _, err := l.Accept(env); err != nil {
				return
			}
		}
	})
	n.Node("a").SpawnOn("dialer", func(env transport.Env) {
		env.Sleep(time.Millisecond) // let server bind
		start := env.Now()
		if _, err := env.Dial("b:7000"); err != nil {
			t.Error(err)
			return
		}
		dialedAt = env.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dialedAt != 20*time.Millisecond {
		t.Fatalf("dial took %v, want 20ms (one RTT)", dialedAt)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	k, n := twoHosts(LinkConfig{Latency: 5 * time.Millisecond})
	payload := []byte("hello wide area world")
	var got []byte
	n.Node("b").SpawnDaemonOn("echo", func(env transport.Env) {
		l, _ := env.Listen(7)
		for {
			c, err := l.Accept(env)
			if err != nil {
				return
			}
			env.Spawn("echo-conn", func(env transport.Env) {
				buf := make([]byte, 64)
				for {
					nn, err := c.Read(env, buf)
					if err != nil {
						return
					}
					if _, err := c.Write(env, buf[:nn]); err != nil {
						return
					}
				}
			})
		}
	})
	n.Node("a").SpawnOn("client", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:7")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Write(env, payload); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, len(payload))
		if _, err := io.ReadFull(transport.Stream{Env: env, Conn: c}, buf); err != nil {
			t.Error(err)
			return
		}
		got = buf
		_ = c.Close(env)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("echo = %q, want %q", got, payload)
	}
}

func TestBandwidthBoundsTransferTime(t *testing.T) {
	// 1 MB over a 1 MB/s link must take ~1s of serialization + latency.
	const mb = 1 << 20
	k, n := twoHosts(LinkConfig{Latency: 10 * time.Millisecond, Bandwidth: mb})
	var elapsed time.Duration
	n.Node("b").SpawnDaemonOn("sink", func(env transport.Env) {
		l, _ := env.Listen(9)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 64*1024)
		total := 0
		for total < mb {
			nn, err := c.Read(env, buf)
			if err != nil {
				t.Errorf("sink read: %v", err)
				return
			}
			total += nn
		}
		// Acknowledge completion with one byte.
		_, _ = c.Write(env, []byte{1})
	})
	n.Node("a").SpawnOn("source", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:9")
		if err != nil {
			t.Error(err)
			return
		}
		start := env.Now()
		data := make([]byte, mb)
		if _, err := c.Write(env, data); err != nil {
			t.Error(err)
			return
		}
		one := make([]byte, 1)
		if _, err := io.ReadFull(transport.Stream{Env: env, Conn: c}, one); err != nil {
			t.Error(err)
			return
		}
		elapsed = env.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Serialization 1s + ~2x10ms latency; allow the window/segmentation
	// bookkeeping a little slack but insist on the right order.
	if elapsed < time.Second || elapsed > 1500*time.Millisecond {
		t.Fatalf("1MB over 1MB/s took %v, want ~1.02s", elapsed)
	}
}

func TestMultiHopPipelines(t *testing.T) {
	// a -- r -- b: per-segment store-and-forward must pipeline, so a large
	// transfer over two hops takes roughly one serialization time plus the
	// sum of latencies, not twice the serialization time.
	const rate = 1 << 20 // 1 MB/s per link
	const size = 1 << 20
	k := sim.New()
	n := New(k)
	n.AddHost("a", HostConfig{})
	n.AddRouter("r", "")
	n.AddHost("b", HostConfig{})
	n.Connect("a", "r", LinkConfig{Latency: time.Millisecond, Bandwidth: rate})
	n.Connect("r", "b", LinkConfig{Latency: time.Millisecond, Bandwidth: rate})
	var elapsed time.Duration
	n.Node("b").SpawnDaemonOn("sink", func(env transport.Env) {
		l, _ := env.Listen(9)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 64*1024)
		total := 0
		for total < size {
			nn, err := c.Read(env, buf)
			if err != nil {
				return
			}
			total += nn
		}
		_, _ = c.Write(env, []byte{1})
	})
	n.Node("a").SpawnOn("source", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:9")
		if err != nil {
			t.Error(err)
			return
		}
		start := env.Now()
		if _, err := c.Write(env, make([]byte, size)); err != nil {
			t.Error(err)
			return
		}
		one := make([]byte, 1)
		if _, err := io.ReadFull(transport.Stream{Env: env, Conn: c}, one); err != nil {
			t.Error(err)
			return
		}
		elapsed = env.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed > 1600*time.Millisecond {
		t.Fatalf("two-hop 1MB took %v; store-and-forward did not pipeline", elapsed)
	}
}

func TestRoutingPrefersLowLatency(t *testing.T) {
	k := sim.New()
	n := New(k)
	n.AddHost("a", HostConfig{})
	n.AddHost("b", HostConfig{})
	n.AddRouter("fast", "")
	n.AddRouter("slow", "")
	n.Connect("a", "fast", LinkConfig{Latency: time.Millisecond})
	n.Connect("fast", "b", LinkConfig{Latency: time.Millisecond})
	n.Connect("a", "slow", LinkConfig{Latency: 100 * time.Millisecond})
	n.Connect("slow", "b", LinkConfig{Latency: 100 * time.Millisecond})
	lat, err := n.PathLatency("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if lat != 2*time.Millisecond {
		t.Fatalf("PathLatency = %v, want 2ms via fast router", lat)
	}
	hops, _ := n.Hops("a", "b")
	if hops != 2 {
		t.Fatalf("Hops = %d, want 2", hops)
	}
}

func TestPathBandwidthBottleneck(t *testing.T) {
	k := sim.New()
	n := New(k)
	n.AddHost("a", HostConfig{})
	n.AddRouter("r", "")
	n.AddHost("b", HostConfig{})
	n.Connect("a", "r", LinkConfig{Bandwidth: 10 << 20})
	n.Connect("r", "b", LinkConfig{Bandwidth: 187 << 10}) // ~1.5 Mbps
	bw, err := n.PathBandwidth("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if bw != 187<<10 {
		t.Fatalf("bottleneck = %d, want %d", bw, 187<<10)
	}
}

func TestFirewallBlocksIncomingDial(t *testing.T) {
	k := sim.New()
	n := New(k)
	n.AddHost("inside", HostConfig{Site: "rwcp"})
	n.AddHost("outside", HostConfig{})
	n.Connect("inside", "outside", LinkConfig{Latency: time.Millisecond})
	n.SetFirewall("rwcp", firewall.New("rwcp"))

	var inErr, outErr error
	n.Node("inside").SpawnDaemonOn("server", func(env transport.Env) {
		l, _ := env.Listen(5000)
		_, _ = l.Accept(env)
	})
	n.Node("outside").SpawnDaemonOn("server", func(env transport.Env) {
		l, _ := env.Listen(5000)
		for {
			if _, err := l.Accept(env); err != nil {
				return
			}
		}
	})
	n.Node("outside").SpawnOn("attacker", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		_, inErr = env.Dial("inside:5000")
	})
	n.Node("inside").SpawnOn("insider", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		_, outErr = env.Dial("outside:5000")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(inErr, transport.ErrFirewallDenied) {
		t.Fatalf("incoming dial = %v, want ErrFirewallDenied", inErr)
	}
	if outErr != nil {
		t.Fatalf("outgoing dial = %v, want success (allow-based outgoing)", outErr)
	}
	if n.Firewall("rwcp").DeniedCount() != 1 {
		t.Fatalf("denied count = %d, want 1", n.Firewall("rwcp").DeniedCount())
	}
	k.Shutdown()
}

func TestFirewallOpenedPortAdmitsDial(t *testing.T) {
	k := sim.New()
	n := New(k)
	n.AddHost("inner", HostConfig{Site: "rwcp"})
	n.AddHost("outer", HostConfig{})
	n.Connect("inner", "outer", LinkConfig{Latency: time.Millisecond})
	fw := firewall.New("rwcp")
	fw.AllowIncomingPort(7010, "nxport")
	n.SetFirewall("rwcp", fw)

	var err7010 error
	accepted := false
	n.Node("inner").SpawnDaemonOn("inner-server", func(env transport.Env) {
		l, _ := env.Listen(7010)
		if _, err := l.Accept(env); err == nil {
			accepted = true
		}
	})
	n.Node("outer").SpawnOn("outer-client", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		_, err7010 = env.Dial("inner:7010")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err7010 != nil {
		t.Fatalf("dial to opened nxport failed: %v", err7010)
	}
	if !accepted {
		t.Fatal("inner server never accepted")
	}
}

func TestSameSiteTrafficBypassesFirewall(t *testing.T) {
	k := sim.New()
	n := New(k)
	n.AddHost("h1", HostConfig{Site: "rwcp"})
	n.AddHost("h2", HostConfig{Site: "rwcp"})
	n.Connect("h1", "h2", LinkConfig{Latency: time.Microsecond})
	n.SetFirewall("rwcp", firewall.New("rwcp"))
	var err error
	n.Node("h2").SpawnDaemonOn("srv", func(env transport.Env) {
		l, _ := env.Listen(80)
		_, _ = l.Accept(env)
	})
	n.Node("h1").SpawnOn("cli", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		_, err = env.Dial("h2:80")
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatalf("intra-site dial failed: %v", err)
	}
}

func TestCloseGivesEOFAfterDrain(t *testing.T) {
	k, n := twoHosts(LinkConfig{Latency: time.Millisecond})
	var readErr error
	var got int
	n.Node("b").SpawnDaemonOn("srv", func(env transport.Env) {
		l, _ := env.Listen(1)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 16)
		for {
			nn, err := c.Read(env, buf)
			got += nn
			if err != nil {
				readErr = err
				return
			}
		}
	})
	n.Node("a").SpawnOn("cli", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:1")
		if err != nil {
			t.Error(err)
			return
		}
		_, _ = c.Write(env, []byte("bye"))
		_ = c.Close(env)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if got != 3 {
		t.Fatalf("read %d bytes before EOF, want 3", got)
	}
	if !errors.Is(readErr, io.EOF) {
		t.Fatalf("read error = %v, want io.EOF", readErr)
	}
}

func TestWriteAfterPeerCloseFails(t *testing.T) {
	k, n := twoHosts(LinkConfig{Latency: time.Millisecond})
	var werr error
	n.Node("b").SpawnDaemonOn("srv", func(env transport.Env) {
		l, _ := env.Listen(1)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		_ = c.Close(env)
	})
	n.Node("a").SpawnOn("cli", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:1")
		if err != nil {
			t.Error(err)
			return
		}
		env.Sleep(10 * time.Millisecond) // let the FIN arrive
		_, werr = c.Write(env, []byte("x"))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(werr, transport.ErrClosed) {
		t.Fatalf("write after peer close = %v, want ErrClosed", werr)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	k, n := twoHosts(LinkConfig{})
	var acceptErr error
	n.Node("a").SpawnOn("srv", func(env transport.Env) {
		l, _ := env.Listen(1234)
		env.Spawn("closer", func(env2 transport.Env) {
			env2.Sleep(time.Second)
			_ = l.Close(env2)
		})
		_, acceptErr = l.Accept(env)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(acceptErr, transport.ErrClosed) {
		t.Fatalf("Accept after close = %v, want ErrClosed", acceptErr)
	}
}

func TestDuplicatePortRejected(t *testing.T) {
	k, n := twoHosts(LinkConfig{})
	var err2 error
	n.Node("a").SpawnOn("srv", func(env transport.Env) {
		if _, err := env.Listen(80); err != nil {
			t.Error(err)
		}
		_, err2 = env.Listen(80)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err2 == nil {
		t.Fatal("duplicate Listen succeeded")
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	k, n := twoHosts(LinkConfig{})
	seen := map[string]bool{}
	n.Node("a").SpawnOn("srv", func(env transport.Env) {
		for i := 0; i < 10; i++ {
			l, err := env.Listen(0)
			if err != nil {
				t.Error(err)
				return
			}
			if seen[l.Addr()] {
				t.Errorf("ephemeral address %s reused", l.Addr())
			}
			seen[l.Addr()] = true
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeScalesWithSpeedAndContends(t *testing.T) {
	k := sim.New()
	n := New(k)
	n.AddHost("fast", HostConfig{Speed: 2.0, CPUs: 1})
	n.AddHost("slow", HostConfig{Speed: 0.5, CPUs: 1})
	var fastT, slowT time.Duration
	n.Node("fast").SpawnOn("w", func(env transport.Env) {
		env.Compute(time.Second)
		fastT = env.Now()
	})
	n.Node("slow").SpawnOn("w", func(env transport.Env) {
		env.Compute(time.Second)
		slowT = env.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fastT != 500*time.Millisecond {
		t.Fatalf("fast host compute took %v, want 500ms", fastT)
	}
	if slowT != 2*time.Second {
		t.Fatalf("slow host compute took %v, want 2s", slowT)
	}

	// Two workers on a 1-CPU host serialize; on a 2-CPU host they overlap.
	k2 := sim.New()
	n2 := New(k2)
	n2.AddHost("uni", HostConfig{CPUs: 1})
	n2.AddHost("duo", HostConfig{CPUs: 2})
	var uniEnd, duoEnd time.Duration
	for i := 0; i < 2; i++ {
		n2.Node("uni").SpawnOn("w", func(env transport.Env) {
			env.Compute(time.Second)
			if env.Now() > uniEnd {
				uniEnd = env.Now()
			}
		})
		n2.Node("duo").SpawnOn("w", func(env transport.Env) {
			env.Compute(time.Second)
			if env.Now() > duoEnd {
				duoEnd = env.Now()
			}
		})
	}
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if uniEnd != 2*time.Second {
		t.Fatalf("1-CPU host finished at %v, want 2s", uniEnd)
	}
	if duoEnd != time.Second {
		t.Fatalf("2-CPU host finished at %v, want 1s", duoEnd)
	}
}

func TestLocalAndRemoteAddrs(t *testing.T) {
	k, n := twoHosts(LinkConfig{})
	n.Node("b").SpawnDaemonOn("srv", func(env transport.Env) {
		l, _ := env.Listen(42)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		if c.LocalAddr() != "b:42" {
			t.Errorf("server LocalAddr = %s, want b:42", c.LocalAddr())
		}
		host, _, err := transport.SplitAddr(c.RemoteAddr())
		if err != nil || host != "a" {
			t.Errorf("server RemoteAddr = %s, want a:*", c.RemoteAddr())
		}
	})
	n.Node("a").SpawnOn("cli", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("b:42")
		if err != nil {
			t.Error(err)
			return
		}
		if c.RemoteAddr() != "b:42" {
			t.Errorf("client RemoteAddr = %s, want b:42", c.RemoteAddr())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSameHostDial(t *testing.T) {
	k, n := twoHosts(LinkConfig{Latency: time.Millisecond})
	var got string
	n.Node("a").SpawnDaemonOn("srv", func(env transport.Env) {
		l, _ := env.Listen(99)
		c, err := l.Accept(env)
		if err != nil {
			return
		}
		buf := make([]byte, 5)
		if _, err := io.ReadFull(transport.Stream{Env: env, Conn: c}, buf); err == nil {
			got = string(buf)
		}
	})
	n.Node("a").SpawnOn("cli", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		c, err := env.Dial("a:99")
		if err != nil {
			t.Error(err)
			return
		}
		_, _ = c.Write(env, []byte("local"))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if got != "local" {
		t.Fatalf("same-host payload = %q, want %q", got, "local")
	}
}
