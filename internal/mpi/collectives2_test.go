package mpi

import (
	"bytes"
	"fmt"
	"testing"
)

func TestScatterSim(t *testing.T) {
	k, w := simWorld(t, 4)
	w.Launch(func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 1 {
			for i := 0; i < c.Size(); i++ {
				parts = append(parts, []byte{byte('A' + i)})
			}
		}
		got, err := c.Scatter(1, parts)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != byte('A'+c.Rank()) {
			return fmt.Errorf("rank %d scattered %q", c.Rank(), got)
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestScatterErrors(t *testing.T) {
	k, w := simWorld(t, 2)
	w.Launch(func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Scatter(9, nil); err == nil {
				return fmt.Errorf("bad root accepted")
			}
			if _, err := c.Scatter(0, [][]byte{{1}}); err == nil {
				return fmt.Errorf("wrong part count accepted")
			}
			// Unblock rank 1, which waits on a real scatter.
			return sendAll(c)
		}
		_, err := c.Scatter(0, nil)
		return err
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func sendAll(c *Comm) error {
	parts := make([][]byte, c.Size())
	for i := range parts {
		parts[i] = []byte{9}
	}
	_, err := c.Scatter(0, parts)
	return err
}

func TestAllgatherSim(t *testing.T) {
	k, w := simWorld(t, 5)
	w.Launch(func(c *Comm) error {
		mine := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1) // ragged sizes
		parts, err := c.Allgather(mine)
		if err != nil {
			return err
		}
		if len(parts) != c.Size() {
			return fmt.Errorf("got %d parts", len(parts))
		}
		for i, p := range parts {
			if len(p) != i+1 {
				return fmt.Errorf("part %d has len %d", i, len(p))
			}
			for _, b := range p {
				if b != byte(i) {
					return fmt.Errorf("part %d content %v", i, p)
				}
			}
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallSim(t *testing.T) {
	k, w := simWorld(t, 4)
	w.Launch(func(c *Comm) error {
		parts := make([][]byte, c.Size())
		for i := range parts {
			parts[i] = []byte{byte(c.Rank()), byte(i)} // (src, dst)
		}
		got, err := c.Alltoall(parts)
		if err != nil {
			return err
		}
		for i, p := range got {
			if len(p) != 2 || p[0] != byte(i) || p[1] != byte(c.Rank()) {
				return fmt.Errorf("rank %d slot %d = %v", c.Rank(), i, p)
			}
		}
		if _, err := c.Alltoall(nil); err == nil {
			return fmt.Errorf("wrong part count accepted")
		}
		return c.Barrier()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvHeadOnExchange(t *testing.T) {
	k, w := simWorld(t, 2)
	w.Launch(func(c *Comm) error {
		peer := 1 - c.Rank()
		m, err := c.Sendrecv(peer, 5, []byte{byte(c.Rank())}, peer, 5)
		if err != nil {
			return err
		}
		if m.Src != peer || m.Data[0] != byte(peer) {
			return fmt.Errorf("rank %d got %v from %d", c.Rank(), m.Data, m.Src)
		}
		if _, err := c.Sendrecv(peer, -1, nil, peer, 5); err != ErrInvalidTag {
			return fmt.Errorf("bad tag accepted: %v", err)
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackParts(t *testing.T) {
	parts := [][]byte{{1, 2}, nil, {3}}
	got, err := unpackParts(packParts(parts), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !bytes.Equal(got[0], []byte{1, 2}) || len(got[1]) != 0 || !bytes.Equal(got[2], []byte{3}) {
		t.Fatalf("round trip = %v", got)
	}
	if _, err := unpackParts([]byte{0, 0}, 1); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := unpackParts([]byte{0, 0, 0, 5, 1}, 1); err == nil {
		t.Fatal("truncated body accepted")
	}
}
