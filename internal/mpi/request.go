package mpi

import "errors"

// ErrRequestDone is returned when waiting on an already-consumed request.
var ErrRequestDone = errors.New("mpi: request already completed")

// Request is a non-blocking operation handle, like MPI_Request. Requests
// belong to the rank that created them and must be completed (Wait/Test)
// on that rank.
type Request struct {
	c      *Comm
	isSend bool
	src    int
	tag    int
	done   bool
	msg    Message
	err    error
}

// Isend starts a non-blocking send. Transmission is eager — the message is
// buffered by the transport — so the returned request is already complete;
// it exists so codes written against the MPI idiom port directly.
func (c *Comm) Isend(to, tag int, data []byte) (*Request, error) {
	if tag < 0 {
		return nil, ErrInvalidTag
	}
	err := c.send(to, tag, data)
	return &Request{c: c, isSend: true, done: true, err: err}, err
}

// Irecv posts a non-blocking receive for (src, tag); wildcards allowed.
// Completion happens in Test or Wait.
func (c *Comm) Irecv(src, tag int) (*Request, error) {
	if tag < 0 && tag != AnyTag {
		return nil, ErrInvalidTag
	}
	return &Request{c: c, src: src, tag: tag}, nil
}

// Test checks for completion without blocking. For receives it consumes a
// matching message if one has arrived.
func (r *Request) Test() (Message, bool, error) {
	if r.done {
		return r.msg, true, r.err
	}
	if r.c.Iprobe(r.src, r.tag) {
		r.msg, r.err = r.c.Recv(r.src, r.tag)
		r.done = true
		return r.msg, true, r.err
	}
	return Message{}, false, nil
}

// Wait blocks until the request completes and returns the message (for
// receives).
func (r *Request) Wait() (Message, error) {
	if r.done {
		return r.msg, r.err
	}
	r.msg, r.err = r.c.Recv(r.src, r.tag)
	r.done = true
	return r.msg, r.err
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// WaitAll completes every request, returning the first error.
func WaitAll(reqs ...*Request) error {
	var firstErr error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
