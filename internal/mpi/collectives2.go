package mpi

import "fmt"

// Additional internal tags for the extended collectives.
const (
	tagScatter   = -16
	tagAllgather = -17
	tagAlltoall  = -18
)

// Scatter distributes parts[i] from root to rank i and returns this rank's
// part. Non-root callers may pass nil.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("mpi: scatter root %d out of range", root)
	}
	if c.rank == root {
		if len(parts) != c.Size() {
			return nil, fmt.Errorf("mpi: scatter wants %d parts, got %d", c.Size(), len(parts))
		}
		for i, part := range parts {
			if i == root {
				continue
			}
			if err := c.send(i, tagScatter, part); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	m, err := c.recv(root, tagScatter)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Allgather collects each rank's buffer on every rank, in rank order:
// gather at rank 0 followed by a broadcast of the concatenated parts.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	parts, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	// Rank 0 re-encodes; everyone decodes the broadcast.
	var packed []byte
	if c.rank == 0 {
		packed = packParts(parts)
	}
	packed, err = c.Bcast(0, packed)
	if err != nil {
		return nil, err
	}
	return unpackParts(packed, c.Size())
}

// Alltoall sends parts[i] to rank i and returns the buffers received from
// every rank, in rank order. parts must have Size elements.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	if len(parts) != c.Size() {
		return nil, fmt.Errorf("mpi: alltoall wants %d parts, got %d", c.Size(), len(parts))
	}
	out := make([][]byte, c.Size())
	out[c.rank] = parts[c.rank]
	// Everyone sends first (the transport buffers), then receives
	// per-source, which avoids ordered-rendezvous deadlocks.
	for i := 0; i < c.Size(); i++ {
		if i == c.rank {
			continue
		}
		if err := c.send(i, tagAlltoall, parts[i]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < c.Size(); i++ {
		if i == c.rank {
			continue
		}
		m, err := c.recv(i, tagAlltoall)
		if err != nil {
			return nil, err
		}
		out[i] = m.Data
	}
	return out, nil
}

// Sendrecv performs a combined send to `to` and receive from `from` with
// user tags, safe against head-on exchanges.
func (c *Comm) Sendrecv(to, sendTag int, data []byte, from, recvTag int) (Message, error) {
	if sendTag < 0 || (recvTag < 0 && recvTag != AnyTag) {
		return Message{}, ErrInvalidTag
	}
	if err := c.send(to, sendTag, data); err != nil {
		return Message{}, err
	}
	return c.Recv(from, recvTag)
}

// packParts length-prefixes and concatenates buffers.
func packParts(parts [][]byte) []byte {
	total := 4 * len(parts)
	for _, p := range parts {
		total += len(p)
	}
	out := make([]byte, 0, total)
	for _, p := range parts {
		out = append(out, byte(len(p)>>24), byte(len(p)>>16), byte(len(p)>>8), byte(len(p)))
		out = append(out, p...)
	}
	return out
}

// unpackParts splits a packed buffer back into n parts.
func unpackParts(packed []byte, n int) ([][]byte, error) {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if len(packed) < 4 {
			return nil, fmt.Errorf("mpi: truncated allgather packet")
		}
		l := int(packed[0])<<24 | int(packed[1])<<16 | int(packed[2])<<8 | int(packed[3])
		packed = packed[4:]
		if len(packed) < l {
			return nil, fmt.Errorf("mpi: truncated allgather part")
		}
		out = append(out, packed[:l:l])
		packed = packed[l:]
	}
	return out, nil
}
