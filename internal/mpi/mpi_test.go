package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"nxcluster/internal/firewall"
	"nxcluster/internal/proxy"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

// tcpWorld builds an n-rank world of goroutines on loopback TCP.
func tcpWorld(n int) *World {
	pls := make([]Placement, n)
	for i := range pls {
		env := transport.NewTCPEnv("localhost")
		pls[i] = Placement{Name: fmt.Sprintf("local%d", i), Spawn: env.Spawn}
	}
	return NewWorld(pls)
}

// simWorld builds an n-rank world on a single simulated LAN.
func simWorld(t *testing.T, n int) (*sim.Kernel, *World) {
	k := sim.New()
	net := simnet.New(k)
	net.AddRouter("sw", "")
	pls := make([]Placement, n)
	for i := range pls {
		name := fmt.Sprintf("node%d", i)
		net.AddHost(name, simnet.HostConfig{})
		net.Connect(name, "sw", simnet.LinkConfig{Latency: 100 * time.Microsecond, Bandwidth: 12 << 20})
		pls[i] = Placement{Name: name, Spawn: net.Node(name).SpawnOn}
	}
	return k, NewWorld(pls)
}

func TestPingPongTCP(t *testing.T) {
	w := tcpWorld(2)
	w.Launch(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("ping")); err != nil {
				return err
			}
			m, err := c.Recv(1, 8)
			if err != nil {
				return err
			}
			if string(m.Data) != "pong" {
				return fmt.Errorf("got %q", m.Data)
			}
			return nil
		}
		m, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(m.Data) != "ping" {
			return fmt.Errorf("got %q", m.Data)
		}
		return c.Send(0, 8, []byte("pong"))
	})
	w.Wait()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestWildcardRecvTCP(t *testing.T) {
	w := tcpWorld(4)
	w.Launch(func(c *Comm) error {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 1; i < c.Size(); i++ {
				m, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				if seen[m.Src] {
					return fmt.Errorf("duplicate message from %d", m.Src)
				}
				seen[m.Src] = true
				if m.Tag != m.Src+10 {
					return fmt.Errorf("src %d tag %d", m.Src, m.Tag)
				}
			}
			return nil
		}
		return c.Send(0, c.Rank()+10, []byte{byte(c.Rank())})
	})
	w.Wait()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectiveRecvLeavesOthersPending(t *testing.T) {
	w := tcpWorld(2)
	w.Launch(func(c *Comm) error {
		if c.Rank() == 1 {
			if err := c.Send(0, 1, []byte("first")); err != nil {
				return err
			}
			return c.Send(0, 2, []byte("second"))
		}
		// Receive tag 2 first even though tag 1 arrives first.
		m2, err := c.Recv(1, 2)
		if err != nil {
			return err
		}
		if string(m2.Data) != "second" {
			return fmt.Errorf("tag2 = %q", m2.Data)
		}
		m1, err := c.Recv(1, 1)
		if err != nil {
			return err
		}
		if string(m1.Data) != "first" {
			return fmt.Errorf("tag1 = %q", m1.Data)
		}
		return nil
	})
	w.Wait()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidUserTagRejected(t *testing.T) {
	w := tcpWorld(1)
	w.Launch(func(c *Comm) error {
		if err := c.Send(0, -5, nil); !errors.Is(err, ErrInvalidTag) {
			return fmt.Errorf("Send(-5) = %v", err)
		}
		if _, err := c.Recv(0, -5); !errors.Is(err, ErrInvalidTag) {
			return fmt.Errorf("Recv(-5) = %v", err)
		}
		return nil
	})
	w.Wait()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesSim(t *testing.T) {
	k, w := simWorld(t, 5)
	w.Launch(func(c *Comm) error {
		// Bcast
		var data []byte
		if c.Rank() == 2 {
			data = []byte("from-two")
		}
		got, err := c.Bcast(2, data)
		if err != nil {
			return err
		}
		if string(got) != "from-two" {
			return fmt.Errorf("bcast got %q", got)
		}
		// Reduce: sum of ranks = 10
		sum, err := c.ReduceInt64(0, int64(c.Rank()), OpSum)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && sum != 10 {
			return fmt.Errorf("reduce sum = %d", sum)
		}
		// Allreduce max
		max, err := c.AllreduceInt64(int64(c.Rank()), OpMax)
		if err != nil {
			return err
		}
		if max != 4 {
			return fmt.Errorf("allreduce max = %d", max)
		}
		// Allreduce float min
		fmin, err := c.AllreduceFloat64(float64(c.Rank())+0.5, OpMin)
		if err != nil {
			return err
		}
		if fmin != 0.5 {
			return fmt.Errorf("allreduce fmin = %v", fmin)
		}
		// Gather
		parts, err := c.Gather(0, []byte{byte('a' + c.Rank())})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i, p := range parts {
				if string(p) != string(rune('a'+i)) {
					return fmt.Errorf("gather[%d] = %q", i, p)
				}
			}
		}
		return c.Barrier()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesVirtualTime(t *testing.T) {
	k, w := simWorld(t, 3)
	exits := make([]time.Duration, 3)
	w.Launch(func(c *Comm) error {
		// Stagger arrival; all must leave at (or after) the last arrival.
		c.Env().Sleep(time.Duration(c.Rank()) * time.Second)
		if err := c.Barrier(); err != nil {
			return err
		}
		exits[c.Rank()] = c.Env().Now()
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	for r, e := range exits {
		if e < 2*time.Second {
			t.Fatalf("rank %d left barrier at %v, before last arrival", r, e)
		}
	}
}

func TestIprobeSim(t *testing.T) {
	k, w := simWorld(t, 2)
	w.Launch(func(c *Comm) error {
		if c.Rank() == 1 {
			c.Env().Sleep(time.Second)
			return c.Send(0, 3, []byte("x"))
		}
		if c.Iprobe(1, 3) {
			return errors.New("Iprobe true before send")
		}
		// Poll until it shows up.
		for !c.Iprobe(AnySource, AnyTag) {
			c.Env().Sleep(100 * time.Millisecond)
		}
		m, err := c.Recv(1, 3)
		if err != nil {
			return err
		}
		if string(m.Data) != "x" {
			return fmt.Errorf("got %q", m.Data)
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestPerSourceOrderingSim(t *testing.T) {
	k, w := simWorld(t, 2)
	const n = 100
	w.Launch(func(c *Comm) error {
		if c.Rank() == 1 {
			for i := 0; i < n; i++ {
				if err := c.Send(0, 1, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			m, err := c.Recv(1, 1)
			if err != nil {
				return err
			}
			if m.Data[0] != byte(i) {
				return fmt.Errorf("message %d out of order (got %d)", i, m.Data[0])
			}
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestMessageLatencyReflectsTopology(t *testing.T) {
	// Two hosts 50ms apart: a ping-pong round trip costs >= 100ms virtual.
	k := sim.New()
	net := simnet.New(k)
	net.AddHost("a", simnet.HostConfig{})
	net.AddHost("b", simnet.HostConfig{})
	net.Connect("a", "b", simnet.LinkConfig{Latency: 50 * time.Millisecond})
	w := NewWorld([]Placement{
		{Name: "a", Spawn: net.Node("a").SpawnOn},
		{Name: "b", Spawn: net.Node("b").SpawnOn},
	})
	var rtt time.Duration
	w.Launch(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Barrier(); err != nil {
				return err
			}
			start := c.Env().Now()
			if err := c.Send(1, 1, []byte("p")); err != nil {
				return err
			}
			if _, err := c.Recv(1, 2); err != nil {
				return err
			}
			rtt = c.Env().Now() - start
			return nil
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if _, err := c.Recv(0, 1); err != nil {
			return err
		}
		return c.Send(0, 2, []byte("q"))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if rtt < 100*time.Millisecond {
		t.Fatalf("rtt = %v, want >= 100ms", rtt)
	}
	if rtt > 150*time.Millisecond {
		t.Fatalf("rtt = %v, implausibly large", rtt)
	}
}

// TestMPIAcrossFirewallViaProxy runs a 3-rank job split across a firewalled
// site and a public site, communicating through the Nexus Proxy — the
// MPICH-G "mpich Globus device which utilizes the Nexus Proxy" configuration
// from the paper's Table 3.
func TestMPIAcrossFirewallViaProxy(t *testing.T) {
	k := sim.New()
	net := simnet.New(k)
	net.AddHost("rwcp-sun", simnet.HostConfig{Site: "rwcp", CPUs: 4})
	net.AddHost("rwcp-inner", simnet.HostConfig{Site: "rwcp"})
	net.AddHost("rwcp-outer", simnet.HostConfig{})
	net.AddHost("etl-sun", simnet.HostConfig{})
	lan := simnet.LinkConfig{Latency: 200 * time.Microsecond, Bandwidth: 12 << 20}
	wan := simnet.LinkConfig{Latency: 2 * time.Millisecond, Bandwidth: 187 << 10}
	net.Connect("rwcp-sun", "rwcp-inner", lan)
	net.Connect("rwcp-inner", "rwcp-outer", lan)
	net.Connect("rwcp-outer", "etl-sun", wan)
	fw := firewall.New("rwcp")
	fw.AllowIncomingPort(7010, "nxport")
	net.SetFirewall("rwcp", fw)

	inner := proxy.NewInnerServer(proxy.RelayConfig{})
	net.Node("rwcp-inner").SpawnDaemonOn("inner", func(env transport.Env) { _ = inner.Serve(env, 7010, nil) })
	outer := proxy.NewOuterServer("rwcp-inner:7010", proxy.RelayConfig{})
	net.Node("rwcp-outer").SpawnDaemonOn("outer", func(env transport.Env) { _ = outer.Serve(env, 7000, nil) })
	cfg := proxy.Config{OuterServer: "rwcp-outer:7000", InnerServer: "rwcp-inner:7010"}

	w := NewWorld([]Placement{
		{Name: "rwcp-sun", Spawn: net.Node("rwcp-sun").SpawnOn, Proxy: cfg},
		{Name: "rwcp-sun", Spawn: net.Node("rwcp-sun").SpawnOn, Proxy: cfg},
		{Name: "etl-sun", Spawn: net.Node("etl-sun").SpawnOn},
	})
	w.Launch(func(c *Comm) error {
		sum, err := c.AllreduceInt64(int64(c.Rank()+1), OpSum)
		if err != nil {
			return err
		}
		if sum != 6 {
			return fmt.Errorf("allreduce = %d, want 6", sum)
		}
		return c.Barrier()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	// The cross-firewall ranks really used the relay.
	if outer.Stats().ConnectRelays == 0 && outer.Stats().BindRelays == 0 {
		t.Fatal("no traffic passed through the proxy")
	}
}
