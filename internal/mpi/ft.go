package mpi

import (
	"errors"
	"time"
)

// This file holds the failure-detection primitives the fault-tolerant
// application layer builds on. Plain MPI semantics are fail-stop: a lost
// rank hangs its peers forever. RecvTimeout bounds the wait so a master can
// notice a dead slave, and RankErrs exposes per-rank outcomes so a harness
// can distinguish "crashed mid-run" (nil: the rank never returned) from an
// application error.

// RecvTimeout waits up to d for a message matching (src, tag), with the
// same wildcard semantics as Recv (AnyTag matches user tags only). It
// returns ok=false when the wait times out; non-matching messages received
// while waiting are queued for later Recv calls, exactly as in Recv.
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) (Message, bool, error) {
	if tag < 0 && tag != AnyTag {
		return Message{}, false, ErrInvalidTag
	}
	matches := func(m Message) bool {
		if tag == AnyTag {
			return m.Tag >= 0 && (src == AnySource || m.Src == src)
		}
		return match(m, src, tag)
	}
	for i, m := range c.pending {
		if matches(m) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.received++
			return m, true, nil
		}
	}
	deadline := c.env.Now() + d
	for {
		remaining := deadline - c.env.Now()
		if remaining <= 0 {
			return Message{}, false, nil
		}
		m, ok, timedOut := c.inbox.GetTimeout(c.env, remaining)
		if timedOut {
			return Message{}, false, nil
		}
		if !ok {
			return Message{}, false, errors.New("mpi: inbox closed")
		}
		if matches(m) {
			c.received++
			return m, true, nil
		}
		c.pending = append(c.pending, m)
	}
}

// RankErrs returns every rank's return value, indexed by rank. A rank whose
// process was killed mid-run (host crash in the simulator) never returns,
// so its slot stays nil — use it together with application-level evidence
// (e.g. a master's view of which slaves went silent) rather than alone.
func (w *World) RankErrs() []error {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]error, len(w.errs))
	copy(out, w.errs)
	return out
}
