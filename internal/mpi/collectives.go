package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Op selects a reduction operator.
type Op int

// Reduction operators over int64/float64 values.
const (
	OpSum Op = iota
	OpMin
	OpMax
)

func (o Op) applyInt(a, b int64) int64 {
	switch o {
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		return a + b
	}
}

func (o Op) applyFloat(a, b float64) float64 {
	switch o {
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		return a + b
	}
}

// Barrier blocks until every rank has entered it. Rank 0 gathers arrival
// notifications and releases the others; two message waves, as in early
// MPICH central-counter barriers.
func (c *Comm) Barrier() error {
	if c.Size() == 1 {
		return nil
	}
	if c.rank == 0 {
		// Receive from each specific source: per-source FIFO matching keeps
		// back-to-back barriers from stealing each other's arrivals.
		for i := 1; i < c.Size(); i++ {
			if _, err := c.recv(i, tagBarrier); err != nil {
				return err
			}
		}
		for i := 1; i < c.Size(); i++ {
			if err := c.send(i, tagBarrierDone, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.send(0, tagBarrier, nil); err != nil {
		return err
	}
	_, err := c.recv(0, tagBarrierDone)
	return err
}

// Bcast distributes root's buffer to every rank and returns it. Non-root
// callers may pass nil.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("mpi: bcast root %d out of range", root)
	}
	if c.Size() == 1 {
		return data, nil
	}
	if c.rank == root {
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			if err := c.send(i, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	m, err := c.recv(root, tagBcast)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// ReduceInt64 combines each rank's value with op at root; only root receives
// the result (other ranks get the zero value).
func (c *Comm) ReduceInt64(root int, v int64, op Op) (int64, error) {
	if c.rank == root {
		acc := v
		// Per-source receives: see Barrier for why AnySource would be wrong.
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			m, err := c.recv(i, tagReduce)
			if err != nil {
				return 0, err
			}
			acc = op.applyInt(acc, int64(binary.BigEndian.Uint64(m.Data)))
		}
		return acc, nil
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	return 0, c.send(root, tagReduce, buf[:])
}

// AllreduceInt64 combines each rank's value with op and returns the result
// on every rank.
func (c *Comm) AllreduceInt64(v int64, op Op) (int64, error) {
	acc, err := c.ReduceInt64(0, v, op)
	if err != nil {
		return 0, err
	}
	var buf [8]byte
	if c.rank == 0 {
		binary.BigEndian.PutUint64(buf[:], uint64(acc))
	}
	out, err := c.Bcast(0, buf[:])
	if err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(out)), nil
}

// AllreduceFloat64 combines each rank's float with op on every rank.
func (c *Comm) AllreduceFloat64(v float64, op Op) (float64, error) {
	// Float bits order-compare incorrectly, so reduce at rank 0 in value
	// space and broadcast the bits.
	if c.rank == 0 {
		acc := v
		for i := 1; i < c.Size(); i++ {
			m, err := c.recv(i, tagReduce)
			if err != nil {
				return 0, err
			}
			acc = op.applyFloat(acc, bitsToFloat(m.Data))
		}
		out, err := c.Bcast(0, floatToBits(acc))
		if err != nil {
			return 0, err
		}
		return bitsToFloat(out), nil
	}
	if err := c.send(0, tagReduce, floatToBits(v)); err != nil {
		return 0, err
	}
	out, err := c.Bcast(0, nil)
	if err != nil {
		return 0, err
	}
	return bitsToFloat(out), nil
}

// Gather collects each rank's buffer at root in rank order; only root gets
// the slices (nil elsewhere).
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if c.rank == root {
		out := make([][]byte, c.Size())
		out[root] = data
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			m, err := c.recv(i, tagGather)
			if err != nil {
				return nil, err
			}
			out[i] = m.Data
		}
		return out, nil
	}
	return nil, c.send(root, tagGather, data)
}

func floatToBits(v float64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], floatBits(v))
	return buf[:]
}

func bitsToFloat(b []byte) float64 {
	return floatFromBits(binary.BigEndian.Uint64(b))
}

// floatBits and floatFromBits isolate the math import to two tiny helpers.
func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
