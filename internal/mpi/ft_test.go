package mpi

import (
	"fmt"
	"testing"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
)

// TestRecvTimeout: a too-short wait times out without losing messages; a
// long enough wait delivers; non-matching traffic is kept for later.
func TestRecvTimeout(t *testing.T) {
	k, w := simWorld(t, 2)
	var early, late bool
	var gotOther Message
	w.Launch(func(c *Comm) error {
		if c.Rank() == 1 {
			c.Env().Sleep(100 * time.Millisecond)
			if err := c.Send(0, 7, []byte("slow")); err != nil {
				return err
			}
			return c.Send(0, 8, []byte("other"))
		}
		// Times out before the sender wakes up.
		_, ok, err := c.RecvTimeout(1, 7, 10*time.Millisecond)
		if err != nil {
			return err
		}
		early = ok
		// Long enough: the message arrives.
		m, ok, err := c.RecvTimeout(1, 7, time.Second)
		if err != nil {
			return err
		}
		late = ok && string(m.Data) == "slow"
		// The tag-8 message is still retrievable by a normal Recv.
		gotOther, err = c.Recv(1, 8)
		return err
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if early {
		t.Error("10ms RecvTimeout matched a message sent at t=100ms")
	}
	if !late {
		t.Error("1s RecvTimeout missed the message")
	}
	if string(gotOther.Data) != "other" {
		t.Errorf("tag-8 message = %q", gotOther.Data)
	}
}

// TestRankErrs: per-rank outcomes are exposed in rank order.
func TestRankErrs(t *testing.T) {
	k, w := simWorld(t, 3)
	w.Launch(func(c *Comm) error {
		if c.Rank() == 1 {
			return ErrInvalidTag // stand-in application error
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	errs := w.RankErrs()
	if len(errs) != 3 || errs[0] != nil || errs[1] == nil || errs[2] != nil {
		t.Fatalf("RankErrs = %v", errs)
	}
}

// TestRecvTimeoutUnderLinkFlap exercises the failure-detection primitive on
// a flapping link: while the receiver's link is down, RecvTimeout returns
// ok=false on schedule (virtual time keeps flowing); once the flap's up
// phase restores service, in-flight messages deliver and nothing is lost or
// reordered.
func TestRecvTimeoutUnderLinkFlap(t *testing.T) {
	k := sim.New()
	net := simnet.New(k)
	net.AddRouter("sw", "")
	pls := make([]Placement, 2)
	for i := range pls {
		name := fmt.Sprintf("node%d", i)
		net.AddHost(name, simnet.HostConfig{})
		net.Connect(name, "sw", simnet.LinkConfig{Latency: 100 * time.Microsecond, Bandwidth: 12 << 20})
		pls[i] = Placement{Name: name, Spawn: net.Node(name).SpawnOn}
	}
	w := NewWorld(pls)
	// node0's link is down 60ms of every 100ms, from 10ms to 510ms: any
	// send landing in a down phase stalls on the wire until the next up.
	if err := net.ApplyPlan((&simnet.FaultPlan{}).
		LinkFlap("node0", "sw", 100*time.Millisecond, 0.6, 10*time.Millisecond, 510*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	var timeouts, deliveries int
	var order []string
	w.Launch(func(c *Comm) error {
		if c.Rank() == 1 {
			for i := 0; i < 5; i++ {
				if err := c.Send(0, 7, []byte(fmt.Sprintf("m%d", i))); err != nil {
					return err
				}
				c.Env().Sleep(100 * time.Millisecond)
			}
			return nil
		}
		deadline := c.Env().Now() + 2*time.Second
		for deliveries < 5 && c.Env().Now() < deadline {
			m, ok, err := c.RecvTimeout(1, 7, 30*time.Millisecond)
			if err != nil {
				return err
			}
			if !ok {
				timeouts++
				continue
			}
			deliveries++
			order = append(order, string(m.Data))
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if deliveries != 5 {
		t.Fatalf("delivered %d of 5 messages across the flap", deliveries)
	}
	if timeouts == 0 {
		t.Error("no RecvTimeout expirations during the down phases")
	}
	for i, m := range order {
		if want := fmt.Sprintf("m%d", i); m != want {
			t.Fatalf("order[%d] = %q, want %q (stream reordered)", i, m, want)
		}
	}
}
