package mpi

import (
	"testing"
	"time"
)

// TestRecvTimeout: a too-short wait times out without losing messages; a
// long enough wait delivers; non-matching traffic is kept for later.
func TestRecvTimeout(t *testing.T) {
	k, w := simWorld(t, 2)
	var early, late bool
	var gotOther Message
	w.Launch(func(c *Comm) error {
		if c.Rank() == 1 {
			c.Env().Sleep(100 * time.Millisecond)
			if err := c.Send(0, 7, []byte("slow")); err != nil {
				return err
			}
			return c.Send(0, 8, []byte("other"))
		}
		// Times out before the sender wakes up.
		_, ok, err := c.RecvTimeout(1, 7, 10*time.Millisecond)
		if err != nil {
			return err
		}
		early = ok
		// Long enough: the message arrives.
		m, ok, err := c.RecvTimeout(1, 7, time.Second)
		if err != nil {
			return err
		}
		late = ok && string(m.Data) == "slow"
		// The tag-8 message is still retrievable by a normal Recv.
		gotOther, err = c.Recv(1, 8)
		return err
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if early {
		t.Error("10ms RecvTimeout matched a message sent at t=100ms")
	}
	if !late {
		t.Error("1s RecvTimeout missed the message")
	}
	if string(gotOther.Data) != "other" {
		t.Errorf("tag-8 message = %q", gotOther.Data)
	}
}

// TestRankErrs: per-rank outcomes are exposed in rank order.
func TestRankErrs(t *testing.T) {
	k, w := simWorld(t, 3)
	w.Launch(func(c *Comm) error {
		if c.Rank() == 1 {
			return ErrInvalidTag // stand-in application error
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	errs := w.RankErrs()
	if len(errs) != 3 || errs[0] != nil || errs[1] == nil || errs[2] != nil {
		t.Fatalf("RankErrs = %v", errs)
	}
}
