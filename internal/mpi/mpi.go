// Package mpi implements the subset of MPI the paper's application layer
// needs, in the architecture of MPICH-G: point-to-point messages and
// collectives built on Nexus remote service requests, with the Nexus Proxy
// underneath when ranks sit behind firewalls. Each rank is one process (in
// the simulator, one virtual process on its cluster node; on real TCP, one
// goroutine).
//
// Supported: ranks/size, Send/Recv with tags, AnySource/AnyTag wildcards,
// Iprobe/Probe, Barrier, Bcast, Reduce/Allreduce (int64 and float64 sums,
// min, max), Gather, and Wtime. Unsupported (and unneeded by the paper's
// workloads): communicators other than COMM_WORLD, derived datatypes,
// one-sided operations.
package mpi

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"nxcluster/internal/nexus"
	"nxcluster/internal/obs"
	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

// AnySource matches messages from every rank in Recv/Probe.
const AnySource = -1

// AnyTag matches every user tag in Recv/Probe.
const AnyTag = -1

// Internal tags live in negative space below AnyTag; user tags must be >= 0.
const (
	tagBarrier      = -10
	tagBarrierDone  = -11
	tagBcast        = -12
	tagReduce       = -13
	tagReduceResult = -14
	tagGather       = -15
)

// handler id for data messages on each rank's endpoint.
const hData = 1

// ErrInvalidTag reports a user tag in the reserved negative space.
var ErrInvalidTag = errors.New("mpi: user tags must be >= 0")

// Message is a received point-to-point message.
type Message struct {
	// Src is the sending rank.
	Src int
	// Tag is the user tag.
	Tag int
	// Data is the payload.
	Data []byte
}

// Placement describes where one rank runs and how it reaches the world.
type Placement struct {
	// Name labels the rank's process (host/cluster name for reports).
	Name string
	// Spawn places the rank's process on its host (e.g. Node.SpawnOn).
	Spawn func(name string, fn func(transport.Env))
	// Proxy is the rank's Nexus Proxy configuration; zero means direct
	// communication (the paper's non-firewalled sites).
	Proxy proxy.Config
}

// World wires a set of ranks together and runs the application function on
// each. Create it with NewWorld, then Launch.
type World struct {
	placements []Placement
	key        string // distinguishes this world's roster board from others'
	mu         sync.Mutex
	addrs      []string
	errs       []error
	done       int
	doneCh     chan struct{}
}

// worldSeq numbers worlds so each gets a unique bulletin-board key. Only
// uniqueness matters: board keys never appear in any output.
var worldSeq atomic.Uint64

// NewWorld prepares a world with one rank per placement.
func NewWorld(placements []Placement) *World {
	return &World{
		placements: placements,
		key:        "mpi:world" + strconv.FormatUint(worldSeq.Add(1), 10),
		addrs:      make([]string, len(placements)),
		errs:       make([]error, len(placements)),
		doneCh:     make(chan struct{}),
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.placements) }

// Launch spawns every rank; each runs fn with its Comm. In the simulator,
// drive the kernel afterwards and then inspect Err; on real TCP, Wait blocks
// until all ranks return.
func (w *World) Launch(fn func(c *Comm) error) {
	for i, pl := range w.placements {
		i, pl := i, pl
		pl.Spawn(fmt.Sprintf("mpi:rank%d:%s", i, pl.Name), func(env transport.Env) {
			err := w.runRank(env, i, pl, fn)
			w.mu.Lock()
			w.errs[i] = err
			w.done++
			finished := w.done == len(w.placements)
			w.mu.Unlock()
			if finished {
				close(w.doneCh)
			}
		})
	}
}

// Wait blocks the calling goroutine until every rank has returned. Only for
// real-TCP worlds; simulated worlds complete when the kernel drains.
func (w *World) Wait() { <-w.doneCh }

// Err returns the first rank error, annotated with its rank.
func (w *World) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, err := range w.errs {
		if err != nil {
			return fmt.Errorf("rank %d (%s): %w", i, w.placements[i].Name, err)
		}
	}
	return nil
}

// runRank boots one rank: create its Nexus context/endpoint, publish the
// address, wait for the full roster (the DUROC-style startup barrier), then
// run the application.
func (w *World) runRank(env transport.Env, rank int, pl Placement, fn func(*Comm) error) error {
	// On a partitioned parallel simulation the roster crosses partition
	// boundaries through a bulletin board; declare interest before Init so
	// the board exists even while proxied ranks block in their registration
	// handshake. Monolithic and real-TCP runs get nil and use the shared
	// roster slice below, exactly as before.
	bb := transport.BoardOf(env, w.key)
	if bb != nil {
		bb.SetExpected(len(w.placements))
	}
	// Each rank is a traced job: its root span covers init, the roster
	// barrier and the application, and every span opened below (proxy
	// connects, dials, staging, solver phases) parents under it through the
	// process's ambient context. Ranks launched from an already-traced
	// process (a Q server exec span) join that trace instead of rooting one.
	if o := obs.From(env); o != nil {
		tc := o.BeginSpan(env.Now(), obs.CtxOf(env), "mpi", "rank", env.Hostname(),
			obs.Int("rank", int64(rank)), obs.Str("placement", pl.Name))
		obs.SetCtx(env, tc)
		defer func() { o.EndSpan(env.Now(), tc, "mpi", "rank", env.Hostname()) }()
	}
	ctx, err := nexus.Init(env, pl.Proxy)
	if err != nil {
		return fmt.Errorf("mpi: rank %d init: %w", rank, err)
	}
	defer ctx.Shutdown(env)

	c := &Comm{
		env:   env,
		world: w,
		rank:  rank,
		ctx:   ctx,
		sps:   make([]*nexus.Startpoint, len(w.placements)),
		inbox: transport.NewQueue[Message](env),
	}
	if o := obs.From(env); o != nil {
		pfx := "mpi.rank" + strconv.Itoa(rank)
		c.mSent = o.Metrics().Counter(pfx + ".sent")
		c.mBytes = o.Metrics().Counter(pfx + ".sent_bytes")
		c.mRecvd = o.Metrics().Counter(pfx + ".received")
	}
	ep := ctx.NewEndpoint()
	ep.Register(hData, func(e transport.Env, b *nexus.Buffer) {
		src, err1 := b.GetInt32()
		tag, err2 := b.GetInt32()
		data, err3 := b.GetBytes()
		if err1 != nil || err2 != nil || err3 != nil {
			return // malformed; drop
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		c.inbox.Put(e, Message{Src: int(src), Tag: int(tag), Data: cp})
	})

	// Publish the address and poll until the whole roster is there.
	// (MPICH-G performs the same job-wide startup synchronization through
	// DUROC.)
	if bb != nil {
		c.bb = bb
		bb.Put(strconv.Itoa(rank), ep.Address())
		for !bb.Complete() {
			env.Sleep(1e6) // 1ms
		}
	} else {
		w.mu.Lock()
		w.addrs[rank] = ep.Address()
		w.mu.Unlock()
		for {
			w.mu.Lock()
			complete := true
			for _, a := range w.addrs {
				if a == "" {
					complete = false
					break
				}
			}
			w.mu.Unlock()
			if complete {
				break
			}
			env.Sleep(1e6) // 1ms
		}
	}

	appErr := fn(c)
	c.closeStartpoints()
	return appErr
}

// Comm is one rank's handle on COMM_WORLD.
type Comm struct {
	env     transport.Env
	world   *World
	rank    int
	ctx     *nexus.Context
	bb      transport.BulletinBoard // partitioned-simulation roster; nil otherwise
	sps     []*nexus.Startpoint
	inbox   transport.Queue[Message]
	pending []Message
	// counters
	sent, received int64
	sentBytes      int64
	// cached observability handles (nil when tracing is off — updates are
	// then branch-and-return no-ops, keeping the send path allocation-free)
	mSent  *obs.Counter
	mBytes *obs.Counter
	mRecvd *obs.Counter
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.Size() }

// Name returns the placement name of a rank.
func (c *Comm) Name(rank int) string { return c.world.placements[rank].Name }

// Env exposes the rank's execution environment (for Compute, Sleep, Now).
func (c *Comm) Env() transport.Env { return c.env }

// Wtime returns the environment clock, like MPI_Wtime.
func (c *Comm) Wtime() float64 { return c.env.Now().Seconds() }

// SentCount reports messages sent by this rank.
func (c *Comm) SentCount() int64 { return c.sent }

// ReceivedCount reports messages received by this rank.
func (c *Comm) ReceivedCount() int64 { return c.received }

// SentBytes reports payload bytes sent by this rank.
func (c *Comm) SentBytes() int64 { return c.sentBytes }

func (c *Comm) startpoint(to int) (*nexus.Startpoint, error) {
	if to < 0 || to >= c.Size() {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", to, c.Size())
	}
	if c.sps[to] == nil {
		var addr string
		if c.bb != nil {
			addr, _ = c.bb.Get(strconv.Itoa(to))
		} else {
			c.world.mu.Lock()
			addr = c.world.addrs[to]
			c.world.mu.Unlock()
		}
		sp, err := c.ctx.Attach(c.env, addr)
		if err != nil {
			return nil, fmt.Errorf("mpi: attach rank %d: %w", to, err)
		}
		c.sps[to] = sp
	}
	return c.sps[to], nil
}

func (c *Comm) closeStartpoints() {
	for _, sp := range c.sps {
		if sp != nil {
			_ = sp.Close(c.env)
		}
	}
}

// send transmits (tag may be internal).
func (c *Comm) send(to, tag int, data []byte) error {
	sp, err := c.startpoint(to)
	if err != nil {
		return err
	}
	b := nexus.NewBuffer()
	b.PutInt32(int32(c.rank))
	b.PutInt32(int32(tag))
	b.PutBytes(data)
	if err := sp.Send(c.env, hData, b); err != nil {
		return err
	}
	c.sent++
	c.sentBytes += int64(len(data))
	c.mSent.Add(1)
	c.mBytes.Add(int64(len(data)))
	return nil
}

// Send transmits data to rank `to` with a user tag.
func (c *Comm) Send(to, tag int, data []byte) error {
	if tag < 0 {
		return ErrInvalidTag
	}
	return c.send(to, tag, data)
}

func match(m Message, src, tag int) bool {
	return (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag)
}

// recv blocks for a message matching (src, tag), including internal tags.
func (c *Comm) recv(src, tag int) (Message, error) {
	for i, m := range c.pending {
		if match(m, src, tag) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.received++
			c.mRecvd.Add(1)
			return m, nil
		}
	}
	for {
		m, ok := c.inbox.Get(c.env)
		if !ok {
			return Message{}, errors.New("mpi: inbox closed")
		}
		if match(m, src, tag) {
			c.received++
			c.mRecvd.Add(1)
			return m, nil
		}
		c.pending = append(c.pending, m)
	}
}

// Recv blocks for a message from src (or AnySource) with tag (or AnyTag).
// Wildcards never match internal collective traffic.
func (c *Comm) Recv(src, tag int) (Message, error) {
	if tag < 0 && tag != AnyTag {
		return Message{}, ErrInvalidTag
	}
	if tag == AnyTag {
		return c.recvUser(src)
	}
	return c.recv(src, tag)
}

// recvUser blocks for any user-tagged (>= 0) message from src.
func (c *Comm) recvUser(src int) (Message, error) {
	for i, m := range c.pending {
		if m.Tag >= 0 && (src == AnySource || m.Src == src) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.received++
			c.mRecvd.Add(1)
			return m, nil
		}
	}
	for {
		m, ok := c.inbox.Get(c.env)
		if !ok {
			return Message{}, errors.New("mpi: inbox closed")
		}
		if m.Tag >= 0 && (src == AnySource || m.Src == src) {
			c.received++
			c.mRecvd.Add(1)
			return m, nil
		}
		c.pending = append(c.pending, m)
	}
}

// Iprobe reports whether a matching user message is available without
// receiving it.
func (c *Comm) Iprobe(src, tag int) bool {
	// Drain everything already delivered into pending, then scan.
	for {
		m, ok := c.inbox.TryGet(c.env)
		if !ok {
			break
		}
		c.pending = append(c.pending, m)
	}
	for _, m := range c.pending {
		if m.Tag >= 0 && match(m, src, tag) {
			return true
		}
	}
	return false
}
