package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestIsendIrecvOverlap(t *testing.T) {
	k, w := simWorld(t, 2)
	w.Launch(func(c *Comm) error {
		if c.Rank() == 1 {
			// Send in reverse tag order; the receiver posted both already.
			c.Env().Sleep(time.Second)
			if _, err := c.Isend(0, 2, []byte("two")); err != nil {
				return err
			}
			if _, err := c.Isend(0, 1, []byte("one")); err != nil {
				return err
			}
			return nil
		}
		r1, err := c.Irecv(1, 1)
		if err != nil {
			return err
		}
		r2, err := c.Irecv(1, 2)
		if err != nil {
			return err
		}
		// Nothing has arrived yet.
		if _, done, _ := r1.Test(); done {
			return fmt.Errorf("Test true before send")
		}
		if err := WaitAll(r1, r2); err != nil {
			return err
		}
		m1, _ := r1.Wait() // idempotent after completion
		m2, _ := r2.Wait()
		if string(m1.Data) != "one" || string(m2.Data) != "two" {
			return fmt.Errorf("payloads %q/%q", m1.Data, m2.Data)
		}
		if !r1.Done() {
			return fmt.Errorf("Done=false after Wait")
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestTestPollsToCompletion(t *testing.T) {
	k, w := simWorld(t, 2)
	w.Launch(func(c *Comm) error {
		if c.Rank() == 1 {
			c.Env().Sleep(500 * time.Millisecond)
			_, err := c.Isend(0, 7, []byte("x"))
			return err
		}
		r, err := c.Irecv(AnySource, AnyTag)
		if err != nil {
			return err
		}
		for {
			m, done, err := r.Test()
			if err != nil {
				return err
			}
			if done {
				if string(m.Data) != "x" || m.Tag != 7 {
					return fmt.Errorf("m = %+v", m)
				}
				return nil
			}
			c.Env().Sleep(50 * time.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestTagValidation(t *testing.T) {
	k, w := simWorld(t, 1)
	w.Launch(func(c *Comm) error {
		if _, err := c.Isend(0, -3, nil); !errors.Is(err, ErrInvalidTag) {
			return fmt.Errorf("Isend bad tag = %v", err)
		}
		if _, err := c.Irecv(0, -3); !errors.Is(err, ErrInvalidTag) {
			return fmt.Errorf("Irecv bad tag = %v", err)
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}
