// Package scenario is the declarative experiment DSL: a YAML/JSON file
// declares a topology (the Figure 5 testbed plus extra grid sites, link
// overrides, firewall state), a workload (the paper's Table 2/Table 4
// measurements, chaos runs under a fault schedule, the monitoring plane, the
// gridftp congestion sweep, or a wide-grid parallel-DES solve), a fault
// schedule reusing simnet.FaultPlan's primitives, and a list of end-of-run
// assertions reusing the chaos invariant library.
//
// Scenarios compile to exactly the configurations the hand-wired
// `experiments -run ...` code paths use, so a ported scenario reproduces the
// legacy run bit for bit, and every scenario doubles as a deterministic
// regression test: Run executes each scenario twice and the two runs must
// agree on a canonical result fingerprint (and, where an observer is
// attached, the full FNV-64a trace hash).
//
// The file format is a strict subset of YAML — block maps, block sequences,
// inline [flow] lists and {flow} maps, quoted and plain scalars, comments —
// plus plain JSON (a document whose first byte is '{' parses with
// encoding/json). Parsing never panics on malformed input (FuzzScenario
// enforces the same contract ApplyPlan gives fault plans), unknown keys are
// errors, and durations are written as Go duration strings ("250ms", "1m30s").
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// parseDocument parses a scenario document — the YAML subset, or JSON when
// the first non-space byte is '{' — into generic values: map[string]any,
// []any, string, bool, int64, float64, nil.
func parseDocument(data []byte) (any, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return parseJSON(data)
	}
	return parseYAML(data)
}

func parseJSON(data []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("scenario: json: %v", err)
	}
	// Trailing non-space content after the document is an error, whether or
	// not it happens to be valid JSON itself.
	var extra any
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("scenario: json: trailing content after document")
	}
	return normalizeJSON(v), nil
}

// normalizeJSON converts json.Number leaves to int64 (when integral) or
// float64, matching the YAML parser's scalar types.
func normalizeJSON(v any) any {
	switch t := v.(type) {
	case map[string]any:
		for k, e := range t {
			t[k] = normalizeJSON(e)
		}
		return t
	case []any:
		for i, e := range t {
			t[i] = normalizeJSON(e)
		}
		return t
	case json.Number:
		if i, err := strconv.ParseInt(t.String(), 10, 64); err == nil {
			return i
		}
		f, _ := t.Float64()
		return f
	default:
		return v
	}
}

// yamlLine is one significant (non-blank, non-comment) line of the document.
type yamlLine struct {
	num    int // 1-based line number in the source
	indent int // leading spaces
	text   string
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

func parseYAML(data []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \t\r")
		stripped, err := stripComment(line)
		if err != nil {
			return nil, fmt.Errorf("scenario: line %d: %v", i+1, err)
		}
		if strings.TrimSpace(stripped) == "" {
			continue
		}
		indent := 0
		for indent < len(stripped) && stripped[indent] == ' ' {
			indent++
		}
		if strings.HasPrefix(stripped[indent:], "\t") || strings.Contains(stripped[:indent], "\t") {
			return nil, fmt.Errorf("scenario: line %d: tab in indentation (use spaces)", i+1)
		}
		lines = append(lines, yamlLine{num: i + 1, indent: indent, text: stripped[indent:]})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("scenario: empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseValue(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, fmt.Errorf("scenario: line %d: unexpected content %q (indentation does not match any open block)",
			p.lines[p.pos].num, p.lines[p.pos].text)
	}
	return v, nil
}

// stripComment removes a trailing "#..." comment, respecting quotes.
func stripComment(line string) (string, error) {
	var quote byte
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++ // skip escaped char inside double quotes
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#':
			// A comment starts at '#' preceded by start-of-line or whitespace.
			if i == 0 || line[i-1] == ' ' || line[i-1] == '\t' {
				return line[:i], nil
			}
		}
	}
	if quote != 0 {
		return "", fmt.Errorf("unterminated %c-quoted string", quote)
	}
	return line, nil
}

func (p *yamlParser) parseValue(indent int) (any, error) {
	ln := p.lines[p.pos]
	if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
		return p.parseSeq(indent)
	}
	if _, _, ok := splitKey(ln.text); ok {
		return p.parseMap(indent)
	}
	// A single scalar line.
	p.pos++
	return parseScalar(ln.text, ln.num)
}

func (p *yamlParser) parseMap(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("scenario: line %d: unexpected indentation", ln.num)
		}
		keyText, rest, ok := splitKey(ln.text)
		if !ok {
			return nil, fmt.Errorf("scenario: line %d: expected \"key: value\", got %q", ln.num, ln.text)
		}
		key, err := unquoteKey(keyText, ln.num)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("scenario: line %d: duplicate key %q", ln.num, key)
		}
		p.pos++
		if rest != "" {
			v, err := parseInline(rest, ln.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// Block value on the following more-indented lines, or null.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseValue(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

func (p *yamlParser) parseSeq(indent int) (any, error) {
	var seq []any
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent || (ln.text != "-" && !strings.HasPrefix(ln.text, "- ")) {
			if ln.indent > indent {
				return nil, fmt.Errorf("scenario: line %d: unexpected indentation", ln.num)
			}
			break
		}
		if ln.text == "-" {
			// The item is a nested block on the following lines.
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.parseValue(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				seq = append(seq, v)
			} else {
				seq = append(seq, nil)
			}
			continue
		}
		rest := strings.TrimLeft(ln.text[2:], " ")
		itemIndent := indent + (len(ln.text) - len(rest))
		if _, _, isMap := splitKey(rest); isMap {
			// "- key: value" opens a map whose further keys sit at itemIndent.
			p.lines[p.pos] = yamlLine{num: ln.num, indent: itemIndent, text: rest}
			v, err := p.parseMap(itemIndent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		p.pos++
		v, err := parseInline(rest, ln.num)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

// splitKey splits "key: rest" (or "key:") at the first top-level colon that
// ends a mapping key. Returns ok=false for plain scalars.
func splitKey(s string) (key, rest string, ok bool) {
	var quote byte
	depth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0:
			if i+1 == len(s) {
				return s[:i], "", true
			}
			if s[i+1] == ' ' {
				return s[:i], strings.TrimSpace(s[i+1:]), true
			}
		}
	}
	return "", "", false
}

func unquoteKey(s string, lineNum int) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') {
		v, err := parseScalar(s, lineNum)
		if err != nil {
			return "", err
		}
		str, ok := v.(string)
		if !ok {
			return "", fmt.Errorf("scenario: line %d: invalid map key %q", lineNum, s)
		}
		return str, nil
	}
	if s == "" {
		return "", fmt.Errorf("scenario: line %d: empty map key", lineNum)
	}
	return s, nil
}

// maxFlowDepth bounds flow-collection nesting so a pathological
// "[[[[..." document errors instead of exhausting the stack.
const maxFlowDepth = 64

// parseInline parses an inline value: a flow list, a flow map, or a scalar.
func parseInline(s string, lineNum int) (any, error) {
	return parseInlineDepth(s, lineNum, 0)
}

func parseInlineDepth(s string, lineNum, depth int) (any, error) {
	if depth > maxFlowDepth {
		return nil, fmt.Errorf("scenario: line %d: flow nesting deeper than %d levels", lineNum, maxFlowDepth)
	}
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("scenario: line %d: unterminated flow list %q", lineNum, s)
		}
		parts, err := splitFlow(s[1:len(s)-1], lineNum)
		if err != nil {
			return nil, err
		}
		seq := []any{}
		for _, part := range parts {
			v, err := parseInlineDepth(part, lineNum, depth+1)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		}
		return seq, nil
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, fmt.Errorf("scenario: line %d: unterminated flow map %q", lineNum, s)
		}
		parts, err := splitFlow(s[1:len(s)-1], lineNum)
		if err != nil {
			return nil, err
		}
		m := map[string]any{}
		for _, part := range parts {
			keyText, rest, ok := splitKey(part)
			if !ok {
				// Allow "key:" with no space inside flow maps: {a:1} is a
				// common slip; report it clearly rather than guessing.
				return nil, fmt.Errorf("scenario: line %d: flow map entry %q is not \"key: value\"", lineNum, part)
			}
			key, err := unquoteKey(keyText, lineNum)
			if err != nil {
				return nil, err
			}
			if _, dup := m[key]; dup {
				return nil, fmt.Errorf("scenario: line %d: duplicate key %q", lineNum, key)
			}
			v, err := parseInlineDepth(rest, lineNum, depth+1)
			if err != nil {
				return nil, err
			}
			m[key] = v
		}
		return m, nil
	default:
		return parseScalar(s, lineNum)
	}
}

// splitFlow splits a flow body on top-level commas.
func splitFlow(s string, lineNum int) ([]string, error) {
	var parts []string
	var quote byte
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("scenario: line %d: unbalanced brackets in %q", lineNum, s)
			}
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("scenario: line %d: unbalanced brackets in %q", lineNum, s)
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" || len(parts) > 0 {
		parts = append(parts, s[start:])
	}
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("scenario: line %d: empty flow entry", lineNum)
		}
		out = append(out, p)
	}
	return out, nil
}

// parseScalar converts a scalar token: quoted strings, null, booleans,
// integers, floats; anything else (including durations like "250ms") stays a
// string.
func parseScalar(s string, lineNum int) (any, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("scenario: line %d: bad quoted string %s", lineNum, s)
		}
		return v, nil
	}
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	switch s {
	case "null", "~", "":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if strings.ContainsAny(s, "0123456789") && !strings.ContainsAny(s, " ") {
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f, nil
		}
	}
	return s, nil
}
