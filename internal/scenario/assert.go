package scenario

import (
	"fmt"
	"time"

	"nxcluster/internal/bench"
	"nxcluster/internal/chaos"
	"nxcluster/internal/knapsack"
)

// check is one compiled assertion for a non-chaos kind; chaos asserts
// compile straight to chaos.Invariant so chaos.RunScenario owns them.
type check struct {
	Name string
	Fn   func(v any) error
}

// compiled assertions for one spec: exactly one of the two slices is
// populated, matching the kind.
type asserts struct {
	chaos []chaos.Invariant
	other []check
}

// buildAsserts validates every assert entry's name and argument for the
// spec's kind and returns the compiled checkers. Unknown names and
// ill-typed arguments error here, so `simulator validate` rejects them
// without running anything.
func buildAsserts(s *Spec) (*asserts, error) {
	out := &asserts{}
	for i, a := range s.Asserts {
		path := fmt.Sprintf("scenario %s: assert[%d] %s", s.Name, i, a.Name)
		if s.Kind == KindChaos {
			inv, err := chaosInvariant(a, path)
			if err != nil {
				return nil, err
			}
			out.chaos = append(out.chaos, inv)
			continue
		}
		c, err := otherCheck(s.Kind, a, path)
		if err != nil {
			return nil, err
		}
		out.other = append(out.other, c)
	}
	return out, nil
}

// --- argument coercion ---

func argNone(a AssertSpec, path string) error {
	if a.Arg != nil {
		return fmt.Errorf("%s: takes no argument", path)
	}
	return nil
}

func argInt(a AssertSpec, path string) (int, error) {
	n, err := coerceInt(a.Arg, path)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("%s: must be >= 0, got %d", path, n)
	}
	return int(n), nil
}

func argFloat(a AssertSpec, path string) (float64, error) {
	return coerceFloat(a.Arg, path)
}

func argDuration(a AssertSpec, path string) (time.Duration, error) {
	return coerceDuration(a.Arg, path)
}

func argString(a AssertSpec, path string) (string, error) {
	s, ok := a.Arg.(string)
	if !ok {
		return "", fmt.Errorf("%s: must be a string, got %s", path, typeName(a.Arg))
	}
	return s, nil
}

func argMinMax(a AssertSpec, path string) (int, int, error) {
	o, err := asObject(a.Arg, path)
	if err != nil {
		return 0, 0, err
	}
	min, err := o.integer("min", 0)
	if err != nil {
		return 0, 0, err
	}
	max, err := o.integer("max", 0)
	if err != nil {
		return 0, 0, err
	}
	if err := o.finish(); err != nil {
		return 0, 0, err
	}
	return int(min), int(max), nil
}

// --- chaos assertions ---

func chaosInvariant(a AssertSpec, path string) (chaos.Invariant, error) {
	var zero chaos.Invariant
	switch a.Name {
	case "exact-optimum":
		return chaos.ExactOptimum(), argNone(a, path)
	case "all-work-done":
		return chaos.AllWorkDone(), argNone(a, path)
	case "no-orphans":
		return chaos.NoOrphans(), argNone(a, path)
	case "no-rank-errors":
		return chaos.NoRankErrors(), argNone(a, path)
	case "registrations":
		min, max, err := argMinMax(a, path)
		if err != nil {
			return zero, err
		}
		return chaos.Registrations(min, max), nil
	case "suspect-periods":
		n, err := argInt(a, path)
		if err != nil {
			return zero, err
		}
		return chaos.SuspectPeriods(n), nil
	case "job-completed":
		return chaos.JobCompleted(), argNone(a, path)
	case "job-off-host":
		h, err := argString(a, path)
		if err != nil {
			return zero, err
		}
		return chaos.JobOffHost(h), nil
	case "min-requeues":
		n, err := argInt(a, path)
		if err != nil {
			return zero, err
		}
		return chaos.MinRequeues(n), nil
	case "max-requeues":
		n, err := argInt(a, path)
		if err != nil {
			return zero, err
		}
		return chaos.MaxRequeues(n), nil
	case "min-speculations":
		n, err := argInt(a, path)
		if err != nil {
			return zero, err
		}
		return chaos.MinSpeculations(n), nil
	case "elapsed-ceiling":
		d, err := argDuration(a, path)
		if err != nil {
			return zero, err
		}
		return chaos.ElapsedCeiling(d), nil
	case "hbm-all-up":
		return chaos.HBMAllUp(), argNone(a, path)
	case "hbm-suspects":
		n, err := argInt(a, path)
		if err != nil {
			return zero, err
		}
		return chaos.HBMSuspectsSeen(int64(n)), nil
	case "hbm-no-downs":
		return chaos.HBMNoDowns(), argNone(a, path)
	case "extra-jobs-done":
		n, err := argInt(a, path)
		if err != nil {
			return zero, err
		}
		return chaos.ExtraJobsDone(n), nil
	}
	return zero, fmt.Errorf("%s: unknown chaos assertion (one of: exact-optimum, all-work-done, no-orphans, no-rank-errors, registrations, suspect-periods, job-completed, job-off-host, min-requeues, max-requeues, min-speculations, elapsed-ceiling, hbm-all-up, hbm-suspects, hbm-no-downs, extra-jobs-done)", path)
}

// comparatorOf resolves a named baseline comparator for chaos scenarios.
func comparatorOf(name string) (func(rep, base *chaos.Report) error, error) {
	switch name {
	case "speculation-wins":
		// The mitigated run's job must finish strictly earlier than the
		// baseline's, with both keeping the exact optimum.
		return func(rep, base *chaos.Report) error {
			if base.JobErr != nil {
				return fmt.Errorf("baseline job error: %v", base.JobErr)
			}
			if rep.JobDone >= base.JobDone {
				return fmt.Errorf("speculation did not win: job done at %v, baseline %v", rep.JobDone, base.JobDone)
			}
			if rep.Best != rep.WantBest || base.Best != base.WantBest {
				return fmt.Errorf("optimum drifted: spec %d base %d want %d", rep.Best, base.Best, rep.WantBest)
			}
			return nil
		}, nil
	case "baseline-reregisters":
		// The baseline (without the mitigation) must have flapped through
		// at least one re-registration — proof the mitigation is load-bearing.
		return func(rep, base *chaos.Report) error {
			if base.InnerRegistrations < 2 {
				return fmt.Errorf("baseline without a miss budget re-registered %d times, want >= 2 (the budget should be what prevents the flap)", base.InnerRegistrations)
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("unknown compare %q (one of: speculation-wins, baseline-reregisters)", name)
}

// --- non-chaos assertions ---

func otherCheck(kind Kind, a AssertSpec, path string) (check, error) {
	var zero check
	switch kind {
	case KindTable2:
		switch a.Name {
		case "rows":
			n, err := argInt(a, path)
			if err != nil {
				return zero, err
			}
			return check{a.Name, func(v any) error {
				rows := v.([]bench.Table2Row)
				if len(rows) != n {
					return fmt.Errorf("rows = %d, want %d", len(rows), n)
				}
				return nil
			}}, nil
		case "indirect-slower":
			// Every proxied measurement must cost more latency than its
			// direct counterpart on the same path — the paper's Table 2
			// headline.
			return check{a.Name, func(v any) error {
				rows := v.([]bench.Table2Row)
				direct := map[string]time.Duration{}
				for _, r := range rows {
					if !r.Indirect {
						direct[r.Path] = r.Latency
					}
				}
				for _, r := range rows {
					if !r.Indirect {
						continue
					}
					d, ok := direct[r.Path]
					if !ok {
						return fmt.Errorf("%s has no direct counterpart", r.Path)
					}
					if r.Latency <= d {
						return fmt.Errorf("%s: indirect latency %v <= direct %v", r.Path, r.Latency, d)
					}
				}
				return nil
			}}, argNone(a, path)
		}
		return zero, fmt.Errorf("%s: unknown table2 assertion (one of: rows, indirect-slower)", path)

	case KindTable4:
		switch a.Name {
		case "systems":
			n, err := argInt(a, path)
			if err != nil {
				return zero, err
			}
			return check{a.Name, func(v any) error {
				rep := v.(*bench.KnapsackReport)
				if len(rep.Rows) != n {
					return fmt.Errorf("systems = %d, want %d", len(rep.Rows), n)
				}
				return nil
			}}, nil
		case "proxy-overhead-max":
			f, err := argFloat(a, path)
			if err != nil {
				return zero, err
			}
			return check{a.Name, func(v any) error {
				rep := v.(*bench.KnapsackReport)
				if ov := rep.ProxyOverhead(); ov > f {
					return fmt.Errorf("proxy overhead %.4f > ceiling %.4f", ov, f)
				}
				return nil
			}}, nil
		case "exact-optimum":
			return check{a.Name, func(v any) error {
				rep := v.(*bench.KnapsackReport)
				want := wantBest(rep.Config.Items, rep.Config.Capacity)
				for _, row := range rep.Rows {
					if row.Result != nil && row.Result.Best != want {
						return fmt.Errorf("%s: best = %d, want %d", row.System, row.Result.Best, want)
					}
				}
				return nil
			}}, argNone(a, path)
		case "speedup-positive":
			return check{a.Name, func(v any) error {
				rep := v.(*bench.KnapsackReport)
				for _, row := range rep.Rows {
					if row.Speedup <= 0 {
						return fmt.Errorf("%s: speedup %.3f <= 0", row.System, row.Speedup)
					}
				}
				return nil
			}}, argNone(a, path)
		}
		return zero, fmt.Errorf("%s: unknown table4 assertion (one of: systems, proxy-overhead-max, exact-optimum, speedup-positive)", path)

	case KindMonitor:
		switch a.Name {
		case "min-windows":
			n, err := argInt(a, path)
			if err != nil {
				return zero, err
			}
			return check{a.Name, func(v any) error {
				rep := v.(*bench.MonitorReport)
				if rep.Store.Windows() < n {
					return fmt.Errorf("windows = %d, want >= %d", rep.Store.Windows(), n)
				}
				return nil
			}}, nil
		case "min-series":
			n, err := argInt(a, path)
			if err != nil {
				return zero, err
			}
			return check{a.Name, func(v any) error {
				rep := v.(*bench.MonitorReport)
				if rep.Store.Len() < n {
					return fmt.Errorf("series = %d, want >= %d", rep.Store.Len(), n)
				}
				return nil
			}}, nil
		case "exact-optimum":
			return check{a.Name, func(v any) error {
				rep := v.(*bench.MonitorReport)
				want := wantBest(rep.Config.Items, rep.Config.Capacity)
				if rep.Result == nil || rep.Result.Best != want {
					return fmt.Errorf("best = %v, want %d", resultBest(rep.Result), want)
				}
				return nil
			}}, argNone(a, path)
		}
		return zero, fmt.Errorf("%s: unknown monitor assertion (one of: min-windows, min-series, exact-optimum)", path)

	case KindGridFTP:
		switch a.Name {
		case "points":
			n, err := argInt(a, path)
			if err != nil {
				return zero, err
			}
			return check{a.Name, func(v any) error {
				pts := v.([]bench.TransferPoint)
				if len(pts) != n {
					return fmt.Errorf("points = %d, want %d", len(pts), n)
				}
				return nil
			}}, nil
		case "parallel-streams-win":
			// At the sweep's highest loss rate, the widest stream fan must
			// beat the single stream on goodput — GridFTP's raison d'être.
			return check{a.Name, func(v any) error {
				pts := v.([]bench.TransferPoint)
				var worst float64
				for _, p := range pts {
					if p.LossRate > worst {
						worst = p.LossRate
					}
				}
				var single, widest bench.TransferPoint
				for _, p := range pts {
					if p.LossRate != worst {
						continue
					}
					if p.Streams == 1 {
						single = p
					}
					if p.Streams > widest.Streams {
						widest = p
					}
				}
				if single.Streams != 1 || widest.Streams <= 1 {
					return fmt.Errorf("sweep needs streams 1 and > 1 at loss %.3f to compare", worst)
				}
				if widest.Goodput <= single.Goodput {
					return fmt.Errorf("at loss %.3f: %d streams %.0f B/s <= 1 stream %.0f B/s",
						worst, widest.Streams, widest.Goodput, single.Goodput)
				}
				return nil
			}}, argNone(a, path)
		}
		return zero, fmt.Errorf("%s: unknown gridftp assertion (one of: points, parallel-streams-win)", path)

	case KindGrid:
		switch a.Name {
		case "exact-optimum":
			return check{a.Name, func(v any) error {
				gr := v.(*gridRun)
				want := wantBest(gr.items, gr.capacity)
				if gr.res.Best != want {
					return fmt.Errorf("best = %d, want %d", gr.res.Best, want)
				}
				return nil
			}}, argNone(a, path)
		case "all-work-done":
			return check{a.Name, func(v any) error {
				gr := v.(*gridRun)
				want := knapsack.NormalizedTreeNodes(gr.items, gr.capacity)
				if gr.res.Traversed < want {
					return fmt.Errorf("traversed %d < %d: work was lost", gr.res.Traversed, want)
				}
				return nil
			}}, argNone(a, path)
		case "elapsed-ceiling":
			d, err := argDuration(a, path)
			if err != nil {
				return zero, err
			}
			return check{a.Name, func(v any) error {
				gr := v.(*gridRun)
				if gr.res.Elapsed > d {
					return fmt.Errorf("elapsed %v > ceiling %v", gr.res.Elapsed, d)
				}
				return nil
			}}, nil
		}
		return zero, fmt.Errorf("%s: unknown grid assertion (one of: exact-optimum, all-work-done, elapsed-ceiling)", path)

	case KindFleet:
		switch a.Name {
		case "all-jobs-done":
			return check{a.Name, func(v any) error {
				fr := v.(*fleetRun)
				if fr.res.Jobs != fr.cfg.Jobs {
					return fmt.Errorf("completed %d of %d jobs", fr.res.Jobs, fr.cfg.Jobs)
				}
				return nil
			}}, argNone(a, path)
		case "p99-ceiling":
			d, err := argDuration(a, path)
			if err != nil {
				return zero, err
			}
			return check{a.Name, func(v any) error {
				fr := v.(*fleetRun)
				if fr.res.P99Lat > d {
					return fmt.Errorf("p99 latency %v > ceiling %v", fr.res.P99Lat, d)
				}
				return nil
			}}, nil
		case "max-queued":
			n, err := argInt(a, path)
			if err != nil {
				return zero, err
			}
			return check{a.Name, func(v any) error {
				fr := v.(*fleetRun)
				if fr.res.QueuedPeak > n {
					return fmt.Errorf("gateway queue peaked at %d, ceiling %d", fr.res.QueuedPeak, n)
				}
				return nil
			}}, nil
		case "min-queued":
			// Overload scenarios assert the queues actually filled — proof
			// the flash crowd exceeded capacity rather than being absorbed.
			n, err := argInt(a, path)
			if err != nil {
				return zero, err
			}
			return check{a.Name, func(v any) error {
				fr := v.(*fleetRun)
				if fr.res.QueuedPeak < n {
					return fmt.Errorf("gateway queue peaked at %d, want >= %d", fr.res.QueuedPeak, n)
				}
				return nil
			}}, nil
		case "min-events":
			n, err := argInt(a, path)
			if err != nil {
				return zero, err
			}
			return check{a.Name, func(v any) error {
				fr := v.(*fleetRun)
				if fr.res.Events < uint64(n) {
					return fmt.Errorf("kernel stamped %d events, want >= %d", fr.res.Events, n)
				}
				return nil
			}}, nil
		case "makespan-ceiling":
			d, err := argDuration(a, path)
			if err != nil {
				return zero, err
			}
			return check{a.Name, func(v any) error {
				fr := v.(*fleetRun)
				if fr.res.Makespan > d {
					return fmt.Errorf("makespan %v > ceiling %v", fr.res.Makespan, d)
				}
				return nil
			}}, nil
		}
		return zero, fmt.Errorf("%s: unknown fleet assertion (one of: all-jobs-done, p99-ceiling, max-queued, min-queued, min-events, makespan-ceiling)", path)
	}
	return zero, fmt.Errorf("%s: no assertions defined for kind %s", path, kind)
}

func resultBest(r *knapsack.Result) any {
	if r == nil {
		return "<no result>"
	}
	return r.Best
}
