package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func mustParseDoc(t *testing.T, src string) any {
	t.Helper()
	v, err := parseDocument([]byte(src))
	if err != nil {
		t.Fatalf("parseDocument(%q): %v", src, err)
	}
	return v
}

func TestYAMLBlockMapAndSeq(t *testing.T) {
	v := mustParseDoc(t, `
name: demo
nested:
  a: 1
  b: two
list:
  - x
  - y: 2
    z: 3
`)
	want := map[string]any{
		"name":   "demo",
		"nested": map[string]any{"a": int64(1), "b": "two"},
		"list": []any{
			"x",
			map[string]any{"y": int64(2), "z": int64(3)},
		},
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("got %#v\nwant %#v", v, want)
	}
}

func TestYAMLFlowCollections(t *testing.T) {
	v := mustParseDoc(t, `
ints: [1, 2, 3]
floats: [0, 0.02]
m: {a: rwcp-gw, from: 2s, n: 1}
deep: {groups: ["$rwcp-side", etl-sun]}
`)
	m := v.(map[string]any)
	if !reflect.DeepEqual(m["ints"], []any{int64(1), int64(2), int64(3)}) {
		t.Errorf("ints = %#v", m["ints"])
	}
	if !reflect.DeepEqual(m["floats"], []any{int64(0), 0.02}) {
		t.Errorf("floats = %#v", m["floats"])
	}
	if !reflect.DeepEqual(m["m"], map[string]any{"a": "rwcp-gw", "from": "2s", "n": int64(1)}) {
		t.Errorf("m = %#v", m["m"])
	}
	if !reflect.DeepEqual(m["deep"], map[string]any{"groups": []any{"$rwcp-side", "etl-sun"}}) {
		t.Errorf("deep = %#v", m["deep"])
	}
}

func TestYAMLScalars(t *testing.T) {
	v := mustParseDoc(t, `
s1: plain
s2: "quoted: with colon"
s3: 'single ''quoted'''
b1: true
b2: false
n1: null
n2: ~
i: -42
f: 2.5
dur: 250ms
`)
	m := v.(map[string]any)
	checks := map[string]any{
		"s1": "plain", "s2": "quoted: with colon", "s3": "single 'quoted'",
		"b1": true, "b2": false, "n1": nil, "n2": nil,
		"i": int64(-42), "f": 2.5,
		// Durations must stay strings so time.ParseDuration sees them.
		"dur": "250ms",
	}
	for k, want := range checks {
		if got := m[k]; !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %#v (%T), want %#v", k, got, got, want)
		}
	}
}

func TestYAMLCommentsAndBlankLines(t *testing.T) {
	v := mustParseDoc(t, `
# leading comment
name: demo   # trailing comment

kind: chaos  # another
`)
	want := map[string]any{"name": "demo", "kind": "chaos"}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("got %#v", v)
	}
}

func TestJSONDocument(t *testing.T) {
	v := mustParseDoc(t, `{"name": "demo", "n": 3, "f": 1.5, "l": [1, "x"], "b": true}`)
	want := map[string]any{
		"name": "demo", "n": int64(3), "f": 1.5,
		"l": []any{int64(1), "x"}, "b": true,
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("got %#v\nwant %#v", v, want)
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty", "", "empty"},
		{"tab indent", "a:\n\tb: 1\n", "tab"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"unterminated quote", `a: "oops`, "unterminated"},
		{"unterminated flow", "a: [1, 2\n", "unterminated flow list"},
		{"unbalanced brackets", "a: [1, 2]]\n", "unbalanced"},
		{"json trailing", `{"a": 1} trailing`, "trailing"},
		{"bad json", `{"a": }`, "json"},
		{"empty flow entry", "a: [1, , 2]\n", "empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseDocument([]byte(tc.src))
			if err == nil {
				t.Fatalf("parseDocument(%q) succeeded, want error containing %q", tc.src, tc.wantErr)
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
