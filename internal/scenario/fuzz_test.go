package scenario

import (
	"strings"
	"testing"
)

// FuzzScenario hammers the scenario decode path — the YAML-subset parser,
// the JSON branch, and the strict schema layer — with the same contract the
// other wire-facing parsers carry: malformed input must come back as an
// error, never a panic, and anything Parse accepts must survive Validate's
// shape checks without panicking either. Semantic errors (unknown hosts,
// impossible windows) are fine; crashes are not.
func FuzzScenario(f *testing.F) {
	seeds := []string{
		"",
		"name: t\nkind: chaos\nworkload:\n  items: 8\n  capacity: 2\n  horizon: 30s\n",
		"name: t\nkind: table2\nworkload:\n  rounds: 1\n  sizes: [4096, 1048576]\n",
		`{"name": "t", "kind": "table4", "workload": {"items": 10, "capacity": 2}}`,
		"name: t\nkind: gridftp\nworkload:\n  file_size: 1024\n  streams: [1, 8]\n  loss_rates: [0, 0.02]\n",
		"name: t\nkind: chaos\nworkload:\n  items: 8\n  capacity: 2\n  horizon: 30s\nfaults:\n  - crash: {host: compas00, from: 1s, to: 3s}\n  - flap: {a: rwcp-gw, b: rwcp-outer, period: 1s, duty: 0.4, from: 2s, to: 6s}\n  - partition: {a: [\"$rwcp-side\"], b: [\"$etl-side\"], from: 2s, to: 4s}\n",
		"name: t\nkind: chaos\nworkload:\n  items: 8\n  capacity: 2\n  horizon: 30s\nassert:\n  - exact-optimum\n  - registrations: {min: 1, max: 1}\n  - elapsed-ceiling: 60s\nbaseline:\n  workload:\n    recovery: null\n",
		// Fleet blocks: a valid flash-crowd spec with asserts, and the strict-
		// decode rejections (unknown distribution, non-positive rate, host-cap
		// overflow) that must come back as errors, not panics.
		"name: t\nkind: fleet\nworkload:\n  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: flash-crowd, rate: 10, peak: 3, from: 1s, to: 5s}\n  sizes: {kind: pareto, alpha: 1.5, min: 100ms, max: 10s}\nassert:\n  - all-jobs-done\n  - p99-ceiling: 60s\n",
		"name: t\nkind: fleet\nworkload:\n  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: constant, rate: -3}\n  sizes: {kind: weibull, mean: 1s}\n",
		"name: t\nkind: fleet\nworkload:\n  sites: 99999\n  hosts_per_site: 99999\n  jobs: 1\n  arrivals: {kind: constant, rate: 1}\n  sizes: {kind: fixed, mean: 1s}\n",
		// Sharp edges: negative durations, inverted windows, unknown keys,
		// type confusion, deep flow nesting, stray tabs, unterminated quotes.
		"name: t\nkind: chaos\nworkload:\n  horizon: -5s\n",
		"name: t\nkind: chaos\nworkload:\n  items: [1, {a: [2, [3]]}]\n",
		"name: t\nkind: chaos\nworkload:\n\titems: 8\n",
		"name: \"unterminated\nkind: chaos\n",
		"name: t\nkind: chaos\nworkload:\n  items: 8\n  capacity: 2\n  horizon: 30s\nfaults:\n  - outage: {a: rwcp-gw, b: rwcp-outer, from: 5s, to: 2s}\n",
		"a: [1, , 2]\n",
		"{\"a\": 1} trailing",
		"- 1\n- 2\n",
		"~\n",
		strings.Repeat("a:\n ", 50),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		if s == nil {
			t.Fatalf("Parse(%q) returned nil spec and nil error", data)
		}
		if s.Name == "" {
			t.Fatalf("Parse(%q) accepted a spec with no name", data)
		}
		// The shape and assertion layers must be panic-free on anything the
		// decoder accepts. (Full Validate builds a testbed — too heavy per
		// fuzz exec — but checkShape/buildAsserts/faultPlan are the layers
		// fuzzing can actually break.)
		_ = s.checkShape()
		_, _ = buildAsserts(s)
		_, _ = s.faultPlan()
		if s.Baseline != nil {
			_ = s.Baseline.checkShape()
			_, _ = buildAsserts(s.Baseline)
			_, _ = s.Baseline.faultPlan()
		}
	})
}
