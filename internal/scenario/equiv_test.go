package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nxcluster/internal/bench"
	"nxcluster/internal/chaos"
)

func loadShipped(t *testing.T, file string) *Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "scenarios", file))
	if err != nil {
		t.Fatalf("read %s: %v", file, err)
	}
	s, err := Parse(data)
	if err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	return s
}

// TestChaosPortConfigEquivalence proves the DSL compilation is structurally
// identical to the hand-wired chaos.DefaultSuite: each ported scenario file
// compiles to exactly the chaos.Config (fault plan included — LinkFlap is
// expanded to the same outage windows at build time) the legacy Go
// constructor produces. Invariants and Compare are funcs and are exercised
// separately by the trace-hash equality below.
func TestChaosPortConfigEquivalence(t *testing.T) {
	suite := map[string]chaos.Scenario{}
	for _, sc := range chaos.DefaultSuite() {
		suite[sc.Name] = sc
	}
	files := []string{
		"chaos-partition-then-heal.yaml",
		"chaos-flapping-boundary.yaml",
		"chaos-slow-node-straggler.yaml",
		"chaos-suspect-straggler.yaml",
		"chaos-degraded-boundary.yaml",
		"chaos-asymmetric-wan.yaml",
		"chaos-rolling-site-outage.yaml",
		"chaos-crash-during-speculation.yaml",
	}
	seen := map[string]bool{}
	for _, file := range files {
		s := loadShipped(t, file)
		legacy, ok := suite[s.Name]
		if !ok {
			t.Errorf("%s: name %q is not a DefaultSuite scenario", file, s.Name)
			continue
		}
		seen[s.Name] = true
		cfg, err := s.chaosConfig()
		if err != nil {
			t.Errorf("%s: compile: %v", file, err)
			continue
		}
		// An slo block attaches a read-only sampler on top of the workload;
		// the workload compilation itself must still match the legacy config.
		cfg.SampleInterval = 0
		if !reflect.DeepEqual(cfg, legacy.Config) {
			t.Errorf("%s: compiled config differs from DefaultSuite %s:\n got  %+v\n want %+v",
				file, s.Name, cfg, legacy.Config)
		}
		if (s.Baseline != nil) != (legacy.Baseline != nil) {
			t.Errorf("%s: baseline presence = %v, legacy %v", file, s.Baseline != nil, legacy.Baseline != nil)
			continue
		}
		if s.Baseline != nil {
			bcfg, err := s.Baseline.chaosConfig()
			if err != nil {
				t.Errorf("%s: compile baseline: %v", file, err)
				continue
			}
			if !reflect.DeepEqual(bcfg, *legacy.Baseline) {
				t.Errorf("%s: compiled baseline differs from DefaultSuite %s:\n got  %+v\n want %+v",
					file, s.Name, bcfg, *legacy.Baseline)
			}
		}
		if (s.Compare != "") != (legacy.Compare != nil) {
			t.Errorf("%s: compare presence = %v, legacy %v", file, s.Compare != "", legacy.Compare != nil)
		}
	}
	for name := range suite {
		if !seen[name] {
			t.Errorf("DefaultSuite scenario %q has no ported scenario file", name)
		}
	}
}

// TestChaosPortTraceEquality runs one ported scenario through both paths —
// the scenario DSL and the legacy chaos.RunScenario with the hand-wired
// config — and demands bit-identical observability trace hashes. (The full
// 8-scenario sweep runs in make check via the SCENARIOS_suite.json gate;
// one end-to-end witness here keeps `go test` honest without doubling the
// suite's runtime.)
func TestChaosPortTraceEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	s := loadShipped(t, "chaos-partition-then-heal.yaml")
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("scenario failed: %v", res.Failures)
	}
	var legacy chaos.Scenario
	for _, sc := range chaos.DefaultSuite() {
		if sc.Name == s.Name {
			legacy = sc
		}
	}
	lres, err := chaos.RunScenario(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceHash != lres.TraceHash {
		t.Errorf("trace hash %s != legacy %s — DSL compilation diverged from the hand-wired config",
			res.TraceHash, lres.TraceHash)
	}
	if res.ElapsedMS != lres.ElapsedMS {
		t.Errorf("elapsed %dms != legacy %dms", res.ElapsedMS, lres.ElapsedMS)
	}
}

// TestTable2Equivalence: the ported Table 2 scenario must reproduce the
// legacy bench.RunTable2 results bit for bit (fingerprint equality renders
// every latency in nanoseconds and every bandwidth via shortest-exact float).
func TestTable2Equivalence(t *testing.T) {
	s := loadShipped(t, "table2-rtt.yaml")
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("scenario failed: %v", res.Failures)
	}
	rows, err := bench.RunTable2(s.table2Config())
	if err != nil {
		t.Fatal(err)
	}
	if fp := fingerprintTable2(rows); fp != res.Fingerprint {
		t.Errorf("legacy fingerprint differs:\n legacy   %q\n scenario %q", fp, res.Fingerprint)
	}
}

// TestTable4Equivalence: same bit-equality contract for the Table 4 sweep.
func TestTable4Equivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 4 sweep in -short mode")
	}
	s := loadShipped(t, "table4-sweep.yaml")
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("scenario failed: %v", res.Failures)
	}
	rep, err := bench.RunKnapsack(s.table4Config())
	if err != nil {
		t.Fatal(err)
	}
	if fp := fingerprintTable4(rep); fp != res.Fingerprint {
		t.Errorf("legacy fingerprint differs:\n legacy   %q\n scenario %q", fp, res.Fingerprint)
	}
}

// TestGridEquivalence: the grid kind must hand RunGridKnapsack exactly the
// monolithic-oracle result the legacy path computes.
func TestGridEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("grid solve in -short mode")
	}
	s := loadShipped(t, "grid-wan-outage.yaml")
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("scenario failed: %v", res.Failures)
	}
	cfg, err := s.gridConfig()
	if err != nil {
		t.Fatal(err)
	}
	gres, err := bench.RunGridKnapsack(cfg, s.Topology.ParallelSites)
	if err != nil {
		t.Fatal(err)
	}
	if fp := fingerprintGrid(gres); fp != res.Fingerprint {
		t.Errorf("legacy fingerprint differs:\n legacy   %q\n scenario %q", fp, res.Fingerprint)
	}
}
