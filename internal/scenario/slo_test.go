package scenario

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"nxcluster/internal/obs"
	"nxcluster/internal/obs/timeseries"
	"nxcluster/internal/sim"
)

// minimal valid monitor scenario used as the slo mutation base below.
const monitorOK = `
name: m
kind: monitor
workload:
  items: 10
  capacity: 2
  interval: 1s
`

// TestSLODecodeErrors is the invalid-slo wall: every malformed objective
// class must fail Parse with an actionable message.
func TestSLODecodeErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"not a mapping", monitorOK + "slo: 3\n", "must be a mapping"},
		{"no objectives", monitorOK + "slo: {}\n", "declares no objectives"},
		{"unknown slo key", monitorOK + "slo:\n  latenci:\n    - {leg: mpi/rank, percentile: 99, max: 1s}\n", `unknown key "latenci"`},
		{"latency not a list", monitorOK + "slo:\n  latency: {leg: mpi/rank}\n", "slo.latency must be a list"},
		{"latency unknown key", monitorOK + "slo:\n  latency:\n    - {leg: mpi/rank, percentile: 99, max: 1s, mni_count: 2}\n", `unknown key "mni_count"`},
		{"leg without slash", monitorOK + "slo:\n  latency:\n    - {leg: mpirank, percentile: 99, max: 1s}\n", "leg must be a span label"},
		{"percentile zero", monitorOK + "slo:\n  latency:\n    - {leg: mpi/rank, percentile: 0, max: 1s}\n", "outside (0, 100]"},
		{"percentile over 100", monitorOK + "slo:\n  latency:\n    - {leg: mpi/rank, percentile: 150, max: 1s}\n", "outside (0, 100]"},
		{"latency missing max", monitorOK + "slo:\n  latency:\n    - {leg: mpi/rank, percentile: 99}\n", `missing required key "max"`},
		{"throughput missing series", monitorOK + "slo:\n  throughput:\n    - {min_total: 3}\n", `missing required key "series"`},
		{"throughput no floor", monitorOK + "slo:\n  throughput:\n    - {series: knap.steals}\n", "needs a floor"},
		{"budget negative", monitorOK + "slo:\n  error_budget:\n    - {series: x, budget: -1}\n", "budget must be >= 0"},
		{"window without max_burn", monitorOK + "slo:\n  error_budget:\n    - {series: x, budget: 0, window: 5}\n", `"window" and "max_burn" come together`},
		{"max_burn without window", monitorOK + "slo:\n  error_budget:\n    - {series: x, budget: 0, max_burn: 5}\n", `"window" and "max_burn" come together`},
		{"window zero", monitorOK + "slo:\n  error_budget:\n    - {series: x, budget: 0, window: 0, max_burn: 2}\n", "window must be >= 1"},
		{"max_burn negative", monitorOK + "slo:\n  error_budget:\n    - {series: x, budget: 0, window: 2, max_burn: -2}\n", "max_burn must be >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestSLOShapeErrors covers the semantic layer: which kinds may declare
// SLOs, and the interval ownership rule.
func TestSLOShapeErrors(t *testing.T) {
	slo := "slo:\n  latency:\n    - {leg: rmf/job, percentile: 100, max: 10s}\n"
	cases := []struct {
		name, src, wantErr string
	}{
		{"slo on table4", "name: t\nkind: table4\nworkload:\n  items: 10\n  capacity: 2\n" + slo,
			"slo blocks are not supported for kind table4"},
		{"slo on grid", "name: t\nkind: grid\nworkload:\n  items: 10\n  capacity: 2\n" + slo,
			"slo blocks are not supported for kind grid"},
		{"monitor with slo interval", monitorOK + "slo:\n  interval: 2s\n  latency:\n    - {leg: mpi/rank, percentile: 100, max: 10s}\n",
			"monitor scenarios window on workload.interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse([]byte(tc.src))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			err = Validate(s)
			if err == nil {
				t.Fatalf("Validate passed, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestSLOBaselinePruned pins that a chaos baseline never inherits the
// primary's slo block: objectives judge the service, the baseline is the
// foil (often a deliberately degraded run that would violate them).
func TestSLOBaselinePruned(t *testing.T) {
	s, err := Parse([]byte(chaosOK +
		"slo:\n  interval: 1s\n  latency:\n    - {leg: rmf/job, percentile: 100, max: 10s}\nbaseline:\n  desc: foil\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.SLO == nil || s.SLO.Objectives() != 1 {
		t.Fatalf("primary SLO = %+v, want 1 objective", s.SLO)
	}
	if s.Baseline.SLO != nil {
		t.Fatalf("baseline inherited the slo block: %+v", s.Baseline.SLO)
	}
}

func TestMatchSeries(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"knap.steals", "knap.steals", true},
		{"knap.steals", "knap.steals2", false},
		{"rmf.*.jobs_done", "rmf.compas00.jobs_done", true},
		{"rmf.*.jobs_done", "rmf.compas00.jobs_failed", false},
		{"rmf.*.jobs_done", "rmf.alloc.requests", false},
		{"rmf.*", "rmf.compas00.jobs_done", true},
		{"*", "anything", true},
		{"*.drops", "link.a>b.drops", true},
		{"link.*>*.bytes", "link.a>b.bytes", true},
		{"link.*>*.bytes", "link.ab.bytes", false},
		{"a*b*c", "abc", true},
		{"a*b*c", "axbxc", true},
		{"a*b*c", "acb", false},
	}
	for _, tc := range cases {
		if got := matchSeries(tc.pattern, tc.name); got != tc.want {
			t.Errorf("matchSeries(%q, %q) = %v, want %v", tc.pattern, tc.name, got, tc.want)
		}
	}
}

// testStore drives a real kernel-scheduled sampler over the given per-window
// deltas so Evaluate sees a store built exactly the way runs build theirs.
func testStore(t *testing.T, deltas map[string][]int64) *timeseries.Store {
	t.Helper()
	windows := 0
	for _, d := range deltas {
		if len(d) > windows {
			windows = len(d)
		}
	}
	k := sim.New()
	defer k.Shutdown()
	smp := timeseries.NewSampler(k, time.Second, nil)
	smp.KeepAlive = true
	names := make([]string, 0, len(deltas))
	for n := range deltas {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := deltas[n]
		var cum int64
		i := 0
		smp.Probe(n, timeseries.KindRate, func() int64 {
			if i < len(d) {
				cum += d[i]
				i++
			}
			return cum
		})
	}
	smp.Start()
	k.RunUntil(time.Duration(windows) * time.Second)
	st := smp.Store()
	if st.Windows() != windows {
		t.Fatalf("store has %d windows, want %d", st.Windows(), windows)
	}
	return st
}

// testEvents builds a trace with completed rmf/job spans of the given
// durations, plus one never-ended mpi/rank span (open spans have no
// duration and must not count).
func testEvents(durations ...time.Duration) []obs.Event {
	o := obs.New()
	at := time.Duration(0)
	for _, d := range durations {
		tc := o.BeginTrace(at, "rmf", "job", "rmf0")
		o.EndSpan(at+d, tc, "rmf", "job", "rmf0")
		at += time.Second
	}
	o.BeginTrace(at, "mpi", "rank", "rank0")
	return o.Events()
}

func TestSLOEvaluate(t *testing.T) {
	events := testEvents(10*time.Millisecond, 30*time.Millisecond)
	store := testStore(t, map[string][]int64{
		"rmf.a.jobs_done":   {1, 2, 0, 3, 0},
		"rmf.a.jobs_failed": {0, 0, 5, 0, 0},
		"rmf.b.jobs_failed": {0, 1, 0, 0, 0},
	})
	cases := []struct {
		name    string
		spec    SLOSpec
		wantErr string // "" = every objective must pass
	}{
		{"latency pass", SLOSpec{Latency: []LatencySLO{{Leg: "rmf/job", Percentile: 100, Max: 30 * time.Millisecond, MinCount: 2}}}, ""},
		{"latency p50 pass", SLOSpec{Latency: []LatencySLO{{Leg: "rmf/job", Percentile: 50, Max: 10 * time.Millisecond}}}, ""},
		{"latency violated", SLOSpec{Latency: []LatencySLO{{Leg: "rmf/job", Percentile: 100, Max: 29 * time.Millisecond}}}, "p100 = 30ms > max 29ms"},
		{"latency vacuous", SLOSpec{Latency: []LatencySLO{{Leg: "gram/submit", Percentile: 100, Max: time.Second}}}, "objective is vacuous"},
		{"latency min_count", SLOSpec{Latency: []LatencySLO{{Leg: "rmf/job", Percentile: 100, Max: time.Second, MinCount: 3}}}, "2 completed spans, want >= 3"},
		{"open span ignored", SLOSpec{Latency: []LatencySLO{{Leg: "mpi/rank", Percentile: 100, Max: time.Hour}}}, "objective is vacuous"},
		{"throughput pass", SLOSpec{Throughput: []ThroughputSLO{{Series: "rmf.*.jobs_done", MinTotal: 6}}}, ""},
		{"throughput floor violated", SLOSpec{Throughput: []ThroughputSLO{{Series: "rmf.*.jobs_done", MinTotal: 7}}}, "total 6 < floor 7"},
		{"throughput rate pass", SLOSpec{Throughput: []ThroughputSLO{{Series: "rmf.*.jobs_done", MinTotal: 1, MinRate: 1.2}}}, ""},
		{"throughput rate violated", SLOSpec{Throughput: []ThroughputSLO{{Series: "rmf.*.jobs_done", MinTotal: 1, MinRate: 2}}}, "rate 1.2/s < floor 2/s"},
		{"throughput no match", SLOSpec{Throughput: []ThroughputSLO{{Series: "gridftp.*", MinTotal: 1}}}, "no series matches"},
		{"budget pass", SLOSpec{Budgets: []ErrorBudgetSLO{{Series: "rmf.*.jobs_failed", Budget: 6}}}, ""},
		{"budget violated", SLOSpec{Budgets: []ErrorBudgetSLO{{Series: "rmf.*.jobs_failed", Budget: 5}}}, "total 6 > budget 5"},
		{"burn pass", SLOSpec{Budgets: []ErrorBudgetSLO{{Series: "rmf.*.jobs_failed", Budget: 10, Window: 2, MaxBurn: 6}}}, ""},
		{"burn violated", SLOSpec{Budgets: []ErrorBudgetSLO{{Series: "rmf.*.jobs_failed", Budget: 10, Window: 2, MaxBurn: 4}}}, "burn 6 > 4"},
		{"budget no match", SLOSpec{Budgets: []ErrorBudgetSLO{{Series: "nope", Budget: 0}}}, "no series matches"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fails := tc.spec.Evaluate(events, store)
			if tc.wantErr == "" {
				if len(fails) != 0 {
					t.Fatalf("Evaluate = %q, want no failures", fails)
				}
				return
			}
			if len(fails) != 1 {
				t.Fatalf("Evaluate = %q, want exactly one failure containing %q", fails, tc.wantErr)
			}
			if !strings.Contains(fails[0], tc.wantErr) {
				t.Fatalf("failure %q does not contain %q", fails[0], tc.wantErr)
			}
		})
	}

	t.Run("nil store fails loudly", func(t *testing.T) {
		spec := SLOSpec{Throughput: []ThroughputSLO{{Series: "x", MinTotal: 1}}}
		fails := spec.Evaluate(events, nil)
		if len(fails) != 1 || !strings.Contains(fails[0], "no time-series store") {
			t.Fatalf("Evaluate with nil store = %q", fails)
		}
	})
}

// TestSLOViolatedScenario runs the intentionally broken testdata scenario
// end to end: a violated objective must fail the scenario (and with it
// `simulator run` and the benchdiff gate), counting each objective as an
// invariant.
func TestSLOViolatedScenario(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "slo-violated.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("scenario with violated SLO passed")
	}
	// 1 determinism + exact-optimum + 3 objectives.
	if res.Invariants != 5 {
		t.Errorf("invariants = %d, want 5", res.Invariants)
	}
	if len(res.Failures) != 2 {
		t.Fatalf("failures = %q, want exactly the two violated objectives", res.Failures)
	}
	if !strings.Contains(res.Failures[0], "slo latency mpi/rank") {
		t.Errorf("first failure %q is not the latency violation", res.Failures[0])
	}
	if !strings.Contains(res.Failures[1], "no series matches") {
		t.Errorf("second failure %q is not the missing-series violation", res.Failures[1])
	}
}
