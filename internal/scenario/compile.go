package scenario

import (
	"fmt"
	"time"

	"nxcluster/internal/bench"
	"nxcluster/internal/chaos"
	"nxcluster/internal/cluster"
	"nxcluster/internal/fleet"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/proxy"
	"nxcluster/internal/rmf"
	"nxcluster/internal/simnet"
)

// Group aliases usable in partition fault groups.
const (
	aliasRWCPSide = "$rwcp-side"
	aliasETLSide  = "$etl-side"
)

// options compiles the topology section into testbed options.
func (s *Spec) options() cluster.Options {
	t := s.Topology
	opts := cluster.Options{
		RelayPerBuffer: t.RelayPerBuffer,
		RelayBufBytes:  t.RelayBufBytes,
		OpenFirewall:   t.OpenFirewall,
		Secret:         t.Secret,
		Seed:           t.Seed,
		WANLatency:     t.WAN.Latency,
		WANBandwidth:   t.WAN.Bandwidth,
		WANLossRate:    t.WAN.Loss,
		ParallelSites:  t.ParallelSites,
		ExtraSites:     t.ExtraSites,
	}
	if t.Flow != nil {
		opts.FlowModel = &simnet.FlowConfig{Seed: t.Flow.Seed}
	}
	return opts
}

// faultPlan compiles the faults section into a simnet plan (nil when the
// scenario declares none). Host/link name validation happens later, at
// ApplyPlan against a built testbed — see Validate.
func (s *Spec) faultPlan() (*simnet.FaultPlan, error) {
	if len(s.Faults) == 0 {
		return nil, nil
	}
	p := &simnet.FaultPlan{}
	for i, f := range s.Faults {
		switch f.Kind {
		case "crash":
			if f.To > 0 {
				p.CrashWindow(f.Host, f.From, f.To)
			} else {
				p.Crash(f.Host, f.From)
			}
		case "outage":
			p.LinkOutage(f.A, f.B, f.From, f.To)
		case "flap":
			p.LinkFlap(f.A, f.B, f.Period, f.Duty, f.From, f.To)
		case "degrade":
			p.LinkDegrade(f.Src, f.Dst, f.ExtraLatency, f.Loss, f.From, f.To)
		case "slow":
			p.SlowHost(f.Host, f.Factor, f.From, f.To)
		case "partition":
			a, err := expandGroup(f.GroupA)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: faults[%d].partition.a: %w", s.Name, i, err)
			}
			b, err := expandGroup(f.GroupB)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: faults[%d].partition.b: %w", s.Name, i, err)
			}
			if f.To > f.From {
				p.Partition(a, b, f.From, f.To)
			} else {
				p.Partition(a, b, f.From, 0)
			}
		}
	}
	if err := p.Err(); err != nil {
		return nil, fmt.Errorf("scenario %s: fault plan: %w", s.Name, err)
	}
	return p, nil
}

// expandGroup replaces the side aliases with the canonical Figure 5 halves.
func expandGroup(names []string) ([]string, error) {
	out := make([]string, 0, len(names))
	for _, n := range names {
		switch n {
		case aliasRWCPSide:
			out = append(out, cluster.RWCPSideNodes()...)
		case aliasETLSide:
			out = append(out, cluster.ETLSideNodes()...)
		default:
			if len(n) > 0 && n[0] == '$' {
				return nil, fmt.Errorf("unknown group alias %q (known: %s, %s)", n, aliasRWCPSide, aliasETLSide)
			}
			out = append(out, n)
		}
	}
	return out, nil
}

// systemOf maps the workload's system name onto the Table 3 configuration.
func systemOf(name string) (cluster.System, error) {
	switch name {
	case "compas":
		return cluster.SystemCompas, nil
	case "etl-o2k":
		return cluster.SystemETLO2K, nil
	case "local":
		return cluster.SystemLocal, nil
	case "wide":
		return cluster.SystemWide, nil
	}
	return 0, fmt.Errorf("unknown system %q (one of: compas, etl-o2k, local, wide)", name)
}

// chaosConfig compiles a chaos-kind spec into the runnable chaos.Config.
func (s *Spec) chaosConfig() (chaos.Config, error) {
	w := s.Chaos
	sys, err := systemOf(w.System)
	if err != nil {
		return chaos.Config{}, fmt.Errorf("scenario %s: workload.system: %w", s.Name, err)
	}
	plan, err := s.faultPlan()
	if err != nil {
		return chaos.Config{}, err
	}
	cfg := chaos.Config{
		Items:    w.Items,
		Capacity: w.Capacity,
		System:   sys,
		UseProxy: w.UseProxy,
		FT: knapsack.FTParams{
			Params: knapsack.Params{
				Interval:  w.FT.Interval,
				StealUnit: w.FT.StealUnit,
				NodeCost:  w.FT.NodeCost,
			},
			SlaveTimeout:   w.FT.SlaveTimeout,
			StealTimeout:   w.FT.StealTimeout,
			StealRetries:   w.FT.StealRetries,
			HeartbeatEvery: w.FT.HeartbeatEvery,
		},
		Plan:    plan,
		Horizon: w.Horizon,
		Keepalive: proxy.KeepaliveConfig{
			Interval:   w.Keepalive.Interval,
			Timeout:    w.Keepalive.Timeout,
			MissBudget: w.Keepalive.MissBudget,
		},
		ControlPlane:  w.ControlPlane,
		JobRuntime:    w.JobRuntime,
		JobCompute:    w.JobCompute,
		ExtraJobs:     w.ExtraJobs,
		SuspectWindow: w.SuspectWindow,
		BeatCost:      w.BeatCost,
		HBMLateAfter:  w.HBMLateAfter,
		HBMDownAfter:  w.HBMDownAfter,
		Options:       s.options(),
	}
	if w.Recovery != nil {
		cfg.Recovery = &rmf.RecoveryPolicy{
			StatusRetries:  w.Recovery.StatusRetries,
			SpeculateAfter: w.Recovery.SpeculateAfter,
		}
	}
	// An SLO block needs windowed series to judge, so it switches the
	// chaos sampler on (reads only — never perturbs virtual-time results).
	if s.SLO != nil {
		cfg.SampleInterval = s.SLO.Interval
		if cfg.SampleInterval <= 0 {
			cfg.SampleInterval = time.Second
		}
	}
	return cfg, nil
}

// Validate checks a parsed spec end to end without running the workload:
// kind-specific constraints, assertion names and arguments, and — by
// building the scenario's testbed and applying the compiled plan — every
// fault's host and link names.
func Validate(s *Spec) error {
	if err := s.checkShape(); err != nil {
		return err
	}
	if _, err := buildAsserts(s); err != nil {
		return err
	}
	if s.Baseline != nil {
		if err := Validate(s.Baseline); err != nil {
			return err
		}
		if s.Compare != "" {
			if _, err := comparatorOf(s.Compare); err != nil {
				return fmt.Errorf("scenario %s: %w", s.Name, err)
			}
		}
	}

	// Host/link validation: build the testbed the run would use and apply
	// the plan to it, then throw it away. ApplyPlan is where unknown-name
	// and no-such-link errors surface (never a panic).
	switch s.Kind {
	case KindChaos:
		cfg, err := s.chaosConfig()
		if err != nil {
			return err
		}
		if cfg.Items <= 0 || cfg.Capacity <= 0 {
			return fmt.Errorf("scenario %s: workload needs items > 0 and capacity > 0 (got %d/%d)", s.Name, cfg.Items, cfg.Capacity)
		}
		if cfg.Horizon <= 0 {
			return fmt.Errorf("scenario %s: workload.horizon required (how long the kernel runs)", s.Name)
		}
		tb, err := cluster.NewTestbedChecked(cfg.Options)
		if err != nil {
			return fmt.Errorf("scenario %s: topology: %w", s.Name, err)
		}
		defer tb.Shutdown()
		if cfg.Plan != nil {
			if err := tb.ApplyPlan(cfg.Plan); err != nil {
				return fmt.Errorf("scenario %s: fault plan: %w", s.Name, err)
			}
		}
	case KindGrid:
		plan, err := s.faultPlan()
		if err != nil {
			return err
		}
		opts := s.options()
		tb, err := cluster.NewTestbedChecked(opts)
		if err != nil {
			return fmt.Errorf("scenario %s: topology: %w", s.Name, err)
		}
		defer tb.Shutdown()
		if plan != nil {
			if err := tb.ApplyPlan(plan); err != nil {
				return fmt.Errorf("scenario %s: fault plan: %w", s.Name, err)
			}
		}
	default:
		// Testbeds for these kinds are built per measurement point inside
		// bench; only option validity is checkable here.
		if err := s.options().Validate(); err != nil {
			return fmt.Errorf("scenario %s: topology: %w", s.Name, err)
		}
	}
	return nil
}

// checkShape enforces the per-kind structural constraints.
func (s *Spec) checkShape() error {
	if len(s.Faults) > 0 && s.Kind != KindChaos && s.Kind != KindGrid {
		return fmt.Errorf("scenario %s: faults are not supported for kind %s (only chaos and grid take a fault plan)", s.Name, s.Kind)
	}
	if s.SLO != nil {
		if s.Kind != KindChaos && s.Kind != KindMonitor {
			return fmt.Errorf("scenario %s: slo blocks are not supported for kind %s (only chaos and monitor run with an observer attached)", s.Name, s.Kind)
		}
		if s.Kind == KindMonitor && s.SLO.Interval != 0 {
			return fmt.Errorf("scenario %s: slo.interval is the chaos sampler window; monitor scenarios window on workload.interval", s.Name)
		}
	}
	switch s.Kind {
	case KindChaos:
		if s.Topology.ParallelSites > 0 {
			return fmt.Errorf("scenario %s: kind chaos requires a monolithic testbed (topology.parallel_sites must be 0: recovery and tracing bind to a single kernel)", s.Name)
		}
	case KindMonitor:
		if s.Topology.ParallelSites > 0 {
			return fmt.Errorf("scenario %s: kind monitor requires a monolithic testbed (topology.parallel_sites must be 0: the observer binds to a single kernel)", s.Name)
		}
	case KindGridFTP:
		if s.Topology != (TopologySpec{}) {
			return fmt.Errorf("scenario %s: kind gridftp builds its own congestion-modeled testbed per point; the topology section must be empty", s.Name)
		}
	case KindFleet:
		if s.Topology != (TopologySpec{}) {
			return fmt.Errorf("scenario %s: kind fleet stamps its own sites x hosts tree from the workload block; the topology section must be empty", s.Name)
		}
	}
	return nil
}

// --- per-kind bench config compilation ---

func (s *Spec) table2Config() bench.Table2Config {
	w := s.Table2
	return bench.Table2Config{
		Rounds:  w.Rounds,
		Sizes:   w.Sizes,
		Workers: w.Workers,
		Options: s.options(),
	}
}

func (s *Spec) table4Config() bench.KnapsackConfig {
	w := s.Table4
	return bench.KnapsackConfig{
		Items:    w.Items,
		Capacity: w.Capacity,
		Options:  s.options(),
		Workers:  w.Workers,
	}
}

func (s *Spec) monitorConfig() bench.MonitorConfig {
	w := s.Monitor
	return bench.MonitorConfig{
		KnapsackConfig: bench.KnapsackConfig{
			Items:    w.Items,
			Capacity: w.Capacity,
			Options:  s.options(),
			Workers:  1,
		},
		Interval: w.Interval,
	}
}

func (s *Spec) transferConfig() bench.TransferConfig {
	w := s.GridFTP
	return bench.TransferConfig{
		FileSize:  w.FileSize,
		Streams:   w.Streams,
		LossRates: w.LossRates,
		Seed:      w.Seed,
		Workers:   w.Workers,
	}
}

func (s *Spec) gridConfig() (bench.GridConfig, error) {
	plan, err := s.faultPlan()
	if err != nil {
		return bench.GridConfig{}, err
	}
	w := s.Grid
	opts := s.options()
	opts.ParallelSites = 0 // RunGridKnapsack sets it per run from sites
	return bench.GridConfig{
		Items:    w.Items,
		Capacity: w.Capacity,
		Options:  opts,
		UseProxy: w.UseProxy,
		Plan:     plan,
		Trace:    true,
	}, nil
}

// fleetConfig compiles a fleet-kind spec into the engine config. Validation
// happens at decode time (decodeFleetWorkload calls Config.Validate), so by
// Run the config is known-good.
func (s *Spec) fleetConfig() fleet.Config {
	w := s.Fleet
	return fleet.Config{
		Sites:        w.Sites,
		HostsPerSite: w.HostsPerSite,
		CPUsPerHost:  w.CPUsPerHost,
		Jobs:         w.Jobs,
		Seed:         w.Seed,
		Heartbeat:    w.Heartbeat,
		TraceSample:  w.TraceSample,
		Arrivals: fleet.RateShape{
			Kind:      w.Arrivals.Kind,
			Rate:      w.Arrivals.Rate,
			Amplitude: w.Arrivals.Amplitude,
			Period:    w.Arrivals.Period,
			Peak:      w.Arrivals.Peak,
			From:      w.Arrivals.From,
			To:        w.Arrivals.To,
		},
		Sizes: fleet.SizeDist{
			Kind:  w.Sizes.Kind,
			Mean:  w.Sizes.Mean,
			Alpha: w.Sizes.Alpha,
			Min:   w.Sizes.Min,
			Max:   w.Sizes.Max,
			Mu:    w.Sizes.Mu,
			Sigma: w.Sizes.Sigma,
		},
	}
}

// wantBest computes the normalized instance's known optimum (the capacity
// largest profits — see knapsack.Normalized's construction).
func wantBest(items, capacity int) int64 {
	in := knapsack.Normalized(items, capacity)
	best, _ := knapsack.Solve(in)
	return best
}
