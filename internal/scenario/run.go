package scenario

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"time"

	"nxcluster/internal/bench"
	"nxcluster/internal/chaos"
	"nxcluster/internal/fleet"
)

// Result is the outcome of running one scenario. The JSON shape is the one
// cmd/benchdiff's suite gate consumes (a superset of the chaos-gate schema:
// name/passed/invariants/failures).
type Result struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"`
	Passed     bool     `json:"passed"`
	Invariants int      `json:"invariants"`
	Failures   []string `json:"failures,omitempty"`
	// TraceHash is the run's FNV-64a determinism witness (hex): the full
	// observability trace for chaos, the kernel event traces for grid, the
	// time-series serialization for monitor, and the canonical result
	// fingerprint for the stateless bench sweeps.
	TraceHash string `json:"trace_hash"`
	// Fingerprint is the canonical rendering of the run's results that the
	// double run is compared on.
	Fingerprint string `json:"fingerprint"`
	ElapsedMS   int64  `json:"elapsed_ms"`
}

// SuiteResult aggregates a run over many scenario files.
type SuiteResult struct {
	Scenarios []Result `json:"scenarios"`
}

// Passed reports whether every scenario passed.
func (r *SuiteResult) Passed() bool {
	for _, s := range r.Scenarios {
		if !s.Passed {
			return false
		}
	}
	return true
}

// Counts returns total scenarios, invariants checked, and failures.
func (r *SuiteResult) Counts() (scenarios, invariants, failures int) {
	for _, s := range r.Scenarios {
		scenarios++
		invariants += s.Invariants
		failures += len(s.Failures)
	}
	return
}

// gridRun carries a grid result plus the instance shape its assertions need.
type gridRun struct {
	items, capacity int
	res             *bench.GridResult
}

// fleetRun carries a fleet result plus the config its assertions need.
type fleetRun struct {
	cfg fleet.Config
	res fleet.Result
}

// Run executes one validated scenario: the workload twice (the implicit
// determinism invariant every scenario carries), then each declared
// assertion against the first run. Harness errors — a config the runner
// rejects — come back as the error; assertion violations and determinism
// breaks are recorded as failures in the Result.
func Run(s *Spec) (*Result, error) {
	if err := s.checkShape(); err != nil {
		return nil, err
	}
	as, err := buildAsserts(s)
	if err != nil {
		return nil, err
	}
	if s.Kind == KindChaos {
		return runChaos(s, as.chaos)
	}

	run := func() (any, string, uint64, time.Duration, error) {
		switch s.Kind {
		case KindTable2:
			rows, err := bench.RunTable2(s.table2Config())
			if err != nil {
				return nil, "", 0, 0, err
			}
			fp := fingerprintTable2(rows)
			var max time.Duration
			for _, r := range rows {
				if r.Latency > max {
					max = r.Latency
				}
			}
			return rows, fp, fnvHash(fp), max, nil
		case KindTable4:
			rep, err := bench.RunKnapsack(s.table4Config())
			if err != nil {
				return nil, "", 0, 0, err
			}
			fp := fingerprintTable4(rep)
			return rep, fp, fnvHash(fp), rep.SeqTime, nil
		case KindMonitor:
			rep, err := bench.RunMonitor(s.monitorConfig(), nil)
			if err != nil {
				return nil, "", 0, 0, err
			}
			fp := fingerprintMonitor(rep)
			return rep, fp, rep.Store.Hash(), rep.Elapsed, nil
		case KindGridFTP:
			pts, err := bench.RunTransfer(s.transferConfig())
			if err != nil {
				return nil, "", 0, 0, err
			}
			fp := fingerprintTransfer(pts)
			var max time.Duration
			for _, p := range pts {
				if p.Elapsed > max {
					max = p.Elapsed
				}
			}
			return pts, fp, fnvHash(fp), max, nil
		case KindGrid:
			cfg, err := s.gridConfig()
			if err != nil {
				return nil, "", 0, 0, err
			}
			res, err := bench.RunGridKnapsack(cfg, s.Topology.ParallelSites)
			if err != nil {
				return nil, "", 0, 0, err
			}
			gr := &gridRun{items: cfg.Items, capacity: cfg.Capacity, res: res}
			fp := fingerprintGrid(res)
			h := fnv.New64a()
			for _, th := range res.TraceHashes {
				fmt.Fprintf(h, "%016x ", th)
			}
			return gr, fp, h.Sum64(), res.Elapsed, nil
		case KindFleet:
			cfg := s.fleetConfig()
			e, err := fleet.New(cfg)
			if err != nil {
				return nil, "", 0, 0, err
			}
			if err := e.Run(); err != nil {
				return nil, "", 0, 0, err
			}
			res := e.Result()
			fr := &fleetRun{cfg: cfg, res: res}
			// The engine's own FNV fingerprint is the trace hash: it folds in
			// event counts, latency percentiles, and per-site completions.
			return fr, fingerprintFleet(res), res.Fingerprint, res.Makespan, nil
		}
		return nil, "", 0, 0, fmt.Errorf("scenario %s: unknown kind %q", s.Name, s.Kind)
	}

	v1, fp1, h1, elapsed, err := run()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	_, fp2, h2, _, err := run()
	if err != nil {
		return nil, fmt.Errorf("scenario %s (replay): %w", s.Name, err)
	}
	res := &Result{
		Name:        s.Name,
		Kind:        string(s.Kind),
		TraceHash:   fmt.Sprintf("%016x", h1),
		Fingerprint: fp1,
		ElapsedMS:   elapsed.Milliseconds(),
	}
	res.Invariants++ // the implicit determinism invariant
	if h1 != h2 {
		res.Failures = append(res.Failures, fmt.Sprintf("determinism: trace hash %016x != %016x across identical runs", h1, h2))
	} else if fp1 != fp2 {
		res.Failures = append(res.Failures, fmt.Sprintf("determinism: results diverge: %q vs %q", fp1, fp2))
	}
	for _, c := range as.other {
		res.Invariants++
		if err := c.Fn(v1); err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: %v", c.Name, err))
		}
	}
	if s.SLO != nil {
		// checkShape restricts SLOs to monitor among the non-chaos kinds, so
		// v1 is the monitored report carrying both the causal trace and the
		// windowed store.
		rep := v1.(*bench.MonitorReport)
		res.Invariants += s.SLO.Objectives()
		res.Failures = append(res.Failures, s.SLO.Evaluate(rep.Obs.Events(), rep.Store)...)
	}
	res.Passed = len(res.Failures) == 0
	return res, nil
}

// runChaos delegates to chaos.RunScenario, which owns the double-run
// determinism check, the invariant sweep, and the baseline comparison.
func runChaos(s *Spec, invs []chaos.Invariant) (*Result, error) {
	cfg, err := s.chaosConfig()
	if err != nil {
		return nil, err
	}
	sc := chaos.Scenario{
		Name:       s.Name,
		Desc:       s.Desc,
		Config:     cfg,
		Invariants: invs,
	}
	if s.Baseline != nil {
		bcfg, err := s.Baseline.chaosConfig()
		if err != nil {
			return nil, err
		}
		sc.Baseline = &bcfg
		if s.Compare != "" {
			cmp, err := comparatorOf(s.Compare)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
			}
			sc.Compare = cmp
		}
	}
	cres, err := chaos.RunScenario(sc)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:        cres.Name,
		Kind:        string(KindChaos),
		Passed:      cres.Passed,
		Invariants:  cres.Invariants,
		Failures:    cres.Failures,
		TraceHash:   cres.TraceHash,
		Fingerprint: fmt.Sprintf("elapsed=%dms job=%dms", cres.ElapsedMS, cres.JobDoneMS),
		ElapsedMS:   cres.ElapsedMS,
	}
	if s.SLO != nil {
		res.Invariants += s.SLO.Objectives()
		res.Failures = append(res.Failures, s.SLO.Evaluate(cres.Obs.Events(), cres.Report.Store)...)
		res.Passed = len(res.Failures) == 0
	}
	return res, nil
}

// --- canonical fingerprints ---
//
// Every float is rendered with strconv.FormatFloat(g, -1) — the shortest
// exact representation — so fingerprint equality is bit equality.

func ffloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func fingerprintTable2(rows []bench.Table2Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s|%s|lat=%d", r.Path, r.Mode(), r.Latency.Nanoseconds())
		sizes := make([]int, 0, len(r.Bandwidth))
		for s := range r.Bandwidth {
			sizes = append(sizes, s)
		}
		sort.Ints(sizes)
		for _, s := range sizes {
			fmt.Fprintf(&b, "|bw%d=%s", s, ffloat(r.Bandwidth[s]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fingerprintTable4(rep *bench.KnapsackReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seq=%d traversed=%d\n", rep.SeqTime.Nanoseconds(), rep.SeqTraversed)
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%s|p=%d|exec=%d|speedup=%s", r.System, r.Processors, r.Exec.Nanoseconds(), ffloat(r.Speedup))
		if r.Result != nil {
			fmt.Fprintf(&b, "|best=%d|traversed=%d", r.Result.Best, r.Result.TotalTraversed)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fingerprintMonitor(rep *bench.MonitorReport) string {
	best := int64(-1)
	var traversed int64
	if rep.Result != nil {
		best = rep.Result.Best
		traversed = rep.Result.TotalTraversed
	}
	return fmt.Sprintf("elapsed=%d best=%d traversed=%d windows=%d series=%d store=%016x",
		rep.Elapsed.Nanoseconds(), best, traversed, rep.Store.Windows(), rep.Store.Len(), rep.Store.Hash())
}

func fingerprintTransfer(pts []bench.TransferPoint) string {
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "s=%d|loss=%s|bytes=%d|elapsed=%d|goodput=%s|drops=%d|rexmit=%d|cuts=%d\n",
			p.Streams, ffloat(p.LossRate), p.Bytes, p.Elapsed.Nanoseconds(), ffloat(p.Goodput),
			p.Drops, p.Retransmits, p.Cuts)
	}
	return b.String()
}

func fingerprintFleet(res fleet.Result) string {
	return fmt.Sprintf("jobs=%d hosts=%d events=%d makespan=%d p50=%d p99=%d max=%d queued=%d ticks=%d dir=%d fp=%016x",
		res.Jobs, res.Hosts, res.Events, res.Makespan.Nanoseconds(),
		res.P50Lat.Nanoseconds(), res.P99Lat.Nanoseconds(), res.MaxLat.Nanoseconds(),
		res.QueuedPeak, res.Ticks, res.DirEntries, res.Fingerprint)
}

func fingerprintGrid(res *bench.GridResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed=%d best=%d traversed=%d", res.Elapsed.Nanoseconds(), res.Best, res.Traversed)
	for _, h := range res.TraceHashes {
		fmt.Fprintf(&b, " trace=%016x", h)
	}
	return b.String()
}
