package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind selects a scenario's experiment archetype — each maps onto one of the
// hand-wired `experiments -run` code paths.
type Kind string

const (
	// KindChaos runs the Table 4 knapsack workload on the recovery-enabled
	// testbed under a fault schedule with the full invariant library
	// (internal/chaos.Run).
	KindChaos Kind = "chaos"
	// KindTable2 measures the paper's Table 2 latency/bandwidth points
	// (bench.RunTable2).
	KindTable2 Kind = "table2"
	// KindTable4 runs the full Table 4 execution-time sweep across the
	// paper's systems (bench.RunKnapsack).
	KindTable4 Kind = "table4"
	// KindMonitor runs the wide-area knapsack with the live monitoring plane
	// attached (bench.RunMonitor).
	KindMonitor Kind = "monitor"
	// KindGridFTP sweeps parallel-stream transfers against WAN loss
	// (bench.RunTransfer).
	KindGridFTP Kind = "gridftp"
	// KindGrid runs one wide-grid knapsack solve, monolithic or partitioned
	// across site sub-kernels (bench.RunGridKnapsack).
	KindGrid Kind = "grid"
	// KindFleet runs the open-loop fleet-scale workload engine: N sites x M
	// hosts behind hierarchical routing, sharded allocation, and a batched
	// control plane (fleet.New / bench.RunFleet).
	KindFleet Kind = "fleet"
)

// validKinds lists every kind for error messages, in display order.
var validKinds = []Kind{KindChaos, KindTable2, KindTable4, KindMonitor, KindGridFTP, KindGrid, KindFleet}

// Spec is a fully decoded scenario file.
type Spec struct {
	Name     string
	Desc     string
	Kind     Kind
	Topology TopologySpec
	Faults   []FaultSpec
	Asserts  []AssertSpec

	// SLO, when non-nil, is the scenario's service-level-objective block:
	// latency percentiles over causal trace legs, throughput floors and
	// error budgets over the sampled time-series (chaos and monitor kinds).
	SLO *SLOSpec

	// Exactly one of the following is non-nil, matching Kind.
	Chaos   *ChaosWorkload
	Table2  *Table2Workload
	Table4  *Table4Workload
	Monitor *MonitorWorkload
	GridFTP *GridFTPWorkload
	Grid    *GridWorkload
	Fleet   *FleetWorkload

	// Baseline, for chaos scenarios, is a second spec produced by deep-
	// merging the file's `baseline:` patch over the scenario document —
	// typically the same faults without the mitigation. Compare names the
	// cross-check applied between the two runs.
	Baseline *Spec
	Compare  string
}

// TopologySpec adjusts testbed construction (cluster.Options).
type TopologySpec struct {
	// ExtraSites adds grid sites beyond Figure 5; ParallelSites runs the
	// testbed partitioned by site on that many worker threads (0 =
	// monolithic oracle kernel).
	ExtraSites    int
	ParallelSites int
	// OpenFirewall reproduces the paper's temporarily-opened baseline.
	OpenFirewall bool
	// Secret enables authenticated relay control channels.
	Secret string
	// Seed seeds the kernel RNG (backoff jitter etc.).
	Seed uint64
	// RelayPerBuffer / RelayBufBytes override relay calibration.
	RelayPerBuffer time.Duration
	RelayBufBytes  int
	// WAN overrides the IMnet link.
	WAN WANSpec
	// Flow enables the TCP-Reno congestion model.
	Flow *FlowSpec
}

// WANSpec overrides the wide-area link (zero values keep calibration).
type WANSpec struct {
	Latency   time.Duration
	Bandwidth int64
	Loss      float64
}

// FlowSpec configures the congestion model.
type FlowSpec struct {
	Seed uint64
}

// ChaosWorkload mirrors chaos.Config's workload knobs.
type ChaosWorkload struct {
	Items        int
	Capacity     int
	System       string // compas | etl-o2k | local | wide
	UseProxy     bool
	Horizon      time.Duration
	ControlPlane bool
	JobRuntime   time.Duration
	JobCompute   bool
	// ExtraJobs submits a burst of additional RMF jobs (flash crowds).
	ExtraJobs int
	FT        FTSpec
	Keepalive KeepaliveSpec
	Recovery  *RecoverySpec
	// SuspectWindow / BeatCost / HBMLateAfter / HBMDownAfter tune the
	// gray-failure monitoring (see chaos.Config).
	SuspectWindow time.Duration
	BeatCost      time.Duration
	HBMLateAfter  time.Duration
	HBMDownAfter  time.Duration
}

// FTSpec mirrors knapsack.FTParams (with the embedded Params knobs).
type FTSpec struct {
	Interval       int
	StealUnit      int
	NodeCost       time.Duration
	SlaveTimeout   time.Duration
	StealTimeout   time.Duration
	StealRetries   int
	HeartbeatEvery time.Duration
}

// KeepaliveSpec mirrors proxy.KeepaliveConfig.
type KeepaliveSpec struct {
	Interval   time.Duration
	Timeout    time.Duration
	MissBudget int
}

// RecoverySpec mirrors rmf.RecoveryPolicy.
type RecoverySpec struct {
	StatusRetries  int
	SpeculateAfter time.Duration
}

// Table2Workload mirrors bench.Table2Config.
type Table2Workload struct {
	Rounds  int
	Sizes   []int
	Workers int
}

// Table4Workload mirrors bench.KnapsackConfig.
type Table4Workload struct {
	Items    int
	Capacity int
	Workers  int
}

// MonitorWorkload mirrors bench.MonitorConfig.
type MonitorWorkload struct {
	Items    int
	Capacity int
	Interval time.Duration
}

// GridFTPWorkload mirrors bench.TransferConfig.
type GridFTPWorkload struct {
	FileSize  int
	Streams   []int
	LossRates []float64
	Seed      uint64
	Workers   int
}

// GridWorkload mirrors bench.GridConfig (sites come from the topology's
// parallel_sites).
type GridWorkload struct {
	Items    int
	Capacity int
	UseProxy bool
}

// FleetWorkload mirrors fleet.Config. The nested arrival and size blocks
// are decoded strictly and the whole block is validated with
// fleet.Config.Validate at parse time, so malformed fleet scenarios —
// unknown distribution, non-positive rate, sites x hosts past the host cap —
// fail `simulator validate` with a field-named error.
type FleetWorkload struct {
	Sites        int
	HostsPerSite int
	CPUsPerHost  int
	Jobs         int
	Seed         uint64
	Heartbeat    time.Duration
	TraceSample  int
	Arrivals     ArrivalsSpec
	Sizes        SizesSpec
}

// ArrivalsSpec mirrors fleet.RateShape.
type ArrivalsSpec struct {
	Kind      string
	Rate      float64
	Amplitude float64
	Period    time.Duration
	Peak      float64
	From, To  time.Duration
}

// SizesSpec mirrors fleet.SizeDist.
type SizesSpec struct {
	Kind      string
	Mean      time.Duration
	Alpha     float64
	Min, Max  time.Duration
	Mu, Sigma float64
}

// FaultSpec is one declarative fault-schedule entry.
type FaultSpec struct {
	// Kind is the entry key: crash, outage, flap, degrade, slow, partition.
	Kind string
	// Host targets crash/slow; A/B name duplex link ends (outage/flap);
	// Src/Dst name the directed link for degrade.
	Host     string
	A, B     string
	Src, Dst string
	// From/To bound the fault window. For degrade, slow and partition a
	// missing `to` (or to == 0) leaves the fault in place permanently; for
	// crash, outage and flap `to` is required.
	From, To time.Duration
	// Period/Duty parameterize flap.
	Period time.Duration
	Duty   float64
	// ExtraLatency/Loss parameterize degrade.
	ExtraLatency time.Duration
	Loss         float64
	// Factor parameterizes slow.
	Factor float64
	// GroupA/GroupB parameterize partition; entries may use the aliases
	// "$rwcp-side" and "$etl-side" for the canonical Figure 5 halves.
	GroupA, GroupB []string
}

// AssertSpec is one end-of-run assertion: a bare name, or a name with an
// argument ("elapsed-ceiling: 60s", "registrations: {min: 1, max: 1}").
type AssertSpec struct {
	Name string
	Arg  any
}

// --- strict generic-value decoding ---

// object wraps a decoded map for strict field access: every key must be
// consumed, unknown keys error with the valid key set.
type object struct {
	path string
	m    map[string]any
	used map[string]bool
}

func asObject(v any, path string) (*object, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("scenario: %s must be a mapping, got %s", path, typeName(v))
	}
	return &object{path: path, m: m, used: map[string]bool{}}, nil
}

func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case map[string]any:
		return "mapping"
	case []any:
		return "list"
	case string:
		return "string"
	case bool:
		return "bool"
	case int64:
		return "integer"
	case float64:
		return "number"
	}
	return fmt.Sprintf("%T", v)
}

func (o *object) has(key string) bool {
	_, ok := o.m[key]
	return ok
}

func (o *object) take(key string) (any, bool) {
	v, ok := o.m[key]
	if ok {
		o.used[key] = true
	}
	return v, ok
}

// finish errors on any unconsumed (unknown) key.
func (o *object) finish() error {
	var unknown []string
	for k := range o.m {
		if !o.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	valid := make([]string, 0, len(o.used))
	for k := range o.used {
		valid = append(valid, k)
	}
	sort.Strings(valid)
	return fmt.Errorf("scenario: %s: unknown key %q (valid keys: %s)",
		o.path, unknown[0], strings.Join(valid, ", "))
}

func (o *object) str(key string, def string) (string, error) {
	v, ok := o.take(key)
	if !ok || v == nil {
		return def, nil
	}
	s, isStr := v.(string)
	if !isStr {
		return "", fmt.Errorf("scenario: %s.%s must be a string, got %s", o.path, key, typeName(v))
	}
	return s, nil
}

func (o *object) boolean(key string, def bool) (bool, error) {
	v, ok := o.take(key)
	if !ok || v == nil {
		return def, nil
	}
	b, isBool := v.(bool)
	if !isBool {
		return false, fmt.Errorf("scenario: %s.%s must be true or false, got %s", o.path, key, typeName(v))
	}
	return b, nil
}

func (o *object) integer(key string, def int64) (int64, error) {
	v, ok := o.take(key)
	if !ok || v == nil {
		return def, nil
	}
	return coerceInt(v, o.path+"."+key)
}

func coerceInt(v any, path string) (int64, error) {
	switch t := v.(type) {
	case int64:
		return t, nil
	case float64:
		if t == float64(int64(t)) {
			return int64(t), nil
		}
	}
	return 0, fmt.Errorf("scenario: %s must be an integer, got %s", path, typeName(v))
}

func (o *object) float(key string, def float64) (float64, error) {
	v, ok := o.take(key)
	if !ok || v == nil {
		return def, nil
	}
	return coerceFloat(v, o.path+"."+key)
}

func coerceFloat(v any, path string) (float64, error) {
	switch t := v.(type) {
	case int64:
		return float64(t), nil
	case float64:
		return t, nil
	}
	return 0, fmt.Errorf("scenario: %s must be a number, got %s", path, typeName(v))
}

// duration decodes a Go duration string ("250ms"). Negative durations are
// rejected everywhere in the schema — no field means anything with one.
func (o *object) duration(key string, def time.Duration) (time.Duration, error) {
	v, ok := o.take(key)
	if !ok || v == nil {
		return def, nil
	}
	return coerceDuration(v, o.path+"."+key)
}

func coerceDuration(v any, path string) (time.Duration, error) {
	s, isStr := v.(string)
	if !isStr {
		return 0, fmt.Errorf("scenario: %s must be a duration string like \"250ms\", got %s", path, typeName(v))
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("scenario: %s: invalid duration %q", path, s)
	}
	if d < 0 {
		return 0, fmt.Errorf("scenario: %s: negative duration %q", path, s)
	}
	return d, nil
}

func (o *object) strings(key string) ([]string, error) {
	v, ok := o.take(key)
	if !ok || v == nil {
		return nil, nil
	}
	seq, isSeq := v.([]any)
	if !isSeq {
		return nil, fmt.Errorf("scenario: %s.%s must be a list of strings, got %s", o.path, key, typeName(v))
	}
	out := make([]string, 0, len(seq))
	for i, e := range seq {
		s, isStr := e.(string)
		if !isStr {
			return nil, fmt.Errorf("scenario: %s.%s[%d] must be a string, got %s", o.path, key, i, typeName(e))
		}
		out = append(out, s)
	}
	return out, nil
}

func (o *object) ints(key string) ([]int, error) {
	v, ok := o.take(key)
	if !ok || v == nil {
		return nil, nil
	}
	seq, isSeq := v.([]any)
	if !isSeq {
		return nil, fmt.Errorf("scenario: %s.%s must be a list of integers, got %s", o.path, key, typeName(v))
	}
	out := make([]int, 0, len(seq))
	for i, e := range seq {
		n, err := coerceInt(e, fmt.Sprintf("%s.%s[%d]", o.path, key, i))
		if err != nil {
			return nil, err
		}
		out = append(out, int(n))
	}
	return out, nil
}

func (o *object) floats(key string) ([]float64, error) {
	v, ok := o.take(key)
	if !ok || v == nil {
		return nil, nil
	}
	seq, isSeq := v.([]any)
	if !isSeq {
		return nil, fmt.Errorf("scenario: %s.%s must be a list of numbers, got %s", o.path, key, typeName(v))
	}
	out := make([]float64, 0, len(seq))
	for i, e := range seq {
		f, err := coerceFloat(e, fmt.Sprintf("%s.%s[%d]", o.path, key, i))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// child returns the sub-object at key, or nil when absent/null.
func (o *object) child(key string) (*object, error) {
	v, ok := o.take(key)
	if !ok || v == nil {
		return nil, nil
	}
	return asObject(v, o.path+"."+key)
}

// Parse decodes and validates one scenario document. The returned Spec is
// ready to Compile and Run. Parse never panics on malformed input.
func Parse(data []byte) (*Spec, error) {
	doc, err := parseDocument(data)
	if err != nil {
		return nil, err
	}
	return decodeSpec(doc, true)
}

func decodeSpec(doc any, allowBaseline bool) (*Spec, error) {
	root, err := asObject(doc, "scenario")
	if err != nil {
		return nil, err
	}
	s := &Spec{}
	if s.Name, err = root.str("name", ""); err != nil {
		return nil, err
	}
	if s.Name == "" {
		return nil, fmt.Errorf("scenario: missing required key \"name\"")
	}
	if s.Desc, err = root.str("desc", ""); err != nil {
		return nil, err
	}
	kindStr, err := root.str("kind", "")
	if err != nil {
		return nil, err
	}
	if kindStr == "" {
		return nil, fmt.Errorf("scenario %s: missing required key \"kind\" (one of: %s)", s.Name, kindList())
	}
	s.Kind = Kind(kindStr)
	if !validKind(s.Kind) {
		return nil, fmt.Errorf("scenario %s: unknown kind %q (one of: %s)", s.Name, kindStr, kindList())
	}

	if topo, err := root.child("topology"); err != nil {
		return nil, err
	} else if topo != nil {
		if err := decodeTopology(topo, &s.Topology); err != nil {
			return nil, err
		}
	}

	wl, ok := root.take("workload")
	if !ok || wl == nil {
		return nil, fmt.Errorf("scenario %s: missing required key \"workload\" (kind %s needs one)", s.Name, s.Kind)
	}
	wobj, err := asObject(wl, "workload")
	if err != nil {
		return nil, err
	}
	if err := decodeWorkload(wobj, s); err != nil {
		return nil, err
	}

	if err := decodeFaults(root, s); err != nil {
		return nil, err
	}
	if err := decodeAsserts(root, s); err != nil {
		return nil, err
	}
	if err := decodeSLO(root, s); err != nil {
		return nil, err
	}

	baseline, hasBaseline := root.take("baseline")
	compare, err := root.str("compare", "")
	if err != nil {
		return nil, err
	}
	s.Compare = compare
	if hasBaseline && baseline != nil {
		if !allowBaseline {
			return nil, fmt.Errorf("scenario %s: baseline cannot itself declare a baseline", s.Name)
		}
		if s.Kind != KindChaos {
			return nil, fmt.Errorf("scenario %s: baseline is only supported for kind chaos", s.Name)
		}
		patch, ok := baseline.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("scenario: baseline must be a mapping, got %s", typeName(baseline))
		}
		// The baseline inherits the document minus the primary-run-only
		// sections: its own baseline/compare, the assertions, and the SLO
		// block (objectives judge the mitigated run, not the control).
		merged := deepMerge(pruneKeys(doc.(map[string]any), "baseline", "compare", "assert", "slo"), patch)
		base, err := decodeSpec(merged, false)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: baseline: %w", s.Name, err)
		}
		s.Baseline = base
	}
	if s.Compare != "" && s.Baseline == nil {
		return nil, fmt.Errorf("scenario %s: compare %q requires a baseline", s.Name, s.Compare)
	}
	if err := root.finish(); err != nil {
		return nil, err
	}
	return s, nil
}

func validKind(k Kind) bool {
	for _, v := range validKinds {
		if k == v {
			return true
		}
	}
	return false
}

func kindList() string {
	parts := make([]string, len(validKinds))
	for i, k := range validKinds {
		parts[i] = string(k)
	}
	return strings.Join(parts, ", ")
}

// pruneKeys shallow-copies m without the named keys.
func pruneKeys(m map[string]any, keys ...string) map[string]any {
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = v
	}
	for _, k := range keys {
		delete(out, k)
	}
	return out
}

// deepMerge overlays patch onto base: mappings merge recursively, everything
// else (lists included) replaces wholesale. A null patch value deletes the
// base key, so a baseline can strip a mitigation ("recovery: null").
func deepMerge(base, patch map[string]any) map[string]any {
	out := make(map[string]any, len(base)+len(patch))
	for k, v := range base {
		out[k] = v
	}
	for k, pv := range patch {
		if pv == nil {
			delete(out, k)
			continue
		}
		if pm, ok := pv.(map[string]any); ok {
			if bm, ok := out[k].(map[string]any); ok {
				out[k] = deepMerge(bm, pm)
				continue
			}
		}
		out[k] = pv
	}
	return out
}

func decodeTopology(o *object, t *TopologySpec) error {
	var err error
	fail := func(e error) bool {
		if e != nil && err == nil {
			err = e
		}
		return err != nil
	}
	var n int64
	if n, err = o.integer("extra_sites", 0); fail(err) {
		return err
	}
	t.ExtraSites = int(n)
	if n, err = o.integer("parallel_sites", 0); fail(err) {
		return err
	}
	t.ParallelSites = int(n)
	if t.OpenFirewall, err = o.boolean("open_firewall", false); fail(err) {
		return err
	}
	if t.Secret, err = o.str("secret", ""); fail(err) {
		return err
	}
	if n, err = o.integer("seed", 0); fail(err) {
		return err
	}
	t.Seed = uint64(n)
	if t.RelayPerBuffer, err = o.duration("relay_per_buffer", 0); fail(err) {
		return err
	}
	if n, err = o.integer("relay_buf_bytes", 0); fail(err) {
		return err
	}
	t.RelayBufBytes = int(n)
	wan, err := o.child("wan")
	if err != nil {
		return err
	}
	if wan != nil {
		if t.WAN.Latency, err = wan.duration("latency", 0); err != nil {
			return err
		}
		if n, err = wan.integer("bandwidth", 0); err != nil {
			return err
		}
		t.WAN.Bandwidth = n
		if t.WAN.Loss, err = wan.float("loss", 0); err != nil {
			return err
		}
		if t.WAN.Loss < 0 || t.WAN.Loss > 1 {
			return fmt.Errorf("scenario: topology.wan.loss %v outside [0,1] — loss is a probability", t.WAN.Loss)
		}
		if err = wan.finish(); err != nil {
			return err
		}
	}
	flow, err := o.child("flow")
	if err != nil {
		return err
	}
	if flow != nil {
		t.Flow = &FlowSpec{}
		if n, err = flow.integer("seed", 1); err != nil {
			return err
		}
		t.Flow.Seed = uint64(n)
		if err = flow.finish(); err != nil {
			return err
		}
	}
	return o.finish()
}

func decodeWorkload(o *object, s *Spec) error {
	switch s.Kind {
	case KindChaos:
		return decodeChaosWorkload(o, s)
	case KindTable2:
		return decodeTable2Workload(o, s)
	case KindTable4:
		return decodeTable4Workload(o, s)
	case KindMonitor:
		return decodeMonitorWorkload(o, s)
	case KindGridFTP:
		return decodeGridFTPWorkload(o, s)
	case KindGrid:
		return decodeGridWorkload(o, s)
	case KindFleet:
		return decodeFleetWorkload(o, s)
	}
	return fmt.Errorf("scenario %s: unknown kind %q", s.Name, s.Kind)
}

func decodeChaosWorkload(o *object, s *Spec) error {
	w := &ChaosWorkload{}
	var err error
	var n int64
	if n, err = o.integer("items", 0); err != nil {
		return err
	}
	w.Items = int(n)
	if n, err = o.integer("capacity", 0); err != nil {
		return err
	}
	w.Capacity = int(n)
	if w.System, err = o.str("system", "wide"); err != nil {
		return err
	}
	if w.UseProxy, err = o.boolean("use_proxy", true); err != nil {
		return err
	}
	if w.Horizon, err = o.duration("horizon", 0); err != nil {
		return err
	}
	if w.ControlPlane, err = o.boolean("control_plane", false); err != nil {
		return err
	}
	if w.JobRuntime, err = o.duration("job_runtime", 0); err != nil {
		return err
	}
	if w.JobCompute, err = o.boolean("job_compute", false); err != nil {
		return err
	}
	if n, err = o.integer("extra_jobs", 0); err != nil {
		return err
	}
	w.ExtraJobs = int(n)
	if w.SuspectWindow, err = o.duration("suspect_window", 0); err != nil {
		return err
	}
	if w.BeatCost, err = o.duration("beat_cost", 0); err != nil {
		return err
	}
	hbm, err := o.child("hbm")
	if err != nil {
		return err
	}
	if hbm != nil {
		if w.HBMLateAfter, err = hbm.duration("late_after", 0); err != nil {
			return err
		}
		if w.HBMDownAfter, err = hbm.duration("down_after", 0); err != nil {
			return err
		}
		if err = hbm.finish(); err != nil {
			return err
		}
	}
	ft, err := o.child("ft")
	if err != nil {
		return err
	}
	if ft != nil {
		if n, err = ft.integer("interval", 0); err != nil {
			return err
		}
		w.FT.Interval = int(n)
		if n, err = ft.integer("steal_unit", 0); err != nil {
			return err
		}
		w.FT.StealUnit = int(n)
		if w.FT.NodeCost, err = ft.duration("node_cost", 0); err != nil {
			return err
		}
		if w.FT.SlaveTimeout, err = ft.duration("slave_timeout", 0); err != nil {
			return err
		}
		if w.FT.StealTimeout, err = ft.duration("steal_timeout", 0); err != nil {
			return err
		}
		if n, err = ft.integer("steal_retries", 0); err != nil {
			return err
		}
		w.FT.StealRetries = int(n)
		if w.FT.HeartbeatEvery, err = ft.duration("heartbeat_every", 0); err != nil {
			return err
		}
		if err = ft.finish(); err != nil {
			return err
		}
	}
	ka, err := o.child("keepalive")
	if err != nil {
		return err
	}
	if ka != nil {
		if w.Keepalive.Interval, err = ka.duration("interval", 0); err != nil {
			return err
		}
		if w.Keepalive.Timeout, err = ka.duration("timeout", 0); err != nil {
			return err
		}
		if n, err = ka.integer("miss_budget", 0); err != nil {
			return err
		}
		w.Keepalive.MissBudget = int(n)
		if err = ka.finish(); err != nil {
			return err
		}
	}
	rec, err := o.child("recovery")
	if err != nil {
		return err
	}
	if rec != nil {
		w.Recovery = &RecoverySpec{}
		if n, err = rec.integer("status_retries", 0); err != nil {
			return err
		}
		w.Recovery.StatusRetries = int(n)
		if w.Recovery.SpeculateAfter, err = rec.duration("speculate_after", 0); err != nil {
			return err
		}
		if err = rec.finish(); err != nil {
			return err
		}
	}
	if err = o.finish(); err != nil {
		return err
	}
	s.Chaos = w
	return nil
}

func decodeTable2Workload(o *object, s *Spec) error {
	w := &Table2Workload{}
	var err error
	var n int64
	if n, err = o.integer("rounds", 0); err != nil {
		return err
	}
	w.Rounds = int(n)
	if w.Sizes, err = o.ints("sizes"); err != nil {
		return err
	}
	if n, err = o.integer("workers", 0); err != nil {
		return err
	}
	w.Workers = int(n)
	if err = o.finish(); err != nil {
		return err
	}
	s.Table2 = w
	return nil
}

func decodeTable4Workload(o *object, s *Spec) error {
	w := &Table4Workload{}
	var err error
	var n int64
	if n, err = o.integer("items", 0); err != nil {
		return err
	}
	w.Items = int(n)
	if n, err = o.integer("capacity", 0); err != nil {
		return err
	}
	w.Capacity = int(n)
	if n, err = o.integer("workers", 0); err != nil {
		return err
	}
	w.Workers = int(n)
	if err = o.finish(); err != nil {
		return err
	}
	s.Table4 = w
	return nil
}

func decodeMonitorWorkload(o *object, s *Spec) error {
	w := &MonitorWorkload{}
	var err error
	var n int64
	if n, err = o.integer("items", 0); err != nil {
		return err
	}
	w.Items = int(n)
	if n, err = o.integer("capacity", 0); err != nil {
		return err
	}
	w.Capacity = int(n)
	if w.Interval, err = o.duration("interval", 0); err != nil {
		return err
	}
	if err = o.finish(); err != nil {
		return err
	}
	s.Monitor = w
	return nil
}

func decodeGridFTPWorkload(o *object, s *Spec) error {
	w := &GridFTPWorkload{}
	var err error
	var n int64
	if n, err = o.integer("file_size", 0); err != nil {
		return err
	}
	w.FileSize = int(n)
	if w.Streams, err = o.ints("streams"); err != nil {
		return err
	}
	if w.LossRates, err = o.floats("loss_rates"); err != nil {
		return err
	}
	for _, l := range w.LossRates {
		if l < 0 || l > 1 {
			return fmt.Errorf("scenario: workload.loss_rates entry %v outside [0,1] — loss is a probability", l)
		}
	}
	if n, err = o.integer("seed", 0); err != nil {
		return err
	}
	w.Seed = uint64(n)
	if n, err = o.integer("workers", 0); err != nil {
		return err
	}
	w.Workers = int(n)
	if err = o.finish(); err != nil {
		return err
	}
	s.GridFTP = w
	return nil
}

func decodeGridWorkload(o *object, s *Spec) error {
	w := &GridWorkload{}
	var err error
	var n int64
	if n, err = o.integer("items", 0); err != nil {
		return err
	}
	w.Items = int(n)
	if n, err = o.integer("capacity", 0); err != nil {
		return err
	}
	w.Capacity = int(n)
	if w.UseProxy, err = o.boolean("use_proxy", false); err != nil {
		return err
	}
	if err = o.finish(); err != nil {
		return err
	}
	s.Grid = w
	return nil
}

func decodeFleetWorkload(o *object, s *Spec) error {
	w := &FleetWorkload{}
	var err error
	var n int64
	if n, err = o.integer("sites", 0); err != nil {
		return err
	}
	w.Sites = int(n)
	if n, err = o.integer("hosts_per_site", 0); err != nil {
		return err
	}
	w.HostsPerSite = int(n)
	if n, err = o.integer("cpus_per_host", 0); err != nil {
		return err
	}
	w.CPUsPerHost = int(n)
	if n, err = o.integer("jobs", 0); err != nil {
		return err
	}
	w.Jobs = int(n)
	if n, err = o.integer("seed", 0); err != nil {
		return err
	}
	w.Seed = uint64(n)
	if w.Heartbeat, err = o.duration("heartbeat", 0); err != nil {
		return err
	}
	if n, err = o.integer("trace_sample", 0); err != nil {
		return err
	}
	w.TraceSample = int(n)

	arr, err := o.child("arrivals")
	if err != nil {
		return err
	}
	if arr == nil {
		return fmt.Errorf("scenario %s: workload.arrivals required (the open-loop rate process)", s.Name)
	}
	if w.Arrivals.Kind, err = arr.str("kind", "constant"); err != nil {
		return err
	}
	if w.Arrivals.Rate, err = arr.float("rate", 0); err != nil {
		return err
	}
	if w.Arrivals.Amplitude, err = arr.float("amplitude", 0); err != nil {
		return err
	}
	if w.Arrivals.Period, err = arr.duration("period", 0); err != nil {
		return err
	}
	if w.Arrivals.Peak, err = arr.float("peak", 0); err != nil {
		return err
	}
	if w.Arrivals.From, err = arr.duration("from", 0); err != nil {
		return err
	}
	if w.Arrivals.To, err = arr.duration("to", 0); err != nil {
		return err
	}
	if err = arr.finish(); err != nil {
		return err
	}

	sz, err := o.child("sizes")
	if err != nil {
		return err
	}
	if sz == nil {
		return fmt.Errorf("scenario %s: workload.sizes required (the job service-time distribution)", s.Name)
	}
	if w.Sizes.Kind, err = sz.str("kind", "fixed"); err != nil {
		return err
	}
	if w.Sizes.Mean, err = sz.duration("mean", 0); err != nil {
		return err
	}
	if w.Sizes.Alpha, err = sz.float("alpha", 0); err != nil {
		return err
	}
	if w.Sizes.Min, err = sz.duration("min", 0); err != nil {
		return err
	}
	if w.Sizes.Max, err = sz.duration("max", 0); err != nil {
		return err
	}
	if w.Sizes.Mu, err = sz.float("mu", 0); err != nil {
		return err
	}
	if w.Sizes.Sigma, err = sz.float("sigma", 0); err != nil {
		return err
	}
	if err = sz.finish(); err != nil {
		return err
	}

	if err = o.finish(); err != nil {
		return err
	}
	s.Fleet = w
	// Strict decode: a fleet block that parses but cannot run (unknown
	// distribution, rate <= 0, sites x hosts past the host cap) is a parse
	// error, not a deferred run failure.
	if err := s.fleetConfig().Validate(); err != nil {
		return fmt.Errorf("scenario %s: workload: %w", s.Name, err)
	}
	return nil
}

func decodeFaults(root *object, s *Spec) error {
	v, ok := root.take("faults")
	if !ok || v == nil {
		return nil
	}
	seq, isSeq := v.([]any)
	if !isSeq {
		return fmt.Errorf("scenario: faults must be a list, got %s", typeName(v))
	}
	for i, e := range seq {
		path := fmt.Sprintf("faults[%d]", i)
		m, isMap := e.(map[string]any)
		if !isMap || len(m) != 1 {
			return fmt.Errorf("scenario: %s must be a single-key mapping like \"- crash: {...}\"", path)
		}
		var kind string
		var body any
		for k, b := range m {
			kind, body = k, b
		}
		o, err := asObject(body, path+"."+kind)
		if err != nil {
			return err
		}
		f, err := decodeFault(kind, o)
		if err != nil {
			return err
		}
		s.Faults = append(s.Faults, f)
	}
	return nil
}

func decodeFault(kind string, o *object) (FaultSpec, error) {
	f := FaultSpec{Kind: kind}
	var err error
	windowed := func(requireTo bool) error {
		if f.From, err = o.duration("from", 0); err != nil {
			return err
		}
		if requireTo && !o.has("to") {
			return fmt.Errorf("scenario: %s: missing required key \"to\" (%s needs a bounded window)", o.path, kind)
		}
		if f.To, err = o.duration("to", 0); err != nil {
			return err
		}
		if o.has("to") && f.To <= f.From {
			if requireTo {
				return fmt.Errorf("scenario: %s: window to %v <= from %v — %s windows must end after they start", o.path, f.To, f.From, kind)
			}
			return fmt.Errorf("scenario: %s: window to %v <= from %v — omit \"to\" for a permanent %s", o.path, f.To, f.From, kind)
		}
		return nil
	}
	switch kind {
	case "crash":
		if f.Host, err = o.str("host", ""); err != nil {
			return f, err
		}
		if f.Host == "" {
			return f, fmt.Errorf("scenario: %s: missing required key \"host\"", o.path)
		}
		// A crash without "to" is permanent (no restart).
		if err = windowed(false); err != nil {
			return f, err
		}
	case "outage", "flap":
		if f.A, err = o.str("a", ""); err != nil {
			return f, err
		}
		if f.B, err = o.str("b", ""); err != nil {
			return f, err
		}
		if f.A == "" || f.B == "" {
			return f, fmt.Errorf("scenario: %s: needs both link ends \"a\" and \"b\"", o.path)
		}
		if err = windowed(true); err != nil {
			return f, err
		}
		if kind == "flap" {
			if f.Period, err = o.duration("period", 0); err != nil {
				return f, err
			}
			if f.Duty, err = o.float("duty", 0); err != nil {
				return f, err
			}
			if f.Period <= 0 {
				return f, fmt.Errorf("scenario: %s: flap needs period > 0", o.path)
			}
			if f.Duty <= 0 || f.Duty >= 1 {
				return f, fmt.Errorf("scenario: %s: flap duty %v outside (0,1)", o.path, f.Duty)
			}
		}
	case "degrade":
		if f.Src, err = o.str("src", ""); err != nil {
			return f, err
		}
		if f.Dst, err = o.str("dst", ""); err != nil {
			return f, err
		}
		if f.Src == "" || f.Dst == "" {
			return f, fmt.Errorf("scenario: %s: degrade is directional — needs \"src\" and \"dst\"", o.path)
		}
		if f.ExtraLatency, err = o.duration("extra_latency", 0); err != nil {
			return f, err
		}
		if f.Loss, err = o.float("loss", 0); err != nil {
			return f, err
		}
		if f.Loss < 0 || f.Loss >= 1 {
			return f, fmt.Errorf("scenario: %s: degrade loss %v outside [0,1)", o.path, f.Loss)
		}
		if err = windowed(false); err != nil {
			return f, err
		}
	case "slow":
		if f.Host, err = o.str("host", ""); err != nil {
			return f, err
		}
		if f.Host == "" {
			return f, fmt.Errorf("scenario: %s: missing required key \"host\"", o.path)
		}
		if f.Factor, err = o.float("factor", 0); err != nil {
			return f, err
		}
		if f.Factor <= 0 {
			return f, fmt.Errorf("scenario: %s: slow factor %v must be > 0", o.path, f.Factor)
		}
		if err = windowed(false); err != nil {
			return f, err
		}
	case "partition":
		if f.GroupA, err = o.strings("a"); err != nil {
			return f, err
		}
		if f.GroupB, err = o.strings("b"); err != nil {
			return f, err
		}
		if len(f.GroupA) == 0 || len(f.GroupB) == 0 {
			return f, fmt.Errorf("scenario: %s: partition needs non-empty groups \"a\" and \"b\"", o.path)
		}
		if err = windowed(false); err != nil {
			return f, err
		}
	default:
		return f, fmt.Errorf("scenario: %s: unknown fault kind %q (one of: crash, outage, flap, degrade, slow, partition)", o.path, kind)
	}
	return f, o.finish()
}

func decodeAsserts(root *object, s *Spec) error {
	v, ok := root.take("assert")
	if !ok || v == nil {
		return nil
	}
	seq, isSeq := v.([]any)
	if !isSeq {
		return fmt.Errorf("scenario: assert must be a list, got %s", typeName(v))
	}
	for i, e := range seq {
		path := fmt.Sprintf("assert[%d]", i)
		switch t := e.(type) {
		case string:
			s.Asserts = append(s.Asserts, AssertSpec{Name: t})
		case map[string]any:
			if len(t) != 1 {
				return fmt.Errorf("scenario: %s must be a bare name or a single-key mapping", path)
			}
			for k, arg := range t {
				s.Asserts = append(s.Asserts, AssertSpec{Name: k, Arg: arg})
			}
		default:
			return fmt.Errorf("scenario: %s must be a name or \"name: arg\", got %s", path, typeName(e))
		}
	}
	return nil
}
