package scenario

import (
	"strings"
	"testing"
	"time"
)

// minimal valid fleet scenario used as the mutation base below.
const fleetOK = `
name: t
kind: fleet
workload:
  sites: 2
  hosts_per_site: 4
  jobs: 100
  arrivals:
    kind: constant
    rate: 10
  sizes:
    kind: fixed
    mean: 1s
`

// TestFleetParseErrors is the invalid-fleet wall for the decode layer.
// Fleet blocks are strict-decoded: a spec that parses but cannot run
// (unknown distribution, non-positive rate, host-cap overflow) fails Parse
// itself, so `simulator validate` rejects it before any kernel is built.
func TestFleetParseErrors(t *testing.T) {
	fleetDoc := func(workload string) string {
		return "name: t\nkind: fleet\nworkload:\n" + workload
	}
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing arrivals", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  sizes: {kind: fixed, mean: 1s}\n"),
			"workload.arrivals required"},
		{"missing sizes", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: constant, rate: 10}\n"),
			"workload.sizes required"},
		{"unknown size distribution", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: constant, rate: 10}\n  sizes: {kind: weibull, mean: 1s}\n"),
			`unknown size distribution "weibull"`},
		{"unknown rate shape", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: bursty, rate: 10}\n  sizes: {kind: fixed, mean: 1s}\n"),
			`unknown rate shape "bursty"`},
		{"non-positive rate", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: constant, rate: -3}\n  sizes: {kind: fixed, mean: 1s}\n"),
			"arrival rate must be > 0"},
		{"zero rate", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: constant}\n  sizes: {kind: fixed, mean: 1s}\n"),
			"arrival rate must be > 0"},
		{"host cap overflow", fleetDoc("  sites: 99999\n  hosts_per_site: 99999\n  jobs: 1\n  arrivals: {kind: constant, rate: 1}\n  sizes: {kind: fixed, mean: 1s}\n"),
			"exceeds the 1048576-host cap"},
		{"zero sites", fleetDoc("  sites: 0\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: constant, rate: 10}\n  sizes: {kind: fixed, mean: 1s}\n"),
			"sites must be >= 1"},
		{"zero jobs", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  arrivals: {kind: constant, rate: 10}\n  sizes: {kind: fixed, mean: 1s}\n"),
			"jobs must be >= 1"},
		{"negative trace sample", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  trace_sample: -1\n  arrivals: {kind: constant, rate: 10}\n  sizes: {kind: fixed, mean: 1s}\n"),
			"trace sample must be >= 0"},
		{"pareto bounds inverted", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: constant, rate: 10}\n  sizes: {kind: pareto, alpha: 1.5, min: 10s, max: 1s}\n"),
			"pareto needs 0 < min < max"},
		{"pareto alpha missing", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: constant, rate: 10}\n  sizes: {kind: pareto, min: 1s, max: 10s}\n"),
			"pareto alpha must be > 0"},
		{"lognormal sigma missing", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: constant, rate: 10}\n  sizes: {kind: lognormal, mu: 1}\n"),
			"lognormal sigma must be > 0"},
		{"flash-crowd peak too low", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: flash-crowd, rate: 10, peak: 1, from: 1s, to: 5s}\n  sizes: {kind: fixed, mean: 1s}\n"),
			"flash-crowd peak must be > 1"},
		{"flash-crowd window inverted", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: flash-crowd, rate: 10, peak: 3, from: 5s, to: 1s}\n  sizes: {kind: fixed, mean: 1s}\n"),
			"flash-crowd needs 0 <= from < to"},
		{"diurnal amplitude out of range", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: diurnal, rate: 10, amplitude: 1.5, period: 60s}\n  sizes: {kind: fixed, mean: 1s}\n"),
			"diurnal amplitude must be in [0, 1)"},
		{"diurnal period missing", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: diurnal, rate: 10, amplitude: 0.5}\n  sizes: {kind: fixed, mean: 1s}\n"),
			"diurnal shape needs period > 0"},
		{"unknown workload key", fleetDoc("  sites: 2\n  hostz_per_site: 4\n  jobs: 100\n  arrivals: {kind: constant, rate: 10}\n  sizes: {kind: fixed, mean: 1s}\n"),
			`unknown key "hostz_per_site"`},
		{"unknown arrivals key", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: constant, rte: 10}\n  sizes: {kind: fixed, mean: 1s}\n"),
			`unknown key "rte"`},
		{"unknown sizes key", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  arrivals: {kind: constant, rate: 10}\n  sizes: {kind: fixed, men: 1s}\n"),
			`unknown key "men"`},
		{"duration as int", fleetDoc("  sites: 2\n  hosts_per_site: 4\n  jobs: 100\n  heartbeat: 30\n  arrivals: {kind: constant, rate: 10}\n  sizes: {kind: fixed, mean: 1s}\n"),
			"must be a duration string"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestFleetValidateErrors covers the shape and assertion-vocabulary layers
// for fleet specs that decode cleanly.
func TestFleetValidateErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"topology not empty", fleetOK + "topology:\n  seed: 3\n", "the topology section must be empty"},
		{"faults unsupported", fleetOK + "faults:\n  - crash: {host: compas01, from: 1s}\n", "faults are not supported for kind fleet"},
		{"unknown fleet assertion", fleetOK + "assert:\n  - no-such-check\n", "unknown fleet assertion"},
		{"assertion arg type", fleetOK + "assert:\n  - p99-ceiling: 5\n", "must be a duration string"},
		{"assertion unwanted arg", fleetOK + "assert:\n  - all-jobs-done: 3\n", "takes no argument"},
		{"assertion negative arg", fleetOK + "assert:\n  - min-events: -1\n", "must be >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse([]byte(tc.src))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			err = Validate(s)
			if err == nil {
				t.Fatalf("Validate passed, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestFleetDecodeDefaults pins the fleet block's implicit defaults and the
// Spec -> fleet.Config mapping the runner consumes.
func TestFleetDecodeDefaults(t *testing.T) {
	s, err := Parse([]byte(fleetOK))
	if err != nil {
		t.Fatal(err)
	}
	if s.Fleet == nil {
		t.Fatal("fleet workload not decoded")
	}
	if s.Fleet.Arrivals.Kind != "constant" {
		t.Errorf("default arrivals kind = %q, want constant", s.Fleet.Arrivals.Kind)
	}
	if s.Fleet.Sizes.Kind != "fixed" {
		t.Errorf("default sizes kind = %q, want fixed", s.Fleet.Sizes.Kind)
	}
	cfg := s.fleetConfig()
	if cfg.Sites != 2 || cfg.HostsPerSite != 4 || cfg.Jobs != 100 {
		t.Errorf("fleetConfig shape = %d x %d, %d jobs", cfg.Sites, cfg.HostsPerSite, cfg.Jobs)
	}
	if cfg.CPUsPerHost != 0 {
		t.Errorf("cpus_per_host should default to 0 (engine default), got %d", cfg.CPUsPerHost)
	}
	if cfg.Arrivals.Rate != 10 || cfg.Sizes.Mean != time.Second {
		t.Errorf("fleetConfig workload = %+v / %+v", cfg.Arrivals, cfg.Sizes)
	}
	if err := Validate(s); err != nil {
		t.Fatalf("Validate on minimal fleet spec: %v", err)
	}
}
